module broadcastic

go 1.22
