package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"broadcastic/internal/telemetry/benchjson"
)

func writeBench(t *testing.T, dir, name, host string, ns float64) string {
	t.Helper()
	f := benchjson.New("quick", 1)
	if host != "" {
		f.Host = host
	}
	f.AddEntry(benchjson.Entry{Name: "BenchmarkE1_DisjScalingN", Iterations: 3, NsPerOp: ns, MinNsPerOp: ns})
	path := filepath.Join(dir, name)
	if err := benchjson.WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	return path
}

func gate(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestGatePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", "", 100)
	cur := writeBench(t, dir, "cur.json", "", 110)
	code, out, _ := gate(t, "-baseline", base, "-current", cur)
	if code != 0 || !strings.Contains(out, "PASS") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", "", 100)
	cur := writeBench(t, dir, "cur.json", "", 160)
	code, out, errOut := gate(t, "-baseline", base, "-current", cur)
	if code != 1 {
		t.Fatalf("code=%d, want 1; out=%q err=%q", code, out, errOut)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(errOut, "FAIL") {
		t.Fatalf("missing regression report: out=%q err=%q", out, errOut)
	}
}

func TestGateWarnsAcrossHosts(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", "laptop/arm64/ncpu=8", 100)
	cur := writeBench(t, dir, "cur.json", "", 160)
	code, out, _ := gate(t, "-baseline", base, "-current", cur)
	if code != 0 {
		t.Fatalf("cross-host regression must warn, not fail: code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "warning") || !strings.Contains(out, "differing host fingerprints") {
		t.Fatalf("missing cross-host warning: %q", out)
	}
}

func TestGateRespectsGateList(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", "", 100)
	cur := writeBench(t, dir, "cur.json", "", 160)
	code, out, _ := gate(t, "-baseline", base, "-current", cur, "-gate", "BenchmarkOther")
	if code != 0 || !strings.Contains(out, "not gated") {
		t.Fatalf("ungated op must not block: code=%d out=%q", code, out)
	}
}

func TestGateUsageErrors(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", "", 100)
	if code, _, _ := gate(t, "-baseline", base); code != 2 {
		t.Fatal("missing -current must exit 2")
	}
	if code, _, _ := gate(t, "-baseline", filepath.Join(dir, "absent.json"), "-current", base); code != 2 {
		t.Fatal("unreadable baseline must exit 2")
	}
}

func writeBenchAllocs(t *testing.T, dir, name, host string, ns, allocs float64) string {
	t.Helper()
	f := benchjson.New("quick", 1)
	if host != "" {
		f.Host = host
	}
	f.AddEntry(benchjson.Entry{
		Name: "BenchmarkE1_DisjScalingN", Iterations: 3,
		NsPerOp: ns, MinNsPerOp: ns, AllocsPerOp: allocs,
	})
	path := filepath.Join(dir, name)
	if err := benchjson.WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGateFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	// Timing flat, allocations +50%: the alloc gate alone must fail the run.
	base := writeBenchAllocs(t, dir, "base.json", "", 100, 1000)
	cur := writeBenchAllocs(t, dir, "cur.json", "", 100, 1500)
	code, out, errOut := gate(t, "-baseline", base, "-current", cur)
	if code != 1 {
		t.Fatalf("code=%d, want 1; out=%q err=%q", code, out, errOut)
	}
	if !strings.Contains(out, "allocs/op") || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("missing allocs/op regression line: %q", out)
	}
}

func TestGatePassesWithinAllocThreshold(t *testing.T) {
	dir := t.TempDir()
	// +8% allocations sits inside the default +10% slack.
	base := writeBenchAllocs(t, dir, "base.json", "", 100, 1000)
	cur := writeBenchAllocs(t, dir, "cur.json", "", 100, 1080)
	code, out, _ := gate(t, "-baseline", base, "-current", cur)
	if code != 0 || !strings.Contains(out, "PASS") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestGateAllocRegressionWarnsAcrossHosts(t *testing.T) {
	dir := t.TempDir()
	base := writeBenchAllocs(t, dir, "base.json", "laptop/arm64/ncpu=8", 100, 1000)
	cur := writeBenchAllocs(t, dir, "cur.json", "", 100, 2000)
	code, out, _ := gate(t, "-baseline", base, "-current", cur)
	if code != 0 {
		t.Fatalf("cross-host alloc regression must warn, not fail: code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "allocs/op") || !strings.Contains(out, "warning") {
		t.Fatalf("missing cross-host alloc warning: %q", out)
	}
}

func TestGateAllocGateDisabled(t *testing.T) {
	dir := t.TempDir()
	base := writeBenchAllocs(t, dir, "base.json", "", 100, 1000)
	cur := writeBenchAllocs(t, dir, "cur.json", "", 100, 2000)
	code, out, _ := gate(t, "-baseline", base, "-current", cur, "-max-alloc-regress", "-1")
	if code != 0 {
		t.Fatalf("disabled alloc gate must pass: code=%d out=%q", code, out)
	}
}

func TestGateMissingAllocBaselineIsBenign(t *testing.T) {
	dir := t.TempDir()
	// Old baselines predate AllocsPerOp; the alloc gate must not fire.
	base := writeBench(t, dir, "base.json", "", 100)
	cur := writeBenchAllocs(t, dir, "cur.json", "", 100, 5000)
	code, out, _ := gate(t, "-baseline", base, "-current", cur)
	if code != 0 || !strings.Contains(out, "PASS") {
		t.Fatalf("alloc gate fired without baseline data: code=%d out=%q", code, out)
	}
}
