// Command benchgate is the CI perf-regression gate: it compares a current
// benchjson run against a committed baseline and exits nonzero when a gated
// op regressed beyond the threshold on comparable hardware.
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_ci.json
//
// Regressions on differing host fingerprints are reported as warnings
// only — absolute ns/op from different machines is not a signal — so a
// locally generated baseline never spuriously fails CI. Refresh the
// baseline with the procedure in README.md §Observability.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"broadcastic/internal/buildinfo"
	"broadcastic/internal/telemetry/benchjson"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "BENCH_baseline.json", "committed baseline benchjson file")
		currentPath  = fs.String("current", "", "benchjson file from the run under test (required)")
		maxRegress   = fs.Float64("max-regress", 0.25, "blocking ns/op regression ratio (0.25 = +25%)")
		maxAllocs    = fs.Float64("max-alloc-regress", 0.10, "blocking allocs/op regression ratio (0.10 = +10%; negative disables)")
		useMin       = fs.Bool("min", true, "compare min-of-samples ns/op when available (noise floor)")
		gatedOps     = fs.String("gate", "", "comma-separated op names to gate (empty: gate all ops)")
		version      = buildinfo.Flag(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.Resolve())
		return 0
	}
	if *currentPath == "" {
		fmt.Fprintln(stderr, "benchgate: -current is required")
		fs.Usage()
		return 2
	}
	baseline, err := benchjson.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: baseline: %v\n", err)
		return 2
	}
	current, err := benchjson.ReadFile(*currentPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: current: %v\n", err)
		return 2
	}
	opts := benchjson.CompareOptions{MaxRegress: *maxRegress, MaxAllocRegress: *maxAllocs, CompareMin: *useMin}
	if *gatedOps != "" {
		gated := make(map[string]bool)
		for _, name := range strings.Split(*gatedOps, ",") {
			gated[strings.TrimSpace(name)] = true
		}
		opts.Gated = func(name string) bool { return gated[name] }
	}
	rep, err := benchjson.Compare(baseline, current, opts)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}

	fmt.Fprintf(stdout, "benchgate: baseline %s (%s) vs current %s (%s), thresholds +%.0f%% ns/op, +%.0f%% allocs/op\n",
		short(baseline.GitSHA), baseline.Host, short(current.GitSHA), current.Host, *maxRegress*100, *maxAllocs*100)
	if !rep.SameHost {
		fmt.Fprintln(stdout, "benchgate: differing host fingerprints — regressions reported as warnings only")
	}
	for _, f := range rep.Findings {
		switch {
		case f.Verdict == benchjson.Missing:
			fmt.Fprintf(stdout, "  %-12s %-40s %s\n", f.Verdict, f.Name, f.Note)
		case f.Ratio > 0:
			line := fmt.Sprintf("  %-12s %-40s %12.0f → %12.0f %s (%+.1f%%)",
				f.Verdict, f.Name, f.Baseline, f.Current, f.Metric, (f.Ratio-1)*100)
			if f.Note != "" {
				line += " [" + f.Note + "]"
			}
			fmt.Fprintln(stdout, line)
		default:
			fmt.Fprintf(stdout, "  %-12s %-40s %s\n", f.Verdict, f.Name, f.Note)
		}
	}
	if blocking := rep.Blocking(); len(blocking) > 0 {
		fmt.Fprintf(stderr, "benchgate: FAIL — %d metric(s) regressed beyond threshold\n", len(blocking))
		return 1
	}
	fmt.Fprintln(stdout, "benchgate: PASS")
	return 0
}

func short(sha string) string {
	if sha == "" {
		return "unknown"
	}
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
