// Command intersect runs the sparse-set protocols: the hashing
// intersection protocol (no log n factor) and the pointwise-OR (union)
// protocol, both with exact bit accounting.
//
// Usage:
//
//	intersect sparse [-n 65536] [-s 32] [-k 4] [-common] [-trials 5] [-seed 1]
//	intersect union  [-n 8192] [-k 8] [-density 0.05] [-trials 5] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"broadcastic/internal/buildinfo"
	"broadcastic/internal/intersect"
	"broadcastic/internal/pointwise"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "intersect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("subcommand required: sparse or union")
	}
	switch args[0] {
	case "sparse":
		return runSparse(args[1:])
	case "union":
		return runUnion(args[1:])
	case "-version", "--version":
		fmt.Println(buildinfo.Resolve())
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func runSparse(args []string) error {
	fs := flag.NewFlagSet("sparse", flag.ContinueOnError)
	n := fs.Int("n", 65536, "universe size")
	s := fs.Int("s", 32, "per-player set size")
	k := fs.Int("k", 4, "number of players")
	common := fs.Bool("common", false, "plant a common element")
	trials := fs.Int("trials", 5, "number of instances")
	seed := fs.Uint64("seed", 1, "random seed")
	var profiles telemetry.Profiles
	profiles.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiles.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "intersect: profiles:", err)
		}
	}()
	src := rng.New(*seed)
	fmt.Printf("sparse intersection: n=%d s=%d k=%d common=%v\n\n", *n, *s, *k, *common)
	for tr := 0; tr < *trials; tr++ {
		inst, err := intersect.Generate(src, *n, *s, *k, *common)
		if err != nil {
			return err
		}
		_, want := inst.Truth()
		hashed, err := intersect.SolveHashed(inst, src.Uint64())
		if err != nil {
			return err
		}
		naive, err := intersect.SolveNaive(inst)
		if err != nil {
			return err
		}
		if hashed.Common != want || naive.Common != want {
			return fmt.Errorf("protocol answered incorrectly")
		}
		fmt.Printf("trial %d: common=%v  hashed %5d bits  naive %5d bits  (%.2f×)\n",
			tr, hashed.Common, hashed.Bits, naive.Bits,
			float64(naive.Bits)/float64(hashed.Bits))
	}
	return nil
}

func runUnion(args []string) error {
	fs := flag.NewFlagSet("union", flag.ContinueOnError)
	n := fs.Int("n", 8192, "universe size")
	k := fs.Int("k", 8, "number of players")
	density := fs.Float64("density", 0.05, "element density per player")
	trials := fs.Int("trials", 5, "number of instances")
	seed := fs.Uint64("seed", 1, "random seed")
	var profiles telemetry.Profiles
	profiles.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiles.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "intersect: profiles:", err)
		}
	}()
	src := rng.New(*seed)
	fmt.Printf("pointwise-OR (union): n=%d k=%d density=%v\n\n", *n, *k, *density)
	for tr := 0; tr < *trials; tr++ {
		inst, err := pointwise.Generate(src, *n, *k, *density)
		if err != nil {
			return err
		}
		res, err := pointwise.SolveUnion(inst)
		if err != nil {
			return err
		}
		want, err := inst.TrueUnion()
		if err != nil {
			return err
		}
		if !res.Union.Equal(want) {
			return fmt.Errorf("union incorrect")
		}
		lb, err := pointwise.InformationLowerBound(*n, res.Union.Count(), *k)
		if err != nil {
			return err
		}
		fmt.Printf("trial %d: |U|=%5d  %6d bits  info bound %6d  (%.2f×)  naive %d\n",
			tr, res.Union.Count(), res.Bits, lb, float64(res.Bits)/float64(lb), *n**k)
	}
	return nil
}
