package main

import "testing"

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"sparse", "-n", "1024", "-s", "8", "-k", "3", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"sparse", "-common", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"union", "-n", "512", "-k", "3", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("bogus subcommand accepted")
	}
}
