// Command experiments runs the complete reproduction suite (E1–E21 from
// EXPERIMENTS.md) and prints one table per experiment.
//
// Usage:
//
//	experiments [-seed N] [-scale quick|full] [-only E4,E7] [-parallel N]
//	            [-telemetry out.json] [-serve addr] [-runtrace dir]
//	            [-log level] [-logformat text|json] [-version]
//	            [-cpuprofile f] [-memprofile f] [-tracefile f]
//
// With -telemetry, each experiment runs with a telemetry collector attached
// and one benchjson entry per experiment (wall time, recorded bits, full
// metric snapshot) is written to out.json — the same schema the benchmark
// suite and CI perf gate use. With -serve, the observability plane
// (/metrics, /healthz, /runs, /debug/pprof) is up for the duration of the
// run over a shared live collector; with -runtrace, each experiment writes
// a Chrome trace-event file to the given directory. All of it only
// observes: tables are bit-identical with every combination enabled.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"broadcastic/internal/buildinfo"
	"broadcastic/internal/pool"
	"broadcastic/internal/serve"
	"broadcastic/internal/sim"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/benchjson"
	"broadcastic/internal/telemetry/tracelog"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "root random seed")
	scale := fs.String("scale", "full", "experiment scale: quick or full")
	only := fs.String("only", "", "comma-separated experiment IDs to run (e.g. E4,E7)")
	parallel := fs.Int("parallel", 0, "worker goroutines per sweep (0 = one per CPU); output is identical for every value")
	batched := fs.Bool("batch", true, "use the 64-lane word-parallel engine where eligible; output is identical either way")
	noir := fs.Bool("noir", false, "disable the compiled-IR fast path (escape hatch; output is identical either way)")
	telemetryPath := fs.String("telemetry", "", "write per-experiment benchjson telemetry to this file")
	serveAddr := fs.String("serve", "", "serve /metrics, /healthz, /runs and /debug/pprof on this address for the duration of the run")
	runtrace := fs.String("runtrace", "", "directory for per-experiment Chrome trace-event files")
	var logCfg telemetry.LogConfig
	logCfg.AddFlags(fs)
	version := buildinfo.Flag(fs)
	var profiles telemetry.Profiles
	profiles.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.Resolve())
		return nil
	}
	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		return err
	}
	stopProfiles, err := profiles.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: profiles:", err)
		}
	}()
	cfg := sim.Config{Seed: *seed, Workers: *parallel, DisableBatching: !*batched, DisableIR: *noir}
	switch *scale {
	case "quick":
		cfg.Scale = sim.Quick
	case "full":
		cfg.Scale = sim.Full
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	all := sim.Experiments()
	selected := all
	if *only != "" {
		byID := make(map[string]sim.Experiment, len(all))
		for _, exp := range all {
			byID[exp.ID] = exp
		}
		selected = selected[:0:0]
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			exp, ok := byID[id]
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, exp)
		}
	}

	// The live plane: one collector shared by every experiment feeds
	// /metrics, a broker feeds /runs. Both strictly observe.
	var (
		live   *telemetry.Collector
		broker *serve.Broker
		srv    *serve.Server
	)
	if *serveAddr != "" {
		live = telemetry.NewCollector()
		broker = serve.NewBroker()
		srv, err = serve.Start(*serveAddr, serve.NewMux(live, broker))
		if err != nil {
			return err
		}
		logger.Info("observability plane up", "addr", srv.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: serve:", err)
			}
		}()
	}
	if *runtrace != "" {
		if err := os.MkdirAll(*runtrace, 0o755); err != nil {
			return err
		}
	}

	type result struct {
		table   *sim.Table
		elapsed time.Duration
		metrics map[string]float64
	}
	// Experiments are independent: run them on the pool like sim.All does,
	// each with its own collector so per-experiment metrics don't mix. The
	// live collector, trace sink and progress hook tee alongside.
	results, err := pool.Map(pool.Workers(cfg.Workers), len(selected), func(i int) (result, error) {
		exp := selected[i]
		runID := fmt.Sprintf("%s-seed%d", exp.ID, *seed)
		ecfg := cfg
		var rec *telemetry.Collector
		var recs []telemetry.Recorder
		if *telemetryPath != "" {
			rec = telemetry.NewCollector()
			recs = append(recs, rec)
		}
		if live != nil {
			recs = append(recs, live)
		}
		ecfg.Recorder = telemetry.Multi(recs...)
		var sink *tracelog.Sink
		if *runtrace != "" {
			sink = tracelog.New(runID, ecfg.Recorder)
			ecfg.Recorder = sink
		}
		if broker != nil {
			ecfg.Progress = broker.ProgressFunc(runID, exp.ID, live)
		}
		logger.Info("experiment start", "id", exp.ID, "runId", runID)
		start := time.Now()
		tbl, err := exp.Run(ecfg)
		if err != nil {
			return result{}, fmt.Errorf("%s: %w", exp.ID, err)
		}
		r := result{table: tbl, elapsed: time.Since(start)}
		if rec != nil {
			r.metrics = rec.Snapshot()
		}
		if sink != nil {
			path := filepath.Join(*runtrace, tracelog.FileName(runID))
			if err := writeTrace(path, sink); err != nil {
				return result{}, err
			}
			logger.Info("trace written", "id", exp.ID, "path", path)
		}
		logger.Info("experiment done", "id", exp.ID, "elapsed", r.elapsed)
		return r, nil
	})
	if err != nil {
		return err
	}
	for _, r := range results {
		if err := r.table.Render(out); err != nil {
			return err
		}
	}

	if *telemetryPath != "" {
		f := benchjson.New(*scale, pool.Workers(cfg.Workers))
		f.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		for i, r := range results {
			f.AddEntry(benchjson.Entry{
				Name:       selected[i].ID,
				Iterations: 1,
				NsPerOp:    float64(r.elapsed),
				MinNsPerOp: float64(r.elapsed),
				BitsPerOp:  r.metrics[telemetry.BlackboardBits] + r.metrics[telemetry.NetrunWireBits],
				Samples:    1,
				Metrics:    r.metrics,
			})
		}
		if err := benchjson.WriteFile(*telemetryPath, f); err != nil {
			return err
		}
	}
	return nil
}

func writeTrace(path string, sink *tracelog.Sink) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := sink.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
