// Command experiments runs the complete reproduction suite (E1–E20 from
// EXPERIMENTS.md) and prints one table per experiment.
//
// Usage:
//
//	experiments [-seed N] [-scale quick|full] [-only E4,E7] [-parallel N]
//	            [-telemetry out.json] [-cpuprofile f] [-memprofile f] [-tracefile f]
//
// With -telemetry, each experiment runs with a telemetry collector attached
// and one benchjson entry per experiment (wall time, recorded bits, full
// metric snapshot) is written to out.json — the same schema the benchmark
// suite and CI perf gate use. Tables are bit-identical with or without it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"broadcastic/internal/pool"
	"broadcastic/internal/sim"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/benchjson"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "root random seed")
	scale := fs.String("scale", "full", "experiment scale: quick or full")
	only := fs.String("only", "", "comma-separated experiment IDs to run (e.g. E4,E7)")
	parallel := fs.Int("parallel", 0, "worker goroutines per sweep (0 = one per CPU); output is identical for every value")
	telemetryPath := fs.String("telemetry", "", "write per-experiment benchjson telemetry to this file")
	var profiles telemetry.Profiles
	profiles.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiles.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: profiles:", err)
		}
	}()
	cfg := sim.Config{Seed: *seed, Workers: *parallel}
	switch *scale {
	case "quick":
		cfg.Scale = sim.Quick
	case "full":
		cfg.Scale = sim.Full
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	all := sim.Experiments()
	selected := all
	if *only != "" {
		byID := make(map[string]sim.Experiment, len(all))
		for _, exp := range all {
			byID[exp.ID] = exp
		}
		selected = selected[:0:0]
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			exp, ok := byID[id]
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, exp)
		}
	}

	type result struct {
		table   *sim.Table
		elapsed time.Duration
		metrics map[string]float64
	}
	// Experiments are independent: run them on the pool like sim.All does,
	// each with its own collector so per-experiment metrics don't mix.
	results, err := pool.Map(pool.Workers(cfg.Workers), len(selected), func(i int) (result, error) {
		ecfg := cfg
		var rec *telemetry.Collector
		if *telemetryPath != "" {
			rec = telemetry.NewCollector()
			ecfg.Recorder = rec
		}
		start := time.Now()
		tbl, err := selected[i].Run(ecfg)
		if err != nil {
			return result{}, fmt.Errorf("%s: %w", selected[i].ID, err)
		}
		r := result{table: tbl, elapsed: time.Since(start)}
		if rec != nil {
			r.metrics = rec.Snapshot()
		}
		return r, nil
	})
	if err != nil {
		return err
	}
	for _, r := range results {
		if err := r.table.Render(out); err != nil {
			return err
		}
	}

	if *telemetryPath != "" {
		f := benchjson.New(*scale, pool.Workers(cfg.Workers))
		f.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		for i, r := range results {
			f.AddEntry(benchjson.Entry{
				Name:       selected[i].ID,
				Iterations: 1,
				NsPerOp:    float64(r.elapsed),
				MinNsPerOp: float64(r.elapsed),
				BitsPerOp:  r.metrics[telemetry.BlackboardBits] + r.metrics[telemetry.NetrunWireBits],
				Samples:    1,
				Metrics:    r.metrics,
			})
		}
		if err := benchjson.WriteFile(*telemetryPath, f); err != nil {
			return err
		}
	}
	return nil
}
