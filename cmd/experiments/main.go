// Command experiments runs the complete reproduction suite (E1–E20 from
// EXPERIMENTS.md) and prints one table per experiment.
//
// Usage:
//
//	experiments [-seed N] [-scale quick|full] [-only E4,E7] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"broadcastic/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "root random seed")
	scale := fs.String("scale", "full", "experiment scale: quick or full")
	only := fs.String("only", "", "comma-separated experiment IDs to run (e.g. E4,E7)")
	parallel := fs.Int("parallel", 0, "worker goroutines per sweep (0 = one per CPU); output is identical for every value")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := sim.Config{Seed: *seed, Workers: *parallel}
	switch *scale {
	case "quick":
		cfg.Scale = sim.Quick
	case "full":
		cfg.Scale = sim.Full
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	tables, err := sim.All(cfg)
	if err != nil {
		return err
	}
	for _, tbl := range tables {
		if len(wanted) > 0 && !wanted[tbl.ID] {
			continue
		}
		if err := tbl.Render(out); err != nil {
			return err
		}
	}
	return nil
}
