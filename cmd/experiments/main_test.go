package main

import (
	"os"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-scale", "quick", "-only", "E5,E12"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "bogus"}, os.Stdout); err == nil {
		t.Fatal("bogus scale accepted")
	}
}
