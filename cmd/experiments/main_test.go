package main

import (
	"os"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-scale", "quick", "-only", "E5,E12"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "bogus"}, os.Stdout); err == nil {
		t.Fatal("bogus scale accepted")
	}
}

// TestRunParallelFlagDeterminism runs the same experiment selection at
// -parallel 1 and -parallel 4 and requires byte-identical output.
func TestRunParallelFlagDeterminism(t *testing.T) {
	capture := func(parallel string) string {
		t.Helper()
		f, err := os.CreateTemp(t.TempDir(), "out")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := run([]string{"-scale", "quick", "-only", "E1,E10", "-parallel", parallel}, f); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	serial := capture("1")
	parallel := capture("4")
	if len(serial) == 0 {
		t.Fatal("empty output")
	}
	if serial != parallel {
		t.Fatalf("-parallel 4 output differs from -parallel 1:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
}
