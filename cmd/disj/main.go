// Command disj runs the set-disjointness protocols on generated instances
// and reports bit-exact communication costs.
//
// Usage:
//
//	disj [-n 4096] [-k 8] [-kind mun|disjoint|intersecting] [-density 0.5]
//	     [-protocol optimal|naive|both] [-trials 3] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"broadcastic/internal/buildinfo"
	"broadcastic/internal/disj"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "disj:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("disj", flag.ContinueOnError)
	n := fs.Int("n", 4096, "universe size")
	k := fs.Int("k", 8, "number of players")
	kind := fs.String("kind", "mun", "instance kind: mun (hard distribution), disjoint, intersecting")
	density := fs.Float64("density", 0.5, "element density for disjoint/intersecting kinds")
	protocol := fs.String("protocol", "both", "protocol: optimal, naive or both")
	trials := fs.Int("trials", 3, "number of instances")
	seed := fs.Uint64("seed", 1, "random seed")
	version := buildinfo.Flag(fs)
	var profiles telemetry.Profiles
	profiles.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.Resolve())
		return nil
	}
	stopProfiles, err := profiles.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "disj: profiles:", err)
		}
	}()
	src := rng.New(*seed)
	fmt.Printf("DISJ_{n=%d, k=%d}, kind=%s, trials=%d\n", *n, *k, *kind, *trials)
	fmt.Printf("cost models: optimal n·log2k+k = %.0f, naive n·log2n+k = %.0f\n\n",
		disj.OptimalCostModel(*n, *k), disj.NaiveCostModel(*n, *k))
	for tr := 0; tr < *trials; tr++ {
		var (
			inst *disj.Instance
			err  error
		)
		switch *kind {
		case "mun":
			inst, err = disj.GenerateFromMuN(src, *n, *k)
		case "disjoint":
			inst, err = disj.GenerateDisjoint(src, *n, *k, *density)
		case "intersecting":
			inst, err = disj.GenerateIntersecting(src, *n, *k, 1, *density)
		default:
			return fmt.Errorf("unknown kind %q", *kind)
		}
		if err != nil {
			return err
		}
		truth, err := inst.Disjoint()
		if err != nil {
			return err
		}
		fmt.Printf("trial %d (truth: disjoint=%v)\n", tr, truth)
		if *protocol == "optimal" || *protocol == "both" {
			out, err := disj.SolveOptimal(inst)
			if err != nil {
				return err
			}
			if out.Disjoint != truth {
				return fmt.Errorf("optimal protocol answered incorrectly")
			}
			fmt.Printf("  optimal: %8d bits  %5d messages  (%.3f × model)\n",
				out.Bits, out.Messages, float64(out.Bits)/disj.OptimalCostModel(*n, *k))
		}
		if *protocol == "naive" || *protocol == "both" {
			out, err := disj.SolveNaive(inst)
			if err != nil {
				return err
			}
			if out.Disjoint != truth {
				return fmt.Errorf("naive protocol answered incorrectly")
			}
			fmt.Printf("  naive:   %8d bits  %5d messages  (%.3f × model)\n",
				out.Bits, out.Messages, float64(out.Bits)/disj.NaiveCostModel(*n, *k))
		}
	}
	return nil
}
