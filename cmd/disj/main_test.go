package main

import "testing"

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-n", "256", "-k", "4", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "64", "-k", "2", "-kind", "disjoint", "-protocol", "naive", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "64", "-k", "2", "-kind", "intersecting", "-protocol", "optimal", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "bogus"}); err == nil {
		t.Fatal("bogus kind accepted")
	}
}
