package main

import "testing"

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"sampler", "-trials", "200"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"amortized", "-k", "4", "-copies", "1,4", "-repeats", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("bogus subcommand accepted")
	}
	if err := run([]string{"amortized", "-copies", "x"}); err == nil {
		t.Fatal("bad copy list accepted")
	}
}
