// Command compress demonstrates the Section 6 compression results: the
// Lemma 7 one-shot sampler and the Theorem 3 amortized compression of
// parallel protocol copies.
//
// Usage:
//
//	compress sampler [-trials 5000] [-seed 1]
//	compress amortized [-k 6] [-copies 1,4,16,64,256] [-repeats 40] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"broadcastic/internal/andk"
	"broadcastic/internal/buildinfo"
	"broadcastic/internal/compress"
	"broadcastic/internal/core"
	"broadcastic/internal/dist"
	"broadcastic/internal/info"
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "compress:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("subcommand required: sampler or amortized")
	}
	switch args[0] {
	case "sampler":
		return runSampler(args[1:])
	case "amortized":
		return runAmortized(args[1:])
	case "-version", "--version":
		fmt.Println(buildinfo.Resolve())
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func runSampler(args []string) error {
	fs := flag.NewFlagSet("sampler", flag.ContinueOnError)
	trials := fs.Int("trials", 5000, "transmissions per divergence point")
	seed := fs.Uint64("seed", 1, "public randomness seed")
	var profiles telemetry.Profiles
	profiles.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiles.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "compress: profiles:", err)
		}
	}()
	public := rng.New(*seed)
	eta, err := prob.NewDist([]float64{0.95, 0.05})
	if err != nil {
		return err
	}
	fmt.Println("Lemma 7 rejection sampler: mean bits vs divergence D(eta || nu)")
	fmt.Printf("%12s %12s %12s %16s\n", "D (bits)", "mean bits", "overhead", "D+2log(D+2)+4")
	for _, p := range []float64{0.3, 0.1, 0.03, 0.01, 0.003, 0.001} {
		nu, err := prob.NewDist([]float64{p, 1 - p})
		if err != nil {
			return err
		}
		d, err := info.KL(eta, nu)
		if err != nil {
			return err
		}
		total := 0
		for i := 0; i < *trials; i++ {
			res, err := compress.Transmit(eta, nu, public)
			if err != nil {
				return err
			}
			total += res.Bits
		}
		mean := float64(total) / float64(*trials)
		fmt.Printf("%12.3f %12.3f %12.3f %16.3f\n", d, mean, mean-d, compress.CostModel(d, 4))
	}
	return nil
}

func runAmortized(args []string) error {
	fs := flag.NewFlagSet("amortized", flag.ContinueOnError)
	k := fs.Int("k", 6, "players per AND_k copy")
	copiesFlag := fs.String("copies", "1,4,16,64,256", "comma-separated copy counts")
	repeats := fs.Int("repeats", 40, "executions averaged per point")
	seed := fs.Uint64("seed", 1, "random seed")
	var profiles telemetry.Profiles
	profiles.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiles.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "compress: profiles:", err)
		}
	}()
	var copyCounts []int
	for _, part := range strings.Split(*copiesFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad copy count %q: %w", part, err)
		}
		copyCounts = append(copyCounts, v)
	}
	spec, err := andk.NewSequential(*k)
	if err != nil {
		return err
	}
	mu, err := dist.NewMu(*k)
	if err != nil {
		return err
	}
	exact, err := core.ExactCosts(spec, mu, core.TreeLimits{})
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 3: amortized compression of parallel AND_%d copies under mu\n", *k)
	fmt.Printf("external information cost IC = %.4f bits; uncompressed expected cost = %.4f bits\n\n",
		exact.ExternalIC, exact.ExpectedBits)
	curve, err := compress.AmortizedCurve(spec, mu, copyCounts, *repeats, rng.New(*seed))
	if err != nil {
		return err
	}
	fmt.Printf("%8s %16s %12s %18s\n", "copies", "per-copy bits", "ratio/IC", "uncompressed/copy")
	for _, pt := range curve {
		fmt.Printf("%8d %16.3f %12.3f %18.3f\n",
			pt.Copies, pt.PerCopyBits, pt.PerCopyBits/exact.ExternalIC, pt.PerCopyOrig)
	}
	return nil
}
