package main

import "testing"

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-k", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-k", "32", "-method", "mc", "-samples", "500"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-k", "32", "-method", "mc", "-samples", "500", "-parallel", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-k", "4", "-protocol", "broadcast"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-k", "4", "-protocol", "lazy", "-delta", "0.2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-protocol", "bogus"}); err == nil {
		t.Fatal("bogus protocol accepted")
	}
}
