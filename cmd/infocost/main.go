// Command infocost measures information costs of AND_k protocols under the
// hard distribution μ of Section 4.1 — exactly (transcript-tree
// enumeration) for small k, by unbiased Monte-Carlo for large k.
//
// Usage:
//
//	infocost [-k 8] [-protocol sequential|broadcast|lazy] [-delta 0.1]
//	         [-method auto|exact|mc] [-samples 20000] [-seed 1] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"broadcastic/internal/andk"
	"broadcastic/internal/buildinfo"
	"broadcastic/internal/core"
	"broadcastic/internal/dist"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "infocost:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("infocost", flag.ContinueOnError)
	k := fs.Int("k", 8, "number of players")
	protocol := fs.String("protocol", "sequential", "protocol: sequential, broadcast or lazy")
	delta := fs.Float64("delta", 0.1, "give-up probability for the lazy protocol")
	method := fs.String("method", "auto", "computation: auto, exact or mc")
	samples := fs.Int("samples", 20000, "Monte-Carlo samples")
	seed := fs.Uint64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "Monte-Carlo worker goroutines (0 = one per CPU); estimates are identical for every value")
	version := buildinfo.Flag(fs)
	var profiles telemetry.Profiles
	profiles.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.Resolve())
		return nil
	}
	stopProfiles, err := profiles.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "infocost: profiles:", err)
		}
	}()

	var spec core.Spec
	switch *protocol {
	case "sequential":
		s, err := andk.NewSequential(*k)
		if err != nil {
			return err
		}
		spec = s
	case "broadcast":
		s, err := andk.NewBroadcastAll(*k)
		if err != nil {
			return err
		}
		spec = s
	case "lazy":
		s, err := andk.NewLazy(*k, *delta, 0)
		if err != nil {
			return err
		}
		spec = s
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}
	mu, err := dist.NewMu(*k)
	if err != nil {
		return err
	}

	useExact := *method == "exact" || (*method == "auto" && *k <= 14 && *protocol != "broadcast") ||
		(*method == "auto" && *protocol == "broadcast" && *k <= 12)
	fmt.Printf("AND_%d, protocol=%s, distribution=mu (Section 4.1)\n", *k, *protocol)
	fmt.Printf("reference scale: log2(k) = %.3f bits\n\n", math.Log2(float64(*k)))
	if useExact {
		report, err := core.ExactCosts(spec, mu, core.TreeLimits{})
		if err != nil {
			return err
		}
		fmt.Printf("method:           exact transcript-tree enumeration (%d transcripts)\n", report.NumTranscripts)
		fmt.Printf("CIC  I(Π;X|Z):    %.4f bits\n", report.CIC)
		fmt.Printf("IC   I(Π;X):      %.4f bits\n", report.ExternalIC)
		fmt.Printf("expected comm.:   %.4f bits\n", report.ExpectedBits)
		fmt.Printf("worst-case comm.: %d bits\n", report.WorstCaseBits)
		fmt.Printf("gap CC/IC:        %.2f (k/log2k = %.2f)\n",
			float64(report.WorstCaseBits)/report.ExternalIC,
			float64(*k)/math.Log2(float64(*k)))
		return nil
	}
	est, err := core.EstimateCICWorkers(spec, mu, rng.New(*seed), *samples, *parallel)
	if err != nil {
		return err
	}
	fmt.Printf("method:           Monte-Carlo (%d samples, exact inner term)\n", est.Samples)
	fmt.Printf("CIC  I(Π;X|Z):    %.4f ± %.4f bits\n", est.Mean, est.StdErr)
	fmt.Printf("mean comm.:       %.4f bits\n", est.MeanBits)
	fmt.Printf("gap k/CIC:        %.2f (k/log2k = %.2f)\n",
		float64(*k)/est.Mean, float64(*k)/math.Log2(float64(*k)))
	return nil
}
