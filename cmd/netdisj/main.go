// Command netdisj runs the optimal set-disjointness protocol on the
// concurrent networked runtime (internal/netrun) and checks transcript
// conformance against the sequential blackboard reference: same messages,
// same bit count, same answer, under any transport and any recoverable
// fault mix.
//
// Usage:
//
//	netdisj [-n 1024] [-k 6] [-kind mun|disjoint|intersecting]
//	        [-transport chan|pipe|tcp] [-topology board|star|ring|mesh]
//	        [-model broadcast|coordinator]
//	        [-faults "drop=0.05,corrupt=0.02"]
//	        [-seed 1] [-timeout 250ms] [-retries 12] [-trials 2]
//	        [-serve addr] [-runtrace dir] [-log level] [-version]
//
// With -topology, the run routes every frame over the chosen explicit
// link graph (internal/netrun Topology) and reports per-link wire
// accounting; -model coordinator switches to the message-passing protocol
// of the coordinator model (players ship bitmaps to a hub, Θ(n·k) bits),
// which requires an explicit topology.
//
// With -serve, the observability plane (/metrics, /healthz, /runs,
// /debug/pprof) is up for the duration of the run; with -runtrace, each
// trial writes a Chrome trace-event file netdisj-seed<N>-trial<T> to the
// given directory. Neither perturbs the run: stdout and the conformance
// checks are identical with or without them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"broadcastic/internal/blackboard"
	"broadcastic/internal/buildinfo"
	"broadcastic/internal/disj"
	"broadcastic/internal/faults"
	"broadcastic/internal/netrun"
	"broadcastic/internal/rng"
	"broadcastic/internal/serve"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/tracelog"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "netdisj:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("netdisj", flag.ContinueOnError)
	n := fs.Int("n", 1024, "universe size")
	k := fs.Int("k", 6, "number of players")
	kind := fs.String("kind", "mun", "instance kind: mun (hard distribution), disjoint, intersecting")
	transport := fs.String("transport", "chan", "transport: chan, pipe or tcp")
	topology := fs.String("topology", "board", "topology: board (legacy shared-board wiring), star, ring or mesh")
	model := fs.String("model", "broadcast", "delivery model: broadcast (replicas synced) or coordinator (message-passing)")
	faultSpec := fs.String("faults", "", `fault mix, e.g. "drop=0.05,dup=0.05,corrupt=0.02,delay=0.2:1ms" (empty: none)`)
	seed := fs.Uint64("seed", 1, "random seed (instances and fault streams)")
	timeout := fs.Duration("timeout", 250*time.Millisecond, "base per-attempt ARQ timeout")
	retries := fs.Int("retries", 12, "retransmission budget per frame")
	trials := fs.Int("trials", 2, "number of instances")
	serveAddr := fs.String("serve", "", "serve /metrics, /healthz, /runs and /debug/pprof on this address for the duration of the run")
	runtrace := fs.String("runtrace", "", "directory for per-trial Chrome trace-event files")
	var logCfg telemetry.LogConfig
	logCfg.AddFlags(fs)
	version := buildinfo.Flag(fs)
	var profiles telemetry.Profiles
	profiles.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.Resolve())
		return nil
	}
	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		return err
	}
	stopProfiles, err := profiles.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "netdisj: profiles:", err)
		}
	}()

	// Construction goes through the same parse helpers the conformance
	// tests use, so flag spellings cannot drift from the tested wiring.
	tr, err := netrun.ParseTransport(*transport)
	if err != nil {
		return err
	}
	topo, err := netrun.ParseTopology(*topology)
	if err != nil {
		return err
	}
	delivery, err := netrun.ParseDelivery(*model)
	if err != nil {
		return err
	}
	if delivery == netrun.DeliverCoordinator && topo == nil {
		return fmt.Errorf("-model coordinator requires an explicit -topology (star, ring or mesh)")
	}
	plan, err := faults.Parse(*faultSpec)
	if err != nil {
		return err
	}

	// The live plane (optional): one collector for /metrics, a broker for
	// per-trial /runs progress. Both strictly observe.
	var (
		col      *telemetry.Collector
		progress func(done, total int)
	)
	if *serveAddr != "" {
		col = telemetry.NewCollector()
		broker := serve.NewBroker()
		srv, err := serve.Start(*serveAddr, serve.NewMux(col, broker))
		if err != nil {
			return err
		}
		logger.Info("observability plane up", "addr", srv.Addr())
		progress = broker.ProgressFunc(fmt.Sprintf("netdisj-seed%d", *seed), "netdisj", col)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "netdisj: serve:", err)
			}
		}()
	}
	if *runtrace != "" {
		if err := os.MkdirAll(*runtrace, 0o755); err != nil {
			return err
		}
	}

	src := rng.New(*seed)
	fmt.Printf("DISJ_{n=%d, k=%d} on netrun: kind=%s, transport=%s, topology=%s, model=%s, faults=%q, trials=%d\n\n",
		*n, *k, *kind, *transport, *topology, delivery, *faultSpec, *trials)
	for t := 0; t < *trials; t++ {
		var inst *disj.Instance
		switch *kind {
		case "mun":
			inst, err = disj.GenerateFromMuN(src, *n, *k)
		case "disjoint":
			inst, err = disj.GenerateDisjoint(src, *n, *k, 0.5)
		case "intersecting":
			inst, err = disj.GenerateIntersecting(src, *n, *k, 1, 0.5)
		default:
			return fmt.Errorf("unknown kind %q", *kind)
		}
		if err != nil {
			return err
		}
		truth, err := inst.Disjoint()
		if err != nil {
			return err
		}

		// Sequential reference run on the same instance.
		refProto, err := newProtocol(delivery, inst)
		if err != nil {
			return err
		}
		refRes, err := blackboard.Run(refProto.Scheduler(), refProto.Players(), nil, refProto.Limits())
		if err != nil {
			return err
		}
		refOut, err := refProto.Outcome(refRes.Board)
		if err != nil {
			return err
		}

		// Networked run; protocols are single-use, so build a fresh one.
		proto, err := newProtocol(delivery, inst)
		if err != nil {
			return err
		}
		runID := fmt.Sprintf("netdisj-seed%d-trial%d", *seed, t)
		var rec telemetry.Recorder
		if col != nil {
			rec = col
		}
		var sink *tracelog.Sink
		if *runtrace != "" {
			sink = tracelog.New(runID, rec)
			rec = sink
		}
		res, err := netrun.Run(proto.Scheduler(), proto.Players(), nil, netrun.Config{
			Transport:  tr,
			Topology:   topo,
			Delivery:   delivery,
			Faults:     plan,
			Seed:       src.Uint64(),
			Timeout:    *timeout,
			MaxRetries: *retries,
			Limits:     proto.Limits(),
			Recorder:   rec,
		})
		if sink != nil {
			// Written even for crashed trials: a trace of the failure is
			// exactly what the flag is for.
			path := filepath.Join(*runtrace, tracelog.FileName(runID))
			if werr := writeTrace(path, sink); werr != nil {
				return werr
			}
			logger.Info("trace written", "trial", t, "path", path)
		}
		if progress != nil {
			progress(t+1, *trials)
		}
		if err != nil {
			if errors.Is(err, netrun.ErrPlayerCrashed) && res != nil {
				fmt.Printf("trial %d: crashed players %v after %d messages (%d board bits)\n",
					t, res.Crashed, res.Board.NumMessages(), res.Board.TotalBits())
				continue
			}
			return err
		}
		out, err := proto.Outcome(res.Board)
		if err != nil {
			return err
		}
		if out.Disjoint != truth {
			return fmt.Errorf("trial %d: networked run answered disjoint=%v, truth is %v", t, out.Disjoint, truth)
		}
		if res.Board.TranscriptKey() != refRes.Board.TranscriptKey() {
			return fmt.Errorf("trial %d: networked transcript diverges from sequential reference", t)
		}
		if res.Stats.BoardBits != refOut.Bits {
			return fmt.Errorf("trial %d: board bits %d != sequential %d", t, res.Stats.BoardBits, refOut.Bits)
		}

		c := res.Stats.Faults
		fmt.Printf("trial %d (disjoint=%v): conformant with sequential reference\n", t, truth)
		fmt.Printf("  board: %8d bits  %5d messages\n", res.Stats.BoardBits, res.Board.NumMessages())
		fmt.Printf("  wire:  %8d bits  (%.3f × board)  retries=%d\n",
			res.Stats.WireBits, float64(res.Stats.WireBits)/float64(res.Stats.BoardBits), totalRetries(res.Stats))
		fmt.Printf("  faults injected: drop=%d dup=%d corrupt=%d delay=%d\n", c.Drops, c.Duplicates, c.Corruptions, c.Delays)
		for _, ls := range res.Stats.PerLink {
			fmt.Printf("  link %d-%d: %8d bits  retries=%d\n", ls.Link.A, ls.Link.B, ls.WireBits, ls.Retries)
		}
	}
	return nil
}

// protocol is the shape both DISJ adapters share; which one runs is the
// delivery model's choice.
type protocol interface {
	Scheduler() blackboard.Scheduler
	Players() []blackboard.Player
	Limits() blackboard.Limits
	Outcome(*blackboard.Board) (*disj.Outcome, error)
}

// newProtocol picks the protocol matching the delivery model: the Section 5
// broadcast protocol reads the shared board, the coordinator-model protocol
// ships bitmaps to the hub and never reads it.
func newProtocol(delivery netrun.DeliveryMode, inst *disj.Instance) (protocol, error) {
	if delivery == netrun.DeliverCoordinator {
		return disj.NewCoordinatorProtocol(inst, disj.CoordinatorOptions{})
	}
	return disj.NewOptimalProtocol(inst, disj.Options{})
}

func writeTrace(path string, sink *tracelog.Sink) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := sink.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func totalRetries(s netrun.Stats) int64 {
	var total int64
	if len(s.PerLink) > 0 {
		// Topology runs account per physical link, not per player.
		for _, ls := range s.PerLink {
			total += ls.Retries
		}
		return total
	}
	for _, ps := range s.PerPlayer {
		total += ps.Retries
	}
	return total
}
