package main

import "testing"

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-n", "128", "-k", "4", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "64", "-k", "3", "-kind", "disjoint", "-transport", "pipe", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "64", "-k", "3", "-kind", "intersecting",
		"-faults", "drop=0.05,corrupt=0.02", "-timeout", "50ms", "-trials", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "bogus"}); err == nil {
		t.Fatal("bogus kind accepted")
	}
	if err := run([]string{"-transport", "bogus"}); err == nil {
		t.Fatal("bogus transport accepted")
	}
	if err := run([]string{"-faults", "drop=2"}); err == nil {
		t.Fatal("invalid fault probability accepted")
	}
}

func TestRunTopologySmoke(t *testing.T) {
	for _, topo := range []string{"star", "ring", "mesh"} {
		if err := run([]string{"-n", "64", "-k", "3", "-topology", topo, "-trials", "1"}); err != nil {
			t.Fatalf("topology %s: %v", topo, err)
		}
	}
	if err := run([]string{"-n", "64", "-k", "3", "-topology", "star", "-model", "coordinator", "-trials", "1"}); err != nil {
		t.Fatalf("coordinator model: %v", err)
	}
	if err := run([]string{"-n", "64", "-k", "3", "-topology", "ring",
		"-faults", "drop=0.05,corrupt=0.02", "-timeout", "50ms", "-trials", "1"}); err != nil {
		t.Fatalf("ring with faults: %v", err)
	}
	if err := run([]string{"-topology", "bogus"}); err == nil {
		t.Fatal("bogus topology accepted")
	}
	if err := run([]string{"-model", "bogus"}); err == nil {
		t.Fatal("bogus model accepted")
	}
	if err := run([]string{"-model", "coordinator"}); err == nil {
		t.Fatal("coordinator model without a topology accepted")
	}
}
