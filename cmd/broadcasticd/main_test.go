package main

import (
	"bytes"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-scale", "medium"},
		{"-only", "E99"},
		{"-bogusflag"},
		{"-log", "shouty"},
	} {
		var out bytes.Buffer
		if err := run(append(args, "-serve", "127.0.0.1:0"), &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestRunVersion(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) == "" {
		t.Error("-version printed nothing")
	}
}

func TestRunOnce(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-serve", "127.0.0.1:0", "-once", "-only", "E10", "-seed", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E10") {
		t.Errorf("suite output carries no E10 table:\n%s", out.String())
	}

	// A pure job service (-suite=false) starts and drains cleanly too.
	out.Reset()
	if err := run([]string{"-serve", "127.0.0.1:0", "-once", "-suite=false"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "" {
		t.Errorf("-suite=false printed tables: %q", got)
	}
}

// TestRunSIGTERMGracefulShutdown pins the daemon's signal path: without
// -once it serves until SIGTERM, then shuts the plane and job fleet down
// and returns nil.
func TestRunSIGTERMGracefulShutdown(t *testing.T) {
	// Shield the test process: with this channel registered, SIGTERM is
	// delivered to channels instead of killing us, even in the window
	// before run() installs its own NotifyContext handler.
	shield := make(chan os.Signal, 16)
	signal.Notify(shield, syscall.SIGTERM)
	defer signal.Stop(shield)

	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		done <- run([]string{"-serve", "127.0.0.1:0", "-suite=false"}, &out)
	}()

	// run() has no handle we can query for "signal handler installed", so
	// nudge it with SIGTERM until it exits.
	deadline := time.After(30 * time.Second)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run after SIGTERM: %v", err)
			}
			return
		case <-tick.C:
			if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("run() ignored SIGTERM")
		}
	}
}
