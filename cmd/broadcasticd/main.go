// Command broadcasticd runs the experiment suite behind a live
// observability plane: while experiments execute (and, by default, after
// they finish), it serves
//
//	/metrics       Prometheus text exposition of the shared collector
//	/healthz       liveness + build identity JSON
//	/runs          per-experiment progress (NDJSON; ?follow=1 or SSE streams)
//	/jobs          multi-tenant job API (POST to submit, GET to inspect,
//	               DELETE to cancel) over a bounded worker fleet with a
//	               content-addressed result cache
//	/debug/pprof/  runtime profiles
//
// Usage:
//
//	broadcasticd [-serve 127.0.0.1:8344] [-seed N] [-scale quick|full]
//	             [-only E4,E7] [-parallel N] [-once] [-runtrace dir]
//	             [-suite=false] [-jobs=false] [-job-workers N]
//	             [-queue-cap N] [-cache-entries N] [-cache-bytes N]
//	             [-cache-dir dir] [-flight N] [-log level]
//	             [-logformat text|json] [-version]
//
// Tables print to stdout exactly as cmd/experiments prints them; the
// serving, tracing and logging planes only observe, so stdout is
// byte-identical to an unobserved run with the same seed and scale. With
// -runtrace, each experiment additionally writes a Chrome trace-event
// file <dir>/<ID>-seed<N>.trace.json, openable at ui.perfetto.dev.
//
// Without -once the process keeps serving after the suite completes (so
// dashboards can scrape final totals) until SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"broadcastic/internal/buildinfo"
	"broadcastic/internal/jobs"
	"broadcastic/internal/serve"
	"broadcastic/internal/sim"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/causal"
	"broadcastic/internal/telemetry/tracelog"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "broadcasticd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("broadcasticd", flag.ContinueOnError)
	addr := fs.String("serve", "127.0.0.1:8344", "address for the observability plane (\":0\" picks a free port)")
	seed := fs.Uint64("seed", 1, "root random seed")
	scale := fs.String("scale", "quick", "experiment scale: quick or full")
	only := fs.String("only", "", "comma-separated experiment IDs to run (e.g. E4,E7)")
	parallel := fs.Int("parallel", 0, "worker goroutines per sweep (0 = one per CPU); output is identical for every value")
	batched := fs.Bool("batch", true, "use the 64-lane word-parallel engine where eligible; output is identical either way")
	noir := fs.Bool("noir", false, "disable the compiled-IR fast path (escape hatch; output is identical either way)")
	once := fs.Bool("once", false, "exit when the suite completes instead of serving until a signal")
	runtrace := fs.String("runtrace", "", "directory for per-experiment Chrome trace-event files")
	suite := fs.Bool("suite", true, "run the experiment suite at startup (disable for a pure job service)")
	jobsOn := fs.Bool("jobs", true, "serve the /jobs API")
	jobWorkers := fs.Int("job-workers", 0, "job worker fleet size (0 = one per CPU)")
	queueCap := fs.Int("queue-cap", jobs.DefaultQueueCap, "per-tenant job queue capacity")
	cacheEntries := fs.Int("cache-entries", 64, "result cache capacity in entries")
	cacheBytes := fs.Int64("cache-bytes", 0, "result cache capacity in bytes (0 = unbounded)")
	cacheDir := fs.String("cache-dir", "", "directory for cache disk spill (\"\" = memory only)")
	flight := fs.Int("flight", causal.DefaultCapacity, "flight recorder capacity in records (0 disables causal tracing)")
	var logCfg telemetry.LogConfig
	logCfg.AddFlags(fs)
	version := buildinfo.Flag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.Resolve())
		return nil
	}
	logger, err := logCfg.Logger(os.Stderr)
	if err != nil {
		return err
	}
	cfg := sim.Config{Seed: *seed, Workers: *parallel, DisableBatching: !*batched, DisableIR: *noir}
	switch *scale {
	case "quick":
		cfg.Scale = sim.Quick
	case "full":
		cfg.Scale = sim.Full
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	selected, err := selectExperiments(*only)
	if err != nil {
		return err
	}
	if *runtrace != "" {
		if err := os.MkdirAll(*runtrace, 0o755); err != nil {
			return err
		}
	}

	col := telemetry.NewCollector()
	broker := serve.NewBrokerRecorded(col)
	health := &serve.Health{}
	mux := serve.NewMuxHealth(col, broker, health)
	// The flight recorder is the bounded causal-trace ring behind
	// /debug/flightrecorder; failed jobs and crashes auto-dump their trace
	// to stderr so a crash leaves its causal chain in the logs.
	var fr *causal.Recorder
	if *flight > 0 {
		fr = causal.NewRecorder(*flight)
		fr.SetAutoDump(os.Stderr)
		serve.AttachFlightRecorder(mux, fr)
	}
	var svc *jobs.Service
	if *jobsOn {
		if *cacheDir != "" {
			if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
				return err
			}
		}
		svc = jobs.New(jobs.Options{
			Workers:  *jobWorkers,
			QueueCap: *queueCap,
			Cache:    jobs.NewCache(*cacheEntries, *cacheBytes, *cacheDir, col),
			Recorder: col,
			Flight:   fr,
			// Submitted jobs stream on /runs alongside the suite, keyed by
			// job ID so concurrent runs of the same experiment stay distinct.
			Progress: func(jobID, experiment string) func(done, total int) {
				return broker.ProgressFunc(jobID, experiment, col)
			},
		})
		serve.AttachJobs(mux, svc)
	}
	srv, err := serve.Start(*addr, mux)
	if err != nil {
		if svc != nil {
			svc.Close()
		}
		return err
	}
	// Ready only once everything that serves requests is up: from here
	// /healthz flips to 200 until shutdown begins draining.
	health.SetReady(true)
	logger.Info("observability plane up",
		"addr", srv.Addr(), "scale", *scale, "seed", *seed,
		"experiments", len(selected), "jobs", *jobsOn)

	if !*suite {
		selected = nil
	}
	// Experiments run sequentially: the daemon's point is a legible live
	// view, and one experiment at a time keeps /runs progress and the
	// /metrics deltas attributable. Each sweep still parallelizes its
	// cells across the worker pool.
	for _, exp := range selected {
		runID := fmt.Sprintf("%s-seed%d", exp.ID, *seed)
		ecfg := cfg
		ecfg.Recorder = col
		var sink *tracelog.Sink
		if *runtrace != "" {
			sink = tracelog.New(runID, col)
			ecfg.Recorder = sink
		}
		if fr != nil {
			// Suite runs trace too: one root per experiment, teed into the
			// run's Perfetto trace when -runtrace is on (the sink attaches
			// before the root so the trace's identity lands on the process).
			var sinkTee causal.EventSink
			if sink != nil {
				sinkTee = sink
			}
			ecfg.Causal = fr.StartTraceSink(sinkTee, causal.ExperimentRoot,
				causal.String("experiment", exp.ID), causal.String("runId", runID))
		}
		ecfg.Progress = broker.ProgressFunc(runID, exp.ID, col)
		logger.Info("experiment start", "id", exp.ID, "runId", runID)
		start := time.Now()
		tbl, err := exp.Run(ecfg)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		if err := tbl.Render(out); err != nil {
			return err
		}
		logger.Info("experiment done", "id", exp.ID, "elapsed", time.Since(start),
			"blackboardBits", col.Counter(telemetry.BlackboardBits),
			"wireBits", col.Counter(telemetry.NetrunWireBits))
		if sink != nil {
			path := filepath.Join(*runtrace, tracelog.FileName(runID))
			if err := writeTrace(path, sink); err != nil {
				return err
			}
			logger.Info("trace written", "id", exp.ID, "path", path)
		}
	}

	if !*once {
		logger.Info("suite complete; serving until SIGINT/SIGTERM", "addr", srv.Addr())
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		<-ctx.Done()
		stop()
	}
	// Draining starts: report not-ready before tearing anything down so
	// orchestrators stop routing while in-flight work completes.
	health.SetReady(false)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// HTTP first (no new submissions), then drain the job fleet.
	shutdownErr := srv.Shutdown(shutdownCtx)
	if svc != nil {
		svc.Close()
		logger.Info("job service drained")
	}
	return shutdownErr
}

func selectExperiments(only string) ([]sim.Experiment, error) {
	all := sim.Experiments()
	if only == "" {
		return all, nil
	}
	byID := make(map[string]sim.Experiment, len(all))
	for _, exp := range all {
		byID[exp.ID] = exp
	}
	var selected []sim.Experiment
	for _, id := range strings.Split(only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		exp, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		selected = append(selected, exp)
	}
	return selected, nil
}

func writeTrace(path string, sink *tracelog.Sink) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := sink.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
