package broadcastic_test

// The disabled-telemetry overhead guard. Instrumentation is threaded
// through the hot paths (blackboard delivery, netrun wire handling, pool
// scheduling) behind a single branch or an interface call; this test pins
// the contract that a recorder that does nothing costs (nearly) nothing,
// so telemetry can stay compiled in unconditionally.

import (
	"io"
	"sort"
	"testing"
	"time"

	"broadcastic/internal/sim"
	"broadcastic/internal/telemetry/causal"
)

// noopRecorder is a live Recorder that discards everything: the worst
// case for the disabled path, since every instrumentation site takes its
// branch and pays the dynamic dispatch.
type noopRecorder struct{}

func (noopRecorder) Count(string, int64)     {}
func (noopRecorder) Observe(string, float64) {}

// medianRunNs interleaves rounds of E1 under both recorders and returns
// the median observed wall time for each series. The interleaved schedule
// spreads scheduler interference and thermal drift evenly across the two
// series; the median then discards outlier rounds in both directions.
// On single-CPU runners (CI's smallest shape) a GC pause or a preempting
// daemon can inflate an arbitrary subset of rounds severalfold, which a
// min-of-N comparison converts into a spurious ratio whenever the two
// series catch different luck — the median is stable there because a
// majority of rounds must be disturbed before it moves.
func medianRunNs(t *testing.T, rounds int, variant func() sim.Config) (baseNs, variantNs time.Duration) {
	t.Helper()
	run := func(cfg sim.Config) time.Duration {
		start := time.Now()
		if _, err := sim.E1DisjScalingN(cfg); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	base := func() sim.Config {
		return sim.Config{Seed: 1, Scale: sim.Quick, Workers: 1}
	}
	baseSamples := make([]time.Duration, 0, rounds)
	variantSamples := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		baseSamples = append(baseSamples, run(base()))
		variantSamples = append(variantSamples, run(variant()))
	}
	return medianDuration(baseSamples), medianDuration(variantSamples)
}

func medianDuration(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	n := len(ds)
	if n%2 == 1 {
		return ds[n/2]
	}
	return (ds[n/2-1] + ds[n/2]) / 2
}

// TestNoopRecorderOverhead asserts the <2% disabled-path budget on the E1
// sweep (the benchmark the CI perf gate watches most closely). Wall-clock
// thresholds are inherently noisy, so the test compares medians of
// repeated interleaved runs and retries with growing round counts, only
// failing if every attempt exceeds the budget.
func TestNoopRecorderOverhead(t *testing.T) {
	noop := func() sim.Config {
		return sim.Config{Seed: 1, Scale: sim.Quick, Workers: 1, Recorder: noopRecorder{}}
	}
	assertBudget(t, "no-op recorder", noop)
}

// TestTracedPathOverhead asserts the same <2% budget with the causal plane
// fully live: a real flight recorder with auto-dump armed, every cell and
// shard opening spans into the sharded ring alongside the no-op metrics
// recorder. This is the complete observability stack a traced job runs
// under, so the budget covers production tracing, not just the disabled
// branch.
func TestTracedPathOverhead(t *testing.T) {
	// One long-lived recorder, as in the daemon: rounds share the ring (a
	// fresh 32k-record ring per round would be measuring allocator churn,
	// not tracing).
	fr := causal.NewRecorder(0)
	fr.SetAutoDump(io.Discard)
	traced := func() sim.Config {
		return sim.Config{Seed: 1, Scale: sim.Quick, Workers: 1,
			Recorder: noopRecorder{},
			Causal:   fr.StartTrace(causal.ExperimentRoot, causal.String("experiment", "E1"))}
	}
	assertBudget(t, "fully-traced path", traced)
}

// assertBudget compares the variant's median E1 wall time against the bare
// baseline, retrying with growing round counts and only failing if every
// attempt exceeds the budget.
func assertBudget(t *testing.T, label string, variant func() sim.Config) {
	t.Helper()
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	const budget = 1.02
	// Warm caches and the allocator/pool state once.
	medianRunNs(t, 1, variant)
	var worst float64
	for attempt, rounds := range []int{7, 11, 15} {
		baseNs, varNs := medianRunNs(t, rounds, variant)
		ratio := float64(varNs) / float64(baseNs)
		t.Logf("attempt %d: base %v, %s %v, ratio %.4f", attempt, baseNs, label, varNs, ratio)
		if ratio <= budget {
			return
		}
		if ratio > worst {
			worst = ratio
		}
	}
	t.Fatalf("%s overhead %.2f%% exceeds 2%% budget in every attempt", label, (worst-1)*100)
}
