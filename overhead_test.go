package broadcastic_test

// The disabled-telemetry overhead guard. Instrumentation is threaded
// through the hot paths (blackboard delivery, netrun wire handling, pool
// scheduling) behind a single branch or an interface call; this test pins
// the contract that a recorder that does nothing costs (nearly) nothing,
// so telemetry can stay compiled in unconditionally.

import (
	"testing"
	"time"

	"broadcastic/internal/sim"
	"broadcastic/internal/telemetry"
)

// noopRecorder is a live Recorder that discards everything: the worst
// case for the disabled path, since every instrumentation site takes its
// branch and pays the dynamic dispatch.
type noopRecorder struct{}

func (noopRecorder) Count(string, int64)     {}
func (noopRecorder) Observe(string, float64) {}

// minRunNs interleaves rounds of E1 under both recorders and returns the
// fastest observed wall time for each. Min-of-N against an interleaved
// schedule is the standard defense against clock noise and thermal drift:
// the minimum estimates the true cost with the scheduler's interference
// stripped out.
func minRunNs(t *testing.T, rounds int) (nilNs, noopNs time.Duration) {
	t.Helper()
	nilNs, noopNs = time.Duration(1<<62), time.Duration(1<<62)
	run := func(rec telemetry.Recorder) time.Duration {
		cfg := sim.Config{Seed: 1, Scale: sim.Quick, Workers: 1, Recorder: rec}
		start := time.Now()
		if _, err := sim.E1DisjScalingN(cfg); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	for i := 0; i < rounds; i++ {
		if d := run(nil); d < nilNs {
			nilNs = d
		}
		if d := run(noopRecorder{}); d < noopNs {
			noopNs = d
		}
	}
	return nilNs, noopNs
}

// TestNoopRecorderOverhead asserts the <2% disabled-path budget on the E1
// sweep (the benchmark the CI perf gate watches most closely). Wall-clock
// thresholds are inherently noisy, so the test retries with growing round
// counts and only fails if every attempt exceeds the budget.
func TestNoopRecorderOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	const budget = 1.02
	// Warm caches and JIT-less Go's page/allocator state once.
	minRunNs(t, 1)
	var worst float64
	for attempt, rounds := range []int{7, 11, 15} {
		nilNs, noopNs := minRunNs(t, rounds)
		ratio := float64(noopNs) / float64(nilNs)
		t.Logf("attempt %d: nil %v, noop %v, ratio %.4f", attempt, nilNs, noopNs, ratio)
		if ratio <= budget {
			return
		}
		if ratio > worst {
			worst = ratio
		}
	}
	t.Fatalf("no-op recorder overhead %.2f%% exceeds 2%% budget in every attempt", (worst-1)*100)
}
