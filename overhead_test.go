package broadcastic_test

// The disabled-telemetry overhead guard. Instrumentation is threaded
// through the hot paths (blackboard delivery, netrun wire handling, pool
// scheduling) behind a single branch or an interface call; this test pins
// the contract that a recorder that does nothing costs (nearly) nothing,
// so telemetry can stay compiled in unconditionally.

import (
	"sort"
	"testing"
	"time"

	"broadcastic/internal/sim"
	"broadcastic/internal/telemetry"
)

// noopRecorder is a live Recorder that discards everything: the worst
// case for the disabled path, since every instrumentation site takes its
// branch and pays the dynamic dispatch.
type noopRecorder struct{}

func (noopRecorder) Count(string, int64)     {}
func (noopRecorder) Observe(string, float64) {}

// medianRunNs interleaves rounds of E1 under both recorders and returns
// the median observed wall time for each series. The interleaved schedule
// spreads scheduler interference and thermal drift evenly across the two
// series; the median then discards outlier rounds in both directions.
// On single-CPU runners (CI's smallest shape) a GC pause or a preempting
// daemon can inflate an arbitrary subset of rounds severalfold, which a
// min-of-N comparison converts into a spurious ratio whenever the two
// series catch different luck — the median is stable there because a
// majority of rounds must be disturbed before it moves.
func medianRunNs(t *testing.T, rounds int) (nilNs, noopNs time.Duration) {
	t.Helper()
	run := func(rec telemetry.Recorder) time.Duration {
		cfg := sim.Config{Seed: 1, Scale: sim.Quick, Workers: 1, Recorder: rec}
		start := time.Now()
		if _, err := sim.E1DisjScalingN(cfg); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	nilSamples := make([]time.Duration, 0, rounds)
	noopSamples := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		nilSamples = append(nilSamples, run(nil))
		noopSamples = append(noopSamples, run(noopRecorder{}))
	}
	return medianDuration(nilSamples), medianDuration(noopSamples)
}

func medianDuration(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	n := len(ds)
	if n%2 == 1 {
		return ds[n/2]
	}
	return (ds[n/2-1] + ds[n/2]) / 2
}

// TestNoopRecorderOverhead asserts the <2% disabled-path budget on the E1
// sweep (the benchmark the CI perf gate watches most closely). Wall-clock
// thresholds are inherently noisy, so the test compares medians of
// repeated interleaved runs and retries with growing round counts, only
// failing if every attempt exceeds the budget.
func TestNoopRecorderOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	const budget = 1.02
	// Warm caches and the allocator/pool state once.
	medianRunNs(t, 1)
	var worst float64
	for attempt, rounds := range []int{7, 11, 15} {
		nilNs, noopNs := medianRunNs(t, rounds)
		ratio := float64(noopNs) / float64(nilNs)
		t.Logf("attempt %d: nil %v, noop %v, ratio %.4f", attempt, nilNs, noopNs, ratio)
		if ratio <= budget {
			return
		}
		if ratio > worst {
			worst = ratio
		}
	}
	t.Fatalf("no-op recorder overhead %.2f%% exceeds 2%% budget in every attempt", (worst-1)*100)
}
