// Package broadcastic reproduces "On Information Complexity in the
// Broadcast Model" (Braverman & Oshman, PODC 2015) as an executable Go
// library: the shared-blackboard communication model, the optimal
// Θ(n log k + k) set-disjointness protocol, an exact information-cost
// engine built on the paper's Lemma 3 product decomposition, and the
// Section 6 compression machinery (Lemma 7 rejection sampling, Theorem 3
// amortization).
//
// Protocols run on two interchangeable runtimes: the sequential
// blackboard and internal/netrun, a concurrent networked runtime (one
// goroutine per player, pluggable chan/pipe/TCP transports, seeded fault
// injection) whose board transcripts are bit-identical to the sequential
// execution.
//
// The library lives under internal/; see README.md for the package map,
// examples/ for runnable entry points, and bench_test.go for the
// experiment suite (one benchmark per reproduced claim, E1–E13).
package broadcastic
