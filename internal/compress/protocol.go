package compress

import (
	"fmt"

	"broadcastic/internal/blackboard"
	"broadcastic/internal/encoding"
	"broadcastic/internal/prob"
)

// SamplerProtocol wraps one Lemma 7 transmission as a two-player
// blackboard protocol, so any runtime driving the blackboard state machine
// — sequential blackboard.Run or the concurrent internal/netrun — can
// execute the sampler with full bit accounting.
//
// Player 0 (the sender) runs Transmit against the board's public
// randomness and writes the exact encoded payload; player 1 (standing in
// for the receivers) announces the reconstructed value in a fixed-width
// field, certifying on the board that the transmission decoded. The run
// must be given a public randomness source — the sampler is built on it.
//
// A protocol instance is single-use and not itself concurrency-safe;
// concurrent runtimes serialize scheduler and player calls.
type SamplerProtocol struct {
	eta, nu prob.Dist
	res     *TransmitResult
}

// NewSamplerProtocol binds the sender's distribution η and the receivers'
// prior ν (validated by Transmit at execution time).
func NewSamplerProtocol(eta, nu prob.Dist) *SamplerProtocol {
	return &SamplerProtocol{eta: eta, nu: nu}
}

// Scheduler returns the two-turn schedule: sender, then receiver, done.
func (sp *SamplerProtocol) Scheduler() blackboard.Scheduler {
	return blackboard.FuncScheduler(func(b *blackboard.Board) (int, bool, error) {
		switch b.NumMessages() {
		case 0:
			return 0, false, nil
		case 1:
			return 1, false, nil
		default:
			return 0, true, nil
		}
	})
}

// Players returns the sender and the echoing receiver.
func (sp *SamplerProtocol) Players() []blackboard.Player {
	sender := blackboard.FuncPlayer(func(b *blackboard.Board) (blackboard.Message, error) {
		res, err := Transmit(sp.eta, sp.nu, b.Public())
		if err != nil {
			return blackboard.Message{}, err
		}
		sp.res = res
		return blackboard.Message{Player: 0, Bits: res.Payload, Len: res.Bits}, nil
	})
	receiver := blackboard.FuncPlayer(func(b *blackboard.Board) (blackboard.Message, error) {
		if sp.res == nil {
			return blackboard.Message{}, fmt.Errorf("compress: receiver spoke before the transmission")
		}
		var w encoding.BitWriter
		width := encoding.FixedWidth(uint64(sp.eta.Size()))
		if err := w.WriteBits(uint64(sp.res.Value), width); err != nil {
			return blackboard.Message{}, err
		}
		return blackboard.NewMessage(1, &w), nil
	})
	return []blackboard.Player{sender, receiver}
}

// Limits bounds the execution at its exact two messages.
func (sp *SamplerProtocol) Limits() blackboard.Limits {
	return blackboard.Limits{MaxMessages: 2}
}

// Result returns the transmission outcome, or nil before execution.
func (sp *SamplerProtocol) Result() *TransmitResult { return sp.res }
