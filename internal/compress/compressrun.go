package compress

import (
	"fmt"

	"broadcastic/internal/core"
	"broadcastic/internal/rng"
)

// The external observer (exact Bayes posterior over inputs from the board,
// message prediction ν) lives in core.Observer — it is shared between this
// package's compression (Lemma 7 needs ν as the receivers' prior) and
// core's chain-rule information estimator.

// RunResult reports a compressed protocol execution.
type RunResult struct {
	Transcript     core.Transcript
	Output         int
	CompressedBits int // bits used by the Lemma 7 transmissions
	OriginalBits   int // bits the uncompressed protocol would have written
	Rounds         int
}

// CompressRun executes spec on input x, transmitting every round through
// the Lemma 7 sampler instead of writing the message directly. The
// resulting transcript has exactly the distribution of the original
// protocol (the sampler is errorless), while the expected compressed cost
// tracks Σ_rounds D(η ‖ ν) = the protocol's external information cost, plus
// the per-round O(log) overhead.
func CompressRun(spec core.Spec, prior core.Prior, x []int, public *rng.Source) (*RunResult, error) {
	if len(x) != spec.NumPlayers() {
		return nil, fmt.Errorf("compress: input has %d entries, want %d", len(x), spec.NumPlayers())
	}
	obs, err := core.NewObserver(prior)
	if err != nil {
		return nil, err
	}
	var (
		t      core.Transcript
		result RunResult
		tr     Transmitter // block scratch shared by every round of this run
	)
	for step := 0; ; step++ {
		if step > 1<<16 {
			return nil, fmt.Errorf("compress: protocol exceeded %d rounds", 1<<16)
		}
		speaker, done, err := spec.NextSpeaker(t)
		if err != nil {
			return nil, err
		}
		if done {
			out, err := spec.Output(t)
			if err != nil {
				return nil, err
			}
			result.Transcript = t
			result.Output = out
			return &result, nil
		}
		eta, err := spec.MessageDist(t, speaker, x[speaker])
		if err != nil {
			return nil, err
		}
		nu, err := obs.PredictMessage(spec, t, speaker)
		if err != nil {
			return nil, err
		}
		tx, err := tr.Transmit(eta, nu, public)
		if err != nil {
			return nil, fmt.Errorf("compress: round %d: %w", step, err)
		}
		symBits, err := spec.MessageBits(t, tx.Value)
		if err != nil {
			return nil, err
		}
		result.CompressedBits += tx.Bits
		result.OriginalBits += symBits
		result.Rounds++
		if err := obs.Update(spec, t, speaker, tx.Value); err != nil {
			return nil, err
		}
		t = append(t, tx.Value)
	}
}
