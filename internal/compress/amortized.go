package compress

import (
	"fmt"
	"math"

	"broadcastic/internal/core"
	"broadcastic/internal/rng"
)

// Theorem 3 machinery: run n independent copies of a protocol in parallel,
// round by round, and compress each round's combined message with one
// Lemma 7 transmission over the product universe. The combined divergence
// is the sum of the per-copy divergences (independence), while the O(log)
// overhead is paid once per round per speaker — so the per-copy cost tends
// to IC_μ(Π) as n → ∞.

// AmortizedResult reports one n-fold compressed execution.
type AmortizedResult struct {
	Copies         int
	CompressedBits int     // total bits across all rounds
	PerCopyBits    float64 // CompressedBits / Copies
	OriginalBits   int     // uncompressed total
	Rounds         int     // rounds of the combined protocol
	Transmissions  int     // Lemma 7 calls (round × distinct speakers)
	Outputs        []int   // per-copy protocol outputs
}

// copyState tracks one running copy. Its input slice, transcript backing
// and observer persist across runs of the owning amortizedRunner.
type copyState struct {
	x        []int
	t        core.Transcript
	obs      *core.Observer
	done     bool
	output   int
	origBits int
}

// amortizedRunner holds every buffer an n-fold compressed execution needs —
// the prior sampler, one observer and transcript per copy, the prediction
// vector, the per-group log-ratio and pending-symbol scratch — so repeated
// runs (E11 sweeps a copy-count grid with many repeats per point) recycle
// all of it instead of reallocating per execution.
type amortizedRunner struct {
	spec  core.Spec
	prior core.Prior
	ps    *core.PriorSampler

	states []copyState

	nu        []float64 // observer prediction, reused across every round
	logRatios []float64
	pendC     []int // copy indices awaiting the group's transmission
	pendSym   []int // their realized symbols
	actC      []int // active copy indices this round, ascending
	actS      []int // their speakers; -1 marks entries already transmitted
}

func newAmortizedRunner(spec core.Spec, prior core.Prior) (*amortizedRunner, error) {
	ps, err := core.NewPriorSampler(prior)
	if err != nil {
		return nil, err
	}
	return &amortizedRunner{spec: spec, prior: prior, ps: ps}, nil
}

// run executes n copies, drawing inputs and messages from src exactly as
// RunAmortized always has: per copy the prior draws, then per round, per
// speaker group in first-seen order, per member copy in index order, one
// message draw followed by the group's simulated transmission draws.
func (r *amortizedRunner) run(copies int, src *rng.Source) (*AmortizedResult, error) {
	if copies < 1 {
		return nil, fmt.Errorf("compress: copy count %d < 1", copies)
	}
	if src == nil {
		return nil, fmt.Errorf("compress: nil randomness source")
	}
	for len(r.states) < copies {
		obs, err := core.NewObserver(r.prior)
		if err != nil {
			return nil, err
		}
		r.states = append(r.states, copyState{
			x:   make([]int, r.prior.NumPlayers()),
			obs: obs,
		})
	}
	states := r.states[:copies]
	for c := range states {
		st := &states[c]
		if _, err := r.ps.Sample(src, st.x); err != nil {
			return nil, err
		}
		st.obs.Reset()
		st.t = st.t[:0]
		st.done = false
		st.output = 0
		st.origBits = 0
	}

	result := &AmortizedResult{Copies: copies, Outputs: make([]int, copies)}
	for round := 0; ; round++ {
		if round > 1<<16 {
			return nil, fmt.Errorf("compress: combined protocol exceeded %d rounds", 1<<16)
		}
		// Determine each active copy's speaker. Copies sharing a speaker
		// form one group per round, processed in first-seen speaker order
		// (copy-index order within a group), sharing one product
		// transmission.
		r.actC, r.actS = r.actC[:0], r.actS[:0]
		for c := range states {
			st := &states[c]
			if st.done {
				continue
			}
			speaker, done, err := r.spec.NextSpeaker(st.t)
			if err != nil {
				return nil, err
			}
			if done {
				out, err := r.spec.Output(st.t)
				if err != nil {
					return nil, err
				}
				st.done = true
				st.output = out
				result.Outputs[c] = out
				continue
			}
			r.actC = append(r.actC, c)
			r.actS = append(r.actS, speaker)
		}
		if len(r.actC) == 0 {
			break
		}
		result.Rounds++
		for j := range r.actS {
			speaker := r.actS[j]
			if speaker < 0 {
				continue // already handled as part of an earlier group
			}
			r.logRatios = r.logRatios[:0]
			r.pendC, r.pendSym = r.pendC[:0], r.pendSym[:0]
			for jj := j; jj < len(r.actS); jj++ {
				if r.actS[jj] != speaker {
					continue
				}
				r.actS[jj] = -1
				c := r.actC[jj]
				st := &states[c]
				eta, err := r.spec.MessageDist(st.t, speaker, st.x[speaker])
				if err != nil {
					return nil, err
				}
				nu, err := st.obs.PredictMessageInto(r.spec, st.t, speaker, r.nu)
				if err != nil {
					return nil, err
				}
				r.nu = nu
				sym := eta.Sample(src)
				pe := eta.P(sym)
				pn := 0.0
				if sym >= 0 && sym < len(nu) {
					pn = nu[sym]
				}
				if pn == 0 {
					return nil, fmt.Errorf("compress: observer prior excludes realized message %d", sym)
				}
				r.logRatios = append(r.logRatios, math.Log2(pe/pn))
				symBits, err := r.spec.MessageBits(st.t, sym)
				if err != nil {
					return nil, err
				}
				st.origBits += symBits
				r.pendC = append(r.pendC, c)
				r.pendSym = append(r.pendSym, sym)
			}
			tx, err := SimulatedProductTransmit(r.logRatios, src)
			if err != nil {
				return nil, fmt.Errorf("compress: round %d speaker %d: %w", round, speaker, err)
			}
			result.CompressedBits += tx.Bits
			result.Transmissions++
			for p, c := range r.pendC {
				st := &states[c]
				sym := r.pendSym[p]
				if err := st.obs.Update(r.spec, st.t, speaker, sym); err != nil {
					return nil, err
				}
				st.t = append(st.t, sym)
			}
		}
	}
	for c := range states {
		st := &states[c]
		result.OriginalBits += st.origBits
		if !st.done {
			return nil, fmt.Errorf("compress: copy %d never halted", c)
		}
	}
	result.PerCopyBits = float64(result.CompressedBits) / float64(copies)
	return result, nil
}

// RunAmortized executes n independent copies of spec on inputs drawn from
// prior, compressing each parallel round with SimulatedProductTransmit.
// Copies that halt early simply drop out of later rounds (the sequential
// AND protocol halts at the first zero), which only reduces cost. Sweeps
// over many executions should hold an amortizedRunner via AmortizedCurve
// instead; this one-shot form sets up fresh state per call.
func RunAmortized(spec core.Spec, prior core.Prior, copies int, src *rng.Source) (*AmortizedResult, error) {
	r, err := newAmortizedRunner(spec, prior)
	if err != nil {
		return nil, err
	}
	return r.run(copies, src)
}

// AmortizedCurve runs RunAmortized over a sweep of copy counts, averaging
// `repeats` executions per point: the data behind experiment E11. Each
// entry reports the mean per-copy compressed cost.
type AmortizedPoint struct {
	Copies      int
	PerCopyBits float64
	PerCopyOrig float64
}

// AmortizedCurve measures per-copy compressed cost as the number of
// parallel copies grows. One runner — observers, transcripts, group
// scratch — is shared across the whole grid.
func AmortizedCurve(spec core.Spec, prior core.Prior, copyCounts []int, repeats int, src *rng.Source) ([]AmortizedPoint, error) {
	if repeats < 1 {
		return nil, fmt.Errorf("compress: repeats %d < 1", repeats)
	}
	runner, err := newAmortizedRunner(spec, prior)
	if err != nil {
		return nil, err
	}
	out := make([]AmortizedPoint, 0, len(copyCounts))
	for _, n := range copyCounts {
		var bits, orig float64
		for r := 0; r < repeats; r++ {
			res, err := runner.run(n, src)
			if err != nil {
				return nil, err
			}
			bits += res.PerCopyBits
			orig += float64(res.OriginalBits) / float64(n)
		}
		out = append(out, AmortizedPoint{
			Copies:      n,
			PerCopyBits: bits / float64(repeats),
			PerCopyOrig: orig / float64(repeats),
		})
	}
	return out, nil
}
