package compress

import (
	"fmt"
	"math"

	"broadcastic/internal/core"
	"broadcastic/internal/rng"
)

// Theorem 3 machinery: run n independent copies of a protocol in parallel,
// round by round, and compress each round's combined message with one
// Lemma 7 transmission over the product universe. The combined divergence
// is the sum of the per-copy divergences (independence), while the O(log)
// overhead is paid once per round per speaker — so the per-copy cost tends
// to IC_μ(Π) as n → ∞.

// AmortizedResult reports one n-fold compressed execution.
type AmortizedResult struct {
	Copies         int
	CompressedBits int     // total bits across all rounds
	PerCopyBits    float64 // CompressedBits / Copies
	OriginalBits   int     // uncompressed total
	Rounds         int     // rounds of the combined protocol
	Transmissions  int     // Lemma 7 calls (round × distinct speakers)
	Outputs        []int   // per-copy protocol outputs
}

// copyState tracks one running copy.
type copyState struct {
	x        []int
	t        core.Transcript
	obs      *core.Observer
	done     bool
	output   int
	origBits int
}

// RunAmortized executes n independent copies of spec on inputs drawn from
// prior, compressing each parallel round with SimulatedProductTransmit.
// Copies that halt early simply drop out of later rounds (the sequential
// AND protocol halts at the first zero), which only reduces cost.
func RunAmortized(spec core.Spec, prior core.Prior, copies int, src *rng.Source) (*AmortizedResult, error) {
	if copies < 1 {
		return nil, fmt.Errorf("compress: copy count %d < 1", copies)
	}
	if src == nil {
		return nil, fmt.Errorf("compress: nil randomness source")
	}
	states := make([]*copyState, copies)
	for c := range states {
		_, x, err := core.SamplePrior(prior, src)
		if err != nil {
			return nil, err
		}
		obs, err := core.NewObserver(prior)
		if err != nil {
			return nil, err
		}
		states[c] = &copyState{x: x, obs: obs}
	}

	result := &AmortizedResult{Copies: copies, Outputs: make([]int, copies)}
	for round := 0; ; round++ {
		if round > 1<<16 {
			return nil, fmt.Errorf("compress: combined protocol exceeded %d rounds", 1<<16)
		}
		// Determine each active copy's speaker; group copies by speaker so
		// each group shares one product transmission.
		groups := make(map[int][]int) // speaker -> copy indices
		active := 0
		for c, st := range states {
			if st.done {
				continue
			}
			speaker, done, err := spec.NextSpeaker(st.t)
			if err != nil {
				return nil, err
			}
			if done {
				out, err := spec.Output(st.t)
				if err != nil {
					return nil, err
				}
				st.done = true
				st.output = out
				result.Outputs[c] = out
				continue
			}
			groups[speaker] = append(groups[speaker], c)
			active++
		}
		if active == 0 {
			break
		}
		result.Rounds++
		for speaker, cs := range groups {
			logRatios := make([]float64, 0, len(cs))
			type pending struct {
				c   int
				sym int
			}
			pend := make([]pending, 0, len(cs))
			for _, c := range cs {
				st := states[c]
				eta, err := spec.MessageDist(st.t, speaker, st.x[speaker])
				if err != nil {
					return nil, err
				}
				nu, err := st.obs.PredictMessage(spec, st.t, speaker)
				if err != nil {
					return nil, err
				}
				sym := eta.Sample(src)
				pe, pn := eta.P(sym), nu.P(sym)
				if pn == 0 {
					return nil, fmt.Errorf("compress: observer prior excludes realized message %d", sym)
				}
				logRatios = append(logRatios, math.Log2(pe/pn))
				symBits, err := spec.MessageBits(st.t, sym)
				if err != nil {
					return nil, err
				}
				st.origBits += symBits
				pend = append(pend, pending{c: c, sym: sym})
			}
			tx, err := SimulatedProductTransmit(logRatios, src)
			if err != nil {
				return nil, fmt.Errorf("compress: round %d speaker %d: %w", round, speaker, err)
			}
			result.CompressedBits += tx.Bits
			result.Transmissions++
			for _, p := range pend {
				st := states[p.c]
				if err := st.obs.Update(spec, st.t, speaker, p.sym); err != nil {
					return nil, err
				}
				st.t = append(st.t, p.sym)
			}
		}
	}
	for c, st := range states {
		result.OriginalBits += st.origBits
		if !st.done {
			return nil, fmt.Errorf("compress: copy %d never halted", c)
		}
	}
	result.PerCopyBits = float64(result.CompressedBits) / float64(copies)
	return result, nil
}

// AmortizedCurve runs RunAmortized over a sweep of copy counts, averaging
// `repeats` executions per point: the data behind experiment E11. Each
// entry reports the mean per-copy compressed cost.
type AmortizedPoint struct {
	Copies      int
	PerCopyBits float64
	PerCopyOrig float64
}

// AmortizedCurve measures per-copy compressed cost as the number of
// parallel copies grows.
func AmortizedCurve(spec core.Spec, prior core.Prior, copyCounts []int, repeats int, src *rng.Source) ([]AmortizedPoint, error) {
	if repeats < 1 {
		return nil, fmt.Errorf("compress: repeats %d < 1", repeats)
	}
	out := make([]AmortizedPoint, 0, len(copyCounts))
	for _, n := range copyCounts {
		var bits, orig float64
		for r := 0; r < repeats; r++ {
			res, err := RunAmortized(spec, prior, n, src)
			if err != nil {
				return nil, err
			}
			bits += res.PerCopyBits
			orig += float64(res.OriginalBits) / float64(n)
		}
		out = append(out, AmortizedPoint{
			Copies:      n,
			PerCopyBits: bits / float64(repeats),
			PerCopyOrig: orig / float64(repeats),
		})
	}
	return out, nil
}
