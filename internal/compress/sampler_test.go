package compress

import (
	"math"
	"testing"

	"broadcastic/internal/info"
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

func mustDist(t *testing.T, p []float64) prob.Dist {
	t.Helper()
	d, err := prob.NewDist(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTransmitProducesEta(t *testing.T) {
	// The transmitted value must be distributed exactly as η regardless of
	// the prior ν.
	public := rng.New(401)
	eta := mustDist(t, []float64{0.6, 0.1, 0.3})
	nu := mustDist(t, []float64{0.2, 0.5, 0.3})
	const trials = 30000
	counts := make([]int, 3)
	for i := 0; i < trials; i++ {
		res, err := Transmit(eta, nu, public)
		if err != nil {
			t.Fatal(err)
		}
		counts[res.Value]++
	}
	for x := 0; x < 3; x++ {
		got := float64(counts[x]) / trials
		if math.Abs(got-eta.P(x)) > 0.015 {
			t.Fatalf("value %d frequency %v, want %v", x, got, eta.P(x))
		}
	}
}

func TestTransmitCostTracksDivergence(t *testing.T) {
	// E10 at test scale: mean bits ≤ D(η‖ν) + 2·log(D+2) + c for a
	// moderate constant c, and the cost grows with the divergence.
	public := rng.New(402)
	const trials = 4000
	var prevMean float64
	for _, skew := range []float64{0.3, 0.03, 0.003} {
		// η concentrated on outcome 0, ν spreading mass away from it.
		eta := mustDist(t, []float64{0.97, 0.03})
		nu := mustDist(t, []float64{skew, 1 - skew})
		d, err := info.KL(eta, nu)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := 0; i < trials; i++ {
			res, err := Transmit(eta, nu, public)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Bits
		}
		mean := float64(total) / trials
		if mean > CostModel(d, 8) {
			t.Fatalf("skew %v: mean bits %v exceeds model %v (D=%v)", skew, mean, CostModel(d, 8), d)
		}
		if mean <= prevMean {
			t.Fatalf("cost not increasing with divergence: %v after %v", mean, prevMean)
		}
		prevMean = mean
	}
}

func TestTransmitCheapWhenPriorMatches(t *testing.T) {
	// η = ν: divergence 0, so the cost should be a small constant.
	public := rng.New(403)
	d := mustDist(t, []float64{0.25, 0.25, 0.25, 0.25})
	const trials = 2000
	total := 0
	for i := 0; i < trials; i++ {
		res, err := Transmit(d, d, public)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Bits
		if res.LogRatio > 0 {
			t.Fatalf("log ratio %d > 0 for identical distributions", res.LogRatio)
		}
	}
	if mean := float64(total) / trials; mean > 8 {
		t.Fatalf("mean cost %v for zero divergence", mean)
	}
}

func TestTransmitValidation(t *testing.T) {
	eta := mustDist(t, []float64{1, 0})
	nu2 := mustDist(t, []float64{0, 1})
	nu3 := mustDist(t, []float64{0.5, 0.25, 0.25})
	if _, err := Transmit(eta, nu2, rng.New(1)); err == nil {
		t.Fatal("non-dominating prior succeeded")
	}
	if _, err := Transmit(eta, nu3, rng.New(1)); err == nil {
		t.Fatal("support mismatch succeeded")
	}
	if _, err := Transmit(eta, eta, nil); err == nil {
		t.Fatal("nil public randomness succeeded")
	}
}

func TestTransmitDeterministicGivenSeed(t *testing.T) {
	eta := mustDist(t, []float64{0.7, 0.3})
	nu := mustDist(t, []float64{0.4, 0.6})
	a, err := Transmit(eta, nu, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Transmit(eta, nu, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Bits != b.Bits {
		t.Fatalf("same seed produced different transmissions: %+v vs %+v", a, b)
	}
}

func TestCostModelMonotone(t *testing.T) {
	if CostModel(-1, 0) != CostModel(0, 0) {
		t.Fatal("negative divergence not clamped")
	}
	if CostModel(10, 1) <= CostModel(1, 1) {
		t.Fatal("cost model not increasing")
	}
}

func TestSimulatedProductTransmitValidation(t *testing.T) {
	if _, err := SimulatedProductTransmit([]float64{0}, nil); err == nil {
		t.Fatal("nil source succeeded")
	}
	if _, err := SimulatedProductTransmit([]float64{math.Inf(1)}, rng.New(1)); err == nil {
		t.Fatal("infinite log ratio succeeded")
	}
	if _, err := SimulatedProductTransmit([]float64{math.NaN()}, rng.New(1)); err == nil {
		t.Fatal("NaN log ratio succeeded")
	}
}

func TestSimulatedProductTransmitLargeS(t *testing.T) {
	// A huge combined divergence is handled without materializing 2^s
	// candidates: the rank field costs s bits.
	res, err := SimulatedProductTransmit([]float64{100}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.LogRatio != 100 {
		t.Fatalf("log ratio %d, want 100", res.LogRatio)
	}
	if res.Bits < 100 || res.Bits > 130 {
		t.Fatalf("bits %d for s=100 outside [100,130]", res.Bits)
	}
	if res.CandidateCount != -1 {
		t.Fatalf("candidate count %d, want -1 sentinel", res.CandidateCount)
	}
}

func TestSimulatedProductTransmitCost(t *testing.T) {
	// Mean simulated cost for total log-ratio S must be S + O(log S).
	src := rng.New(404)
	const trials = 4000
	for _, s := range []float64{0, 2, 6, 10} {
		total := 0
		for i := 0; i < trials; i++ {
			res, err := SimulatedProductTransmit([]float64{s}, src)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Bits
		}
		mean := float64(total) / trials
		if mean > CostModel(s, 8) {
			t.Fatalf("s=%v: mean %v exceeds model %v", s, mean, CostModel(s, 8))
		}
		if mean < s {
			t.Fatalf("s=%v: mean %v below the divergence itself", s, mean)
		}
	}
}

func TestSimulatedProductAmortizesOverhead(t *testing.T) {
	// Splitting total divergence S across n copies in ONE transmission must
	// cost far less than n separate transmissions of S/n each.
	src := rng.New(405)
	const trials = 2000
	const n = 16
	const perCopy = 0.5
	combined := 0
	separate := 0
	ratios := make([]float64, n)
	for i := range ratios {
		ratios[i] = perCopy
	}
	for i := 0; i < trials; i++ {
		res, err := SimulatedProductTransmit(ratios, src)
		if err != nil {
			t.Fatal(err)
		}
		combined += res.Bits
		for c := 0; c < n; c++ {
			r, err := SimulatedProductTransmit(ratios[:1], src)
			if err != nil {
				t.Fatal(err)
			}
			separate += r.Bits
		}
	}
	if combined >= separate {
		t.Fatalf("combined %d bits not below separate %d bits", combined, separate)
	}
	// The combined cost per copy should approach perCopy + o(1), i.e. be
	// below half the separate per-copy cost at this scale.
	if float64(combined) > 0.5*float64(separate) {
		t.Fatalf("amortization too weak: combined %d vs separate %d", combined, separate)
	}
}

func TestPoissonMoments(t *testing.T) {
	src := rng.New(406)
	for _, mean := range []float64{0.5, 4, 32, 200} {
		const trials = 50000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(poisson(src, mean))
		}
		got := sum / trials
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("poisson(%v) mean = %v", mean, got)
		}
	}
	if poisson(rng.New(1), 0) != 0 {
		t.Fatal("poisson(0) nonzero")
	}
}

func TestSimulatedMatchesExactSamplerCost(t *testing.T) {
	// DESIGN.md's promised validation: the product-space simulation must
	// agree in mean cost with the explicit Lemma 7 sampler when both face
	// the same message distributions. We transmit single messages from a
	// 16-outcome (η, ν) pair with the exact sampler, and feed the realized
	// log-ratios of the same draws to the simulation.
	etaW := make([]float64, 16)
	nuW := make([]float64, 16)
	src := rng.New(407)
	for i := range etaW {
		etaW[i] = src.Float64() + 0.02
		nuW[i] = src.Float64() + 0.02
	}
	// Skew η toward outcome 0 so the divergence is nontrivial.
	etaW[0] += 6
	eta, err := prob.Normalize(etaW)
	if err != nil {
		t.Fatal(err)
	}
	nu, err := prob.Normalize(nuW)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 6000
	public := rng.New(408)
	sim := rng.New(409)
	var exactBits, simBits float64
	for i := 0; i < trials; i++ {
		res, err := Transmit(eta, nu, public)
		if err != nil {
			t.Fatal(err)
		}
		exactBits += float64(res.Bits)
		x := eta.Sample(sim)
		lr := math.Log2(eta.P(x) / nu.P(x))
		sres, err := SimulatedProductTransmit([]float64{lr}, sim)
		if err != nil {
			t.Fatal(err)
		}
		simBits += float64(sres.Bits)
	}
	exactMean := exactBits / trials
	simMean := simBits / trials
	if math.Abs(exactMean-simMean) > 1.5 {
		t.Fatalf("exact mean %v vs simulated mean %v differ by more than 1.5 bits",
			exactMean, simMean)
	}
}
