package compress

import (
	"math"
	"testing"

	"broadcastic/internal/andk"
	"broadcastic/internal/core"
	"broadcastic/internal/disj"
	"broadcastic/internal/dist"
	"broadcastic/internal/rng"
)

func TestObserverPriorBeforeMessages(t *testing.T) {
	// With an empty board the posterior equals the marginal prior.
	mu, _ := dist.NewMu(4)
	obs, err := core.NewObserver(mu)
	if err != nil {
		t.Fatal(err)
	}
	post, err := obs.PlayerPosterior(0)
	if err != nil {
		t.Fatal(err)
	}
	// Marginal zero-probability under μ: Pr[X_0=0] = 1/k + (1−1/k)·(1/k)
	// (special with prob 1/k, else zero with prob 1/k).
	k := 4.0
	want := 1/k + (1-1/k)*(1/k)
	if math.Abs(post.P(0)-want) > 1e-12 {
		t.Fatalf("prior posterior P(0) = %v, want %v", post.P(0), want)
	}
	if _, err := obs.PlayerPosterior(5); err == nil {
		t.Fatal("out-of-range player succeeded")
	}
}

func TestObserverUpdateBayes(t *testing.T) {
	// After player 0 announces bit 1 in the sequential protocol, the
	// posterior of X_0 must be a point mass on 1.
	mu, _ := dist.NewMu(3)
	spec, _ := andk.NewSequential(3)
	obs, err := core.NewObserver(mu)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Update(spec, nil, 0, 1); err != nil {
		t.Fatal(err)
	}
	post, err := obs.PlayerPosterior(0)
	if err != nil {
		t.Fatal(err)
	}
	if post.P(1) != 1 {
		t.Fatalf("posterior after announcing 1 = %v", post.Probs())
	}
	// Other players' posteriors shift too (Z is now more likely to be one
	// of them, raising their zero probability).
	post1, err := obs.PlayerPosterior(1)
	if err != nil {
		t.Fatal(err)
	}
	priorZero := 1.0/3 + (2.0/3)*(1.0/3)
	if post1.P(0) <= priorZero {
		t.Fatalf("player 1 zero-probability %v did not increase from prior %v",
			post1.P(0), priorZero)
	}
}

func TestObserverPredictMessageIsMarginal(t *testing.T) {
	// ν for the first message of the sequential protocol equals the
	// marginal distribution of X_0.
	mu, _ := dist.NewMu(4)
	spec, _ := andk.NewSequential(4)
	obs, _ := core.NewObserver(mu)
	nu, err := obs.PredictMessage(spec, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	post, _ := obs.PlayerPosterior(0)
	for v := 0; v < 2; v++ {
		if math.Abs(nu.P(v)-post.P(v)) > 1e-12 {
			t.Fatalf("ν(%d) = %v, marginal %v", v, nu.P(v), post.P(v))
		}
	}
}

func TestCompressRunPreservesTranscriptDeterministic(t *testing.T) {
	// On a deterministic protocol the compressed run must reproduce the
	// exact transcript and output.
	mu, _ := dist.NewMu(5)
	spec, _ := andk.NewSequential(5)
	public := rng.New(411)
	x := []int{1, 1, 0, 1, 1}
	res, err := CompressRun(spec, mu, x, public)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 0}
	if len(res.Transcript) != len(want) {
		t.Fatalf("transcript %v, want %v", res.Transcript, want)
	}
	for i := range want {
		if res.Transcript[i] != want[i] {
			t.Fatalf("transcript %v, want %v", res.Transcript, want)
		}
	}
	if res.Output != 0 {
		t.Fatalf("output %d, want 0", res.Output)
	}
	if res.OriginalBits != 3 || res.Rounds != 3 {
		t.Fatalf("original bits %d rounds %d, want 3,3", res.OriginalBits, res.Rounds)
	}
	if res.CompressedBits <= 0 {
		t.Fatal("compressed bits not positive")
	}
	if _, err := CompressRun(spec, mu, []int{1}, public); err == nil {
		t.Fatal("short input succeeded")
	}
}

func TestCompressRunPreservesTranscriptDistribution(t *testing.T) {
	// On a randomized protocol (Lazy), the compressed transcript
	// distribution must match the original protocol's distribution.
	const k = 3
	const delta = 0.4
	mu, _ := dist.NewMu(k)
	spec, err := andk.NewLazy(k, delta, 0)
	if err != nil {
		t.Fatal(err)
	}
	public := rng.New(412)
	direct := rng.New(413)
	const trials = 20000
	// x must lie in μ's support (the observer's Bayes prior only dominates
	// on-support messages, exactly as in the paper's model).
	x := []int{1, 0, 1}
	compGaveUp, directGaveUp := 0, 0
	for i := 0; i < trials; i++ {
		res, err := CompressRun(spec, mu, x, public)
		if err != nil {
			t.Fatal(err)
		}
		if res.Transcript[0] == 1 {
			compGaveUp++
		}
		tr, _, err := core.SampleTranscript(spec, x, direct)
		if err != nil {
			t.Fatal(err)
		}
		if tr[0] == 1 {
			directGaveUp++
		}
	}
	cr := float64(compGaveUp) / trials
	dr := float64(directGaveUp) / trials
	if math.Abs(cr-delta) > 0.015 {
		t.Fatalf("compressed give-up rate %v, want %v", cr, delta)
	}
	if math.Abs(cr-dr) > 0.02 {
		t.Fatalf("compressed rate %v vs direct rate %v", cr, dr)
	}
}

func TestCompressRunCostTracksInformation(t *testing.T) {
	// Mean compressed cost over μ-sampled inputs ≈ external IC + per-round
	// overhead. Verify it is within the Lemma 7 budget: IC + r·O(log).
	const k = 6
	mu, _ := dist.NewMu(k)
	spec, _ := andk.NewSequential(k)
	exact, err := core.ExactCosts(spec, mu, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(414)
	public := rng.New(415)
	const trials = 3000
	var bits, rounds float64
	for i := 0; i < trials; i++ {
		_, x, err := core.SamplePrior(mu, src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CompressRun(spec, mu, x, public)
		if err != nil {
			t.Fatal(err)
		}
		bits += float64(res.CompressedBits)
		rounds += float64(res.Rounds)
	}
	meanBits := bits / trials
	meanRounds := rounds / trials
	budget := exact.ExternalIC + meanRounds*8
	if meanBits > budget {
		t.Fatalf("mean compressed bits %v exceed IC+overhead budget %v (IC=%v, rounds=%v)",
			meanBits, budget, exact.ExternalIC, meanRounds)
	}
	if meanBits < exact.ExternalIC/4 {
		t.Fatalf("mean compressed bits %v suspiciously below IC %v", meanBits, exact.ExternalIC)
	}
}

func TestRunAmortizedOutputsCorrect(t *testing.T) {
	// Every copy's output must equal AND of its sampled input — verified
	// indirectly: outputs are 0 whenever any player wrote 0; μ guarantees
	// AND=0 always, so all outputs must be 0.
	const k = 4
	mu, _ := dist.NewMu(k)
	spec, _ := andk.NewSequential(k)
	res, err := RunAmortized(spec, mu, 20, rng.New(416))
	if err != nil {
		t.Fatal(err)
	}
	for c, out := range res.Outputs {
		if out != 0 {
			t.Fatalf("copy %d output %d, want 0 under μ", c, out)
		}
	}
	if res.PerCopyBits <= 0 {
		t.Fatal("per-copy bits not positive")
	}
	if res.Copies != 20 {
		t.Fatalf("copies = %d", res.Copies)
	}
	if _, err := RunAmortized(spec, mu, 0, rng.New(1)); err == nil {
		t.Fatal("zero copies succeeded")
	}
	if _, err := RunAmortized(spec, mu, 1, nil); err == nil {
		t.Fatal("nil source succeeded")
	}
}

func TestAmortizedPerCopyCostDecreases(t *testing.T) {
	// E11 at test scale: per-copy cost at n=64 must be well below n=1 and
	// approach the external information cost from above.
	const k = 5
	mu, _ := dist.NewMu(k)
	spec, _ := andk.NewSequential(k)
	exact, err := core.ExactCosts(spec, mu, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	curve, err := AmortizedCurve(spec, mu, []int{1, 8, 64}, 60, rng.New(417))
	if err != nil {
		t.Fatal(err)
	}
	if curve[2].PerCopyBits >= curve[0].PerCopyBits {
		t.Fatalf("per-copy cost did not decrease: %v -> %v",
			curve[0].PerCopyBits, curve[2].PerCopyBits)
	}
	// At n=64 the per-copy cost should be within a few bits of IC.
	if curve[2].PerCopyBits > exact.ExternalIC+4 {
		t.Fatalf("per-copy cost %v too far above IC %v", curve[2].PerCopyBits, exact.ExternalIC)
	}
	if _, err := AmortizedCurve(spec, mu, []int{1}, 0, rng.New(1)); err == nil {
		t.Fatal("zero repeats succeeded")
	}
}

func TestCompressRunOnDisjSpec(t *testing.T) {
	// Multi-coordinate protocol under μ^n: the compressed transcript must
	// match the deterministic run, and the observer's prior must dominate
	// every on-support message.
	const n, k = 3, 3
	spec, err := disj.NewSequentialSpec(n, k)
	if err != nil {
		t.Fatal(err)
	}
	mun, err := dist.NewMuN(k, n)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(418)
	public := rng.New(419)
	for trial := 0; trial < 300; trial++ {
		_, x, err := core.SamplePrior(mun, src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CompressRun(spec, mun, x, public)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, _, err := core.SampleTranscript(spec, x, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Transcript) != len(want) {
			t.Fatalf("trial %d: transcript %v, want %v", trial, res.Transcript, want)
		}
		for i := range want {
			if res.Transcript[i] != want[i] {
				t.Fatalf("trial %d: transcript %v, want %v", trial, res.Transcript, want)
			}
		}
		// μ^n instances are always disjoint: output must be 1.
		if res.Output != 1 {
			t.Fatalf("trial %d: output %d, want 1 (disjoint)", trial, res.Output)
		}
	}
}

func TestRunAmortizedOnDisjSpecGroupsSpeakers(t *testing.T) {
	// The per-coordinate DISJ spec's speaker depends on transcript content,
	// so copies drift apart and rounds contain several speaker groups —
	// exercising the group-by-speaker path of RunAmortized.
	const n, k = 2, 3
	spec, err := disj.NewSequentialSpec(n, k)
	if err != nil {
		t.Fatal(err)
	}
	mun, err := dist.NewMuN(k, n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAmortized(spec, mun, 24, rng.New(420))
	if err != nil {
		t.Fatal(err)
	}
	for c, out := range res.Outputs {
		if out != 1 {
			t.Fatalf("copy %d output %d, want 1 under μ^n", c, out)
		}
	}
	if res.Transmissions <= res.Rounds {
		t.Fatalf("expected multiple speaker groups per round: %d transmissions over %d rounds",
			res.Transmissions, res.Rounds)
	}
}
