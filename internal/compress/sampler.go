// Package compress implements Section 6 of the paper: interactive
// compression in the broadcast model.
//
// The centerpiece is the Lemma 7 one-shot sampling protocol. A sender knows
// the true distribution η of the next message; every other player knows a
// prior ν (the external observer's Bayes prediction). Using public
// randomness — a shared infinite sequence of points (x_t, p_t) uniform in
// U × [0,1] — the sender picks the first point under the curve of η and
// describes it to the receivers in three self-delimiting fields:
//
//  1. the block index ⌈t/|U|⌉ of the chosen point (≈1 in expectation),
//  2. the log-ratio s = ⌈log₂(η(x)/ν(x))⌉ of the chosen value, after which
//     everyone discards points not under the scaled prior 2^s·ν,
//  3. the index of the chosen point inside the surviving candidate set P'
//     (|P'| ≈ 2^s, so ≈ s bits).
//
// The expected cost is D(η‖ν) + O(log D(η‖ν) + 1) bits. Our receivers
// compute P' exactly from the public randomness, so the implementation is
// errorless (the paper's ε covers model variants where P' must be
// approximated; see DESIGN.md).
//
// On top of the sampler, the package compresses whole protocol executions
// round by round (the observer's prior is the exact Bayes prediction
// computed from the Lemma 3 q-factors), and simulates the n-fold parallel
// execution of Theorem 3, whose per-copy cost approaches the external
// information cost as n grows.
package compress

import (
	"fmt"
	"math"
	"math/bits"

	"broadcastic/internal/encoding"
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

// TransmitResult reports one Lemma 7 transmission.
type TransmitResult struct {
	// Value is the transmitted outcome, distributed exactly as η.
	Value int
	// Bits is the total communication charged.
	Bits int
	// BlockIndex, LogRatio and CandidateCount expose the three fields for
	// the cost-accounting experiments.
	BlockIndex     int
	LogRatio       int
	CandidateCount int
	// Payload is the encoded message itself — exactly Bits bits, packed
	// MSB-first with zero padding. Set only by the explicit sampler
	// (Transmit); the simulated product transmission has no concrete bits.
	Payload []byte
}

// maxSearchPoints bounds the rejection search; the success probability per
// point is 1/|U|, so |U|·64 failures indicate a malformed distribution.
const maxSearchFactor = 4096

// Transmitter runs Lemma 7 transmissions with reusable scratch: the block
// point buffers, the batched public-randomness words, the payload writer
// and the result struct are allocated once and recycled, so a warm
// Transmitter performs no heap allocations per call. The returned result
// (including its Payload) aliases that scratch and is valid only until the
// transmitter's next call; callers that retain results use the package
// function Transmit, which never reuses.
type Transmitter struct {
	xs      []int     // block point values
	ps      []float64 // block point heights
	words   []uint64  // batched raw draws (power-of-two universes)
	w       encoding.BitWriter
	payload []byte
	res     TransmitResult
}

// NewTransmitter returns an empty transmitter; scratch grows on first use.
func NewTransmitter() *Transmitter { return &Transmitter{} }

// Transmit runs the Lemma 7 protocol for one message: the sender holds η,
// the receivers hold ν, and both consume the same public randomness. It
// returns the value (∼η) and the exact bit cost. ν must dominate η's
// support. The result is valid until this transmitter's next call.
func (tr *Transmitter) Transmit(eta, nu prob.Dist, public *rng.Source) (*TransmitResult, error) {
	if public == nil {
		return nil, fmt.Errorf("compress: nil public randomness")
	}
	u := eta.Size()
	if nu.Size() != u {
		return nil, fmt.Errorf("compress: η support %d, ν support %d", u, nu.Size())
	}
	for x := 0; x < u; x++ {
		if eta.P(x) > 0 && nu.P(x) == 0 {
			return nil, fmt.Errorf("compress: prior ν assigns zero to value %d with η=%v", x, eta.P(x))
		}
	}

	// Rejection sampling over the shared point sequence, materialized one
	// |U|-point block at a time; blocks before the hit are discarded by
	// sender and receivers identically. Each point consumes an Intn(u) draw
	// then a Float64 draw. For power-of-two universes Intn always accepts
	// its single raw word (Lemire's threshold is zero), so a whole block's
	// raw words can be batch-filled with rng.Uint64s and mapped to the
	// exact same points the per-draw calls would produce.
	if cap(tr.xs) < u {
		tr.xs = make([]int, u)
		tr.ps = make([]float64, u)
	}
	xs, ps := tr.xs[:u], tr.ps[:u]
	pow2 := u&(u-1) == 0
	var shift uint
	if pow2 {
		shift = uint(64 - (bits.Len(uint(u)) - 1))
		if cap(tr.words) < 2*u {
			tr.words = make([]uint64, 2*u)
		}
	}

	var (
		chosenX    int
		chosenP    float64
		inBlockIdx int
		found      bool
		blockIndex int
	)
	for b := 1; b <= maxSearchFactor; b++ {
		if pow2 {
			words := tr.words[:2*u]
			public.Uint64s(words)
			for i := 0; i < u; i++ {
				// Lemire's Intn on a power-of-two bound is the word's top
				// log₂(u) bits; Float64 is the next word's top 53 bits.
				xs[i] = int(words[2*i] >> shift)
				ps[i] = float64(words[2*i+1]>>11) / (1 << 53)
			}
		} else {
			for i := 0; i < u; i++ {
				xs[i] = public.Intn(u)
				ps[i] = public.Float64()
			}
		}
		for i := 0; i < u; i++ {
			if !found && ps[i] < eta.P(xs[i]) {
				chosenX, chosenP = xs[i], ps[i]
				inBlockIdx = i
				found = true
			}
		}
		if found {
			blockIndex = b
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("compress: rejection sampling found no point in %d draws", u*maxSearchFactor)
	}
	_ = chosenP

	// Field 2: the log-ratio s = ⌈log₂(η(x)/ν(x))⌉ (may be negative).
	ratio := eta.P(chosenX) / nu.P(chosenX)
	s := int(math.Ceil(math.Log2(ratio)))
	scale := math.Pow(2, float64(s))

	// Candidate set P': points in the block under the scaled prior curve.
	candidates := 0
	chosenRank := -1
	for i := 0; i < u; i++ {
		if ps[i] < scale*nu.P(xs[i]) {
			if i == inBlockIdx {
				chosenRank = candidates
			}
			candidates++
		}
	}
	if chosenRank < 0 {
		return nil, fmt.Errorf("compress: accepted point escaped the scaled prior (s=%d)", s)
	}

	tr.w.Reset()
	if err := encoding.WriteEliasGamma(&tr.w, uint64(blockIndex)); err != nil {
		return nil, err
	}
	if err := encoding.WriteSignedGamma(&tr.w, int64(s)); err != nil {
		return nil, err
	}
	if err := tr.w.WriteBits(uint64(chosenRank), encoding.FixedWidth(uint64(candidates))); err != nil {
		return nil, err
	}
	tr.payload = tr.w.AppendTo(tr.payload[:0])

	tr.res = TransmitResult{
		Value:          chosenX,
		Bits:           tr.w.Len(),
		BlockIndex:     blockIndex,
		LogRatio:       s,
		CandidateCount: candidates,
		Payload:        tr.payload,
	}
	return &tr.res, nil
}

// Transmit is the one-shot form of Transmitter.Transmit: it uses a fresh
// transmitter, so the result does not alias reused scratch and may be
// retained. Hot loops should hold a Transmitter instead.
func Transmit(eta, nu prob.Dist, public *rng.Source) (*TransmitResult, error) {
	return NewTransmitter().Transmit(eta, nu, public)
}

// CostModel returns the Lemma 7 cost bound D + O(log D + 1) evaluated with
// explicit constants used by experiment E10's comparison: D + 2·log₂(D+2) + c.
func CostModel(divergence float64, c float64) float64 {
	if divergence < 0 {
		divergence = 0
	}
	return divergence + 2*math.Log2(divergence+2) + c
}

// SimulatedProductTransmit simulates the cost and outcome of a Lemma 7
// transmission over a product universe U^n too large to materialize (the
// n-fold protocols of Theorem 3). The sender's combined message is sampled
// coordinate-wise upstream; what this function needs are the realized
// per-copy likelihood ratios η_c(x_c)/ν_c(x_c).
//
// The simulation reproduces the three cost fields of the explicit sampler
// in distribution, in the large-universe limit:
//
//   - the block index is geometric with success probability
//     1 − (1 − 1/|U|)^{|U|} → 1 − 1/e;
//   - s = ⌈log₂ Π_c ratio_c⌉ exactly;
//   - |P'| − 1 is Poisson with mean ≈ 2^s (each of the |U|−1 other points
//     survives independently with probability ≈ 2^s/|U|).
//
// See DESIGN.md for why this substitution preserves the Theorem 3 claim.
func SimulatedProductTransmit(logRatios []float64, src *rng.Source) (*TransmitResult, error) {
	if src == nil {
		return nil, fmt.Errorf("compress: nil randomness source")
	}
	total := 0.0
	for i, lr := range logRatios {
		if math.IsNaN(lr) {
			return nil, fmt.Errorf("compress: NaN log-ratio at copy %d", i)
		}
		if math.IsInf(lr, 1) {
			return nil, fmt.Errorf("compress: infinite log-ratio at copy %d (prior does not dominate)", i)
		}
		total += lr
	}
	s := int(math.Ceil(total))

	// Block index ~ Geometric(1 - 1/e).
	blockIndex := 1
	const blockHit = 1 - 1/math.E
	for !src.Bernoulli(blockHit) {
		blockIndex++
		if blockIndex > 1<<20 {
			return nil, fmt.Errorf("compress: simulated block search diverged")
		}
	}

	// Rank-field width = ⌈log₂ |P'|⌉ with |P'| − 1 ~ Poisson(2^s). For
	// large s the Poisson concentrates so tightly that the width is s
	// itself (the jitter is o(1) bits); only the small-mean regime needs
	// actual sampling. This keeps the simulation exact in expectation
	// without materializing 2^s candidates.
	var (
		candidates int
		rankWidth  int
	)
	mean := math.Pow(2, float64(s))
	if s <= 24 {
		candidates = poisson(src, mean) + 1
		rankWidth = encoding.FixedWidth(uint64(candidates))
	} else {
		candidates = -1 // too many to count explicitly
		rankWidth = s
	}

	bits := encoding.EliasGammaLen(uint64(blockIndex)) +
		encoding.SignedGammaLen(int64(s)) +
		rankWidth
	return &TransmitResult{
		Bits:           bits,
		BlockIndex:     blockIndex,
		LogRatio:       s,
		CandidateCount: candidates,
	}, nil
}

// poisson samples a Poisson variate. Knuth's product method for small
// means; normal approximation (rounded, clamped at 0) for large ones.
func poisson(src *rng.Source, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := int(math.Round(mean + math.Sqrt(mean)*src.NormFloat64()))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	count := 0
	p := 1.0
	for {
		p *= src.Float64()
		if p <= l {
			return count
		}
		count++
		if count > 1<<20 {
			return count
		}
	}
}
