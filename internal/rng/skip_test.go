package rng

import "testing"

// TestSkipMatchesDraws pins the lane engine's draw-alignment primitive:
// Skip(n) must leave the stream exactly where n Uint64 calls would have,
// and DrawsSince must count the skipped outputs as drawn.
func TestSkipMatchesDraws(t *testing.T) {
	for _, n := range []uint64{0, 1, 5, 64, 4096} {
		a, b := New(123), New(123)
		mark := a.Mark()
		a.Skip(n)
		for i := uint64(0); i < n; i++ {
			b.Uint64()
		}
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("Skip(%d): next output %#x, want %#x", n, got, want)
		}
		if got := a.DrawsSince(mark); got != n+1 {
			t.Fatalf("Skip(%d): DrawsSince reports %d draws, want %d", n, got, n+1)
		}
	}
}

// TestLookaheadMatchesUint64 pins the compiled-IR executor's lazy-draw
// primitive: Lookahead(j) must equal the j-th upcoming Uint64 output,
// without moving the stream position.
func TestLookaheadMatchesUint64(t *testing.T) {
	a, b := New(77), New(77)
	mark := a.Mark()
	peeked := make([]uint64, 20)
	for j := range peeked {
		peeked[j] = a.Lookahead(uint64(j))
	}
	if got := a.DrawsSince(mark); got != 0 {
		t.Fatalf("Lookahead advanced the stream by %d draws, want 0", got)
	}
	for j, want := range peeked {
		if got := b.Uint64(); got != want {
			t.Fatalf("Lookahead(%d) = %#x, but draw %d is %#x", j, want, j, got)
		}
	}
	// Lookahead then Skip reconciles with sequential draws.
	a.Skip(20)
	if got, want := a.Uint64(), b.Uint64(); got != want {
		t.Fatalf("after Skip(20): next output %#x, want %#x", got, want)
	}
}

// TestU01MatchesFloat64 pins that U01 is the exact raw-output-to-uniform
// mapping of Float64, so prefetching with Uint64s and converting through
// U01 reproduces a Float64 sequence bit for bit.
func TestU01MatchesFloat64(t *testing.T) {
	a, b := New(9), New(9)
	raw := make([]uint64, 100)
	b.Uint64s(raw)
	for i, w := range raw {
		if got, want := U01(w), a.Float64(); got != want {
			t.Fatalf("draw %d: U01 %v != Float64 %v", i, got, want)
		}
	}
	if got := U01(^uint64(0)); got >= 1 {
		t.Fatalf("U01 of all-ones word is %v, want < 1", got)
	}
	if got := U01(0); got != 0 {
		t.Fatalf("U01(0) = %v, want 0", got)
	}
}
