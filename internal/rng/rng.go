// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the repository.
//
// Reproducibility is a first-class requirement for the experiments: every
// protocol execution, every sampled input, and every Monte-Carlo estimate
// must be replayable bit-for-bit from a seed. The broadcast model also
// distinguishes *public* randomness (shared by all players, e.g. the common
// sample points of the Lemma 7 rejection sampler) from *private* randomness
// (per player). Source.Split yields independent child streams so that the
// two kinds of randomness, and the streams of different players, never
// interfere: drawing more values from one stream does not perturb another.
//
// The core generator is SplitMix64 (Steele, Lea, Flood 2014), chosen because
// it is tiny, fast, passes standard statistical batteries at the scale we
// use it, and splits cleanly by hashing a child index into a fresh seed.
package rng

import "math"

// Source is a deterministic stream of pseudo-random values.
//
// A Source is NOT safe for concurrent use; give each goroutine its own
// stream via Split.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Two Sources built from the same
// seed produce identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// gamma is the SplitMix64 state increment; gammaInv is its multiplicative
// inverse mod 2^64 (gamma is odd, hence invertible). Because every output
// advances the state by exactly gamma, the number of draws between two
// observed states is (s2-s1)*gammaInv — which is what lets Mark/DrawsSince
// count draws with zero bookkeeping on the generation path.
const (
	gamma    = 0x9e3779b97f4a7c15
	gammaInv = 0xf1de83e19937733d
)

// splitmix64 advances a state word and returns the next output.
func splitmix64(state *uint64) uint64 {
	*state += gamma
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	return splitmix64(&s.state)
}

// Uint64s fills dst with the next len(dst) outputs of the stream. The
// result is identical to calling Uint64 once per element; the batch form
// exists so hot loops can amortize the pointer dereference and bounds
// checks of per-draw calls. The state advances by exactly len(dst) draws,
// so Mark/DrawsSince accounting still reconciles: a batch fill of n words
// counts as n draws.
func (s *Source) Uint64s(dst []uint64) {
	st := s.state
	for i := range dst {
		st += gamma
		z := st
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		dst[i] = z ^ (z >> 31)
	}
	s.state = st
}

// Mark is an opaque stream position captured by Source.Mark.
type Mark struct {
	state uint64
}

// Mark captures the stream's current position for later draw accounting.
func (s *Source) Mark() Mark { return Mark{state: s.state} }

// DrawsSince returns how many raw 64-bit outputs the stream has produced
// since m was captured. Every generator method ultimately consumes Uint64
// outputs (some, like Intn's rejection loop, a variable number), and each
// output advances the state by the fixed odd constant gamma, so the count
// is recovered arithmetically — the generation path itself keeps no
// counter and pays nothing. Split/SplitN calls also consume one output
// each, and are counted as such.
func (s *Source) DrawsSince(m Mark) uint64 {
	return (s.state - m.state) * gammaInv
}

// Split derives an independent child stream identified by index. The child
// stream is a pure function of (parent seed, consumed outputs, index), so
// callers typically Split immediately after New with fixed indices to get
// stable, named sub-streams.
func (s *Source) Split(index uint64) *Source {
	// Mix the child index through an independent SplitMix round so that
	// nearby indices yield unrelated seeds.
	st := s.Uint64() ^ (index + 0x632be59bd9b4e019)
	_ = splitmix64(&st)
	return &Source{state: st}
}

// SplitN derives n independent child streams, identical to calling
// Split(0), Split(1), …, Split(n-1) in order. This is the seed-derivation
// idiom behind the deterministic parallel engine: the derivation itself is
// serial (it consumes n parent outputs in a fixed order), after which each
// child stream can be consumed by a different goroutine without any
// cross-stream interference — so parallel results cannot depend on worker
// count or scheduling.
func (s *Source) SplitN(n int) []*Source {
	if n <= 0 {
		return nil
	}
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Split(uint64(i))
	}
	return out
}

// Lookahead returns the (n+1)-th upcoming raw 64-bit output without
// advancing the stream: Lookahead(0) is the value the next Uint64 call
// would return, Lookahead(1) the one after, and so on. Because every
// output advances the state by the fixed constant gamma, the j-th
// upcoming output is a pure function of state + (j+1)*gamma, so peeking
// is a single multiply-add plus the finalizer. The compiled-IR executor
// uses this to consume draws lazily (only the positions a sample actually
// needs) and then reconcile the stream with one Skip, staying draw-aligned
// with the scalar path.
func (s *Source) Lookahead(n uint64) uint64 {
	st := s.state + (n+1)*gamma
	z := st
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Skip advances the stream past n raw 64-bit outputs in O(1), leaving the
// state exactly where n Uint64 calls would have left it (each output
// advances the state by the fixed constant gamma, so skipping is a single
// multiply-add). Mark/DrawsSince accounting counts the skipped outputs as
// drawn. The lane engine uses Skip to stay draw-aligned with scalar
// execution when the skipped values provably cannot influence the result
// (point-mass message draws return the same symbol for every uniform).
func (s *Source) Skip(n uint64) {
	s.state += gamma * n
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return U01(s.Uint64())
}

// U01 maps one raw 64-bit output to the uniform [0, 1) value Float64
// derives from it. Batch consumers that prefetch raw outputs with Uint64s
// convert them through U01 to obtain the exact floats a sequence of
// Float64 calls would have produced.
func U01(w uint64) float64 {
	return float64(w>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics only on n <= 0, which is
// always a programming error at the call site (never data-dependent).
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and branch-light.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Bool returns true with probability 1/2.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box–Muller, polar form).
// Used only for statistical utilities in the experiment harness.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs uniformly at random in place.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// SampleWithoutReplacement returns a uniformly random size-m subset of
// [0, n), in increasing order. It runs in O(m) expected time using Floyd's
// algorithm. Returns nil if m <= 0; if m >= n it returns all of [0, n).
func (s *Source) SampleWithoutReplacement(n, m int) []int {
	if m <= 0 || n <= 0 {
		return nil
	}
	if m >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	chosen := make(map[int]struct{}, m)
	for j := n - m; j < n; j++ {
		t := s.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
	}
	out := make([]int, 0, m)
	for v := range chosen {
		out = append(out, v)
	}
	sortInts(out)
	return out
}

// sortInts is a small insertion/heap hybrid avoiding the sort package's
// interface overhead for the tiny slices we produce here.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
