package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c0 := parent.Split(0)
	// Re-derive the same child from a fresh parent: must match.
	parent2 := New(7)
	c0b := parent2.Split(0)
	for i := 0; i < 100; i++ {
		if c0.Uint64() != c0b.Uint64() {
			t.Fatalf("split child not reproducible at step %d", i)
		}
	}
}

func TestSplitNMatchesSequentialSplits(t *testing.T) {
	const n = 8
	a := New(99)
	children := a.SplitN(n)
	b := New(99)
	for i := 0; i < n; i++ {
		want := b.Split(uint64(i))
		for step := 0; step < 50; step++ {
			if got, w := children[i].Uint64(), want.Uint64(); got != w {
				t.Fatalf("SplitN child %d diverged from Split(%d) at step %d", i, i, step)
			}
		}
	}
}

func TestSplitNDegenerate(t *testing.T) {
	if got := New(1).SplitN(0); got != nil {
		t.Fatalf("SplitN(0) = %v, want nil", got)
	}
	if got := New(1).SplitN(-3); got != nil {
		t.Fatalf("SplitN(-3) = %v, want nil", got)
	}
}

func TestSplitNChildrenPairwiseDistinct(t *testing.T) {
	children := New(5).SplitN(16)
	seen := map[uint64]int{}
	for i, c := range children {
		v := c.Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("children %d and %d share first output %x", j, i, v)
		}
		seen[v] = i
	}
}

func TestSplitChildrenDiffer(t *testing.T) {
	p1 := New(7)
	p2 := New(7)
	c0 := p1.Split(0)
	c1 := p2.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c0.Uint64() == c1.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling streams overlapped on %d of 100 outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(6)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from expected %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(9)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(10)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	check := func(n uint8) bool {
		m := int(n%50) + 1
		p := s.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(13)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Perm first-element bucket %d count %d, want ~%v", i, c, want)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	s := New(14)
	check := func(nRaw, mRaw uint8) bool {
		n := int(nRaw%40) + 1
		m := int(mRaw % 45)
		out := s.SampleWithoutReplacement(n, m)
		wantLen := m
		if m > n {
			wantLen = n
		}
		if m <= 0 {
			return out == nil
		}
		if len(out) != wantLen {
			return false
		}
		for i, v := range out {
			if v < 0 || v >= n {
				return false
			}
			if i > 0 && out[i-1] >= v {
				return false // must be strictly increasing (sorted, distinct)
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Each element of [0,5) should appear in a size-2 sample with
	// probability 2/5.
	s := New(15)
	const n, m, trials = 5, 2, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range s.SampleWithoutReplacement(n, m) {
			counts[v]++
		}
	}
	want := float64(trials) * m / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("element %d appeared %d times, want ~%v", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(16)
	const trials = 200000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestShuffle(t *testing.T) {
	s := New(17)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("shuffle duplicated element %d", v)
		}
		seen[v] = true
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(1000)
	}
}

func TestMarkDrawsSince(t *testing.T) {
	s := New(42)
	m := s.Mark()
	if got := s.DrawsSince(m); got != 0 {
		t.Fatalf("fresh mark reports %d draws", got)
	}
	for i := 0; i < 1000; i++ {
		s.Uint64()
	}
	if got := s.DrawsSince(m); got != 1000 {
		t.Fatalf("DrawsSince = %d after 1000 draws", got)
	}
	// Derived draws (Intn may reject, Float64 draws once) are still counted
	// exactly: the arithmetic recovers raw outputs, not call counts.
	m2 := s.Mark()
	s.Float64()
	if got := s.DrawsSince(m2); got != 1 {
		t.Fatalf("Float64 consumed %d raw draws, want 1", got)
	}
	m3 := s.Mark()
	s.Split(7)
	if got := s.DrawsSince(m3); got != 1 {
		t.Fatalf("Split consumed %d raw draws, want 1", got)
	}
}

func TestUint64sMatchesSequentialDraws(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		a, b := New(99), New(99)
		want := make([]uint64, n)
		for i := range want {
			want[i] = a.Uint64()
		}
		got := make([]uint64, n)
		b.Uint64s(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: Uint64s[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
		// Both streams must be at the same position afterwards.
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: streams diverge after batch fill", n)
		}
	}
}

func TestUint64sDrawAccounting(t *testing.T) {
	s := New(7)
	m := s.Mark()
	buf := make([]uint64, 321)
	s.Uint64s(buf)
	if got := s.DrawsSince(m); got != 321 {
		t.Fatalf("batch of 321 counted as %d draws", got)
	}
	s.Uint64s(nil)
	s.Uint64s(buf[:0])
	if got := s.DrawsSince(m); got != 321 {
		t.Fatalf("empty batch fills consumed draws: %d", got)
	}
}

func BenchmarkUint64sBatch(b *testing.B) {
	s := New(1)
	buf := make([]uint64, 1024)
	b.SetBytes(int64(len(buf) * 8))
	for i := 0; i < b.N; i++ {
		s.Uint64s(buf)
	}
}
