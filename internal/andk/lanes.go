package andk

// Lane kernels: the bit-valued AND_k protocols certify their transcript
// shape to the 64-lane batch engine. Each protocol here speaks in player
// order, announces exactly its input bit, and either halts on the first 0
// (Sequential, Truncated) or speaks through the whole prefix regardless
// (BroadcastAll) — precisely the batch.LaneSpec contract. The
// lane-equivalence tests in internal/batch pin each certificate against
// the scalar core engine, transcript for transcript.
//
// Lazy deliberately implements no kernel: its opening coin flip is a
// non-deterministic message, so it always runs on the scalar engine.

import "broadcastic/internal/batch"

// LaneKernel implements batch.Kernel: all k players may speak, halting
// right after the first 0.
func (s *Sequential) LaneKernel() (batch.LaneSpec, bool) {
	return batch.LaneSpec{Players: s.k, SpeakCap: s.k, HaltOnZero: true}, true
}

// LaneKernel implements batch.Kernel: all k players speak unconditionally.
func (b *BroadcastAll) LaneKernel() (batch.LaneSpec, bool) {
	return batch.LaneSpec{Players: b.k, SpeakCap: b.k, HaltOnZero: false}, true
}

// LaneKernel implements batch.Kernel: only the first m players may speak,
// halting right after the first 0.
func (tr *Truncated) LaneKernel() (batch.LaneSpec, bool) {
	return batch.LaneSpec{Players: tr.k, SpeakCap: tr.m, HaltOnZero: true}, true
}

var (
	_ batch.Kernel = (*Sequential)(nil)
	_ batch.Kernel = (*BroadcastAll)(nil)
	_ batch.Kernel = (*Truncated)(nil)
)
