package andk

import (
	"broadcastic/internal/core"
)

// BoardProtocol instantiates the protocol on concrete inputs in blackboard
// form, for runtimes that drive the blackboard state machine directly
// (e.g. internal/netrun). All AND_k variants here are deterministic specs,
// so no private randomness is needed.
func (s *Sequential) BoardProtocol(x []int) (*core.SpecProtocol, error) {
	return core.NewSpecProtocol(s, x, nil)
}

// BoardProtocol is the BroadcastAll analogue of (*Sequential).BoardProtocol.
func (b *BroadcastAll) BoardProtocol(x []int) (*core.SpecProtocol, error) {
	return core.NewSpecProtocol(b, x, nil)
}
