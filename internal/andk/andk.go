// Package andk implements protocols for the single-bit AND_k problem, the
// building block of the paper's lower bound (Section 4.1) and of its
// information-vs-communication gap (Section 6).
//
// The protocols provided:
//
//   - Sequential: the paper's Section 6 protocol — players write their bit
//     in order, halting at the first 0. Its transcript can be encoded by
//     the index of the first zero-writer, so its external information cost
//     is O(log k) under any distribution, while its worst-case
//     communication is k. This is the witness for the Ω(k/log k) gap.
//   - BroadcastAll: every player writes its bit regardless. Reveals the
//     entire input; a natural upper-baseline for information cost.
//   - Truncated: only the first m players speak (deterministic); used to
//     exercise the Lemma 6 argument that any deterministic protocol in
//     which fewer than (1−ε/(1−ε'))·k players speak on input 1^k errs with
//     probability > ε under the Lemma 6 distribution.
//   - Lazy: before the sequential protocol starts, player 0 "throws its
//     hands up" with probability δ and the protocol halts with a fixed
//     output. This realizes the paper's remark that a protocol may waste ε
//     probability on transcripts that point to no player, and exercises the
//     error side of the Lemma 5 analysis.
//
// All types implement core.Spec, so the information-cost engine can
// enumerate or sample them directly.
package andk

import (
	"fmt"
	"math"
	"strconv"

	"broadcastic/internal/core"
	"broadcastic/internal/prob"
)

// Cached point masses on {0, 1}: MessageDist sits on the Monte-Carlo hot
// path and prob.Dist values are immutable, so sharing them is safe.
var (
	pointBit0 = mustPoint(0)
	pointBit1 = mustPoint(1)
)

func mustPoint(x int) prob.Dist {
	d, err := prob.Point(2, x)
	if err != nil {
		panic(err) // unreachable: static, known-good arguments
	}
	return d
}

// bitDist returns the deterministic one-bit announcement distribution.
func bitDist(input int) (prob.Dist, error) {
	switch input {
	case 0:
		return pointBit0, nil
	case 1:
		return pointBit1, nil
	default:
		return prob.Dist{}, fmt.Errorf("andk: non-binary input %d", input)
	}
}

// Sequential is the early-stopping AND_k protocol.
type Sequential struct {
	k int
}

// NewSequential returns the sequential AND_k protocol for k >= 1 players.
func NewSequential(k int) (*Sequential, error) {
	if k < 1 {
		return nil, fmt.Errorf("andk: k must be >= 1, got %d", k)
	}
	return &Sequential{k: k}, nil
}

// NumPlayers implements core.Spec.
func (s *Sequential) NumPlayers() int { return s.k }

// InputSize implements core.Spec.
func (s *Sequential) InputSize() int { return 2 }

// NextSpeaker implements core.Spec: player len(t) speaks, until a 0 is
// written or all players have spoken.
func (s *Sequential) NextSpeaker(t core.Transcript) (int, bool, error) {
	if len(t) > s.k {
		return 0, false, fmt.Errorf("andk: transcript of length %d exceeds %d players", len(t), s.k)
	}
	if len(t) > 0 && t[len(t)-1] == 0 {
		return 0, true, nil
	}
	if len(t) == s.k {
		return 0, true, nil
	}
	return len(t), false, nil
}

// MessageAlphabet implements core.Spec: messages are single bits.
func (s *Sequential) MessageAlphabet(t core.Transcript) (int, error) { return 2, nil }

// MessageDist implements core.Spec: each player deterministically writes
// its own input bit.
func (s *Sequential) MessageDist(t core.Transcript, player, input int) (prob.Dist, error) {
	return bitDist(input)
}

// MessageBits implements core.Spec: one bit per message.
func (s *Sequential) MessageBits(t core.Transcript, symbol int) (int, error) {
	if symbol != 0 && symbol != 1 {
		return 0, fmt.Errorf("andk: invalid symbol %d", symbol)
	}
	return 1, nil
}

// Output implements core.Spec: 1 iff every written bit is 1 and all k
// players spoke.
func (s *Sequential) Output(t core.Transcript) (int, error) {
	if len(t) == 0 {
		return 0, fmt.Errorf("andk: output of empty transcript")
	}
	if t[len(t)-1] == 0 {
		return 0, nil
	}
	if len(t) != s.k {
		return 0, fmt.Errorf("andk: transcript of length %d is not final", len(t))
	}
	return 1, nil
}

// IRKey names the protocol for the compiled-IR program cache (see
// internal/ir.Keyer): behavior is fully determined by k.
func (s *Sequential) IRKey() string { return "andk.seq/" + strconv.Itoa(s.k) }

var _ core.Spec = (*Sequential)(nil)

// BroadcastAll is the protocol in which every player writes its bit.
type BroadcastAll struct {
	k int
}

// NewBroadcastAll returns the all-speak AND_k protocol.
func NewBroadcastAll(k int) (*BroadcastAll, error) {
	if k < 1 {
		return nil, fmt.Errorf("andk: k must be >= 1, got %d", k)
	}
	return &BroadcastAll{k: k}, nil
}

// NumPlayers implements core.Spec.
func (b *BroadcastAll) NumPlayers() int { return b.k }

// InputSize implements core.Spec.
func (b *BroadcastAll) InputSize() int { return 2 }

// NextSpeaker implements core.Spec.
func (b *BroadcastAll) NextSpeaker(t core.Transcript) (int, bool, error) {
	if len(t) >= b.k {
		return 0, true, nil
	}
	return len(t), false, nil
}

// MessageAlphabet implements core.Spec.
func (b *BroadcastAll) MessageAlphabet(t core.Transcript) (int, error) { return 2, nil }

// MessageDist implements core.Spec.
func (b *BroadcastAll) MessageDist(t core.Transcript, player, input int) (prob.Dist, error) {
	return bitDist(input)
}

// MessageBits implements core.Spec.
func (b *BroadcastAll) MessageBits(t core.Transcript, symbol int) (int, error) { return 1, nil }

// Output implements core.Spec.
func (b *BroadcastAll) Output(t core.Transcript) (int, error) {
	if len(t) != b.k {
		return 0, fmt.Errorf("andk: transcript length %d, want %d", len(t), b.k)
	}
	for _, bit := range t {
		if bit == 0 {
			return 0, nil
		}
	}
	return 1, nil
}

// IRKey names the protocol for the compiled-IR program cache.
func (b *BroadcastAll) IRKey() string { return "andk.all/" + strconv.Itoa(b.k) }

var _ core.Spec = (*BroadcastAll)(nil)

// Truncated is the deterministic protocol in which only players 0..m-1
// speak (in order, with early stop on 0) and the output is the AND of the
// observed bits. For m < k it is incorrect, in exactly the way the Lemma 6
// adversary exploits.
type Truncated struct {
	k, m int
}

// NewTruncated returns the truncated protocol; 1 <= m <= k.
func NewTruncated(k, m int) (*Truncated, error) {
	if k < 1 || m < 1 || m > k {
		return nil, fmt.Errorf("andk: invalid truncation m=%d for k=%d", m, k)
	}
	return &Truncated{k: k, m: m}, nil
}

// NumPlayers implements core.Spec.
func (tr *Truncated) NumPlayers() int { return tr.k }

// InputSize implements core.Spec.
func (tr *Truncated) InputSize() int { return 2 }

// NextSpeaker implements core.Spec.
func (tr *Truncated) NextSpeaker(t core.Transcript) (int, bool, error) {
	if len(t) > 0 && t[len(t)-1] == 0 {
		return 0, true, nil
	}
	if len(t) >= tr.m {
		return 0, true, nil
	}
	return len(t), false, nil
}

// MessageAlphabet implements core.Spec.
func (tr *Truncated) MessageAlphabet(t core.Transcript) (int, error) { return 2, nil }

// MessageDist implements core.Spec.
func (tr *Truncated) MessageDist(t core.Transcript, player, input int) (prob.Dist, error) {
	return bitDist(input)
}

// MessageBits implements core.Spec.
func (tr *Truncated) MessageBits(t core.Transcript, symbol int) (int, error) { return 1, nil }

// Output implements core.Spec.
func (tr *Truncated) Output(t core.Transcript) (int, error) {
	if len(t) == 0 {
		return 0, fmt.Errorf("andk: output of empty transcript")
	}
	if t[len(t)-1] == 0 {
		return 0, nil
	}
	return 1, nil
}

// IRKey names the protocol for the compiled-IR program cache.
func (tr *Truncated) IRKey() string {
	return "andk.trunc/" + strconv.Itoa(tr.k) + "," + strconv.Itoa(tr.m)
}

var _ core.Spec = (*Truncated)(nil)

// Lazy wraps the sequential protocol with an initial give-up move: player 0
// first writes a coin that comes up "give up" with probability delta, in
// which case the protocol halts immediately with the fixed GiveUpOutput.
type Lazy struct {
	k            int
	delta        float64
	giveUpOutput int
	coin         prob.Dist // Bernoulli(delta), cached
}

// NewLazy returns the lazy protocol; delta in [0, 1), giveUpOutput in {0,1}.
func NewLazy(k int, delta float64, giveUpOutput int) (*Lazy, error) {
	if k < 1 {
		return nil, fmt.Errorf("andk: k must be >= 1, got %d", k)
	}
	if delta < 0 || delta >= 1 {
		return nil, fmt.Errorf("andk: delta = %v outside [0,1)", delta)
	}
	if giveUpOutput != 0 && giveUpOutput != 1 {
		return nil, fmt.Errorf("andk: giveUpOutput must be 0 or 1, got %d", giveUpOutput)
	}
	coin, err := prob.Bernoulli(delta)
	if err != nil {
		return nil, err
	}
	return &Lazy{k: k, delta: delta, giveUpOutput: giveUpOutput, coin: coin}, nil
}

// Transcript layout: symbol 0 of the run is the coin (0 = proceed,
// 1 = give up); afterwards the sequential protocol runs shifted by one.

// NumPlayers implements core.Spec.
func (l *Lazy) NumPlayers() int { return l.k }

// InputSize implements core.Spec.
func (l *Lazy) InputSize() int { return 2 }

// NextSpeaker implements core.Spec.
func (l *Lazy) NextSpeaker(t core.Transcript) (int, bool, error) {
	if len(t) == 0 {
		return 0, false, nil // the coin flip, by player 0
	}
	if t[0] == 1 {
		return 0, true, nil // gave up
	}
	rest := t[1:]
	if len(rest) > 0 && rest[len(rest)-1] == 0 {
		return 0, true, nil
	}
	if len(rest) == l.k {
		return 0, true, nil
	}
	return len(rest), false, nil
}

// MessageAlphabet implements core.Spec.
func (l *Lazy) MessageAlphabet(t core.Transcript) (int, error) { return 2, nil }

// MessageDist implements core.Spec.
func (l *Lazy) MessageDist(t core.Transcript, player, input int) (prob.Dist, error) {
	if input != 0 && input != 1 {
		return prob.Dist{}, fmt.Errorf("andk: non-binary input %d", input)
	}
	if len(t) == 0 {
		// The coin: independent of the input (pure private randomness).
		return l.coin, nil
	}
	return bitDist(input)
}

// MessageBits implements core.Spec.
func (l *Lazy) MessageBits(t core.Transcript, symbol int) (int, error) { return 1, nil }

// Output implements core.Spec.
func (l *Lazy) Output(t core.Transcript) (int, error) {
	if len(t) == 0 {
		return 0, fmt.Errorf("andk: output of empty transcript")
	}
	if t[0] == 1 {
		return l.giveUpOutput, nil
	}
	rest := t[1:]
	if len(rest) == 0 {
		return 0, fmt.Errorf("andk: lazy transcript not final")
	}
	if rest[len(rest)-1] == 0 {
		return 0, nil
	}
	if len(rest) != l.k {
		return 0, fmt.Errorf("andk: lazy transcript not final")
	}
	return 1, nil
}

// IRKey names the protocol for the compiled-IR program cache. delta
// enters as its exact float64 bit pattern: two Lazy specs share a program
// only when their coins are bit-identical.
func (l *Lazy) IRKey() string {
	return "andk.lazy/" + strconv.Itoa(l.k) + "," +
		strconv.FormatUint(math.Float64bits(l.delta), 16) + "," +
		strconv.Itoa(l.giveUpOutput)
}

var _ core.Spec = (*Lazy)(nil)
