package andk

import (
	"math"
	"testing"

	"broadcastic/internal/core"
	"broadcastic/internal/dist"
	"broadcastic/internal/rng"
)

func TestClosedFormValidation(t *testing.T) {
	if _, err := SequentialCICExact(1); err == nil {
		t.Fatal("k=1 CIC succeeded")
	}
	if _, err := SequentialICExact(1); err == nil {
		t.Fatal("k=1 IC succeeded")
	}
}

func TestClosedFormsMatchEnumeration(t *testing.T) {
	// The closed forms must agree with exact transcript-tree enumeration
	// at every enumerable k.
	for k := 2; k <= 12; k++ {
		spec, err := NewSequential(k)
		if err != nil {
			t.Fatal(err)
		}
		mu, err := dist.NewMu(k)
		if err != nil {
			t.Fatal(err)
		}
		report, err := core.ExactCosts(spec, mu, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		cic, err := SequentialCICExact(k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cic-report.CIC) > 1e-9 {
			t.Fatalf("k=%d: closed-form CIC %v vs enumerated %v", k, cic, report.CIC)
		}
		ic, err := SequentialICExact(k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ic-report.ExternalIC) > 1e-9 {
			t.Fatalf("k=%d: closed-form IC %v vs enumerated %v", k, ic, report.ExternalIC)
		}
	}
}

func TestClosedFormCICMatchesMonteCarlo(t *testing.T) {
	// Beyond enumeration range, the unbiased sampler must agree with the
	// closed form within a few standard errors.
	const k = 512
	spec, _ := NewSequential(k)
	mu, _ := dist.NewMu(k)
	est, err := core.EstimateCIC(spec, mu, rng.New(41), 20000)
	if err != nil {
		t.Fatal(err)
	}
	cic, err := SequentialCICExact(k)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(est.Mean - cic); diff > 5*est.StdErr+1e-6 {
		t.Fatalf("MC %v ± %v vs closed form %v", est.Mean, est.StdErr, cic)
	}
}

func TestClosedFormAsymptotics(t *testing.T) {
	// CIC(k) → (log₂e + log₂k)/e and IC(k) stays within the entropy bound
	// log₂(k+1); both grow with log k.
	prevCIC, prevIC := 0.0, 0.0
	for _, k := range []int{1 << 6, 1 << 10, 1 << 14, 1 << 18} {
		cic, err := SequentialCICExact(k)
		if err != nil {
			t.Fatal(err)
		}
		ic, err := SequentialICExact(k)
		if err != nil {
			t.Fatal(err)
		}
		limit := (math.Log2(math.E) + math.Log2(float64(k))) / math.E
		if math.Abs(cic-limit) > 0.05*limit {
			t.Fatalf("k=%d: CIC %v far from asymptote %v", k, cic, limit)
		}
		if ic > math.Log2(float64(k+1)) {
			t.Fatalf("k=%d: IC %v above entropy bound", k, ic)
		}
		if cic <= prevCIC || ic <= prevIC {
			t.Fatalf("k=%d: costs not increasing (CIC %v after %v, IC %v after %v)",
				k, cic, prevCIC, ic, prevIC)
		}
		if cic > ic {
			t.Fatalf("k=%d: CIC %v above IC %v", k, cic, ic)
		}
		prevCIC, prevIC = cic, ic
	}
}
