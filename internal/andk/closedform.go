package andk

import (
	"fmt"
	"math"
)

// Closed forms for the sequential AND_k protocol under the Section 4.1
// hard distribution μ. These extend the information-cost experiments to
// player counts far beyond enumeration or sampling, and are cross-checked
// against both in the tests.
//
// Derivation sketch. Condition on the special player Z = z and let
// ρ = 1 − 1/k. The transcript is determined by the first-zero position T:
// players i < T revealed a 1, player T revealed a 0, later players
// revealed nothing. By the product-posterior identity,
//
//	I(Π; X | Z) = E[ T·D(δ₁‖Bern₁(ρ)) + 1{T<z}·D(δ₀‖Bern₀(1/k)) ]
//	            = E[ T·log₂(k/(k−1)) + 1{T<z}·log₂ k ].
//
// Given z: P(T ≥ t) = ρ^t for t ≤ z, so E[T | z] = (k−1)(1−ρ^z) and
// P(T < z) = 1 − ρ^z. Averaging 1 − ρ^z over uniform z ∈ {0..k−1} gives
// exactly ρ^k, hence
//
//	CIC(k) = ρ^k · [ (k−1)·log₂(k/(k−1)) + log₂ k ]  ──k→∞──▶  (log₂ e + log₂ k)/e.
//
// For the external cost: the protocol is deterministic, so
// I(Π; X) = H(Π) − H(Π|X) = H(T), the entropy of the first-zero position
// under the marginal of μ, where P(T ≥ t) = ((k−t)/k)·ρ^t.

// SequentialCICExact returns the exact conditional information cost
// I(Π; X | Z) of the sequential AND_k protocol under μ, in bits.
func SequentialCICExact(k int) (float64, error) {
	if k < 2 {
		return 0, fmt.Errorf("andk: closed form requires k >= 2, got %d", k)
	}
	fk := float64(k)
	rho := 1 - 1/fk
	rhoK := math.Pow(rho, fk)
	return rhoK * ((fk-1)*math.Log2(fk/(fk-1)) + math.Log2(fk)), nil
}

// SequentialICExact returns the exact external information cost
// I(Π; X) = H(Π) of the sequential AND_k protocol under μ, in bits.
func SequentialICExact(k int) (float64, error) {
	if k < 2 {
		return 0, fmt.Errorf("andk: closed form requires k >= 2, got %d", k)
	}
	fk := float64(k)
	rho := 1 - 1/fk
	// P(T >= t) = ((k-t)/k) · ρ^t for t = 0..k; the all-ones transcript
	// (T = k) has probability 0 under μ.
	h := 0.0
	tailPrev := 1.0 // P(T >= 0)
	for t := 0; t < k; t++ {
		tailNext := (fk - float64(t+1)) / fk * math.Pow(rho, float64(t+1))
		p := tailPrev - tailNext
		if p > 0 {
			h -= p * math.Log2(p)
		}
		tailPrev = tailNext
	}
	return h, nil
}
