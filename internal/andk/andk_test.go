package andk

import (
	"math"
	"testing"

	"broadcastic/internal/core"
	"broadcastic/internal/dist"
	"broadcastic/internal/rng"
)

func TestNewSequentialValidation(t *testing.T) {
	if _, err := NewSequential(0); err == nil {
		t.Fatal("k=0 succeeded")
	}
}

func TestSequentialBehaviour(t *testing.T) {
	s, err := NewSequential(3)
	if err != nil {
		t.Fatal(err)
	}
	// Empty transcript: player 0 speaks.
	p, done, err := s.NextSpeaker(nil)
	if err != nil || done || p != 0 {
		t.Fatalf("NextSpeaker(empty) = %d,%v,%v", p, done, err)
	}
	// After a zero: done.
	_, done, err = s.NextSpeaker(core.Transcript{1, 0})
	if err != nil || !done {
		t.Fatalf("NextSpeaker(10) done=%v err=%v", done, err)
	}
	// After k ones: done.
	_, done, err = s.NextSpeaker(core.Transcript{1, 1, 1})
	if err != nil || !done {
		t.Fatalf("NextSpeaker(111) done=%v err=%v", done, err)
	}
	// Mid-protocol: player len(t).
	p, done, err = s.NextSpeaker(core.Transcript{1})
	if err != nil || done || p != 1 {
		t.Fatalf("NextSpeaker(1) = %d,%v,%v", p, done, err)
	}
	// Overlong transcript: error.
	if _, _, err := s.NextSpeaker(core.Transcript{1, 1, 1, 1}); err == nil {
		t.Fatal("overlong transcript succeeded")
	}
}

func TestSequentialOutputs(t *testing.T) {
	s, _ := NewSequential(3)
	out, err := s.Output(core.Transcript{1, 1, 1})
	if err != nil || out != 1 {
		t.Fatalf("Output(111) = %d,%v", out, err)
	}
	out, err = s.Output(core.Transcript{1, 0})
	if err != nil || out != 0 {
		t.Fatalf("Output(10) = %d,%v", out, err)
	}
	if _, err := s.Output(nil); err == nil {
		t.Fatal("output of empty transcript succeeded")
	}
	if _, err := s.Output(core.Transcript{1, 1}); err == nil {
		t.Fatal("output of non-final transcript succeeded")
	}
}

func TestSequentialMessageDist(t *testing.T) {
	s, _ := NewSequential(3)
	d, err := s.MessageDist(nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.P(1) != 1 {
		t.Fatalf("MessageDist(input=1) = %v", d.Probs())
	}
	if _, err := s.MessageDist(nil, 0, 2); err == nil {
		t.Fatal("non-binary input succeeded")
	}
	if _, err := s.MessageBits(nil, 2); err == nil {
		t.Fatal("invalid symbol bits succeeded")
	}
}

func TestSequentialCorrectOnAllInputs(t *testing.T) {
	for _, k := range []int{1, 2, 4, 6} {
		s, _ := NewSequential(k)
		e, err := core.WorstCaseError(s, core.AllBinaryInputs(k), core.AndFunc, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		if e != 0 {
			t.Fatalf("k=%d: error %v", k, e)
		}
	}
}

func TestSequentialWorstCaseCommunicationIsK(t *testing.T) {
	const k = 7
	s, _ := NewSequential(k)
	mu, _ := dist.NewMu(k)
	report, err := core.ExactCosts(s, mu, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if report.WorstCaseBits != k {
		t.Fatalf("worst-case bits = %d, want %d", report.WorstCaseBits, k)
	}
}

func TestBroadcastAllAlwaysSpeaksK(t *testing.T) {
	const k = 5
	b, err := NewBroadcastAll(k)
	if err != nil {
		t.Fatal(err)
	}
	leaves, err := core.EnumerateTranscripts(b, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 1<<k {
		t.Fatalf("%d transcripts, want %d", len(leaves), 1<<k)
	}
	for _, leaf := range leaves {
		if leaf.Bits != k {
			t.Fatalf("leaf bits %d, want %d", leaf.Bits, k)
		}
	}
	e, err := core.WorstCaseError(b, core.AllBinaryInputs(k), core.AndFunc, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Fatalf("broadcast-all error %v", e)
	}
	if _, err := NewBroadcastAll(0); err == nil {
		t.Fatal("k=0 succeeded")
	}
	if _, err := b.Output(core.Transcript{1}); err == nil {
		t.Fatal("short-transcript output succeeded")
	}
}

func TestTruncatedValidation(t *testing.T) {
	if _, err := NewTruncated(4, 0); err == nil {
		t.Fatal("m=0 succeeded")
	}
	if _, err := NewTruncated(4, 5); err == nil {
		t.Fatal("m>k succeeded")
	}
}

func TestTruncatedEqualsSequentialAtFullLength(t *testing.T) {
	const k = 5
	tr, _ := NewTruncated(k, k)
	e, err := core.WorstCaseError(tr, core.AllBinaryInputs(k), core.AndFunc, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Fatalf("full-length truncated protocol error %v", e)
	}
}

func TestTruncatedDistributionalErrorMatchesLemma6(t *testing.T) {
	// Under the Lemma 6 distribution with parameter ε', the truncated
	// protocol answering after m speakers errs exactly when the single
	// zero sits beyond the first m players:
	// error = (1−ε')·(k−m)/k.
	const k, m = 8, 3
	const epsPrime = 0.25
	d, err := dist.NewLemma6Dist(k, epsPrime)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(201)
	const trials = 200000
	wrong := 0
	for i := 0; i < trials; i++ {
		x, _ := d.Sample(src)
		// The protocol is deterministic; simulate directly.
		out := 1
		for j := 0; j < m; j++ {
			if x[j] == 0 {
				out = 0
				break
			}
		}
		if out != core.AndFunc(x) {
			wrong++
		}
	}
	got := float64(wrong) / trials
	want := (1 - epsPrime) * float64(k-m) / float64(k)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("truncated error %v, want %v", got, want)
	}
}

func TestLazyValidation(t *testing.T) {
	if _, err := NewLazy(0, 0.1, 0); err == nil {
		t.Fatal("k=0 succeeded")
	}
	if _, err := NewLazy(3, -0.1, 0); err == nil {
		t.Fatal("negative delta succeeded")
	}
	if _, err := NewLazy(3, 1, 0); err == nil {
		t.Fatal("delta=1 succeeded")
	}
	if _, err := NewLazy(3, 0.5, 2); err == nil {
		t.Fatal("invalid give-up output succeeded")
	}
}

func TestLazyTranscriptTree(t *testing.T) {
	// Lazy over k players has (k+1) sequential leaves + 1 give-up leaf.
	const k = 4
	l, err := NewLazy(k, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	leaves, err := core.EnumerateTranscripts(l, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != k+2 {
		t.Fatalf("%d leaves, want %d", len(leaves), k+2)
	}
	if _, err := l.Output(nil); err == nil {
		t.Fatal("empty-transcript output succeeded")
	}
	if _, err := l.Output(core.Transcript{0}); err == nil {
		t.Fatal("non-final transcript output succeeded")
	}
	out, err := l.Output(core.Transcript{1})
	if err != nil || out != 0 {
		t.Fatalf("give-up output = %d,%v", out, err)
	}
}

func TestLazyGiveUpProbability(t *testing.T) {
	const k = 3
	const delta = 0.3
	l, _ := NewLazy(k, delta, 0)
	src := rng.New(202)
	gaveUp := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		tr, _, err := core.SampleTranscript(l, []int{1, 1, 1}, src)
		if err != nil {
			t.Fatal(err)
		}
		if tr[0] == 1 {
			gaveUp++
		}
	}
	if math.Abs(float64(gaveUp)/trials-delta) > 0.01 {
		t.Fatalf("give-up rate %v, want %v", float64(gaveUp)/trials, delta)
	}
}

func TestInfoCommGapGrows(t *testing.T) {
	// E7 at test scale: CC(sequential)/CIC(sequential) grows with k —
	// the Ω(k / log k) gap of Section 6.
	var prevRatio float64
	for _, k := range []int{4, 8, 12} {
		s, _ := NewSequential(k)
		mu, _ := dist.NewMu(k)
		report, err := core.ExactCosts(s, mu, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(report.WorstCaseBits) / report.CIC
		if ratio <= prevRatio {
			t.Fatalf("gap ratio not growing: k=%d gives %v after %v", k, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}
