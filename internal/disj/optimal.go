package disj

import (
	"fmt"

	"broadcastic/internal/blackboard"
	"broadcastic/internal/encoding"
)

// SolveOptimal runs the Section 5 protocol, which is deterministic and uses
// O(n log k + k) bits:
//
//   - The protocol runs in cycles. At the start of cycle i let Z_i be the
//     set of coordinates not yet on the board and z_i = |Z_i|.
//   - While z_i >= k²: players speak in order; a player holding at least
//     w = ⌈z_i/k⌉ "new zeroes" (zero coordinates of its input inside Z_i
//     not yet on the board) writes w of them as one batch, encoded as a
//     w-subset of Z_i in ⌈log₂ C(z_i, w)⌉ bits — amortized Θ(log k) bits
//     per coordinate. Otherwise it writes a single "pass" bit.
//   - When z_i < k²: one final cycle in which every player writes all its
//     new zeroes naively as indices into Z_i (⌈log₂ z_i⌉ bits each).
//   - Halting: output "disjoint" as soon as every coordinate is on the
//     board; output "non-disjoint" after a phase-1 cycle in which every
//     player passed, or after the endgame cycle if coordinates remain.
//
// If the sets are disjoint, the pigeonhole principle guarantees some player
// always has >= z_i/k new zeroes, so an all-pass cycle certifies a common
// element.
func SolveOptimal(inst *Instance) (*Outcome, error) {
	return SolveOptimalOpts(inst, Options{})
}

// Options ablate individual design choices of the Section 5 protocol, for
// the E14 experiment that quantifies what each one buys:
//
//   - DisableBatching replaces the ⌈log₂ C(z,w)⌉-bit subset encoding by w
//     individual ⌈log₂ z⌉-bit coordinates — reintroducing the log n factor
//     the batching removes.
//   - DisableEndgame removes the z < k² switch, staying in phase 1 all the
//     way down. The protocol stays correct (the pigeonhole argument holds
//     for every z ≥ 1) but pays extra pass-bit cycles on the tail.
type Options struct {
	DisableBatching bool
	DisableEndgame  bool
}

// Breakdown attributes the optimal protocol's bits to their sources, the
// data behind experiment E16 (where the measured constant over the
// n·log₂k + k model comes from).
type Breakdown struct {
	PassBits    int // 1-bit "pass" messages and contribution flags
	BatchBits   int // subset-encoded batches (phase 1 payload)
	EndgameBits int // naive per-coordinate writes in the final cycle
	Cycles      int // number of cycles started
}

// SolveOptimalDetailed runs the protocol and also reports the Breakdown.
func SolveOptimalDetailed(inst *Instance, opts Options) (*Outcome, *Breakdown, error) {
	out, p, err := solveOptimal(inst, opts)
	if err != nil {
		return nil, nil, err
	}
	return out, &p.breakdown, nil
}

// SolveOptimalOpts runs the Section 5 protocol with the given ablations.
func SolveOptimalOpts(inst *Instance, opts Options) (*Outcome, error) {
	out, _, err := solveOptimal(inst, opts)
	return out, err
}

// SolveOptimalMessages runs the protocol and returns the individual
// message sizes in board order (used by the radio layer to map the
// execution onto channel slots).
func SolveOptimalMessages(inst *Instance, opts Options) (*Outcome, []int, error) {
	out, run, err := solveOptimal(inst, opts)
	if err != nil {
		return nil, nil, err
	}
	sizes := make([]int, 0, len(run.messageSizes))
	sizes = append(sizes, run.messageSizes...)
	return out, sizes, nil
}

// OptimalProtocol is the Section 5 protocol in blackboard form — a
// scheduler, players and limits any runtime can drive (the sequential
// blackboard.Run or the concurrent internal/netrun). The scheduler and
// players share the run state through this struct; a protocol instance is
// single-use and not itself concurrency-safe — concurrent runtimes
// serialize scheduler and player calls.
type OptimalProtocol struct {
	run     *optimalRun
	players []blackboard.Player
}

// NewOptimalProtocol instantiates the protocol on one instance.
func NewOptimalProtocol(inst *Instance, opts Options) (*OptimalProtocol, error) {
	if inst == nil {
		return nil, fmt.Errorf("disj: nil instance")
	}
	p := newOptimalRun(inst, opts)
	players := make([]blackboard.Player, inst.K)
	for i := 0; i < inst.K; i++ {
		players[i] = &optimalPlayer{run: p, id: i}
	}
	return &OptimalProtocol{run: p, players: players}, nil
}

// Scheduler returns the protocol's blackboard scheduler.
func (op *OptimalProtocol) Scheduler() blackboard.Scheduler { return op.run }

// Players returns the k blackboard players.
func (op *OptimalProtocol) Players() []blackboard.Player { return op.players }

// Limits bounds the execution length.
func (op *OptimalProtocol) Limits() blackboard.Limits {
	inst, opts := op.run.inst, op.run.opts
	limits := blackboard.Limits{
		// Generous: phase 1 has at most k·ln n cycles of k messages.
		MaxMessages: inst.K*(64+logCeil(inst.N)*inst.K) + inst.K + 64,
	}
	if opts.DisableEndgame {
		// Without the endgame the tail can burn up to k² single-coordinate
		// cycles of k messages each.
		limits.MaxMessages += inst.K * inst.K * inst.K
	}
	return limits
}

// Outcome reads the protocol's answer off a completed execution whose
// transcript lives on b.
func (op *OptimalProtocol) Outcome(b *blackboard.Board) (*Outcome, error) {
	if !op.run.answered {
		return nil, fmt.Errorf("disj: optimal protocol halted without an answer")
	}
	return &Outcome{
		Disjoint: op.run.disjoint,
		Bits:     b.TotalBits(),
		Messages: b.NumMessages(),
	}, nil
}

func solveOptimal(inst *Instance, opts Options) (*Outcome, *optimalRun, error) {
	op, err := NewOptimalProtocol(inst, opts)
	if err != nil {
		return nil, nil, err
	}
	res, err := blackboard.Run(op.Scheduler(), op.Players(), nil, op.Limits())
	if err != nil {
		return nil, nil, fmt.Errorf("disj: optimal protocol: %w", err)
	}
	out, err := op.Outcome(res.Board)
	if err != nil {
		return nil, nil, err
	}
	return out, op.run, nil
}

func logCeil(n int) int { return encoding.FixedWidth(uint64(n)) + 1 }

// optimalRun holds the protocol's public state: everything here is a pure
// function of the board contents — the scheduler decodes each appended
// message (it never peeks at player inputs), so any observer of the board
// could maintain the same state.
type optimalRun struct {
	inst *Instance
	opts Options
	k, n int

	covered      []bool
	coveredCount int

	started       bool
	endgame       bool // z < k²: final naive cycle
	zCycle        []int
	w             int // batch size ⌈z/k⌉ (phase 1)
	posInCycle    int
	contributions int // batches written this cycle
	processed     int // board messages decoded so far

	answered     bool
	disjoint     bool
	breakdown    Breakdown
	messageSizes []int
}

func newOptimalRun(inst *Instance, opts Options) *optimalRun {
	return &optimalRun{
		inst:    inst,
		opts:    opts,
		k:       inst.K,
		n:       inst.N,
		covered: make([]bool, inst.N),
	}
}

// startCycle recomputes the live set from the covered map and decides the
// phase for the next cycle.
func (p *optimalRun) startCycle() {
	p.zCycle = p.zCycle[:0]
	for j := 0; j < p.n; j++ {
		if !p.covered[j] {
			p.zCycle = append(p.zCycle, j)
		}
	}
	z := len(p.zCycle)
	p.endgame = z < p.k*p.k && !p.opts.DisableEndgame
	p.w = (z + p.k - 1) / p.k
	p.posInCycle = 0
	p.contributions = 0
	p.breakdown.Cycles++
}

// Next implements blackboard.Scheduler.
func (p *optimalRun) Next(b *blackboard.Board) (int, bool, error) {
	if err := p.catchUp(b); err != nil {
		return 0, false, err
	}
	if p.answered {
		return 0, true, nil
	}
	if !p.started {
		p.started = true
		p.startCycle()
	}
	if p.coveredCount == p.n {
		p.answered, p.disjoint = true, true
		return 0, true, nil
	}
	if p.posInCycle == p.k {
		// End of a complete cycle.
		if p.endgame {
			// Endgame cycle complete and coordinates remain.
			p.answered, p.disjoint = true, false
			return 0, true, nil
		}
		if p.contributions == 0 {
			// All players passed: pigeonhole certifies a common element.
			p.answered, p.disjoint = true, false
			return 0, true, nil
		}
		p.startCycle()
		if p.coveredCount == p.n {
			p.answered, p.disjoint = true, true
			return 0, true, nil
		}
	}
	return p.posInCycle, false, nil
}

// catchUp decodes any messages appended since the last call, keeping the
// public state synchronized with the board.
func (p *optimalRun) catchUp(b *blackboard.Board) error {
	msgs := b.Messages()
	for ; p.processed < len(msgs); p.processed++ {
		if err := p.decode(msgs[p.processed]); err != nil {
			return err
		}
	}
	return nil
}

// decode interprets one message under the current cycle state.
func (p *optimalRun) decode(m blackboard.Message) error {
	p.messageSizes = append(p.messageSizes, m.Len)
	r, err := m.Reader()
	if err != nil {
		return err
	}
	z := len(p.zCycle)
	if p.endgame {
		p.breakdown.EndgameBits += m.Len
		cnt, err := encoding.ReadNonNeg(r)
		if err != nil {
			return fmt.Errorf("disj: endgame count: %w", err)
		}
		width := encoding.FixedWidth(uint64(z))
		for c := uint64(0); c < cnt; c++ {
			pos, err := r.ReadBits(width)
			if err != nil {
				return fmt.Errorf("disj: endgame coordinate: %w", err)
			}
			if int(pos) >= z {
				return fmt.Errorf("disj: endgame coordinate %d outside live set of %d", pos, z)
			}
			p.cover(p.zCycle[pos])
		}
		p.posInCycle++
		return p.expectEnd(r, m)
	}
	flag, err := r.ReadBit()
	if err != nil {
		return fmt.Errorf("disj: phase-1 flag: %w", err)
	}
	p.breakdown.PassBits++ // the flag / pass bit
	if flag == 1 {
		p.breakdown.BatchBits += m.Len - 1
		if p.opts.DisableBatching {
			width := encoding.FixedWidth(uint64(z))
			for c := 0; c < p.w; c++ {
				pos, err := r.ReadBits(width)
				if err != nil {
					return fmt.Errorf("disj: unbatched coordinate: %w", err)
				}
				if int(pos) >= z {
					return fmt.Errorf("disj: coordinate %d outside live set of %d", pos, z)
				}
				p.cover(p.zCycle[pos])
			}
		} else {
			positions, err := encoding.ReadSubsetFast(r, z, p.w)
			if err != nil {
				return fmt.Errorf("disj: phase-1 batch: %w", err)
			}
			for _, pos := range positions {
				p.cover(p.zCycle[pos])
			}
		}
		p.contributions++
	}
	p.posInCycle++
	return p.expectEnd(r, m)
}

func (p *optimalRun) expectEnd(r *encoding.BitReader, m blackboard.Message) error {
	if r.Remaining() != 0 {
		return fmt.Errorf("disj: message from player %d has %d trailing bits", m.Player, r.Remaining())
	}
	return nil
}

func (p *optimalRun) cover(coord int) {
	if !p.covered[coord] {
		p.covered[coord] = true
		p.coveredCount++
	}
}

var _ blackboard.Scheduler = (*optimalRun)(nil)

// optimalPlayer produces messages from its private input and the shared
// public state.
type optimalPlayer struct {
	run *optimalRun
	id  int
}

// Speak implements blackboard.Player.
func (pl *optimalPlayer) Speak(b *blackboard.Board) (blackboard.Message, error) {
	p := pl.run
	// Positions (indices into zCycle) of this player's new zeroes.
	var newZeros []int
	for pos, coord := range p.zCycle {
		if !p.inst.Sets[pl.id].Get(coord) && !p.covered[coord] {
			newZeros = append(newZeros, pos)
		}
	}
	var w encoding.BitWriter
	z := len(p.zCycle)
	if p.endgame {
		if err := encoding.WriteNonNeg(&w, uint64(len(newZeros))); err != nil {
			return blackboard.Message{}, err
		}
		width := encoding.FixedWidth(uint64(z))
		for _, pos := range newZeros {
			if err := w.WriteBits(uint64(pos), width); err != nil {
				return blackboard.Message{}, err
			}
		}
		return blackboard.NewMessage(pl.id, &w), nil
	}
	if len(newZeros) >= p.w {
		if err := w.WriteBit(1); err != nil {
			return blackboard.Message{}, err
		}
		batch := newZeros[:p.w]
		if p.opts.DisableBatching {
			width := encoding.FixedWidth(uint64(z))
			for _, pos := range batch {
				if err := w.WriteBits(uint64(pos), width); err != nil {
					return blackboard.Message{}, err
				}
			}
		} else if err := encoding.WriteSubsetFast(&w, z, batch); err != nil {
			return blackboard.Message{}, err
		}
		return blackboard.NewMessage(pl.id, &w), nil
	}
	if err := w.WriteBit(0); err != nil {
		return blackboard.Message{}, err
	}
	return blackboard.NewMessage(pl.id, &w), nil
}

var _ blackboard.Player = (*optimalPlayer)(nil)

// OptimalCostModel returns the asymptotic cost model n·log₂(k)+k that
// experiment E1/E2 normalizes measured bits by. For k = 1 the log factor is
// replaced by 1 (one bit per coordinate is still needed).
func OptimalCostModel(n, k int) float64 {
	logK := float64(encoding.FixedWidth(uint64(k)))
	if logK < 1 {
		logK = 1
	}
	return float64(n)*logK + float64(k)
}
