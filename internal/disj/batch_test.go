package disj_test

// Lane-equivalence tests for batched μ^n generation: a 64-lane batch and
// the corresponding sequence of scalar generations from the same seed
// must agree draw for draw — identical sets, identical ground truth,
// identical final stream position — including ragged lane counts and
// universes that do not fill a 64-coordinate tile.

import (
	"testing"

	"broadcastic/internal/disj"
	"broadcastic/internal/rng"
)

func TestGenerateFromMuNBatchMatchesScalar(t *testing.T) {
	cases := []struct {
		name  string
		n, k  int
		lanes int
		seed  uint64
	}{
		{"full-batch", 100, 6, 64, 11},
		{"ragged-lanes", 70, 4, 37, 12},
		{"single-lane", 5, 2, 1, 13},
		{"tile-boundary", 64, 3, 64, 14},
		{"tiny-universe", 1, 5, 9, 15},
		{"multi-tile", 200, 8, 64, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batchSrc := rng.New(tc.seed)
			b, err := disj.GenerateFromMuNBatch(nil, batchSrc, tc.n, tc.k, tc.lanes)
			if err != nil {
				t.Fatal(err)
			}
			insts, err := b.Unpack()
			if err != nil {
				t.Fatal(err)
			}
			if len(insts) != tc.lanes {
				t.Fatalf("unpacked %d lanes, want %d", len(insts), tc.lanes)
			}

			scalarSrc := rng.New(tc.seed)
			mask := b.DisjointMask()
			for L := 0; L < tc.lanes; L++ {
				want, err := disj.GenerateFromMuN(scalarSrc, tc.n, tc.k)
				if err != nil {
					t.Fatal(err)
				}
				got := insts[L]
				for i := 0; i < tc.k; i++ {
					for w := 0; w < want.Sets[i].Words(); w++ {
						if got.Sets[i].Word(w) != want.Sets[i].Word(w) {
							t.Fatalf("lane %d player %d word %d: batch %#x != scalar %#x",
								L, i, w, got.Sets[i].Word(w), want.Sets[i].Word(w))
						}
					}
				}
				wantDisj, err := want.Disjoint()
				if err != nil {
					t.Fatal(err)
				}
				if gotDisj := mask>>uint(L)&1 == 1; gotDisj != wantDisj {
					t.Fatalf("lane %d: DisjointMask says %v, scalar ground truth %v",
						L, gotDisj, wantDisj)
				}
			}
			// Draw alignment: the batch must leave the stream exactly where
			// the scalar sequence left it.
			if batchSrc.Uint64() != scalarSrc.Uint64() {
				t.Fatal("batch generation left the RNG stream at a different position")
			}
		})
	}
}

// TestGenerateFromMuNBatchReuse pins the Into-style reuse contract: a
// refilled batch is indistinguishable from a freshly allocated one.
func TestGenerateFromMuNBatchReuse(t *testing.T) {
	const n, k, lanes = 90, 5, 64
	fresh, err := disj.GenerateFromMuNBatch(nil, rng.New(7), n, k, lanes)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := disj.GenerateFromMuNBatch(nil, rng.New(99), n, k, lanes)
	if err != nil {
		t.Fatal(err)
	}
	if reused, err = disj.GenerateFromMuNBatch(reused, rng.New(7), n, k, lanes); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		for j := 0; j < n; j++ {
			if fresh.Words[i][j] != reused.Words[i][j] {
				t.Fatalf("player %d coord %d: reused batch %#x != fresh %#x",
					i, j, reused.Words[i][j], fresh.Words[i][j])
			}
		}
	}
}

func TestGenerateFromMuNBatchValidation(t *testing.T) {
	if _, err := disj.GenerateFromMuNBatch(nil, nil, 5, 3, 8); err == nil {
		t.Fatal("nil source succeeded")
	}
	if _, err := disj.GenerateFromMuNBatch(nil, rng.New(1), 0, 3, 8); err == nil {
		t.Fatal("n=0 succeeded")
	}
	if _, err := disj.GenerateFromMuNBatch(nil, rng.New(1), 5, 1, 8); err == nil {
		t.Fatal("k=1 succeeded")
	}
	if _, err := disj.GenerateFromMuNBatch(nil, rng.New(1), 5, 3, 0); err == nil {
		t.Fatal("0 lanes succeeded")
	}
	if _, err := disj.GenerateFromMuNBatch(nil, rng.New(1), 5, 3, 65); err == nil {
		t.Fatal("65 lanes succeeded")
	}
}
