// Package disj implements k-party set disjointness DISJ_{n,k} in the
// broadcast model: each player i holds X_i ⊆ [n] and the players decide
// whether ∩_i X_i = ∅ (output 1 ⇔ disjoint, matching the paper's
// DISJ = ¬ ∨_j ∧_i X_i^j convention).
//
// Two protocols are provided:
//
//   - Naive (introduction): one pass, each player writes the raw indices of
//     its zero coordinates not yet on the board — Θ(n log n + k) bits.
//   - Optimal (Section 5): cycles with batched subset encoding —
//     Θ(n log k + k) bits, matching the paper's lower bound.
//
// Both run on the internal/blackboard runtime with bit-exact accounting.
package disj

import (
	"fmt"

	"broadcastic/internal/bitvec"
	"broadcastic/internal/rng"
)

// Instance is a DISJ_{n,k} input: one membership vector per player.
// Sets[i].Get(j) reports whether j ∈ X_i.
type Instance struct {
	N    int
	K    int
	Sets []*bitvec.Vector
}

// NewInstance validates and wraps per-player sets.
func NewInstance(n int, sets []*bitvec.Vector) (*Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("disj: universe size %d < 1", n)
	}
	if len(sets) < 1 {
		return nil, fmt.Errorf("disj: no players")
	}
	for i, s := range sets {
		if s == nil {
			return nil, fmt.Errorf("disj: nil set for player %d", i)
		}
		if s.Len() != n {
			return nil, fmt.Errorf("disj: player %d has universe %d, want %d", i, s.Len(), n)
		}
	}
	return &Instance{N: n, K: len(sets), Sets: sets}, nil
}

// Disjoint reports the ground truth by direct intersection.
func (inst *Instance) Disjoint() (bool, error) {
	_, nonEmpty, err := bitvec.IntersectsAll(inst.Sets)
	if err != nil {
		return false, err
	}
	return !nonEmpty, nil
}

// CommonElement returns a witness element of the intersection, if any.
func (inst *Instance) CommonElement() (int, bool, error) {
	return bitvec.IntersectsAll(inst.Sets)
}

// GenerateDisjoint samples an instance guaranteed to be disjoint: each
// element joins each set independently with probability density, and then
// one uniformly random player is removed from each element's membership
// (mirroring the hard distribution's "special player" device at scale).
func GenerateDisjoint(src *rng.Source, n, k int, density float64) (*Instance, error) {
	if err := checkGenArgs(src, n, k, density); err != nil {
		return nil, err
	}
	sets := make([]*bitvec.Vector, k)
	for i := range sets {
		v, err := bitvec.New(n)
		if err != nil {
			return nil, err
		}
		sets[i] = v
	}
	for j := 0; j < n; j++ {
		for i := 0; i < k; i++ {
			if src.Bernoulli(density) {
				if err := sets[i].Set(j); err != nil {
					return nil, err
				}
			}
		}
		if err := sets[src.Intn(k)].Clear(j); err != nil {
			return nil, err
		}
	}
	return NewInstance(n, sets)
}

// GenerateIntersecting samples a random instance and plants `common`
// elements present in every set, guaranteeing a non-empty intersection.
func GenerateIntersecting(src *rng.Source, n, k, common int, density float64) (*Instance, error) {
	if err := checkGenArgs(src, n, k, density); err != nil {
		return nil, err
	}
	if common < 1 || common > n {
		return nil, fmt.Errorf("disj: common element count %d outside [1,%d]", common, n)
	}
	inst, err := GenerateDisjoint(src, n, k, density)
	if err != nil {
		return nil, err
	}
	for _, j := range src.SampleWithoutReplacement(n, common) {
		for i := 0; i < k; i++ {
			if err := inst.Sets[i].Set(j); err != nil {
				return nil, err
			}
		}
	}
	return inst, nil
}

// GenerateFromMuN samples an instance from the paper's hard distribution
// μ^n: coordinate j has a special player Z_j forced out of X_{Z_j}, and
// every other player misses j independently with probability 1/k. Note the
// sampled instance may or may not be disjoint (a coordinate survives in the
// intersection when no non-special player drew a zero there... it cannot:
// the special player always misses it). μ^n instances are always disjoint;
// they are the information-theoretically hard disjoint inputs.
func GenerateFromMuN(src *rng.Source, n, k int) (*Instance, error) {
	return GenerateFromMuNInto(nil, src, n, k)
}

// GenerateFromMuNInto is GenerateFromMuN with instance reuse: when dst has
// the requested shape its bit vectors are cleared and refilled in place, so
// per-trial sampling loops allocate nothing. Pass the previous trial's
// instance (or nil for the first). The randomness draws are identical to
// GenerateFromMuN's, draw for draw, whether or not dst is reused.
func GenerateFromMuNInto(dst *Instance, src *rng.Source, n, k int) (*Instance, error) {
	if src == nil {
		return nil, fmt.Errorf("disj: nil randomness source")
	}
	if n < 1 || k < 2 {
		return nil, fmt.Errorf("disj: need n >= 1 and k >= 2, got n=%d k=%d", n, k)
	}
	inst := dst
	if inst == nil || inst.N != n || inst.K != k || len(inst.Sets) != k {
		sets := make([]*bitvec.Vector, k)
		for i := range sets {
			v, err := bitvec.New(n)
			if err != nil {
				return nil, err
			}
			sets[i] = v
		}
		inst = &Instance{N: n, K: k, Sets: sets}
	} else {
		for i, s := range inst.Sets {
			if s == nil || s.Len() != n {
				return nil, fmt.Errorf("disj: reused instance has invalid set %d", i)
			}
			s.ClearAll()
		}
	}
	invK := 1 / float64(k)
	for j := 0; j < n; j++ {
		z := src.Intn(k)
		for i := 0; i < k; i++ {
			if i == z {
				continue // forced zero: element absent
			}
			if !src.Bernoulli(invK) {
				if err := inst.Sets[i].Set(j); err != nil {
					return nil, err
				}
			}
		}
	}
	return inst, nil
}

func checkGenArgs(src *rng.Source, n, k int, density float64) error {
	if src == nil {
		return fmt.Errorf("disj: nil randomness source")
	}
	if n < 1 {
		return fmt.Errorf("disj: universe size %d < 1", n)
	}
	if k < 1 {
		return fmt.Errorf("disj: player count %d < 1", k)
	}
	if density < 0 || density > 1 {
		return fmt.Errorf("disj: density %v outside [0,1]", density)
	}
	return nil
}

// Outcome reports a protocol run on an instance.
type Outcome struct {
	// Disjoint is the protocol's answer (true ⇔ empty intersection).
	Disjoint bool
	// Bits is the exact number of bits written on the blackboard.
	Bits int
	// Messages is the number of blackboard writes.
	Messages int
}
