package disj_test

import (
	"testing"

	"broadcastic/internal/disj"
	"broadcastic/internal/rng"
)

// With ε = 0 the coordinator protocol is exact and costs exactly n·k
// bits in k messages — the Θ(nk) behavior E21 charts against the
// broadcast protocol's Θ(n log k + k).
func TestCoordinatorExact(t *testing.T) {
	cases := []struct {
		name string
		inst func(t *testing.T) *disj.Instance
	}{
		{"disjoint", func(t *testing.T) *disj.Instance {
			inst, err := disj.GenerateDisjoint(rng.New(11), 96, 4, 0.35)
			if err != nil {
				t.Fatal(err)
			}
			return inst
		}},
		{"intersecting", func(t *testing.T) *disj.Instance {
			inst, err := disj.GenerateIntersecting(rng.New(22), 96, 4, 1, 0.35)
			if err != nil {
				t.Fatal(err)
			}
			return inst
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst := tc.inst(t)
			truth, err := inst.Disjoint()
			if err != nil {
				t.Fatal(err)
			}
			out, err := disj.SolveCoordinator(inst, disj.CoordinatorOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if out.Disjoint != truth {
				t.Fatalf("answer %v, truth %v", out.Disjoint, truth)
			}
			if want := inst.N * inst.K; out.Bits != want {
				t.Fatalf("exact protocol cost %d bits, want n*k = %d", out.Bits, want)
			}
			if out.Messages != inst.K {
				t.Fatalf("protocol used %d messages, want k = %d", out.Messages, inst.K)
			}
		})
	}
}

// The ε-sketch has one-sided error: disjoint instances are always
// answered correctly (an empty intersection stays empty on any subset),
// and any "not disjoint" answer is certified by a real common element.
func TestCoordinatorSketchOneSided(t *testing.T) {
	const n, k, eps = 128, 5, 0.25
	wantBits := 96 * k // ⌈(1−0.25)·128⌉ = 96 bits per player
	for seed := uint64(0); seed < 20; seed++ {
		inst, err := disj.GenerateDisjoint(rng.New(1000+seed), n, k, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		out, err := disj.SolveCoordinator(inst, disj.CoordinatorOptions{Epsilon: eps, SketchSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Disjoint {
			t.Fatalf("seed %d: sketch reported an intersection on a disjoint instance", seed)
		}
		if out.Bits != wantBits {
			t.Fatalf("seed %d: sketch cost %d bits, want %d", seed, out.Bits, wantBits)
		}
	}
	for seed := uint64(0); seed < 20; seed++ {
		inst, err := disj.GenerateIntersecting(rng.New(2000+seed), n, k, 1, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		out, err := disj.SolveCoordinator(inst, disj.CoordinatorOptions{Epsilon: eps, SketchSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		// A "not disjoint" answer must be correct; "disjoint" is the
		// allowed ≤ ε error when every witness was sampled out.
		truth, err := inst.Disjoint()
		if err != nil {
			t.Fatal(err)
		}
		if !out.Disjoint && truth {
			t.Fatalf("seed %d: sketch certified a common element on a disjoint instance", seed)
		}
	}
}

// Epsilon outside [0,1) is rejected up front.
func TestCoordinatorOptionsValidation(t *testing.T) {
	inst, err := disj.GenerateDisjoint(rng.New(3), 32, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{-0.1, 1, 1.5} {
		if _, err := disj.NewCoordinatorProtocol(inst, disj.CoordinatorOptions{Epsilon: eps}); err == nil {
			t.Fatalf("epsilon %v accepted", eps)
		}
	}
	if _, err := disj.NewCoordinatorProtocol(nil, disj.CoordinatorOptions{}); err == nil {
		t.Fatal("nil instance accepted")
	}
}
