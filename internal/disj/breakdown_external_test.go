package disj_test

// External home of the breakdown accounting test: it needs the shared
// disjtest generators, which an in-package test file cannot import
// (disjtest imports disj). Everything it exercises is exported API.

import (
	"testing"

	"broadcastic/internal/disj"
	"broadcastic/internal/disj/disjtest"
	"broadcastic/internal/rng"
)

func TestBreakdownSumsToTotal(t *testing.T) {
	src := rng.New(313)
	for trial := 0; trial < 40; trial++ {
		n := src.Intn(3000) + 1
		k := src.Intn(12) + 1
		inst, err := disjtest.GenerateFromMuNOrSmallK(src, n, k)
		if err != nil {
			t.Fatal(err)
		}
		out, bd, err := disj.SolveOptimalDetailed(inst, disj.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if bd.PassBits+bd.BatchBits+bd.EndgameBits != out.Bits {
			t.Fatalf("n=%d k=%d: breakdown %d+%d+%d != total %d",
				n, k, bd.PassBits, bd.BatchBits, bd.EndgameBits, out.Bits)
		}
		if bd.Cycles < 1 {
			t.Fatalf("breakdown reports %d cycles", bd.Cycles)
		}
	}
	if _, _, err := disj.SolveOptimalDetailed(nil, disj.Options{}); err == nil {
		t.Fatal("nil instance succeeded")
	}
}
