// Package disjtest holds shared test-only generators for DISJ instances.
//
// It exists to fix an idiom smell: disj's in-package _test file used to
// export GenerateFromMuNOrSmallK, which leaks a test helper into every
// in-package test build but is invisible to other packages' tests. As a
// proper helper package it is importable by any external test (disj's
// own, the lane engine's equivalence suites) without duplication, and it
// never ships in production builds because only _test files import it.
package disjtest

import (
	"broadcastic/internal/disj"
	"broadcastic/internal/rng"
)

// GenerateFromMuNOrSmallK samples a μ^n instance, falling back to
// GenerateDisjoint for k = 1 where μ^n is undefined.
func GenerateFromMuNOrSmallK(src *rng.Source, n, k int) (*disj.Instance, error) {
	if k >= 2 {
		return disj.GenerateFromMuN(src, n, k)
	}
	return disj.GenerateDisjoint(src, n, k, 0.5)
}
