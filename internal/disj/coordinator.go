package disj

import (
	"fmt"
	"math"

	"broadcastic/internal/blackboard"
	"broadcastic/internal/encoding"
	"broadcastic/internal/rng"
)

// This file ports DISJ to the coordinator (message-passing) model of
// Braverman–Ellen–Oshman–Pitassi–Vaikuntanathan: players talk only to a
// hub, never to each other, and the hub's Θ(nk) lower bound is what the
// broadcast model's Θ(n log k + k) protocol separates from.
//
// The protocol is the model's canonical upper bound: each player sends the
// hub its membership bitmap — optionally restricted to a shared ε-sketch —
// and the hub intersects. With ε = 0 the cost is exactly n·k bits and the
// answer exact; with ε > 0 each player sends ⌈(1−ε)n⌉ bits over a
// publicly-sampled coordinate subset S, and the protocol has one-sided
// error ≤ ε: "not disjoint" is always certified by a common element in S,
// "disjoint" errs only when every intersection witness was sampled out,
// which for a single witness happens with probability ≤ ε.
//
// The sketch subset is derived from CoordinatorOptions.SketchSeed on both
// sides — public randomness, free in the model — so players need no board
// access at all: the protocol runs unchanged under netrun's
// DeliverCoordinator mode, where replicas stay empty.

// CoordinatorOptions tune the coordinator-model protocol.
type CoordinatorOptions struct {
	// Epsilon is the one-sided error budget in [0, 1): each player sends
	// its bitmap over a shared random subset of ⌈(1−ε)n⌉ coordinates.
	// 0 sends the full bitmap and is exact.
	Epsilon float64
	// SketchSeed roots the shared sampling of the sketch subset; hub and
	// players derive the same subset from it without communicating.
	// Ignored when Epsilon is 0.
	SketchSeed uint64
}

// CoordinatorCostModel is the coordinator-model communication in bits for
// the exact (ε = 0) protocol: every player ships its whole bitmap to the
// hub — the Θ(nk) behavior the BEOPV lower bound says is unavoidable.
func CoordinatorCostModel(n, k float64) float64 { return n * k }

// sketchSubset returns the sorted sketch coordinates: all of [n] for
// ε = 0, else a uniform ⌈(1−ε)n⌉-subset drawn from the seed.
func sketchSubset(n int, opts CoordinatorOptions) []int {
	m := n
	if opts.Epsilon > 0 {
		m = int(math.Ceil((1 - opts.Epsilon) * float64(n)))
		if m < 1 {
			m = 1
		}
		if m > n {
			m = n
		}
	}
	return rng.New(opts.SketchSeed).SampleWithoutReplacement(n, m)
}

// CoordinatorProtocol is the coordinator-model protocol in blackboard
// form. The "board" is the hub's received-message log: the scheduler (the
// hub) decodes it, the players never read it — their messages are a pure
// function of their input and the shared sketch — so the same adapter
// runs on the sequential runtime, on netrun's broadcast topologies, and
// under DeliverCoordinator where replicas stay empty. Single-use, like
// the other protocol adapters.
type CoordinatorProtocol struct {
	run     *coordRun
	players []blackboard.Player
}

// NewCoordinatorProtocol instantiates the protocol on one instance.
func NewCoordinatorProtocol(inst *Instance, opts CoordinatorOptions) (*CoordinatorProtocol, error) {
	if inst == nil {
		return nil, fmt.Errorf("disj: nil instance")
	}
	if opts.Epsilon < 0 || opts.Epsilon >= 1 {
		return nil, fmt.Errorf("disj: sketch epsilon %v outside [0,1)", opts.Epsilon)
	}
	subset := sketchSubset(inst.N, opts)
	run := &coordRun{
		inst:   inst,
		subset: subset,
		live:   make([]bool, len(subset)),
	}
	for j := range run.live {
		run.live[j] = true
	}
	players := make([]blackboard.Player, inst.K)
	for i := 0; i < inst.K; i++ {
		players[i] = &coordPlayer{run: run, id: i}
	}
	return &CoordinatorProtocol{run: run, players: players}, nil
}

// Scheduler returns the hub: it drives one round-robin pass and decodes
// each sketch as it lands.
func (cp *CoordinatorProtocol) Scheduler() blackboard.Scheduler { return cp.run }

// Players returns the k players.
func (cp *CoordinatorProtocol) Players() []blackboard.Player { return cp.players }

// Limits bounds the execution: exactly one message per player.
func (cp *CoordinatorProtocol) Limits() blackboard.Limits {
	return blackboard.Limits{MaxMessages: cp.run.inst.K}
}

// Outcome reads the hub's answer off a completed execution.
func (cp *CoordinatorProtocol) Outcome(b *blackboard.Board) (*Outcome, error) {
	if !cp.run.answered {
		return nil, fmt.Errorf("disj: coordinator protocol halted without an answer")
	}
	return &Outcome{
		Disjoint: cp.run.disjoint,
		Bits:     b.TotalBits(),
		Messages: b.NumMessages(),
	}, nil
}

// SolveCoordinator runs the coordinator-model protocol on the sequential
// runtime and returns its outcome.
func SolveCoordinator(inst *Instance, opts CoordinatorOptions) (*Outcome, error) {
	cp, err := NewCoordinatorProtocol(inst, opts)
	if err != nil {
		return nil, err
	}
	res, err := blackboard.Run(cp.Scheduler(), cp.Players(), nil, cp.Limits())
	if err != nil {
		return nil, fmt.Errorf("disj: coordinator protocol: %w", err)
	}
	return cp.Outcome(res.Board)
}

// coordRun is the hub: its state is a pure function of the message log.
type coordRun struct {
	inst   *Instance
	subset []int
	// live[j] is whether sketch coordinate j survives the intersection of
	// every sketch decoded so far.
	live      []bool
	processed int
	answered  bool
	disjoint  bool
}

// Next implements blackboard.Scheduler: players speak once, in order;
// after the k-th sketch the hub answers.
func (cr *coordRun) Next(b *blackboard.Board) (int, bool, error) {
	if err := cr.catchUp(b); err != nil {
		return 0, false, err
	}
	if cr.processed == cr.inst.K {
		if !cr.answered {
			cr.answered = true
			cr.disjoint = true
			for _, alive := range cr.live {
				if alive {
					cr.disjoint = false
					break
				}
			}
		}
		return 0, true, nil
	}
	return cr.processed, false, nil
}

// catchUp decodes messages the hub has not yet folded into the
// intersection.
func (cr *coordRun) catchUp(b *blackboard.Board) error {
	for cr.processed < b.NumMessages() {
		msg := b.Messages()[cr.processed]
		if msg.Player != cr.processed {
			return fmt.Errorf("disj: coordinator expected sketch from player %d, got one from %d", cr.processed, msg.Player)
		}
		if msg.Len != len(cr.subset) {
			return fmt.Errorf("disj: sketch from player %d has %d bits, want %d", msg.Player, msg.Len, len(cr.subset))
		}
		r, err := encoding.NewBitReader(msg.Bits, msg.Len)
		if err != nil {
			return err
		}
		for j := range cr.subset {
			bit, err := r.ReadBit()
			if err != nil {
				return err
			}
			if bit == 0 {
				cr.live[j] = false
			}
		}
		cr.processed++
	}
	return nil
}

// coordPlayer sends its membership bitmap over the sketch subset. It
// ignores the board entirely — by design it works with an empty replica.
type coordPlayer struct {
	run *coordRun
	id  int
}

// Speak implements blackboard.Player.
func (p *coordPlayer) Speak(*blackboard.Board) (blackboard.Message, error) {
	var w encoding.BitWriter
	set := p.run.inst.Sets[p.id]
	for _, coord := range p.run.subset {
		bit := 0
		if set.Get(coord) {
			bit = 1
		}
		if err := w.WriteBit(bit); err != nil {
			return blackboard.Message{}, err
		}
	}
	return blackboard.NewMessage(p.id, &w), nil
}
