package disj

import (
	"math"
	"testing"

	"broadcastic/internal/andk"
	"broadcastic/internal/core"
	"broadcastic/internal/dist"
)

func TestNewSequentialSpecValidation(t *testing.T) {
	if _, err := NewSequentialSpec(0, 3); err == nil {
		t.Fatal("n=0 succeeded")
	}
	if _, err := NewSequentialSpec(17, 3); err == nil {
		t.Fatal("n=17 succeeded")
	}
	if _, err := NewSequentialSpec(2, 0); err == nil {
		t.Fatal("k=0 succeeded")
	}
}

func TestSequentialSpecCorrect(t *testing.T) {
	// Exhaustive correctness over all inputs for small (n, k).
	for _, cfg := range []struct{ n, k int }{{1, 2}, {2, 2}, {2, 3}, {3, 2}} {
		spec, err := NewSequentialSpec(cfg.n, cfg.k)
		if err != nil {
			t.Fatal(err)
		}
		var inputs [][]int
		size := spec.InputSize()
		total := 1
		for i := 0; i < cfg.k; i++ {
			total *= size
		}
		for idx := 0; idx < total; idx++ {
			x := make([]int, cfg.k)
			v := idx
			for i := range x {
				x[i] = v % size
				v /= size
			}
			inputs = append(inputs, x)
		}
		e, err := core.WorstCaseError(spec, inputs, DisjFunc(cfg.n), core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		if e != 0 {
			t.Fatalf("n=%d k=%d: spec errs with probability %v", cfg.n, cfg.k, e)
		}
	}
}

func TestSequentialSpecN1MatchesAnd(t *testing.T) {
	// DISJ_{1,k} is ¬AND: the n=1 spec's CIC under μ^1 must equal the
	// sequential AND_k spec's CIC under μ.
	const k = 4
	spec1, err := NewSequentialSpec(1, k)
	if err != nil {
		t.Fatal(err)
	}
	mun, err := dist.NewMuN(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := core.ExactCosts(spec1, mun, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	andSpec, _ := andk.NewSequential(k)
	mu, _ := dist.NewMu(k)
	r2, err := core.ExactCosts(andSpec, mu, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.CIC-r2.CIC) > 1e-9 {
		t.Fatalf("DISJ_{1,k} CIC %v != AND_k CIC %v", r1.CIC, r2.CIC)
	}
}

func TestDirectSumAdditivity(t *testing.T) {
	// E5 at test scale: CIC(DISJ_{n,k}) under μ^n should be close to
	// n · CIC(AND_k) under μ. The early halt on a discovered common
	// element never triggers on μ^n's support (all inputs disjoint), so
	// for this protocol the equality is within numerical noise — and the
	// direct-sum lower bound direction (≥, Lemma 1) must hold exactly.
	const k = 3
	andSpec, _ := andk.NewSequential(k)
	mu, _ := dist.NewMu(k)
	base, err := core.ExactCosts(andSpec, mu, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3} {
		spec, err := NewSequentialSpec(n, k)
		if err != nil {
			t.Fatal(err)
		}
		mun, err := dist.NewMuN(k, n)
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.ExactCosts(spec, mun, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		want := float64(n) * base.CIC
		if math.Abs(r.CIC-want) > 1e-6 {
			t.Fatalf("n=%d: CIC %v, want n·CIC(AND) = %v", n, r.CIC, want)
		}
	}
}

func TestSequentialSpecParseErrors(t *testing.T) {
	spec, _ := NewSequentialSpec(2, 2)
	if _, _, err := spec.NextSpeaker(core.Transcript{2}); err == nil {
		t.Fatal("invalid symbol succeeded")
	}
	if _, err := spec.Output(core.Transcript{1}); err == nil {
		t.Fatal("output of partial transcript succeeded")
	}
	// Transcript continuing past a halt must error.
	if _, _, err := spec.NextSpeaker(core.Transcript{1, 1, 0}); err == nil {
		t.Fatal("transcript past halt succeeded")
	}
	if _, err := spec.MessageDist(core.Transcript{1, 1}, 0, 0); err == nil {
		t.Fatal("MessageDist after halt succeeded")
	}
	if _, err := spec.MessageDist(nil, 0, 4); err == nil {
		t.Fatal("out-of-range input succeeded")
	}
	if _, err := spec.MessageBits(nil, 2); err == nil {
		t.Fatal("invalid symbol bits succeeded")
	}
}

func TestDisjFunc(t *testing.T) {
	f := DisjFunc(2)
	// Coordinate 0 held by everyone.
	if f([]int{0b01, 0b11}) != 0 {
		t.Fatal("common coordinate not detected")
	}
	// No common coordinate.
	if f([]int{0b01, 0b10}) != 1 {
		t.Fatal("disjoint inputs not detected")
	}
	if f([]int{0, 0}) != 1 {
		t.Fatal("empty sets not disjoint")
	}
}
