package disj

import (
	"fmt"
	"strconv"

	"broadcastic/internal/core"
	"broadcastic/internal/prob"
)

// SequentialSpec is DISJ_{n,k} as a core.Spec for the direct-sum experiment
// (Lemma 1 / E5): the n coordinates are processed in order, each by the
// sequential AND_k sub-protocol — players announce their bit for the
// current coordinate until a 0 appears (the coordinate cannot be in the
// intersection) or all k bits are 1 (a common element: halt, output 0).
// Output 1 means disjoint. Inputs are n-bit vectors encoded as integers
// with coordinate j in bit j, matching dist.MuN.
//
// Its conditional information cost under μ^n, divided by n, is compared
// against the cost of one AND_k copy under μ.
type SequentialSpec struct {
	n, k int
}

// NewSequentialSpec returns the per-coordinate sequential DISJ spec; the
// exact engine needs 2^n input values per player, so n is capped at 16.
func NewSequentialSpec(n, k int) (*SequentialSpec, error) {
	if n < 1 || n > 16 {
		return nil, fmt.Errorf("disj: spec coordinates %d outside [1,16]", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("disj: spec players %d < 1", k)
	}
	return &SequentialSpec{n: n, k: k}, nil
}

// NumPlayers implements core.Spec.
func (s *SequentialSpec) NumPlayers() int { return s.k }

// InputSize implements core.Spec.
func (s *SequentialSpec) InputSize() int { return 1 << uint(s.n) }

// parse replays the transcript and returns the execution point: the current
// coordinate, the next speaker within it, and whether the protocol halted
// (with which output).
func (s *SequentialSpec) parse(t core.Transcript) (coord, speaker int, done bool, output int, err error) {
	pos := 0
	for coord = 0; coord < s.n; coord++ {
		ones := 0
		for {
			if pos == len(t) {
				return coord, ones, false, 0, nil
			}
			bit := t[pos]
			if bit != 0 && bit != 1 {
				return 0, 0, false, 0, fmt.Errorf("disj: invalid transcript symbol %d", bit)
			}
			pos++
			if bit == 0 {
				break // coordinate resolved: someone lacks it
			}
			ones++
			if ones == s.k {
				// All k players hold this coordinate: common element.
				if pos != len(t) {
					return 0, 0, false, 0, fmt.Errorf("disj: transcript continues past halt")
				}
				return coord, 0, true, 0, nil
			}
		}
	}
	if pos != len(t) {
		return 0, 0, false, 0, fmt.Errorf("disj: transcript continues past final coordinate")
	}
	return s.n, 0, true, 1, nil
}

// NextSpeaker implements core.Spec.
func (s *SequentialSpec) NextSpeaker(t core.Transcript) (int, bool, error) {
	_, speaker, done, _, err := s.parse(t)
	if err != nil {
		return 0, false, err
	}
	return speaker, done, nil
}

// MessageAlphabet implements core.Spec.
func (s *SequentialSpec) MessageAlphabet(t core.Transcript) (int, error) { return 2, nil }

// MessageDist implements core.Spec: the speaker deterministically announces
// its bit for the current coordinate.
func (s *SequentialSpec) MessageDist(t core.Transcript, player, input int) (prob.Dist, error) {
	if input < 0 || input >= s.InputSize() {
		return prob.Dist{}, fmt.Errorf("disj: input %d outside [0,%d)", input, s.InputSize())
	}
	coord, _, done, _, err := s.parse(t)
	if err != nil {
		return prob.Dist{}, err
	}
	if done {
		return prob.Dist{}, fmt.Errorf("disj: MessageDist after halt")
	}
	return prob.Point(2, input>>uint(coord)&1)
}

// MessageBits implements core.Spec.
func (s *SequentialSpec) MessageBits(t core.Transcript, symbol int) (int, error) {
	if symbol != 0 && symbol != 1 {
		return 0, fmt.Errorf("disj: invalid symbol %d", symbol)
	}
	return 1, nil
}

// Output implements core.Spec: 1 ⇔ disjoint.
func (s *SequentialSpec) Output(t core.Transcript) (int, error) {
	_, _, done, output, err := s.parse(t)
	if err != nil {
		return 0, err
	}
	if !done {
		return 0, fmt.Errorf("disj: output of non-final transcript")
	}
	return output, nil
}

// IRKey names the protocol for the compiled-IR program cache (see
// internal/ir.Keyer). Large n still keys fine — the compiler's input-size
// gate (2^n values per player) simply refuses, the refusal is cached, and
// the estimator keeps its dynamic path.
func (s *SequentialSpec) IRKey() string {
	return "disj.seq/" + strconv.Itoa(s.n) + "," + strconv.Itoa(s.k)
}

var _ core.Spec = (*SequentialSpec)(nil)

// DisjFunc is DISJ as a target function over integer-encoded n-bit inputs:
// 1 ⇔ no coordinate is held by all players.
func DisjFunc(n int) func(x []int) int {
	return func(x []int) int {
		for j := 0; j < n; j++ {
			all := true
			for _, xi := range x {
				if xi>>uint(j)&1 == 0 {
					all = false
					break
				}
			}
			if all {
				return 0
			}
		}
		return 1
	}
}
