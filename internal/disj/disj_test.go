package disj

import (
	"testing"

	"broadcastic/internal/bitvec"
	"broadcastic/internal/blackboard"
	"broadcastic/internal/encoding"
	"broadcastic/internal/rng"
)

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance(0, []*bitvec.Vector{bitvec.MustNew(0)}); err == nil {
		t.Fatal("n=0 succeeded")
	}
	if _, err := NewInstance(4, nil); err == nil {
		t.Fatal("no players succeeded")
	}
	if _, err := NewInstance(4, []*bitvec.Vector{nil}); err == nil {
		t.Fatal("nil set succeeded")
	}
	if _, err := NewInstance(4, []*bitvec.Vector{bitvec.MustNew(5)}); err == nil {
		t.Fatal("universe mismatch succeeded")
	}
}

func TestGenerateDisjointIsDisjoint(t *testing.T) {
	src := rng.New(301)
	for trial := 0; trial < 50; trial++ {
		n := src.Intn(200) + 1
		k := src.Intn(8) + 1
		inst, err := GenerateDisjoint(src, n, k, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		dis, err := inst.Disjoint()
		if err != nil {
			t.Fatal(err)
		}
		if !dis {
			t.Fatalf("GenerateDisjoint produced intersecting instance (n=%d k=%d)", n, k)
		}
	}
}

func TestGenerateIntersectingIntersects(t *testing.T) {
	src := rng.New(302)
	for trial := 0; trial < 50; trial++ {
		n := src.Intn(200) + 1
		k := src.Intn(8) + 1
		inst, err := GenerateIntersecting(src, n, k, 1, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		dis, err := inst.Disjoint()
		if err != nil {
			t.Fatal(err)
		}
		if dis {
			t.Fatalf("GenerateIntersecting produced disjoint instance (n=%d k=%d)", n, k)
		}
		if _, ok, _ := inst.CommonElement(); !ok {
			t.Fatal("no witness for intersecting instance")
		}
	}
}

func TestGenerateFromMuNAlwaysDisjoint(t *testing.T) {
	src := rng.New(303)
	for trial := 0; trial < 30; trial++ {
		inst, err := GenerateFromMuN(src, 100, 5)
		if err != nil {
			t.Fatal(err)
		}
		dis, err := inst.Disjoint()
		if err != nil {
			t.Fatal(err)
		}
		if !dis {
			t.Fatal("μ^n instance intersects")
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	src := rng.New(304)
	if _, err := GenerateDisjoint(nil, 10, 2, 0.5); err == nil {
		t.Fatal("nil source succeeded")
	}
	if _, err := GenerateDisjoint(src, 0, 2, 0.5); err == nil {
		t.Fatal("n=0 succeeded")
	}
	if _, err := GenerateDisjoint(src, 10, 0, 0.5); err == nil {
		t.Fatal("k=0 succeeded")
	}
	if _, err := GenerateDisjoint(src, 10, 2, 1.5); err == nil {
		t.Fatal("density > 1 succeeded")
	}
	if _, err := GenerateIntersecting(src, 10, 2, 0, 0.5); err == nil {
		t.Fatal("common=0 succeeded")
	}
	if _, err := GenerateIntersecting(src, 10, 2, 11, 0.5); err == nil {
		t.Fatal("common > n succeeded")
	}
	if _, err := GenerateFromMuN(src, 10, 1); err == nil {
		t.Fatal("k=1 μ^n succeeded")
	}
}

func TestNaiveCorrectRandom(t *testing.T) {
	src := rng.New(305)
	for trial := 0; trial < 100; trial++ {
		n := src.Intn(120) + 1
		k := src.Intn(6) + 1
		var inst *Instance
		var err error
		if src.Bool() {
			inst, err = GenerateDisjoint(src, n, k, src.Float64())
		} else {
			inst, err = GenerateIntersecting(src, n, k, src.Intn(n)+1, src.Float64())
		}
		if err != nil {
			t.Fatal(err)
		}
		want, err := inst.Disjoint()
		if err != nil {
			t.Fatal(err)
		}
		out, err := SolveNaive(inst)
		if err != nil {
			t.Fatal(err)
		}
		if out.Disjoint != want {
			t.Fatalf("naive answered %v, truth %v (n=%d k=%d)", out.Disjoint, want, n, k)
		}
		if out.Messages != k {
			t.Fatalf("naive used %d messages, want %d", out.Messages, k)
		}
	}
	if _, err := SolveNaive(nil); err == nil {
		t.Fatal("nil instance succeeded")
	}
}

func TestOptimalCorrectRandom(t *testing.T) {
	src := rng.New(306)
	for trial := 0; trial < 150; trial++ {
		n := src.Intn(300) + 1
		k := src.Intn(9) + 1
		var inst *Instance
		var err error
		switch src.Intn(3) {
		case 0:
			inst, err = GenerateDisjoint(src, n, k, src.Float64())
		case 1:
			inst, err = GenerateIntersecting(src, n, k, src.Intn(n)+1, src.Float64())
		default:
			if k < 2 {
				k = 2
			}
			inst, err = GenerateFromMuN(src, n, k)
		}
		if err != nil {
			t.Fatal(err)
		}
		want, err := inst.Disjoint()
		if err != nil {
			t.Fatal(err)
		}
		out, err := SolveOptimal(inst)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", n, k, err)
		}
		if out.Disjoint != want {
			t.Fatalf("optimal answered %v, truth %v (n=%d k=%d)", out.Disjoint, want, n, k)
		}
	}
	if _, err := SolveOptimal(nil); err == nil {
		t.Fatal("nil instance succeeded")
	}
}

func TestOptimalCorrectEdgeCases(t *testing.T) {
	// All-empty sets: trivially disjoint; the board covers everything in
	// the first pass.
	empty := []*bitvec.Vector{bitvec.MustNew(10), bitvec.MustNew(10)}
	inst, _ := NewInstance(10, empty)
	out, err := SolveOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Disjoint {
		t.Fatal("empty sets reported intersecting")
	}

	// All-full sets: everything intersects.
	full := []*bitvec.Vector{bitvec.MustNew(10), bitvec.MustNew(10)}
	full[0].SetAll()
	full[1].SetAll()
	inst, _ = NewInstance(10, full)
	out, err = SolveOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	if out.Disjoint {
		t.Fatal("full sets reported disjoint")
	}

	// Single player with empty set: "disjoint" (empty intersection).
	one := []*bitvec.Vector{bitvec.MustNew(5)}
	inst, _ = NewInstance(5, one)
	out, err = SolveOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Disjoint {
		t.Fatal("single empty set reported intersecting")
	}

	// Single player with one element: intersecting.
	oneFull := []*bitvec.Vector{bitvec.MustNew(5)}
	_ = oneFull[0].Set(3)
	inst, _ = NewInstance(5, oneFull)
	out, err = SolveOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	if out.Disjoint {
		t.Fatal("non-empty single set reported disjoint")
	}

	// n = 1.
	tiny := []*bitvec.Vector{bitvec.MustNew(1), bitvec.MustNew(1)}
	_ = tiny[0].Set(0)
	inst, _ = NewInstance(1, tiny)
	out, err = SolveOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Disjoint {
		t.Fatal("n=1 with one-sided element reported intersecting")
	}
}

func TestNaiveAndOptimalAgree(t *testing.T) {
	src := rng.New(307)
	for trial := 0; trial < 60; trial++ {
		n := src.Intn(150) + 1
		k := src.Intn(7) + 1
		inst, err := GenerateDisjoint(src, n, k, src.Float64())
		if err != nil {
			t.Fatal(err)
		}
		a, err := SolveNaive(inst)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveOptimal(inst)
		if err != nil {
			t.Fatal(err)
		}
		if a.Disjoint != b.Disjoint {
			t.Fatalf("protocols disagree: naive %v, optimal %v", a.Disjoint, b.Disjoint)
		}
	}
}

func TestOptimalBeatsNaiveAtScale(t *testing.T) {
	// The Theorem 2 separation: for n >> k, n log k << n log n.
	src := rng.New(308)
	const n, k = 8192, 4
	inst, err := GenerateDisjoint(src, n, k, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := SolveNaive(inst)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SolveOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Bits >= naive.Bits {
		t.Fatalf("optimal %d bits not below naive %d bits", opt.Bits, naive.Bits)
	}
	// The optimal protocol must be within a constant factor of the
	// n·log2(k)+k model.
	model := OptimalCostModel(n, k)
	ratio := float64(opt.Bits) / model
	if ratio > 4 {
		t.Fatalf("optimal cost ratio %v to n·log k+k model too large (bits=%d model=%v)",
			ratio, opt.Bits, model)
	}
}

func TestOptimalCostScalesWithLogK(t *testing.T) {
	// Doubling k (with n fixed, n >> k²) should grow cost roughly like
	// log k, not like k: the ratio bits/(n log2 k + k) stays bounded.
	src := rng.New(309)
	const n = 4096
	for _, k := range []int{2, 4, 8, 16} {
		inst, err := GenerateDisjoint(src, n, k, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		out, err := SolveOptimal(inst)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(out.Bits) / OptimalCostModel(n, k)
		if ratio > 4 {
			t.Fatalf("k=%d: ratio %v too large (bits=%d)", k, ratio, out.Bits)
		}
	}
}

func TestOptimalHandlesKLargerThanSqrtN(t *testing.T) {
	// k² > n sends the protocol straight to the endgame.
	src := rng.New(310)
	inst, err := GenerateDisjoint(src, 50, 16, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := inst.Disjoint()
	out, err := SolveOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	if out.Disjoint != want {
		t.Fatalf("answered %v, truth %v", out.Disjoint, want)
	}
}

func TestCostModels(t *testing.T) {
	if NaiveCostModel(8, 2) != 8*3+2 {
		t.Fatalf("NaiveCostModel(8,2) = %v", NaiveCostModel(8, 2))
	}
	if OptimalCostModel(8, 1) != 8+1 {
		t.Fatalf("OptimalCostModel(8,1) = %v", OptimalCostModel(8, 1))
	}
	if OptimalCostModel(8, 4) != 8*2+4 {
		t.Fatalf("OptimalCostModel(8,4) = %v", OptimalCostModel(8, 4))
	}
}

func TestAblatedVariantsCorrect(t *testing.T) {
	src := rng.New(311)
	variants := []Options{
		{DisableBatching: true},
		{DisableEndgame: true},
		{DisableBatching: true, DisableEndgame: true},
	}
	for trial := 0; trial < 60; trial++ {
		n := src.Intn(200) + 1
		k := src.Intn(9) + 1
		var inst *Instance
		var err error
		if src.Bool() {
			inst, err = GenerateDisjoint(src, n, k, src.Float64())
		} else {
			inst, err = GenerateIntersecting(src, n, k, src.Intn(n)+1, src.Float64())
		}
		if err != nil {
			t.Fatal(err)
		}
		want, err := inst.Disjoint()
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range variants {
			out, err := SolveOptimalOpts(inst, opts)
			if err != nil {
				t.Fatalf("n=%d k=%d opts=%+v: %v", n, k, opts, err)
			}
			if out.Disjoint != want {
				t.Fatalf("n=%d k=%d opts=%+v: answered %v, truth %v", n, k, opts, out.Disjoint, want)
			}
		}
	}
}

func TestNoBatchingCostsMore(t *testing.T) {
	src := rng.New(312)
	inst, err := GenerateFromMuN(src, 4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SolveOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := SolveOptimalOpts(inst, Options{DisableBatching: true})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Bits <= full.Bits {
		t.Fatalf("no-batching %d bits not above full %d bits", nb.Bits, full.Bits)
	}
}

// TestBreakdownSumsToTotal moved to breakdown_external_test.go (package
// disj_test) so it can use the shared disjtest helper package; an
// in-package test file cannot import disjtest without an import cycle.
// The GenerateFromMuNOrSmallK helper it used lives there now too.

func TestDecoderRejectsCorruptMessages(t *testing.T) {
	// Failure injection: a malformed blackboard write must produce an
	// error from the public-state decoder, never a panic or a silent
	// mis-decode.
	src := rng.New(314)
	inst, err := GenerateDisjoint(src, 64, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	mkBoard := func() (*optimalRun, *blackboard.Board) {
		t.Helper()
		run := newOptimalRun(inst, Options{})
		board, err := blackboard.NewBoard(inst.K, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Prime the run (starts the first cycle).
		if _, _, err := run.Next(board); err != nil {
			t.Fatal(err)
		}
		return run, board
	}

	// Case 1: phase-1 contribution with trailing garbage bits.
	run, board := mkBoard()
	var w encoding.BitWriter
	_ = w.WriteBit(0) // pass flag
	_ = w.WriteBit(1) // trailing garbage
	if err := board.Append(blackboard.NewMessage(0, &w)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := run.Next(board); err == nil {
		t.Fatal("trailing bits accepted")
	}

	// Case 2: truncated contribution (flag 1, no batch payload).
	run, board = mkBoard()
	var w2 encoding.BitWriter
	_ = w2.WriteBit(1)
	if err := board.Append(blackboard.NewMessage(0, &w2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := run.Next(board); err == nil {
		t.Fatal("truncated batch accepted")
	}
}

func TestEndgameDecoderRejectsOutOfRangeCoordinate(t *testing.T) {
	// Small instance goes straight to the endgame; feed a coordinate index
	// beyond the live set.
	src := rng.New(315)
	inst, err := GenerateDisjoint(src, 5, 4, 0.5) // 5 < k² = 16 → endgame; FixedWidth(5)=3 leaves room for out-of-range values
	if err != nil {
		t.Fatal(err)
	}
	run := newOptimalRun(inst, Options{})
	board, err := blackboard.NewBoard(inst.K, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := run.Next(board); err != nil {
		t.Fatal(err)
	}
	if !run.endgame {
		t.Fatal("expected endgame phase")
	}
	var w encoding.BitWriter
	if err := encoding.WriteNonNeg(&w, 1); err != nil { // one coordinate
		t.Fatal(err)
	}
	width := encoding.FixedWidth(uint64(len(run.zCycle)))
	if err := w.WriteBits(uint64(len(run.zCycle)), width); err != nil {
		// The out-of-range value may not fit the width; force max value.
		t.Skipf("cannot encode out-of-range value in %d bits", width)
	}
	if err := board.Append(blackboard.NewMessage(0, &w)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := run.Next(board); err == nil {
		t.Fatal("out-of-range endgame coordinate accepted")
	}
}

func BenchmarkSolveOptimal(b *testing.B) {
	src := rng.New(999)
	inst, err := GenerateFromMuN(src, 16384, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveOptimal(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveNaive(b *testing.B) {
	src := rng.New(998)
	inst, err := GenerateFromMuN(src, 16384, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveNaive(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSolveOptimalMessages(t *testing.T) {
	src := rng.New(316)
	inst, err := GenerateFromMuN(src, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, sizes, err := SolveOptimalMessages(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != out.Messages {
		t.Fatalf("%d sizes for %d messages", len(sizes), out.Messages)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != out.Bits {
		t.Fatalf("sizes sum to %d, outcome reports %d bits", total, out.Bits)
	}
	if _, _, err := SolveOptimalMessages(nil, Options{}); err == nil {
		t.Fatal("nil instance succeeded")
	}
}

// TestGenerateFromMuNIntoMatchesFresh pins that instance reuse changes
// neither the sampled instance nor the randomness stream: a reused-buffer
// generation consumes exactly the draws a fresh one does and yields
// identical sets.
func TestGenerateFromMuNIntoMatchesFresh(t *testing.T) {
	const n, k, trials = 257, 7, 5
	fresh := rng.New(42)
	reused := rng.New(42)
	var inst *Instance
	for tr := 0; tr < trials; tr++ {
		want, err := GenerateFromMuN(fresh, n, k)
		if err != nil {
			t.Fatal(err)
		}
		inst, err = GenerateFromMuNInto(inst, reused, n, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Sets {
			if !inst.Sets[i].Equal(want.Sets[i]) {
				t.Fatalf("trial %d: reused set %d differs from fresh generation", tr, i)
			}
		}
	}
	if fresh.Uint64() != reused.Uint64() {
		t.Fatal("randomness streams diverged after generation")
	}
}

// TestGenerateFromMuNIntoRejectsBadShape: a shape mismatch falls back to a
// fresh allocation rather than corrupting the caller's instance.
func TestGenerateFromMuNIntoRejectsBadShape(t *testing.T) {
	src := rng.New(7)
	small, err := GenerateFromMuN(src, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	big, err := GenerateFromMuNInto(small, src, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if big == small {
		t.Fatal("mismatched shape reused the old instance")
	}
	if big.N != 64 || big.K != 5 {
		t.Fatalf("fresh instance has shape n=%d k=%d", big.N, big.K)
	}
	if small.N != 16 || small.K != 3 || small.Sets[0].Len() != 16 {
		t.Fatal("original instance mutated by mismatched reuse")
	}
}
