package disj

// 64-lane batch form of μ^n instance generation. A BatchInstance stores
// up to 64 independent DISJ_{n,k} inputs in the lane layout of
// internal/batch: one word per (player, coordinate) cell, lane L in bit
// L. Ground-truth disjointness then costs one AND-OR sweep over the cell
// words for all lanes together, and unpacking a lane back to a scalar
// Instance is a bitvec.Transpose64 per 64-coordinate tile.
//
// The generator draws from the stream in exactly the order of 64
// sequential GenerateFromMuNInto calls — lane by lane, coordinate by
// coordinate — so a batch and its scalar unpacking are not merely
// equidistributed but draw-for-draw identical (pinned by the equivalence
// tests in batch_test.go).

import (
	"fmt"
	"math/bits"

	"broadcastic/internal/bitvec"
	"broadcastic/internal/rng"
)

// BatchInstance packs Lanes ≤ 64 independent DISJ_{n,k} instances.
// Words[i][j] holds bit L set iff coordinate j ∈ X_i in lane L.
type BatchInstance struct {
	N, K, Lanes int
	Words       [][]uint64
}

// ActiveMask returns the lane mask with one bit per packed instance.
func (b *BatchInstance) ActiveMask() uint64 {
	if b.Lanes >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(b.Lanes) - 1
}

// GenerateFromMuNBatch samples lanes independent μ^n instances into one
// batch, reusing dst when it has the requested shape (pass nil for the
// first call). The stream consumption is identical to lanes sequential
// GenerateFromMuNInto calls on the same source, in lane order.
func GenerateFromMuNBatch(dst *BatchInstance, src *rng.Source, n, k, lanes int) (*BatchInstance, error) {
	if src == nil {
		return nil, fmt.Errorf("disj: nil randomness source")
	}
	if n < 1 || k < 2 {
		return nil, fmt.Errorf("disj: need n >= 1 and k >= 2, got n=%d k=%d", n, k)
	}
	if lanes < 1 || lanes > 64 {
		return nil, fmt.Errorf("disj: lane count %d outside [1,64]", lanes)
	}
	b := dst
	if b == nil || b.N != n || b.K != k || len(b.Words) != k {
		b = &BatchInstance{N: n, K: k, Words: make([][]uint64, k)}
		back := make([]uint64, k*n)
		for i := range b.Words {
			b.Words[i] = back[i*n : (i+1)*n : (i+1)*n]
		}
	} else {
		for i := range b.Words {
			row := b.Words[i]
			for j := range row {
				row[j] = 0
			}
		}
	}
	b.Lanes = lanes
	invK := 1 / float64(k)
	for L := 0; L < lanes; L++ {
		bit := uint64(1) << uint(L)
		for j := 0; j < n; j++ {
			z := src.Intn(k)
			for i := 0; i < k; i++ {
				if i == z {
					continue // forced zero: element absent
				}
				if !src.Bernoulli(invK) {
					b.Words[i][j] |= bit
				}
			}
		}
	}
	return b, nil
}

// DisjointMask computes every lane's ground truth in one sweep: bit L set
// iff lane L's instance is disjoint. A coordinate kills a lane when all k
// players hold it, so the per-coordinate AND across players, ORed over
// coordinates, is the lane mask of non-disjoint instances.
func (b *BatchInstance) DisjointMask() uint64 {
	var common uint64
	for j := 0; j < b.N; j++ {
		m := b.Words[0][j]
		for i := 1; i < b.K; i++ {
			m &= b.Words[i][j]
		}
		common |= m
	}
	return b.ActiveMask() &^ common
}

// CountDisjoint returns how many packed instances are disjoint.
func (b *BatchInstance) CountDisjoint() int {
	return bits.OnesCount64(b.DisjointMask())
}

// Unpack expands the batch into per-lane scalar Instances, converting
// each player's 64-coordinate tile from lane layout to per-instance
// vector words with a single bitvec.Transpose64 (instead of 64·n Get/Set
// calls). The result's lane L is draw-for-draw the instance a scalar
// GenerateFromMuNInto would have produced at lane L's stream position.
func (b *BatchInstance) Unpack() ([]*Instance, error) {
	insts := make([]*Instance, b.Lanes)
	for L := range insts {
		sets := make([]*bitvec.Vector, b.K)
		for i := range sets {
			v, err := bitvec.New(b.N)
			if err != nil {
				return nil, err
			}
			sets[i] = v
		}
		insts[L] = &Instance{N: b.N, K: b.K, Sets: sets}
	}
	var m [64]uint64
	for i := 0; i < b.K; i++ {
		row := b.Words[i]
		for tile := 0; tile*64 < b.N; tile++ {
			count := b.N - tile*64
			if count > 64 {
				count = 64
			}
			copy(m[:count], row[tile*64:tile*64+count])
			for t := count; t < 64; t++ {
				m[t] = 0
			}
			bitvec.Transpose64(&m)
			for L := 0; L < b.Lanes; L++ {
				if err := insts[L].Sets[i].SetWord(tile, m[L]); err != nil {
					return nil, err
				}
			}
		}
	}
	return insts, nil
}
