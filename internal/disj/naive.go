package disj

import (
	"fmt"

	"broadcastic/internal/blackboard"
	"broadcastic/internal/encoding"
)

// SolveNaive runs the introduction's one-pass protocol: players go in
// order, each writing the coordinates where its input is zero, unless they
// already appear on the board; a player with nothing new writes a single
// bit. After all players have spoken, a coordinate absent from the board is
// in the intersection. Communication Θ(n log n + k): each coordinate costs
// ⌈log₂ n⌉ bits.
//
// Message format per player: 1 flag bit (1 = contributes), then the count
// of new zeros (Elias gamma of count, count >= 1), then each coordinate as
// a fixed ⌈log₂ n⌉-bit integer.
func SolveNaive(inst *Instance) (*Outcome, error) {
	if inst == nil {
		return nil, fmt.Errorf("disj: nil instance")
	}
	n, k := inst.N, inst.K
	coordBits := encoding.FixedWidth(uint64(n))

	// covered tracks which coordinates appear on the board; it is a pure
	// function of the board contents, maintained incrementally as players
	// write (every player could reconstruct it by decoding the board).
	covered := make([]bool, n)
	coveredCount := 0

	players := make([]blackboard.Player, k)
	for i := 0; i < k; i++ {
		i := i
		players[i] = blackboard.FuncPlayer(func(b *blackboard.Board) (blackboard.Message, error) {
			var newZeros []int
			for j := 0; j < n; j++ {
				if !inst.Sets[i].Get(j) && !covered[j] {
					newZeros = append(newZeros, j)
				}
			}
			var w encoding.BitWriter
			if len(newZeros) == 0 {
				if err := w.WriteBit(0); err != nil {
					return blackboard.Message{}, err
				}
				return blackboard.NewMessage(i, &w), nil
			}
			if err := w.WriteBit(1); err != nil {
				return blackboard.Message{}, err
			}
			if err := encoding.WriteEliasGamma(&w, uint64(len(newZeros))); err != nil {
				return blackboard.Message{}, err
			}
			for _, j := range newZeros {
				if err := w.WriteBits(uint64(j), coordBits); err != nil {
					return blackboard.Message{}, err
				}
				covered[j] = true
				coveredCount++
			}
			return blackboard.NewMessage(i, &w), nil
		})
	}

	sched := &blackboard.RoundRobin{
		K:    k,
		Stop: func(b *blackboard.Board) (bool, error) { return b.NumMessages() >= k, nil },
	}
	res, err := blackboard.Run(sched, players, nil, blackboard.Limits{MaxMessages: k + 1})
	if err != nil {
		return nil, fmt.Errorf("disj: naive protocol: %w", err)
	}
	return &Outcome{
		Disjoint: coveredCount == n,
		Bits:     res.Board.TotalBits(),
		Messages: res.Board.NumMessages(),
	}, nil
}

// NaiveCostModel returns the asymptotic cost model n·⌈log₂ n⌉ + k the naive
// protocol is compared against in experiment E3.
func NaiveCostModel(n, k int) float64 {
	return float64(n*encoding.FixedWidth(uint64(n)) + k)
}
