// Package batch executes up to 64 independent instances of a bit-valued
// broadcast protocol per machine word.
//
// The hot experiments (E4/E6/E7, the Monte-Carlo estimator behind them,
// and μ^n instance generation) are dominated by protocols whose messages
// are single bits announced deterministically: AND_k leaf decisions and
// DISJ membership checks. One such instance occupies one bit of state per
// player, so a uint64 holds 64 instances ("lanes") and the transcript /
// decision logic runs once per word instead of once per instance.
//
// The package has three layers:
//
//   - LaneSpec/Kernel: the contract a protocol certifies to become
//     lane-executable — players speak in index order, each writes exactly
//     its input bit, and the speaking prefix is cut by the first 0 (or
//     not at all). andk's Sequential, BroadcastAll and Truncated protocols
//     implement Kernel; Lazy (a private coin precedes the input bits) does
//     not, and falls back to the scalar engine.
//   - Exec: the word-parallel executor. Given per-player lane words
//     (bit L of word i = player i's bit in lane L) it derives who spoke,
//     each lane's transcript length and each lane's decision with one
//     word operation per player. bitvec.Transpose64 converts between the
//     lane-word layout and per-instance words.
//   - LanePrior/TwoPoint: the precomputed per-player conditional rows the
//     lane estimator samples from and scores with. TwoPoint pins the
//     exact floating-point semantics of prob.Dist sampling and of
//     core.qDivergenceSum on two-point rows, which is what lets the lane
//     estimator reproduce the scalar estimator bit for bit (see
//     DESIGN.md §10 for the full alignment contract).
//
// Correctness discipline: every batched path is pinned against its scalar
// counterpart by lane-equivalence tests — 64 scalar runs and one 64-lane
// batch from identical seeds must agree on every per-instance transcript,
// decision and bit count.
package batch

import (
	"fmt"
	"math"
	"math/bits"

	"broadcastic/internal/bitvec"
	"broadcastic/internal/prob"
)

// Lanes is the lane count of one batch: one instance per bit of a uint64.
const Lanes = 64

// LaneSpec is the shape a lane-executable protocol certifies: a prefix of
// at most SpeakCap players speaks in index order, each message is the
// speaker's own input bit (a deterministic point mass, one bit on the
// board), and with HaltOnZero the prefix ends immediately after the first
// 0 bit. The decision of a completed run is 1 iff no spoken bit was 0.
type LaneSpec struct {
	// Players is the number of players (the protocol's NumPlayers).
	Players int
	// SpeakCap bounds the speaking prefix: players SpeakCap.. never speak.
	SpeakCap int
	// HaltOnZero stops the run right after the first 0 is written.
	HaltOnZero bool
}

// Validate checks the shape's internal consistency.
func (s LaneSpec) Validate() error {
	if s.Players < 1 {
		return fmt.Errorf("batch: non-positive player count %d", s.Players)
	}
	if s.SpeakCap < 1 || s.SpeakCap > s.Players {
		return fmt.Errorf("batch: speak cap %d outside [1,%d]", s.SpeakCap, s.Players)
	}
	return nil
}

// Steps returns the transcript length of a lane whose first 0 bit among
// the speaking prefix sits at index firstZero (pass SpeakCap or more when
// the prefix holds no 0). It is the scalar form of the executor's spoken
// masks, used for draw accounting while lanes are still being filled.
func (s LaneSpec) Steps(firstZero int) int {
	if s.HaltOnZero && firstZero < s.SpeakCap {
		return firstZero + 1
	}
	return s.SpeakCap
}

// Kernel is implemented by protocol specs that are lane-executable. A
// spec returning ok reports that its transcript semantics are exactly
// LaneSpec's — the lane-equivalence tests pin the claim for every
// implementation.
type Kernel interface {
	LaneKernel() (spec LaneSpec, ok bool)
}

// LanePrior is implemented by priors whose per-player conditionals
// collapse to a small set of shared two-point rows, so the lane estimator
// can precompute each row's sampler thresholds and divergence terms once.
// dist.Mu satisfies it structurally: row 0 is the special player's point
// mass on 0, row 1 the regular Bernoulli(1−1/k).
type LanePrior interface {
	// LaneRows returns the distinct conditional input rows. Every row a
	// LaneRowsOf index refers to must appear here; at most 256 rows.
	LaneRows() []prob.Dist
	// LaneRowsOf fills dst[i] with the row index of player i's
	// conditional given auxiliary value z. len(dst) is the player count.
	LaneRowsOf(z int, dst []uint8)
}

// TwoPoint is the precomputed lane form of a two-outcome conditional row:
// the exact linear-scan sampling thresholds of prob.Dist.Sample and the
// exact per-bit divergence terms core's qDivergenceSum produces when the
// row's player has spoken its bit. MakeTwoPoint rejects rows for which
// the lane shortcut would not be bit-identical to the scalar engine.
type TwoPoint struct {
	// P0 and P01 are the scan's partial sums: a uniform u samples bit 0
	// when u < P0, bit 1 when u < P01, and Fallback otherwise (the
	// floating-point-slack rule of prob.Dist).
	P0, P01 float64
	// Fallback is the largest outcome with positive mass.
	Fallback int
	// D0 and D1 are the spoken divergence terms log2(1/P(b)): the exact
	// value the scalar engine's posterior sum contributes for a player
	// with this row after announcing bit b.
	D0, D1 float64
}

// MakeTwoPoint precomputes the lane form of row. It errors when the row
// is not a two-point distribution or when its probabilities do not sum to
// exactly 1.0 in floating point — the property that makes an unspoken
// player's divergence term exactly +0.0, without which the lane engine
// could not skip unspoken players. Callers treat an error as "use the
// scalar engine", not as a failure.
func MakeTwoPoint(row prob.Dist) (TwoPoint, error) {
	if row.Size() != 2 {
		return TwoPoint{}, fmt.Errorf("batch: row has %d outcomes, want 2", row.Size())
	}
	p0, p1 := row.P(0), row.P(1)
	p01 := p0 + p1
	if p01 != 1 {
		return TwoPoint{}, fmt.Errorf("batch: row mass %v+%v does not sum to exactly 1", p0, p1)
	}
	tp := TwoPoint{P0: p0, P01: p01, Fallback: 1}
	if p1 == 0 {
		tp.Fallback = 0
	}
	// Spoken terms, written exactly as the scalar engine computes them:
	// post = 1.0, norm = P(b), d = post·log2(post/P(b)). A bit with zero
	// mass is never announced, so its term is never read; keep it 0.
	if p0 > 0 {
		tp.D0 = math.Log2(1 / p0)
	}
	if p1 > 0 {
		tp.D1 = math.Log2(1 / p1)
	}
	return tp, nil
}

// SampleBit maps a uniform draw u ∈ [0,1) to a bit, reproducing
// prob.Dist's linear scan on a two-point support decision for decision:
// the same u fed to Dist.SampleU yields the same bit.
func (t *TwoPoint) SampleBit(u float64) int {
	if u < t.P0 {
		return 0
	}
	if u < t.P01 {
		return 1
	}
	return t.Fallback
}

// Exec is the word-parallel executor for one LaneSpec. It is reusable:
// Run overwrites all derived state, so one Exec serves an arbitrary
// number of batches without allocating.
type Exec struct {
	spec   LaneSpec
	spoken []uint64 // per player: lanes in which the player spoke
}

// NewExec validates spec and returns an executor for it.
func NewExec(spec LaneSpec) (*Exec, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Exec{spec: spec, spoken: make([]uint64, spec.Players)}, nil
}

// Spec returns the executed shape.
func (e *Exec) Spec() LaneSpec { return e.spec }

// Run executes the protocol on up to 64 lanes at once. inputs[i] packs
// player i's input bit across lanes (bit L = lane L); active masks the
// lanes in use. It returns the decision word: bit L set iff lane L
// decides 1. Bits outside active are zero, in the decision word and in
// every spoken mask. One word operation per player replaces 64 per-lane
// transcript walks.
func (e *Exec) Run(inputs []uint64, active uint64) (out uint64, err error) {
	if len(inputs) < e.spec.Players {
		return 0, fmt.Errorf("batch: %d input words for %d players", len(inputs), e.spec.Players)
	}
	// ones tracks the lanes whose transcript so far is all 1s. With
	// HaltOnZero those are exactly the lanes still speaking; without it
	// every active lane speaks through the whole prefix.
	ones := active
	for i := 0; i < e.spec.SpeakCap; i++ {
		if e.spec.HaltOnZero {
			e.spoken[i] = ones
		} else {
			e.spoken[i] = active
		}
		ones &= inputs[i]
	}
	for i := e.spec.SpeakCap; i < e.spec.Players; i++ {
		e.spoken[i] = 0
	}
	// A lane decides 1 iff its spoken prefix had no 0 — equivalently iff
	// it survived all SpeakCap conjunctions.
	return ones, nil
}

// Spoken returns the lane mask of player i's announcements from the last
// Run. Valid until the next Run.
func (e *Exec) Spoken(i int) uint64 { return e.spoken[i] }

// StepsInto writes each lane's transcript length (= communication in
// bits, one bit per message) from the last Run into dst, which must hold
// Lanes entries. Lengths are column sums of the spoken masks, computed by
// transposing 64-player tiles with bitvec.Transpose64 and popcounting the
// resulting per-lane words.
func (e *Exec) StepsInto(dst []int) error {
	if len(dst) < Lanes {
		return fmt.Errorf("batch: steps buffer holds %d lanes, want %d", len(dst), Lanes)
	}
	for L := 0; L < Lanes; L++ {
		dst[L] = 0
	}
	var m [Lanes]uint64
	for base := 0; base < e.spec.Players; base += Lanes {
		count := e.spec.Players - base
		if count > Lanes {
			count = Lanes
		}
		copy(m[:count], e.spoken[base:base+count])
		for i := count; i < Lanes; i++ {
			m[i] = 0
		}
		bitvec.Transpose64(&m)
		for L := 0; L < Lanes; L++ {
			dst[L] += bits.OnesCount64(m[L])
		}
	}
	return nil
}

// LaneTranscript reconstructs lane L's transcript from packed inputs and
// the lane's transcript length: the first steps players' bits in order.
// It appends to dst[:0] and returns the result (the harness's unpacker).
func LaneTranscript(inputs []uint64, lane, steps int, dst []int) []int {
	dst = dst[:0]
	for i := 0; i < steps; i++ {
		dst = append(dst, int(inputs[i]>>uint(lane)&1))
	}
	return dst
}
