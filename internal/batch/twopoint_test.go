package batch_test

import (
	"math"
	"testing"
	"testing/quick"

	"broadcastic/internal/batch"
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

// TestMakeTwoPointRejections pins the eligibility edge of the lane
// estimator: rows that cannot guarantee bit-identity are refused.
func TestMakeTwoPointRejections(t *testing.T) {
	three, err := prob.NewDist([]float64{0.25, 0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batch.MakeTwoPoint(three); err == nil {
		t.Fatal("three-outcome row accepted")
	}
	// Mass 1 + 2^-52 passes prob's 1e-9 construction tolerance but is not
	// exactly 1.0 in floating point, so the unspoken-player divergence
	// term would not vanish exactly — must be refused.
	inexact, err := prob.NewDist([]float64{0.5 + math.Ldexp(1, -52), 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batch.MakeTwoPoint(inexact); err == nil {
		t.Fatal("row with inexact unit mass accepted")
	}
}

// TestTwoPointMatchesDistSampling: for every accepted row, SampleBit must
// agree with prob.Dist's own sampling on the same uniforms — the exact
// property the lane estimator's draw alignment rests on.
func TestTwoPointMatchesDistSampling(t *testing.T) {
	rows := []prob.Dist{}
	for _, p := range []float64{0, 0.5, 0.75, 1 - 1.0/3, 1 - 1.0/64, 1} {
		d, err := prob.Bernoulli(p)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, d)
	}
	point0, err := prob.Point(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	point1, err := prob.Point(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows = append(rows, point0, point1)

	src := rng.New(2024)
	for ri, row := range rows {
		tp, err := batch.MakeTwoPoint(row)
		if err != nil {
			t.Fatalf("row %d rejected: %v", ri, err)
		}
		// Divergence terms must be the exact spoken-player values.
		if p0 := row.P(0); p0 > 0 && tp.D0 != math.Log2(1/p0) {
			t.Fatalf("row %d: D0 = %v, want log2(1/%v)", ri, tp.D0, p0)
		}
		if p1 := row.P(1); p1 > 0 && tp.D1 != math.Log2(1/p1) {
			t.Fatalf("row %d: D1 = %v, want log2(1/%v)", ri, tp.D1, p1)
		}
		us := []float64{0, row.P(0), math.Nextafter(row.P(0), 0), math.Nextafter(1, 0)}
		for i := 0; i < 200; i++ {
			us = append(us, src.Float64())
		}
		for _, u := range us {
			if u < 0 || u >= 1 {
				continue
			}
			if got, want := tp.SampleBit(u), row.SampleU(u); got != want {
				t.Fatalf("row %d u=%v: SampleBit %d != Dist %d", ri, u, got, want)
			}
		}
	}
}

// TestSampleUMatchesSample pins prob's contract that SampleU(u) is the
// deterministic half of Sample, on both the linear-scan and the cached
// binary-search paths.
func TestSampleUMatchesSample(t *testing.T) {
	weights := make([]float64, 200) // support ≥ cdfMinSize: cached path
	for i := range weights {
		weights[i] = float64(i%7) + 1
	}
	big, err := prob.Normalize(weights)
	if err != nil {
		t.Fatal(err)
	}
	small, err := prob.Normalize(weights[:5])
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []prob.Dist{big, small} {
		a, b := rng.New(55), rng.New(55)
		for i := 0; i < 500; i++ {
			if got, want := d.SampleU(b.Float64()), d.Sample(a); got != want {
				t.Fatalf("draw %d: SampleU %d != Sample %d", i, got, want)
			}
		}
	}
}

func TestLaneSpecValidate(t *testing.T) {
	for _, ls := range []batch.LaneSpec{
		{Players: 0, SpeakCap: 1},
		{Players: 4, SpeakCap: 0},
		{Players: 4, SpeakCap: 5},
	} {
		if ls.Validate() == nil {
			t.Fatalf("invalid spec %+v accepted", ls)
		}
		if _, err := batch.NewExec(ls); err == nil {
			t.Fatalf("NewExec accepted invalid spec %+v", ls)
		}
	}
	ok := batch.LaneSpec{Players: 4, SpeakCap: 3, HaltOnZero: true}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestExecRunValidation covers the executor's argument checks.
func TestExecRunValidation(t *testing.T) {
	ex, err := batch.NewExec(batch.LaneSpec{Players: 4, SpeakCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(make([]uint64, 3), ^uint64(0)); err == nil {
		t.Fatal("short input slice accepted")
	}
	if err := ex.StepsInto(make([]int, 10)); err == nil {
		t.Fatal("short steps buffer accepted")
	}
}

// TestTwoPointNeverFallsBack: with exact unit mass and uniforms in [0,1),
// the fallback branch is unreachable; quick-check it anyway so a future
// change to the threshold logic cannot silently drift from Dist.
func TestTwoPointNeverFallsBack(t *testing.T) {
	prop := func(seed uint64, pRaw uint16) bool {
		p := float64(pRaw%1000) / 1000
		row, err := prob.Bernoulli(p)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := batch.MakeTwoPoint(row)
		if err != nil {
			// Inexact mass: legal refusal, nothing to compare.
			return true
		}
		src := rng.New(seed)
		for i := 0; i < 100; i++ {
			u := src.Float64()
			if tp.SampleBit(u) != row.SampleU(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickConfig()); err != nil {
		t.Fatal(err)
	}
}
