package batch_test

// The lane-equivalence harness: the headline correctness instrument of
// the lane engine. For every batched protocol it runs 64 scalar instances
// through the full tree-walking core engine and one 64-lane batch through
// the word-parallel executor, from identical seeds, and pins bit-identical
// per-instance transcripts, decisions, and bit counts — the same pinning
// discipline the workers and netrun layers use for serial equivalence.

import (
	"testing"

	"broadcastic/internal/andk"
	"broadcastic/internal/batch"
	"broadcastic/internal/core"
	"broadcastic/internal/dist"
	"broadcastic/internal/rng"
)

// laneCase is one row of the harness table: a protocol under test plus
// its scalar-engine spec.
type laneCase struct {
	name string
	spec core.Spec // must also implement batch.Kernel
}

func laneCases(t *testing.T, k int) []laneCase {
	t.Helper()
	seq, err := andk.NewSequential(k)
	if err != nil {
		t.Fatal(err)
	}
	all, err := andk.NewBroadcastAll(k)
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := andk.NewTruncated(k, (k+2)/3)
	if err != nil {
		t.Fatal(err)
	}
	return []laneCase{
		{"sequential", seq},
		{"broadcast-all", all},
		{"truncated", trunc},
	}
}

// sampleLaneInputs draws one μ input per lane and packs the bits into
// lane words: inputs[i] bit L = player i's bit in lane L.
func sampleLaneInputs(t *testing.T, mu *dist.Mu, src *rng.Source, k, lanes int) (packed []uint64, perLane [][]int) {
	t.Helper()
	packed = make([]uint64, k)
	perLane = make([][]int, lanes)
	for L := 0; L < lanes; L++ {
		_, x := mu.Sample(src)
		perLane[L] = x
		for i, v := range x {
			if v == 1 {
				packed[i] |= 1 << uint(L)
			}
		}
	}
	return packed, perLane
}

func TestLaneEquivalenceHarness(t *testing.T) {
	for _, k := range []int{2, 7, 16, 64} {
		mu, err := dist.NewMu(k)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range laneCases(t, k) {
			t.Run(tc.name, func(t *testing.T) {
				kern, ok := tc.spec.(batch.Kernel)
				if !ok {
					t.Fatalf("%T does not implement batch.Kernel", tc.spec)
				}
				ls, ok := kern.LaneKernel()
				if !ok {
					t.Fatalf("%T declined to certify a lane kernel", tc.spec)
				}
				if err := ls.Validate(); err != nil {
					t.Fatal(err)
				}
				if ls.Players != tc.spec.NumPlayers() {
					t.Fatalf("kernel players %d != spec players %d", ls.Players, tc.spec.NumPlayers())
				}
				ex, err := batch.NewExec(ls)
				if err != nil {
					t.Fatal(err)
				}

				for _, lanes := range []int{batch.Lanes, 23, 1} {
					inputs, perLane := sampleLaneInputs(t, mu, rng.New(uint64(1000+k)), k, lanes)
					active := uint64(1)<<uint(lanes) - 1
					if lanes == 64 {
						active = ^uint64(0)
					}
					out, err := ex.Run(inputs, active)
					if err != nil {
						t.Fatal(err)
					}
					steps := make([]int, batch.Lanes)
					if err := ex.StepsInto(steps); err != nil {
						t.Fatal(err)
					}

					var laneT []int
					for L := 0; L < lanes; L++ {
						// The scalar reference: the full core engine on
						// lane L's input. Message draws are point masses,
						// so any stream yields the lane's one transcript.
						wantT, leaf, err := core.SampleTranscript(tc.spec, perLane[L], rng.New(uint64(L)))
						if err != nil {
							t.Fatal(err)
						}
						// Transcript: bit-identical symbol sequence.
						laneT = batch.LaneTranscript(inputs, L, steps[L], laneT)
						if len(laneT) != len(wantT) {
							t.Fatalf("lanes=%d lane %d: batch transcript length %d, scalar %d",
								lanes, L, len(laneT), len(wantT))
						}
						for s := range laneT {
							if laneT[s] != wantT[s] {
								t.Fatalf("lanes=%d lane %d step %d: batch wrote %d, scalar wrote %d",
									lanes, L, s, laneT[s], wantT[s])
							}
						}
						// Decision.
						if got := int(out >> uint(L) & 1); got != leaf.Output {
							t.Fatalf("lanes=%d lane %d: batch decision %d, scalar output %d",
								lanes, L, got, leaf.Output)
						}
						// Bit count (one bit per message on this family).
						if steps[L] != leaf.Bits {
							t.Fatalf("lanes=%d lane %d: batch counts %d bits, scalar %d",
								lanes, L, steps[L], leaf.Bits)
						}
						// Spoken masks agree with transcript length.
						for i := 0; i < k; i++ {
							spoke := ex.Spoken(i)>>uint(L)&1 == 1
							if spoke != (i < len(wantT)) {
								t.Fatalf("lanes=%d lane %d: spoken[%d]=%v, scalar transcript length %d",
									lanes, L, i, spoke, len(wantT))
							}
						}
					}
					// Inactive lanes stay silent everywhere.
					for L := lanes; L < batch.Lanes; L++ {
						if out>>uint(L)&1 != 0 || steps[L] != 0 {
							t.Fatalf("inactive lane %d: decision bit %d, steps %d",
								L, out>>uint(L)&1, steps[L])
						}
					}
				}
			})
		}
	}
}
