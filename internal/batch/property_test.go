package batch_test

// Property tests (testing/quick): random (n, k, seed, lane-count ≤ 64)
// configurations must keep every batched decision equal to its scalar
// counterpart — including ragged final batches where the instance count
// is not a multiple of 64. Three batched surfaces are covered: the
// word-parallel executor against the core tree engine, batched μ^n
// generation against scalar generation, and the lane estimator against
// the scalar estimator on ragged sample budgets.

import (
	"math/bits"
	"testing"
	"testing/quick"

	"broadcastic/internal/andk"
	"broadcastic/internal/batch"
	"broadcastic/internal/core"
	"broadcastic/internal/disj"
	"broadcastic/internal/dist"
	"broadcastic/internal/rng"
)

func quickConfig() *quick.Config {
	return &quick.Config{MaxCount: 60}
}

// TestExecDecisionsMatchScalarQuick: for a random protocol shape, lane
// count and input batch, every lane's Exec decision, transcript length
// and spoken set must match the scalar core engine run on that lane's
// input column.
func TestExecDecisionsMatchScalarQuick(t *testing.T) {
	prop := func(seed uint64, kRaw, mRaw, lanesRaw, shape uint8) bool {
		k := int(kRaw)%32 + 1
		m := int(mRaw)%k + 1
		lanes := int(lanesRaw)%batch.Lanes + 1 // ragged batches included
		var spec core.Spec
		var err error
		switch shape % 3 {
		case 0:
			spec, err = andk.NewSequential(k)
		case 1:
			spec, err = andk.NewBroadcastAll(k)
		default:
			spec, err = andk.NewTruncated(k, m)
		}
		if err != nil {
			t.Fatal(err)
		}
		ls, ok := spec.(batch.Kernel).LaneKernel()
		if !ok {
			t.Fatal("andk protocol declined its lane kernel")
		}
		ex, err := batch.NewExec(ls)
		if err != nil {
			t.Fatal(err)
		}

		// Random input bits, one word per player.
		src := rng.New(seed)
		inputs := make([]uint64, k)
		src.Uint64s(inputs)
		active := uint64(1)<<uint(lanes) - 1
		if lanes == batch.Lanes {
			active = ^uint64(0)
		}
		out, err := ex.Run(inputs, active)
		if err != nil {
			t.Fatal(err)
		}
		steps := make([]int, batch.Lanes)
		if err := ex.StepsInto(steps); err != nil {
			t.Fatal(err)
		}

		x := make([]int, k)
		for L := 0; L < lanes; L++ {
			for i := range x {
				x[i] = int(inputs[i] >> uint(L) & 1)
			}
			tr, leaf, err := core.SampleTranscript(spec, x, rng.New(seed+uint64(L)))
			if err != nil {
				t.Fatal(err)
			}
			if int(out>>uint(L)&1) != leaf.Output {
				return false
			}
			if steps[L] != leaf.Bits || steps[L] != len(tr) {
				return false
			}
		}
		for L := lanes; L < batch.Lanes; L++ {
			if out>>uint(L)&1 != 0 || steps[L] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestMuNBatchDecisionsMatchScalarQuick: batched μ^n generation must give
// each lane the exact instance — and DisjointMask the exact ground truth —
// of sequential scalar generation from the same stream.
func TestMuNBatchDecisionsMatchScalarQuick(t *testing.T) {
	prop := func(seed uint64, nRaw uint16, kRaw, lanesRaw uint8) bool {
		n := int(nRaw)%300 + 1
		k := int(kRaw)%9 + 2
		lanes := int(lanesRaw)%batch.Lanes + 1
		b, err := disj.GenerateFromMuNBatch(nil, rng.New(seed), n, k, lanes)
		if err != nil {
			t.Fatal(err)
		}
		mask := b.DisjointMask()
		scalarSrc := rng.New(seed)
		count := 0
		for L := 0; L < lanes; L++ {
			inst, err := disj.GenerateFromMuN(scalarSrc, n, k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := inst.Disjoint()
			if err != nil {
				t.Fatal(err)
			}
			if (mask>>uint(L)&1 == 1) != want {
				return false
			}
			if want {
				count++
			}
		}
		return b.CountDisjoint() == count && mask&^b.ActiveMask() == 0
	}
	if err := quick.Check(prop, quickConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestEstimatorBatchingMatchesScalarQuick: on random lane-eligible
// configurations and ragged sample budgets (samples % 64 ≠ 0 and % 512 ≠
// 0 alike), the lane estimator and the scalar estimator must return the
// identical CICEstimate.
func TestEstimatorBatchingMatchesScalarQuick(t *testing.T) {
	prop := func(seed uint64, kRaw, mRaw uint8, samplesRaw uint16, truncate bool) bool {
		k := int(kRaw)%23 + 2
		m := int(mRaw)%k + 1
		samples := int(samplesRaw)%1500 + 1
		var spec core.Spec
		var err error
		if truncate {
			spec, err = andk.NewTruncated(k, m)
		} else {
			spec, err = andk.NewSequential(k)
		}
		if err != nil {
			t.Fatal(err)
		}
		mu, err := dist.NewMu(k)
		if err != nil {
			t.Fatal(err)
		}
		lane, err := core.EstimateCICOpts(spec, mu, rng.New(seed), samples, core.EstimateOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		scalar, err := core.EstimateCICOpts(spec, mu, rng.New(seed), samples,
			core.EstimateOptions{Workers: 1, DisableLanes: true})
		if err != nil {
			t.Fatal(err)
		}
		return *lane == *scalar
	}
	cfg := quickConfig()
	cfg.MaxCount = 30
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLaneSpecSteps pins the scalar transcript-length helper against the
// executor's own accounting.
func TestLaneSpecSteps(t *testing.T) {
	prop := func(inputsRaw uint64, kRaw uint8, halt bool) bool {
		k := int(kRaw)%20 + 1
		ls := batch.LaneSpec{Players: k, SpeakCap: k, HaltOnZero: halt}
		ex, err := batch.NewExec(ls)
		if err != nil {
			t.Fatal(err)
		}
		inputs := make([]uint64, k)
		for i := range inputs {
			if inputsRaw>>uint(i)&1 == 1 {
				inputs[i] = ^uint64(0)
			}
		}
		if _, err := ex.Run(inputs, 1); err != nil {
			t.Fatal(err)
		}
		steps := make([]int, batch.Lanes)
		if err := ex.StepsInto(steps); err != nil {
			t.Fatal(err)
		}
		firstZero := bits.TrailingZeros64(^inputsRaw)
		return steps[0] == ls.Steps(firstZero)
	}
	if err := quick.Check(prop, quickConfig()); err != nil {
		t.Fatal(err)
	}
}
