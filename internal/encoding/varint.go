package encoding

import (
	"fmt"
	"math/bits"
)

// Prefix-free integer codes.
//
// The Lemma 7 sampler transmits three fields per message: a block index
// (binomially distributed with mean 1 → Elias gamma makes it O(1) expected
// bits), a log-ratio s (small non-negative integer → gamma), and an index
// within the surviving candidate set (expected magnitude 2^s → gamma costs
// ≈ s + 2 log s bits, matching the "roughly s bits" of the paper). All codes
// here are self-delimiting so a reader never needs an out-of-band length.

// WriteUnary appends v as v ones followed by a zero: 0 → "0", 3 → "1110".
func WriteUnary(w *BitWriter, v uint64) error {
	const maxUnary = 1 << 20
	if v > maxUnary {
		return fmt.Errorf("encoding: unary value %d unreasonably large", v)
	}
	for i := uint64(0); i < v; i++ {
		if err := w.WriteBit(1); err != nil {
			return err
		}
	}
	return w.WriteBit(0)
}

// ReadUnary decodes a unary value.
func ReadUnary(r *BitReader) (uint64, error) {
	var v uint64
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return v, nil
		}
		v++
	}
}

// UnaryLen returns the encoded length of v in bits.
func UnaryLen(v uint64) int { return int(v) + 1 }

// WriteEliasGamma encodes v >= 1: the bit-length of v in unary-minus-one,
// then the value's bits below the leading one. Length 2⌊log2 v⌋ + 1.
func WriteEliasGamma(w *BitWriter, v uint64) error {
	if v == 0 {
		return fmt.Errorf("encoding: Elias gamma undefined for 0")
	}
	n := bits.Len64(v) // position of leading one
	for i := 0; i < n-1; i++ {
		if err := w.WriteBit(0); err != nil {
			return err
		}
	}
	return w.WriteBits(v, n)
}

// ReadEliasGamma decodes an Elias gamma value.
func ReadEliasGamma(r *BitReader) (uint64, error) {
	zeros := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 63 {
			return 0, fmt.Errorf("encoding: Elias gamma prefix overflow")
		}
	}
	rest, err := r.ReadBits(zeros)
	if err != nil {
		return 0, err
	}
	return 1<<uint(zeros) | rest, nil
}

// EliasGammaLen returns the encoded length of v >= 1 in bits.
func EliasGammaLen(v uint64) int {
	if v == 0 {
		return 0
	}
	return 2*bits.Len64(v) - 1
}

// WriteEliasDelta encodes v >= 1: gamma-code the bit-length, then the value
// bits below the leading one. Length ≈ log2 v + 2 log2 log2 v.
func WriteEliasDelta(w *BitWriter, v uint64) error {
	if v == 0 {
		return fmt.Errorf("encoding: Elias delta undefined for 0")
	}
	n := bits.Len64(v)
	if err := WriteEliasGamma(w, uint64(n)); err != nil {
		return err
	}
	return w.WriteBits(v&((1<<uint(n-1))-1), n-1)
}

// ReadEliasDelta decodes an Elias delta value.
func ReadEliasDelta(r *BitReader) (uint64, error) {
	n, err := ReadEliasGamma(r)
	if err != nil {
		return 0, err
	}
	if n == 0 || n > 64 {
		return 0, fmt.Errorf("encoding: Elias delta length field %d", n)
	}
	rest, err := r.ReadBits(int(n) - 1)
	if err != nil {
		return 0, err
	}
	return 1<<(n-1) | rest, nil
}

// EliasDeltaLen returns the encoded length of v >= 1 in bits.
func EliasDeltaLen(v uint64) int {
	if v == 0 {
		return 0
	}
	n := bits.Len64(v)
	return EliasGammaLen(uint64(n)) + n - 1
}

// WriteNonNeg encodes an arbitrary v >= 0 by gamma-coding v+1. Convenient
// for fields (like the Lemma 7 log-ratio) that may be zero.
func WriteNonNeg(w *BitWriter, v uint64) error {
	if v == ^uint64(0) {
		return fmt.Errorf("encoding: value overflow")
	}
	return WriteEliasGamma(w, v+1)
}

// ReadNonNeg decodes a value written with WriteNonNeg.
func ReadNonNeg(r *BitReader) (uint64, error) {
	v, err := ReadEliasGamma(r)
	if err != nil {
		return 0, err
	}
	return v - 1, nil
}

// NonNegLen returns the encoded length of v under WriteNonNeg.
func NonNegLen(v uint64) int { return EliasGammaLen(v + 1) }

// WriteSignedGamma encodes a signed integer via the zigzag map
// 0,-1,1,-2,2 → 0,1,2,3,4 followed by WriteNonNeg. Used for the Lemma 7
// log-ratio field, which the paper notes may be negative.
func WriteSignedGamma(w *BitWriter, v int64) error {
	return WriteNonNeg(w, zigzag(v))
}

// ReadSignedGamma decodes a signed value written with WriteSignedGamma.
func ReadSignedGamma(r *BitReader) (int64, error) {
	u, err := ReadNonNeg(r)
	if err != nil {
		return 0, err
	}
	return unzigzag(u), nil
}

// SignedGammaLen returns the encoded length of v under WriteSignedGamma.
func SignedGammaLen(v int64) int { return NonNegLen(zigzag(v)) }

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// FixedWidth returns the number of bits needed to index a set of the given
// size: ⌈log2 size⌉, with size 1 needing 0 bits.
func FixedWidth(size uint64) int {
	if size <= 1 {
		return 0
	}
	return bits.Len64(size - 1)
}
