package encoding

import (
	"container/heap"
	"fmt"
	"sort"

	"broadcastic/internal/prob"
)

// Huffman coding. The introduction contrasts interactive compression with
// Huffman's classical single-shot result (a one-way message X can be sent in
// H(X)+1 expected bits). We implement canonical Huffman codes both as a
// baseline in the compression experiments and as a reference point that the
// multi-party gap result (Section 6) is measured against.

// HuffmanCode is a prefix-free binary code for the outcomes 0..n-1.
type HuffmanCode struct {
	lengths []int    // code length per outcome (0 for zero-probability outcomes)
	codes   []uint64 // canonical codeword per outcome, MSB-aligned to length
}

type huffNode struct {
	weight float64
	order  int // tie-break for determinism
	symbol int // leaf symbol, or -1
	left   *huffNode
	right  *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h huffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x interface{}) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewHuffman builds a canonical Huffman code for the distribution d.
// Zero-probability outcomes receive no codeword.
func NewHuffman(d prob.Dist) (*HuffmanCode, error) {
	support := d.Support()
	if len(support) == 0 {
		return nil, fmt.Errorf("encoding: empty support")
	}
	lengths := make([]int, d.Size())
	if len(support) == 1 {
		// A single symbol needs one bit so that the code is decodable as a
		// stream (matches the H(X)+1 single-shot bound, not H(X)=0).
		lengths[support[0]] = 1
		return canonicalize(lengths)
	}

	h := &huffHeap{}
	heap.Init(h)
	order := 0
	for _, s := range support {
		heap.Push(h, &huffNode{weight: d.P(s), order: order, symbol: s})
		order++
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(*huffNode)
		b := heap.Pop(h).(*huffNode)
		heap.Push(h, &huffNode{
			weight: a.weight + b.weight,
			order:  order,
			symbol: -1,
			left:   a,
			right:  b,
		})
		order++
	}
	root := heap.Pop(h).(*huffNode)
	assignDepths(root, 0, lengths)
	return canonicalize(lengths)
}

func assignDepths(n *huffNode, depth int, lengths []int) {
	if n.symbol >= 0 {
		lengths[n.symbol] = depth
		return
	}
	assignDepths(n.left, depth+1, lengths)
	assignDepths(n.right, depth+1, lengths)
}

// canonicalize converts code lengths into canonical codewords (shorter
// codes first; ties broken by symbol index).
func canonicalize(lengths []int) (*HuffmanCode, error) {
	type sym struct{ s, l int }
	syms := make([]sym, 0, len(lengths))
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sym{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].s < syms[j].s
	})
	codes := make([]uint64, len(lengths))
	var code uint64
	prevLen := 0
	for _, sm := range syms {
		code <<= uint(sm.l - prevLen)
		codes[sm.s] = code
		code++
		prevLen = sm.l
	}
	// Kraft check: the canonical construction must exactly fill the tree.
	kraft := 0.0
	for _, sm := range syms {
		kraft += 1 / float64(uint64(1)<<uint(sm.l))
	}
	if kraft > 1+1e-9 {
		return nil, fmt.Errorf("encoding: Kraft sum %v exceeds 1", kraft)
	}
	return &HuffmanCode{lengths: lengths, codes: codes}, nil
}

// Len returns the codeword length of symbol x (0 if x has no codeword).
func (c *HuffmanCode) Len(x int) int {
	if x < 0 || x >= len(c.lengths) {
		return 0
	}
	return c.lengths[x]
}

// Encode appends the codeword of x to w.
func (c *HuffmanCode) Encode(w *BitWriter, x int) error {
	if x < 0 || x >= len(c.lengths) || c.lengths[x] == 0 {
		return fmt.Errorf("encoding: symbol %d has no codeword", x)
	}
	return w.WriteBits(c.codes[x], c.lengths[x])
}

// Decode reads one codeword from r and returns the symbol.
func (c *HuffmanCode) Decode(r *BitReader) (int, error) {
	var acc uint64
	depth := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		acc = acc<<1 | uint64(b)
		depth++
		if depth > 64 {
			return 0, fmt.Errorf("encoding: Huffman decode depth overflow")
		}
		for s, l := range c.lengths {
			if l == depth && c.codes[s] == acc {
				return s, nil
			}
		}
	}
}

// ExpectedLength returns Σ p(x)·len(x): the expected single-shot cost, which
// Huffman's theorem pins to [H(X), H(X)+1).
func (c *HuffmanCode) ExpectedLength(d prob.Dist) (float64, error) {
	if d.Size() != len(c.lengths) {
		return 0, fmt.Errorf("encoding: distribution support %d vs code support %d", d.Size(), len(c.lengths))
	}
	e := 0.0
	for x := 0; x < d.Size(); x++ {
		p := d.P(x)
		if p == 0 {
			continue
		}
		if c.lengths[x] == 0 {
			return 0, fmt.Errorf("encoding: positive-probability symbol %d lacks a codeword", x)
		}
		e += p * float64(c.lengths[x])
	}
	return e, nil
}
