package encoding

import (
	"math/big"
	"testing"
	"testing/quick"

	"broadcastic/internal/rng"
)

func TestBinomialKnown(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{5, 2, 10}, {5, 0, 1}, {5, 5, 1}, {10, 3, 120},
		{0, 0, 1}, {3, 4, 0}, {3, -1, 0}, {-1, 0, 0},
	}
	for _, tc := range cases {
		if got := Binomial(tc.n, tc.k); got.Int64() != tc.want {
			t.Fatalf("C(%d,%d) = %v, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestBinomialBitLen(t *testing.T) {
	// C(10,3)=120 -> 7 bits; C(5,5)=1 -> 0 bits; C(2,1)=2 -> 1 bit.
	cases := []struct{ n, k, want int }{
		{10, 3, 7}, {5, 5, 0}, {2, 1, 1}, {4, 2, 3},
	}
	for _, tc := range cases {
		got, err := BinomialBitLen(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("BinomialBitLen(%d,%d) = %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
	if _, err := BinomialBitLen(3, 5); err == nil {
		t.Fatal("BinomialBitLen of zero binomial succeeded")
	}
}

func TestSubsetRankBijectionExhaustive(t *testing.T) {
	// For every (m, w) with m <= 7, every subset must rank to a distinct
	// value in [0, C(m,w)) and unrank back to itself.
	for m := 0; m <= 7; m++ {
		for w := 0; w <= m; w++ {
			total := Binomial(m, w).Int64()
			seen := make(map[int64]bool, total)
			enumerateSubsets(m, w, func(subset []int) {
				rank, err := SubsetRank(m, subset)
				if err != nil {
					t.Fatalf("rank m=%d w=%d %v: %v", m, w, subset, err)
				}
				rv := rank.Int64()
				if rv < 0 || rv >= total {
					t.Fatalf("rank %d outside [0,%d)", rv, total)
				}
				if seen[rv] {
					t.Fatalf("duplicate rank %d at m=%d w=%d", rv, m, w)
				}
				seen[rv] = true
				back, err := SubsetUnrank(m, w, rank)
				if err != nil {
					t.Fatalf("unrank m=%d w=%d rank=%d: %v", m, w, rv, err)
				}
				if !equalInts(back, subset) {
					t.Fatalf("unrank(rank(%v)) = %v", subset, back)
				}
			})
			if int64(len(seen)) != total {
				t.Fatalf("m=%d w=%d: %d ranks, want %d", m, w, len(seen), total)
			}
		}
	}
}

func enumerateSubsets(m, w int, visit func([]int)) {
	subset := make([]int, w)
	var rec func(start, idx int)
	rec = func(start, idx int) {
		if idx == w {
			visit(subset)
			return
		}
		for v := start; v < m; v++ {
			subset[idx] = v
			rec(v+1, idx+1)
		}
	}
	rec(0, 0)
}

func TestSubsetRankValidation(t *testing.T) {
	if _, err := SubsetRank(5, []int{3, 2}); err == nil {
		t.Fatal("non-increasing subset succeeded")
	}
	if _, err := SubsetRank(5, []int{1, 1}); err == nil {
		t.Fatal("duplicate element succeeded")
	}
	if _, err := SubsetRank(5, []int{5}); err == nil {
		t.Fatal("out-of-range element succeeded")
	}
	if _, err := SubsetRank(2, []int{0, 1, 2}); err == nil {
		t.Fatal("oversized subset succeeded")
	}
}

func TestSubsetUnrankValidation(t *testing.T) {
	if _, err := SubsetUnrank(5, 2, big.NewInt(10)); err == nil {
		t.Fatal("rank = C(5,2) succeeded")
	}
	if _, err := SubsetUnrank(5, 2, big.NewInt(-1)); err == nil {
		t.Fatal("negative rank succeeded")
	}
	if _, err := SubsetUnrank(5, 6, big.NewInt(0)); err == nil {
		t.Fatal("w > m succeeded")
	}
}

func TestWriteReadSubsetProperty(t *testing.T) {
	src := rng.New(81)
	check := func(mRaw, wRaw uint8) bool {
		m := int(mRaw%60) + 1
		w := int(wRaw) % (m + 1)
		subset := src.SampleWithoutReplacement(m, w)
		var bw BitWriter
		if err := WriteSubset(&bw, m, subset); err != nil {
			return false
		}
		wantBits, err := BinomialBitLen(m, w)
		if err != nil || bw.Len() != wantBits {
			return false
		}
		r, _ := NewBitReader(bw.Bytes(), bw.Len())
		got, err := ReadSubset(r, m, w)
		if err != nil {
			return false
		}
		return equalInts(got, subset)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetEncodingBeatsNaiveForBatches(t *testing.T) {
	// The Section 5 rationale: sending a (m/k)-subset of [m] costs about
	// (m/k)·log2(e·k) bits, strictly less than the naive (m/k)·log2(m)
	// when k << m.
	m, k := 10000, 10
	w := m / k
	batched, err := BinomialBitLen(m, w)
	if err != nil {
		t.Fatal(err)
	}
	naive := w * FixedWidth(uint64(m))
	if batched >= naive {
		t.Fatalf("batched %d bits not below naive %d bits", batched, naive)
	}
	// Per-coordinate cost must be within a small factor of log2(e·k).
	perCoord := float64(batched) / float64(w)
	if perCoord > 1.5*logBase2(2.72*float64(k)) {
		t.Fatalf("per-coordinate cost %v too far above log2(e·k)", perCoord)
	}
}

func logBase2(x float64) float64 {
	// tiny local helper to avoid importing math in more places
	l := 0.0
	for x >= 2 {
		x /= 2
		l++
	}
	return l + x - 1 // crude linear interpolation; adequate for the tolerance above
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
