package encoding

import (
	"math/big"
	"testing"
	"testing/quick"

	"broadcastic/internal/rng"
)

func TestEnumerativeRankBijectionExhaustive(t *testing.T) {
	for m := 0; m <= 8; m++ {
		for w := 0; w <= m; w++ {
			total := Binomial(m, w).Int64()
			seen := make(map[int64]bool, total)
			enumerateSubsets(m, w, func(subset []int) {
				rank, err := EnumerativeRank(m, subset)
				if err != nil {
					t.Fatalf("rank m=%d w=%d %v: %v", m, w, subset, err)
				}
				rv := rank.Int64()
				if rv < 0 || rv >= total {
					t.Fatalf("rank %d outside [0,%d)", rv, total)
				}
				if seen[rv] {
					t.Fatalf("duplicate rank %d at m=%d w=%d", rv, m, w)
				}
				seen[rv] = true
				back, err := EnumerativeUnrank(m, w, rank)
				if err != nil {
					t.Fatalf("unrank m=%d w=%d rank=%d: %v", m, w, rv, err)
				}
				if !equalInts(back, subset) {
					t.Fatalf("unrank(rank(%v)) = %v", subset, back)
				}
			})
			if int64(len(seen)) != total {
				t.Fatalf("m=%d w=%d: %d ranks, want %d", m, w, len(seen), total)
			}
		}
	}
}

func TestEnumerativeRankLexOrder(t *testing.T) {
	// The code is lexicographic: {0,1} < {0,2} < {1,2} over m=3.
	ranks := make([]int64, 0, 3)
	for _, s := range [][]int{{0, 1}, {0, 2}, {1, 2}} {
		r, err := EnumerativeRank(3, s)
		if err != nil {
			t.Fatal(err)
		}
		ranks = append(ranks, r.Int64())
	}
	if !(ranks[0] < ranks[1] && ranks[1] < ranks[2]) {
		t.Fatalf("ranks not lexicographic: %v", ranks)
	}
}

func TestEnumerativeValidation(t *testing.T) {
	if _, err := EnumerativeRank(3, []int{2, 1}); err == nil {
		t.Fatal("decreasing subset succeeded")
	}
	if _, err := EnumerativeRank(3, []int{0, 3}); err == nil {
		t.Fatal("out-of-range element succeeded")
	}
	if _, err := EnumerativeRank(2, []int{0, 1, 2}); err == nil {
		t.Fatal("oversized subset succeeded")
	}
	if _, err := EnumerativeUnrank(4, 2, big.NewInt(6)); err == nil {
		t.Fatal("rank = C(4,2) succeeded")
	}
	if _, err := EnumerativeUnrank(4, 2, big.NewInt(-1)); err == nil {
		t.Fatal("negative rank succeeded")
	}
	if _, err := EnumerativeUnrank(2, 3, big.NewInt(0)); err == nil {
		t.Fatal("w > m succeeded")
	}
}

func TestEnumerativeLargeRoundTrip(t *testing.T) {
	// The regime the optimal protocol uses: w ≈ m/k batches out of a large
	// universe.
	src := rng.New(88)
	for _, cfg := range []struct{ m, w int }{
		{1000, 100}, {5000, 50}, {4096, 512}, {300, 300}, {300, 0},
	} {
		subset := src.SampleWithoutReplacement(cfg.m, cfg.w)
		var bw BitWriter
		if err := WriteSubsetFast(&bw, cfg.m, subset); err != nil {
			t.Fatalf("m=%d w=%d: %v", cfg.m, cfg.w, err)
		}
		wantBits, err := BinomialBitLen(cfg.m, cfg.w)
		if err != nil {
			t.Fatal(err)
		}
		if bw.Len() != wantBits {
			t.Fatalf("m=%d w=%d: wrote %d bits, want %d", cfg.m, cfg.w, bw.Len(), wantBits)
		}
		r, _ := NewBitReader(bw.Bytes(), bw.Len())
		got, err := ReadSubsetFast(r, cfg.m, cfg.w)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(got, subset) {
			t.Fatalf("m=%d w=%d: roundtrip mismatch", cfg.m, cfg.w)
		}
	}
}

func TestEnumerativeMatchesCombinatorialBitLen(t *testing.T) {
	// Both encoders share the exact bit budget ⌈log₂ C(m,w)⌉.
	src := rng.New(89)
	check := func(mRaw, wRaw uint8) bool {
		m := int(mRaw%40) + 1
		w := int(wRaw) % (m + 1)
		subset := src.SampleWithoutReplacement(m, w)
		var b1, b2 BitWriter
		if err := WriteSubset(&b1, m, subset); err != nil {
			return false
		}
		if err := WriteSubsetFast(&b2, m, subset); err != nil {
			return false
		}
		return b1.Len() == b2.Len()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEnumerativeRankLarge(b *testing.B) {
	src := rng.New(90)
	const m, w = 16384, 2048
	subset := src.SampleWithoutReplacement(m, w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EnumerativeRank(m, subset); err != nil {
			b.Fatal(err)
		}
	}
}
