package encoding

import (
	"testing"
	"testing/quick"

	"broadcastic/internal/rng"
)

func roundTripGamma(t *testing.T, v uint64) {
	t.Helper()
	var w BitWriter
	if err := WriteEliasGamma(&w, v); err != nil {
		t.Fatalf("WriteEliasGamma(%d): %v", v, err)
	}
	if w.Len() != EliasGammaLen(v) {
		t.Fatalf("gamma length of %d = %d, want %d", v, w.Len(), EliasGammaLen(v))
	}
	r, _ := NewBitReader(w.Bytes(), w.Len())
	got, err := ReadEliasGamma(r)
	if err != nil {
		t.Fatalf("ReadEliasGamma(%d): %v", v, err)
	}
	if got != v {
		t.Fatalf("gamma roundtrip %d -> %d", v, got)
	}
	if r.Remaining() != 0 {
		t.Fatalf("gamma decode of %d left %d bits", v, r.Remaining())
	}
}

func TestEliasGammaKnown(t *testing.T) {
	// Known codeword lengths: 1→1, 2..3→3, 4..7→5.
	wantLens := map[uint64]int{1: 1, 2: 3, 3: 3, 4: 5, 7: 5, 8: 7}
	for v, want := range wantLens {
		if got := EliasGammaLen(v); got != want {
			t.Fatalf("EliasGammaLen(%d) = %d, want %d", v, got, want)
		}
		roundTripGamma(t, v)
	}
}

func TestEliasGammaRejectsZero(t *testing.T) {
	var w BitWriter
	if err := WriteEliasGamma(&w, 0); err == nil {
		t.Fatal("gamma of 0 succeeded")
	}
	if EliasGammaLen(0) != 0 {
		t.Fatal("EliasGammaLen(0) nonzero")
	}
}

func TestEliasGammaProperty(t *testing.T) {
	src := rng.New(71)
	check := func(shift uint8) bool {
		v := src.Uint64()>>(shift%63) | 1
		var w BitWriter
		if err := WriteEliasGamma(&w, v); err != nil {
			return false
		}
		r, _ := NewBitReader(w.Bytes(), w.Len())
		got, err := ReadEliasGamma(r)
		return err == nil && got == v && w.Len() == EliasGammaLen(v)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestEliasDeltaProperty(t *testing.T) {
	src := rng.New(72)
	check := func(shift uint8) bool {
		v := src.Uint64()>>(shift%63) | 1
		var w BitWriter
		if err := WriteEliasDelta(&w, v); err != nil {
			return false
		}
		if w.Len() != EliasDeltaLen(v) {
			return false
		}
		r, _ := NewBitReader(w.Bytes(), w.Len())
		got, err := ReadEliasDelta(r)
		return err == nil && got == v
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestEliasDeltaShorterForLarge(t *testing.T) {
	// Delta beats gamma asymptotically.
	v := uint64(1) << 40
	if EliasDeltaLen(v) >= EliasGammaLen(v) {
		t.Fatalf("delta %d not shorter than gamma %d for 2^40",
			EliasDeltaLen(v), EliasGammaLen(v))
	}
}

func TestEliasDeltaRejectsZero(t *testing.T) {
	var w BitWriter
	if err := WriteEliasDelta(&w, 0); err == nil {
		t.Fatal("delta of 0 succeeded")
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 17} {
		var w BitWriter
		if err := WriteUnary(&w, v); err != nil {
			t.Fatal(err)
		}
		if w.Len() != UnaryLen(v) {
			t.Fatalf("unary length of %d = %d, want %d", v, w.Len(), UnaryLen(v))
		}
		r, _ := NewBitReader(w.Bytes(), w.Len())
		got, err := ReadUnary(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("unary roundtrip %d -> %d", v, got)
		}
	}
}

func TestUnaryRejectsHuge(t *testing.T) {
	var w BitWriter
	if err := WriteUnary(&w, 1<<30); err == nil {
		t.Fatal("huge unary value succeeded")
	}
}

func TestReadUnaryTruncated(t *testing.T) {
	var w BitWriter
	_ = w.WriteBit(1)
	_ = w.WriteBit(1)
	r, _ := NewBitReader(w.Bytes(), 2)
	if _, err := ReadUnary(r); err == nil {
		t.Fatal("truncated unary decode succeeded")
	}
}

func TestNonNegRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 100, 1 << 30} {
		var w BitWriter
		if err := WriteNonNeg(&w, v); err != nil {
			t.Fatal(err)
		}
		if w.Len() != NonNegLen(v) {
			t.Fatalf("NonNegLen(%d) = %d, wrote %d", v, NonNegLen(v), w.Len())
		}
		r, _ := NewBitReader(w.Bytes(), w.Len())
		got, err := ReadNonNeg(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("NonNeg roundtrip %d -> %d", v, got)
		}
	}
}

func TestSignedGammaRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1000, -1000, 1 << 40, -(1 << 40)} {
		var w BitWriter
		if err := WriteSignedGamma(&w, v); err != nil {
			t.Fatal(err)
		}
		if w.Len() != SignedGammaLen(v) {
			t.Fatalf("SignedGammaLen(%d) = %d, wrote %d", v, SignedGammaLen(v), w.Len())
		}
		r, _ := NewBitReader(w.Bytes(), w.Len())
		got, err := ReadSignedGamma(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("signed roundtrip %d -> %d", v, got)
		}
	}
}

func TestZigzagProperty(t *testing.T) {
	check := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedWidth(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for size, want := range cases {
		if got := FixedWidth(size); got != want {
			t.Fatalf("FixedWidth(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestSelfDelimitingConcatenation(t *testing.T) {
	// Several values written back-to-back decode unambiguously: the whole
	// point of prefix-free codes for blackboard messages.
	vals := []uint64{1, 5, 2, 1000, 3}
	var w BitWriter
	for _, v := range vals {
		if err := WriteEliasGamma(&w, v); err != nil {
			t.Fatal(err)
		}
	}
	r, _ := NewBitReader(w.Bytes(), w.Len())
	for i, want := range vals {
		got, err := ReadEliasGamma(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("value %d decoded as %d, want %d", i, got, want)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bits left over", r.Remaining())
	}
}
