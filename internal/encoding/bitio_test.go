package encoding

import (
	"testing"
	"testing/quick"

	"broadcastic/internal/rng"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	var w BitWriter
	pattern := []int{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		if err := w.WriteBit(b); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(pattern))
	}
	r, err := NewBitReader(w.Bytes(), w.Len())
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("read past end succeeded")
	}
}

func TestWriteBitRejectsInvalid(t *testing.T) {
	var w BitWriter
	if err := w.WriteBit(2); err == nil {
		t.Fatal("WriteBit(2) succeeded")
	}
}

func TestWriteBitsWidthValidation(t *testing.T) {
	var w BitWriter
	if err := w.WriteBits(4, 2); err == nil {
		t.Fatal("value 4 in 2 bits succeeded")
	}
	if err := w.WriteBits(1, 65); err == nil {
		t.Fatal("width 65 succeeded")
	}
	if err := w.WriteBits(1, -1); err == nil {
		t.Fatal("negative width succeeded")
	}
	if err := w.WriteBits(0, 0); err != nil {
		t.Fatalf("zero-width write failed: %v", err)
	}
}

func TestWriteReadBitsProperty(t *testing.T) {
	src := rng.New(61)
	check := func(widthRaw uint8) bool {
		width := int(widthRaw%64) + 1
		v := src.Uint64()
		if width < 64 {
			v &= (1 << uint(width)) - 1
		}
		var w BitWriter
		if err := w.WriteBits(v, width); err != nil {
			return false
		}
		if w.Len() != width {
			return false
		}
		r, err := NewBitReader(w.Bytes(), w.Len())
		if err != nil {
			return false
		}
		got, err := r.ReadBits(width)
		return err == nil && got == v
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNewBitReaderValidation(t *testing.T) {
	if _, err := NewBitReader([]byte{0}, 9); err == nil {
		t.Fatal("bit count beyond buffer succeeded")
	}
	if _, err := NewBitReader(nil, -1); err == nil {
		t.Fatal("negative bit count succeeded")
	}
}

func TestReaderPosRemaining(t *testing.T) {
	var w BitWriter
	_ = w.WriteBits(0b1011, 4)
	r, _ := NewBitReader(w.Bytes(), 4)
	if r.Remaining() != 4 || r.Pos() != 0 {
		t.Fatalf("fresh reader pos=%d remaining=%d", r.Pos(), r.Remaining())
	}
	_, _ = r.ReadBit()
	if r.Remaining() != 3 || r.Pos() != 1 {
		t.Fatalf("after one read pos=%d remaining=%d", r.Pos(), r.Remaining())
	}
}

func TestBytesIsCopy(t *testing.T) {
	var w BitWriter
	_ = w.WriteBits(0xff, 8)
	b := w.Bytes()
	b[0] = 0
	if w.Bytes()[0] != 0xff {
		t.Fatal("Bytes exposed internal buffer")
	}
}

func TestMixedWrites(t *testing.T) {
	var w BitWriter
	_ = w.WriteBit(1)
	_ = w.WriteBits(0b0110, 4)
	_ = w.WriteBit(1)
	r, _ := NewBitReader(w.Bytes(), w.Len())
	v, err := r.ReadBits(6)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0b101101 {
		t.Fatalf("mixed write read back %06b", v)
	}
}
