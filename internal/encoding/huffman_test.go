package encoding

import (
	"math"
	"testing"

	"broadcastic/internal/info"
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

func TestHuffmanUniform(t *testing.T) {
	d, _ := prob.Uniform(4)
	c, err := NewHuffman(d)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 4; x++ {
		if c.Len(x) != 2 {
			t.Fatalf("uniform-4 code length of %d = %d, want 2", x, c.Len(x))
		}
	}
	e, err := c.ExpectedLength(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-2) > 1e-12 {
		t.Fatalf("expected length = %v", e)
	}
}

func TestHuffmanSkewed(t *testing.T) {
	// p = (0.5, 0.25, 0.125, 0.125): dyadic, so Huffman hits entropy
	// exactly: lengths 1,2,3,3, expected length = H = 1.75.
	d, _ := prob.NewDist([]float64{0.5, 0.25, 0.125, 0.125})
	c, err := NewHuffman(d)
	if err != nil {
		t.Fatal(err)
	}
	wantLens := []int{1, 2, 3, 3}
	for x, want := range wantLens {
		if c.Len(x) != want {
			t.Fatalf("length of %d = %d, want %d", x, c.Len(x), want)
		}
	}
	e, _ := c.ExpectedLength(d)
	if math.Abs(e-info.Entropy(d)) > 1e-12 {
		t.Fatalf("dyadic expected length %v != entropy %v", e, info.Entropy(d))
	}
}

func TestHuffmanWithinOneBitOfEntropy(t *testing.T) {
	src := rng.New(91)
	for trial := 0; trial < 50; trial++ {
		n := src.Intn(14) + 2
		w := make([]float64, n)
		for i := range w {
			w[i] = src.Float64() + 1e-6
		}
		d, err := prob.Normalize(w)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewHuffman(d)
		if err != nil {
			t.Fatal(err)
		}
		e, err := c.ExpectedLength(d)
		if err != nil {
			t.Fatal(err)
		}
		h := info.Entropy(d)
		if e < h-1e-9 || e >= h+1 {
			t.Fatalf("expected length %v outside [H, H+1) for H=%v", e, h)
		}
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	d, _ := prob.Point(3, 1)
	c, err := NewHuffman(d)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len(1) != 1 {
		t.Fatalf("single-symbol code length = %d, want 1", c.Len(1))
	}
	var w BitWriter
	if err := c.Encode(&w, 1); err != nil {
		t.Fatal(err)
	}
	r, _ := NewBitReader(w.Bytes(), w.Len())
	got, err := c.Decode(r)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("decoded %d", got)
	}
}

func TestHuffmanEncodeDecodeStream(t *testing.T) {
	src := rng.New(92)
	d, _ := prob.NewDist([]float64{0.4, 0.3, 0.2, 0.1})
	c, err := NewHuffman(d)
	if err != nil {
		t.Fatal(err)
	}
	var w BitWriter
	const n = 200
	symbols := make([]int, n)
	for i := range symbols {
		symbols[i] = d.Sample(src)
		if err := c.Encode(&w, symbols[i]); err != nil {
			t.Fatal(err)
		}
	}
	r, _ := NewBitReader(w.Bytes(), w.Len())
	for i, want := range symbols {
		got, err := c.Decode(r)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d decoded as %d, want %d", i, got, want)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bits left over", r.Remaining())
	}
}

func TestHuffmanEncodeInvalidSymbol(t *testing.T) {
	d, _ := prob.NewDist([]float64{0.5, 0.5, 0})
	c, err := NewHuffman(d)
	if err != nil {
		t.Fatal(err)
	}
	var w BitWriter
	if err := c.Encode(&w, 2); err == nil {
		t.Fatal("encoding zero-probability symbol succeeded")
	}
	if err := c.Encode(&w, 5); err == nil {
		t.Fatal("encoding out-of-range symbol succeeded")
	}
}

func TestHuffmanExpectedLengthValidation(t *testing.T) {
	d, _ := prob.Uniform(2)
	c, err := NewHuffman(d)
	if err != nil {
		t.Fatal(err)
	}
	e3, _ := prob.Uniform(3)
	if _, err := c.ExpectedLength(e3); err == nil {
		t.Fatal("mismatched support size succeeded")
	}
	// Positive-probability symbol without codeword: build code on a
	// restricted distribution, evaluate on a fuller one.
	restricted, _ := prob.NewDist([]float64{1, 0})
	cr, err := NewHuffman(restricted)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := prob.Uniform(2)
	if _, err := cr.ExpectedLength(full); err == nil {
		t.Fatal("missing codeword for positive-probability symbol succeeded")
	}
}

func TestHuffmanDecodeTruncated(t *testing.T) {
	d, _ := prob.NewDist([]float64{0.5, 0.25, 0.25})
	c, err := NewHuffman(d)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := NewBitReader(nil, 0)
	if _, err := c.Decode(r); err == nil {
		t.Fatal("decode from empty stream succeeded")
	}
}
