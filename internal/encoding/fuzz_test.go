package encoding

import (
	"testing"
)

// Native fuzz targets for the self-delimiting codes. Each encoder/decoder
// pair must round-trip every representable value, the *Len helpers must
// agree with the bits actually written, and the decoders must reject (not
// panic on) adversarial bit streams. Seeds mirror the boundary values of
// the table-driven tests in varint_test.go and combinatorial_test.go.

// encodeOne writes v with write and returns the packed bits and bit count.
func encodeOne(t *testing.T, write func(*BitWriter) error) ([]byte, int) {
	t.Helper()
	var w BitWriter
	if err := write(&w); err != nil {
		t.Fatal(err)
	}
	return w.Bytes(), w.Len()
}

func FuzzUnaryRoundTrip(f *testing.F) {
	for _, v := range []uint64{0, 1, 7, 63, 1 << 10} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, v uint64) {
		var w BitWriter
		if err := WriteUnary(&w, v); err != nil {
			return // values beyond the sanity cap are rejected by design
		}
		if w.Len() != UnaryLen(v) {
			t.Fatalf("UnaryLen(%d)=%d, wrote %d bits", v, UnaryLen(v), w.Len())
		}
		r, err := NewBitReader(w.Bytes(), w.Len())
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadUnary(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	})
}

func FuzzEliasGammaRoundTrip(f *testing.F) {
	for _, v := range []uint64{1, 2, 3, 127, 128, 1 << 32, ^uint64(0)} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, v uint64) {
		if v == 0 {
			var w BitWriter
			if err := WriteEliasGamma(&w, 0); err == nil {
				t.Fatal("gamma accepted 0")
			}
			return
		}
		buf, n := encodeOne(t, func(w *BitWriter) error { return WriteEliasGamma(w, v) })
		if n != EliasGammaLen(v) {
			t.Fatalf("EliasGammaLen(%d)=%d, wrote %d bits", v, EliasGammaLen(v), n)
		}
		r, err := NewBitReader(buf, n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadEliasGamma(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	})
}

func FuzzEliasDeltaRoundTrip(f *testing.F) {
	for _, v := range []uint64{1, 2, 16, 17, 1 << 20, ^uint64(0)} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, v uint64) {
		if v == 0 {
			return
		}
		buf, n := encodeOne(t, func(w *BitWriter) error { return WriteEliasDelta(w, v) })
		if n != EliasDeltaLen(v) {
			t.Fatalf("EliasDeltaLen(%d)=%d, wrote %d bits", v, EliasDeltaLen(v), n)
		}
		r, err := NewBitReader(buf, n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadEliasDelta(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	})
}

func FuzzNonNegRoundTrip(f *testing.F) {
	for _, v := range []uint64{0, 1, 2, 255, 1 << 40} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, v uint64) {
		if v == ^uint64(0) {
			return // v+1 would overflow; rejected by design
		}
		buf, n := encodeOne(t, func(w *BitWriter) error { return WriteNonNeg(w, v) })
		if n != NonNegLen(v) {
			t.Fatalf("NonNegLen(%d)=%d, wrote %d bits", v, NonNegLen(v), n)
		}
		r, err := NewBitReader(buf, n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadNonNeg(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	})
}

func FuzzSignedGammaRoundTrip(f *testing.F) {
	for _, v := range []int64{0, -1, 1, -2, 2, 1 << 40, -(1 << 40), -9223372036854775808, 9223372036854775807} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, v int64) {
		if zigzag(v) == ^uint64(0) {
			return
		}
		buf, n := encodeOne(t, func(w *BitWriter) error { return WriteSignedGamma(w, v) })
		if n != SignedGammaLen(v) {
			t.Fatalf("SignedGammaLen(%d)=%d, wrote %d bits", v, SignedGammaLen(v), n)
		}
		r, err := NewBitReader(buf, n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadSignedGamma(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	})
}

// FuzzSubsetRoundTrip derives a strictly increasing subset of [0, m) from
// the mask bits, then checks rank/unrank and the bit-exact WriteSubset /
// ReadSubset codec recover it.
func FuzzSubsetRoundTrip(f *testing.F) {
	f.Add(uint8(6), uint64(0b101001))
	f.Add(uint8(1), uint64(1))
	f.Add(uint8(48), ^uint64(0))
	f.Add(uint8(10), uint64(0))
	f.Fuzz(func(t *testing.T, m uint8, mask uint64) {
		if m > 48 {
			m = m % 49 // keep C(m, w) cheap
		}
		var subset []int
		for v := 0; v < int(m); v++ {
			if mask>>uint(v%64)&1 == 1 {
				subset = append(subset, v)
			}
		}
		rank, err := SubsetRank(int(m), subset)
		if err != nil {
			t.Fatal(err)
		}
		back, err := SubsetUnrank(int(m), len(subset), rank)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(subset) {
			t.Fatalf("unrank size %d, want %d", len(back), len(subset))
		}
		for i := range subset {
			if back[i] != subset[i] {
				t.Fatalf("unrank mismatch at %d: %v vs %v", i, back, subset)
			}
		}
		var w BitWriter
		if err := WriteSubset(&w, int(m), subset); err != nil {
			t.Fatal(err)
		}
		width, err := BinomialBitLen(int(m), len(subset))
		if err != nil {
			t.Fatal(err)
		}
		if w.Len() != width {
			t.Fatalf("WriteSubset used %d bits, budget is %d", w.Len(), width)
		}
		r, err := NewBitReader(w.Bytes(), w.Len())
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadSubset(r, int(m), len(subset))
		if err != nil {
			t.Fatal(err)
		}
		for i := range subset {
			if got[i] != subset[i] {
				t.Fatalf("codec mismatch at %d: %v vs %v", i, got, subset)
			}
		}
	})
}

// FuzzDecodeAdversarial feeds arbitrary bytes to every decoder. Decoders
// must either fail cleanly or return a value whose re-encoding reproduces
// exactly the bits they consumed (the codes are prefix-free bijections).
func FuzzDecodeAdversarial(f *testing.F) {
	f.Add([]byte{0xff, 0x00, 0xa5})
	f.Add([]byte{0x00})
	f.Add([]byte{0b01011010, 0b11110000, 0x13, 0x37})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // keeps any decodable unary run below WriteUnary's sanity cap
		}
		checks := []struct {
			name   string
			decode func(*BitReader) (func(*BitWriter) error, error)
		}{
			{"gamma", func(r *BitReader) (func(*BitWriter) error, error) {
				v, err := ReadEliasGamma(r)
				return func(w *BitWriter) error { return WriteEliasGamma(w, v) }, err
			}},
			{"delta", func(r *BitReader) (func(*BitWriter) error, error) {
				v, err := ReadEliasDelta(r)
				return func(w *BitWriter) error { return WriteEliasDelta(w, v) }, err
			}},
			{"signed", func(r *BitReader) (func(*BitWriter) error, error) {
				v, err := ReadSignedGamma(r)
				return func(w *BitWriter) error { return WriteSignedGamma(w, v) }, err
			}},
			{"unary", func(r *BitReader) (func(*BitWriter) error, error) {
				v, err := ReadUnary(r)
				return func(w *BitWriter) error { return WriteUnary(w, v) }, err
			}},
		}
		for _, c := range checks {
			r, err := NewBitReader(data, len(data)*8)
			if err != nil {
				t.Fatal(err)
			}
			reencode, err := c.decode(r)
			if err != nil {
				continue // clean failure on garbage is fine
			}
			var w BitWriter
			if err := reencode(&w); err != nil {
				t.Fatalf("%s: decoded value does not re-encode: %v", c.name, err)
			}
			consumed := len(data)*8 - r.Remaining()
			if w.Len() != consumed {
				t.Fatalf("%s: consumed %d bits but value re-encodes to %d", c.name, consumed, w.Len())
			}
			for i := 0; i < consumed; i++ {
				in := data[i/8] >> uint(7-i%8) & 1
				out := w.Bytes()[i/8] >> uint(7-i%8) & 1
				if in != out {
					t.Fatalf("%s: re-encoded bit %d differs", c.name, i)
				}
			}
		}
	})
}
