package encoding

import (
	"fmt"
	"math/big"
)

// Combinatorial number system: a bijection between w-subsets of [0, m) and
// integers in [0, C(m, w)). This is exactly the "encode them as a set"
// batching device of the Section 5 protocol: a player with z_i/k fresh zero
// coordinates inside the live set Z_i writes the subset's rank in
// ⌈log2 C(z_i, z_i/k)⌉ bits — an amortized Θ(log k) bits per coordinate
// instead of the naive Θ(log n).

// Binomial returns C(n, k) as a big integer (0 when k < 0 or k > n).
func Binomial(n, k int) *big.Int {
	if k < 0 || k > n || n < 0 {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// BinomialBitLen returns ⌈log2 C(n, k)⌉, the exact bit cost of transmitting
// one w-subset rank.
func BinomialBitLen(n, k int) (int, error) {
	c := Binomial(n, k)
	if c.Sign() == 0 {
		return 0, fmt.Errorf("encoding: C(%d,%d) is zero", n, k)
	}
	// ⌈log2 c⌉ = bitlen(c-1) for c >= 1.
	cm1 := new(big.Int).Sub(c, big.NewInt(1))
	return cm1.BitLen(), nil
}

// SubsetRank maps a strictly increasing w-subset of [0, m) to its rank in
// [0, C(m, w)) under the colexicographic-style combinatorial numbering
// rank = Σ_j C(subset[j], j+1).
func SubsetRank(m int, subset []int) (*big.Int, error) {
	w := len(subset)
	if w > m {
		return nil, fmt.Errorf("encoding: subset of size %d over universe %d", w, m)
	}
	rank := new(big.Int)
	prev := -1
	for j, v := range subset {
		if v <= prev || v < 0 || v >= m {
			return nil, fmt.Errorf("encoding: subset not strictly increasing in [0,%d): %v", m, subset)
		}
		prev = v
		rank.Add(rank, Binomial(v, j+1))
	}
	return rank, nil
}

// SubsetUnrank inverts SubsetRank: given m, w and a rank in [0, C(m, w)),
// it reconstructs the strictly increasing subset.
func SubsetUnrank(m, w int, rank *big.Int) ([]int, error) {
	if w < 0 || w > m {
		return nil, fmt.Errorf("encoding: subset size %d outside [0,%d]", w, m)
	}
	total := Binomial(m, w)
	if rank.Sign() < 0 || rank.Cmp(total) >= 0 {
		return nil, fmt.Errorf("encoding: rank %v outside [0, C(%d,%d)=%v)", rank, m, w, total)
	}
	out := make([]int, w)
	r := new(big.Int).Set(rank)
	v := m - 1
	for j := w; j >= 1; j-- {
		// Find the largest v with C(v, j) <= r.
		for v >= 0 && Binomial(v, j).Cmp(r) > 0 {
			v--
		}
		if v < 0 {
			return nil, fmt.Errorf("encoding: unrank failed at position %d", j)
		}
		out[j-1] = v
		r.Sub(r, Binomial(v, j))
		v--
	}
	if r.Sign() != 0 {
		return nil, fmt.Errorf("encoding: unrank residual %v", r)
	}
	return out, nil
}

// WriteSubset encodes a strictly increasing w-subset of [0, m) into w's
// exact bit budget ⌈log2 C(m, w)⌉. The decoder must know m and w.
func WriteSubset(w *BitWriter, m int, subset []int) error {
	rank, err := SubsetRank(m, subset)
	if err != nil {
		return err
	}
	width, err := BinomialBitLen(m, len(subset))
	if err != nil {
		return err
	}
	return writeBigInt(w, rank, width)
}

// ReadSubset decodes a subset written with WriteSubset.
func ReadSubset(r *BitReader, m, size int) ([]int, error) {
	width, err := BinomialBitLen(m, size)
	if err != nil {
		return nil, err
	}
	rank, err := readBigInt(r, width)
	if err != nil {
		return nil, err
	}
	return SubsetUnrank(m, size, rank)
}

// writeBigInt writes v as exactly width bits, MSB first.
func writeBigInt(w *BitWriter, v *big.Int, width int) error {
	if v.Sign() < 0 {
		return fmt.Errorf("encoding: negative big integer")
	}
	if v.BitLen() > width {
		return fmt.Errorf("encoding: value needs %d bits, budget %d", v.BitLen(), width)
	}
	for i := width - 1; i >= 0; i-- {
		if err := w.WriteBit(int(v.Bit(i))); err != nil {
			return err
		}
	}
	return nil
}

// readBigInt reads exactly width bits into a big integer, MSB first.
func readBigInt(r *BitReader, width int) (*big.Int, error) {
	v := new(big.Int)
	for i := 0; i < width; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		v.Lsh(v, 1)
		if b == 1 {
			v.Or(v, big.NewInt(1))
		}
	}
	return v, nil
}
