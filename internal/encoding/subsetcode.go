package encoding

import (
	"fmt"
	"math/big"
)

// Streaming enumerative subset coding.
//
// SubsetRank/SubsetUnrank (combinatorial.go) are simple but recompute
// binomials from scratch; the Section 5 protocol transmits batches with
// w up to z/k out of universes with z up to n, where that becomes
// prohibitive. The functions here implement the same bijection cost
// (⌈log₂ C(m,w)⌉ bits per subset) via a lexicographic enumerative code
// whose binomial coefficient is updated incrementally with one exact
// multiply/divide per universe step:
//
//	C(a−1, b)   = C(a, b) · (a−b) / a
//	C(a−1, b−1) = C(a, b) · b / a
//
// Both divisions are exact over the integers, so the stream stays precise.

// EnumerativeRank maps a strictly increasing w-subset of [0, m) to its rank
// in [0, C(m, w)) under the lexicographic enumerative code.
func EnumerativeRank(m int, subset []int) (*big.Int, error) {
	w := len(subset)
	if w > m || m < 0 {
		return nil, fmt.Errorf("encoding: subset of size %d over universe %d", w, m)
	}
	rank := new(big.Int)
	if w == 0 {
		return rank, nil
	}
	prev := -1
	for _, p := range subset {
		if p <= prev || p < 0 || p >= m {
			return nil, fmt.Errorf("encoding: subset not strictly increasing in [0,%d): %v", m, subset)
		}
		prev = p
	}
	// cur = C(m-v-1, r-1) as v scans the universe.
	r := w
	cur := new(big.Int).Binomial(int64(m-1), int64(w-1))
	tmp := new(big.Int)
	idx := 0
	for v := 0; v < m && r > 0; v++ {
		a := int64(m - v - 1) // cur = C(a, r-1) before the update below
		if idx < w && subset[idx] == v {
			// v selected: next cur = C(a-1, r-2) = cur·(r-1)/a.
			idx++
			r--
			if r == 0 {
				break
			}
			if a > 0 {
				tmp.SetInt64(int64(r))
				cur.Mul(cur, tmp)
				tmp.SetInt64(a)
				cur.Div(cur, tmp)
			}
			continue
		}
		// v skipped: all subsets containing v at this point precede ours.
		rank.Add(rank, cur)
		// next cur = C(a-1, r-1) = cur·(a-(r-1))/a.
		if a > 0 {
			tmp.SetInt64(a - int64(r-1))
			cur.Mul(cur, tmp)
			tmp.SetInt64(a)
			cur.Div(cur, tmp)
		}
	}
	if idx != w {
		return nil, fmt.Errorf("encoding: enumerative rank consumed %d of %d elements", idx, w)
	}
	return rank, nil
}

// EnumerativeUnrank inverts EnumerativeRank.
func EnumerativeUnrank(m, w int, rank *big.Int) ([]int, error) {
	if w < 0 || w > m {
		return nil, fmt.Errorf("encoding: subset size %d outside [0,%d]", w, m)
	}
	total := new(big.Int).Binomial(int64(m), int64(w))
	if rank.Sign() < 0 || rank.Cmp(total) >= 0 {
		return nil, fmt.Errorf("encoding: rank %v outside [0, C(%d,%d))", rank, m, w)
	}
	out := make([]int, 0, w)
	if w == 0 {
		return out, nil
	}
	r := w
	rem := new(big.Int).Set(rank)
	cur := new(big.Int).Binomial(int64(m-1), int64(w-1))
	tmp := new(big.Int)
	for v := 0; v < m && r > 0; v++ {
		a := int64(m - v - 1)
		if rem.Cmp(cur) < 0 {
			out = append(out, v)
			r--
			if r == 0 {
				break
			}
			if a > 0 {
				tmp.SetInt64(int64(r))
				cur.Mul(cur, tmp)
				tmp.SetInt64(a)
				cur.Div(cur, tmp)
			}
			continue
		}
		rem.Sub(rem, cur)
		if a > 0 {
			tmp.SetInt64(a - int64(r-1))
			cur.Mul(cur, tmp)
			tmp.SetInt64(a)
			cur.Div(cur, tmp)
		}
	}
	if len(out) != w {
		return nil, fmt.Errorf("encoding: enumerative unrank produced %d of %d elements", len(out), w)
	}
	return out, nil
}

// WriteSubsetFast encodes a w-subset of [0, m) in exactly ⌈log₂ C(m,w)⌉
// bits using the streaming enumerative code. Decoder must know m and w.
func WriteSubsetFast(w *BitWriter, m int, subset []int) error {
	rank, err := EnumerativeRank(m, subset)
	if err != nil {
		return err
	}
	width, err := BinomialBitLen(m, len(subset))
	if err != nil {
		return err
	}
	return writeBigInt(w, rank, width)
}

// ReadSubsetFast decodes a subset written with WriteSubsetFast.
func ReadSubsetFast(r *BitReader, m, size int) ([]int, error) {
	width, err := BinomialBitLen(m, size)
	if err != nil {
		return nil, err
	}
	rank, err := readBigInt(r, width)
	if err != nil {
		return nil, err
	}
	return EnumerativeUnrank(m, size, rank)
}
