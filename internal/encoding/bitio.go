// Package encoding implements the bit-exact codes the protocols are charged
// for: a bit-level writer/reader, unary and Elias gamma/delta prefix codes
// (used by the Lemma 7 sampler's variable-length fields), fixed-width
// integers, the combinatorial number system for encoding a w-subset of an
// m-set in ⌈log2 C(m,w)⌉ bits (the batch encoding of the Section 5
// protocol), and canonical Huffman codes (the classical single-shot
// compression reference point from the introduction).
//
// Communication complexity in the paper is counted in bits written on the
// blackboard, so every encoder here reports exact bit lengths.
package encoding

import (
	"fmt"
)

// BitWriter accumulates bits most-significant-first into a byte buffer.
// The zero value is ready to use.
type BitWriter struct {
	buf  []byte
	nbit int
}

// WriteBit appends a single bit (0 or 1).
func (w *BitWriter) WriteBit(b int) error {
	if b != 0 && b != 1 {
		return fmt.Errorf("encoding: bit value %d", b)
	}
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b == 1 {
		w.buf[w.nbit/8] |= 1 << uint(7-w.nbit%8)
	}
	w.nbit++
	return nil
}

// WriteBits appends the low `width` bits of v, most significant first.
func (w *BitWriter) WriteBits(v uint64, width int) error {
	if width < 0 || width > 64 {
		return fmt.Errorf("encoding: bit width %d outside [0,64]", width)
	}
	if width < 64 && v>>uint(width) != 0 {
		return fmt.Errorf("encoding: value %d does not fit in %d bits", v, width)
	}
	for i := width - 1; i >= 0; i-- {
		if err := w.WriteBit(int((v >> uint(i)) & 1)); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of bits written so far.
func (w *BitWriter) Len() int { return w.nbit }

// Reset clears the writer for reuse, keeping the buffer capacity so a
// reused writer allocates nothing once it has grown to its working size.
func (w *BitWriter) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// AppendTo appends the packed bytes (final byte zero-padded) to dst and
// returns the result: the allocation-free counterpart of Bytes for callers
// that own a scratch buffer.
func (w *BitWriter) AppendTo(dst []byte) []byte {
	return append(dst, w.buf...)
}

// Bytes returns the written bits packed into bytes (the final byte is
// zero-padded). The returned slice is a copy.
func (w *BitWriter) Bytes() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// BitReader consumes bits most-significant-first from a byte buffer.
type BitReader struct {
	buf  []byte
	nbit int // total readable bits
	pos  int
}

// NewBitReader reads up to nbit bits from buf.
func NewBitReader(buf []byte, nbit int) (*BitReader, error) {
	if nbit < 0 || nbit > len(buf)*8 {
		return nil, fmt.Errorf("encoding: bit count %d exceeds buffer of %d bits", nbit, len(buf)*8)
	}
	return &BitReader{buf: buf, nbit: nbit}, nil
}

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (int, error) {
	if r.pos >= r.nbit {
		return 0, fmt.Errorf("encoding: read past end of bit stream (pos %d of %d)", r.pos, r.nbit)
	}
	b := int(r.buf[r.pos/8]>>uint(7-r.pos%8)) & 1
	r.pos++
	return b, nil
}

// ReadBits returns the next `width` bits as an integer, MSB first.
func (r *BitReader) ReadBits(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("encoding: bit width %d outside [0,64]", width)
	}
	var v uint64
	for i := 0; i < width; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// Pos returns the number of bits consumed so far.
func (r *BitReader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *BitReader) Remaining() int { return r.nbit - r.pos }
