// Package tracelog turns one run's telemetry stream into a Chrome
// trace-event JSON file, openable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. It is the per-run, time-resolved complement to the
// aggregate Collector: where the Collector answers "how many bits, in
// total", a trace answers "when, on which track, in what order".
//
// A Sink implements telemetry.Recorder, so it installs anywhere a
// Collector does — netrun.Config.Recorder, sim.Config.Recorder — and can
// tee into a downstream recorder so aggregation and tracing share one run.
// The existing instrumentation call sites map onto trace events without
// modification:
//
//   - Observations of *_ns metrics (spans: netrun turn/ack latency, sim
//     cell wall time, pool worker busy time, estimator shards) become
//     complete ("X") duration events, placed on a track derived from the
//     metric name: netrun.link.<i>.* lands on "player <i>", other netrun.*
//     on "coordinator", pool.* / sim.* / core.* / blackboard.* on their
//     layer's track.
//   - Counts of fault and crash metrics (netrun.faults,
//     netrun.link.<i>.faults.<kind>, netrun.crashes) become instant ("i")
//     events — each injected fault is visible at its moment of injection.
//   - All other counts become counter ("C") events carrying the cumulative
//     value, so Perfetto renders bit and message totals as rising series.
//
// Every event carries the sink's run ID in its args; the ID is also in the
// file's otherData block. Callers choose stable IDs (seed- and
// experiment-derived), so re-running a configuration produces a trace with
// the same identity.
//
// Recording never perturbs the run: the sink observes names, values and
// the clock, exactly like the Collector, and the conformance suites pin
// that transcripts and tables are bit-identical with a Sink installed.
package tracelog

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/causal"
)

// Event is one Chrome trace event. Only the fields this package emits are
// modeled; the format tolerates (and Perfetto ignores) absent optionals.
type Event struct {
	Name  string `json:"name"`
	Phase string `json:"ph"`
	// Ts and Dur are microseconds from the sink's start.
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Trace is the JSON object format of the trace-event specification.
type Trace struct {
	TraceEvents     []Event           `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// sanitizeFloat maps values JSON cannot carry onto encodable ones: NaN
// becomes 0, ±Inf saturates to ±MaxFloat64. Trace timestamps and counter
// values are diagnostics; a clamped outlier beats an unencodable file.
func sanitizeFloat(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	default:
		return v
	}
}

// Encode writes t as valid JSON whatever the event contents: float fields
// are sanitized first (encoding/json rejects NaN/Inf), string fields pass
// through encoding/json's escaping. The fuzz target pins that the output
// always re-parses.
func Encode(w io.Writer, t *Trace) error {
	clean := Trace{
		TraceEvents:     make([]Event, len(t.TraceEvents)),
		DisplayTimeUnit: t.DisplayTimeUnit,
		OtherData:       t.OtherData,
	}
	if clean.DisplayTimeUnit == "" {
		clean.DisplayTimeUnit = "ms"
	}
	for i, ev := range t.TraceEvents {
		ev.Ts = sanitizeFloat(ev.Ts)
		ev.Dur = sanitizeFloat(ev.Dur)
		if ev.Args != nil {
			args := make(map[string]any, len(ev.Args))
			for k, v := range ev.Args {
				if f, ok := v.(float64); ok {
					args[k] = sanitizeFloat(f)
				} else {
					args[k] = v
				}
			}
			ev.Args = args
		}
		clean.TraceEvents[i] = ev
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&clean)
}

// Track ids. Fixed small ids keep related events on stable rows in the
// viewer; per-player tracks start at playerTidBase + link index.
const (
	tidCoordinator = 1
	tidPool        = 2
	tidHarness     = 3
	tidBlackboard  = 4
	tidEstimator   = 5
	tidOther       = 6
	tidJobs        = 7
	playerTidBase  = 16
)

// metricsPid is the process id of the aggregate metrics plane; causal
// traces get their own pid each, allocated from causalPidBase upward, so
// Perfetto groups one trace's spans under one process named after its
// trace ID.
const (
	metricsPid    = 1
	causalPidBase = 2
)

// trackFor derives the display track from a metric's dot-path.
func trackFor(name string) (tid int, label string) {
	if rest, ok := strings.CutPrefix(name, telemetry.NetrunLink+"."); ok {
		if dot := strings.IndexByte(rest, '.'); dot > 0 {
			if idx, err := strconv.Atoi(rest[:dot]); err == nil && idx >= 0 {
				return playerTidBase + idx, "player " + rest[:dot]
			}
		}
	}
	switch {
	case strings.HasPrefix(name, "netrun."):
		return tidCoordinator, "coordinator"
	case strings.HasPrefix(name, "pool."):
		return tidPool, "pool"
	case strings.HasPrefix(name, "sim."):
		return tidHarness, "harness"
	case strings.HasPrefix(name, "blackboard."):
		return tidBlackboard, "blackboard"
	case strings.HasPrefix(name, "core."):
		return tidEstimator, "estimator"
	case strings.HasPrefix(name, "jobs."):
		return tidJobs, "jobs"
	default:
		return tidOther, "other"
	}
}

// isInstant reports whether a counted metric should render as a discrete
// instant event rather than a cumulative counter series: injected faults
// and crashes are point occurrences an investigation wants to see
// individually on the timeline.
func isInstant(name string) bool {
	return name == telemetry.NetrunFaults ||
		name == telemetry.NetrunCrashes ||
		strings.Contains(name, ".faults.")
}

// Sink records one run's telemetry as trace events. Safe for concurrent
// use; events buffer in memory until WriteTo (a run trace is bounded by
// the run, and the callers that install sinks are opt-in diagnostics).
type Sink struct {
	runID string
	start time.Time
	next  telemetry.Recorder

	mu       sync.Mutex
	events   []Event
	counters map[string]int64
	tracks   map[int]string
	causal   map[causal.TraceID]*causalProcess
	nextPid  int
}

// causalProcess is the per-trace display process: its pid, the process
// metadata args (trace ID plus the root record's attrs — tenant,
// experiment), and the thread labels used under it.
type causalProcess struct {
	pid    int
	args   map[string]any
	tracks map[int]string
}

// New starts a sink for one run. runID should be stable across reruns of
// the same configuration (derive it from the seed and workload, not the
// clock). next, when non-nil, receives every event too — the usual shape
// is New(id, collector) so a run feeds its trace and the serving
// Collector from the same call sites.
func New(runID string, next telemetry.Recorder) *Sink {
	return &Sink{
		runID:    runID,
		start:    time.Now(),
		next:     next,
		counters: make(map[string]int64),
		tracks:   make(map[int]string),
		causal:   make(map[causal.TraceID]*causalProcess),
		nextPid:  causalPidBase,
	}
}

// RunID returns the sink's stable run identifier.
func (s *Sink) RunID() string { return s.runID }

func (s *Sink) now() float64 { return float64(time.Since(s.start)) / 1e3 } // µs

// Count implements telemetry.Recorder.
func (s *Sink) Count(name string, delta int64) {
	if s.next != nil {
		s.next.Count(name, delta)
	}
	tid, label := trackFor(name)
	ts := s.now()
	s.mu.Lock()
	s.tracks[tid] = label
	s.counters[name] += delta
	total := s.counters[name]
	if isInstant(name) {
		s.events = append(s.events, Event{
			Name: name, Phase: "i", Ts: ts, Pid: 1, Tid: tid, Scope: "t",
			Args: map[string]any{"delta": delta, "total": total, "runId": s.runID},
		})
	} else {
		s.events = append(s.events, Event{
			Name: name, Phase: "C", Ts: ts, Pid: 1, Tid: tid,
			Args: map[string]any{"value": float64(total), "runId": s.runID},
		})
	}
	s.mu.Unlock()
}

// Observe implements telemetry.Recorder. Span observations (*_ns metric
// names, recorded at span end with the duration as the value) become
// complete events stretching back over the measured interval; any other
// observation becomes an instant event carrying its value.
func (s *Sink) Observe(name string, value float64) {
	if s.next != nil {
		s.next.Observe(name, value)
	}
	tid, label := trackFor(name)
	end := s.now()
	s.mu.Lock()
	s.tracks[tid] = label
	if strings.HasSuffix(name, "_ns") && value >= 0 && !math.IsInf(value, 1) && !math.IsNaN(value) {
		dur := value / 1e3 // ns -> µs
		ts := end - dur
		if ts < 0 {
			ts = 0
		}
		s.events = append(s.events, Event{
			Name: name, Phase: "X", Ts: ts, Dur: dur, Pid: 1, Tid: tid,
			Args: map[string]any{"runId": s.runID},
		})
	} else {
		s.events = append(s.events, Event{
			Name: name, Phase: "i", Ts: end, Pid: 1, Tid: tid, Scope: "t",
			Args: map[string]any{"value": value, "runId": s.runID},
		})
	}
	s.mu.Unlock()
}

// Gauge implements telemetry.GaugeRecorder: the level renders as a
// counter ("C") series, which is how Perfetto displays point-in-time
// values, and forwards downstream so a tee chain never swallows gauges.
func (s *Sink) Gauge(name string, value float64) {
	if g, ok := s.next.(telemetry.GaugeRecorder); ok {
		g.Gauge(name, value)
	}
	tid, label := trackFor(name)
	ts := s.now()
	s.mu.Lock()
	s.tracks[tid] = label
	s.events = append(s.events, Event{
		Name: name, Phase: "C", Ts: ts, Pid: metricsPid, Tid: tid,
		Args: map[string]any{"value": value, "runId": s.runID},
	})
	s.mu.Unlock()
}

// CausalEvent implements causal.EventSink: each trace renders as its own
// process (pid >= causalPidBase) named after the trace ID, spans as
// complete ("X") events and instants as "i" events, on threads derived
// from the record name the same way metric tracks are. Timestamps are the
// causal Recorder's (nanoseconds since its epoch), self-consistent within
// each causal pid.
func (s *Sink) CausalEvent(rec causal.Record) {
	tid, label := trackFor(rec.Name)
	s.mu.Lock()
	cp := s.causal[rec.Trace]
	if cp == nil {
		cp = &causalProcess{
			pid:    s.nextPid,
			args:   map[string]any{"trace": rec.Trace.String()},
			tracks: make(map[int]string),
		}
		s.nextPid++
		s.causal[rec.Trace] = cp
	}
	cp.tracks[tid] = label
	if rec.Parent == 0 {
		// Root records carry the trace's identity (tenant, experiment);
		// surface it on the process itself.
		for _, a := range rec.Attrs {
			cp.args[a.Key] = a.Value
		}
	}
	args := make(map[string]any, len(rec.Attrs)+4)
	for _, a := range rec.Attrs {
		args[a.Key] = a.Value
	}
	args["span"] = rec.Span.String()
	if rec.Parent != 0 {
		args["parent"] = rec.Parent.String()
	}
	if rec.Fault {
		args["fault"] = true
	}
	ev := Event{Name: rec.Name, Pid: cp.pid, Tid: tid, Args: args}
	if rec.Kind == causal.KindSpan && rec.End >= rec.Start {
		ev.Phase = "X"
		ev.Ts = float64(rec.Start) / 1e3
		ev.Dur = float64(rec.End-rec.Start) / 1e3
	} else {
		ev.Phase = "i"
		ev.Ts = float64(rec.Start) / 1e3
		ev.Scope = "t"
	}
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

var (
	_ telemetry.Recorder      = (*Sink)(nil)
	_ telemetry.GaugeRecorder = (*Sink)(nil)
	_ causal.EventSink        = (*Sink)(nil)
)

// Snapshot assembles the trace recorded so far: thread-name metadata for
// every used track (sorted, so equal runs produce equal files) followed by
// the events in recording order.
func (s *Sink) Snapshot() *Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	tids := make([]int, 0, len(s.tracks))
	for tid := range s.tracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	events := make([]Event, 0, len(tids)+len(s.events))
	for _, tid := range tids {
		events = append(events, Event{
			Name: "thread_name", Phase: "M", Pid: metricsPid, Tid: tid,
			Args: map[string]any{"name": s.tracks[tid]},
		})
	}
	// Causal processes, ordered by pid (allocation order), each announcing
	// its name ("trace <id>" plus root attrs) and thread labels.
	procs := make([]*causalProcess, 0, len(s.causal))
	for _, cp := range s.causal {
		procs = append(procs, cp)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].pid < procs[j].pid })
	for _, cp := range procs {
		name := "trace"
		if t, ok := cp.args["trace"].(string); ok {
			name = "trace " + t
		}
		args := make(map[string]any, len(cp.args)+1)
		for k, v := range cp.args {
			args[k] = v
		}
		args["name"] = name
		events = append(events, Event{
			Name: "process_name", Phase: "M", Pid: cp.pid, Args: args,
		})
		ctids := make([]int, 0, len(cp.tracks))
		for tid := range cp.tracks {
			ctids = append(ctids, tid)
		}
		sort.Ints(ctids)
		for _, tid := range ctids {
			events = append(events, Event{
				Name: "thread_name", Phase: "M", Pid: cp.pid, Tid: tid,
				Args: map[string]any{"name": cp.tracks[tid]},
			})
		}
	}
	events = append(events, s.events...)
	return &Trace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"runId": s.runID},
	}
}

// WriteTo encodes the trace to w and implements io.WriterTo. The sink
// remains usable afterwards (later writes include earlier events).
func (s *Sink) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	err := Encode(cw, s.Snapshot())
	return cw.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// FileName returns the conventional trace file name for a run ID, with
// every path-hostile byte sanitized: "<runID>.trace.json".
func FileName(runID string) string {
	b := make([]byte, 0, len(runID))
	for i := 0; i < len(runID); i++ {
		c := runID[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	if len(b) == 0 {
		b = append(b, '_')
	}
	return fmt.Sprintf("%s.trace.json", b)
}
