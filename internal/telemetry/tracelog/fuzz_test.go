package tracelog

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// FuzzEncode drives the trace-event encoder with adversarial event
// contents — malformed metric names, NaN/Inf timestamps, durations and
// values — and requires the output to always re-parse as JSON.
func FuzzEncode(f *testing.F) {
	f.Add("sim.cell_ns", "X", 1.5, 2.5, int64(3), "run-1")
	f.Add("", "i", math.NaN(), math.Inf(1), int64(-1), "")
	f.Add("evil\"name\\\x00\xff", "C", math.Inf(-1), -0.0, int64(1<<62), "run\n2")
	f.Add("netrun.link.999999999999.ack_ns", "M", 1e308, 1e308, int64(0), "s")
	f.Fuzz(func(t *testing.T, name, phase string, ts, dur float64, delta int64, runID string) {
		tr := &Trace{
			TraceEvents: []Event{{
				Name: name, Phase: phase, Ts: ts, Dur: dur, Pid: 1, Tid: 7,
				Args: map[string]any{"value": dur, "delta": delta, "runId": runID},
			}},
			OtherData: map[string]string{"runId": runID},
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatalf("Encode failed: %v", err)
		}
		var back Trace
		if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
			t.Fatalf("encoded trace does not re-parse: %v\n%s", err, buf.Bytes())
		}
		if len(back.TraceEvents) != 1 {
			t.Fatalf("round trip lost events: %d", len(back.TraceEvents))
		}
	})
}

// FuzzSink drives a live Sink with arbitrary metric activity and requires
// WriteTo to always produce parseable JSON.
func FuzzSink(f *testing.F) {
	f.Add("blackboard.bits", int64(5), "sim.cell_ns", 100.0)
	f.Add("netrun.link.3.faults.drop", int64(1), "netrun.link.3.ack_ns", math.Inf(1))
	f.Add("", int64(0), "", math.NaN())
	f.Fuzz(func(t *testing.T, countName string, delta int64, obsName string, value float64) {
		s := New("fuzz-run", nil)
		s.Count(countName, delta)
		s.Observe(obsName, value)
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo failed: %v", err)
		}
		var back Trace
		if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
			t.Fatalf("sink trace does not re-parse: %v\n%s", err, buf.Bytes())
		}
	})
}
