package tracelog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"broadcastic/internal/blackboard"
	"broadcastic/internal/disj"
	"broadcastic/internal/faults"
	"broadcastic/internal/netrun"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/causal"
)

func decodeTrace(t *testing.T, b []byte) *Trace {
	t.Helper()
	var tr Trace
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return &tr
}

func TestSinkSpanAndCounterEvents(t *testing.T) {
	s := New("run-1", nil)
	s.Count("blackboard.bits", 10)
	s.Count("blackboard.bits", 5)
	s.Observe("sim.cell_ns", 2e6) // a 2ms span
	s.Count("netrun.link.2.faults.drop", 1)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, buf.Bytes())
	if tr.OtherData["runId"] != "run-1" {
		t.Errorf("runId = %q, want run-1", tr.OtherData["runId"])
	}
	var sawSpan, sawCounter, sawInstant, sawPlayerTrack bool
	for _, ev := range tr.TraceEvents {
		switch {
		case ev.Phase == "X" && ev.Name == "sim.cell_ns":
			sawSpan = true
			if ev.Dur < 1900 || ev.Dur > 2100 {
				t.Errorf("span dur = %v µs, want ≈2000", ev.Dur)
			}
		case ev.Phase == "C" && ev.Name == "blackboard.bits":
			sawCounter = true
		case ev.Phase == "i" && ev.Name == "netrun.link.2.faults.drop":
			sawInstant = true
			if ev.Tid != playerTidBase+2 {
				t.Errorf("fault instant on tid %d, want %d", ev.Tid, playerTidBase+2)
			}
		case ev.Phase == "M" && ev.Name == "thread_name":
			if name, _ := ev.Args["name"].(string); name == "player 2" {
				sawPlayerTrack = true
			}
		}
	}
	if !sawSpan || !sawCounter || !sawInstant || !sawPlayerTrack {
		t.Fatalf("missing events: span=%v counter=%v instant=%v playerTrack=%v",
			sawSpan, sawCounter, sawInstant, sawPlayerTrack)
	}
	// The last blackboard.bits counter event must carry the cumulative 15.
	var last float64
	for _, ev := range tr.TraceEvents {
		if ev.Phase == "C" && ev.Name == "blackboard.bits" {
			last, _ = ev.Args["value"].(float64)
		}
	}
	if last != 15 {
		t.Errorf("cumulative counter = %v, want 15", last)
	}
}

func TestSinkTeesToNext(t *testing.T) {
	col := telemetry.NewCollector()
	s := New("tee", col)
	s.Count("blackboard.bits", 7)
	s.Observe("sim.cell_ns", 42)
	if got := col.Counter("blackboard.bits"); got != 7 {
		t.Errorf("teed counter = %d, want 7", got)
	}
	if got := col.Hist("sim.cell_ns").Count; got != 1 {
		t.Errorf("teed histogram count = %d, want 1", got)
	}
}

// TestNetrunE20Trace is the acceptance pin for the tentpole: an E20-style
// netrun execution (optimal DISJ protocol under a drop/dup/corrupt fault
// mix) traced through a Sink yields parseable Chrome trace JSON containing
// spans for the coordinator, spans for every player, and one instant event
// per injected fault — while the transcript stays bit-identical to the
// sequential reference.
func TestNetrunE20Trace(t *testing.T) {
	const n, k = 256, 6
	inst, err := disj.GenerateFromMuN(rng.New(20), n, k)
	if err != nil {
		t.Fatal(err)
	}
	refProto, err := disj.NewOptimalProtocol(inst, disj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := blackboard.Run(refProto.Scheduler(), refProto.Players(), nil, refProto.Limits())
	if err != nil {
		t.Fatal(err)
	}

	plan, err := faults.Parse("drop=0.05,dup=0.05,corrupt=0.02")
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector()
	sink := New("E20-seed20", col)
	proto, err := disj.NewOptimalProtocol(inst, disj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := netrun.Run(proto.Scheduler(), proto.Players(), nil, netrun.Config{
		Faults:   plan,
		Seed:     99,
		Timeout:  time.Second,
		Limits:   proto.Limits(),
		Recorder: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Board.TranscriptKey() != refRes.Board.TranscriptKey() {
		t.Fatal("traced networked run diverged from sequential reference")
	}

	var buf bytes.Buffer
	if _, err := sink.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, buf.Bytes())

	coordSpans := 0
	playerSpans := make(map[int]int)
	faultInstants := 0
	for _, ev := range tr.TraceEvents {
		switch {
		case ev.Phase == "X" && ev.Name == telemetry.NetrunTurnNs:
			coordSpans++
		case ev.Phase == "X" && strings.HasPrefix(ev.Name, telemetry.NetrunLink+".") && strings.HasSuffix(ev.Name, ".ack_ns"):
			playerSpans[ev.Tid-playerTidBase]++
		case ev.Phase == "i" && ev.Name == telemetry.NetrunFaults:
			faultInstants++
		}
	}
	if coordSpans == 0 {
		t.Error("no coordinator turn spans in trace")
	}
	for i := 0; i < k; i++ {
		if playerSpans[i] == 0 {
			t.Errorf("no spans for player %d in trace", i)
		}
	}
	injected := res.Stats.Faults
	total := int(injected.Drops + injected.Duplicates + injected.Corruptions + injected.Delays)
	if total == 0 {
		t.Fatal("fault mix injected nothing; the trace assertion is vacuous")
	}
	if faultInstants != total {
		t.Errorf("trace has %d fault instants, stats report %d injected faults", faultInstants, total)
	}
	// The teed collector agrees with the wire stats — the same invariant
	// the telemetry conformance tests pin for a bare Collector.
	if got := col.Counter(telemetry.NetrunWireBits); got != res.Stats.WireBits {
		t.Errorf("teed collector wire bits %d != stats %d", got, res.Stats.WireBits)
	}
}

func TestFileName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"E20-seed1", "E20-seed1.trace.json"},
		{"a/b c", "a_b_c.trace.json"},
		{"", "_.trace.json"},
	}
	for _, c := range cases {
		if got := FileName(c.in); got != c.want {
			t.Errorf("FileName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSnapshotDeterministicForEqualRuns(t *testing.T) {
	build := func() []byte {
		s := New("same-run", nil)
		s.Count("blackboard.bits", 3)
		s.Count("netrun.link.1.faults.drop", 1)
		tr := s.Snapshot()
		// Zero the wall-clock fields: determinism is about structure
		// (event order, tracks, names, values), not timestamps.
		for i := range tr.TraceEvents {
			tr.TraceEvents[i].Ts = 0
			tr.TraceEvents[i].Dur = 0
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := build(), build(); !bytes.Equal(a, b) {
		t.Fatalf("equal runs produced different traces:\n%s\n%s", a, b)
	}
}

func ExampleFileName() {
	fmt.Println(FileName("E20-seed1"))
	// Output: E20-seed1.trace.json
}

// TestSinkCausalEvents pins the causal tee: records arriving via
// causal.EventSink render each trace as its own Perfetto process — named
// "trace <id>" and carrying the root record's identity attrs — with spans
// as complete events, instants as instant events, and jobs-layer records
// on a dedicated "jobs" thread.
func TestSinkCausalEvents(t *testing.T) {
	s := New("causal-run", nil)
	fr := causal.NewRecorder(0)
	c1 := fr.StartTraceSink(s, causal.JobAdmission,
		causal.String("tenant", "acme"), causal.String("experiment", "E20"))
	sp := c1.StartSpan(causal.JobExecute, causal.String("job", "j000001"))
	sp.Context().Fault(causal.NetrunFault, causal.String("fault", "drop"))
	sp.End()
	c2 := fr.StartTraceSink(s, causal.JobAdmission, causal.String("tenant", "bee"))
	c2.Event(causal.JobDispatch)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, buf.Bytes())

	pids := map[string]int{} // trace id -> pid
	for _, ev := range tr.TraceEvents {
		if ev.Phase == "M" && ev.Name == "process_name" {
			id, _ := ev.Args["trace"].(string)
			pids[id] = ev.Pid
			if name, _ := ev.Args["name"].(string); name != "trace "+id {
				t.Errorf("process name = %q, want %q", name, "trace "+id)
			}
			if id == c1.Trace().String() {
				// The root's identity attrs promote onto the process.
				if ev.Args["tenant"] != "acme" || ev.Args["experiment"] != "E20" {
					t.Errorf("process args = %v, want tenant/experiment", ev.Args)
				}
			}
		}
	}
	if len(pids) != 2 || pids[c1.Trace().String()] == pids[c2.Trace().String()] {
		t.Fatalf("causal processes = %v, want two distinct pids", pids)
	}
	if p := pids[c1.Trace().String()]; p < causalPidBase {
		t.Errorf("causal pid %d below causalPidBase", p)
	}

	var sawExec, sawFault, sawDispatch, sawJobsThread bool
	for _, ev := range tr.TraceEvents {
		switch {
		case ev.Phase == "X" && ev.Name == causal.JobExecute:
			sawExec = true
			if ev.Pid != pids[c1.Trace().String()] {
				t.Errorf("execute span on pid %d, want %d", ev.Pid, pids[c1.Trace().String()])
			}
			if ev.Args["job"] != "j000001" || ev.Args["span"] == nil {
				t.Errorf("execute span args = %v", ev.Args)
			}
		case ev.Phase == "i" && ev.Name == causal.NetrunFault:
			sawFault = true
			if ev.Args["fault"] != true {
				t.Errorf("fault instant args = %v", ev.Args)
			}
			if ev.Args["parent"] == nil {
				t.Error("fault instant lost its parent span")
			}
		case ev.Phase == "i" && ev.Name == causal.JobDispatch:
			sawDispatch = true
			if ev.Pid != pids[c2.Trace().String()] {
				t.Errorf("dispatch on pid %d, want %d", ev.Pid, pids[c2.Trace().String()])
			}
		case ev.Phase == "M" && ev.Name == "thread_name" && ev.Tid == tidJobs:
			if name, _ := ev.Args["name"].(string); name == "jobs" {
				sawJobsThread = true
			}
		}
	}
	if !sawExec || !sawFault || !sawDispatch || !sawJobsThread {
		t.Fatalf("missing causal events: exec=%v fault=%v dispatch=%v jobsThread=%v",
			sawExec, sawFault, sawDispatch, sawJobsThread)
	}
}
