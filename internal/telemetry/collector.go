package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Collector is the standard Recorder: thread-safe, in-memory, and cheap
// enough to leave on for whole experiment suites. Counters are exact
// int64 sums; histograms keep streaming moments (count/sum/min/max) plus
// power-of-two magnitude buckets, so a snapshot reconstructs means and
// coarse distributions without storing samples.
type Collector struct {
	mu     sync.Mutex
	counts map[string]int64
	gauges map[string]float64
	hists  map[string]*histogram
}

// histBuckets spans 2^0 .. 2^62 magnitudes; bucket i counts samples with
// magnitude in [2^i, 2^(i+1)). Bucket 0 also absorbs everything below 1
// (including negatives, which the instrumented layers never emit).
const histBuckets = 63

type histogram struct {
	count    int64
	sum      float64
	min, max float64
	buckets  [histBuckets]int64
}

func (h *histogram) observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	// Bucket selection must never index out of range, even for values the
	// instrumented layers never emit: converting NaN or ±Inf to int is
	// platform-defined in Go (a huge negative on amd64), so both are pinned
	// explicitly — NaN joins the sub-1 bucket, +Inf the top one.
	i := 0
	if v >= 1 {
		if math.IsInf(v, 1) {
			i = histBuckets - 1
		} else {
			i = int(math.Log2(v))
			if i >= histBuckets {
				i = histBuckets - 1
			}
			if i < 0 {
				i = 0
			}
		}
	}
	h.buckets[i]++
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{
		counts: make(map[string]int64),
		gauges: make(map[string]float64),
		hists:  make(map[string]*histogram),
	}
}

// Count implements Recorder.
func (c *Collector) Count(name string, delta int64) {
	c.mu.Lock()
	c.counts[name] += delta
	c.mu.Unlock()
}

// Observe implements Recorder.
func (c *Collector) Observe(name string, value float64) {
	c.mu.Lock()
	h := c.hists[name]
	if h == nil {
		h = &histogram{}
		c.hists[name] = h
	}
	h.observe(value)
	c.mu.Unlock()
}

// Gauge implements GaugeRecorder: the named gauge is set to value,
// overwriting any previous level.
func (c *Collector) Gauge(name string, value float64) {
	c.mu.Lock()
	c.gauges[name] = value
	c.mu.Unlock()
}

var (
	_ Recorder      = (*Collector)(nil)
	_ GaugeRecorder = (*Collector)(nil)
)

// Counter returns the current value of a counter (0 if never written).
func (c *Collector) Counter(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// GaugeValue returns the named gauge's current level and whether it was
// ever set.
func (c *Collector) GaugeValue(name string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.gauges[name]
	return v, ok
}

// HistSummary is a histogram snapshot.
type HistSummary struct {
	Count    int64
	Sum      float64
	Min, Max float64
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (h HistSummary) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Hist returns a snapshot of the named histogram (zero value if never
// written).
func (c *Collector) Hist(name string) HistSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.hists[name]
	if h == nil {
		return HistSummary{}
	}
	return HistSummary{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
}

// Snapshot flattens the collector into a name -> value map: counters and
// gauges as exact values, histograms as their means under "<name>" with
// "<name>.count" alongside. The map is detached from the collector.
func (c *Collector) Snapshot() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.counts)+len(c.gauges)+2*len(c.hists))
	for name, v := range c.counts {
		out[name] = float64(v)
	}
	for name, v := range c.gauges {
		out[name] = v
	}
	for name, h := range c.hists {
		if h.count == 0 {
			continue
		}
		out[name] = h.sum / float64(h.count)
		out[name+".count"] = float64(h.count)
	}
	return out
}

// HistBucketCount is the number of power-of-two histogram buckets a
// Collector keeps per histogram (see the histBuckets comment).
const HistBucketCount = histBuckets

// HistBucketUpperBound returns the exclusive upper edge of bucket i:
// bucket i counts samples in [2^i, 2^(i+1)), with bucket 0 additionally
// absorbing everything below 1. Exposition formats that want cumulative
// (Prometheus-style) buckets treat the returned value as the "le" bound.
func HistBucketUpperBound(i int) float64 {
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return float64(uint64(1) << uint(i+1))
}

// CounterPoint is one counter in an Export.
type CounterPoint struct {
	Name  string
	Value int64
}

// GaugePoint is one gauge in an Export.
type GaugePoint struct {
	Name  string
	Value float64
}

// HistogramPoint is one histogram in an Export: streaming moments plus the
// raw (non-cumulative) power-of-two bucket counts.
type HistogramPoint struct {
	Name     string
	Count    int64
	Sum      float64
	Min, Max float64
	Buckets  [HistBucketCount]int64
}

// Summary converts the point to its HistSummary view.
func (h HistogramPoint) Summary() HistSummary {
	return HistSummary{Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max}
}

// Export is a full-fidelity, detached snapshot of a Collector. Both slices
// are sorted by name, so consumers (the Prometheus exposition writer, test
// goldens, dashboards) render deterministically from identical states.
type Export struct {
	Counters   []CounterPoint
	Gauges     []GaugePoint
	Histograms []HistogramPoint
}

// Export snapshots every counter, gauge and histogram in sorted name
// order. The result is detached: later recording does not mutate it.
func (c *Collector) Export() Export {
	c.mu.Lock()
	ex := Export{
		Counters:   make([]CounterPoint, 0, len(c.counts)),
		Gauges:     make([]GaugePoint, 0, len(c.gauges)),
		Histograms: make([]HistogramPoint, 0, len(c.hists)),
	}
	for name, v := range c.counts {
		ex.Counters = append(ex.Counters, CounterPoint{Name: name, Value: v})
	}
	for name, v := range c.gauges {
		ex.Gauges = append(ex.Gauges, GaugePoint{Name: name, Value: v})
	}
	for name, h := range c.hists {
		hp := HistogramPoint{Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		hp.Buckets = h.buckets
		ex.Histograms = append(ex.Histograms, hp)
	}
	c.mu.Unlock()
	sort.Slice(ex.Counters, func(i, j int) bool { return ex.Counters[i].Name < ex.Counters[j].Name })
	sort.Slice(ex.Gauges, func(i, j int) bool { return ex.Gauges[i].Name < ex.Gauges[j].Name })
	sort.Slice(ex.Histograms, func(i, j int) bool { return ex.Histograms[i].Name < ex.Histograms[j].Name })
	return ex
}

// Reset clears all counters, gauges and histograms.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.counts = make(map[string]int64)
	c.gauges = make(map[string]float64)
	c.hists = make(map[string]*histogram)
	c.mu.Unlock()
}

// WriteTo renders a sorted human-readable dump — counters, then gauges,
// then histograms with count/mean/min/max — and implements io.WriterTo.
func (c *Collector) WriteTo(w io.Writer) (int64, error) {
	c.mu.Lock()
	counts := make(map[string]int64, len(c.counts))
	for k, v := range c.counts {
		counts[k] = v
	}
	gauges := make(map[string]float64, len(c.gauges))
	for k, v := range c.gauges {
		gauges[k] = v
	}
	hists := make(map[string]HistSummary, len(c.hists))
	for k, h := range c.hists {
		hists[k] = HistSummary{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	}
	c.mu.Unlock()

	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	names := make([]string, 0, len(counts))
	for k := range counts {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if err := emit("%-40s %d\n", k, counts[k]); err != nil {
			return total, err
		}
	}
	names = names[:0]
	for k := range gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if err := emit("%-40s gauge=%g\n", k, gauges[k]); err != nil {
			return total, err
		}
	}
	names = names[:0]
	for k := range hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := hists[k]
		if err := emit("%-40s n=%d mean=%.1f min=%.1f max=%.1f\n", k, h.Count, h.Mean(), h.Min, h.Max); err != nil {
			return total, err
		}
	}
	return total, nil
}
