package telemetry

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogConfig is the opt-in structured logging shared by every CLI: register
// its flags with AddFlags, then build the logger with Logger. Logging is
// off by default and always writes to the diagnostic stream (stderr), so
// the deterministic stdout artifacts — tables, transcripts,
// EXPERIMENTS_RAW.txt — are byte-identical with any logging level.
type LogConfig struct {
	// Level is "off", "error", "warn", "info" or "debug".
	Level string
	// Format is "text" or "json".
	Format string
}

// AddFlags registers -log and -logformat on fs.
func (l *LogConfig) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&l.Level, "log", "off", "structured log level on stderr: off, error, warn, info or debug")
	fs.StringVar(&l.Format, "logformat", "text", "structured log encoding: text or json")
}

// Logger builds the configured *slog.Logger writing to w. Level "off"
// yields a logger whose handler rejects every record before formatting,
// so disabled logging costs one Enabled check per log call site.
func (l *LogConfig) Logger(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(l.Level) {
	case "", "off", "none":
		return slog.New(discardHandler{}), nil
	case "error":
		level = slog.LevelError
	case "warn":
		level = slog.LevelWarn
	case "info":
		level = slog.LevelInfo
	case "debug":
		level = slog.LevelDebug
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q", l.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(l.Format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q", l.Format)
	}
}

// discardHandler is slog's /dev/null: Enabled is false for every level, so
// records are dropped before any attribute is formatted.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
