// Package telemetry is the repository's zero-dependency instrumentation
// layer: named counters, histograms and span-style timings that the three
// execution layers (the sequential blackboard runtime, the concurrent
// networked runtime, and the experiment harness) report into a single
// Recorder.
//
// The paper this repository reproduces is about *accounting* — where the
// bits of a protocol go, per player and per round (Braverman & Oshman,
// PODC'15) — and the related message-passing literature accounts per link.
// This package makes that accounting observable at runtime without
// perturbing it: recording is strictly opt-in, every instrumented call
// site goes through the nil-safe package helpers below, and a nil Recorder
// costs exactly one predictable branch. The conformance suites pin that an
// enabled Recorder changes no transcript, table or experiment output bit.
//
// Metric names are dot-separated paths (e.g. "blackboard.bits",
// "netrun.link.3.wire_bits"); per-entity metrics embed the entity index so
// a flat snapshot still reads as a breakdown. The canonical names emitted
// by the instrumented layers are declared in names.go.
package telemetry

import (
	"strconv"
	"strings"
	"time"
)

// Recorder collects instrumentation events. Implementations must be safe
// for concurrent use: the networked runtime records from the coordinator
// and every player goroutine, and the experiment engine records from every
// pool worker.
//
// All call sites in this repository go through the nil-safe package
// helpers (Count, Observe, StartSpan), so a nil Recorder disables
// collection at the cost of one branch per event.
type Recorder interface {
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Observe adds one sample to the named histogram.
	Observe(name string, value float64)
}

// GaugeRecorder is the optional gauge extension of Recorder: a gauge is a
// point-in-time level (queue depth, cache hit ratio, resident bytes) that
// Set overwrites rather than accumulates. Recorders that do not implement
// it simply never see gauge values — the package helper type-asserts, so
// existing Recorder implementations stay valid.
type GaugeRecorder interface {
	Recorder
	// Gauge sets the named gauge to value.
	Gauge(name string, value float64)
}

// Count adds delta to the named counter, or does nothing when r is nil.
func Count(r Recorder, name string, delta int64) {
	if r != nil {
		r.Count(name, delta)
	}
}

// Gauge sets the named gauge when r implements GaugeRecorder, and does
// nothing otherwise (including for nil r).
func Gauge(r Recorder, name string, value float64) {
	if g, ok := r.(GaugeRecorder); ok {
		g.Gauge(name, value)
	}
}

// Observe adds one histogram sample, or does nothing when r is nil.
func Observe(r Recorder, name string, value float64) {
	if r != nil {
		r.Observe(name, value)
	}
}

// Multi fans every event out to all non-nil recorders, letting one run
// feed several sinks at once (e.g. an aggregating Collector plus a
// tracelog run trace). It flattens trivial cases so the hot-path helpers
// keep their single-branch disabled cost: no live recorders yields nil,
// exactly one yields that recorder unwrapped.
func Multi(rs ...Recorder) Recorder {
	live := make(multi, 0, len(rs))
	for _, r := range rs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}

type multi []Recorder

func (m multi) Count(name string, delta int64) {
	for _, r := range m {
		r.Count(name, delta)
	}
}

func (m multi) Observe(name string, value float64) {
	for _, r := range m {
		r.Observe(name, value)
	}
}

// Gauge forwards to every member that implements GaugeRecorder, so a
// Multi chain never swallows gauge values on the way to a Collector.
func (m multi) Gauge(name string, value float64) {
	for _, r := range m {
		if g, ok := r.(GaugeRecorder); ok {
			g.Gauge(name, value)
		}
	}
}

// Span is an in-flight timed region started by StartSpan. The zero Span
// (from a nil Recorder) is inert: End returns immediately.
type Span struct {
	rec   Recorder
	name  string
	start time.Time
}

// StartSpan begins a timed region that End reports as a histogram sample
// of nanoseconds under the span's name. With a nil Recorder it returns the
// inert zero Span without reading the clock.
func StartSpan(r Recorder, name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{rec: r, name: name, start: time.Now()}
}

// End closes the span, recording its duration in nanoseconds.
func (s Span) End() {
	if s.rec == nil {
		return
	}
	s.rec.Observe(s.name, float64(time.Since(s.start)))
}

// Indexed renders a per-entity metric name, e.g. Indexed("netrun.link",
// 3, "wire_bits") -> "netrun.link.3.wire_bits". Only recording paths call
// it, so the formatting cost is paid exclusively when a Recorder is
// installed.
func Indexed(prefix string, index int, field string) string {
	return prefix + "." + strconv.Itoa(index) + "." + field
}

// Labeled renders a labeled metric name in the canonical encoded form the
// promtext writer parses back into Prometheus label sets:
//
//	Labeled("jobs.queue_depth", "tenant", "t1") -> `jobs.queue_depth{tenant="t1"}`
//
// kv is key/value pairs; pairs are sorted by key so equal label sets
// always encode identically, and values are escaped (backslash, quote,
// newline) so any tenant string round-trips. A trailing odd key is
// ignored. Callers cache the result per entity — like Indexed, this is a
// recording-path helper.
func Labeled(name string, kv ...string) string {
	n := len(kv) / 2 * 2
	if n == 0 {
		return name
	}
	// Insertion-sort the pairs by key; label sets are tiny.
	pairs := make([][2]string, 0, n/2)
	for i := 0; i < n; i += 2 {
		pairs = append(pairs, [2]string{kv[i], kv[i+1]})
	}
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j][0] < pairs[j-1][0]; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p[0])
		b.WriteString(`="`)
		for k := 0; k < len(p[1]); k++ {
			switch c := p[1][k]; c {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteByte(c)
			}
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}
