package telemetry

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiles is the opt-in pprof/trace capture shared by every CLI. Register
// its flags with AddFlags, call Start after flag parsing, and defer the
// returned stop function; with no flags set both calls are no-ops.
type Profiles struct {
	CPUProfile string
	MemProfile string
	TraceFile  string
}

// AddFlags registers -cpuprofile, -memprofile and -tracefile on fs.
func (p *Profiles) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&p.TraceFile, "tracefile", "", "write a runtime execution trace to this file")
}

// Start begins the requested captures. The returned stop function flushes
// and closes them (writing the heap profile last, after a GC so the
// snapshot reflects live memory) and must be called exactly once; it
// returns the first error encountered.
func (p *Profiles) Start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
	}
	if p.CPUProfile != "" {
		cpuFile, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("telemetry: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("telemetry: cpuprofile: %w", err)
		}
	}
	if p.TraceFile != "" {
		traceFile, err = os.Create(p.TraceFile)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("telemetry: tracefile: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("telemetry: tracefile: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if p.MemProfile != "" {
			f, err := os.Create(p.MemProfile)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("telemetry: memprofile: %w", err)
				}
			} else {
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("telemetry: memprofile: %w", err)
				}
				if err := f.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		return firstErr
	}, nil
}
