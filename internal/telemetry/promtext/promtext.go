// Package promtext renders telemetry.Collector state in the Prometheus
// text exposition format (version 0.0.4) with no dependency beyond the
// standard library. It is the serving half of the repository's accounting
// story: the paper tracks where every protocol bit goes, the Collector
// adds them up, and this writer turns a snapshot into something a stock
// Prometheus server (or curl) can scrape at /metrics.
//
// Mapping:
//
//   - Collector counters become Prometheus counters under their sanitized
//     dot-path name: "blackboard.bits" -> "blackboard_bits",
//     "netrun.link.3.wire_bits" -> "netrun_link_3_wire_bits".
//   - Collector histograms become Prometheus histograms: cumulative
//     power-of-two "_bucket{le=...}" series (from the Collector's magnitude
//     buckets), plus "_sum" and "_count". Min and max, which Prometheus
//     histograms do not carry, are exposed as "<name>_min"/"<name>_max"
//     gauges.
//
// Sanitization is total: any input name yields a valid metric name, and
// families whose sanitized series names would collide with an
// already-written family are skipped (deterministically — input is
// processed in the sorted order Export guarantees), so the output is
// always a parseable exposition even for adversarial metric names. The
// fuzz target pins this.
package promtext

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"broadcastic/internal/telemetry"
)

// SanitizeName maps an arbitrary metric name to a valid Prometheus metric
// name: every byte outside [a-zA-Z0-9_:] becomes '_', a leading digit is
// prefixed with '_', and the empty name becomes "_".
func SanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	b := make([]byte, 0, len(name)+1)
	if name[0] >= '0' && name[0] <= '9' {
		b = append(b, '_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// formatValue renders a sample value the way the exposition format spells
// special floats: "NaN", "+Inf", "-Inf", else Go's shortest representation.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// writer tracks emitted series names so duplicate families (distinct
// dot-paths that sanitize to the same name) are skipped, never emitted
// twice — duplicate series would make the exposition invalid.
type writer struct {
	w       io.Writer
	written int64
	series  map[string]bool
}

func (wr *writer) printf(format string, args ...any) error {
	n, err := fmt.Fprintf(wr.w, format, args...)
	wr.written += int64(n)
	return err
}

// claim reserves the series names; false means at least one is taken.
func (wr *writer) claim(names ...string) bool {
	for _, n := range names {
		if wr.series[n] {
			return false
		}
	}
	for _, n := range names {
		wr.series[n] = true
	}
	return true
}

// Write renders ex as one exposition document. Counters first, then
// histograms, each in the (sorted) order Export provides; the return value
// is the byte count written.
func Write(w io.Writer, ex telemetry.Export) (int64, error) {
	wr := &writer{w: w, series: make(map[string]bool)}
	for _, c := range ex.Counters {
		name := SanitizeName(c.Name)
		if !wr.claim(name) {
			continue
		}
		if err := wr.printf("# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return wr.written, err
		}
	}
	for _, h := range ex.Histograms {
		if err := writeHistogram(wr, h); err != nil {
			return wr.written, err
		}
	}
	return wr.written, nil
}

func writeHistogram(wr *writer, h telemetry.HistogramPoint) error {
	name := SanitizeName(h.Name)
	minName, maxName := name+"_min", name+"_max"
	// A histogram family owns its base name plus the generated series.
	if !wr.claim(name, name+"_bucket", name+"_sum", name+"_count", minName, maxName) {
		return nil
	}
	if err := wr.printf("# TYPE %s histogram\n", name); err != nil {
		return err
	}
	// Cumulative buckets up to the highest populated magnitude; +Inf always
	// closes the family (required by the format). Trailing empty buckets
	// are elided to keep scrapes of sparse histograms compact.
	top := 0
	for i := 0; i < telemetry.HistBucketCount; i++ {
		if h.Buckets[i] > 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += h.Buckets[i]
		le := formatValue(telemetry.HistBucketUpperBound(i))
		if err := wr.printf("%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if err := wr.printf("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	if err := wr.printf("%s_sum %s\n%s_count %d\n", name, formatValue(h.Sum), name, h.Count); err != nil {
		return err
	}
	if err := wr.printf("# TYPE %s gauge\n%s %s\n", minName, minName, formatValue(h.Min)); err != nil {
		return err
	}
	return wr.printf("# TYPE %s gauge\n%s %s\n", maxName, maxName, formatValue(h.Max))
}

// WriteCollector is Write over c.Export() — the one-call scrape path.
func WriteCollector(w io.Writer, c *telemetry.Collector) (int64, error) {
	return Write(w, c.Export())
}
