// Package promtext renders telemetry.Collector state in the Prometheus
// text exposition format (version 0.0.4) with no dependency beyond the
// standard library. It is the serving half of the repository's accounting
// story: the paper tracks where every protocol bit goes, the Collector
// adds them up, and this writer turns a snapshot into something a stock
// Prometheus server (or curl) can scrape at /metrics.
//
// Mapping:
//
//   - Collector counters become Prometheus counters under their sanitized
//     dot-path name: "blackboard.bits" -> "blackboard_bits",
//     "netrun.link.3.wire_bits" -> "netrun_link_3_wire_bits".
//   - Collector gauges become Prometheus gauges the same way.
//   - Collector histograms become Prometheus histograms: cumulative
//     power-of-two "_bucket{le=...}" series (from the Collector's magnitude
//     buckets), plus "_sum" and "_count". Min and max, which Prometheus
//     histograms do not carry, are exposed as "<name>_min"/"<name>_max"
//     gauges.
//   - Names carrying an encoded label block (telemetry.Labeled:
//     `jobs.queue_depth{tenant="t1"}`) become labeled series of their base
//     family: `jobs_queue_depth{tenant="t1"}`. All series of a family
//     render consecutively under one TYPE line, as the format requires;
//     histogram label sets merge with the generated "le" label (a
//     user-supplied "le" key is renamed "le_" so bucket lines stay valid).
//
// Sanitization is total: any input name yields a valid exposition. A name
// whose label block does not parse back (unbalanced braces, bad escapes,
// duplicate keys) falls back to whole-name sanitization, and families
// whose sanitized names would collide with an already-written family are
// skipped (deterministically — input is processed in the sorted order
// Export guarantees). The fuzz target pins this.
package promtext

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"broadcastic/internal/telemetry"
)

// SanitizeName maps an arbitrary metric name to a valid Prometheus metric
// name: every byte outside [a-zA-Z0-9_:] becomes '_', a leading digit is
// prefixed with '_', and the empty name becomes "_".
func SanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	b := make([]byte, 0, len(name)+1)
	if name[0] >= '0' && name[0] <= '9' {
		b = append(b, '_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// sanitizeLabelKey maps an arbitrary label key to a valid Prometheus
// label name ([a-zA-Z_][a-zA-Z0-9_]* — no colon, unlike metric names).
func sanitizeLabelKey(key string) string {
	if key == "" {
		return "_"
	}
	b := make([]byte, 0, len(key)+1)
	if key[0] >= '0' && key[0] <= '9' {
		b = append(b, '_')
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// label is one parsed label pair: sanitized key, raw (unescaped) value.
type label struct {
	key, val string
}

// parseName splits a metric name into its base and an optional encoded
// label block (the telemetry.Labeled form). ok=false means the name
// contains a '{' but no well-formed trailing label block — callers then
// fall back to sanitizing the whole name. Keys come back sanitized and
// duplicate-free; values come back unescaped.
func parseName(name string) (base string, labels []label, ok bool) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, nil, true
	}
	if name[len(name)-1] != '}' {
		return "", nil, false
	}
	base = name[:i]
	body := name[i+1 : len(name)-1]
	if body == "" {
		return base, nil, true
	}
	seen := make(map[string]bool, 2)
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return "", nil, false
		}
		key := sanitizeLabelKey(body[:eq])
		if seen[key] {
			return "", nil, false
		}
		seen[key] = true
		// Scan the quoted value, unescaping \\ \" \n; any other escape or
		// an unterminated quote invalidates the block.
		var val strings.Builder
		j := eq + 2
		closed := false
	scan:
		for j < len(body) {
			switch c := body[j]; c {
			case '"':
				closed = true
				j++
				break scan
			case '\\':
				if j+1 >= len(body) {
					return "", nil, false
				}
				switch body[j+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", nil, false
				}
				j += 2
			default:
				val.WriteByte(c)
				j++
			}
		}
		if !closed {
			return "", nil, false
		}
		labels = append(labels, label{key: key, val: val.String()})
		body = body[j:]
		if body != "" {
			if body[0] != ',' || len(body) == 1 {
				return "", nil, false
			}
			body = body[1:]
		}
	}
	return base, labels, true
}

// renderLabels renders a label block ({k="v",...}) with values escaped,
// or "" for an empty set. extra appends generated labels (the histogram
// "le" bound) after the parsed ones.
func renderLabels(labels []label, extra ...label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	emit := func(l label) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.key)
		b.WriteString(`="`)
		for i := 0; i < len(l.val); i++ {
			switch c := l.val[i]; c {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteByte(c)
			}
		}
		b.WriteByte('"')
	}
	for _, l := range labels {
		emit(l)
	}
	for _, l := range extra {
		emit(l)
	}
	b.WriteByte('}')
	return b.String()
}

// splitSeries resolves a raw metric name into its family name and parsed
// labels. forHistogram renames a user "le" key to "le_" so the generated
// bucket label never collides.
func splitSeries(raw string, forHistogram bool) (family string, labels []label) {
	base, labels, ok := parseName(raw)
	if !ok {
		return SanitizeName(raw), nil
	}
	if forHistogram {
		for i := range labels {
			if labels[i].key == "le" {
				labels[i].key = "le_"
			}
		}
	}
	return SanitizeName(base), labels
}

// formatValue renders a sample value the way the exposition format spells
// special floats: "NaN", "+Inf", "-Inf", else Go's shortest representation.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// writer tracks emitted family names so duplicate families (distinct
// dot-paths that sanitize to the same name) are skipped, never emitted
// twice — duplicate series would make the exposition invalid.
type writer struct {
	w       io.Writer
	written int64
	series  map[string]bool
}

func (wr *writer) printf(format string, args ...any) error {
	n, err := fmt.Fprintf(wr.w, format, args...)
	wr.written += int64(n)
	return err
}

// claim reserves the family names; false means at least one is taken.
func (wr *writer) claim(names ...string) bool {
	for _, n := range names {
		if wr.series[n] {
			return false
		}
	}
	for _, n := range names {
		wr.series[n] = true
	}
	return true
}

// family groups the label variants of one sanitized family name so they
// render consecutively under a single TYPE line (the format forbids
// interleaving a family's series with other families).
type family[T any] struct {
	name   string
	labels []string // rendered label blocks, "" for the unlabeled series
	values []T
}

// groupSeries folds sorted (name, value) points into families in first-
// appearance order, deduplicating identical rendered series (first wins —
// deterministic because Export sorts by raw name).
func groupSeries[T any](n int, nameAt func(int) string, valueAt func(int) T, forHistogram bool) []*family[T] {
	var fams []*family[T]
	index := make(map[string]*family[T], n)
	for i := 0; i < n; i++ {
		famName, labels := splitSeries(nameAt(i), forHistogram)
		rendered := renderLabels(labels)
		f := index[famName]
		if f == nil {
			f = &family[T]{name: famName}
			index[famName] = f
			fams = append(fams, f)
		}
		dup := false
		for _, l := range f.labels {
			if l == rendered {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		f.labels = append(f.labels, rendered)
		f.values = append(f.values, valueAt(i))
	}
	return fams
}

// Write renders ex as one exposition document: counters, then gauges,
// then histograms, families in the (sorted) order Export provides; the
// return value is the byte count written.
func Write(w io.Writer, ex telemetry.Export) (int64, error) {
	wr := &writer{w: w, series: make(map[string]bool)}
	counterFams := groupSeries(len(ex.Counters),
		func(i int) string { return ex.Counters[i].Name },
		func(i int) int64 { return ex.Counters[i].Value }, false)
	for _, f := range counterFams {
		if !wr.claim(f.name) {
			continue
		}
		if err := wr.printf("# TYPE %s counter\n", f.name); err != nil {
			return wr.written, err
		}
		for i, labels := range f.labels {
			if err := wr.printf("%s%s %d\n", f.name, labels, f.values[i]); err != nil {
				return wr.written, err
			}
		}
	}
	gaugeFams := groupSeries(len(ex.Gauges),
		func(i int) string { return ex.Gauges[i].Name },
		func(i int) float64 { return ex.Gauges[i].Value }, false)
	for _, f := range gaugeFams {
		if !wr.claim(f.name) {
			continue
		}
		if err := wr.printf("# TYPE %s gauge\n", f.name); err != nil {
			return wr.written, err
		}
		for i, labels := range f.labels {
			if err := wr.printf("%s%s %s\n", f.name, labels, formatValue(f.values[i])); err != nil {
				return wr.written, err
			}
		}
	}
	histFams := groupSeries(len(ex.Histograms),
		func(i int) string { return ex.Histograms[i].Name },
		func(i int) telemetry.HistogramPoint { return ex.Histograms[i] }, true)
	for _, f := range histFams {
		if err := writeHistogramFamily(wr, f); err != nil {
			return wr.written, err
		}
	}
	return wr.written, nil
}

func writeHistogramFamily(wr *writer, f *family[telemetry.HistogramPoint]) error {
	name := f.name
	minName, maxName := name+"_min", name+"_max"
	// A histogram family owns its base name plus the generated series.
	if !wr.claim(name, name+"_bucket", name+"_sum", name+"_count", minName, maxName) {
		return nil
	}
	if err := wr.printf("# TYPE %s histogram\n", name); err != nil {
		return err
	}
	for i, labels := range f.labels {
		h := f.values[i]
		// Cumulative buckets up to the highest populated magnitude; +Inf
		// always closes the series (required by the format). Trailing empty
		// buckets are elided to keep scrapes of sparse histograms compact.
		top := 0
		for b := 0; b < telemetry.HistBucketCount; b++ {
			if h.Buckets[b] > 0 {
				top = b
			}
		}
		var cum int64
		for b := 0; b <= top; b++ {
			cum += h.Buckets[b]
			le := formatValue(telemetry.HistBucketUpperBound(b))
			if err := wr.printf("%s_bucket%s %d\n", name, withLe(labels, le), cum); err != nil {
				return err
			}
		}
		if err := wr.printf("%s_bucket%s %d\n", name, withLe(labels, "+Inf"), h.Count); err != nil {
			return err
		}
		if err := wr.printf("%s_sum%s %s\n%s_count%s %d\n",
			name, labels, formatValue(h.Sum), name, labels, h.Count); err != nil {
			return err
		}
	}
	// Min and max ride along as gauges with the same label sets.
	for _, g := range []struct {
		name string
		get  func(telemetry.HistogramPoint) float64
	}{
		{minName, func(h telemetry.HistogramPoint) float64 { return h.Min }},
		{maxName, func(h telemetry.HistogramPoint) float64 { return h.Max }},
	} {
		if err := wr.printf("# TYPE %s gauge\n", g.name); err != nil {
			return err
		}
		for i, labels := range f.labels {
			if err := wr.printf("%s%s %s\n", g.name, labels, formatValue(g.get(f.values[i]))); err != nil {
				return err
			}
		}
	}
	return nil
}

// withLe merges the generated le label into a rendered label block.
func withLe(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// WriteCollector is Write over c.Export() — the one-call scrape path.
func WriteCollector(w io.Writer, c *telemetry.Collector) (int64, error) {
	return Write(w, c.Export())
}
