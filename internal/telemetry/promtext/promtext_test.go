package promtext

import (
	"math"
	"strings"
	"testing"

	"broadcastic/internal/telemetry"
)

func TestSanitizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"blackboard.bits", "blackboard_bits"},
		{"netrun.link.3.wire_bits", "netrun_link_3_wire_bits"},
		{"netrun.link.0.faults.drop", "netrun_link_0_faults_drop"},
		{"already_fine:series", "already_fine:series"},
		{"", "_"},
		{"9lives", "_9lives"},
		{"sp ace/slash-dash", "sp_ace_slash_dash"},
		{"héllo", "h__llo"}, // multi-byte rune: one '_' per byte
	}
	for _, c := range cases {
		if got := SanitizeName(c.in); got != c.want {
			t.Errorf("SanitizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWriteCounterAndHistogram(t *testing.T) {
	col := telemetry.NewCollector()
	col.Count("blackboard.bits", 1234)
	col.Count("netrun.link.1.wire_bits", 99)
	col.Observe("sim.cell_ns", 3)   // bucket [2,4)
	col.Observe("sim.cell_ns", 3)   // same bucket
	col.Observe("sim.cell_ns", 100) // bucket [64,128)
	var sb strings.Builder
	if _, err := WriteCollector(&sb, col); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE blackboard_bits counter\nblackboard_bits 1234\n",
		"netrun_link_1_wire_bits 99\n",
		"# TYPE sim_cell_ns histogram\n",
		"sim_cell_ns_bucket{le=\"4\"} 2\n",
		"sim_cell_ns_bucket{le=\"128\"} 3\n",
		"sim_cell_ns_bucket{le=\"+Inf\"} 3\n",
		"sim_cell_ns_sum 106\n",
		"sim_cell_ns_count 3\n",
		"sim_cell_ns_min 3\n",
		"sim_cell_ns_max 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
	// Counters precede histograms, and the cumulative bucket for a skipped
	// magnitude range is elided (no le="8" line with the same count twice
	// is fine, but no bucket may decrease).
	if strings.Index(out, "blackboard_bits") > strings.Index(out, "sim_cell_ns") {
		t.Error("counters must precede histograms")
	}
}

// TestWriteDeterministic pins the satellite requirement: two writes from
// identical collector states are byte-identical (sorted name order).
func TestWriteDeterministic(t *testing.T) {
	build := func() *telemetry.Collector {
		col := telemetry.NewCollector()
		// Insertion order differs per call; output must not.
		names := []string{"z.last", "a.first", "m.middle", "netrun.link.10.wire_bits", "netrun.link.2.wire_bits"}
		for i, n := range names {
			col.Count(n, int64(i+1))
			col.Observe(n+".ns", float64(i+1))
		}
		return col
	}
	var a, b strings.Builder
	if _, err := WriteCollector(&a, build()); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCollector(&b, build()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("non-deterministic exposition:\n--- a ---\n%s--- b ---\n%s", a.String(), b.String())
	}
	if a.String() == "" {
		t.Fatal("empty exposition")
	}
}

func TestWriteSpecialFloats(t *testing.T) {
	col := telemetry.NewCollector()
	col.Observe("weird", math.NaN())
	col.Observe("weird", math.Inf(1))
	col.Observe("weird", math.Inf(-1))
	var sb strings.Builder
	if _, err := WriteCollector(&sb, col); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "weird_count 3\n") {
		t.Errorf("want 3 observations recorded, got:\n%s", out)
	}
	if !strings.Contains(out, "weird_sum NaN\n") {
		t.Errorf("NaN sum must render as NaN, got:\n%s", out)
	}
	if err := checkExposition(out); err != nil {
		t.Errorf("special floats broke the exposition grammar: %v\n%s", err, out)
	}
}

func TestWriteCollidingNames(t *testing.T) {
	col := telemetry.NewCollector()
	col.Count("a.b", 1)
	col.Count("a_b", 2) // sanitizes to the same family
	col.Observe("a.b.ns", 1)
	col.Observe("a:b/ns", 1) // collides with a_b_ns series space? (a:b_ns — distinct)
	var sb strings.Builder
	if _, err := WriteCollector(&sb, col); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if err := checkExposition(out); err != nil {
		t.Errorf("collisions broke the exposition grammar: %v\n%s", err, out)
	}
	// Exactly one a_b sample line: the first (sorted) name wins.
	lines := strings.Split(out, "\n")
	samples := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "a_b ") {
			samples++
		}
	}
	if samples != 1 {
		t.Errorf("want exactly 1 a_b sample line, got %d:\n%s", samples, out)
	}
}

func TestWriteEmpty(t *testing.T) {
	var sb strings.Builder
	n, err := Write(&sb, telemetry.Export{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || sb.String() != "" {
		t.Fatalf("empty export must write nothing, wrote %d bytes: %q", n, sb.String())
	}
}

// TestWriteGauge pins the gauge kind end to end: gauges render under their
// own TYPE line, between counters and histograms, with last-write-wins
// values.
func TestWriteGauge(t *testing.T) {
	col := telemetry.NewCollector()
	col.Count("jobs.submitted", 2)
	col.Gauge("jobs.queue_depth", 3)
	col.Gauge("jobs.queue_depth", 1) // last write wins
	col.Gauge("jobs.cache.hit_ratio", 0.5)
	col.Observe("jobs.queue_wait_ns", 100)
	var sb strings.Builder
	if _, err := WriteCollector(&sb, col); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE jobs_queue_depth gauge\njobs_queue_depth 1\n",
		"# TYPE jobs_cache_hit_ratio gauge\njobs_cache_hit_ratio 0.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
	if !(strings.Index(out, "jobs_submitted") < strings.Index(out, "jobs_queue_depth") &&
		strings.Index(out, "jobs_queue_depth") < strings.Index(out, "jobs_queue_wait_ns")) {
		t.Errorf("kinds out of order (want counters, gauges, histograms):\n%s", out)
	}
}

// TestWriteLabeledSeries pins the label grammar: telemetry.Labeled names
// render as labeled series grouped with their unlabeled family under one
// TYPE line, with values escaped on the way out.
func TestWriteLabeledSeries(t *testing.T) {
	col := telemetry.NewCollector()
	col.Gauge("jobs.queue_depth", 7)
	col.Gauge(telemetry.Labeled("jobs.queue_depth", "tenant", "t1"), 3)
	col.Gauge(telemetry.Labeled("jobs.queue_depth", "tenant", "t2"), 4)
	col.Count(telemetry.Labeled("jobs.tenant.submitted", "tenant", `ev"il\te`+"\n"+`nant`), 1)
	col.Observe(telemetry.Labeled("jobs.queue_wait_ns", "tenant", "t1"), 50)
	col.Observe("jobs.queue_wait_ns", 50)
	var sb strings.Builder
	if _, err := WriteCollector(&sb, col); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		// One TYPE line, unlabeled series first (sorted raw-name order),
		// labeled variants consecutive after it.
		"# TYPE jobs_queue_depth gauge\njobs_queue_depth 7\njobs_queue_depth{tenant=\"t1\"} 3\njobs_queue_depth{tenant=\"t2\"} 4\n",
		// Escapes survive the round trip.
		`jobs_tenant_submitted{tenant="ev\"il\\te\nnant"} 1` + "\n",
		// Histogram labels merge with the generated le label.
		`jobs_queue_wait_ns_bucket{tenant="t1",le="64"} 1` + "\n",
		`jobs_queue_wait_ns_sum{tenant="t1"} 50` + "\n",
		`jobs_queue_wait_ns_count{tenant="t1"} 1` + "\n",
		`jobs_queue_wait_ns_min{tenant="t1"} 50` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "# TYPE jobs_queue_depth gauge"); got != 1 {
		t.Errorf("family has %d TYPE lines, want 1:\n%s", got, out)
	}
	if got := strings.Count(out, "# TYPE jobs_queue_wait_ns histogram"); got != 1 {
		t.Errorf("histogram family has %d TYPE lines, want 1:\n%s", got, out)
	}
}

// TestWriteMalformedLabelBlocks pins total sanitization: names whose label
// block does not parse back fall into whole-name sanitization, a user "le"
// key on a histogram is renamed, and duplicate label keys invalidate the
// block rather than emitting an illegal duplicate.
func TestWriteMalformedLabelBlocks(t *testing.T) {
	col := telemetry.NewCollector()
	col.Count(`half{tenant="unclosed`, 1)   // no closing brace
	col.Count(`bad{tenant=noquote}`, 2)     // unquoted value
	col.Count(`dup{a.b="1",a_b="2"}`, 3)    // keys collide after sanitizing
	col.Observe(`hist{le="user"}`, 9)       // user le on a histogram
	col.Gauge(`g{tenant="ok",empty=""}`, 1) // empty value is legal
	var sb strings.Builder
	if _, err := WriteCollector(&sb, col); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"half_tenant__unclosed 1\n",
		"bad_tenant_noquote_ 2\n",
		"dup_a_b__1__a_b__2__ 3\n",
		`hist_bucket{le_="user",le="16"} 1` + "\n",
		`g{tenant="ok",empty=""} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
	// Every sample line still matches the exposition grammar.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLineRe.MatchString(line) {
			t.Errorf("invalid sample line %q", line)
		}
	}
}
