package promtext

import (
	"fmt"
	"math"
	"regexp"
	"strings"
	"testing"

	"broadcastic/internal/telemetry"
)

// Exposition grammar for the subset this writer emits: TYPE comments and
// counter/gauge/histogram samples with optional label blocks whose values
// escape backslash, quote and newline.
var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	typeLineRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	labelRe      = `[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"`
	sampleLineRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{` + labelRe + `(?:,` + labelRe + `)*\})? (-?[0-9.e+\-]+|NaN|\+Inf|-Inf)$`)
)

// checkExposition validates that every line of an exposition document
// matches the grammar and that no sample series repeats.
func checkExposition(doc string) error {
	seen := make(map[string]bool)
	for i, line := range strings.Split(doc, "\n") {
		if line == "" {
			continue
		}
		if typeLineRe.MatchString(line) {
			continue
		}
		m := sampleLineRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d not in exposition grammar: %q", i+1, line)
		}
		series := m[1] + m[2]
		// Histogram buckets repeat the name with different le labels; the
		// full series string (name+labels) must still be unique.
		if seen[series] {
			return fmt.Errorf("line %d duplicates series %q", i+1, series)
		}
		seen[series] = true
	}
	return nil
}

// FuzzWrite feeds adversarial metric names and NaN/Inf observations
// through a Collector and requires the exposition to stay parseable with
// unique series, whatever the input.
func FuzzWrite(f *testing.F) {
	f.Add("blackboard.bits", "sim.cell_ns", int64(7), 42.0)
	f.Add("", "9 weird/name\xff", int64(-3), math.Inf(1))
	f.Add("a.b", "a_b", int64(1), math.NaN())
	f.Add("dup", "dup", int64(5), math.Inf(-1))
	f.Add("# TYPE evil counter\nevil 1", "le=\"inject\"", int64(0), -0.0)
	f.Add(telemetry.Labeled("jobs.queue_depth", "tenant", "t1"), telemetry.Labeled("jobs.queue_wait_ns", "tenant", `ev"il\`+"\n"), int64(2), 9.0)
	f.Add(`half{tenant="unclosed`, `dup.keys{a.b="1",a_b="2"}`, int64(1), 1.0)
	f.Add(`hist{le="user"}`, `hist{le="user"}`, int64(1), 2.0)
	f.Fuzz(func(t *testing.T, counterName, histName string, delta int64, obs float64) {
		col := telemetry.NewCollector()
		col.Count(counterName, delta)
		col.Count(counterName+".more", 1)
		col.Observe(histName, obs)
		col.Observe(histName, 3)
		var sb strings.Builder
		if _, err := WriteCollector(&sb, col); err != nil {
			t.Fatalf("Write failed: %v", err)
		}
		if err := checkExposition(sb.String()); err != nil {
			t.Fatalf("invalid exposition for counter=%q hist=%q obs=%v:\n%v\n%s",
				counterName, histName, obs, err, sb.String())
		}
		if !metricNameRe.MatchString(SanitizeName(counterName)) {
			t.Fatalf("SanitizeName(%q) = %q is not a valid metric name", counterName, SanitizeName(counterName))
		}
	})
}
