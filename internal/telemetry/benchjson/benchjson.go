// Package benchjson is the machine-readable benchmark exchange format of
// this repository: a stable JSON schema (BENCH_<name>.json) that the root
// benchmark suite, cmd/experiments -telemetry and the CI bench gate all
// speak. One schema means one trajectory: every perf PR appends a point
// that is directly comparable with the committed baseline, and the CI gate
// (cmd/benchgate) can refuse regressions mechanically.
//
// Schema stability contract: SchemaVersion is bumped on any format
// change; Decode accepts [MinSchemaVersion, SchemaVersion] (additive
// bumps keep old files readable) and rejects anything outside the range.
// The round-trip Encode→Decode is tested to be lossless. New optional
// fields may be added without a version bump; consumers must ignore
// unknown keys.
package benchjson

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"broadcastic/internal/buildinfo"
)

// SchemaVersion identifies the current schema. Decode accepts any version
// in [MinSchemaVersion, SchemaVersion]: every bump so far has been purely
// additive, so this build reads older committed baselines (v1 files simply
// carry no build block).
//
// Schema history:
//
//	1 — initial format
//	2 — adds the optional "build" block (binary identity via
//	    runtime/debug.ReadBuildInfo)
const (
	SchemaVersion    = 2
	MinSchemaVersion = 1
)

// File is one benchmark run: environment metadata plus one Entry per
// measured operation.
type File struct {
	SchemaVersion int `json:"schema_version"`
	// GeneratedAt is an RFC3339 timestamp; informational only (Compare
	// ignores it).
	GeneratedAt string `json:"generated_at,omitempty"`
	// GitSHA is the commit the run was built from (see ResolveGitSHA).
	GitSHA    string `json:"git_sha,omitempty"`
	GoVersion string `json:"go_version"`
	// Build is the producing binary's identity (module version, toolchain,
	// VCS stamp) as resolved from the binary itself — unlike GitSHA it
	// cannot go stale when a binary is copied between checkouts. Schema ≥2;
	// absent in v1 files.
	Build  *buildinfo.Info `json:"build,omitempty"`
	GOOS   string          `json:"goos"`
	GOARCH string          `json:"goarch"`
	// Host is a coarse hardware fingerprint (goos/goarch/ncpu). Compare
	// downgrades regressions to warnings across differing fingerprints:
	// absolute ns/op from different hardware are not comparable, and the
	// committed baseline is refreshed on CI hardware (see README).
	Host string `json:"host_fingerprint"`
	// Scale and Workers are the knobs the run was taken at
	// (BROADCASTIC_SCALE, BROADCASTIC_WORKERS); entries from different
	// scales are never comparable, so Compare refuses mismatches.
	Scale   string  `json:"scale"`
	Workers int     `json:"workers"`
	Entries []Entry `json:"entries"`
}

// Entry is one measured operation, aggregated over Samples runs.
type Entry struct {
	// Name is the op name, e.g. "BenchmarkE1_DisjScalingN".
	Name string `json:"name"`
	// Iterations is the total op count across all samples.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the mean wall time per op across samples.
	NsPerOp float64 `json:"ns_per_op"`
	// MinNsPerOp is the fastest sample's ns/op — the noise-floor number
	// regression gates prefer.
	MinNsPerOp float64 `json:"min_ns_per_op,omitempty"`
	// BitsPerOp is the recorded communication per op (board bits plus
	// wire bits where the networked runtime ran); 0 when the op exercises
	// no instrumented protocol layer.
	BitsPerOp float64 `json:"bits_per_op,omitempty"`
	// AllocsPerOp is the heap allocation count per op.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Samples is how many runs were aggregated (benchtime -count).
	Samples int `json:"samples,omitempty"`
	// Metrics carries the full telemetry snapshot of the run (counter
	// values and histogram means, per telemetry.Collector.Snapshot),
	// normalized per op.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// HostFingerprint returns the coarse hardware identity recorded in File.Host.
func HostFingerprint() string {
	return fmt.Sprintf("%s/%s/ncpu=%d", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}

// New returns a File with the environment metadata filled in; the caller
// appends entries and sets GeneratedAt/GitSHA as available.
func New(scale string, workers int) *File {
	build := buildinfo.Resolve()
	return &File{
		SchemaVersion: SchemaVersion,
		Build:         &build,
		GitSHA:        ResolveGitSHA(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Host:          HostFingerprint(),
		Scale:         scale,
		Workers:       workers,
	}
}

// ResolveGitSHA best-effort resolves the current commit without invoking
// git: GITHUB_SHA (set by Actions), then BROADCASTIC_GIT_SHA, then a walk
// up from the working directory reading .git/HEAD. Returns "" when
// unresolvable.
func ResolveGitSHA() string {
	for _, env := range []string{"GITHUB_SHA", "BROADCASTIC_GIT_SHA"} {
		if sha := os.Getenv(env); sha != "" {
			return sha
		}
	}
	dir, err := os.Getwd()
	if err != nil {
		return ""
	}
	for {
		head, err := os.ReadFile(filepath.Join(dir, ".git", "HEAD"))
		if err == nil {
			ref := strings.TrimSpace(string(head))
			if sha, ok := strings.CutPrefix(ref, "ref: "); ok {
				b, err := os.ReadFile(filepath.Join(dir, ".git", filepath.FromSlash(sha)))
				if err != nil {
					return ""
				}
				return strings.TrimSpace(string(b))
			}
			return ref
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// AddEntry appends e, keeping Entries sorted by name so encoded files are
// deterministic and diff-friendly.
func (f *File) AddEntry(e Entry) {
	i := sort.Search(len(f.Entries), func(i int) bool { return f.Entries[i].Name >= e.Name })
	f.Entries = append(f.Entries, Entry{})
	copy(f.Entries[i+1:], f.Entries[i:])
	f.Entries[i] = e
}

// Entry returns the named entry, or nil.
func (f *File) Entry(name string) *Entry {
	for i := range f.Entries {
		if f.Entries[i].Name == name {
			return &f.Entries[i]
		}
	}
	return nil
}

// Validate checks the invariants Decode enforces.
func (f *File) Validate() error {
	if f.SchemaVersion < MinSchemaVersion || f.SchemaVersion > SchemaVersion {
		return fmt.Errorf("benchjson: schema version %d, this build reads %d..%d",
			f.SchemaVersion, MinSchemaVersion, SchemaVersion)
	}
	if f.Scale == "" {
		return fmt.Errorf("benchjson: missing scale")
	}
	seen := make(map[string]bool, len(f.Entries))
	for i, e := range f.Entries {
		if e.Name == "" {
			return fmt.Errorf("benchjson: entry %d has no name", i)
		}
		if seen[e.Name] {
			return fmt.Errorf("benchjson: duplicate entry %q", e.Name)
		}
		seen[e.Name] = true
		if e.Iterations < 0 || e.NsPerOp < 0 {
			return fmt.Errorf("benchjson: entry %q has negative measurements", e.Name)
		}
	}
	return nil
}

// Encode writes f as stable, indented JSON (entries sorted by name).
func Encode(w io.Writer, f *File) error {
	if err := f.Validate(); err != nil {
		return err
	}
	sorted := *f
	sorted.Entries = append([]Entry(nil), f.Entries...)
	sort.Slice(sorted.Entries, func(i, j int) bool { return sorted.Entries[i].Name < sorted.Entries[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&sorted)
}

// Decode reads and validates one File.
func Decode(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// WriteFile encodes f to path atomically (write temp, rename).
func WriteFile(path string, f *File) error {
	var buf bytes.Buffer
	if err := Encode(&buf, f); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile decodes the File at path.
func ReadFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(bytes.NewReader(b))
}

// Verdict classifies one baseline/current entry pair.
type Verdict int

// Verdicts, from benign to blocking.
const (
	OK          Verdict = iota
	Improvement         // faster than baseline beyond the threshold
	Missing             // present in baseline, absent in current (or vice versa)
	Warning             // regression beyond threshold, but not blocking (cross-host, or op not gated)
	Regression          // blocking regression on a gated op
)

func (v Verdict) String() string {
	switch v {
	case OK:
		return "ok"
	case Improvement:
		return "improvement"
	case Missing:
		return "missing"
	case Warning:
		return "warning"
	case Regression:
		return "REGRESSION"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Finding is one per-entry, per-metric comparison result.
type Finding struct {
	Name    string
	Verdict Verdict
	// Metric names the compared dimension: "ns/op" (timing) or
	// "allocs/op" (heap allocation count). Timing and allocation findings
	// for the same op are reported separately — an op can hold its speed
	// while leaking allocations, and the gate must see both.
	Metric   string
	Ratio    float64 // current/baseline (0 when not comparable)
	Baseline float64
	Current  float64
	Note     string
}

// Metric names used in Finding.Metric.
const (
	MetricNs     = "ns/op"
	MetricAllocs = "allocs/op"
)

// CompareOptions tunes Compare.
type CompareOptions struct {
	// MaxRegress is the blocking ns/op ratio slack: current > baseline ×
	// (1+MaxRegress) on a gated op is a Regression. Default 0.25.
	MaxRegress float64
	// MaxAllocRegress is the blocking allocs/op ratio slack, checked
	// whenever both entries record allocation counts. Allocation counts
	// are deterministic — unlike ns/op they carry no timer noise — so the
	// default threshold is tighter: 0.10 (+10%). Cross-hardware runs
	// still downgrade to warnings (different GOMAXPROCS shifts pool and
	// shard behavior). Set to a negative value to disable alloc gating.
	MaxAllocRegress float64
	// Gated selects the ops whose regressions block (nil: all ops gated).
	Gated func(name string) bool
	// CompareMin gates on MinNsPerOp instead of mean ns/op when both
	// sides carry it — the benchstat-style noise-floor comparison.
	CompareMin bool
}

// Report is the outcome of a Compare.
type Report struct {
	Findings []Finding
	// SameHost is false when the two files carry different hardware
	// fingerprints, in which case every regression is downgraded to a
	// warning (cross-hardware ns/op is not a signal).
	SameHost bool
}

// Blocking returns the findings that should fail a CI gate.
func (r *Report) Blocking() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Verdict == Regression {
			out = append(out, f)
		}
	}
	return out
}

// Compare evaluates current against baseline. It errors on scale
// mismatches (entries from different parameter grids measure different
// work); all other asymmetries become findings.
func Compare(baseline, current *File, opts CompareOptions) (*Report, error) {
	if baseline.Scale != current.Scale {
		return nil, fmt.Errorf("benchjson: scale mismatch: baseline %q, current %q", baseline.Scale, current.Scale)
	}
	if opts.MaxRegress <= 0 {
		opts.MaxRegress = 0.25
	}
	if opts.MaxAllocRegress == 0 {
		opts.MaxAllocRegress = 0.10
	}
	rep := &Report{SameHost: baseline.Host == current.Host}
	names := make(map[string]bool)
	for _, e := range baseline.Entries {
		names[e.Name] = true
	}
	for _, e := range current.Entries {
		names[e.Name] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		b, c := baseline.Entry(name), current.Entry(name)
		switch {
		case b == nil:
			rep.Findings = append(rep.Findings, Finding{Name: name, Verdict: Missing, Note: "not in baseline (new op?)"})
			continue
		case c == nil:
			rep.Findings = append(rep.Findings, Finding{Name: name, Verdict: Missing, Note: "not in current run (op removed?)"})
			continue
		}
		bNs, cNs := b.NsPerOp, c.NsPerOp
		if opts.CompareMin && b.MinNsPerOp > 0 && c.MinNsPerOp > 0 {
			bNs, cNs = b.MinNsPerOp, c.MinNsPerOp
		}
		if bNs <= 0 {
			rep.Findings = append(rep.Findings, Finding{
				Name: name, Metric: MetricNs, Verdict: Warning,
				Baseline: bNs, Current: cNs, Note: "baseline has no timing",
			})
		} else {
			rep.Findings = append(rep.Findings,
				classify(name, MetricNs, bNs, cNs, opts.MaxRegress, rep.SameHost, opts.Gated))
		}
		// Allocation gate: only when both runs recorded allocation counts
		// (older baselines predate the field).
		if opts.MaxAllocRegress > 0 && b.AllocsPerOp > 0 && c.AllocsPerOp > 0 {
			rep.Findings = append(rep.Findings,
				classify(name, MetricAllocs, b.AllocsPerOp, c.AllocsPerOp, opts.MaxAllocRegress, rep.SameHost, opts.Gated))
		}
	}
	return rep, nil
}

// classify grades one metric pair against a regression threshold, applying
// the cross-host and gating downgrades.
func classify(name, metric string, base, cur, maxRegress float64, sameHost bool, gated func(string) bool) Finding {
	f := Finding{Name: name, Metric: metric, Baseline: base, Current: cur, Ratio: cur / base}
	switch {
	case f.Ratio > 1+maxRegress:
		f.Verdict = Regression
		switch {
		case !sameHost:
			f.Verdict = Warning
			f.Note = "cross-hardware comparison; not blocking"
		case gated != nil && !gated(name):
			f.Verdict = Warning
			f.Note = "op not gated; not blocking"
		}
	case f.Ratio < 1-maxRegress:
		f.Verdict = Improvement
	default:
		f.Verdict = OK
	}
	return f
}
