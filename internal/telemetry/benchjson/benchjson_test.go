package benchjson

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func sampleFile() *File {
	f := New("quick", 4)
	f.GeneratedAt = "2026-08-05T00:00:00Z"
	f.GitSHA = "deadbeef"
	f.AddEntry(Entry{
		Name:        "BenchmarkE1_DisjScalingN",
		Iterations:  3,
		NsPerOp:     1.5e6,
		MinNsPerOp:  1.4e6,
		AllocsPerOp: 120,
		Samples:     3,
		Metrics:     map[string]float64{"sim.cells": 12},
	})
	f.AddEntry(Entry{
		Name:       "BenchmarkE20_NetworkedOverhead",
		Iterations: 3,
		NsPerOp:    9e6,
		MinNsPerOp: 8.5e6,
		BitsPerOp:  4096,
		Samples:    3,
	})
	return f
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := Encode(&buf, f); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", f, got)
	}
}

func TestEncodeSortsEntries(t *testing.T) {
	f := sampleFile()
	// Force out-of-order entries; Encode must still emit sorted output
	// without mutating the caller's slice header contents.
	f.Entries[0], f.Entries[1] = f.Entries[1], f.Entries[0]
	var buf bytes.Buffer
	if err := Encode(&buf, f); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !sort.SliceIsSorted(got.Entries, func(i, j int) bool { return got.Entries[i].Name < got.Entries[j].Name }) {
		t.Fatalf("decoded entries not sorted: %+v", got.Entries)
	}
}

func TestDecodeRejectsBadFiles(t *testing.T) {
	cases := map[string]string{
		"wrong schema":    `{"schema_version": 99, "scale": "quick", "entries": []}`,
		"zero schema":     `{"scale": "quick", "entries": []}`,
		"missing scale":   `{"schema_version": 1, "entries": []}`,
		"unnamed entry":   `{"schema_version": 1, "scale": "quick", "entries": [{"iterations": 1}]}`,
		"duplicate entry": `{"schema_version": 1, "scale": "quick", "entries": [{"name": "A"}, {"name": "A"}]}`,
		"negative ns":     `{"schema_version": 1, "scale": "quick", "entries": [{"name": "A", "ns_per_op": -1}]}`,
		"not json":        `benchmarks were fine, trust me`,
	}
	for name, body := range cases {
		if _, err := Decode(strings.NewReader(body)); err == nil {
			t.Errorf("%s: Decode accepted invalid input", name)
		}
	}
}

// TestDecodeAcceptsOlderSchemas pins the compatibility promise: v1 files
// (the committed BENCH_baseline.json predates the build block) decode
// under a v2 reader, with Build simply absent.
func TestDecodeAcceptsOlderSchemas(t *testing.T) {
	v1 := `{"schema_version": 1, "go_version": "go1.22", "goos": "linux", "goarch": "amd64",
	        "host_fingerprint": "linux/amd64/ncpu=4", "scale": "quick", "workers": 4,
	        "entries": [{"name": "BenchmarkE1", "iterations": 1, "ns_per_op": 100}]}`
	f, err := Decode(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	if f.Build != nil {
		t.Errorf("v1 file decoded with a build block: %+v", f.Build)
	}
	if f.SchemaVersion != 1 {
		t.Errorf("schema version rewritten to %d", f.SchemaVersion)
	}
}

// TestNewEmbedsBuildInfo pins that freshly produced files carry the v2
// build block with at least the toolchain identity.
func TestNewEmbedsBuildInfo(t *testing.T) {
	f := New("quick", 1)
	if f.SchemaVersion != SchemaVersion {
		t.Fatalf("New writes schema %d, want %d", f.SchemaVersion, SchemaVersion)
	}
	if f.Build == nil || f.Build.GoVersion == "" {
		t.Fatalf("New embeds no build identity: %+v", f.Build)
	}
}

func TestReadWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	f := sampleFile()
	if err := WriteFile(path, f); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("file round trip mismatch")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("ReadFile on a missing path returned nil error")
	}
}

func TestResolveGitSHAFromEnv(t *testing.T) {
	t.Setenv("GITHUB_SHA", "cafef00d")
	if got := ResolveGitSHA(); got != "cafef00d" {
		t.Fatalf("ResolveGitSHA = %q, want cafef00d", got)
	}
}

func TestResolveGitSHAFromHead(t *testing.T) {
	t.Setenv("GITHUB_SHA", "")
	t.Setenv("BROADCASTIC_GIT_SHA", "")
	dir := t.TempDir()
	gitDir := filepath.Join(dir, ".git")
	if err := os.MkdirAll(filepath.Join(gitDir, "refs", "heads"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(gitDir, "HEAD"), []byte("ref: refs/heads/main\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(gitDir, "refs", "heads", "main"), []byte("0123abcd\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Run from a nested directory to exercise the upward walk.
	nested := filepath.Join(dir, "internal", "deep")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(cwd) })
	if err := os.Chdir(nested); err != nil {
		t.Fatal(err)
	}
	if got := ResolveGitSHA(); got != "0123abcd" {
		t.Fatalf("ResolveGitSHA = %q, want 0123abcd", got)
	}
	// Detached HEAD stores the SHA directly.
	if err := os.WriteFile(filepath.Join(gitDir, "HEAD"), []byte("fedc9876\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := ResolveGitSHA(); got != "fedc9876" {
		t.Fatalf("detached ResolveGitSHA = %q, want fedc9876", got)
	}
}

func compareFiles(t *testing.T, baseNs, curNs float64, mutate func(b, c *File)) *Report {
	t.Helper()
	base := New("quick", 4)
	base.AddEntry(Entry{Name: "BenchmarkX", Iterations: 1, NsPerOp: baseNs})
	cur := New("quick", 4)
	cur.AddEntry(Entry{Name: "BenchmarkX", Iterations: 1, NsPerOp: curNs})
	if mutate != nil {
		mutate(base, cur)
	}
	rep, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	return rep
}

func soleVerdict(t *testing.T, rep *Report) Finding {
	t.Helper()
	if len(rep.Findings) != 1 {
		t.Fatalf("want 1 finding, got %+v", rep.Findings)
	}
	return rep.Findings[0]
}

func TestCompareVerdicts(t *testing.T) {
	if f := soleVerdict(t, compareFiles(t, 100, 110, nil)); f.Verdict != OK {
		t.Errorf("+10%%: verdict %v, want ok", f.Verdict)
	}
	if f := soleVerdict(t, compareFiles(t, 100, 130, nil)); f.Verdict != Regression {
		t.Errorf("+30%%: verdict %v, want REGRESSION", f.Verdict)
	}
	if f := soleVerdict(t, compareFiles(t, 100, 70, nil)); f.Verdict != Improvement {
		t.Errorf("-30%%: verdict %v, want improvement", f.Verdict)
	}
	rep := compareFiles(t, 100, 130, func(b, c *File) { c.Host = b.Host + "-other" })
	if f := soleVerdict(t, rep); f.Verdict != Warning || rep.SameHost {
		t.Errorf("cross-host +30%%: verdict %v (sameHost=%v), want warning", f.Verdict, rep.SameHost)
	}
	if got := len(compareFiles(t, 100, 130, nil).Blocking()); got != 1 {
		t.Errorf("Blocking() = %d findings, want 1", got)
	}
	if got := len(compareFiles(t, 100, 110, nil).Blocking()); got != 0 {
		t.Errorf("Blocking() on an ok report = %d findings, want 0", got)
	}
}

func TestCompareMissingEntries(t *testing.T) {
	rep := compareFiles(t, 100, 100, func(b, c *File) {
		b.AddEntry(Entry{Name: "BenchmarkRemoved", NsPerOp: 5})
		c.AddEntry(Entry{Name: "BenchmarkAdded", NsPerOp: 5})
	})
	missing := 0
	for _, f := range rep.Findings {
		if f.Verdict == Missing {
			missing++
		}
	}
	if missing != 2 {
		t.Fatalf("want 2 missing findings, got %+v", rep.Findings)
	}
	if len(rep.Blocking()) != 0 {
		t.Fatal("missing entries must warn, not block")
	}
}

func TestCompareGatedOps(t *testing.T) {
	base := New("quick", 4)
	base.AddEntry(Entry{Name: "BenchmarkGated", Iterations: 1, NsPerOp: 100})
	base.AddEntry(Entry{Name: "BenchmarkFree", Iterations: 1, NsPerOp: 100})
	cur := New("quick", 4)
	cur.AddEntry(Entry{Name: "BenchmarkGated", Iterations: 1, NsPerOp: 200})
	cur.AddEntry(Entry{Name: "BenchmarkFree", Iterations: 1, NsPerOp: 200})
	rep, err := Compare(base, cur, CompareOptions{Gated: func(name string) bool { return name == "BenchmarkGated" }})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	blocking := rep.Blocking()
	if len(blocking) != 1 || blocking[0].Name != "BenchmarkGated" {
		t.Fatalf("want only BenchmarkGated blocking, got %+v", blocking)
	}
}

func TestCompareMinNsPerOp(t *testing.T) {
	base := New("quick", 4)
	base.AddEntry(Entry{Name: "BenchmarkX", Iterations: 1, NsPerOp: 100, MinNsPerOp: 90})
	cur := New("quick", 4)
	// Mean regressed 40% (noise) but the floor moved only 5%.
	cur.AddEntry(Entry{Name: "BenchmarkX", Iterations: 1, NsPerOp: 140, MinNsPerOp: 94.5})
	rep, err := Compare(base, cur, CompareOptions{CompareMin: true})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if f := soleVerdict(t, rep); f.Verdict != OK {
		t.Fatalf("min-comparison verdict %v (ratio %.2f), want ok", f.Verdict, f.Ratio)
	}
}

func TestCompareScaleMismatch(t *testing.T) {
	base := New("quick", 4)
	cur := New("full", 4)
	if _, err := Compare(base, cur, CompareOptions{}); err == nil {
		t.Fatal("Compare accepted mismatched scales")
	}
}

func TestCompareAllocsPerOp(t *testing.T) {
	mk := func(ns, allocs float64) *File {
		f := New("quick", 4)
		f.AddEntry(Entry{Name: "BenchmarkX", Iterations: 1, NsPerOp: ns, AllocsPerOp: allocs})
		return f
	}
	findingFor := func(rep *Report, metric string) *Finding {
		for i := range rep.Findings {
			if rep.Findings[i].Metric == metric {
				return &rep.Findings[i]
			}
		}
		return nil
	}

	// +15% allocations blocks at the default +10% threshold even when
	// timing is flat.
	rep, err := Compare(mk(100, 1000), mk(100, 1150), CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	af := findingFor(rep, MetricAllocs)
	if af == nil || af.Verdict != Regression {
		t.Fatalf("alloc +15%%: finding %+v, want REGRESSION", af)
	}
	if nf := findingFor(rep, MetricNs); nf == nil || nf.Verdict != OK {
		t.Fatalf("flat timing misreported: %+v", nf)
	}
	if len(rep.Blocking()) != 1 {
		t.Fatalf("want exactly the alloc finding blocking, got %+v", rep.Blocking())
	}

	// +5% stays inside the slack; -50% is an improvement.
	rep, err = Compare(mk(100, 1000), mk(100, 1050), CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if af := findingFor(rep, MetricAllocs); af == nil || af.Verdict != OK {
		t.Fatalf("alloc +5%%: finding %+v, want ok", af)
	}
	rep, err = Compare(mk(100, 1000), mk(100, 500), CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if af := findingFor(rep, MetricAllocs); af == nil || af.Verdict != Improvement {
		t.Fatalf("alloc -50%%: finding %+v, want improvement", af)
	}

	// Entries without allocation counts produce no alloc finding at all.
	rep, err = Compare(mk(100, 0), mk(100, 1150), CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if af := findingFor(rep, MetricAllocs); af != nil {
		t.Fatalf("alloc finding without baseline data: %+v", af)
	}

	// Negative threshold disables the gate.
	rep, err = Compare(mk(100, 1000), mk(100, 9000), CompareOptions{MaxAllocRegress: -1})
	if err != nil {
		t.Fatal(err)
	}
	if af := findingFor(rep, MetricAllocs); af != nil {
		t.Fatalf("disabled alloc gate still compared: %+v", af)
	}
}
