package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafeHelpers(t *testing.T) {
	// Must not panic and must not record anywhere.
	Count(nil, "x", 1)
	Observe(nil, "x", 1)
	s := StartSpan(nil, "x")
	s.End()
	if !s.start.IsZero() {
		t.Fatal("nil-recorder span read the clock")
	}
}

func TestCollectorCounters(t *testing.T) {
	c := NewCollector()
	Count(c, "a", 2)
	Count(c, "a", 3)
	Count(c, "b", -1)
	if got := c.Counter("a"); got != 5 {
		t.Fatalf("counter a = %d, want 5", got)
	}
	if got := c.Counter("b"); got != -1 {
		t.Fatalf("counter b = %d, want -1", got)
	}
	if got := c.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
}

func TestCollectorHistogram(t *testing.T) {
	c := NewCollector()
	for _, v := range []float64{1, 2, 3, 10} {
		Observe(c, "h", v)
	}
	h := c.Hist("h")
	if h.Count != 4 || h.Sum != 16 || h.Min != 1 || h.Max != 10 {
		t.Fatalf("hist = %+v", h)
	}
	if h.Mean() != 4 {
		t.Fatalf("mean = %v, want 4", h.Mean())
	}
	if (HistSummary{}).Mean() != 0 {
		t.Fatal("empty histogram mean should be 0")
	}
}

func TestCollectorSnapshotAndReset(t *testing.T) {
	c := NewCollector()
	Count(c, "a", 7)
	Observe(c, "h", 2)
	Observe(c, "h", 4)
	snap := c.Snapshot()
	if snap["a"] != 7 || snap["h"] != 3 || snap["h.count"] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	c.Reset()
	if got := c.Snapshot(); len(got) != 0 {
		t.Fatalf("snapshot after reset = %v", got)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Count("n", 1)
				c.Observe("h", float64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Counter("n"); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := c.Hist("h").Count; got != 8000 {
		t.Fatalf("concurrent hist count = %d, want 8000", got)
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	c := NewCollector()
	s := StartSpan(c, "span")
	time.Sleep(time.Millisecond)
	s.End()
	h := c.Hist("span")
	if h.Count != 1 || h.Sum < float64(time.Millisecond) {
		t.Fatalf("span hist = %+v", h)
	}
}

func TestIndexed(t *testing.T) {
	if got := Indexed("netrun.link", 3, "wire_bits"); got != "netrun.link.3.wire_bits" {
		t.Fatalf("Indexed = %q", got)
	}
}

func TestCollectorWriteTo(t *testing.T) {
	c := NewCollector()
	Count(c, "a.counter", 5)
	Observe(c, "b.hist", 2)
	var sb strings.Builder
	if _, err := c.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "a.counter") || !strings.Contains(out, "b.hist") {
		t.Fatalf("dump missing entries:\n%s", out)
	}
}

func TestProfilesCapture(t *testing.T) {
	dir := t.TempDir()
	p := &Profiles{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		TraceFile:  filepath.Join(dir, "trace.out"),
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to say.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{p.CPUProfile, p.MemProfile, p.TraceFile} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile %s: %v", f, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", f)
		}
	}
}

func TestProfilesFlags(t *testing.T) {
	var p Profiles
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	p.AddFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", "a", "-memprofile", "b", "-tracefile", "c"}); err != nil {
		t.Fatal(err)
	}
	if p.CPUProfile != "a" || p.MemProfile != "b" || p.TraceFile != "c" {
		t.Fatalf("parsed = %+v", p)
	}
	// No files requested: Start/stop are no-ops.
	var none Profiles
	stop, err := none.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestCollectorExportAndWriteToSorted pins the exposition ordering
// contract: Export and WriteTo emit metrics in sorted name order, so every
// downstream rendering (promtext, dumps, benchjson) is deterministic
// regardless of map iteration order.
func TestCollectorExportAndWriteToSorted(t *testing.T) {
	c := NewCollector()
	for _, name := range []string{"z.last", "a.first", "m.middle", "b.second"} {
		c.Count(name, 1)
		c.Observe(name+".hist", 2)
	}
	ex := c.Export()
	for i := 1; i < len(ex.Counters); i++ {
		if ex.Counters[i-1].Name >= ex.Counters[i].Name {
			t.Fatalf("Export counters unsorted at %d: %q >= %q", i, ex.Counters[i-1].Name, ex.Counters[i].Name)
		}
	}
	for i := 1; i < len(ex.Histograms); i++ {
		if ex.Histograms[i-1].Name >= ex.Histograms[i].Name {
			t.Fatalf("Export histograms unsorted at %d", i)
		}
	}
	var a, b strings.Builder
	if _, err := c.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteTo is not deterministic across calls")
	}
	if !strings.Contains(a.String(), "a.first") {
		t.Fatalf("dump missing entries:\n%s", a.String())
	}
	idx := func(name string) int { return strings.Index(a.String(), name) }
	if !(idx("a.first") < idx("b.second") && idx("b.second") < idx("m.middle") && idx("m.middle") < idx("z.last")) {
		t.Fatalf("WriteTo counters not in sorted order:\n%s", a.String())
	}
}

// TestCollectorConcurrentHammer drives writers against every reader —
// Snapshot, Export, WriteTo, Counter, Hist — and Reset, concurrently. It
// asserts no torn reads panic and (under -race, as CI runs it) that the
// Collector is data-race free across its whole surface.
func TestCollectorConcurrentHammer(t *testing.T) {
	c := NewCollector()
	const writers, iters = 8, 500
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r {
				case 0:
					_ = c.Snapshot()
				case 1:
					ex := c.Export()
					for i := 1; i < len(ex.Counters); i++ {
						if ex.Counters[i-1].Name >= ex.Counters[i].Name {
							t.Error("Export unsorted under concurrency")
							return
						}
					}
				case 2:
					var sb strings.Builder
					if _, err := c.WriteTo(&sb); err != nil {
						t.Errorf("WriteTo under concurrency: %v", err)
						return
					}
				case 3:
					_ = c.Counter("hammer.count.3")
					_ = c.Hist("hammer.hist.3")
				}
			}
		}(r)
	}
	var writersWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(g int) {
			defer writersWG.Done()
			name := "hammer.count." + string(rune('0'+g))
			hist := "hammer.hist." + string(rune('0'+g))
			for i := 0; i < iters; i++ {
				c.Count(name, 1)
				c.Observe(hist, float64(i))
				if i%100 == 99 && g == 0 {
					c.Reset()
				}
			}
		}(g)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()
	// After the dust settles the collector still works.
	c.Reset()
	c.Count("after", 1)
	if c.Counter("after") != 1 {
		t.Fatal("collector unusable after hammer")
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of nothing should be nil")
	}
	a := NewCollector()
	if got := Multi(nil, a, nil); got != Recorder(a) {
		t.Fatal("Multi of one recorder should unwrap it")
	}
	b := NewCollector()
	m := Multi(a, b)
	m.Count("x", 3)
	m.Observe("h", 2)
	for _, c := range []*Collector{a, b} {
		if c.Counter("x") != 3 || c.Hist("h").Count != 1 {
			t.Fatalf("fan-out missed a recorder: %v", c.Snapshot())
		}
	}
}

func TestLogConfig(t *testing.T) {
	var sb strings.Builder
	off := LogConfig{Level: "off"}
	logger, err := off.Logger(&sb)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("dropped")
	logger.Error("also dropped")
	if sb.Len() != 0 {
		t.Fatalf("off logger wrote: %q", sb.String())
	}

	info := LogConfig{Level: "info", Format: "json"}
	logger, err = info.Logger(&sb)
	if err != nil {
		t.Fatal(err)
	}
	logger.Debug("below level")
	logger.Info("kept", "k", "v")
	out := sb.String()
	if !strings.Contains(out, `"msg":"kept"`) || !strings.Contains(out, `"k":"v"`) {
		t.Fatalf("json log output = %q", out)
	}
	if strings.Contains(out, "below level") {
		t.Fatalf("debug record leaked at info level: %q", out)
	}

	for _, bad := range []LogConfig{{Level: "verbose"}, {Level: "info", Format: "xml"}} {
		if _, err := bad.Logger(&sb); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}

	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var cfg LogConfig
	cfg.AddFlags(fs)
	if err := fs.Parse([]string{"-log", "debug", "-logformat", "json"}); err != nil {
		t.Fatal(err)
	}
	if cfg.Level != "debug" || cfg.Format != "json" {
		t.Fatalf("parsed config = %+v", cfg)
	}
}
