package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafeHelpers(t *testing.T) {
	// Must not panic and must not record anywhere.
	Count(nil, "x", 1)
	Observe(nil, "x", 1)
	s := StartSpan(nil, "x")
	s.End()
	if !s.start.IsZero() {
		t.Fatal("nil-recorder span read the clock")
	}
}

func TestCollectorCounters(t *testing.T) {
	c := NewCollector()
	Count(c, "a", 2)
	Count(c, "a", 3)
	Count(c, "b", -1)
	if got := c.Counter("a"); got != 5 {
		t.Fatalf("counter a = %d, want 5", got)
	}
	if got := c.Counter("b"); got != -1 {
		t.Fatalf("counter b = %d, want -1", got)
	}
	if got := c.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
}

func TestCollectorHistogram(t *testing.T) {
	c := NewCollector()
	for _, v := range []float64{1, 2, 3, 10} {
		Observe(c, "h", v)
	}
	h := c.Hist("h")
	if h.Count != 4 || h.Sum != 16 || h.Min != 1 || h.Max != 10 {
		t.Fatalf("hist = %+v", h)
	}
	if h.Mean() != 4 {
		t.Fatalf("mean = %v, want 4", h.Mean())
	}
	if (HistSummary{}).Mean() != 0 {
		t.Fatal("empty histogram mean should be 0")
	}
}

func TestCollectorSnapshotAndReset(t *testing.T) {
	c := NewCollector()
	Count(c, "a", 7)
	Observe(c, "h", 2)
	Observe(c, "h", 4)
	snap := c.Snapshot()
	if snap["a"] != 7 || snap["h"] != 3 || snap["h.count"] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	c.Reset()
	if got := c.Snapshot(); len(got) != 0 {
		t.Fatalf("snapshot after reset = %v", got)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Count("n", 1)
				c.Observe("h", float64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Counter("n"); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := c.Hist("h").Count; got != 8000 {
		t.Fatalf("concurrent hist count = %d, want 8000", got)
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	c := NewCollector()
	s := StartSpan(c, "span")
	time.Sleep(time.Millisecond)
	s.End()
	h := c.Hist("span")
	if h.Count != 1 || h.Sum < float64(time.Millisecond) {
		t.Fatalf("span hist = %+v", h)
	}
}

func TestIndexed(t *testing.T) {
	if got := Indexed("netrun.link", 3, "wire_bits"); got != "netrun.link.3.wire_bits" {
		t.Fatalf("Indexed = %q", got)
	}
}

func TestCollectorWriteTo(t *testing.T) {
	c := NewCollector()
	Count(c, "a.counter", 5)
	Observe(c, "b.hist", 2)
	var sb strings.Builder
	if _, err := c.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "a.counter") || !strings.Contains(out, "b.hist") {
		t.Fatalf("dump missing entries:\n%s", out)
	}
}

func TestProfilesCapture(t *testing.T) {
	dir := t.TempDir()
	p := &Profiles{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		TraceFile:  filepath.Join(dir, "trace.out"),
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to say.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{p.CPUProfile, p.MemProfile, p.TraceFile} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile %s: %v", f, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", f)
		}
	}
}

func TestProfilesFlags(t *testing.T) {
	var p Profiles
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	p.AddFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", "a", "-memprofile", "b", "-tracefile", "c"}); err != nil {
		t.Fatal(err)
	}
	if p.CPUProfile != "a" || p.MemProfile != "b" || p.TraceFile != "c" {
		t.Fatalf("parsed = %+v", p)
	}
	// No files requested: Start/stop are no-ops.
	var none Profiles
	stop, err := none.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
