package telemetry

// Canonical metric names emitted by the instrumented layers. Each layer
// documents its own semantics next to the emission site; this block is the
// single index consumers (exporters, tests, dashboards) key against.
const (
	// Sequential blackboard runtime (internal/blackboard). Per-player bits
	// use Indexed(BlackboardPlayer, i, "bits").
	BlackboardMessages    = "blackboard.messages"     // counter: messages appended
	BlackboardBits        = "blackboard.bits"         // counter: protocol bits written
	BlackboardRounds      = "blackboard.rounds"       // histogram: messages per completed run
	BlackboardRunBits     = "blackboard.run_bits"     // histogram: bits per completed run
	BlackboardPublicDraws = "blackboard.public_draws" // histogram: public-RNG draws per completed run
	BlackboardPlayer      = "blackboard.player"       // per-player prefix

	// Concurrent networked runtime (internal/netrun). Per-link metrics use
	// Indexed(NetrunLink, player, field) with fields "wire_bits",
	// "retries", "bad_frames", "dup_frames".
	NetrunTurns     = "netrun.turns"      // counter: turns completed
	NetrunWireBits  = "netrun.wire_bits"  // counter: bits on all links, both directions
	NetrunRetries   = "netrun.retries"    // counter: retransmission attempts beyond the first send
	NetrunBadFrames = "netrun.bad_frames" // counter: frames discarded for checksum/layout failure
	NetrunDupFrames = "netrun.dup_frames" // counter: duplicate frames discarded by seq check
	NetrunFaults    = "netrun.faults"     // counter: injected link faults (all kinds)
	NetrunCrashes   = "netrun.crashes"    // counter: players crashed
	NetrunAckNs     = "netrun.ack_ns"     // histogram: data-frame send-to-ack latency
	NetrunTurnNs    = "netrun.turn_ns"    // histogram: turn announcement-to-delivery latency
	NetrunLink      = "netrun.link"       // per-link prefix (legacy shared-board runtime, indexed by player)
	NetrunTopo      = "netrun.topo"       // per-link prefix (topology runtime, indexed by physical link)

	// Experiment harness (internal/sim) and worker pool (internal/pool).
	SimCells         = "sim.cells"           // counter: sweep cells evaluated
	SimCellNs        = "sim.cell_ns"         // histogram: wall time per sweep cell
	PoolRuns         = "pool.runs"           // counter: recorded pool invocations
	PoolWallNs       = "pool.wall_ns"        // histogram: wall time per pool invocation
	PoolWorkerBusyNs = "pool.worker_busy_ns" // histogram: per-worker busy time
	PoolUtilization  = "pool.utilization"    // histogram: busy/(workers*wall) per invocation

	// Estimators (internal/core).
	CoreCICSamples     = "core.cic.samples"      // counter: Monte-Carlo samples drawn
	CoreCICShards      = "core.cic.shards"       // counter: estimator shards evaluated
	CoreCICShardNs     = "core.cic.shard_ns"     // histogram: wall time per shard
	CoreCICLaneSamples = "core.cic.lane_samples" // counter: samples served by the 64-lane engine
	CoreCICIRSamples   = "core.cic.ir_samples"   // counter: samples served by the compiled-IR engine

	// Compiled protocol IR (internal/ir).
	IRCompileNs     = "ir.compile_ns"     // histogram: wall time per program compilation
	IRProgramHits   = "ir.program_hits"   // counter: program-cache lookups served without compiling
	IRProgramMisses = "ir.program_misses" // counter: program-cache lookups that compiled (or re-refused)

	// Live observability plane (internal/serve).
	ServeRunsDroppedUpdates = "serve.runs.dropped_updates" // counter: /runs updates dropped on full subscriber channels

	// Job service (internal/jobs). Queue depth is observable as
	// submitted - rejected - completed - failed - canceled-while-queued;
	// the cache bytes counter moves both ways (insert +, evict −), so
	// exporters should read it as a gauge.
	JobsSubmitted      = "jobs.submitted"       // counter: specs accepted (cache hits included)
	JobsRejected       = "jobs.rejected"        // counter: submissions refused by queue-cap backpressure
	JobsCompleted      = "jobs.completed"       // counter: jobs finished successfully by a worker
	JobsFailed         = "jobs.failed"          // counter: jobs whose run returned an error
	JobsCanceled       = "jobs.canceled"        // counter: jobs canceled by the client
	JobsJobNs          = "jobs.job_ns"          // histogram: wall time per executed job
	JobsQueueWaitNs    = "jobs.queue_wait_ns"   // histogram: submit-to-dispatch wait per executed job
	JobsQueueDepth     = "jobs.queue_depth"     // gauge: queued jobs (per-tenant via Labeled)
	JobsBitsServed     = "jobs.bits_served"     // counter: result bits returned to clients (per-tenant via Labeled)
	JobsCacheHitRatio  = "jobs.cache.hit_ratio" // gauge: hits/(hits+misses) of a tenant's submissions (per-tenant via Labeled)
	JobsCacheHits      = "jobs.cache.hits"      // counter: results served from the in-memory cache
	JobsCacheDiskHits  = "jobs.cache.disk_hits" // counter: results recovered from the disk spill
	JobsCacheMisses    = "jobs.cache.misses"    // counter: lookups that found nothing anywhere
	JobsCacheEvictions = "jobs.cache.evictions" // counter: entries pushed out of memory by the LRU
	JobsCacheBytes     = "jobs.cache.bytes"     // gauge: result bytes resident in memory
)

// Per-tenant quota accounting (internal/jobs). Each name is emitted only
// in its Labeled(name, "tenant", t) form; the unlabeled jobs.* counters
// above stay the fleet-wide totals. JobsQueueWaitNs, JobsQueueDepth,
// JobsBitsServed and JobsCacheHitRatio likewise gain tenant-labeled
// series alongside (or instead of) their unlabeled forms.
const (
	JobsTenantSubmitted = "jobs.tenant.submitted"  // counter: specs accepted from the tenant
	JobsTenantRejected  = "jobs.tenant.rejected"   // counter: tenant submissions refused by backpressure
	JobsTenantCacheHits = "jobs.tenant.cache_hits" // counter: tenant submissions served from cache
)
