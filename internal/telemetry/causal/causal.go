// Package causal is the repository's trace-context layer: it gives every
// job and experiment run a TraceID, every phase a SpanID with an explicit
// parent link, and records the resulting span/event tree into a bounded
// in-memory flight recorder (recorder.go) that can be dumped as NDJSON —
// per run, after the fact, without any external tracing dependency.
//
// Where the telemetry package answers "how much" (aggregate counters and
// histograms), this package answers "what happened to *this* run": which
// tenant submitted it, how long it queued, which estimator shards it ran,
// which network hops retried, and — for faulted runs — the instant of every
// injected fault and crash, all under one trace ID.
//
// # Propagation
//
// A Context value is the unit of propagation. It is carried by struct
// fields (sim.Config.Causal, core.EstimateOptions.Causal,
// netrun.Config.Causal, jobs.RunContext.Causal) — never by a package
// global — so concurrent runs cannot contaminate each other's traces. The
// zero Context is disabled: every method is an inert no-op costing one
// branch, exactly like the telemetry package's nil-Recorder discipline.
//
// Recording is strictly observational: call sites read the clock and
// nothing else, so transcripts, tables and RNG streams are byte-identical
// with tracing enabled — pinned by the same equivalence suites that pin
// the metrics plane.
package causal

import (
	"fmt"
	"strconv"
)

// TraceID identifies one root activity (a job, an experiment run). IDs are
// minted per Recorder from a counter, rendered as 16 hex digits; 0 is
// never minted and means "no trace".
type TraceID uint64

// String renders the ID the way the HTTP API and dumps spell it.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// ParseTraceID inverts String (any 1..16-digit hex form is accepted).
func ParseTraceID(s string) (TraceID, error) {
	if s == "" || len(s) > 16 {
		return 0, fmt.Errorf("causal: malformed trace id %q", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, fmt.Errorf("causal: malformed trace id %q", s)
	}
	return TraceID(v), nil
}

// SpanID identifies one span within a Recorder. IDs are unique across
// traces (one counter per Recorder); 0 means "no span" / "no parent".
type SpanID uint64

// String renders the span ID in the dump format.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// Kind distinguishes the two record shapes.
type Kind uint8

const (
	// KindSpan is a timed region: Start and End are both meaningful.
	KindSpan Kind = iota
	// KindEvent is an instant: only Start is meaningful.
	KindEvent
)

func (k Kind) String() string {
	if k == KindSpan {
		return "span"
	}
	return "event"
}

// Attr is one key/value annotation on a record. Values are strings — the
// recording paths precompute or cheaply format them, and the dump is
// NDJSON where everything is a string anyway.
type Attr struct {
	Key, Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: strconv.Itoa(value)} }

// Int64 builds a 64-bit integer attribute.
func Int64(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// Record is one flight-recorder entry: a completed span or an instant
// event, with its position in the causal tree. Start and End are
// nanoseconds since the Recorder's epoch (its construction time).
type Record struct {
	Trace  TraceID
	Span   SpanID
	Parent SpanID
	Kind   Kind
	Name   string
	Start  int64
	End    int64 // spans only; 0 for events
	Fault  bool  // marks fault instants and failure events
	Attrs  []Attr
}

// EventSink receives a copy of every record a Context emits, in emission
// order, for per-trace tees (the tracelog Sink implements it so Perfetto
// traces group by trace ID). Implementations must be safe for concurrent
// use. Sinks ride on the Context (WithSink), never on the Recorder, so
// concurrent traces can tee to different files.
type EventSink interface {
	CausalEvent(Record)
}

// Canonical record names, one per instrumented site. Tests and the CI
// smoke assert against these; DESIGN.md §14 documents the chain they form.
const (
	// Job service (root minted by serve.AttachJobs at admission).
	JobAdmission = "jobs.admission"  // root event: tenant + experiment attrs
	JobCacheHit  = "jobs.cache_hit"  // event: answered from the result cache
	JobRejected  = "jobs.rejected"   // fault event: refused (backpressure, invalid)
	JobQueueWait = "jobs.queue_wait" // span: submit -> dispatch
	JobDispatch  = "jobs.dispatch"   // event: a worker picked the job up
	JobExecute   = "jobs.execute"    // span: the runner's whole execution
	JobDone      = "jobs.done"       // event: finished successfully
	JobFail      = "jobs.fail"       // failure event: triggers the auto-dump
	JobCanceled  = "jobs.canceled"   // event: canceled by the client

	// Experiment harness and engines.
	ExperimentRoot = "experiment"     // root event for suite-run traces
	SimCell        = "sim.cell"       // span: one sweep cell
	CoreShard      = "core.cic.shard" // span: one estimator shard (engine attr)

	// Networked runtime.
	NetrunHop   = "netrun.hop"   // span: one data frame send -> ack (link, kind attrs)
	NetrunRetry = "netrun.retry" // event: one retransmission attempt
	NetrunFault = "netrun.fault" // fault event: one injected link fault
	NetrunCrash = "netrun.crash" // failure event: player crash, triggers auto-dump
)

// Context carries a trace identity and the current parent span into an
// instrumented layer. The zero Context is disabled; Contexts are values,
// copied freely, and safe for concurrent use (the Recorder and sink they
// point at are concurrency-safe).
type Context struct {
	rec   *Recorder
	sink  EventSink
	trace TraceID
	span  SpanID
}

// Enabled reports whether records will be kept. Call sites that build
// attribute slices should guard on it so the disabled path allocates
// nothing.
func (c Context) Enabled() bool { return c.rec != nil }

// Trace returns the context's trace ID (0 when disabled).
func (c Context) Trace() TraceID { return c.trace }

// Span returns the current parent span ID (0 when disabled).
func (c Context) Span() SpanID { return c.span }

// WithSink returns a copy of the context that additionally tees every
// record to sink. A nil sink removes the tee; a disabled context stays
// disabled.
func (c Context) WithSink(sink EventSink) Context {
	c.sink = sink
	return c
}

// StartSpan opens a child span of the context's current span. The span is
// recorded at End (flight-recorder entries are completed regions); a span
// never ended is simply absent from the dump.
func (c Context) StartSpan(name string, attrs ...Attr) Span {
	if c.rec == nil {
		return Span{}
	}
	return Span{
		ctx:   c,
		id:    c.rec.nextSpan(),
		name:  name,
		start: c.rec.now(),
		attrs: attrs,
	}
}

// Event records an instant under the current span.
func (c Context) Event(name string, attrs ...Attr) {
	c.emit(name, false, attrs)
}

// Fault records a fault instant (an injected drop/duplicate/corruption,
// a rejected submission) under the current span. Faults are expected,
// recoverable occurrences; they mark the record but trigger no dump.
func (c Context) Fault(name string, attrs ...Attr) {
	c.emit(name, true, attrs)
}

// Fail records a failure event (a player crash, a failed job) and asks
// the recorder to auto-dump this trace to its configured writer (see
// Recorder.SetAutoDump). Each trace dumps at most once.
func (c Context) Fail(name string, attrs ...Attr) {
	if c.rec == nil {
		return
	}
	c.emit(name, true, attrs)
	c.rec.autoDumpTrace(c.trace)
}

func (c Context) emit(name string, fault bool, attrs []Attr) {
	if c.rec == nil {
		return
	}
	r := Record{
		Trace:  c.trace,
		Span:   c.rec.nextSpan(),
		Parent: c.span,
		Kind:   KindEvent,
		Name:   name,
		Start:  c.rec.now(),
		Fault:  fault,
		Attrs:  attrs,
	}
	c.rec.append(r)
	if c.sink != nil {
		c.sink.CausalEvent(r)
	}
}

// Span is an in-flight timed region. The zero Span (from a disabled
// Context) is inert: Context returns a disabled Context and End returns
// immediately.
type Span struct {
	ctx   Context
	id    SpanID
	name  string
	start int64
	attrs []Attr
}

// Context returns a child context whose records parent to this span —
// the propagation step each layer performs before handing off to the
// next (service -> runner -> sweep cell -> shard / hop).
func (s Span) Context() Context {
	if s.ctx.rec == nil {
		return Context{}
	}
	c := s.ctx
	c.span = s.id
	return c
}

// ID returns the span's ID (0 for the inert zero Span).
func (s Span) ID() SpanID { return s.id }

// End completes the span and records it.
func (s Span) End() {
	if s.ctx.rec == nil {
		return
	}
	r := Record{
		Trace:  s.ctx.trace,
		Span:   s.id,
		Parent: s.ctx.span,
		Kind:   KindSpan,
		Name:   s.name,
		Start:  s.start,
		End:    s.ctx.rec.now(),
		Attrs:  s.attrs,
	}
	s.ctx.rec.append(r)
	if s.ctx.sink != nil {
		s.ctx.sink.CausalEvent(r)
	}
}
