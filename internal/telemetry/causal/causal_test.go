package causal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTraceIDStringParseRoundTrip(t *testing.T) {
	for _, id := range []TraceID{1, 0xdead, 1 << 63, ^TraceID(0)} {
		s := id.String()
		if len(s) != 16 {
			t.Errorf("TraceID(%d).String() = %q, want 16 hex digits", id, s)
		}
		got, err := ParseTraceID(s)
		if err != nil || got != id {
			t.Errorf("ParseTraceID(%q) = %v, %v; want %v", s, got, err, id)
		}
	}
	// Short forms are accepted (the counter mints small IDs).
	if got, err := ParseTraceID("a"); err != nil || got != 10 {
		t.Errorf("ParseTraceID(\"a\") = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "0000000000000000", "xyz", "12345678901234567", "-1"} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestDisabledContextIsInert(t *testing.T) {
	var c Context
	if c.Enabled() || c.Trace() != 0 || c.Span() != 0 {
		t.Fatal("zero Context not disabled")
	}
	// None of these may panic or record anywhere.
	sp := c.StartSpan("x", Int("i", 1))
	sp.End()
	sub := sp.Context()
	if sub.Enabled() {
		t.Error("child of disabled span enabled")
	}
	c.Event("e")
	c.Fault("f")
	c.Fail("boom")
	if c.WithSink(nil).Enabled() {
		t.Error("WithSink enabled a disabled context")
	}
}

func TestStartTraceAndParentLinks(t *testing.T) {
	r := NewRecorder(256)
	c := r.StartTrace(JobAdmission, String("tenant", "acme"))
	if !c.Enabled() || c.Trace() == 0 || c.Span() == 0 {
		t.Fatalf("StartTrace context = %+v", c)
	}
	queue := c.StartSpan(JobQueueWait)
	queue.End()
	exec := c.StartSpan(JobExecute)
	hopCtx := exec.Context()
	if hopCtx.Trace() != c.Trace() || hopCtx.Span() != exec.ID() {
		t.Fatalf("Span.Context() trace/span = %v/%v, want %v/%v",
			hopCtx.Trace(), hopCtx.Span(), c.Trace(), exec.ID())
	}
	hopCtx.Event(NetrunRetry, Int("attempt", 1))
	exec.End()

	recs := r.Records(c.Trace())
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4: %+v", len(recs), recs)
	}
	byName := map[string]Record{}
	for _, rec := range recs {
		if rec.Trace != c.Trace() {
			t.Errorf("record %q on trace %v, want %v", rec.Name, rec.Trace, c.Trace())
		}
		byName[rec.Name] = rec
	}
	root := byName[JobAdmission]
	if root.Kind != KindEvent || root.Parent != 0 || root.Span != c.Span() {
		t.Errorf("root record = %+v", root)
	}
	if got := byName[JobQueueWait]; got.Kind != KindSpan || got.Parent != root.Span {
		t.Errorf("queue span = %+v, want parent %v", got, root.Span)
	}
	execRec := byName[JobExecute]
	if execRec.Parent != root.Span || execRec.End < execRec.Start {
		t.Errorf("execute span = %+v", execRec)
	}
	if got := byName[NetrunRetry]; got.Parent != execRec.Span {
		t.Errorf("retry event parent = %v, want execute span %v", got.Parent, execRec.Span)
	}
}

func TestTwoTracesStayDistinct(t *testing.T) {
	r := NewRecorder(256)
	a := r.StartTrace("root-a")
	b := r.StartTrace("root-b")
	if a.Trace() == b.Trace() {
		t.Fatal("two traces share an ID")
	}
	a.Event("only-a")
	b.Event("only-b")
	for _, rec := range r.Records(a.Trace()) {
		if rec.Name == "only-b" || rec.Name == "root-b" {
			t.Errorf("trace-a filter returned %q", rec.Name)
		}
	}
	if got := len(r.Records(a.Trace())); got != 2 {
		t.Errorf("trace a holds %d records, want 2", got)
	}
	if got := len(r.Records(0)); got != 4 {
		t.Errorf("unfiltered dump holds %d records, want 4", got)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRecorder(64) // small: per-shard rings hit their floor of 16
	c := r.StartTrace("root")
	_, _, capacity := r.Stats()
	for i := 0; i < 10*capacity; i++ {
		c.Event("spam", Int("i", i))
	}
	held, appended, _ := r.Stats()
	if held != capacity {
		t.Errorf("held = %d, want full capacity %d", held, capacity)
	}
	if want := int64(10*capacity + 1); appended != want {
		t.Errorf("appended = %d, want %d", appended, want)
	}
	// Everything held is recent: the oldest survivor is newer than the
	// records evicted before it (per shard, oldest evicts first).
	recs := r.Records(0)
	if len(recs) != capacity {
		t.Fatalf("Records returned %d, want %d", len(recs), capacity)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Start {
			t.Fatalf("records not sorted by start at %d", i)
		}
	}
}

func TestDumpNDJSON(t *testing.T) {
	r := NewRecorder(256)
	c := r.StartTrace(JobAdmission, String("tenant", "t1"))
	sp := c.StartSpan(JobExecute, String("job", "j1"))
	sp.Context().Fault(NetrunFault, String("fault", "drop"))
	sp.End()

	var buf bytes.Buffer
	n, err := r.Dump(&buf, c.Trace())
	if err != nil || n != 3 {
		t.Fatalf("Dump = %d, %v", n, err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("dump has %d lines, want 3", len(lines))
	}
	root := lines[0]
	if root["name"] != JobAdmission || root["trace"] != c.Trace().String() {
		t.Errorf("root line = %v", root)
	}
	if attrs, _ := root["attrs"].(map[string]any); attrs["tenant"] != "t1" {
		t.Errorf("root attrs = %v", root["attrs"])
	}
	var sawFault, sawSpan bool
	for _, m := range lines {
		if m["name"] == NetrunFault {
			sawFault = m["fault"] == true && m["kind"] == "event"
			if m["parent"] == nil || m["parent"] == "" {
				t.Error("fault event lost its parent link")
			}
		}
		if m["name"] == JobExecute {
			sawSpan = m["kind"] == "span" && m["endNs"] != nil
		}
	}
	if !sawFault || !sawSpan {
		t.Errorf("dump missing fault event (%v) or completed span (%v)", sawFault, sawSpan)
	}
}

func TestAutoDumpOncePerTrace(t *testing.T) {
	r := NewRecorder(256)
	var buf bytes.Buffer
	r.SetAutoDump(&buf)
	c := r.StartTrace("root")
	c.Fail(JobFail, String("error", "boom"))
	first := buf.Len()
	if first == 0 {
		t.Fatal("Fail did not auto-dump")
	}
	c.Fail(NetrunCrash, String("error", "again"))
	if buf.Len() != first {
		t.Error("second Fail on the same trace dumped again")
	}
	if !strings.Contains(buf.String(), JobFail) {
		t.Errorf("auto-dump missing the failure record: %s", buf.String())
	}
	// A different trace still dumps.
	d := r.StartTrace("root-2")
	d.Fail(JobFail)
	if buf.Len() == first {
		t.Error("second trace's failure did not dump")
	}
}

type captureSink struct {
	mu   sync.Mutex
	recs []Record
}

func (s *captureSink) CausalEvent(r Record) {
	s.mu.Lock()
	s.recs = append(s.recs, r)
	s.mu.Unlock()
}

func TestWithSinkTeesRecords(t *testing.T) {
	r := NewRecorder(256)
	sink := &captureSink{}
	c := r.StartTrace("root").WithSink(sink)
	c.Event("e1")
	sp := c.StartSpan("s1")
	sp.End()
	sp.Context().Fault("f1")
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.recs) != 3 {
		t.Fatalf("sink saw %d records, want 3", len(sink.recs))
	}
	// Emission order: event, span (at End), then the fault emitted after.
	if sink.recs[0].Name != "e1" || sink.recs[1].Name != "s1" || sink.recs[2].Name != "f1" {
		t.Errorf("sink order = %v, %v, %v", sink.recs[0].Name, sink.recs[1].Name, sink.recs[2].Name)
	}
}

// TestRecorderHammer drives the sharded ring from many goroutines at once —
// appends, trace mints, snapshots, stats and auto-dumps racing — and is the
// CI -race pin for the flight recorder's locking discipline.
func TestRecorderHammer(t *testing.T) {
	r := NewRecorder(1024)
	r.SetAutoDump(&bytes.Buffer{}) // exercise the dump path too
	const (
		writers   = 8
		perWriter = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.StartTrace("hammer", Int("writer", w))
			for i := 0; i < perWriter; i++ {
				switch i % 4 {
				case 0:
					c.Event("e", Int("i", i))
				case 1:
					sp := c.StartSpan("s", Int("i", i))
					sp.Context().Event("child")
					sp.End()
				case 2:
					c.Fault("f")
				default:
					c.Fail("fatal") // dedup means only the first dumps
				}
			}
		}(w)
	}
	// Concurrent readers: snapshots and stats while writers spin.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Records(0)
				r.Stats()
			}
		}
	}()
	wg.Wait()
	close(done)
	held, appended, capacity := r.Stats()
	if held != capacity {
		t.Errorf("held = %d, want %d (hammer should fill the ring)", held, capacity)
	}
	if appended < int64(writers*perWriter) {
		t.Errorf("appended = %d, want >= %d", appended, writers*perWriter)
	}
}
