package causal

import (
	"bufio"
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCapacity is the flight recorder's record capacity when
// NewRecorder is given 0. At ~100 bytes per record it bounds the recorder
// around a few megabytes — enough to hold several quick-scale jobs end to
// end while staying a fixed, crash-safe budget.
const DefaultCapacity = 32768

// Recorder is the flight recorder: a bounded, lock-cheap ring of recent
// Records. Writes are sharded — each shard has its own mutex and fixed
// ring, and appenders pick shards round-robin with one atomic increment —
// so concurrent recording from pool workers, player goroutines and HTTP
// handlers contends only 1/shards of the time and never allocates.
// Eviction is per shard, oldest first; because appends spread uniformly,
// global order is reconstructed at dump time by timestamp.
//
// The Recorder also mints IDs: trace IDs and span IDs each come from a
// process-local atomic counter, so they are unique per Recorder and cheap
// enough to mint on every phase boundary.
type Recorder struct {
	epoch  time.Time
	shards []recorderShard
	mask   uint64
	cursor atomic.Uint64 // round-robin shard selector
	traces atomic.Uint64 // TraceID mint
	spans  atomic.Uint64 // SpanID mint

	dumpMu   sync.Mutex
	autoDump io.Writer
	dumped   map[TraceID]bool
}

// recorderShard is one mutex+ring pair, padded so neighboring shards do
// not share a cache line under write contention.
type recorderShard struct {
	mu    sync.Mutex
	buf   []Record
	next  int
	total int64 // appends ever, for eviction accounting
	_     [64]byte
}

// NewRecorder builds a flight recorder holding at most capacity records
// (0 means DefaultCapacity). The shard count is the power of two nearest
// GOMAXPROCS (capped at 16); capacity is split evenly across shards.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	per := capacity / shards
	if per < 16 {
		per = 16
	}
	r := &Recorder{
		epoch:  time.Now(),
		shards: make([]recorderShard, shards),
		mask:   uint64(shards - 1),
		dumped: make(map[TraceID]bool),
	}
	for i := range r.shards {
		r.shards[i].buf = make([]Record, 0, per)
	}
	return r
}

// Epoch returns the recorder's time origin; Record timestamps are
// nanoseconds since it.
func (r *Recorder) Epoch() time.Time { return r.epoch }

func (r *Recorder) now() int64 { return int64(time.Since(r.epoch)) }

func (r *Recorder) nextSpan() SpanID { return SpanID(r.spans.Add(1)) }

// StartTrace mints a fresh trace with a root span and records the root
// event (name + attrs carry the trace's identity: tenant, experiment,
// run ID). The returned Context parents everything to the root span.
func (r *Recorder) StartTrace(name string, attrs ...Attr) Context {
	return r.StartTraceSink(nil, name, attrs...)
}

// StartTraceSink is StartTrace with a per-trace tee attached before the
// root record is emitted, so the sink sees the root's identity attrs too
// (the tracelog Sink promotes them onto its Perfetto process). Attaching
// via Context.WithSink after StartTrace would miss the root.
func (r *Recorder) StartTraceSink(sink EventSink, name string, attrs ...Attr) Context {
	trace := TraceID(r.traces.Add(1))
	root := r.nextSpan()
	rec := Record{
		Trace: trace,
		Span:  root,
		Kind:  KindEvent,
		Name:  name,
		Start: r.now(),
		Attrs: attrs,
	}
	r.append(rec)
	if sink != nil {
		sink.CausalEvent(rec)
	}
	return Context{rec: r, sink: sink, trace: trace, span: root}
}

// append stores one record, evicting the shard's oldest when full.
func (r *Recorder) append(rec Record) {
	s := &r.shards[r.cursor.Add(1)&r.mask]
	s.mu.Lock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, rec)
	} else {
		s.buf[s.next] = rec
		s.next++
		if s.next == len(s.buf) {
			s.next = 0
		}
	}
	s.total++
	s.mu.Unlock()
}

// Stats reports the recorder's occupancy: records currently held, records
// ever appended (appended - held have been evicted), and total capacity.
func (r *Recorder) Stats() (held int, appended int64, capacity int) {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		held += len(s.buf)
		appended += s.total
		capacity += cap(s.buf)
		s.mu.Unlock()
	}
	return held, appended, capacity
}

// Records snapshots the held records, filtered to one trace when filter is
// nonzero, ordered by start time (ties by span ID, which allocation order
// makes causally consistent). The slice is detached.
func (r *Recorder) Records(filter TraceID) []Record {
	var out []Record
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for _, rec := range s.buf {
			if filter == 0 || rec.Trace == filter {
				out = append(out, rec)
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Span < out[j].Span
	})
	return out
}

// jsonRecord is the NDJSON dump shape of one Record.
type jsonRecord struct {
	Trace   string            `json:"trace"`
	Span    string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Kind    string            `json:"kind"`
	Name    string            `json:"name"`
	StartNs int64             `json:"startNs"`
	EndNs   int64             `json:"endNs,omitempty"`
	Fault   bool              `json:"fault,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

func toJSONRecord(rec Record) jsonRecord {
	j := jsonRecord{
		Trace:   rec.Trace.String(),
		Span:    rec.Span.String(),
		Kind:    rec.Kind.String(),
		Name:    rec.Name,
		StartNs: rec.Start,
		EndNs:   rec.End,
		Fault:   rec.Fault,
	}
	if rec.Parent != 0 {
		j.Parent = rec.Parent.String()
	}
	if len(rec.Attrs) > 0 {
		j.Attrs = make(map[string]string, len(rec.Attrs))
		for _, a := range rec.Attrs {
			j.Attrs[a.Key] = a.Value
		}
	}
	return j
}

// Dump writes the held records (one trace when filter is nonzero) as
// NDJSON — one JSON object per line, in Records order — and returns the
// number of records written. Attr maps serialize with sorted keys
// (encoding/json's map order), so equal states dump byte-identically.
func (r *Recorder) Dump(w io.Writer, filter TraceID) (int, error) {
	recs := r.Records(filter)
	if err := DumpRecords(w, recs); err != nil {
		return 0, err
	}
	return len(recs), nil
}

// DumpRecords writes an already-snapshotted record slice as NDJSON, in
// slice order — for callers that need the records (or their count) before
// serializing, like the HTTP dump endpoint.
func DumpRecords(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range recs {
		if err := enc.Encode(toJSONRecord(rec)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SetAutoDump directs failure dumps to w: the first Fail recorded under
// any given trace dumps that trace's records to w as NDJSON. nil disables
// auto-dumping. Safe to call at any time.
func (r *Recorder) SetAutoDump(w io.Writer) {
	r.dumpMu.Lock()
	r.autoDump = w
	r.dumpMu.Unlock()
}

// autoDumpTrace performs the at-most-once failure dump for a trace. The
// dump runs under dumpMu so concurrent failures cannot interleave their
// output; append never takes dumpMu, so recording proceeds unimpeded.
func (r *Recorder) autoDumpTrace(trace TraceID) {
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	if r.autoDump == nil || r.dumped[trace] {
		return
	}
	r.dumped[trace] = true
	_, _ = r.Dump(r.autoDump, trace)
}
