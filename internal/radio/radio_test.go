package radio

import (
	"testing"

	"broadcastic/internal/bitvec"
	"broadcastic/internal/disj"
	"broadcastic/internal/rng"
)

func TestDataSlots(t *testing.T) {
	cases := []struct{ bits, payload, want int }{
		{0, 32, 1}, {1, 32, 1}, {32, 32, 1}, {33, 32, 2}, {64, 32, 2}, {65, 32, 3},
	}
	for _, tc := range cases {
		if got := dataSlots(tc.bits, tc.payload); got != tc.want {
			t.Fatalf("dataSlots(%d,%d) = %d, want %d", tc.bits, tc.payload, got, tc.want)
		}
	}
}

func TestRunPolledDisjMatchesProtocol(t *testing.T) {
	src := rng.New(701)
	inst, err := disj.GenerateFromMuN(src, 1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := disj.SolveOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	out, report, err := RunPolledDisj(inst, 32)
	if err != nil {
		t.Fatal(err)
	}
	if out.Disjoint != direct.Disjoint {
		t.Fatal("polled run disagrees with the direct protocol")
	}
	if report.Bits != direct.Bits {
		t.Fatalf("polled bits %d != protocol bits %d", report.Bits, direct.Bits)
	}
	if report.TotalSlots() <= 0 {
		t.Fatal("no slots accounted")
	}
	if report.Collisions != 0 {
		t.Fatal("polled execution reported collisions")
	}
	if _, _, err := RunPolledDisj(inst, 0); err == nil {
		t.Fatal("zero payload accepted")
	}
}

func TestContentionDisjCorrectRandom(t *testing.T) {
	// Las Vegas correctness: always the right answer, any randomness.
	src := rng.New(702)
	for trial := 0; trial < 80; trial++ {
		n := src.Intn(300) + 1
		k := src.Intn(8) + 1
		var inst *disj.Instance
		var err error
		switch src.Intn(3) {
		case 0:
			inst, err = disj.GenerateDisjoint(src, n, k, src.Float64())
		case 1:
			inst, err = disj.GenerateIntersecting(src, n, k, src.Intn(n)+1, src.Float64())
		default:
			if k < 2 {
				k = 2
			}
			inst, err = disj.GenerateFromMuN(src, n, k)
		}
		if err != nil {
			t.Fatal(err)
		}
		want, err := inst.Disjoint()
		if err != nil {
			t.Fatal(err)
		}
		out, report, err := ContentionDisj(inst, 32, src)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", n, k, err)
		}
		if out.Disjoint != want {
			t.Fatalf("n=%d k=%d: contention answered %v, truth %v", n, k, out.Disjoint, want)
		}
		if report.TotalSlots() <= 0 {
			t.Fatal("no slots accounted")
		}
	}
}

func TestContentionDisjValidation(t *testing.T) {
	src := rng.New(703)
	inst, _ := disj.GenerateDisjoint(src, 16, 2, 0.5)
	if _, _, err := ContentionDisj(nil, 32, src); err == nil {
		t.Fatal("nil instance accepted")
	}
	if _, _, err := ContentionDisj(inst, 0, src); err == nil {
		t.Fatal("zero payload accepted")
	}
	if _, _, err := ContentionDisj(inst, 32, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestContentionDeterministicGivenSeed(t *testing.T) {
	src := rng.New(704)
	inst, err := disj.GenerateFromMuN(src, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, ra, err := ContentionDisj(inst, 32, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, rb, err := ContentionDisj(inst, 32, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Disjoint != b.Disjoint || ra.TotalSlots() != rb.TotalSlots() || ra.Bits != rb.Bits {
		t.Fatal("same seed produced different executions")
	}
}

func TestPollingVsContentionTradeoff(t *testing.T) {
	// The tradeoff the blackboard abstraction hides: when almost every
	// station contributes every cycle (μ^n inputs), deterministic polling
	// is near-optimal and contention pays collision overhead; when
	// speakers are rare (one station holds every zero), polling burns a
	// slot per silent station per cycle and contention wins.
	src := rng.New(705)
	const n, k = 4096, 64

	// Regime 1: μ^n — polling efficient; contention within a small factor.
	mun, err := disj.GenerateFromMuN(src, n, k)
	if err != nil {
		t.Fatal(err)
	}
	_, polled, err := RunPolledDisj(mun, 32)
	if err != nil {
		t.Fatal(err)
	}
	_, contended, err := ContentionDisj(mun, 32, rng.New(100))
	if err != nil {
		t.Fatal(err)
	}
	if contended.TotalSlots() > 4*polled.TotalSlots() {
		t.Fatalf("μ^n: contention %d slots more than 4× polled %d",
			contended.TotalSlots(), polled.TotalSlots())
	}

	// Regime 2: skew — only station 0 ever has anything to say.
	skew, err := skewedInstance(n, k)
	if err != nil {
		t.Fatal(err)
	}
	_, polledSkew, err := RunPolledDisj(skew, 32)
	if err != nil {
		t.Fatal(err)
	}
	_, contendedSkew, err := ContentionDisj(skew, 32, rng.New(101))
	if err != nil {
		t.Fatal(err)
	}
	if contendedSkew.TotalSlots() >= polledSkew.TotalSlots() {
		t.Fatalf("skew: contention %d slots not below polled %d",
			contendedSkew.TotalSlots(), polledSkew.TotalSlots())
	}
}

// skewedInstance gives station 0 an empty set (every zero) and everyone
// else the full universe.
func skewedInstance(n, k int) (*disj.Instance, error) {
	sets := make([]*bitvec.Vector, k)
	for i := range sets {
		v, err := bitvec.New(n)
		if err != nil {
			return nil, err
		}
		if i > 0 {
			v.SetAll()
		}
		sets[i] = v
	}
	return disj.NewInstance(n, sets)
}

func TestContentionEventuallyCollides(t *testing.T) {
	// With many simultaneous contenders collisions must show up — the
	// contention the blackboard abstraction hides.
	src := rng.New(706)
	collisions := 0
	for trial := 0; trial < 20; trial++ {
		inst, err := disj.GenerateDisjoint(src, 256, 16, 0.2) // many zeros everywhere
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := ContentionDisj(inst, 32, src)
		if err != nil {
			t.Fatal(err)
		}
		collisions += rep.Collisions
	}
	if collisions == 0 {
		t.Fatal("no collisions observed across 20 dense instances")
	}
}
