// Package radio makes the paper's wireless reading of the broadcast model
// concrete. Section 1 notes the blackboard "can also be viewed as an
// abstract model of single-hop wireless networks, which abstracts away the
// details of contention management" — this package puts the contention
// back and measures what the abstraction hides.
//
// The substrate is a slotted single-hop channel: in each slot any subset
// of stations may transmit; a slot is idle (nobody), a success (exactly
// one), or a collision (two or more, nothing received). A station that has
// won a slot streams its message over ⌈bits/payload⌉ data slots.
//
// Two ways to run the Section 5 disjointness protocol on this channel:
//
//   - Polled: the blackboard schedule is deterministic, so stations take
//     turns with zero contention — every board message maps directly to
//     slots. This is the paper's abstraction, priced in airtime.
//   - Contention: nobody polls. Any station holding at least ⌈z/k⌉ new
//     zeroes (against the current board, z = live coordinates) contends in
//     a window of k slots, picking a slot uniformly; the first solo
//     transmission wins and sends its batch, after which everyone
//     recomputes. A completely idle window certifies that no station
//     qualifies — by the pigeonhole argument that is a proof of
//     non-disjointness — so the protocol is Las Vegas: zero error, random
//     slot count.
//
// Experiment E19 compares the two across (n, k).
package radio

import (
	"fmt"

	"broadcastic/internal/disj"
	"broadcastic/internal/encoding"
	"broadcastic/internal/rng"
)

// SlotReport accounts for channel usage.
type SlotReport struct {
	DataSlots      int // slots carrying message payload
	ControlSlots   int // contention/polling slots (idle, collision, preamble)
	Collisions     int // collision slots (subset of ControlSlots)
	IdleSlots      int // idle slots (subset of ControlSlots)
	Bits           int // payload bits carried
	ContentionWins int // successful channel acquisitions
}

// TotalSlots returns data plus control slots.
func (r *SlotReport) TotalSlots() int { return r.DataSlots + r.ControlSlots }

// dataSlots converts a message size to slot count (at least one slot).
func dataSlots(bits, payload int) int {
	if bits <= 0 {
		return 1
	}
	return (bits + payload - 1) / payload
}

// RunPolledDisj maps a deterministic Section 5 execution onto the channel:
// each board message occupies its data slots; there is no contention
// because the schedule is common knowledge. Pass messages (1 bit) are
// counted as control slots — they exist only to keep the schedule moving.
func RunPolledDisj(inst *disj.Instance, payloadBits int) (*disj.Outcome, *SlotReport, error) {
	if payloadBits < 1 {
		return nil, nil, fmt.Errorf("radio: payload %d bits < 1", payloadBits)
	}
	out, sizes, err := disj.SolveOptimalMessages(inst, disj.Options{})
	if err != nil {
		return nil, nil, err
	}
	report := &SlotReport{}
	for _, bits := range sizes {
		if bits <= 1 {
			report.ControlSlots++
		} else {
			report.DataSlots += dataSlots(bits, payloadBits)
		}
		report.Bits += bits
	}
	return out, report, nil
}

// ContentionDisj solves disjointness over the contended channel with
// channel capture and binary exponential backoff:
//
//   - any station holding at least one "new zero" (a zero coordinate of
//     its input not yet on the board) contends;
//   - contention runs in windows of 1, 2, 4, …, k slots (doubling after a
//     window with collisions, resetting after a success); every contender
//     transmits in exactly one uniformly random slot of each window;
//   - the first solo transmission captures the channel, and the winner
//     dumps ALL its new zeroes in one message (station id, count, and a
//     ⌈log₂ C(z, c)⌉-bit subset of the live set);
//   - because every contender transmits once per window, a window with no
//     transmissions at all certifies that nobody has a new zero — every
//     live coordinate is in everyone's set — which is a proof of
//     non-disjointness. The protocol is therefore Las Vegas: zero error,
//     random slot count.
//
// Each station dumps at most once (its new-zero set only shrinks), so
// there are at most k captures.
func ContentionDisj(inst *disj.Instance, payloadBits int, src *rng.Source) (*disj.Outcome, *SlotReport, error) {
	if inst == nil {
		return nil, nil, fmt.Errorf("radio: nil instance")
	}
	if payloadBits < 1 {
		return nil, nil, fmt.Errorf("radio: payload %d bits < 1", payloadBits)
	}
	if src == nil {
		return nil, nil, fmt.Errorf("radio: nil randomness source")
	}
	n, k := inst.N, inst.K
	report := &SlotReport{}

	covered := make([]bool, n)
	coveredCount := 0
	live := make([]int, 0, n)
	window := 1

	// Safety bound: at most k captures, expected O(log k) windows between
	// captures; 64·(k+1) windows of ≤ 2 expected retries each is generous.
	maxWindows := 64 * (k + 16) * 32

	for round := 0; ; round++ {
		if round > maxWindows {
			return nil, nil, fmt.Errorf("radio: contention did not converge in %d windows", maxWindows)
		}
		if coveredCount == n {
			return &disj.Outcome{Disjoint: true, Bits: report.Bits}, report, nil
		}
		// Public state recomputed from the board.
		live = live[:0]
		for j := 0; j < n; j++ {
			if !covered[j] {
				live = append(live, j)
			}
		}
		z := len(live)

		// Which stations still hold new zeroes (each computes privately).
		type contender struct {
			station   int
			positions []int // indices into live of all its new zeroes
		}
		var contenders []contender
		for i := 0; i < k; i++ {
			var positions []int
			for pos, coord := range live {
				if !inst.Sets[i].Get(coord) {
					positions = append(positions, pos)
				}
			}
			if len(positions) > 0 {
				contenders = append(contenders, contender{station: i, positions: positions})
			}
		}

		// One contention window. Every contender transmits in exactly one
		// slot, so a fully silent window certifies there are no contenders.
		choice := make(map[int][]int, window)
		for ci := range contenders {
			s := src.Intn(window)
			choice[s] = append(choice[s], ci)
		}
		transmissions := false
		won := false
		for s := 0; s < window && !won; s++ {
			report.ControlSlots++
			switch len(choice[s]) {
			case 0:
				report.IdleSlots++
			case 1:
				transmissions = true
				won = true
				c := contenders[choice[s][0]]
				bits := encoding.FixedWidth(uint64(k)) // station id preamble
				bits += encoding.NonNegLen(uint64(len(c.positions)))
				batchBits, err := encoding.BinomialBitLen(z, len(c.positions))
				if err != nil {
					return nil, nil, err
				}
				bits += batchBits
				report.DataSlots += dataSlots(bits, payloadBits)
				report.Bits += bits
				report.ContentionWins++
				for _, pos := range c.positions {
					coord := live[pos]
					if !covered[coord] {
						covered[coord] = true
						coveredCount++
					}
				}
			default:
				transmissions = true
				report.Collisions++
			}
		}
		switch {
		case won:
			window = 1 // capture succeeded: reset backoff
		case transmissions:
			if window < k {
				window *= 2 // collisions: back off
				if window > k {
					window = k
				}
			}
		default:
			// A completely silent window: no station holds a new zero, so
			// every live coordinate is common to all sets.
			if len(contenders) != 0 {
				return nil, nil, fmt.Errorf("radio: silent window with %d contenders", len(contenders))
			}
			return &disj.Outcome{Disjoint: false, Bits: report.Bits}, report, nil
		}
	}
}
