// Package blackboard implements the communication model of the paper
// (Section 3): k players, each holding a private input, communicate by
// writing messages on a shared blackboard that everyone reads for free. At
// each point the current contents of the board determine whose turn it is
// to speak; the speaker produces a message from its input, its private
// randomness, the public randomness, and the board, and appends it. The
// communication cost of an execution is the total number of bits written.
//
// The package is deliberately mechanism-only: concrete protocols
// (internal/disj, internal/andk, internal/compress) supply the players and
// the speaking order; this package supplies the board, bit-exact
// accounting, the execution loop, and runaway-protocol guards.
package blackboard

import (
	"errors"
	"fmt"
	"strings"

	"broadcastic/internal/encoding"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
)

// Message is one blackboard write: a bit string attributed to a player.
type Message struct {
	Player int
	Bits   []byte // packed MSB-first; trailing pad bits are zero
	Len    int    // number of meaningful bits
}

// NewMessage packs the contents of a BitWriter into a Message.
func NewMessage(player int, w *encoding.BitWriter) Message {
	return Message{Player: player, Bits: w.Bytes(), Len: w.Len()}
}

// Reader returns a BitReader over the message payload.
func (m Message) Reader() (*encoding.BitReader, error) {
	return encoding.NewBitReader(m.Bits, m.Len)
}

// Key returns a compact string identifying the message content (player and
// bits), suitable for use as a map key when building transcript histograms.
func (m Message) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", m.Player)
	for i := 0; i < m.Len; i++ {
		if m.Bits[i/8]&(1<<uint(7-i%8)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Board is the shared blackboard. It is written by one player at a time
// (the model is sequential) and read freely by everyone.
type Board struct {
	numPlayers int
	msgs       []Message
	totalBits  int
	perPlayer  []int
	public     *rng.Source
}

// NewBoard creates an empty board for numPlayers players with the given
// public-randomness stream (may be nil for deterministic protocols).
func NewBoard(numPlayers int, public *rng.Source) (*Board, error) {
	if numPlayers <= 0 {
		return nil, fmt.Errorf("blackboard: non-positive player count %d", numPlayers)
	}
	return &Board{
		numPlayers: numPlayers,
		perPlayer:  make([]int, numPlayers),
		public:     public,
	}, nil
}

// NumPlayers returns k.
func (b *Board) NumPlayers() int { return b.numPlayers }

// Public returns the shared public-randomness stream, or nil if none was
// provided. All players observe the same stream, advanced in board order.
func (b *Board) Public() *rng.Source { return b.public }

// Append writes a message on the board. The message must be well-formed:
// its player in range, its length within the payload, and — per the Message
// contract — every trailing pad bit zero. Pad validation matters because
// Key and TranscriptKey hash only the first Len bits: two messages that
// differ solely in pad bits would collide as transcript keys while carrying
// different bytes, so the board refuses the ambiguity at the door.
func (b *Board) Append(m Message) error {
	if m.Player < 0 || m.Player >= b.numPlayers {
		return fmt.Errorf("blackboard: message from invalid player %d", m.Player)
	}
	if m.Len < 0 || m.Len > len(m.Bits)*8 {
		return fmt.Errorf("blackboard: message length %d exceeds payload of %d bits", m.Len, len(m.Bits)*8)
	}
	if err := checkPadBits(m.Bits, m.Len); err != nil {
		return err
	}
	b.msgs = append(b.msgs, m)
	b.totalBits += m.Len
	b.perPlayer[m.Player] += m.Len
	return nil
}

// checkPadBits verifies that every bit of bits beyond the first n is zero.
func checkPadBits(bits []byte, n int) error {
	if n%8 != 0 {
		if pad := bits[n/8] & (0xff >> uint(n%8)); pad != 0 {
			return fmt.Errorf("blackboard: message has nonzero pad bits in final byte (len %d)", n)
		}
	}
	for i := (n + 7) / 8; i < len(bits); i++ {
		if bits[i] != 0 {
			return fmt.Errorf("blackboard: message has nonzero bytes beyond its %d-bit payload", n)
		}
	}
	return nil
}

// Messages returns the messages written so far (shared slice; callers must
// not mutate).
func (b *Board) Messages() []Message { return b.msgs }

// NumMessages returns the count of messages written.
func (b *Board) NumMessages() int { return len(b.msgs) }

// TotalBits returns the communication cost so far.
func (b *Board) TotalBits() int { return b.totalBits }

// PlayerBits returns the bits written by one player so far.
func (b *Board) PlayerBits(player int) int {
	if player < 0 || player >= b.numPlayers {
		return 0
	}
	return b.perPlayer[player]
}

// TranscriptKey returns a string identifying the full board contents,
// usable as a histogram key for transcript distributions.
func (b *Board) TranscriptKey() string {
	var s strings.Builder
	for _, m := range b.msgs {
		s.WriteString(m.Key())
		s.WriteByte('|')
	}
	return s.String()
}

// Player is a protocol participant: given the board, it produces its next
// message. Implementations close over the player's private input and
// private randomness.
type Player interface {
	Speak(b *Board) (Message, error)
}

// Scheduler decides whose turn it is from the public board contents, per
// the model: "the current contents of the blackboard determine whose turn
// it is to speak next".
type Scheduler interface {
	// Next returns the next speaker, or done=true when the protocol halts.
	Next(b *Board) (speaker int, done bool, err error)
}

// Limits guards against runaway protocols during development and failure
// injection. Zero fields mean "no limit". Limits are enforced *before* a
// message is appended: an execution that would exceed a limit fails with
// the offending message rejected, so the board never holds more than
// MaxMessages messages or MaxBits bits.
type Limits struct {
	MaxMessages int
	MaxBits     int
}

// Errors returned by Run.
var (
	ErrMessageLimit = errors.New("blackboard: message limit exceeded")
	ErrBitLimit     = errors.New("blackboard: bit limit exceeded")
)

// Result captures a finished execution.
type Result struct {
	Board *Board
}

// Run executes a protocol: it repeatedly asks the scheduler for the next
// speaker and appends that player's message until the scheduler reports
// completion. The returned Result owns the final board. Limits are checked
// before each append (see Limits); an execution that would exceed one fails
// without the oversized message on the board.
func Run(sched Scheduler, players []Player, public *rng.Source, lim Limits) (*Result, error) {
	return RunRecorded(sched, players, public, lim, nil)
}

// RunRecorded is Run with a telemetry Recorder attached to the execution
// (see Stepper.SetRecorder for what is emitted). A nil rec is exactly Run;
// any rec leaves the transcript bit-identical.
func RunRecorded(sched Scheduler, players []Player, public *rng.Source, lim Limits, rec telemetry.Recorder) (*Result, error) {
	st, err := NewStepper(sched, len(players), public, lim)
	if err != nil {
		return nil, err
	}
	st.SetRecorder(rec)
	for {
		speaker, done, err := st.Next()
		if err != nil {
			return nil, err
		}
		if done {
			return &Result{Board: st.Board()}, nil
		}
		msg, err := players[speaker].Speak(st.Board())
		if err != nil {
			return nil, fmt.Errorf("blackboard: player %d: %w", speaker, err)
		}
		if err := st.Deliver(msg); err != nil {
			return nil, err
		}
	}
}

// RoundRobin is a Scheduler that cycles players 0..k-1 until a stop
// predicate on the board holds. Many protocols in the paper (including the
// Section 5 protocol's cycles) are round-robin with a board-determined stop.
type RoundRobin struct {
	K    int
	Stop func(b *Board) (bool, error)
}

// Next implements Scheduler.
func (r *RoundRobin) Next(b *Board) (int, bool, error) {
	if r.K <= 0 {
		return 0, false, fmt.Errorf("blackboard: round-robin over %d players", r.K)
	}
	if r.Stop != nil {
		stop, err := r.Stop(b)
		if err != nil {
			return 0, false, err
		}
		if stop {
			return 0, true, nil
		}
	}
	return b.NumMessages() % r.K, false, nil
}

var _ Scheduler = (*RoundRobin)(nil)

// FuncPlayer adapts a closure to the Player interface.
type FuncPlayer func(b *Board) (Message, error)

// Speak implements Player.
func (f FuncPlayer) Speak(b *Board) (Message, error) { return f(b) }

var _ Player = (FuncPlayer)(nil)

// FuncScheduler adapts a closure to the Scheduler interface.
type FuncScheduler func(b *Board) (int, bool, error)

// Next implements Scheduler.
func (f FuncScheduler) Next(b *Board) (int, bool, error) { return f(b) }

var _ Scheduler = (FuncScheduler)(nil)
