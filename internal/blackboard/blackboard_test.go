package blackboard

import (
	"errors"
	"testing"

	"broadcastic/internal/encoding"
	"broadcastic/internal/rng"
)

// bitMessage builds a one-bit message for tests.
func bitMessage(t *testing.T, player, bit int) Message {
	t.Helper()
	var w encoding.BitWriter
	if err := w.WriteBit(bit); err != nil {
		t.Fatal(err)
	}
	return NewMessage(player, &w)
}

func TestNewBoardValidation(t *testing.T) {
	if _, err := NewBoard(0, nil); err == nil {
		t.Fatal("NewBoard(0) succeeded")
	}
	if _, err := NewBoard(-3, nil); err == nil {
		t.Fatal("NewBoard(-3) succeeded")
	}
}

func TestBoardAccounting(t *testing.T) {
	b, err := NewBoard(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var w encoding.BitWriter
	_ = w.WriteBits(0b101, 3)
	if err := b.Append(NewMessage(1, &w)); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(bitMessage(t, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if b.TotalBits() != 4 {
		t.Fatalf("TotalBits = %d, want 4", b.TotalBits())
	}
	if b.PlayerBits(1) != 3 || b.PlayerBits(2) != 1 || b.PlayerBits(0) != 0 {
		t.Fatalf("per-player bits = %d,%d,%d", b.PlayerBits(0), b.PlayerBits(1), b.PlayerBits(2))
	}
	if b.PlayerBits(-1) != 0 || b.PlayerBits(3) != 0 {
		t.Fatal("out-of-range PlayerBits nonzero")
	}
	if b.NumMessages() != 2 {
		t.Fatalf("NumMessages = %d", b.NumMessages())
	}
}

func TestAppendValidation(t *testing.T) {
	b, _ := NewBoard(2, nil)
	if err := b.Append(Message{Player: 2, Len: 0}); err == nil {
		t.Fatal("append from invalid player succeeded")
	}
	if err := b.Append(Message{Player: 0, Bits: []byte{0}, Len: 9}); err == nil {
		t.Fatal("append with overlong length succeeded")
	}
	if err := b.Append(Message{Player: 0, Bits: nil, Len: -1}); err == nil {
		t.Fatal("append with negative length succeeded")
	}
}

func TestMessageKeyDistinguishesContent(t *testing.T) {
	a := bitMessage(t, 0, 0)
	b := bitMessage(t, 0, 1)
	c := bitMessage(t, 1, 0)
	if a.Key() == b.Key() {
		t.Fatal("different bits share a key")
	}
	if a.Key() == c.Key() {
		t.Fatal("different players share a key")
	}
}

func TestTranscriptKey(t *testing.T) {
	b1, _ := NewBoard(2, nil)
	b2, _ := NewBoard(2, nil)
	_ = b1.Append(bitMessage(t, 0, 1))
	_ = b2.Append(bitMessage(t, 0, 1))
	if b1.TranscriptKey() != b2.TranscriptKey() {
		t.Fatal("identical boards have different keys")
	}
	_ = b2.Append(bitMessage(t, 1, 0))
	if b1.TranscriptKey() == b2.TranscriptKey() {
		t.Fatal("different boards share a key")
	}
}

func TestMessageReaderRoundTrip(t *testing.T) {
	var w encoding.BitWriter
	_ = w.WriteBits(0b1101, 4)
	m := NewMessage(0, &w)
	r, err := m.Reader()
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.ReadBits(4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0b1101 {
		t.Fatalf("read back %04b", v)
	}
}

// echoPlayers: each of k players writes one bit (its index mod 2), and the
// scheduler stops after k messages.
func echoSetup(k int) (Scheduler, []Player) {
	sched := &RoundRobin{
		K:    k,
		Stop: func(b *Board) (bool, error) { return b.NumMessages() >= k, nil },
	}
	players := make([]Player, k)
	for i := 0; i < k; i++ {
		i := i
		players[i] = FuncPlayer(func(b *Board) (Message, error) {
			var w encoding.BitWriter
			if err := w.WriteBit(i % 2); err != nil {
				return Message{}, err
			}
			return NewMessage(i, &w), nil
		})
	}
	return sched, players
}

func TestRunRoundRobin(t *testing.T) {
	const k = 5
	sched, players := echoSetup(k)
	res, err := Run(sched, players, nil, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Board.NumMessages() != k {
		t.Fatalf("messages = %d, want %d", res.Board.NumMessages(), k)
	}
	if res.Board.TotalBits() != k {
		t.Fatalf("bits = %d, want %d", res.Board.TotalBits(), k)
	}
	for i, m := range res.Board.Messages() {
		if m.Player != i%k {
			t.Fatalf("message %d attributed to player %d", i, m.Player)
		}
	}
}

func TestRunMessageLimit(t *testing.T) {
	// A scheduler that never stops must hit the message limit.
	sched := &RoundRobin{K: 2, Stop: func(*Board) (bool, error) { return false, nil }}
	_, players := echoSetup(2)
	_, err := Run(sched, players, nil, Limits{MaxMessages: 10})
	if !errors.Is(err, ErrMessageLimit) {
		t.Fatalf("err = %v, want ErrMessageLimit", err)
	}
}

func TestRunBitLimit(t *testing.T) {
	sched := &RoundRobin{K: 2, Stop: func(*Board) (bool, error) { return false, nil }}
	_, players := echoSetup(2)
	_, err := Run(sched, players, nil, Limits{MaxBits: 5})
	if !errors.Is(err, ErrBitLimit) {
		t.Fatalf("err = %v, want ErrBitLimit", err)
	}
}

func TestRunRejectsMisattributedMessage(t *testing.T) {
	sched := &RoundRobin{K: 2, Stop: func(b *Board) (bool, error) { return b.NumMessages() >= 1, nil }}
	players := []Player{
		FuncPlayer(func(b *Board) (Message, error) {
			var w encoding.BitWriter
			_ = w.WriteBit(0)
			return NewMessage(1, &w), nil // lies about identity
		}),
		FuncPlayer(func(b *Board) (Message, error) { return Message{}, nil }),
	}
	if _, err := Run(sched, players, nil, Limits{}); err == nil {
		t.Fatal("misattributed message accepted")
	}
}

func TestRunPropagatesPlayerError(t *testing.T) {
	wantErr := errors.New("boom")
	sched := &RoundRobin{K: 1, Stop: func(b *Board) (bool, error) { return b.NumMessages() >= 1, nil }}
	players := []Player{FuncPlayer(func(b *Board) (Message, error) { return Message{}, wantErr })}
	_, err := Run(sched, players, nil, Limits{})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunPropagatesSchedulerError(t *testing.T) {
	wantErr := errors.New("sched fail")
	bad := schedFunc(func(b *Board) (int, bool, error) { return 0, false, wantErr })
	_, err := Run(bad, []Player{FuncPlayer(func(*Board) (Message, error) { return Message{}, nil })}, nil, Limits{})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsInvalidSpeaker(t *testing.T) {
	bad := schedFunc(func(b *Board) (int, bool, error) { return 7, false, nil })
	_, err := Run(bad, []Player{FuncPlayer(func(*Board) (Message, error) { return Message{}, nil })}, nil, Limits{})
	if err == nil {
		t.Fatal("invalid speaker accepted")
	}
}

type schedFunc func(b *Board) (int, bool, error)

func (f schedFunc) Next(b *Board) (int, bool, error) { return f(b) }

func TestPublicRandomnessShared(t *testing.T) {
	// Both players read the public stream; the second player must see it
	// advanced past the first player's draw (the stream is shared state).
	public := rng.New(5)
	wantFirst := rng.New(5).Uint64()

	var got []uint64
	sched := &RoundRobin{K: 2, Stop: func(b *Board) (bool, error) { return b.NumMessages() >= 2, nil }}
	players := make([]Player, 2)
	for i := 0; i < 2; i++ {
		i := i
		players[i] = FuncPlayer(func(b *Board) (Message, error) {
			got = append(got, b.Public().Uint64())
			var w encoding.BitWriter
			_ = w.WriteBit(0)
			return NewMessage(i, &w), nil
		})
	}
	if _, err := Run(sched, players, public, Limits{}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("drew %d values", len(got))
	}
	if got[0] != wantFirst {
		t.Fatal("public stream not seeded deterministically")
	}
	if got[0] == got[1] {
		t.Fatal("public stream did not advance between players")
	}
}

func TestRoundRobinValidation(t *testing.T) {
	r := &RoundRobin{K: 0}
	if _, _, err := r.Next(&Board{numPlayers: 1, perPlayer: make([]int, 1)}); err == nil {
		t.Fatal("round-robin over zero players succeeded")
	}
	if _, _, err := (&RoundRobin{K: -4}).Next(&Board{numPlayers: 1, perPlayer: make([]int, 1)}); err == nil {
		t.Fatal("round-robin over negative players succeeded")
	}
	// A non-positive K must also surface through Run, not just direct Next.
	_, players := echoSetup(2)
	if _, err := Run(&RoundRobin{K: 0}, players, nil, Limits{}); err == nil {
		t.Fatal("Run with K=0 round-robin succeeded")
	}
}

func TestRoundRobinStopError(t *testing.T) {
	wantErr := errors.New("stop blew up")
	r := &RoundRobin{K: 2, Stop: func(b *Board) (bool, error) { return false, wantErr }}
	b, _ := NewBoard(2, nil)
	if _, _, err := r.Next(b); !errors.Is(err, wantErr) {
		t.Fatalf("Next err = %v, want wrapped stop error", err)
	}
	_, players := echoSetup(2)
	if _, err := Run(r, players, nil, Limits{}); !errors.Is(err, wantErr) {
		t.Fatalf("Run err = %v, want wrapped stop error", err)
	}
}

func TestPlayerBitsOutOfRange(t *testing.T) {
	b, err := NewBoard(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append(bitMessage(t, 0, 1)); err != nil {
		t.Fatal(err)
	}
	for _, player := range []int{-1, -100, 2, 3, 1 << 20} {
		if got := b.PlayerBits(player); got != 0 {
			t.Fatalf("PlayerBits(%d) = %d, want 0", player, got)
		}
	}
	if b.PlayerBits(0) != 1 {
		t.Fatalf("PlayerBits(0) = %d, want 1", b.PlayerBits(0))
	}
}

// Regression: Append must reject messages whose trailing pad bits are
// nonzero — Key/TranscriptKey hash only the first Len bits, so such
// messages would alias a well-formed message's transcript key while
// carrying different bytes.
func TestAppendRejectsNonzeroPadBits(t *testing.T) {
	b, _ := NewBoard(2, nil)
	bad := []Message{
		{Player: 0, Bits: []byte{0b10100001}, Len: 3},       // pad bits inside final byte
		{Player: 0, Bits: []byte{0b10100000, 0xff}, Len: 3}, // nonzero byte past payload
		{Player: 0, Bits: []byte{0x01}, Len: 0},             // zero-length with payload bits
	}
	for i, m := range bad {
		if err := b.Append(m); err == nil {
			t.Fatalf("case %d: message with nonzero pad bits accepted", i)
		}
	}
	if b.NumMessages() != 0 {
		t.Fatalf("rejected messages landed on the board: %d", b.NumMessages())
	}
	ok := []Message{
		{Player: 0, Bits: []byte{0b10100000}, Len: 3},
		{Player: 1, Bits: []byte{0b10100000, 0x00}, Len: 3}, // explicit zero padding byte is fine
		{Player: 0, Bits: nil, Len: 0},
	}
	for i, m := range ok {
		if err := b.Append(m); err != nil {
			t.Fatalf("case %d: well-formed message rejected: %v", i, err)
		}
	}
}

// Regression: limits are enforced before the append, so the oversized
// message must not land on the board when Run fails with a limit error.
func TestLimitsRejectBeforeAppend(t *testing.T) {
	sched := &RoundRobin{K: 2, Stop: func(*Board) (bool, error) { return false, nil }}
	_, players := echoSetup(2)

	st, err := NewStepper(sched, 2, nil, Limits{MaxMessages: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		speaker, done, err := st.Next()
		if err != nil || done {
			t.Fatalf("step %d: speaker err=%v done=%v", i, err, done)
		}
		m, err := players[speaker].Speak(st.Board())
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Deliver(m); err != nil {
			t.Fatalf("message %d rejected below the limit: %v", i, err)
		}
	}
	speaker, _, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := players[speaker].Speak(st.Board())
	if err := st.Deliver(m); !errors.Is(err, ErrMessageLimit) {
		t.Fatalf("4th delivery err = %v, want ErrMessageLimit", err)
	}
	if st.Board().NumMessages() != 3 {
		t.Fatalf("board holds %d messages after rejected delivery, want 3", st.Board().NumMessages())
	}

	stBits, err := NewStepper(sched, 2, nil, Limits{MaxBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		speaker, _, err := stBits.Next()
		if err != nil {
			t.Fatal(err)
		}
		m, _ := players[speaker].Speak(stBits.Board())
		if err := stBits.Deliver(m); err != nil {
			t.Fatal(err)
		}
	}
	speaker, _, err = stBits.Next()
	if err != nil {
		t.Fatal(err)
	}
	m, _ = players[speaker].Speak(stBits.Board())
	if err := stBits.Deliver(m); !errors.Is(err, ErrBitLimit) {
		t.Fatalf("over-budget delivery err = %v, want ErrBitLimit", err)
	}
	if stBits.Board().TotalBits() != 2 {
		t.Fatalf("board holds %d bits after rejected delivery, want 2", stBits.Board().TotalBits())
	}
}

func TestStepperDrivesRoundRobin(t *testing.T) {
	const k = 3
	sched, players := echoSetup(k)
	st, err := NewStepper(sched, k, nil, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		speaker, done, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		m, err := players[speaker].Speak(st.Board())
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Deliver(m); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if steps != k || st.Board().NumMessages() != k {
		t.Fatalf("stepper ran %d steps, board has %d messages, want %d", steps, st.Board().NumMessages(), k)
	}
	if !st.Done() {
		t.Fatal("stepper not done after halt")
	}
	// Next after done keeps reporting done.
	if _, done, err := st.Next(); err != nil || !done {
		t.Fatalf("Next after done: done=%v err=%v", done, err)
	}
	// The stepper's board must match a Run of the same protocol.
	sched2, players2 := echoSetup(k)
	res, err := Run(sched2, players2, nil, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Board().TranscriptKey() != res.Board.TranscriptKey() {
		t.Fatal("stepper and Run transcripts differ")
	}
}

func TestStepperDiscipline(t *testing.T) {
	sched, players := echoSetup(2)
	st, err := NewStepper(sched, 2, nil, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Deliver(bitMessage(t, 0, 0)); err == nil {
		t.Fatal("Deliver with no pending turn succeeded")
	}
	speaker, _, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Next(); err == nil {
		t.Fatal("Next with a pending delivery succeeded")
	}
	if err := st.Deliver(bitMessage(t, speaker+1, 0)); err == nil {
		t.Fatal("misattributed delivery accepted")
	}
	m, err := players[speaker].Speak(st.Board())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Deliver(m); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStepper(nil, 2, nil, Limits{}); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := NewStepper(sched, 0, nil, Limits{}); err == nil {
		t.Fatal("zero players accepted")
	}
}
