package blackboard

import (
	"fmt"

	"broadcastic/internal/rng"
)

// Stepper exposes the execution loop of Run one step at a time, so that
// alternative runtimes (internal/netrun's concurrent networked runtime, or
// any future driver) can run the same state machine while doing their own
// work — transporting messages over a wire, injecting faults, collecting
// telemetry — between the two halves of a step.
//
// A step is: Next() to learn the next speaker (or that the protocol is
// done), obtain that player's message by whatever means the driver uses,
// then Deliver(msg) to validate and append it. Next and Deliver must
// alternate; the Stepper enforces the discipline. A Stepper is not safe for
// concurrent use — drivers serialize access themselves.
type Stepper struct {
	board *Board
	sched Scheduler
	lim   Limits

	// expect is the speaker announced by the last Next, or -1 when no
	// delivery is pending.
	expect int
	done   bool
}

// NewStepper builds a stepper over a fresh board for numPlayers players.
func NewStepper(sched Scheduler, numPlayers int, public *rng.Source, lim Limits) (*Stepper, error) {
	if sched == nil {
		return nil, fmt.Errorf("blackboard: nil scheduler")
	}
	board, err := NewBoard(numPlayers, public)
	if err != nil {
		return nil, err
	}
	return &Stepper{board: board, sched: sched, lim: lim, expect: -1}, nil
}

// Board returns the board under execution.
func (st *Stepper) Board() *Board { return st.board }

// Done reports whether the scheduler has halted the protocol.
func (st *Stepper) Done() bool { return st.done }

// Next consults the scheduler: it returns the next speaker, or done=true
// when the protocol halts. After a Next that names a speaker, the driver
// must Deliver that player's message before calling Next again.
func (st *Stepper) Next() (speaker int, done bool, err error) {
	if st.done {
		return 0, true, nil
	}
	if st.expect >= 0 {
		return 0, false, fmt.Errorf("blackboard: Next called with a delivery pending for player %d", st.expect)
	}
	speaker, done, err = st.sched.Next(st.board)
	if err != nil {
		return 0, false, fmt.Errorf("blackboard: scheduler: %w", err)
	}
	if done {
		st.done = true
		return 0, true, nil
	}
	if speaker < 0 || speaker >= st.board.NumPlayers() {
		return 0, false, fmt.Errorf("blackboard: scheduler chose invalid player %d", speaker)
	}
	st.expect = speaker
	return speaker, false, nil
}

// Deliver validates the announced speaker's message against the pending
// turn and the limits, then appends it. Limit checks happen before the
// append: a rejected message never lands on the board (see Limits).
func (st *Stepper) Deliver(m Message) error {
	if st.expect < 0 {
		return fmt.Errorf("blackboard: Deliver called with no turn pending")
	}
	if m.Player != st.expect {
		return fmt.Errorf("blackboard: player %d produced message attributed to %d", st.expect, m.Player)
	}
	if st.lim.MaxMessages > 0 && st.board.NumMessages()+1 > st.lim.MaxMessages {
		return fmt.Errorf("%w: message %d", ErrMessageLimit, st.board.NumMessages()+1)
	}
	if st.lim.MaxBits > 0 && m.Len >= 0 && st.board.TotalBits()+m.Len > st.lim.MaxBits {
		return fmt.Errorf("%w: %d bits", ErrBitLimit, st.board.TotalBits()+m.Len)
	}
	if err := st.board.Append(m); err != nil {
		return err
	}
	st.expect = -1
	return nil
}
