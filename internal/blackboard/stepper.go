package blackboard

import (
	"fmt"

	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
)

// Stepper exposes the execution loop of Run one step at a time, so that
// alternative runtimes (internal/netrun's concurrent networked runtime, or
// any future driver) can run the same state machine while doing their own
// work — transporting messages over a wire, injecting faults, collecting
// telemetry — between the two halves of a step.
//
// A step is: Next() to learn the next speaker (or that the protocol is
// done), obtain that player's message by whatever means the driver uses,
// then Deliver(msg) to validate and append it. Next and Deliver must
// alternate; the Stepper enforces the discipline. A Stepper is not safe for
// concurrent use — drivers serialize access themselves.
type Stepper struct {
	board *Board
	sched Scheduler
	lim   Limits

	// expect is the speaker announced by the last Next, or -1 when no
	// delivery is pending.
	expect int
	done   bool

	// rec receives the board-level accounting (nil: disabled, one branch
	// per event); pubMark anchors the public-randomness draw count.
	rec     telemetry.Recorder
	pubMark rng.Mark
}

// NewStepper builds a stepper over a fresh board for numPlayers players.
func NewStepper(sched Scheduler, numPlayers int, public *rng.Source, lim Limits) (*Stepper, error) {
	if sched == nil {
		return nil, fmt.Errorf("blackboard: nil scheduler")
	}
	board, err := NewBoard(numPlayers, public)
	if err != nil {
		return nil, err
	}
	return &Stepper{board: board, sched: sched, lim: lim, expect: -1}, nil
}

// SetRecorder installs a telemetry Recorder for this execution (nil to
// disable, the default). The stepper emits the paper's communication
// accounting — messages, total and per-player bits as they land on the
// board, and rounds/bits/public-RNG-draw summaries when the scheduler
// halts. Recording never alters execution: transcripts are bit-identical
// with any recorder installed.
func (st *Stepper) SetRecorder(rec telemetry.Recorder) {
	st.rec = rec
	if pub := st.board.Public(); rec != nil && pub != nil {
		st.pubMark = pub.Mark()
	}
}

// Board returns the board under execution.
func (st *Stepper) Board() *Board { return st.board }

// Done reports whether the scheduler has halted the protocol.
func (st *Stepper) Done() bool { return st.done }

// Next consults the scheduler: it returns the next speaker, or done=true
// when the protocol halts. After a Next that names a speaker, the driver
// must Deliver that player's message before calling Next again.
func (st *Stepper) Next() (speaker int, done bool, err error) {
	if st.done {
		return 0, true, nil
	}
	if st.expect >= 0 {
		return 0, false, fmt.Errorf("blackboard: Next called with a delivery pending for player %d", st.expect)
	}
	speaker, done, err = st.sched.Next(st.board)
	if err != nil {
		return 0, false, fmt.Errorf("blackboard: scheduler: %w", err)
	}
	if done {
		st.done = true
		if st.rec != nil {
			st.recordFinish()
		}
		return 0, true, nil
	}
	if speaker < 0 || speaker >= st.board.NumPlayers() {
		return 0, false, fmt.Errorf("blackboard: scheduler chose invalid player %d", speaker)
	}
	st.expect = speaker
	return speaker, false, nil
}

// Deliver validates the announced speaker's message against the pending
// turn and the limits, then appends it. Limit checks happen before the
// append: a rejected message never lands on the board (see Limits).
func (st *Stepper) Deliver(m Message) error {
	if st.expect < 0 {
		return fmt.Errorf("blackboard: Deliver called with no turn pending")
	}
	if m.Player != st.expect {
		return fmt.Errorf("blackboard: player %d produced message attributed to %d", st.expect, m.Player)
	}
	if st.lim.MaxMessages > 0 && st.board.NumMessages()+1 > st.lim.MaxMessages {
		return fmt.Errorf("%w: message %d", ErrMessageLimit, st.board.NumMessages()+1)
	}
	if st.lim.MaxBits > 0 && m.Len >= 0 && st.board.TotalBits()+m.Len > st.lim.MaxBits {
		return fmt.Errorf("%w: %d bits", ErrBitLimit, st.board.TotalBits()+m.Len)
	}
	if err := st.board.Append(m); err != nil {
		return err
	}
	st.expect = -1
	if st.rec != nil {
		st.rec.Count(telemetry.BlackboardMessages, 1)
		st.rec.Count(telemetry.BlackboardBits, int64(m.Len))
		st.rec.Count(telemetry.Indexed(telemetry.BlackboardPlayer, m.Player, "bits"), int64(m.Len))
	}
	return nil
}

// recordFinish emits the run-level summaries once, when the scheduler
// halts the protocol.
func (st *Stepper) recordFinish() {
	st.rec.Observe(telemetry.BlackboardRounds, float64(st.board.NumMessages()))
	st.rec.Observe(telemetry.BlackboardRunBits, float64(st.board.TotalBits()))
	if pub := st.board.Public(); pub != nil {
		st.rec.Observe(telemetry.BlackboardPublicDraws, float64(pub.DrawsSince(st.pubMark)))
	}
}
