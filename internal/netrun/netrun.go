// Package netrun executes blackboard protocols as concurrent networked
// systems: each player runs on its own goroutine behind a transport link,
// a coordinator drives the schedule, and a seeded fault model
// (internal/faults) can delay, drop, duplicate or corrupt frames and crash
// players — while the board-level transcript stays bit-identical to the
// sequential blackboard.Run.
//
// # Architecture
//
// The coordinator owns the canonical board through a blackboard.Stepper
// and talks to each player over a Link pair created by a Transport. Every
// player mirrors the board in a replica, kept in sync by SYNC frames the
// coordinator broadcasts after each delivery. One turn is a ping-pong:
//
//	coordinator                       player s
//	  Next() -> s
//	  TURN(numMessages)  ──────────▶  verify replica, Speak(replica)
//	  Deliver(msg)       ◀──────────  MSG(player, bits)
//	  SYNC(msg) ─────▶ every player appends to its replica
//
// Frames ride a stop-and-wait ARQ (wire.go): sequence numbers, CRC32
// checksums, acknowledgements, per-attempt timeouts with exponential
// backoff and a bounded retry budget. Every recoverable fault — dropped,
// duplicated, corrupted or delayed frames — is repaired below the protocol
// layer, so the board transcript, its total bit count and the protocol
// output are a pure function of the protocol inputs, never of the fault
// mix. Only crashes are unrecoverable: a crashed player yields a typed
// CrashError alongside the partial Result.
//
// # Determinism
//
// With link faults disabled the run is transcript-conformant: messages,
// order, total bits and output are bit-identical to blackboard.Run on the
// same inputs (the conformance tests pin this for the optimal DISJ
// protocol, AND_k and the Lemma 7 sampler, on every transport). With
// faults enabled, each link direction draws decisions from its own
// rng.Source child stream (SplitN), acks bypass injection, and duplicates
// are discarded without re-acking — making retransmission counts and wire
// bits reproducible from Config.Seed whenever injected delays stay below
// the ARQ timeout.
//
// Protocol state shared between the scheduler and players (common in this
// repository's protocols, which are built for the sequential runtime) is
// safe here: a single run-wide mutex serializes Stepper calls and Speak,
// providing the happens-before edges the sockets themselves do not.
package netrun

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"broadcastic/internal/blackboard"
	"broadcastic/internal/faults"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/causal"
)

// Config tunes a networked run. The zero value is usable: in-process
// channel transport, no faults, 250ms ARQ timeout, 12 retries.
type Config struct {
	// Transport supplies the coordinator-player links (default: chan).
	Transport Transport
	// Topology, when non-nil, runs the protocol on the explicit
	// message-passing topology runtime (toporun.go): nodes exchange routed
	// frames over the topology's physical links, relays store-and-forward
	// hop by hop, and per-link accounting lands under netrun.topo.<link>.*.
	// nil selects the legacy shared-board runtime, whose behavior, stats
	// and netrun.link.<player>.* metrics are unchanged.
	Topology Topology
	// Delivery selects how delivered messages propagate on the topology
	// path (ignored when Topology is nil): DeliverBroadcast mirrors every
	// message to every replica (blackboard semantics), DeliverCoordinator
	// keeps them at the hub (message-passing semantics — players never see
	// each other's messages, as in the coordinator model lower bounds).
	Delivery DeliveryMode
	// Faults is the seeded failure mix (zero value: none).
	Faults faults.Plan
	// Seed feeds the per-link fault streams; runs with equal seeds and
	// configs reproduce identical fault sequences and wire statistics.
	Seed uint64
	// Timeout is the base per-attempt ARQ timeout (default 250ms). Backoff
	// doubles it per retry, capped at 8x.
	Timeout time.Duration
	// MaxRetries bounds retransmissions per frame (default 12).
	MaxRetries int
	// Limits bound the protocol exactly as in blackboard.Run.
	Limits blackboard.Limits
	// Recorder receives the run's telemetry (nil: disabled). It replaces
	// the callback Hooks of earlier revisions, which fired only on the
	// happy path; the Recorder is driven from the exact sites that update
	// the wire-level counters — every retransmission trigger (known drop,
	// NACK, timeout), every discarded frame, every injected fault — so its
	// counters always match the returned Stats. Implementations must be
	// safe for concurrent use; recording never changes transcripts, bit
	// counts or outcomes.
	Recorder telemetry.Recorder
	// Causal, when enabled, attaches the run's wire-level story to a
	// trace: one netrun.hop span per delivered application frame, a
	// netrun.retry event per retransmission, a netrun.fault instant per
	// injected fault, and a netrun.crash failure (which triggers the
	// flight recorder's auto-dump) per crashed player. Observational only,
	// like Recorder.
	Causal causal.Context
}

// PlayerStats is per-player link and turn telemetry.
type PlayerStats struct {
	// Turns the player was asked to speak.
	Turns int
	// Retries is the retransmission count across both link directions.
	Retries int64
	// WireBits counts every bit put on (or dropped onto) the player's link,
	// both directions, including headers, acks and retransmissions.
	WireBits int64
	// Latency is the total wall-clock time of the player's turns.
	Latency time.Duration
	// Faults tallies injected link faults on both directions.
	Faults faults.Counts
	// BadFrames counts frames discarded for checksum or layout failure.
	BadFrames int64
	// DupFrames counts duplicate frames discarded by sequence check.
	DupFrames int64
}

// Stats aggregates a run's telemetry.
type Stats struct {
	// PerPlayer breaks the wire traffic down by player. On the legacy
	// shared-board path every player owns exactly one link, so the wire
	// fields double as per-link accounting; on the topology path links are
	// not player-owned (PerLink carries the wire view) and PerPlayer holds
	// the coordinator-side Turns and Latency only.
	PerPlayer []PlayerStats
	// PerLink breaks the wire traffic down by physical link on the
	// topology path (nil on the legacy path). The per-link WireBits sum to
	// Stats.WireBits exactly.
	PerLink []LinkStats
	// WireBits is the total bits placed on all links (headers, acks,
	// retransmissions and dropped frames included).
	WireBits int64
	// BoardBits is the protocol-level bit count — identical to the
	// sequential runtime's accounting.
	BoardBits int
	// Faults totals the injected link faults.
	Faults faults.Counts
	// Transport names the transport used.
	Transport string
	// Topology names the topology on the topology path ("" on the legacy
	// shared-board path).
	Topology string
}

// LinkStats is the wire accounting of one physical link on the topology
// path, both directions summed — the same contract as PlayerStats on the
// legacy path, keyed by link instead of player.
type LinkStats struct {
	// Link names the physical link by the node pair it joins.
	Link LinkID
	// WireBits counts every bit put on (or dropped onto) the link, both
	// directions, including headers, envelopes, acks and retransmissions.
	WireBits int64
	// Retries is the retransmission count across both directions.
	Retries int64
	// BadFrames counts frames discarded for checksum or layout failure.
	BadFrames int64
	// DupFrames counts duplicate frames discarded by sequence check.
	DupFrames int64
	// Faults tallies injected faults on both directions.
	Faults faults.Counts
}

// Result is the outcome of a networked run. After a crash, Board holds
// the transcript up to the failure and Crashed names the dead players.
type Result struct {
	Board   *blackboard.Board
	Stats   Stats
	Crashed []int
}

// ErrPlayerCrashed marks results truncated by a player crash; match with
// errors.Is.
var ErrPlayerCrashed = errors.New("netrun: player crashed")

// CrashError reports which player died and why, wrapping ErrPlayerCrashed.
type CrashError struct {
	Player int
	Cause  error
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("netrun: player %d crashed: %v", e.Player, e.Cause)
}

func (e *CrashError) Unwrap() error { return e.Cause }

// Is reports equivalence to ErrPlayerCrashed.
func (e *CrashError) Is(target error) bool { return target == ErrPlayerCrashed }

const (
	defaultTimeout    = 250 * time.Millisecond
	defaultMaxRetries = 12
)

// Run executes the protocol concurrently over the configured transport.
// With faults disabled the returned board is bit-identical to the one
// blackboard.Run produces for the same scheduler, players, public source
// and limits.
func Run(sched blackboard.Scheduler, players []blackboard.Player, public *rng.Source, cfg Config) (*Result, error) {
	k := len(players)
	if k == 0 {
		return nil, fmt.Errorf("netrun: no players")
	}
	for i, p := range players {
		if p == nil {
			return nil, fmt.Errorf("netrun: player %d is nil", i)
		}
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	for player := range cfg.Faults.CrashTurns {
		if player >= k {
			return nil, fmt.Errorf("netrun: crash scheduled for player %d but run has %d players", player, k)
		}
	}
	if cfg.Topology != nil {
		return runTopology(sched, players, public, cfg)
	}
	if cfg.Delivery != DeliverBroadcast {
		return nil, fmt.Errorf("netrun: delivery mode %v requires a topology", cfg.Delivery)
	}
	transport := cfg.Transport
	if transport == nil {
		transport = NewChanTransport()
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = defaultTimeout
	}
	maxRetries := cfg.MaxRetries
	if maxRetries <= 0 {
		maxRetries = defaultMaxRetries
	}

	st, err := blackboard.NewStepper(sched, k, public, cfg.Limits)
	if err != nil {
		return nil, err
	}

	coordLinks, playerLinks, err := transport.Open(k)
	if err != nil {
		return nil, err
	}

	// One fault stream per link direction: coordinator->player i draws from
	// child 2i, player i->coordinator from child 2i+1. Injectors exist only
	// when link faults are on, so a fault-free run consumes no randomness.
	var injCoord, injPlayer []*faults.Injector
	if cfg.Faults.Enabled() {
		streams := rng.New(cfg.Seed).SplitN(2 * k)
		injCoord = make([]*faults.Injector, k)
		injPlayer = make([]*faults.Injector, k)
		for i := 0; i < k; i++ {
			injCoord[i] = cfg.Faults.NewInjector(streams[2*i])
			injPlayer[i] = cfg.Faults.NewInjector(streams[2*i+1])
		}
	} else {
		injCoord = make([]*faults.Injector, k)
		injPlayer = make([]*faults.Injector, k)
	}

	st.SetRecorder(cfg.Recorder)

	// Both directions of player i's link record under the same link index:
	// the per-link breakdown mirrors Stats.PerPlayer, which also sums the
	// two directions.
	coordEps := make([]*endpoint, k)
	playerEps := make([]*endpoint, k)
	for i := 0; i < k; i++ {
		coordEps[i] = newEndpoint(coordLinks[i], injCoord[i], timeout, maxRetries, cfg.Recorder, cfg.Causal, telemetry.NetrunLink, i)
		playerEps[i] = newEndpoint(playerLinks[i], injPlayer[i], timeout, maxRetries, cfg.Recorder, cfg.Causal, telemetry.NetrunLink, i)
	}
	closeAll := func() {
		for i := 0; i < k; i++ {
			coordEps[i].close()
			playerEps[i].close()
		}
	}

	// runMu serializes all protocol-state access: Stepper calls on the
	// coordinator and Speak on player goroutines. The turn discipline means
	// there is never contention; the mutex exists for the happens-before
	// edges (shared scheduler/player state, shared public rng) that raw
	// socket I/O does not provide.
	var runMu sync.Mutex

	// Replicas share the canonical public source: public randomness is a
	// shared resource in the broadcast model, and the ping-pong discipline
	// (under runMu) makes every draw happen in sequential order.
	replicas := make([]*blackboard.Board, k)
	for i := 0; i < k; i++ {
		replica, err := blackboard.NewBoard(k, public)
		if err != nil {
			closeAll()
			return nil, err
		}
		replicas[i] = replica
	}

	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			playerLoop(playerEps[i], players[i], replicas[i], &runMu, cfg.Faults.CrashTurn(i))
		}(i)
	}

	// The coordinator may legitimately wait through the player's entire
	// retransmission budget (drops on the player->coordinator direction),
	// plus any injected delays, before a message arrives.
	recvDeadline := time.Duration(maxRetries+1)*(8*timeout+cfg.Faults.MaxDelay) + timeout

	stats := Stats{PerPlayer: make([]PlayerStats, k), Transport: transport.Name()}
	finish := func(crashed []int) *Result {
		closeAll()
		wg.Wait()
		for i := 0; i < k; i++ {
			ps := &stats.PerPlayer[i]
			ps.Retries = coordEps[i].stats.retries.Load() + playerEps[i].stats.retries.Load()
			ps.WireBits = coordEps[i].stats.wireBits.Load() + playerEps[i].stats.wireBits.Load()
			ps.BadFrames = coordEps[i].stats.badFrames.Load() + playerEps[i].stats.badFrames.Load()
			ps.DupFrames = coordEps[i].stats.dupDropped.Load() + playerEps[i].stats.dupDropped.Load()
			if injCoord[i] != nil {
				ps.Faults.Add(injCoord[i].Counts())
				ps.Faults.Add(injPlayer[i].Counts())
			}
			stats.WireBits += ps.WireBits
			stats.Faults.Add(ps.Faults)
		}
		stats.BoardBits = st.Board().TotalBits()
		return &Result{Board: st.Board(), Stats: stats, Crashed: crashed}
	}
	crash := func(player int, cause error) (*Result, error) {
		telemetry.Count(cfg.Recorder, telemetry.NetrunCrashes, 1)
		if cfg.Causal.Enabled() {
			// A crash is the unrecoverable failure of the run: mark the
			// instant and trigger the trace's flight-recorder auto-dump.
			cfg.Causal.Fail(causal.NetrunCrash,
				causal.Int("player", player), causal.String("error", cause.Error()))
		}
		res := finish([]int{player})
		return res, &CrashError{Player: player, Cause: cause}
	}

	for {
		runMu.Lock()
		speaker, done, err := st.Next()
		runMu.Unlock()
		if err != nil {
			closeAll()
			wg.Wait()
			return nil, err
		}
		if done {
			return finish(nil), nil
		}

		turnStart := time.Now()
		if err := coordEps[speaker].send(frameTurn, encodeTurnPayload(st.Board().NumMessages())); err != nil {
			return crash(speaker, err)
		}
		in, err := coordEps[speaker].recv(recvDeadline)
		if err != nil {
			return crash(speaker, err)
		}
		switch in.kind {
		case frameMsg:
			// Delivered below.
		case frameErr:
			closeAll()
			wg.Wait()
			return nil, fmt.Errorf("netrun: player %d: %s", speaker, in.payload)
		default:
			closeAll()
			wg.Wait()
			return nil, fmt.Errorf("netrun: player %d sent unexpected frame kind %d", speaker, in.kind)
		}
		msg, err := decodeMessagePayload(in.payload)
		if err != nil {
			closeAll()
			wg.Wait()
			return nil, err
		}

		runMu.Lock()
		err = st.Deliver(msg)
		runMu.Unlock()
		if err != nil {
			closeAll()
			wg.Wait()
			return nil, err
		}

		// Broadcast the delivered message so every replica catches up before
		// the next turn can reach any player.
		syncPayload := encodeMessagePayload(msg)
		for i := 0; i < k; i++ {
			if err := coordEps[i].send(frameSync, syncPayload); err != nil {
				return crash(i, err)
			}
		}

		ps := &stats.PerPlayer[speaker]
		ps.Turns++
		latency := time.Since(turnStart)
		ps.Latency += latency
		if cfg.Recorder != nil {
			cfg.Recorder.Count(telemetry.NetrunTurns, 1)
			cfg.Recorder.Observe(telemetry.NetrunTurnNs, float64(latency))
		}
	}
}

// playerLoop runs one player: it mirrors the board from SYNC frames,
// speaks on TURN frames, and dies silently on its scheduled crash turn.
// It exits when the link is severed (normal teardown closes the
// coordinator side of every link).
func playerLoop(ep *endpoint, player blackboard.Player, replica *blackboard.Board, runMu *sync.Mutex, crashTurn int) {
	defer ep.close()
	const idleDeadline = time.Hour // teardown closes the link; this is a backstop
	turns := 0
	fail := func(err error) {
		ep.send(frameErr, []byte(err.Error()))
	}
	for {
		in, err := ep.recv(idleDeadline)
		if err != nil {
			return
		}
		switch in.kind {
		case frameSync:
			msg, err := decodeMessagePayload(in.payload)
			if err != nil {
				fail(err)
				return
			}
			if err := replica.Append(msg); err != nil {
				fail(err)
				return
			}
		case frameTurn:
			if crashTurn >= 0 && turns >= crashTurn {
				// Scheduled crash: vanish without a word. The coordinator
				// notices via the dead link or the recv deadline.
				return
			}
			turns++
			want, err := decodeTurnPayload(in.payload)
			if err != nil {
				fail(err)
				return
			}
			if replica.NumMessages() != want {
				fail(fmt.Errorf("netrun: replica out of sync: %d messages, coordinator has %d", replica.NumMessages(), want))
				return
			}
			runMu.Lock()
			msg, err := player.Speak(replica)
			runMu.Unlock()
			if err != nil {
				fail(err)
				return
			}
			if err := ep.send(frameMsg, encodeMessagePayload(msg)); err != nil {
				return
			}
		default:
			fail(fmt.Errorf("netrun: unexpected frame kind %d", in.kind))
			return
		}
	}
}
