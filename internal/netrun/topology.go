package netrun

import "fmt"

// LinkID names one physical bidirectional link as the unordered pair of
// node ids it joins, normalized A < B. Node ids are the player indices
// 0..k-1 plus the coordinator at id k (CoordinatorNode(k)).
type LinkID struct {
	A, B int
}

// CoordinatorNode returns the coordinator's node id in a k-player run.
func CoordinatorNode(k int) int { return k }

// Topology describes how the k players and the coordinator are physically
// wired. The runtime opens one transport link per LinkID, routes every
// application frame hop by hop along NextHop, and accounts wire traffic
// per physical link — so the same protocol pays different wire costs on
// different topologies while producing the same transcript.
//
// Implementations must be deterministic pure functions of (k, at, dst):
// routing feeds the per-link fault streams, and reproducibility of wire
// statistics from Config.Seed depends on every run taking identical paths.
type Topology interface {
	// Name identifies the topology in stats and CLI flags.
	Name() string
	// Links enumerates the physical links of a k-player run, each
	// normalized (A < B) and listed exactly once. The slice order is the
	// link index used for fault streams and netrun.topo.<link> metrics.
	Links(k int) []LinkID
	// NextHop returns the neighbor to which a node at `at` forwards a
	// frame addressed to dst (dst != at). The returned node must be
	// adjacent to `at` in Links(k).
	NextHop(k, at, dst int) int
	// MaxHops bounds the length of any route, used to scale receive
	// deadlines: a frame on a k-hop route can legitimately wait through
	// k links' worth of retransmission budgets.
	MaxHops(k int) int
	// Gossip reports whether the speaker distributes its own message
	// directly to its peers (full mesh) instead of the coordinator
	// echoing SYNC frames. Gossip topologies must provide a direct link
	// between every pair of players.
	Gossip() bool
}

// Star is the coordinator/hub topology: one link per player, all routes
// through the hub. It is the explicit-topology twin of the legacy
// shared-board wiring — same link set, same frame flow — plus the routing
// envelope, so conformance across topologies can be pinned against it.
type Star struct{}

// Name implements Topology.
func (Star) Name() string { return "star" }

// Links implements Topology: player i ↔ coordinator, indexed by player.
func (Star) Links(k int) []LinkID {
	links := make([]LinkID, k)
	for i := 0; i < k; i++ {
		links[i] = LinkID{A: i, B: k}
	}
	return links
}

// NextHop implements Topology: the hub reaches players directly, players
// reach everything through the hub.
func (Star) NextHop(k, at, dst int) int {
	if at == k {
		return dst
	}
	return k
}

// MaxHops implements Topology: player → hub → player is two hops.
func (Star) MaxHops(int) int { return 2 }

// Gossip implements Topology.
func (Star) Gossip() bool { return false }

// Ring is the unidirectional cycle 0 → 1 → … → k-1 → coordinator → 0.
// Every frame travels in successor direction only, so a single k+1-link
// cycle carries all traffic and relays store-and-forward most frames —
// the maximally link-frugal topology, paid for in hop latency.
type Ring struct{}

// Name implements Topology.
func (Ring) Name() string { return "ring" }

// Links implements Topology: the cycle edges, deduplicated for the
// two-node ring (k=1), where both directions share the one physical link.
func (Ring) Links(k int) []LinkID {
	n := k + 1
	seen := make(map[LinkID]bool, n)
	links := make([]LinkID, 0, n)
	for i := 0; i < n; i++ {
		a, b := i, (i+1)%n
		if a > b {
			a, b = b, a
		}
		id := LinkID{A: a, B: b}
		if !seen[id] {
			seen[id] = true
			links = append(links, id)
		}
	}
	return links
}

// NextHop implements Topology: always the successor on the cycle.
func (Ring) NextHop(k, at, dst int) int { return (at + 1) % (k + 1) }

// MaxHops implements Topology: the longest route visits every node once.
func (Ring) MaxHops(k int) int { return k + 1 }

// Gossip implements Topology.
func (Ring) Gossip() bool { return false }

// Mesh is the complete graph over players and coordinator: every pair of
// nodes shares a direct link, every route is one hop, and the speaker
// gossips its own message to its peers instead of the coordinator echoing
// it — the peer-to-peer extreme, paid for in link count (k+1 choose 2).
type Mesh struct{}

// Name implements Topology.
func (Mesh) Name() string { return "mesh" }

// Links implements Topology: all pairs over nodes 0..k, ordered (A, B)
// lexicographically.
func (Mesh) Links(k int) []LinkID {
	links := make([]LinkID, 0, k*(k+1)/2)
	for a := 0; a <= k; a++ {
		for b := a + 1; b <= k; b++ {
			links = append(links, LinkID{A: a, B: b})
		}
	}
	return links
}

// NextHop implements Topology: every destination is a neighbor.
func (Mesh) NextHop(k, at, dst int) int { return dst }

// MaxHops implements Topology.
func (Mesh) MaxHops(int) int { return 1 }

// Gossip implements Topology.
func (Mesh) Gossip() bool { return true }

// ParseTransport maps a CLI transport name to a fresh Transport. It is
// the single construction path shared by cmd/netdisj, the experiments and
// the tests, so flag spellings cannot drift from the tested wiring.
func ParseTransport(name string) (Transport, error) {
	switch name {
	case "chan":
		return NewChanTransport(), nil
	case "pipe":
		return NewPipeTransport(), nil
	case "tcp":
		return NewTCPTransport(), nil
	}
	return nil, fmt.Errorf("netrun: unknown transport %q (want chan, pipe or tcp)", name)
}

// ParseTopology maps a CLI topology name to a Topology. "board" (and "")
// name the legacy shared-board runtime and return nil — the Config
// encoding for "no explicit topology".
func ParseTopology(name string) (Topology, error) {
	switch name {
	case "", "board":
		return nil, nil
	case "star":
		return Star{}, nil
	case "ring":
		return Ring{}, nil
	case "mesh":
		return Mesh{}, nil
	}
	return nil, fmt.Errorf("netrun: unknown topology %q (want board, star, ring or mesh)", name)
}
