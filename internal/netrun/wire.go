package netrun

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"broadcastic/internal/blackboard"
	"broadcastic/internal/faults"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/causal"
)

// kindName names a frame kind for causal record attributes.
func kindName(kind byte) string {
	switch kind {
	case frameSync:
		return "sync"
	case frameTurn:
		return "turn"
	case frameMsg:
		return "msg"
	case frameErr:
		return "err"
	case frameAck:
		return "ack"
	case frameNack:
		return "nack"
	case frameRouted:
		return "routed"
	default:
		return "unknown"
	}
}

// Frame kinds. A frame is the unit the delivery layer retransmits; the
// coordinator and players exchange exactly one kind per protocol event.
const (
	frameSync   byte = iota + 1 // coordinator -> player: board append to mirror
	frameTurn                   // coordinator -> player: your turn to speak
	frameMsg                    // player -> coordinator: the spoken message
	frameErr                    // player -> coordinator: player-side failure
	frameAck                    // either direction: delivery acknowledgement
	frameNack                   // either direction: corrupted frame received, retransmit now
	frameRouted                 // topology runtime: envelope carrying [src][dst][inner kind][inner payload]
)

// packFrame lays out [kind 1B][seq 4B BE][crc32 4B BE][payload]. The
// checksum covers kind, seq and payload (with the crc field zeroed), so a
// flipped bit anywhere in the frame is detected and the frame discarded —
// which the retransmission layer then repairs like a drop.
func packFrame(kind byte, seq uint32, payload []byte) []byte {
	f := make([]byte, 9+len(payload))
	f[0] = kind
	binary.BigEndian.PutUint32(f[1:5], seq)
	copy(f[9:], payload)
	binary.BigEndian.PutUint32(f[5:9], crcOf(f))
	return f
}

// crcOf computes the frame checksum with the crc field treated as zero.
func crcOf(f []byte) uint32 {
	crc := crc32.NewIEEE()
	crc.Write(f[:5])
	crc.Write([]byte{0, 0, 0, 0})
	crc.Write(f[9:])
	return crc.Sum32()
}

// parseFrame validates the layout and checksum; ok=false means the frame
// is malformed or corrupted and must be ignored.
func parseFrame(f []byte) (kind byte, seq uint32, payload []byte, ok bool) {
	if len(f) < 9 {
		return 0, 0, nil, false
	}
	if binary.BigEndian.Uint32(f[5:9]) != crcOf(f) {
		return 0, 0, nil, false
	}
	kind = f[0]
	if kind < frameSync || kind > frameRouted {
		return 0, 0, nil, false
	}
	return kind, binary.BigEndian.Uint32(f[1:5]), f[9:], true
}

// encodeMessagePayload serializes a board message: uvarint player, uvarint
// bit length, then exactly the packed payload bytes. The encoding is
// lossless in both content and length, so replica boards append the same
// bits the coordinator's canonical board sees.
func encodeMessagePayload(m blackboard.Message) []byte {
	buf := binary.AppendUvarint(nil, uint64(m.Player))
	buf = binary.AppendUvarint(buf, uint64(m.Len))
	return append(buf, m.Bits[:(m.Len+7)/8]...)
}

// decodeMessagePayload inverts encodeMessagePayload.
func decodeMessagePayload(payload []byte) (blackboard.Message, error) {
	player, n := binary.Uvarint(payload)
	if n <= 0 {
		return blackboard.Message{}, errors.New("netrun: message payload missing player")
	}
	payload = payload[n:]
	bitLen, n := binary.Uvarint(payload)
	if n <= 0 {
		return blackboard.Message{}, errors.New("netrun: message payload missing bit length")
	}
	payload = payload[n:]
	want := (int(bitLen) + 7) / 8
	if len(payload) != want {
		return blackboard.Message{}, fmt.Errorf("netrun: message payload has %d bytes for %d bits", len(payload), bitLen)
	}
	bits := make([]byte, want)
	copy(bits, payload)
	return blackboard.Message{Player: int(player), Bits: bits, Len: int(bitLen)}, nil
}

// encodeRoutedPayload wraps an application frame in a routing envelope:
// [src 1B][dst 1B][inner kind 1B][inner payload]. The topology runtime
// carries every application frame inside a frameRouted envelope so relay
// nodes can forward hop by hop without understanding the inner kind; the
// three envelope bytes are charged to the wire like any other header.
func encodeRoutedPayload(src, dst int, kind byte, payload []byte) []byte {
	buf := make([]byte, 3+len(payload))
	buf[0] = byte(src)
	buf[1] = byte(dst)
	buf[2] = kind
	copy(buf[3:], payload)
	return buf
}

// decodeRoutedPayload inverts encodeRoutedPayload. Only protocol-event
// kinds may travel inside an envelope: acks, nacks and nested envelopes
// are delivery-layer artifacts of a single hop.
func decodeRoutedPayload(p []byte) (src, dst int, kind byte, payload []byte, err error) {
	if len(p) < 3 {
		return 0, 0, 0, nil, errors.New("netrun: routed payload shorter than envelope")
	}
	kind = p[2]
	if kind < frameSync || kind > frameErr {
		return 0, 0, 0, nil, fmt.Errorf("netrun: routed envelope carries invalid inner kind %d", kind)
	}
	return int(p[0]), int(p[1]), kind, p[3:], nil
}

// encodeIndexedSync prefixes a sync payload with the board index of the
// message it carries. Topologies where syncs from different origins race
// (mesh gossip) need the index to restore board order at the replica; the
// star and ring paths carry it too so every topology shares one codec.
func encodeIndexedSync(index int, m blackboard.Message) []byte {
	buf := binary.AppendUvarint(nil, uint64(index))
	return append(buf, encodeMessagePayload(m)...)
}

// decodeIndexedSync inverts encodeIndexedSync.
func decodeIndexedSync(payload []byte) (int, blackboard.Message, error) {
	idx, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, blackboard.Message{}, errors.New("netrun: sync payload missing board index")
	}
	msg, err := decodeMessagePayload(payload[n:])
	if err != nil {
		return 0, blackboard.Message{}, err
	}
	return int(idx), msg, nil
}

// encodeTurnPayload carries the board's message count at the moment of the
// turn, letting the player verify its replica is in sync before speaking.
func encodeTurnPayload(numMessages int) []byte {
	return binary.AppendUvarint(nil, uint64(numMessages))
}

func decodeTurnPayload(payload []byte) (int, error) {
	v, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, errors.New("netrun: malformed turn payload")
	}
	return int(v), nil
}

// ErrDelivery wraps a frame that exhausted its retransmission budget.
var ErrDelivery = errors.New("netrun: delivery failed")

// inbound is one application frame surfaced by the delivery layer.
type inbound struct {
	kind    byte
	payload []byte
}

// endpointStats are the per-link telemetry counters. Updated atomically:
// the read loop and the sending goroutine touch them concurrently.
type endpointStats struct {
	wireBits   atomic.Int64 // bits put on (or dropped onto) the wire, both directions
	retries    atomic.Int64 // retransmission attempts beyond the first send
	badFrames  atomic.Int64 // frames discarded for checksum/layout failure
	dupDropped atomic.Int64 // duplicate data frames discarded by seq check
}

// endpoint layers reliable, ordered, at-most-once delivery of application
// frames over an unreliable Link: a stop-and-wait ARQ with sequence
// numbers, CRC checksums, per-attempt timeouts with exponential backoff,
// and a bounded retry budget.
//
// Retransmissions have three triggers, fastest first:
//
//   - An injected drop is known to the sending side (the injector decided
//     it), so the sender retransmits immediately — the medium ate the
//     frame, there is nothing to wait for. This keeps fault sweeps paced
//     by the fault model, not the wall clock.
//   - A corrupted frame fails its CRC at the receiver, which answers with
//     a NACK; the sender retransmits on receipt. The receiver suppresses
//     further NACKs until a good data frame arrives, so one repair round
//     triggers exactly one retransmission.
//   - The per-attempt timeout (doubling per retry, capped at 8x) is the
//     backstop for losses neither side can observe — real link failures,
//     or an injected corruption of the retransmission itself.
//
// Faults are applied on the send side of data frames only. Acks and nacks
// bypass the injector by design: they carry no protocol content (board
// bits are accounted from data frames alone), and keeping them
// fault-immune makes the retransmission sequence — and therefore every
// wire-level counter — a pure function of the seed. Duplicate data frames
// are discarded silently (no re-ack): with reliable acks, a duplicate can
// only be an injected Duplicate decision, never evidence of a lost ack.
//
// Exactly one goroutine calls send and one goroutine (the owner of recv)
// consumes inbound frames; the internal read loop is the only reader of
// the raw link.
type endpoint struct {
	raw        Link
	inj        *faults.Injector // nil when link faults are disabled
	timeout    time.Duration
	maxRetries int

	// rec mirrors every stats update into the run's Recorder (nil:
	// disabled). The recorder is driven from the same statements that
	// update the atomics — including the NACK, known-drop and timeout
	// retransmission paths — so recorded counters and Stats never diverge.
	// names holds the per-link metric names, precomputed so the recording
	// path allocates nothing per event.
	rec   telemetry.Recorder
	names linkMetricNames

	// cause attaches hop spans, retry events and fault instants to the
	// run's trace (zero Context: disabled). linkAttr is the precomputed
	// link attribute shared by every record this endpoint emits.
	cause    causal.Context
	linkAttr causal.Attr

	writeMu sync.Mutex // serializes raw.Send between data path and control path
	sendSeq uint32     // owned by the sending goroutine
	recvSeq uint32     // owned by the read loop

	// nackPending suppresses repeat nacks until a good data frame arrives;
	// owned by the read loop.
	nackPending bool

	dataCh chan inbound
	ackCh  chan uint32
	nackCh chan struct{}

	closed    chan struct{}
	closeOnce sync.Once

	stats endpointStats
}

// linkMetricNames are the per-link metric names, precomputed at endpoint
// construction; fault is indexed by faults.Kind.
type linkMetricNames struct {
	wireBits, retries, badFrames, dupFrames, ackNs string
	fault                                          [faults.NumKinds]string
}

// newEndpoint builds the ARQ layer over one raw link. prefix selects the
// per-link metric family — telemetry.NetrunLink on the legacy shared-board
// path (indexed by player), telemetry.NetrunTopo on the topology path
// (indexed by physical link) — so the two runtimes' wire accounting stays
// distinguishable on /metrics.
func newEndpoint(raw Link, inj *faults.Injector, timeout time.Duration, maxRetries int, rec telemetry.Recorder, cause causal.Context, prefix string, link int) *endpoint {
	ep := &endpoint{
		raw:        raw,
		inj:        inj,
		timeout:    timeout,
		maxRetries: maxRetries,
		rec:        rec,
		cause:      cause,
		linkAttr:   causal.Int("link", link),
		dataCh:     make(chan inbound, 256),
		ackCh:      make(chan uint32, 64),
		nackCh:     make(chan struct{}, 64),
		closed:     make(chan struct{}),
	}
	if rec != nil {
		ep.names = linkMetricNames{
			wireBits:  telemetry.Indexed(prefix, link, "wire_bits"),
			retries:   telemetry.Indexed(prefix, link, "retries"),
			badFrames: telemetry.Indexed(prefix, link, "bad_frames"),
			dupFrames: telemetry.Indexed(prefix, link, "dup_frames"),
			ackNs:     telemetry.Indexed(prefix, link, "ack_ns"),
		}
		for k := 0; k < faults.NumKinds; k++ {
			ep.names.fault[k] = telemetry.Indexed(prefix, link, "faults."+faults.Kind(k).String())
		}
	}
	go ep.readLoop()
	return ep
}

// recordWireBits, recordRetry, recordBad, recordDup and recordFault mirror
// one stats update into the Recorder; each costs one branch when disabled.
func (ep *endpoint) recordWireBits(bits int64) {
	if ep.rec != nil {
		ep.rec.Count(telemetry.NetrunWireBits, bits)
		ep.rec.Count(ep.names.wireBits, bits)
	}
}

func (ep *endpoint) recordRetry() {
	if ep.rec != nil {
		ep.rec.Count(telemetry.NetrunRetries, 1)
		ep.rec.Count(ep.names.retries, 1)
	}
}

func (ep *endpoint) recordBad() {
	if ep.rec != nil {
		ep.rec.Count(telemetry.NetrunBadFrames, 1)
		ep.rec.Count(ep.names.badFrames, 1)
	}
}

func (ep *endpoint) recordDup() {
	if ep.rec != nil {
		ep.rec.Count(telemetry.NetrunDupFrames, 1)
		ep.rec.Count(ep.names.dupFrames, 1)
	}
}

func (ep *endpoint) recordFault(kind faults.Kind) {
	if ep.rec != nil {
		ep.rec.Count(telemetry.NetrunFaults, 1)
		ep.rec.Count(ep.names.fault[kind], 1)
	}
	if ep.cause.Enabled() {
		ep.cause.Fault(causal.NetrunFault, ep.linkAttr, causal.String("fault", kind.String()))
	}
}

// close severs the endpoint; pending sends and recvs unblock with errors.
func (ep *endpoint) close() {
	ep.closeOnce.Do(func() {
		close(ep.closed)
		ep.raw.Close()
	})
}

// readLoop is the sole reader of the raw link. It acks and forwards new
// data frames, nacks corrupted ones, discards duplicates, and routes acks
// and nacks to the sender.
func (ep *endpoint) readLoop() {
	for {
		frame, err := ep.raw.Recv()
		if err != nil {
			ep.close()
			return
		}
		kind, seq, payload, ok := parseFrame(frame)
		if !ok {
			ep.stats.badFrames.Add(1)
			ep.recordBad()
			if !ep.nackPending {
				ep.nackPending = true
				ep.sendControl(frameNack, ep.recvSeq)
			}
			continue
		}
		switch kind {
		case frameAck:
			select {
			case ep.ackCh <- seq:
			default:
				// The sender is not waiting (stale ack from a duplicated
				// frame); drop it.
			}
			continue
		case frameNack:
			select {
			case ep.nackCh <- struct{}{}:
			default:
			}
			continue
		}
		ep.nackPending = false
		if seq <= ep.recvSeq {
			ep.stats.dupDropped.Add(1)
			ep.recordDup()
			continue
		}
		// Stop-and-wait: in-order delivery means the only acceptable new
		// frame is recvSeq+1.
		ep.recvSeq = seq
		ep.sendControl(frameAck, seq)
		// Copy the payload out of the frame so the consumer owns its bytes.
		p := make([]byte, len(payload))
		copy(p, payload)
		select {
		case ep.dataCh <- inbound{kind: kind, payload: p}:
		case <-ep.closed:
			return
		}
	}
}

// sendControl emits an ack or nack. Control frames are never faulted (see
// the type comment) and never retransmitted.
func (ep *endpoint) sendControl(kind byte, seq uint32) {
	frame := packFrame(kind, seq, nil)
	ep.writeMu.Lock()
	defer ep.writeMu.Unlock()
	ep.stats.wireBits.Add(int64(8 * len(frame)))
	ep.recordWireBits(int64(8 * len(frame)))
	ep.raw.Send(frame) // best effort: a lost control frame surfaces as a send timeout upstream
}

// send delivers one application frame reliably: transmit, await the ack,
// retransmit on known drop (immediately), nack (on receipt) or timeout
// (doubling backoff, capped at 8x the base), up to maxRetries times.
func (ep *endpoint) send(kind byte, payload []byte) error {
	ep.sendSeq++
	seq := ep.sendSeq
	frame := packFrame(kind, seq, payload)
	// Drain nacks left over from an earlier frame's repair (the link is
	// FIFO, so anything queued now predates this frame).
	for {
		select {
		case <-ep.nackCh:
			continue
		default:
		}
		break
	}
	timeout := ep.timeout
	maxTimeout := 8 * ep.timeout
	var sendStart time.Time
	if ep.rec != nil {
		sendStart = time.Now()
	}
	// The hop span covers first transmission to matching ack; it is ended
	// only on successful delivery, so a hop that exhausted its retry budget
	// (or died with the link) is absent from the dump — the retry events
	// and the eventual crash record tell that story instead.
	var hop causal.Span
	if ep.cause.Enabled() {
		hop = ep.cause.StartSpan(causal.NetrunHop, ep.linkAttr, causal.String("kind", kindName(kind)))
	}
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			ep.stats.retries.Add(1)
			ep.recordRetry()
			if ep.cause.Enabled() {
				// Parent the retry to its hop so the causal tree shows which
				// delivery the retransmission repaired.
				hop.Context().Event(causal.NetrunRetry, ep.linkAttr, causal.Int("attempt", attempt))
			}
		}
		delivered, err := ep.sendRaw(frame, true)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrDelivery, err)
		}
		if delivered {
			timer := time.NewTimer(timeout)
		await:
			for {
				select {
				case ackSeq := <-ep.ackCh:
					if ackSeq == seq {
						timer.Stop()
						if ep.rec != nil {
							// Ack latency spans first transmission to the
							// matching ack, retransmissions included.
							ep.rec.Observe(telemetry.NetrunAckNs, float64(time.Since(sendStart)))
							ep.rec.Observe(ep.names.ackNs, float64(time.Since(sendStart)))
						}
						hop.End()
						return nil
					}
					// Stale ack for an earlier frame (e.g. from an injected
					// duplicate); keep waiting within this attempt.
				case <-ep.nackCh:
					// The receiver saw a corrupted frame; retransmit now.
					timer.Stop()
					break await
				case <-timer.C:
					break await
				case <-ep.closed:
					timer.Stop()
					return fmt.Errorf("%w: %v", ErrDelivery, ErrLinkClosed)
				}
			}
		}
		if attempt >= ep.maxRetries {
			return fmt.Errorf("%w: no ack for frame kind %d after %d attempts", ErrDelivery, kind, attempt+1)
		}
		if timeout < maxTimeout {
			timeout *= 2
			if timeout > maxTimeout {
				timeout = maxTimeout
			}
		}
	}
}

// sendRaw puts one frame on the wire, applying the injector's decision
// when faultable. A dropped frame still counts its wire bits (the sender
// transmitted; the medium ate it), keeping the delivered-bits overhead
// metric honest; delivered=false tells the caller to retransmit without
// waiting, since the loss is known to this side.
func (ep *endpoint) sendRaw(frame []byte, faultable bool) (delivered bool, err error) {
	bits := int64(8 * len(frame))
	if !faultable || ep.inj == nil {
		ep.writeMu.Lock()
		defer ep.writeMu.Unlock()
		ep.stats.wireBits.Add(bits)
		ep.recordWireBits(bits)
		return true, ep.raw.Send(frame)
	}
	d := ep.inj.Decide(len(frame) * 8)
	if d.Delay > 0 {
		ep.recordFault(faults.Delay)
		time.Sleep(d.Delay)
	}
	out := frame
	if d.CorruptBit >= 0 {
		ep.recordFault(faults.Corrupt)
		out = make([]byte, len(frame))
		copy(out, frame)
		out[d.CorruptBit/8] ^= 1 << uint(7-d.CorruptBit%8)
	}
	ep.writeMu.Lock()
	defer ep.writeMu.Unlock()
	if d.Drop {
		ep.recordFault(faults.Drop)
		ep.stats.wireBits.Add(bits)
		ep.recordWireBits(bits)
		return false, nil
	}
	ep.stats.wireBits.Add(bits)
	ep.recordWireBits(bits)
	if err := ep.raw.Send(out); err != nil {
		return false, err
	}
	if d.Duplicate {
		ep.recordFault(faults.Duplicate)
		ep.stats.wireBits.Add(bits)
		ep.recordWireBits(bits)
		return true, ep.raw.Send(out)
	}
	return true, nil
}

// recv surfaces the next application frame, or an error after the deadline
// or once the link is severed.
func (ep *endpoint) recv(deadline time.Duration) (inbound, error) {
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case in := <-ep.dataCh:
		return in, nil
	case <-timer.C:
		return inbound{}, fmt.Errorf("netrun: no frame within %v", deadline)
	case <-ep.closed:
		// Drain a frame that raced with the close.
		select {
		case in := <-ep.dataCh:
			return in, nil
		default:
		}
		return inbound{}, ErrLinkClosed
	}
}
