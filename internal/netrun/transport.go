package netrun

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Link is one endpoint of a bidirectional frame pipe between the
// coordinator and a player. Send delivers one opaque frame to the peer;
// Recv blocks for the next one. Links carry raw frames only — ordering,
// acknowledgement, deduplication and fault tolerance live in the endpoint
// layer above (wire.go). Send and Recv may be called from different
// goroutines, but each of Send and Recv individually needs external
// serialization (the endpoint provides it).
type Link interface {
	Send(frame []byte) error
	Recv() ([]byte, error)
	Close() error
}

// Transport creates the coordinator↔player links of a run.
type Transport interface {
	// Name identifies the transport in stats and CLI flags.
	Name() string
	// Open creates k link pairs: coord[i] is the coordinator's endpoint of
	// the link to player i, players[i] the player's endpoint of the same
	// link.
	Open(k int) (coord, players []Link, err error)
}

// ErrLinkClosed is returned by link operations after Close (or after the
// peer closed a paired in-process link).
var ErrLinkClosed = errors.New("netrun: link closed")

// maxFrameBytes bounds a single frame on stream transports; protocol
// messages are small (the optimal DISJ protocol's largest batch is a few
// hundred bytes), so anything near this size indicates stream corruption.
const maxFrameBytes = 1 << 22

// ---------------------------------------------------------------------------
// In-process channel transport (the default).

// ChanTransport connects coordinator and players with buffered in-process
// channels. It is the default transport: no serialization overhead beyond
// the frame bytes themselves, no syscalls, and deterministic capacity.
type ChanTransport struct {
	// Buffer is the per-direction channel capacity (0 = a sensible default).
	// The stop-and-wait delivery layer keeps at most a handful of frames in
	// flight, so the default is generous.
	Buffer int
}

// NewChanTransport returns the in-process channel transport.
func NewChanTransport() *ChanTransport { return &ChanTransport{} }

// Name implements Transport.
func (t *ChanTransport) Name() string { return "chan" }

// Open implements Transport.
func (t *ChanTransport) Open(k int) ([]Link, []Link, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("netrun: transport opened for %d players", k)
	}
	buffer := t.Buffer
	if buffer <= 0 {
		buffer = 64
	}
	coord := make([]Link, k)
	players := make([]Link, k)
	for i := 0; i < k; i++ {
		toPlayer := make(chan []byte, buffer)
		toCoord := make(chan []byte, buffer)
		done := make(chan struct{})
		var once sync.Once
		closeFn := func() { once.Do(func() { close(done) }) }
		coord[i] = &chanLink{out: toPlayer, in: toCoord, done: done, close: closeFn}
		players[i] = &chanLink{out: toCoord, in: toPlayer, done: done, close: closeFn}
	}
	return coord, players, nil
}

// chanLink is one side of a channel pair. The two sides share the done
// channel, so closing either side severs the link for both — mirroring a
// broken connection.
type chanLink struct {
	out   chan<- []byte
	in    <-chan []byte
	done  chan struct{}
	close func()
}

func (l *chanLink) Send(frame []byte) error {
	select {
	case <-l.done:
		return ErrLinkClosed
	default:
	}
	select {
	case l.out <- frame:
		return nil
	case <-l.done:
		return ErrLinkClosed
	}
}

func (l *chanLink) Recv() ([]byte, error) {
	select {
	case f := <-l.in:
		return f, nil
	case <-l.done:
		// Drain anything that raced with the close so shutdown is not
		// order-sensitive.
		select {
		case f := <-l.in:
			return f, nil
		default:
		}
		return nil, ErrLinkClosed
	}
}

func (l *chanLink) Close() error {
	l.close()
	return nil
}

// ---------------------------------------------------------------------------
// Stream transports: net.Pipe and TCP loopback, sharing one length-prefixed
// wire codec.

// connLink adapts a net.Conn into a Link with a length-prefixed codec:
// every frame is a 4-byte big-endian length followed by that many bytes.
// The single Write per frame keeps frames contiguous; the endpoint layer
// serializes concurrent senders.
type connLink struct {
	conn net.Conn
}

func (l *connLink) Send(frame []byte) error {
	if len(frame) > maxFrameBytes {
		return fmt.Errorf("netrun: frame of %d bytes exceeds wire limit", len(frame))
	}
	buf := make([]byte, 4+len(frame))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(frame)))
	copy(buf[4:], frame)
	if _, err := l.conn.Write(buf); err != nil {
		return fmt.Errorf("netrun: wire send: %w", err)
	}
	return nil
}

func (l *connLink) Recv() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(l.conn, hdr[:]); err != nil {
		return nil, fmt.Errorf("netrun: wire recv: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return nil, fmt.Errorf("netrun: inbound frame of %d bytes exceeds wire limit", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(l.conn, frame); err != nil {
		return nil, fmt.Errorf("netrun: wire recv body: %w", err)
	}
	return frame, nil
}

func (l *connLink) Close() error { return l.conn.Close() }

// PipeTransport connects each player over a synchronous in-memory duplex
// stream (net.Pipe) with the length-prefixed codec — the full wire path
// without a socket.
type PipeTransport struct{}

// NewPipeTransport returns the net.Pipe transport.
func NewPipeTransport() *PipeTransport { return &PipeTransport{} }

// Name implements Transport.
func (t *PipeTransport) Name() string { return "pipe" }

// Open implements Transport.
func (t *PipeTransport) Open(k int) ([]Link, []Link, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("netrun: transport opened for %d players", k)
	}
	coord := make([]Link, k)
	players := make([]Link, k)
	for i := 0; i < k; i++ {
		c, p := net.Pipe()
		coord[i] = &connLink{conn: c}
		players[i] = &connLink{conn: p}
	}
	return coord, players, nil
}

// TCPTransport connects each player over a loopback TCP connection with
// the length-prefixed codec: real sockets, real kernel buffering, real
// per-connection goroutine wakeups.
type TCPTransport struct {
	// Addr is the listen address; empty means 127.0.0.1:0 (an ephemeral
	// loopback port).
	Addr string
}

// NewTCPTransport returns the TCP loopback transport.
func NewTCPTransport() *TCPTransport { return &TCPTransport{} }

// Name implements Transport.
func (t *TCPTransport) Name() string { return "tcp" }

// Open implements Transport. Each dialed connection introduces itself with
// a one-byte player index so accept order cannot scramble link identity.
func (t *TCPTransport) Open(k int) ([]Link, []Link, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("netrun: transport opened for %d players", k)
	}
	if k > 255 {
		return nil, nil, fmt.Errorf("netrun: tcp transport supports at most 255 players, got %d", k)
	}
	addr := t.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("netrun: tcp listen: %w", err)
	}
	defer ln.Close()

	players := make([]Link, k)
	dialErr := make(chan error, 1)
	go func() {
		for i := 0; i < k; i++ {
			c, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				dialErr <- fmt.Errorf("netrun: tcp dial %d: %w", i, err)
				return
			}
			if _, err := c.Write([]byte{byte(i)}); err != nil {
				c.Close()
				dialErr <- fmt.Errorf("netrun: tcp handshake %d: %w", i, err)
				return
			}
			players[i] = &connLink{conn: c}
		}
		dialErr <- nil
	}()

	coord := make([]Link, k)
	cleanup := func() {
		for _, l := range coord {
			if l != nil {
				l.Close()
			}
		}
		<-dialErr
		for _, l := range players {
			if l != nil {
				l.Close()
			}
		}
	}
	for i := 0; i < k; i++ {
		c, err := ln.Accept()
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("netrun: tcp accept: %w", err)
		}
		var idx [1]byte
		if _, err := io.ReadFull(c, idx[:]); err != nil {
			c.Close()
			cleanup()
			return nil, nil, fmt.Errorf("netrun: tcp handshake read: %w", err)
		}
		if int(idx[0]) >= k || coord[idx[0]] != nil {
			c.Close()
			cleanup()
			return nil, nil, fmt.Errorf("netrun: tcp handshake announced invalid player %d", idx[0])
		}
		coord[idx[0]] = &connLink{conn: c}
	}
	if err := <-dialErr; err != nil {
		cleanup()
		return nil, nil, err
	}
	return coord, players, nil
}
