package netrun

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"broadcastic/internal/blackboard"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/causal"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	f := packFrame(frameMsg, 7, payload)
	kind, seq, got, ok := parseFrame(f)
	if !ok || kind != frameMsg || seq != 7 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: kind=%d seq=%d payload=%x ok=%v", kind, seq, got, ok)
	}
	// Empty payload.
	kind, seq, got, ok = parseFrame(packFrame(frameAck, 1, nil))
	if !ok || kind != frameAck || seq != 1 || len(got) != 0 {
		t.Fatalf("empty round trip: kind=%d seq=%d payload=%x ok=%v", kind, seq, got, ok)
	}
}

func TestParseFrameRejectsCorruption(t *testing.T) {
	f := packFrame(frameSync, 3, []byte{1, 2, 3})
	// Every single-bit flip anywhere in the frame must be caught.
	for bit := 0; bit < 8*len(f); bit++ {
		c := make([]byte, len(f))
		copy(c, f)
		c[bit/8] ^= 1 << uint(7-bit%8)
		if _, _, _, ok := parseFrame(c); ok {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
	}
	if _, _, _, ok := parseFrame(f[:5]); ok {
		t.Fatal("truncated frame accepted")
	}
	if _, _, _, ok := parseFrame(nil); ok {
		t.Fatal("nil frame accepted")
	}
}

func TestMessagePayloadRoundTrip(t *testing.T) {
	msgs := []blackboard.Message{
		{Player: 0, Bits: []byte{0b10110000}, Len: 4},
		{Player: 3, Bits: []byte{0xff, 0x80}, Len: 9},
		{Player: 1, Bits: nil, Len: 0},
	}
	for _, m := range msgs {
		got, err := decodeMessagePayload(encodeMessagePayload(m))
		if err != nil {
			t.Fatalf("decode(%+v): %v", m, err)
		}
		if got.Player != m.Player || got.Len != m.Len || !bytes.Equal(got.Bits, m.Bits[:(m.Len+7)/8]) {
			t.Fatalf("round trip %+v -> %+v", m, got)
		}
	}
	for _, bad := range [][]byte{{}, {0x01}, {0x00, 0x09}} {
		if _, err := decodeMessagePayload(bad); err == nil {
			t.Fatalf("malformed payload %x accepted", bad)
		}
	}
	if n, err := decodeTurnPayload(encodeTurnPayload(42)); err != nil || n != 42 {
		t.Fatalf("turn payload: %d, %v", n, err)
	}
	if _, err := decodeTurnPayload(nil); err == nil {
		t.Fatal("empty turn payload accepted")
	}
}

// lossyLink drops the first n outbound frames, then passes everything.
type lossyLink struct {
	Link
	drop int
}

func (l *lossyLink) Send(frame []byte) error {
	if l.drop > 0 {
		l.drop--
		return nil
	}
	return l.Link.Send(frame)
}

func newEndpointPair(t *testing.T, wrapA func(Link) Link, timeout time.Duration, maxRetries int) (*endpoint, *endpoint) {
	t.Helper()
	coord, players, err := NewChanTransport().Open(1)
	if err != nil {
		t.Fatal(err)
	}
	rawA := coord[0]
	if wrapA != nil {
		rawA = wrapA(rawA)
	}
	a := newEndpoint(rawA, nil, timeout, maxRetries, nil, causal.Context{}, telemetry.NetrunLink, 0)
	b := newEndpoint(players[0], nil, timeout, maxRetries, nil, causal.Context{}, telemetry.NetrunLink, 0)
	t.Cleanup(func() { a.close(); b.close() })
	return a, b
}

func TestEndpointDelivers(t *testing.T) {
	a, b := newEndpointPair(t, nil, 50*time.Millisecond, 2)
	if err := a.send(frameSync, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	in, err := b.recv(time.Second)
	if err != nil || in.kind != frameSync || string(in.payload) != "hello" {
		t.Fatalf("recv = %+v, %v", in, err)
	}
	if got := a.stats.retries.Load(); got != 0 {
		t.Fatalf("clean delivery cost %d retries", got)
	}
}

func TestEndpointRetransmits(t *testing.T) {
	a, b := newEndpointPair(t, func(l Link) Link { return &lossyLink{Link: l, drop: 2} }, 10*time.Millisecond, 5)
	if err := a.send(frameTurn, encodeTurnPayload(1)); err != nil {
		t.Fatal(err)
	}
	in, err := b.recv(time.Second)
	if err != nil || in.kind != frameTurn {
		t.Fatalf("recv = %+v, %v", in, err)
	}
	if got := a.stats.retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	// Exactly one copy must surface despite the retransmissions.
	if _, err := b.recv(50 * time.Millisecond); err == nil {
		t.Fatal("duplicate frame surfaced")
	}
}

func TestEndpointGivesUp(t *testing.T) {
	a, _ := newEndpointPair(t, func(l Link) Link { return &lossyLink{Link: l, drop: 1 << 30} }, 5*time.Millisecond, 2)
	err := a.send(frameSync, []byte("x"))
	if !errors.Is(err, ErrDelivery) {
		t.Fatalf("err = %v, want ErrDelivery", err)
	}
	if got := a.stats.retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
}

func TestTransportsRoundTrip(t *testing.T) {
	for _, tr := range []Transport{NewChanTransport(), NewPipeTransport(), NewTCPTransport()} {
		t.Run(tr.Name(), func(t *testing.T) {
			coord, players, err := tr.Open(3)
			if err != nil {
				if tr.Name() == "tcp" {
					t.Skipf("tcp unavailable: %v", err)
				}
				t.Fatal(err)
			}
			for i := range coord {
				defer coord[i].Close()
				defer players[i].Close()
			}
			// Links must be independent and bidirectional.
			for i := range coord {
				want := []byte{byte(i), 0xaa}
				done := make(chan error, 1)
				go func() { done <- coord[i].Send(want) }()
				got, err := players[i].Recv()
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("link %d: recv %x, %v", i, got, err)
				}
				if err := <-done; err != nil {
					t.Fatalf("link %d: send: %v", i, err)
				}
				go func() { done <- players[i].Send(want) }()
				if got, err := coord[i].Recv(); err != nil || !bytes.Equal(got, want) {
					t.Fatalf("link %d reverse: recv %x, %v", i, got, err)
				}
				<-done
			}
			// Closing one side unblocks the peer's Recv.
			errCh := make(chan error, 1)
			go func() {
				_, err := players[0].Recv()
				errCh <- err
			}()
			coord[0].Close()
			select {
			case err := <-errCh:
				if err == nil {
					t.Fatal("Recv after peer close returned a frame")
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Recv did not unblock on peer close")
			}
		})
	}
}

func TestTransportRejectsBadPlayerCount(t *testing.T) {
	for _, tr := range []Transport{NewChanTransport(), NewPipeTransport(), NewTCPTransport()} {
		if _, _, err := tr.Open(0); err == nil {
			t.Fatalf("%s: Open(0) succeeded", tr.Name())
		}
	}
	if _, _, err := NewTCPTransport().Open(300); err == nil {
		t.Fatal("tcp Open(300) succeeded")
	}
}
