package netrun_test

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"broadcastic/internal/blackboard"
	"broadcastic/internal/disj"
	"broadcastic/internal/faults"
	"broadcastic/internal/netrun"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
)

// topologies enumerates the built-in topologies.
func topologies() []netrun.Topology {
	return []netrun.Topology{netrun.Star{}, netrun.Ring{}, netrun.Mesh{}}
}

// matrixTransports returns the transports to exercise, honoring the
// BROADCASTIC_TOPO_TRANSPORT cell selector the CI topology-conformance
// matrix sets (empty: all available).
func matrixTransports(t *testing.T) []netrun.Transport {
	all := transports(t)
	sel := os.Getenv("BROADCASTIC_TOPO_TRANSPORT")
	if sel == "" {
		return all
	}
	for _, tr := range all {
		if tr.Name() == sel {
			return []netrun.Transport{tr}
		}
	}
	if sel == "tcp" {
		t.Skip("tcp transport unavailable in this environment")
	}
	t.Fatalf("BROADCASTIC_TOPO_TRANSPORT=%q names no known transport", sel)
	return nil
}

// matrixTopologies returns the topologies to exercise, honoring the
// BROADCASTIC_TOPO_TOPOLOGY cell selector (empty: all).
func matrixTopologies(t *testing.T) []netrun.Topology {
	sel := os.Getenv("BROADCASTIC_TOPO_TOPOLOGY")
	if sel == "" {
		return topologies()
	}
	topo, err := netrun.ParseTopology(sel)
	if err != nil || topo == nil {
		t.Fatalf("BROADCASTIC_TOPO_TOPOLOGY=%q names no known topology", sel)
	}
	return []netrun.Topology{topo}
}

// requireLinkAccounting pins the per-link contract: one LinkStats per
// physical link, wire bits summing to the total exactly, and the
// topology named in the stats. allBusy additionally requires traffic on
// every link (false for coordinator-mode mesh, whose peer links are
// legitimately idle).
func requireLinkAccounting(t *testing.T, res *netrun.Result, topo netrun.Topology, k int, allBusy bool) {
	t.Helper()
	if res.Stats.Topology != topo.Name() {
		t.Fatalf("stats name topology %q, want %q", res.Stats.Topology, topo.Name())
	}
	links := topo.Links(k)
	if len(res.Stats.PerLink) != len(links) {
		t.Fatalf("%d LinkStats for %d links", len(res.Stats.PerLink), len(links))
	}
	var sumBits, sumRetries int64
	var sumFaults faults.Counts
	for l, ls := range res.Stats.PerLink {
		if ls.Link != links[l] {
			t.Fatalf("LinkStats[%d] names link %v, want %v", l, ls.Link, links[l])
		}
		if allBusy && ls.WireBits == 0 {
			t.Fatalf("link %v carried no traffic", ls.Link)
		}
		sumBits += ls.WireBits
		sumRetries += ls.Retries
		sumFaults.Add(ls.Faults)
	}
	if sumBits != res.Stats.WireBits {
		t.Fatalf("per-link wire bits sum to %d, stats total %d", sumBits, res.Stats.WireBits)
	}
	if sumFaults != res.Stats.Faults {
		t.Fatalf("per-link faults sum to %+v, stats total %+v", sumFaults, res.Stats.Faults)
	}
	if sumRetries < int64(res.Stats.Faults.Drops) {
		t.Fatalf("%d retries cannot repair %d drops", sumRetries, res.Stats.Faults.Drops)
	}
}

// TestTopologyConformance is the CI conformance matrix: on every
// transport × topology cell the board transcript, bit accounting and
// protocol answer must be identical to the sequential blackboard run —
// the topology changes where bits travel, never what the protocol says.
func TestTopologyConformance(t *testing.T) {
	cases := []struct {
		name string
		inst func(t *testing.T) *disj.Instance
	}{
		{"disjoint", func(t *testing.T) *disj.Instance {
			inst, err := disj.GenerateDisjoint(rng.New(606), 72, 4, 0.35)
			if err != nil {
				t.Fatal(err)
			}
			return inst
		}},
		{"intersecting", func(t *testing.T) *disj.Instance {
			inst, err := disj.GenerateIntersecting(rng.New(707), 72, 4, 1, 0.35)
			if err != nil {
				t.Fatal(err)
			}
			return inst
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst := tc.inst(t)
			truth, err := inst.Disjoint()
			if err != nil {
				t.Fatal(err)
			}
			refProto, err := disj.NewOptimalProtocol(inst, disj.Options{})
			if err != nil {
				t.Fatal(err)
			}
			refBoard := seqFingerprint(t, refProto, nil)
			for _, topo := range matrixTopologies(t) {
				t.Run(topo.Name(), func(t *testing.T) {
					for _, tr := range matrixTransports(t) {
						t.Run(tr.Name(), func(t *testing.T) {
							proto, err := disj.NewOptimalProtocol(inst, disj.Options{})
							if err != nil {
								t.Fatal(err)
							}
							cfg := quickCfg
							cfg.Transport = tr
							cfg.Topology = topo
							res := netFingerprint(t, proto, nil, cfg)
							requireSameBoard(t, refBoard, res.Board)
							out, err := proto.Outcome(res.Board)
							if err != nil {
								t.Fatal(err)
							}
							if out.Disjoint != truth {
								t.Fatalf("answer %v, truth %v", out.Disjoint, truth)
							}
							requireLinkAccounting(t, res, topo, inst.K, true)
						})
					}
				})
			}
		})
	}
}

// The coordinator-model protocol must produce the hub transcript the
// sequential runtime produces — with DeliverCoordinator suppressing every
// sync, so players decide from their input and the shared sketch alone.
func TestTopologyCoordinatorDelivery(t *testing.T) {
	inst, err := disj.GenerateIntersecting(rng.New(808), 64, 4, 1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := inst.Disjoint()
	if err != nil {
		t.Fatal(err)
	}
	refProto, err := disj.NewCoordinatorProtocol(inst, disj.CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refBoard := seqFingerprint(t, refProto, nil)
	if got, want := refBoard.TotalBits(), inst.N*inst.K; got != want {
		t.Fatalf("hub log holds %d bits, want n*k = %d", got, want)
	}
	for _, topo := range topologies() {
		t.Run(topo.Name(), func(t *testing.T) {
			proto, err := disj.NewCoordinatorProtocol(inst, disj.CoordinatorOptions{})
			if err != nil {
				t.Fatal(err)
			}
			cfg := quickCfg
			cfg.Topology = topo
			cfg.Delivery = netrun.DeliverCoordinator
			res := netFingerprint(t, proto, nil, cfg)
			requireSameBoard(t, refBoard, res.Board)
			out, err := proto.Outcome(res.Board)
			if err != nil {
				t.Fatal(err)
			}
			if out.Disjoint != truth {
				t.Fatalf("answer %v, truth %v", out.Disjoint, truth)
			}
			requireLinkAccounting(t, res, topo, inst.K, false)
		})
	}
}

// Satellite: fault plans on ring and mesh links. Under every recoverable
// mix the transcript must stay identical to the fault-free sequential run
// — per-hop ARQ repairs each physical link independently, relays
// included.
func TestTopologyFaultSweep(t *testing.T) {
	inst, err := disj.GenerateIntersecting(rng.New(909), 48, 4, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	refProto, err := disj.NewOptimalProtocol(inst, disj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refBoard := seqFingerprint(t, refProto, nil)
	mixes := []string{
		"drop=0.08",
		"dup=0.1",
		"corrupt=0.06",
		"drop=0.05,dup=0.05,corrupt=0.03",
	}
	for _, topo := range []netrun.Topology{netrun.Ring{}, netrun.Mesh{}} {
		t.Run(topo.Name(), func(t *testing.T) {
			var injected int
			for _, mix := range mixes {
				t.Run(mix, func(t *testing.T) {
					plan, err := faults.Parse(mix)
					if err != nil {
						t.Fatal(err)
					}
					proto, err := disj.NewOptimalProtocol(inst, disj.Options{})
					if err != nil {
						t.Fatal(err)
					}
					cfg := netrun.Config{
						Topology:   topo,
						Faults:     plan,
						Seed:       17,
						Timeout:    40 * time.Millisecond,
						MaxRetries: 10,
					}
					res := netFingerprint(t, proto, nil, cfg)
					requireSameBoard(t, refBoard, res.Board)
					out, err := proto.Outcome(res.Board)
					if err != nil {
						t.Fatal(err)
					}
					if out.Disjoint {
						t.Fatal("answer flipped under faults")
					}
					requireLinkAccounting(t, res, topo, inst.K, true)
					injected += res.Stats.Faults.Total()
				})
			}
			// Any single short run may dodge its fault coin flips, but four
			// mixes at these rates cannot all draw zero injections.
			if injected == 0 {
				t.Fatal("fault sweep injected nothing across all mixes")
			}
		})
	}
}

// Satellite: seed reproducibility per topology. Same seed, same topology
// ⇒ the same per-link fault sequence, wire bits and retries; a different
// seed changes the wire statistics but never the transcript.
func TestTopologyFaultReproducibility(t *testing.T) {
	inst, err := disj.GenerateDisjoint(rng.New(111), 48, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.Parse("drop=0.06,dup=0.06,corrupt=0.04")
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range topologies() {
		t.Run(topo.Name(), func(t *testing.T) {
			run := func(seed uint64) *netrun.Result {
				proto, err := disj.NewOptimalProtocol(inst, disj.Options{})
				if err != nil {
					t.Fatal(err)
				}
				cfg := netrun.Config{
					Topology: topo,
					Faults:   plan,
					Seed:     seed,
					// Generous timeout: injected drops and corruptions recover
					// via immediate or NACK-driven retransmits, so the timer
					// only fires on real stalls. A short timeout could fire
					// spuriously under -race slowdown and add timing-dependent
					// retries, breaking the exact same-seed stat equality.
					Timeout:    500 * time.Millisecond,
					MaxRetries: 10,
				}
				return netFingerprint(t, proto, nil, cfg)
			}
			a, b := run(23), run(23)
			if a.Board.TranscriptKey() != b.Board.TranscriptKey() {
				t.Fatal("transcripts differ across same-seed runs")
			}
			if a.Stats.WireBits != b.Stats.WireBits {
				t.Fatalf("wire bits differ: %d vs %d", a.Stats.WireBits, b.Stats.WireBits)
			}
			if a.Stats.Faults != b.Stats.Faults {
				t.Fatalf("fault tallies differ: %+v vs %+v", a.Stats.Faults, b.Stats.Faults)
			}
			for l := range a.Stats.PerLink {
				la, lb := a.Stats.PerLink[l], b.Stats.PerLink[l]
				if la.WireBits != lb.WireBits || la.Retries != lb.Retries || la.Faults != lb.Faults {
					t.Fatalf("link %v stats differ across same-seed runs: %+v vs %+v", la.Link, la, lb)
				}
			}
			c := run(24)
			if c.Board.TranscriptKey() != a.Board.TranscriptKey() {
				t.Fatal("board transcript depends on the fault seed")
			}
			if c.Stats.Faults == a.Stats.Faults && c.Stats.WireBits == a.Stats.WireBits {
				t.Fatal("different seeds produced identical fault statistics")
			}
		})
	}
}

// The per-link netrun.topo.<l>.* counters must equal the returned
// PerLink stats exactly, and the aggregate netrun.* counters the totals.
func TestTopologyRecorderMatchesStats(t *testing.T) {
	inst, err := disj.GenerateDisjoint(rng.New(222), 48, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.Parse("drop=0.05,dup=0.05")
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range topologies() {
		t.Run(topo.Name(), func(t *testing.T) {
			proto, err := disj.NewOptimalProtocol(inst, disj.Options{})
			if err != nil {
				t.Fatal(err)
			}
			rec := telemetry.NewCollector()
			cfg := netrun.Config{
				Topology: topo,
				Faults:   plan, Seed: 7,
				Timeout: 40 * time.Millisecond, MaxRetries: 10,
				Recorder: rec, Limits: proto.Limits(),
			}
			res, err := netrun.Run(proto.Scheduler(), proto.Players(), nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var total int64
			for l, ls := range res.Stats.PerLink {
				if got := rec.Counter(telemetry.Indexed(telemetry.NetrunTopo, l, "wire_bits")); got != ls.WireBits {
					t.Errorf("link %d recorded %d wire bits, stats %d", l, got, ls.WireBits)
				}
				if got := rec.Counter(telemetry.Indexed(telemetry.NetrunTopo, l, "retries")); got != ls.Retries {
					t.Errorf("link %d recorded %d retries, stats %d", l, got, ls.Retries)
				}
				total += ls.WireBits
			}
			if got := rec.Counter(telemetry.NetrunWireBits); got != total || got != res.Stats.WireBits {
				t.Errorf("recorded wire bits %d, per-link sum %d, stats %d", got, total, res.Stats.WireBits)
			}
			// The legacy per-player family must stay silent on the
			// topology path: the two metric namespaces never mix.
			if got := rec.Counter(telemetry.Indexed(telemetry.NetrunLink, 0, "wire_bits")); got != 0 {
				t.Errorf("topology run recorded %d bits under the legacy netrun.link family", got)
			}
		})
	}
}

// Crash faults stay supported on the star topology (where a dead node
// severs only its own link) and are rejected on ring and mesh.
func TestTopologyCrash(t *testing.T) {
	inst, err := disj.GenerateDisjoint(rng.New(333), 48, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.Parse("crash=1@1")
	if err != nil {
		t.Fatal(err)
	}
	proto, err := disj.NewOptimalProtocol(inst, disj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := netrun.Config{
		Topology: netrun.Star{},
		Faults:   plan, Seed: 1,
		Timeout: 40 * time.Millisecond, MaxRetries: 4,
		Limits: proto.Limits(),
	}
	res, err := netrun.Run(proto.Scheduler(), proto.Players(), nil, cfg)
	if !errors.Is(err, netrun.ErrPlayerCrashed) {
		t.Fatalf("expected ErrPlayerCrashed, got %v", err)
	}
	var ce *netrun.CrashError
	if !errors.As(err, &ce) || ce.Player != 1 {
		t.Fatalf("crash attributed to %v, want player 1", err)
	}
	if res == nil || len(res.Crashed) != 1 || res.Crashed[0] != 1 {
		t.Fatalf("crashed list %v, want [1]", res)
	}
	for _, topo := range []netrun.Topology{netrun.Ring{}, netrun.Mesh{}} {
		proto, err := disj.NewOptimalProtocol(inst, disj.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := netrun.Config{Topology: topo, Faults: plan, Limits: proto.Limits()}
		if _, err := netrun.Run(proto.Scheduler(), proto.Players(), nil, cfg); err == nil {
			t.Fatalf("crash plan accepted on %s topology", topo.Name())
		}
	}
}

// Construction helpers and validation paths.
func TestTopologyValidation(t *testing.T) {
	for _, name := range []string{"chan", "pipe", "tcp"} {
		tr, err := netrun.ParseTransport(name)
		if err != nil || tr.Name() != name {
			t.Fatalf("ParseTransport(%q) = %v, %v", name, tr, err)
		}
	}
	if _, err := netrun.ParseTransport("carrier-pigeon"); err == nil {
		t.Fatal("unknown transport accepted")
	}
	for _, name := range []string{"star", "ring", "mesh"} {
		topo, err := netrun.ParseTopology(name)
		if err != nil || topo == nil || topo.Name() != name {
			t.Fatalf("ParseTopology(%q) = %v, %v", name, topo, err)
		}
	}
	for _, name := range []string{"", "board"} {
		topo, err := netrun.ParseTopology(name)
		if err != nil || topo != nil {
			t.Fatalf("ParseTopology(%q) = %v, %v (want nil, nil)", name, topo, err)
		}
	}
	if _, err := netrun.ParseTopology("torus"); err == nil {
		t.Fatal("unknown topology accepted")
	}
	for _, tc := range []struct {
		name string
		mode netrun.DeliveryMode
	}{{"broadcast", netrun.DeliverBroadcast}, {"", netrun.DeliverBroadcast}, {"coordinator", netrun.DeliverCoordinator}} {
		mode, err := netrun.ParseDelivery(tc.name)
		if err != nil || mode != tc.mode {
			t.Fatalf("ParseDelivery(%q) = %v, %v", tc.name, mode, err)
		}
	}
	if _, err := netrun.ParseDelivery("telepathy"); err == nil {
		t.Fatal("unknown delivery mode accepted")
	}

	// Delivery modes require a topology.
	players := []blackboard.Player{blackboard.FuncPlayer(func(b *blackboard.Board) (blackboard.Message, error) {
		return blackboard.Message{}, fmt.Errorf("never runs")
	})}
	sched := blackboard.FuncScheduler(func(b *blackboard.Board) (int, bool, error) { return 0, true, nil })
	if _, err := netrun.Run(sched, players, nil, netrun.Config{Delivery: netrun.DeliverCoordinator}); err == nil {
		t.Fatal("coordinator delivery without a topology accepted")
	}

	// Node ids must fit the one-byte envelope.
	big := make([]blackboard.Player, 256)
	for i := range big {
		big[i] = players[0]
	}
	if _, err := netrun.Run(sched, big, nil, netrun.Config{Topology: netrun.Star{}}); err == nil {
		t.Fatal("256-player topology run accepted")
	}
}

// Topology shape invariants: link sets, routing and hop bounds.
func TestTopologyShapes(t *testing.T) {
	const k = 5
	if got := len(netrun.Star{}.Links(k)); got != k {
		t.Fatalf("star has %d links, want %d", got, k)
	}
	if got := len(netrun.Ring{}.Links(k)); got != k+1 {
		t.Fatalf("ring has %d links, want %d", got, k+1)
	}
	if got := len(netrun.Mesh{}.Links(k)); got != k*(k+1)/2 {
		t.Fatalf("mesh has %d links, want %d", got, k*(k+1)/2)
	}
	// k=1 ring degenerates to a single shared link.
	if got := len(netrun.Ring{}.Links(1)); got != 1 {
		t.Fatalf("two-node ring has %d links, want 1", got)
	}
	// Every route terminates within MaxHops.
	for _, topo := range topologies() {
		adj := make(map[int]map[int]bool)
		for _, l := range topo.Links(k) {
			if adj[l.A] == nil {
				adj[l.A] = make(map[int]bool)
			}
			if adj[l.B] == nil {
				adj[l.B] = make(map[int]bool)
			}
			adj[l.A][l.B] = true
			adj[l.B][l.A] = true
		}
		for src := 0; src <= k; src++ {
			for dst := 0; dst <= k; dst++ {
				if src == dst {
					continue
				}
				at, hops := src, 0
				for at != dst {
					next := topo.NextHop(k, at, dst)
					if !adj[at][next] {
						t.Fatalf("%s routes %d->%d via non-adjacent %d->%d", topo.Name(), src, dst, at, next)
					}
					at = next
					hops++
					if hops > topo.MaxHops(k) {
						t.Fatalf("%s route %d->%d exceeds MaxHops %d", topo.Name(), src, dst, topo.MaxHops(k))
					}
				}
			}
		}
	}
}
