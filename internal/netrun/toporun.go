package netrun

import (
	"fmt"
	"sync"
	"time"

	"broadcastic/internal/blackboard"
	"broadcastic/internal/faults"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/causal"
)

// This file is the explicit-topology runtime: the counterpart of the
// shared-board loop in netrun.go for runs with Config.Topology set.
//
// # Frame flow
//
// Every node (players 0..k-1 and the coordinator at id k) owns one ARQ
// endpoint per incident physical link. Application frames travel inside
// frameRouted envelopes ([src][dst][inner kind][inner payload]); a node
// receiving an envelope addressed elsewhere forwards it to
// Topology.NextHop — store-and-forward with per-hop reliability, so the
// stop-and-wait ARQ, retry budgets and fault plans of wire.go apply to
// each physical link exactly as they do to a player link on the legacy
// path.
//
// # Ordering and determinism
//
// Each endpoint has exactly one receive loop, and forwarding preserves
// arrival order per inbound link, so frames that share a route stay FIFO
// end to end. Because the protocols are turn-based ping-pong, at most one
// application conversation is in flight at a time and the sequence of
// frames on every physical link — and therefore every injector draw and
// wire-bit count — is a pure function of (protocol, topology, seed).
//
// Syncs carry the board index of their message (encodeIndexedSync): on
// gossip topologies syncs from different speakers race, and the replica
// buffers out-of-order arrivals to append in canonical board order. A
// player announced as speaker first drains pending syncs until its
// replica reaches the turn's message count.
//
// # Delivery modes
//
// DeliverBroadcast mirrors blackboard semantics: after each delivery the
// message reaches every replica (coordinator-echoed SYNCs, or speaker
// gossip on mesh). DeliverCoordinator is the message-passing model of the
// BEOPV lower bounds: messages stop at the hub, replicas stay empty, and
// players must speak from their private input alone — the mode the
// coordinator-model DISJ protocol (internal/disj) is written for.

// DeliveryMode selects how delivered messages propagate on the topology
// path.
type DeliveryMode int

const (
	// DeliverBroadcast mirrors every delivered message to every player's
	// replica — blackboard semantics over explicit links.
	DeliverBroadcast DeliveryMode = iota
	// DeliverCoordinator keeps delivered messages at the hub: players
	// never observe each other's messages, as in the coordinator model.
	DeliverCoordinator
)

// String implements fmt.Stringer.
func (m DeliveryMode) String() string {
	switch m {
	case DeliverBroadcast:
		return "broadcast"
	case DeliverCoordinator:
		return "coordinator"
	}
	return fmt.Sprintf("DeliveryMode(%d)", int(m))
}

// ParseDelivery maps a CLI delivery-mode name to the constant.
func ParseDelivery(name string) (DeliveryMode, error) {
	switch name {
	case "", "broadcast":
		return DeliverBroadcast, nil
	case "coordinator":
		return DeliverCoordinator, nil
	}
	return 0, fmt.Errorf("netrun: unknown delivery mode %q (want broadcast or coordinator)", name)
}

// maxTopoNodes bounds node ids to one envelope byte.
const maxTopoNodes = 256

// topoInboxCap buffers routed frames addressed to a node; generous so
// relays never stall behind a busy application loop.
const topoInboxCap = 1024

// routedFrame is one application frame delivered to its destination node.
type routedFrame struct {
	src     int
	kind    byte
	payload []byte
}

// nodeLink is a node's sending side of one incident physical link. The
// mutex serializes the node's application loop and its forwarders, which
// may emit on the same outbound link.
type nodeLink struct {
	ep *endpoint
	mu sync.Mutex
}

func (nl *nodeLink) send(kind byte, payload []byte) error {
	nl.mu.Lock()
	defer nl.mu.Unlock()
	return nl.ep.send(kind, payload)
}

// topoNode is one participant: its id, its incident links keyed by
// neighbor, and the inbox its receive loops deliver to.
type topoNode struct {
	id    int
	links map[int]*nodeLink
	inbox chan routedFrame
}

// topoRun holds the wiring of one topology run.
type topoRun struct {
	topo         Topology
	k            int
	nodes        []*topoNode
	done         chan struct{}
	recvDeadline time.Duration
}

// sendFrom routes one application frame from node n toward dst: wrap in
// an envelope, hand it to the next hop's link, and let relays carry it on.
func (r *topoRun) sendFrom(n *topoNode, dst int, kind byte, payload []byte) error {
	next := r.topo.NextHop(r.k, n.id, dst)
	nl, ok := n.links[next]
	if !ok {
		return fmt.Errorf("netrun: topology %s routes %d->%d via non-neighbor %d", r.topo.Name(), n.id, dst, next)
	}
	return nl.send(frameRouted, encodeRoutedPayload(n.id, dst, kind, payload))
}

// recvAt surfaces the next frame addressed to node n.
func (r *topoRun) recvAt(n *topoNode, deadline time.Duration) (routedFrame, error) {
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case rf := <-n.inbox:
		return rf, nil
	case <-timer.C:
		return routedFrame{}, fmt.Errorf("netrun: node %d: no frame within %v", n.id, deadline)
	case <-r.done:
		// Drain a frame that raced with the close.
		select {
		case rf := <-n.inbox:
			return rf, nil
		default:
		}
		return routedFrame{}, ErrLinkClosed
	}
}

// serveLink is one endpoint's receive loop at node n: deliver frames
// addressed to n, forward the rest along their route. Exits when the
// endpoint closes.
func (r *topoRun) serveLink(n *topoNode, ep *endpoint) {
	const idleDeadline = time.Hour // teardown closes the link; this is a backstop
	for {
		in, err := ep.recv(idleDeadline)
		if err != nil {
			return
		}
		if in.kind != frameRouted {
			continue // not addressable; drop
		}
		_, dst, _, _, err := decodeRoutedPayload(in.payload)
		if err != nil {
			continue
		}
		if dst == n.id {
			src, _, kind, payload, _ := decodeRoutedPayload(in.payload)
			select {
			case n.inbox <- routedFrame{src: src, kind: kind, payload: payload}:
			case <-r.done:
				return
			}
			continue
		}
		next := r.topo.NextHop(r.k, n.id, dst)
		nl, ok := n.links[next]
		if !ok {
			return
		}
		if err := nl.send(frameRouted, in.payload); err != nil {
			return
		}
	}
}

// replicaBoard wraps a player's board replica with an out-of-order buffer
// keyed by board index, so gossip syncs append in canonical order no
// matter the arrival order.
type replicaBoard struct {
	board   *blackboard.Board
	pending map[int]blackboard.Message
}

func (rb *replicaBoard) apply(idx int, msg blackboard.Message) error {
	if idx < rb.board.NumMessages() {
		return fmt.Errorf("netrun: duplicate sync for board index %d", idx)
	}
	if rb.pending == nil {
		rb.pending = make(map[int]blackboard.Message)
	}
	rb.pending[idx] = msg
	for {
		next, ok := rb.pending[rb.board.NumMessages()]
		if !ok {
			return nil
		}
		delete(rb.pending, rb.board.NumMessages())
		if err := rb.board.Append(next); err != nil {
			return err
		}
	}
}

// runTopology executes the protocol on the explicit-topology runtime.
// Invoked by Run when Config.Topology is set, after the shared
// validation; the board-level contract (transcript, bits, outcome
// identical to blackboard.Run) is the same as the legacy path's.
func runTopology(sched blackboard.Scheduler, players []blackboard.Player, public *rng.Source, cfg Config) (*Result, error) {
	k := len(players)
	topo := cfg.Topology
	if k+1 > maxTopoNodes {
		return nil, fmt.Errorf("netrun: topology runtime supports at most %d players, got %d", maxTopoNodes-1, k)
	}
	if len(cfg.Faults.CrashTurns) > 0 {
		if _, ok := topo.(Star); !ok {
			return nil, fmt.Errorf("netrun: crash faults are supported on the star topology only (a dead relay on %s severs other players' routes)", topo.Name())
		}
	}
	if cfg.Delivery != DeliverBroadcast && cfg.Delivery != DeliverCoordinator {
		return nil, fmt.Errorf("netrun: unknown delivery mode %d", cfg.Delivery)
	}
	links := topo.Links(k)
	if len(links) == 0 {
		return nil, fmt.Errorf("netrun: topology %s has no links for k=%d", topo.Name(), k)
	}
	seen := make(map[LinkID]bool, len(links))
	for _, l := range links {
		if l.A < 0 || l.B > k || l.A >= l.B {
			return nil, fmt.Errorf("netrun: topology %s lists invalid link %v", topo.Name(), l)
		}
		if seen[l] {
			return nil, fmt.Errorf("netrun: topology %s lists link %v twice", topo.Name(), l)
		}
		seen[l] = true
	}

	transport := cfg.Transport
	if transport == nil {
		transport = NewChanTransport()
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = defaultTimeout
	}
	maxRetries := cfg.MaxRetries
	if maxRetries <= 0 {
		maxRetries = defaultMaxRetries
	}

	st, err := blackboard.NewStepper(sched, k, public, cfg.Limits)
	if err != nil {
		return nil, err
	}
	st.SetRecorder(cfg.Recorder)

	// One transport pair per physical link: sideA terminates at the lower
	// node id, sideB at the higher.
	sideA, sideB, err := transport.Open(len(links))
	if err != nil {
		return nil, err
	}

	// One fault stream per link direction: A->B draws from child 2l,
	// B->A from child 2l+1 — the same convention as the legacy path's
	// per-player directions, keyed by link index.
	injAB := make([]*faults.Injector, len(links))
	injBA := make([]*faults.Injector, len(links))
	if cfg.Faults.Enabled() {
		streams := rng.New(cfg.Seed).SplitN(2 * len(links))
		for l := range links {
			injAB[l] = cfg.Faults.NewInjector(streams[2*l])
			injBA[l] = cfg.Faults.NewInjector(streams[2*l+1])
		}
	}

	// Both directions of link l record under netrun.topo.<l>.*, mirroring
	// the per-link Stats breakdown which also sums the two directions.
	epA := make([]*endpoint, len(links))
	epB := make([]*endpoint, len(links))
	r := &topoRun{topo: topo, k: k, done: make(chan struct{})}
	r.nodes = make([]*topoNode, k+1)
	for id := range r.nodes {
		r.nodes[id] = &topoNode{id: id, links: make(map[int]*nodeLink), inbox: make(chan routedFrame, topoInboxCap)}
	}
	for l, lid := range links {
		epA[l] = newEndpoint(sideA[l], injAB[l], timeout, maxRetries, cfg.Recorder, cfg.Causal, telemetry.NetrunTopo, l)
		epB[l] = newEndpoint(sideB[l], injBA[l], timeout, maxRetries, cfg.Recorder, cfg.Causal, telemetry.NetrunTopo, l)
		r.nodes[lid.A].links[lid.B] = &nodeLink{ep: epA[l]}
		r.nodes[lid.B].links[lid.A] = &nodeLink{ep: epB[l]}
	}
	var closeOnce sync.Once
	closeAll := func() {
		closeOnce.Do(func() {
			close(r.done)
			for l := range links {
				epA[l].close()
				epB[l].close()
			}
		})
	}

	// A route of h hops can wait through h links' worth of retransmission
	// budgets (plus injected delays) before its frame arrives.
	hops := topo.MaxHops(k)
	if hops < 1 {
		hops = 1
	}
	r.recvDeadline = time.Duration(hops) * (time.Duration(maxRetries+1)*(8*timeout+cfg.Faults.MaxDelay) + timeout)

	// runMu serializes protocol-state access exactly as on the legacy path.
	var runMu sync.Mutex

	replicas := make([]*replicaBoard, k)
	for i := 0; i < k; i++ {
		board, err := blackboard.NewBoard(k, public)
		if err != nil {
			closeAll()
			return nil, err
		}
		replicas[i] = &replicaBoard{board: board}
	}

	var wg sync.WaitGroup
	for _, n := range r.nodes {
		for _, nl := range n.links {
			wg.Add(1)
			go func(n *topoNode, ep *endpoint) {
				defer wg.Done()
				r.serveLink(n, ep)
			}(n, nl.ep)
		}
	}
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.playerLoop(i, players[i], replicas[i], &runMu, cfg.Faults.CrashTurn(i), cfg.Delivery)
		}(i)
	}

	coord := r.nodes[CoordinatorNode(k)]
	stats := Stats{
		PerPlayer: make([]PlayerStats, k),
		PerLink:   make([]LinkStats, len(links)),
		Transport: transport.Name(),
		Topology:  topo.Name(),
	}
	finish := func(crashed []int) *Result {
		closeAll()
		wg.Wait()
		for l := range links {
			ls := &stats.PerLink[l]
			ls.Link = links[l]
			ls.WireBits = epA[l].stats.wireBits.Load() + epB[l].stats.wireBits.Load()
			ls.Retries = epA[l].stats.retries.Load() + epB[l].stats.retries.Load()
			ls.BadFrames = epA[l].stats.badFrames.Load() + epB[l].stats.badFrames.Load()
			ls.DupFrames = epA[l].stats.dupDropped.Load() + epB[l].stats.dupDropped.Load()
			if injAB[l] != nil {
				ls.Faults.Add(injAB[l].Counts())
				ls.Faults.Add(injBA[l].Counts())
			}
			stats.WireBits += ls.WireBits
			stats.Faults.Add(ls.Faults)
		}
		stats.BoardBits = st.Board().TotalBits()
		return &Result{Board: st.Board(), Stats: stats, Crashed: crashed}
	}
	crash := func(player int, cause error) (*Result, error) {
		telemetry.Count(cfg.Recorder, telemetry.NetrunCrashes, 1)
		if cfg.Causal.Enabled() {
			cfg.Causal.Fail(causal.NetrunCrash,
				causal.Int("player", player), causal.String("error", cause.Error()))
		}
		res := finish([]int{player})
		return res, &CrashError{Player: player, Cause: cause}
	}
	abort := func(err error) (*Result, error) {
		closeAll()
		wg.Wait()
		return nil, err
	}

	for {
		runMu.Lock()
		speaker, done, err := st.Next()
		runMu.Unlock()
		if err != nil {
			return abort(err)
		}
		if done {
			return finish(nil), nil
		}

		turnStart := time.Now()
		if err := r.sendFrom(coord, speaker, frameTurn, encodeTurnPayload(st.Board().NumMessages())); err != nil {
			return crash(speaker, err)
		}
		rf, err := r.recvAt(coord, r.recvDeadline)
		if err != nil {
			return crash(speaker, err)
		}
		switch {
		case rf.kind == frameErr:
			return abort(fmt.Errorf("netrun: player %d: %s", rf.src, rf.payload))
		case rf.kind != frameMsg:
			return abort(fmt.Errorf("netrun: player %d sent unexpected frame kind %d", rf.src, rf.kind))
		case rf.src != speaker:
			return abort(fmt.Errorf("netrun: expected message from player %d, got one from %d", speaker, rf.src))
		}
		msg, err := decodeMessagePayload(rf.payload)
		if err != nil {
			return abort(err)
		}

		runMu.Lock()
		err = st.Deliver(msg)
		runMu.Unlock()
		if err != nil {
			return abort(err)
		}

		// Propagate the delivered message. On gossip topologies the
		// speaker already distributed it; in coordinator mode nobody does.
		if cfg.Delivery == DeliverBroadcast && !topo.Gossip() {
			syncPayload := encodeIndexedSync(st.Board().NumMessages()-1, msg)
			for i := 0; i < k; i++ {
				if err := r.sendFrom(coord, i, frameSync, syncPayload); err != nil {
					return crash(i, err)
				}
			}
		}

		ps := &stats.PerPlayer[speaker]
		ps.Turns++
		latency := time.Since(turnStart)
		ps.Latency += latency
		if cfg.Recorder != nil {
			cfg.Recorder.Count(telemetry.NetrunTurns, 1)
			cfg.Recorder.Observe(telemetry.NetrunTurnNs, float64(latency))
		}
	}
}

// playerLoop runs one player node on the topology path: apply syncs,
// speak on turns (draining late gossip first), gossip its own message on
// gossip topologies, and die silently on a scheduled crash turn. Closing
// the node's endpoints on exit severs its links, which on the star
// topology is how the coordinator notices a crash.
func (r *topoRun) playerLoop(i int, player blackboard.Player, replica *replicaBoard, runMu *sync.Mutex, crashTurn int, mode DeliveryMode) {
	n := r.nodes[i]
	defer func() {
		for _, nl := range n.links {
			nl.ep.close()
		}
	}()
	const idleDeadline = time.Hour // teardown closes the run; this is a backstop
	coordID := CoordinatorNode(r.k)
	turns := 0
	fail := func(err error) {
		r.sendFrom(n, coordID, frameErr, []byte(err.Error()))
	}
	applySync := func(payload []byte) error {
		idx, msg, err := decodeIndexedSync(payload)
		if err != nil {
			return err
		}
		return replica.apply(idx, msg)
	}
	for {
		rf, err := r.recvAt(n, idleDeadline)
		if err != nil {
			return
		}
		switch rf.kind {
		case frameSync:
			if err := applySync(rf.payload); err != nil {
				fail(err)
				return
			}
		case frameTurn:
			if crashTurn >= 0 && turns >= crashTurn {
				// Scheduled crash: vanish without a word. The coordinator
				// notices via the dead link or the recv deadline.
				return
			}
			turns++
			want, err := decodeTurnPayload(rf.payload)
			if err != nil {
				fail(err)
				return
			}
			if mode == DeliverBroadcast {
				// Drain syncs still in flight (gossip races the next turn)
				// until the replica reaches the announced board state.
				for replica.board.NumMessages() < want {
					rf2, err := r.recvAt(n, r.recvDeadline)
					if err != nil {
						fail(err)
						return
					}
					if rf2.kind != frameSync {
						fail(fmt.Errorf("netrun: unexpected frame kind %d while syncing replica", rf2.kind))
						return
					}
					if err := applySync(rf2.payload); err != nil {
						fail(err)
						return
					}
				}
				if replica.board.NumMessages() != want {
					fail(fmt.Errorf("netrun: replica out of sync: %d messages, coordinator has %d", replica.board.NumMessages(), want))
					return
				}
			}
			runMu.Lock()
			msg, err := player.Speak(replica.board)
			runMu.Unlock()
			if err != nil {
				fail(err)
				return
			}
			encoded := encodeMessagePayload(msg)
			if mode == DeliverBroadcast && r.topo.Gossip() {
				// Speaker-distributed sync: send the message to every peer
				// directly, then append the canonical (round-tripped) copy
				// to our own replica.
				idx := replica.board.NumMessages()
				syncPayload := encodeIndexedSync(idx, msg)
				for j := 0; j < r.k; j++ {
					if j == i {
						continue
					}
					if err := r.sendFrom(n, j, frameSync, syncPayload); err != nil {
						return
					}
				}
				canonical, err := decodeMessagePayload(encoded)
				if err != nil {
					fail(err)
					return
				}
				if err := replica.apply(idx, canonical); err != nil {
					fail(err)
					return
				}
			}
			if err := r.sendFrom(n, coordID, frameMsg, encoded); err != nil {
				return
			}
		default:
			fail(fmt.Errorf("netrun: unexpected frame kind %d", rf.kind))
			return
		}
	}
}
