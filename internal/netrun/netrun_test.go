package netrun_test

import (
	"errors"
	"testing"
	"time"

	"broadcastic/internal/andk"
	"broadcastic/internal/blackboard"
	"broadcastic/internal/compress"
	"broadcastic/internal/disj"
	"broadcastic/internal/faults"
	"broadcastic/internal/netrun"
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
)

// boardProtocol is the shape every protocol adapter in this repository
// exposes; conformance tests run fresh instances of one through both
// runtimes and compare transcripts bit for bit.
type boardProtocol interface {
	Scheduler() blackboard.Scheduler
	Players() []blackboard.Player
	Limits() blackboard.Limits
}

// seqFingerprint runs the protocol on the sequential runtime.
func seqFingerprint(t *testing.T, p boardProtocol, public *rng.Source) *blackboard.Board {
	t.Helper()
	res, err := blackboard.Run(p.Scheduler(), p.Players(), public, p.Limits())
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	return res.Board
}

// netFingerprint runs the protocol on the networked runtime.
func netFingerprint(t *testing.T, p boardProtocol, public *rng.Source, cfg netrun.Config) *netrun.Result {
	t.Helper()
	cfg.Limits = p.Limits()
	res, err := netrun.Run(p.Scheduler(), p.Players(), public, cfg)
	if err != nil {
		t.Fatalf("networked run (%s): %v", cfg.Transport.Name(), err)
	}
	return res
}

func requireSameBoard(t *testing.T, want, got *blackboard.Board) {
	t.Helper()
	if want.TranscriptKey() != got.TranscriptKey() {
		t.Fatalf("transcripts differ:\nsequential %s\nnetworked  %s", want.TranscriptKey(), got.TranscriptKey())
	}
	if want.TotalBits() != got.TotalBits() || want.NumMessages() != got.NumMessages() {
		t.Fatalf("accounting differs: %d bits/%d msgs vs %d bits/%d msgs",
			want.TotalBits(), want.NumMessages(), got.TotalBits(), got.NumMessages())
	}
}

func transports(t *testing.T) []netrun.Transport {
	ts := []netrun.Transport{netrun.NewChanTransport(), netrun.NewPipeTransport()}
	c, p, err := netrun.NewTCPTransport().Open(1)
	if err != nil {
		t.Logf("skipping tcp transport: %v", err)
		return ts
	}
	c[0].Close()
	p[0].Close()
	return append(ts, netrun.NewTCPTransport())
}

var quickCfg = netrun.Config{Timeout: 100 * time.Millisecond, MaxRetries: 6}

// With faults disabled, the networked runtime must reproduce the
// sequential transcript bit for bit for the optimal DISJ protocol, on
// every transport, for both answers.
func TestConformanceDisjOptimal(t *testing.T) {
	cases := []struct {
		name string
		inst func() *disj.Instance
	}{
		{"disjoint", func() *disj.Instance {
			inst, err := disj.GenerateDisjoint(rng.New(101), 96, 4, 0.35)
			if err != nil {
				t.Fatal(err)
			}
			return inst
		}},
		{"intersecting", func() *disj.Instance {
			inst, err := disj.GenerateIntersecting(rng.New(202), 96, 4, 1, 0.35)
			if err != nil {
				t.Fatal(err)
			}
			return inst
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst := tc.inst()
			refProto, err := disj.NewOptimalProtocol(inst, disj.Options{})
			if err != nil {
				t.Fatal(err)
			}
			refBoard := seqFingerprint(t, refProto, nil)
			refOut, err := refProto.Outcome(refBoard)
			if err != nil {
				t.Fatal(err)
			}
			truth, err := inst.Disjoint()
			if err != nil {
				t.Fatal(err)
			}
			if refOut.Disjoint != truth {
				t.Fatalf("sequential answer %v, truth %v", refOut.Disjoint, truth)
			}
			for _, tr := range transports(t) {
				t.Run(tr.Name(), func(t *testing.T) {
					proto, err := disj.NewOptimalProtocol(inst, disj.Options{})
					if err != nil {
						t.Fatal(err)
					}
					cfg := quickCfg
					cfg.Transport = tr
					res := netFingerprint(t, proto, nil, cfg)
					requireSameBoard(t, refBoard, res.Board)
					out, err := proto.Outcome(res.Board)
					if err != nil {
						t.Fatal(err)
					}
					if out.Disjoint != refOut.Disjoint || out.Bits != refOut.Bits {
						t.Fatalf("outcome %+v, want %+v", out, refOut)
					}
					if res.Stats.BoardBits != refBoard.TotalBits() {
						t.Fatalf("BoardBits %d, want %d", res.Stats.BoardBits, refBoard.TotalBits())
					}
					if res.Stats.WireBits <= int64(res.Stats.BoardBits) {
						t.Fatalf("WireBits %d not above BoardBits %d", res.Stats.WireBits, res.Stats.BoardBits)
					}
				})
			}
		})
	}
}

func TestConformanceAndK(t *testing.T) {
	spec, err := andk.NewSequential(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		x    []int
		want int
	}{
		{"all-ones", []int{1, 1, 1, 1, 1}, 1},
		{"with-zero", []int{1, 1, 0, 1, 1}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			refProto, err := spec.BoardProtocol(tc.x)
			if err != nil {
				t.Fatal(err)
			}
			refBoard := seqFingerprint(t, refProto, nil)
			for _, tr := range transports(t) {
				t.Run(tr.Name(), func(t *testing.T) {
					proto, err := spec.BoardProtocol(tc.x)
					if err != nil {
						t.Fatal(err)
					}
					cfg := quickCfg
					cfg.Transport = tr
					res := netFingerprint(t, proto, nil, cfg)
					requireSameBoard(t, refBoard, res.Board)
					out, err := proto.Output()
					if err != nil {
						t.Fatal(err)
					}
					if out != tc.want {
						t.Fatalf("output %d, want %d", out, tc.want)
					}
				})
			}
		})
	}
}

// The Lemma 7 sampler consumes public randomness; identical seeds must
// yield identical transmissions and transcripts on both runtimes.
func TestConformanceSampler(t *testing.T) {
	eta, err := prob.NewDist([]float64{0.5, 0.25, 0.125, 0.0625, 0.0625, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	nu, err := prob.Uniform(8)
	if err != nil {
		t.Fatal(err)
	}
	const publicSeed = 7
	refProto := compress.NewSamplerProtocol(eta, nu)
	refBoard := seqFingerprint(t, refProto, rng.New(publicSeed))
	refRes := refProto.Result()
	if refRes == nil {
		t.Fatal("sequential run left no transmission result")
	}
	if refBoard.NumMessages() != 2 {
		t.Fatalf("sampler board has %d messages", refBoard.NumMessages())
	}
	for _, tr := range transports(t) {
		t.Run(tr.Name(), func(t *testing.T) {
			proto := compress.NewSamplerProtocol(eta, nu)
			cfg := quickCfg
			cfg.Transport = tr
			res := netFingerprint(t, proto, rng.New(publicSeed), cfg)
			requireSameBoard(t, refBoard, res.Board)
			got := proto.Result()
			if got == nil || got.Value != refRes.Value || got.Bits != refRes.Bits {
				t.Fatalf("transmission %+v, want %+v", got, refRes)
			}
		})
	}
}

// Under every recoverable fault mix the protocol answer must stay correct
// and the board transcript identical to the fault-free run: the delivery
// layer repairs everything below the protocol.
func TestFaultSweepDisjOptimal(t *testing.T) {
	inst, err := disj.GenerateIntersecting(rng.New(303), 64, 4, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	refProto, err := disj.NewOptimalProtocol(inst, disj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refBoard := seqFingerprint(t, refProto, nil)

	mixes := []string{
		"drop=0.1",
		"dup=0.15",
		"corrupt=0.1",
		"delay=0.3:2ms",
		"drop=0.06,dup=0.06,corrupt=0.04,delay=0.2:1ms",
	}
	for _, mix := range mixes {
		t.Run(mix, func(t *testing.T) {
			plan, err := faults.Parse(mix)
			if err != nil {
				t.Fatal(err)
			}
			proto, err := disj.NewOptimalProtocol(inst, disj.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cfg := netrun.Config{
				Faults:     plan,
				Seed:       11,
				Timeout:    40 * time.Millisecond,
				MaxRetries: 10,
			}
			res := netFingerprint(t, proto, nil, cfg)
			requireSameBoard(t, refBoard, res.Board)
			out, err := proto.Outcome(res.Board)
			if err != nil {
				t.Fatal(err)
			}
			if out.Disjoint {
				t.Fatal("answer flipped under faults")
			}
			if res.Stats.Faults.Total() == 0 {
				t.Fatalf("fault mix %q injected nothing", mix)
			}
		})
	}
}

// Identical seeds must reproduce the whole run: transcript, wire bits,
// retries and fault tallies.
func TestFaultReproducibility(t *testing.T) {
	inst, err := disj.GenerateDisjoint(rng.New(404), 64, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.Parse("drop=0.08,dup=0.08,corrupt=0.05")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *netrun.Result {
		proto, err := disj.NewOptimalProtocol(inst, disj.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := netrun.Config{
			Faults:     plan,
			Seed:       99,
			Timeout:    40 * time.Millisecond,
			MaxRetries: 10,
		}
		return netFingerprint(t, proto, nil, cfg)
	}
	a, b := run(), run()
	if a.Board.TranscriptKey() != b.Board.TranscriptKey() {
		t.Fatal("transcripts differ across same-seed runs")
	}
	if a.Stats.WireBits != b.Stats.WireBits {
		t.Fatalf("wire bits differ: %d vs %d", a.Stats.WireBits, b.Stats.WireBits)
	}
	if a.Stats.Faults != b.Stats.Faults {
		t.Fatalf("fault tallies differ: %v vs %v", a.Stats.Faults, b.Stats.Faults)
	}
	for i := range a.Stats.PerPlayer {
		if a.Stats.PerPlayer[i].Retries != b.Stats.PerPlayer[i].Retries {
			t.Fatalf("player %d retries differ: %d vs %d", i, a.Stats.PerPlayer[i].Retries, b.Stats.PerPlayer[i].Retries)
		}
	}
	// A different seed draws a different fault sequence (while the board
	// transcript, being repaired below the protocol, stays identical).
	proto, err := disj.NewOptimalProtocol(inst, disj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := netFingerprint(t, proto, nil, netrun.Config{
		Faults: plan, Seed: 100, Timeout: 40 * time.Millisecond, MaxRetries: 10,
	})
	if c.Board.TranscriptKey() != a.Board.TranscriptKey() {
		t.Fatal("board transcript depends on the fault seed")
	}
	if c.Stats.Faults == a.Stats.Faults && c.Stats.WireBits == a.Stats.WireBits {
		t.Fatal("different seeds produced identical fault statistics")
	}
}

// recordedFaults sums the per-link per-kind fault counters of a run with k
// links into a faults.Counts for comparison against Stats.
func recordedFaults(rec *telemetry.Collector, k int) faults.Counts {
	var c faults.Counts
	for i := 0; i < k; i++ {
		c.Drops += int(rec.Counter(telemetry.Indexed(telemetry.NetrunLink, i, "faults.drop")))
		c.Duplicates += int(rec.Counter(telemetry.Indexed(telemetry.NetrunLink, i, "faults.dup")))
		c.Corruptions += int(rec.Counter(telemetry.Indexed(telemetry.NetrunLink, i, "faults.corrupt")))
		c.Delays += int(rec.Counter(telemetry.Indexed(telemetry.NetrunLink, i, "faults.delay")))
	}
	return c
}

// assertRecorderMatchesStats pins the satellite fix of this PR: the
// Recorder is driven from the same statements that update the wire-level
// atomics, so its counters must equal the returned Stats exactly — on the
// happy path and on every repair path (known-drop retransmit, NACK
// retransmit, duplicate discard).
func assertRecorderMatchesStats(t *testing.T, rec *telemetry.Collector, res *netrun.Result, k int) {
	t.Helper()
	var retries, badFrames, dupFrames int64
	for _, ps := range res.Stats.PerPlayer {
		retries += ps.Retries
		badFrames += ps.BadFrames
		dupFrames += ps.DupFrames
	}
	if got := rec.Counter(telemetry.NetrunRetries); got != retries {
		t.Errorf("recorded retries %d, stats %d", got, retries)
	}
	if got := rec.Counter(telemetry.NetrunBadFrames); got != badFrames {
		t.Errorf("recorded bad frames %d, stats %d", got, badFrames)
	}
	if got := rec.Counter(telemetry.NetrunDupFrames); got != dupFrames {
		t.Errorf("recorded dup frames %d, stats %d", got, dupFrames)
	}
	if got := rec.Counter(telemetry.NetrunWireBits); got != res.Stats.WireBits {
		t.Errorf("recorded wire bits %d, stats %d", got, res.Stats.WireBits)
	}
	if got := recordedFaults(rec, k); got != res.Stats.Faults {
		t.Errorf("recorded faults %+v, stats %+v", got, res.Stats.Faults)
	}
	if got := rec.Counter(telemetry.NetrunFaults); int(got) !=
		res.Stats.Faults.Drops+res.Stats.Faults.Duplicates+res.Stats.Faults.Corruptions+res.Stats.Faults.Delays {
		t.Errorf("recorded fault total %d, stats %+v", got, res.Stats.Faults)
	}
	// The board-level accounting flows through the same Stepper the
	// sequential runtime uses.
	if got := rec.Counter(telemetry.BlackboardBits); got != int64(res.Stats.BoardBits) {
		t.Errorf("recorded board bits %d, stats %d", got, res.Stats.BoardBits)
	}
	if got := rec.Counter(telemetry.BlackboardMessages); got != int64(res.Board.NumMessages()) {
		t.Errorf("recorded messages %d, board has %d", got, res.Board.NumMessages())
	}
	var perPlayer int64
	for i := 0; i < k; i++ {
		perPlayer += rec.Counter(telemetry.Indexed(telemetry.BlackboardPlayer, i, "bits"))
	}
	if perPlayer != int64(res.Stats.BoardBits) {
		t.Errorf("per-player bits sum to %d, want %d", perPlayer, res.Stats.BoardBits)
	}
}

func TestRecorderObservesRun(t *testing.T) {
	inst, err := disj.GenerateDisjoint(rng.New(505), 48, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := disj.NewOptimalProtocol(inst, disj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.Parse("drop=0.05,dup=0.05")
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewCollector()
	cfg := netrun.Config{
		Faults: plan, Seed: 5, Timeout: 40 * time.Millisecond, MaxRetries: 10,
		Recorder: rec, Limits: proto.Limits(),
	}
	res, err := netrun.Run(proto.Scheduler(), proto.Players(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter(telemetry.NetrunTurns); got != int64(res.Board.NumMessages()) {
		t.Fatalf("recorded %d turns for %d messages", got, res.Board.NumMessages())
	}
	if got := rec.Hist(telemetry.NetrunTurnNs).Count; got != int64(res.Board.NumMessages()) {
		t.Fatalf("turn latency histogram has %d samples for %d messages", got, res.Board.NumMessages())
	}
	if got := rec.Counter(telemetry.NetrunCrashes); got != 0 {
		t.Fatalf("spurious crash count %d", got)
	}
	assertRecorderMatchesStats(t, rec, res, 3)
}

// TestRecorderMatchesStatsOnRepairPaths is the regression test for the
// PR 2 hook inconsistency: corruption exercises the NACK path and drops
// the known-loss immediate-retransmit path, both of which the old Hooks
// missed. Retransmission counters must match the wire log exactly.
func TestRecorderMatchesStatsOnRepairPaths(t *testing.T) {
	inst, err := disj.GenerateDisjoint(rng.New(506), 64, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := disj.NewOptimalProtocol(inst, disj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.Parse("drop=0.1,corrupt=0.1")
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewCollector()
	res, err := netrun.Run(proto.Scheduler(), proto.Players(), nil, netrun.Config{
		Faults: plan, Seed: 9, Timeout: 40 * time.Millisecond, MaxRetries: 12,
		Recorder: rec, Limits: proto.Limits(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var retries int64
	for _, ps := range res.Stats.PerPlayer {
		retries += ps.Retries
	}
	if retries == 0 {
		t.Fatal("fault mix produced no retransmissions; test is vacuous")
	}
	assertRecorderMatchesStats(t, rec, res, 4)

	// Recording must not perturb the execution: the repaired networked
	// transcript stays bit-identical to the sequential reference.
	ref, err := disj.NewOptimalProtocol(inst, disj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameBoard(t, seqFingerprint(t, ref, nil), res.Board)
}

// A crashed player must surface as a typed error with the partial
// transcript preserved.
func TestPlayerCrash(t *testing.T) {
	const k = 3
	// A trivial round-robin protocol: every player writes one "1" bit,
	// three full rounds.
	newProto := func() (blackboard.Scheduler, []blackboard.Player) {
		sched := &blackboard.RoundRobin{K: k, Stop: func(b *blackboard.Board) (bool, error) {
			return b.NumMessages() >= 3*k, nil
		}}
		players := make([]blackboard.Player, k)
		for i := range players {
			i := i
			players[i] = blackboard.FuncPlayer(func(b *blackboard.Board) (blackboard.Message, error) {
				return blackboard.Message{Player: i, Bits: []byte{0x80}, Len: 1}, nil
			})
		}
		return sched, players
	}

	sched, players := newProto()
	rec := telemetry.NewCollector()
	cfg := netrun.Config{
		Faults:  faults.Plan{CrashTurns: map[int]int{1: 1}},
		Timeout: 30 * time.Millisecond, MaxRetries: 2,
		Recorder: rec,
	}
	res, err := netrun.Run(sched, players, nil, cfg)
	if !errors.Is(err, netrun.ErrPlayerCrashed) {
		t.Fatalf("err = %v, want ErrPlayerCrashed", err)
	}
	var ce *netrun.CrashError
	if !errors.As(err, &ce) || ce.Player != 1 {
		t.Fatalf("crash error = %+v", err)
	}
	if res == nil {
		t.Fatal("crash returned no partial result")
	}
	if len(res.Crashed) != 1 || res.Crashed[0] != 1 {
		t.Fatalf("Crashed = %v, want [1]", res.Crashed)
	}
	// Player 1 crashes on its second turn: messages 0..3 land (p0 p1 p2 p0),
	// the fifth (p1 again) never arrives.
	if res.Board.NumMessages() != 4 {
		t.Fatalf("partial board has %d messages, want 4", res.Board.NumMessages())
	}
	if got := rec.Counter(telemetry.NetrunCrashes); got != 1 {
		t.Fatalf("recorded crash count %d, want 1", got)
	}

	// Without the crash the same protocol completes.
	sched, players = newProto()
	res, err = netrun.Run(sched, players, nil, netrun.Config{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Board.NumMessages() != 3*k {
		t.Fatalf("clean run has %d messages, want %d", res.Board.NumMessages(), 3*k)
	}
}

func TestRunValidation(t *testing.T) {
	sched := &blackboard.RoundRobin{K: 1, Stop: func(b *blackboard.Board) (bool, error) { return true, nil }}
	player := blackboard.FuncPlayer(func(b *blackboard.Board) (blackboard.Message, error) {
		return blackboard.Message{Player: 0}, nil
	})
	if _, err := netrun.Run(sched, nil, nil, netrun.Config{}); err == nil {
		t.Fatal("no players accepted")
	}
	if _, err := netrun.Run(sched, []blackboard.Player{nil}, nil, netrun.Config{}); err == nil {
		t.Fatal("nil player accepted")
	}
	if _, err := netrun.Run(sched, []blackboard.Player{player}, nil, netrun.Config{
		Faults: faults.Plan{Drop: 2},
	}); err == nil {
		t.Fatal("invalid fault plan accepted")
	}
	if _, err := netrun.Run(sched, []blackboard.Player{player}, nil, netrun.Config{
		Faults: faults.Plan{CrashTurns: map[int]int{5: 0}},
	}); err == nil {
		t.Fatal("crash for out-of-range player accepted")
	}
	// The zero config must work end to end.
	if _, err := netrun.Run(sched, []blackboard.Player{player}, nil, netrun.Config{}); err != nil {
		t.Fatalf("zero config: %v", err)
	}
}
