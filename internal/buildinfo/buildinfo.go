// Package buildinfo resolves the identity of the running binary — module
// path, version, Go toolchain, VCS revision — from the data the Go linker
// embeds (runtime/debug.ReadBuildInfo). Every CLI exposes it behind a
// -version flag, and benchjson embeds it in emitted files so a benchmark
// point can always be traced back to the exact build that produced it.
package buildinfo

import (
	"flag"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// Info is the resolved build identity. Fields are empty when the binary
// carries no corresponding metadata (e.g. test binaries or go run builds
// outside a VCS checkout).
type Info struct {
	// Path is the main module path ("broadcastic").
	Path string `json:"path,omitempty"`
	// Version is the main module version ("(devel)" for workspace builds).
	Version string `json:"version,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version,omitempty"`
	// Revision and Time identify the VCS commit, when stamped.
	Revision string `json:"revision,omitempty"`
	Time     string `json:"time,omitempty"`
	// Modified is true when the working tree was dirty at build time.
	Modified bool `json:"modified,omitempty"`
}

// Resolve reads the running binary's build information. It never fails:
// with no embedded data (some test binaries), only GoVersion is set.
func Resolve() Info {
	info := Info{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Path = bi.Main.Path
	info.Version = bi.Main.Version
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the one-line form the -version flags print, e.g.
//
//	broadcastic (devel) go1.22.0 rev 0d01442… (modified)
func (i Info) String() string {
	var b strings.Builder
	path := i.Path
	if path == "" {
		path = "(unknown module)"
	}
	b.WriteString(path)
	if i.Version != "" {
		fmt.Fprintf(&b, " %s", i.Version)
	}
	fmt.Fprintf(&b, " %s", i.GoVersion)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " rev %s", rev)
		if i.Time != "" {
			fmt.Fprintf(&b, " (%s)", i.Time)
		}
	}
	if i.Modified {
		b.WriteString(" (modified)")
	}
	return b.String()
}

// Flag registers the conventional -version flag on fs and returns the
// destination; CLIs test it right after parsing and print Resolve() when
// set.
func Flag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print build/version information and exit")
}
