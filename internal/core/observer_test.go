package core_test

import (
	"math"
	"testing"

	"broadcastic/internal/andk"
	"broadcastic/internal/core"
	"broadcastic/internal/dist"
	"broadcastic/internal/rng"
)

func TestEstimateExternalICMatchesExact(t *testing.T) {
	// The chain-rule estimator must agree with the exact joint computation
	// within a few standard errors, on both deterministic and randomized
	// protocols.
	cases := []struct {
		name string
		spec func(k int) (core.Spec, error)
	}{
		{"sequential", func(k int) (core.Spec, error) { return andk.NewSequential(k) }},
		{"lazy", func(k int) (core.Spec, error) { return andk.NewLazy(k, 0.3, 0) }},
		{"broadcastAll", func(k int) (core.Spec, error) { return andk.NewBroadcastAll(k) }},
	}
	const k = 5
	mu, err := dist.NewMu(k)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := tc.spec(k)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := core.ExactCosts(spec, mu, core.TreeLimits{})
			if err != nil {
				t.Fatal(err)
			}
			est, err := core.EstimateExternalIC(spec, mu, rng.New(31), 15000)
			if err != nil {
				t.Fatal(err)
			}
			if diff := math.Abs(est.Mean - exact.ExternalIC); diff > 5*est.StdErr+1e-6 {
				t.Fatalf("estimate %v ± %v vs exact IC %v", est.Mean, est.StdErr, exact.ExternalIC)
			}
		})
	}
}

func TestEstimateExternalICValidation(t *testing.T) {
	spec, _ := andk.NewSequential(3)
	mu, _ := dist.NewMu(3)
	if _, err := core.EstimateExternalIC(spec, mu, nil, 10); err == nil {
		t.Fatal("nil source succeeded")
	}
	if _, err := core.EstimateExternalIC(spec, mu, rng.New(1), 0); err == nil {
		t.Fatal("zero samples succeeded")
	}
	mu4, _ := dist.NewMu(4)
	if _, err := core.EstimateExternalIC(spec, mu4, rng.New(1), 10); err == nil {
		t.Fatal("shape mismatch succeeded")
	}
}

func TestEstimateExternalICLargeK(t *testing.T) {
	// Must run at player counts beyond enumeration and respect the entropy
	// bound H(Π) <= log2(k+1).
	const k = 64
	spec, _ := andk.NewSequential(k)
	mu, _ := dist.NewMu(k)
	est, err := core.EstimateExternalIC(spec, mu, rng.New(32), 300)
	if err != nil {
		t.Fatal(err)
	}
	bound := math.Log2(float64(k + 1))
	if est.Mean <= 0 || est.Mean > bound+0.5 {
		t.Fatalf("IC estimate %v outside (0, %v]", est.Mean, bound)
	}
}

func TestExternalICDominatesCIC(t *testing.T) {
	// Under μ, I(Π;X) >= I(Π;X|Z) for the sequential protocol (observed
	// empirically at every k we enumerate; conditioning on Z here removes
	// the information the transcript carries about the special player).
	for _, k := range []int{3, 5, 8} {
		spec, _ := andk.NewSequential(k)
		mu, _ := dist.NewMu(k)
		r, err := core.ExactCosts(spec, mu, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		if r.ExternalIC < r.CIC-1e-9 {
			t.Fatalf("k=%d: external IC %v below CIC %v", k, r.ExternalIC, r.CIC)
		}
	}
}

func TestObserverPosteriorConsistentWithLeafQ(t *testing.T) {
	// After a full deterministic run, the observer's per-player posterior
	// must match the normalized prior×q-factors marginalized over z.
	const k = 4
	spec, _ := andk.NewSequential(k)
	mu, _ := dist.NewMu(k)
	obs, err := core.NewObserver(mu)
	if err != nil {
		t.Fatal(err)
	}
	x := []int{1, 1, 0, 1}
	var tr core.Transcript
	for {
		speaker, done, err := spec.NextSpeaker(tr)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		d, err := spec.MessageDist(tr, speaker, x[speaker])
		if err != nil {
			t.Fatal(err)
		}
		sym := d.Sample(rng.New(1))
		if err := obs.Update(spec, tr, speaker, sym); err != nil {
			t.Fatal(err)
		}
		tr = append(tr, sym)
	}
	// Players 0, 1 announced ones; player 2 announced zero; player 3 silent.
	p0, err := obs.PlayerPosterior(0)
	if err != nil {
		t.Fatal(err)
	}
	if p0.P(1) != 1 {
		t.Fatalf("player 0 posterior %v, want point mass on 1", p0.Probs())
	}
	p2, err := obs.PlayerPosterior(2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.P(0) != 1 {
		t.Fatalf("player 2 posterior %v, want point mass on 0", p2.Probs())
	}
	// Player 3 never spoke: posterior equals its conditional prior given the
	// board, which must still have mass on both values.
	p3, err := obs.PlayerPosterior(3)
	if err != nil {
		t.Fatal(err)
	}
	if p3.P(0) <= 0 || p3.P(1) <= 0 {
		t.Fatalf("silent player posterior degenerate: %v", p3.Probs())
	}
}
