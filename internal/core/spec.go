// Package core makes the paper's information-complexity machinery
// executable. It defines a declarative protocol representation (Spec) whose
// per-player message distributions can be queried counterfactually, and on
// top of it implements:
//
//   - exact transcript-tree enumeration with the Lemma 3 product
//     decomposition Pr[Π=ℓ | X=x] = Π_i q_{i,x_i}^ℓ maintained at every leaf;
//   - exact external and conditional information cost (Definitions 5–6),
//     both through the factored posterior formula and through brute-force
//     joint tables (used to cross-check the factored computation);
//   - an unbiased Monte-Carlo estimator of conditional information cost for
//     protocols too large to enumerate;
//   - the posterior-pointing analysis of Section 4.1: α_i^ℓ coefficients
//     (Lemma 4), the transcript sets L, B_0, B_1, L' and their π_2 masses
//     (Lemma 5).
//
// The product decomposition is exact for any protocol in the model: at each
// step the speaker's message depends only on its own input, its private
// randomness and the public board, so the transcript likelihood factorizes
// across players (Lemma 3). Because the priors we use are products
// conditioned on the auxiliary variable, posteriors stay products, giving
//
//	I(Π; X | Z) = E_{z,ℓ} Σ_i D( μ(X_i | Π=ℓ, Z=z) ‖ μ(X_i | Z=z) ),
//
// the equality case of the paper's Lemma 2.
package core

import (
	"fmt"

	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

// Transcript is a sequence of message symbols. Symbol alphabets may vary by
// position; Spec.MessageAlphabet defines the alphabet at each point.
type Transcript []int

// Clone returns an independent copy.
func (t Transcript) Clone() Transcript {
	out := make(Transcript, len(t))
	copy(out, t)
	return out
}

// String renders the transcript compactly, e.g. "1.1.0".
func (t Transcript) String() string {
	if len(t) == 0 {
		return "ε"
	}
	var b []byte
	for i, v := range t {
		if i > 0 {
			b = append(b, '.')
		}
		b = appendInt(b, v)
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// Spec is a protocol in the broadcast model, in the declarative form used
// for information-cost analysis. All methods must be pure functions of
// their arguments: the engine calls MessageDist counterfactually with input
// values the "real" player does not hold.
type Spec interface {
	// NumPlayers returns k.
	NumPlayers() int

	// InputSize returns the per-player input domain size; player inputs
	// are integers in [0, InputSize()).
	InputSize() int

	// NextSpeaker returns who speaks next given the transcript so far, or
	// done=true when the protocol has halted.
	NextSpeaker(t Transcript) (player int, done bool, err error)

	// MessageAlphabet returns the alphabet size of the next message given
	// the transcript (the speaker is NextSpeaker(t)).
	MessageAlphabet(t Transcript) (int, error)

	// MessageDist returns the speaker's distribution over the next message
	// symbol when holding the given input value, after transcript t. The
	// distribution's support size must equal MessageAlphabet(t).
	MessageDist(t Transcript, player, input int) (prob.Dist, error)

	// MessageBits returns the number of bits charged on the blackboard for
	// emitting the given symbol after transcript t.
	MessageBits(t Transcript, symbol int) (int, error)

	// Output returns the protocol's output for a finished transcript.
	Output(t Transcript) (int, error)
}

// Prior is an input distribution with an auxiliary variable D such that the
// players' inputs are independent conditioned on D (the structure required
// by Lemma 1 and Definition 6). dist.Mu, dist.MuN and dist.ProductPrior
// satisfy it structurally.
type Prior interface {
	NumPlayers() int
	InputSize() int
	AuxSize() int
	AuxProb(z int) float64
	PlayerDist(z, player int) (prob.Dist, error)
}

// validateShapes returns an error unless spec and prior agree on player
// count and input domain.
func validateShapes(spec Spec, prior Prior) error {
	if spec.NumPlayers() != prior.NumPlayers() {
		return fmt.Errorf("core: spec has %d players, prior has %d", spec.NumPlayers(), prior.NumPlayers())
	}
	if spec.InputSize() != prior.InputSize() {
		return fmt.Errorf("core: spec input size %d, prior input size %d", spec.InputSize(), prior.InputSize())
	}
	if spec.NumPlayers() < 1 {
		return fmt.Errorf("core: non-positive player count %d", spec.NumPlayers())
	}
	if spec.InputSize() < 1 {
		return fmt.Errorf("core: non-positive input size %d", spec.InputSize())
	}
	return nil
}

// auxDist materializes the auxiliary variable's distribution.
func auxDist(prior Prior) (prob.Dist, error) {
	w := make([]float64, prior.AuxSize())
	for z := range w {
		w[z] = prior.AuxProb(z)
	}
	return prob.Normalize(w)
}

// PriorSampler draws (z, x) pairs from a Prior. It materializes the
// auxiliary distribution once at construction, so repeated sampling (the
// amortized-compression and external-IC loops) performs no per-call setup;
// with a caller-owned x buffer each draw is allocation-free.
type PriorSampler struct {
	prior Prior
	zd    prob.Dist
}

// NewPriorSampler validates prior and prepares a sampler for it.
func NewPriorSampler(prior Prior) (*PriorSampler, error) {
	zd, err := auxDist(prior)
	if err != nil {
		return nil, err
	}
	return &PriorSampler{prior: prior, zd: zd}, nil
}

// Sample draws the auxiliary value and one input per player into x, which
// must have length NumPlayers. The draw sequence is identical to
// SamplePrior's.
func (ps *PriorSampler) Sample(src *rng.Source, x []int) (int, error) {
	if src == nil {
		return 0, fmt.Errorf("core: nil randomness source")
	}
	if len(x) != ps.prior.NumPlayers() {
		return 0, fmt.Errorf("core: input buffer has %d entries, want %d", len(x), ps.prior.NumPlayers())
	}
	z := ps.zd.Sample(src)
	for i := range x {
		d, err := ps.prior.PlayerDist(z, i)
		if err != nil {
			return 0, err
		}
		x[i] = d.Sample(src)
	}
	return z, nil
}

// SamplePrior draws (z, x) from a Prior: the auxiliary value and one input
// per player.
func SamplePrior(prior Prior, src *rng.Source) (z int, x []int, err error) {
	ps, err := NewPriorSampler(prior)
	if err != nil {
		return 0, nil, err
	}
	x = make([]int, prior.NumPlayers())
	z, err = ps.Sample(src, x)
	if err != nil {
		return 0, nil, err
	}
	return z, x, nil
}
