package core_test

import (
	"math"
	"testing"

	"broadcastic/internal/andk"
	"broadcastic/internal/core"
	"broadcastic/internal/dist"
)

func TestParallelSpecValidation(t *testing.T) {
	spec, _ := andk.NewSequential(3)
	if _, err := core.NewParallelSpec(nil, 2); err == nil {
		t.Fatal("nil base succeeded")
	}
	if _, err := core.NewParallelSpec(spec, 0); err == nil {
		t.Fatal("zero copies succeeded")
	}
	if _, err := core.NewParallelSpec(spec, 64); err == nil {
		t.Fatal("astronomical tuple space succeeded")
	}
	if _, err := core.NewProductOfPriors(nil, 2); err == nil {
		t.Fatal("nil base prior succeeded")
	}
	mu, _ := dist.NewMu(3)
	if _, err := core.NewProductOfPriors(mu, 0); err == nil {
		t.Fatal("zero-copy prior succeeded")
	}
}

func TestParallelSpecSingleCopyIsIdentity(t *testing.T) {
	const k = 3
	base, _ := andk.NewSequential(k)
	par, err := core.NewParallelSpec(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := dist.NewMu(k)
	parMu, err := core.NewProductOfPriors(mu, 1)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := core.ExactCosts(base, mu, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.ExactCosts(par, parMu, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.CIC-r2.CIC) > 1e-9 || math.Abs(r1.ExternalIC-r2.ExternalIC) > 1e-9 {
		t.Fatalf("1-copy parallel differs: %+v vs %+v", r1, r2)
	}
}

func TestTheorem4AdditivityUnderMu(t *testing.T) {
	// IC and CIC of the n-fold task are exactly n× the single copy's,
	// for the conditioned hard distribution μ (the direct-sum identity
	// Theorem 4's proof relies on).
	const k = 3
	base, _ := andk.NewSequential(k)
	mu, _ := dist.NewMu(k)
	single, err := core.ExactCosts(base, mu, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, copies := range []int{2, 3} {
		par, err := core.NewParallelSpec(base, copies)
		if err != nil {
			t.Fatal(err)
		}
		prior, err := core.NewProductOfPriors(mu, copies)
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.ExactCosts(par, prior, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.CIC-float64(copies)*single.CIC) > 1e-8 {
			t.Fatalf("copies=%d: CIC %v, want %v", copies, r.CIC, float64(copies)*single.CIC)
		}
		if math.Abs(r.ExternalIC-float64(copies)*single.ExternalIC) > 1e-8 {
			t.Fatalf("copies=%d: IC %v, want %v", copies, r.ExternalIC, float64(copies)*single.ExternalIC)
		}
		if math.Abs(r.ExpectedBits-float64(copies)*single.ExpectedBits) > 1e-8 {
			t.Fatalf("copies=%d: expected bits %v, want %v",
				copies, r.ExpectedBits, float64(copies)*single.ExpectedBits)
		}
	}
}

func TestTheorem4AdditivityUnderProductPrior(t *testing.T) {
	// The Theorem 4 statement proper: for a *product* distribution (empty
	// auxiliary variable), IC of the n-fold task equals n·IC of one copy.
	const k = 3
	base, _ := andk.NewSequential(k)
	prior := uniformPrior(t, k)
	single, err := core.ExactCosts(base, prior, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, copies := range []int{2, 3} {
		par, err := core.NewParallelSpec(base, copies)
		if err != nil {
			t.Fatal(err)
		}
		pprior, err := core.NewProductOfPriors(prior, copies)
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.ExactCosts(par, pprior, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.ExternalIC-float64(copies)*single.ExternalIC) > 1e-8 {
			t.Fatalf("copies=%d: IC %v, want %v", copies, r.ExternalIC, float64(copies)*single.ExternalIC)
		}
	}
}

func TestParallelSpecOutputPacksCopies(t *testing.T) {
	const k = 2
	base, _ := andk.NewSequential(k)
	par, err := core.NewParallelSpec(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Copy 0 inputs (1,1) → output 1; copy 1 inputs (1,0) → output 0.
	// Player tuple values: player 0 holds (1,1) → 1 + 2·1 = 3;
	// player 1 holds (1,0) → 1 + 2·0 = 1.
	leaves, err := core.EnumerateTranscripts(par, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	x := []int{3, 1}
	for _, leaf := range leaves {
		p, err := leaf.ProbGivenInput(x)
		if err != nil {
			t.Fatal(err)
		}
		if p == 1 {
			if leaf.Output != 0b01 {
				t.Fatalf("packed output %02b, want 01", leaf.Output)
			}
			return
		}
	}
	t.Fatal("no transcript matched the deterministic input")
}

func TestParallelSpecErrors(t *testing.T) {
	base, _ := andk.NewSequential(2)
	par, _ := core.NewParallelSpec(base, 2)
	// Transcript past the end of both copies.
	tooLong := core.Transcript{0, 0, 0}
	if _, _, err := par.NextSpeaker(tooLong); err == nil {
		t.Fatal("overlong transcript accepted")
	}
	if _, err := par.Output(core.Transcript{0}); err == nil {
		t.Fatal("output of incomplete transcript accepted")
	}
	if _, err := par.MessageAlphabet(core.Transcript{0, 0}); err == nil {
		t.Fatal("alphabet after halt accepted")
	}
	if _, err := par.MessageDist(core.Transcript{0, 0}, 0, 0); err == nil {
		t.Fatal("message after halt accepted")
	}
	if _, err := par.MessageBits(core.Transcript{0, 0}, 0); err == nil {
		t.Fatal("bits after halt accepted")
	}
}

func TestProductOfPriorsShapes(t *testing.T) {
	mu, _ := dist.NewMu(3)
	p, err := core.NewProductOfPriors(mu, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPlayers() != 3 || p.InputSize() != 4 || p.AuxSize() != 9 {
		t.Fatalf("shapes: players=%d input=%d aux=%d", p.NumPlayers(), p.InputSize(), p.AuxSize())
	}
	// Aux probabilities sum to 1.
	total := 0.0
	for z := 0; z < p.AuxSize(); z++ {
		total += p.AuxProb(z)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("aux probabilities sum to %v", total)
	}
	if p.AuxProb(-1) != 0 || p.AuxProb(9) != 0 {
		t.Fatal("out-of-range aux probability nonzero")
	}
	// Player conditionals sum to 1.
	for z := 0; z < p.AuxSize(); z++ {
		d, err := p.PlayerDist(z, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for v := 0; v < d.Size(); v++ {
			s += d.P(v)
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("z=%d: conditional sums to %v", z, s)
		}
	}
}
