package core_test

import (
	"math"
	"testing"

	"broadcastic/internal/andk"
	"broadcastic/internal/core"
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

func TestBridgeMatchesDirectExecution(t *testing.T) {
	// Every deterministic input must produce the same transcript, output
	// and bit count on the physical board as in the analytical engine.
	const k = 5
	spec, _ := andk.NewSequential(k)
	for _, x := range core.AllBinaryInputs(k) {
		run, err := core.RunSpecOnBlackboard(spec, x, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, leaf, err := core.SampleTranscript(spec, x, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		if run.Output != leaf.Output {
			t.Fatalf("input %v: board output %d, engine output %d", x, run.Output, leaf.Output)
		}
		if run.Board.TotalBits() != leaf.Bits {
			t.Fatalf("input %v: board %d bits, engine charges %d", x, run.Board.TotalBits(), leaf.Bits)
		}
		if len(run.Transcript) != len(leaf.Transcript) {
			t.Fatalf("input %v: transcripts differ: %v vs %v", x, run.Transcript, leaf.Transcript)
		}
		for i := range run.Transcript {
			if run.Transcript[i] != leaf.Transcript[i] {
				t.Fatalf("input %v: transcripts differ: %v vs %v", x, run.Transcript, leaf.Transcript)
			}
		}
		// Per-player accounting: each player that spoke wrote exactly 1 bit.
		for i := 0; i < k; i++ {
			want := 0
			if i < len(run.Transcript) {
				want = 1
			}
			if got := run.Board.PlayerBits(i); got != want {
				t.Fatalf("input %v: player %d wrote %d bits, want %d", x, i, got, want)
			}
		}
	}
}

func TestBridgeRandomizedProtocol(t *testing.T) {
	// The Lazy protocol's give-up rate must survive the bridge.
	const k, delta = 3, 0.3
	spec, err := andk.NewLazy(k, delta, 0)
	if err != nil {
		t.Fatal(err)
	}
	private := rng.New(77)
	const trials = 20000
	gaveUp := 0
	for i := 0; i < trials; i++ {
		run, err := core.RunSpecOnBlackboard(spec, []int{1, 1, 1}, private)
		if err != nil {
			t.Fatal(err)
		}
		if run.Transcript[0] == 1 {
			gaveUp++
		}
	}
	if rate := float64(gaveUp) / trials; math.Abs(rate-delta) > 0.015 {
		t.Fatalf("bridge give-up rate %v, want %v", rate, delta)
	}
}

func TestBridgeRequiresRandomnessForRandomizedSpecs(t *testing.T) {
	spec, _ := andk.NewLazy(3, 0.5, 0)
	if _, err := core.RunSpecOnBlackboard(spec, []int{1, 1, 1}, nil); err == nil {
		t.Fatal("randomized spec without a source succeeded")
	}
}

func TestBridgeInputValidation(t *testing.T) {
	spec, _ := andk.NewSequential(3)
	if _, err := core.RunSpecOnBlackboard(spec, []int{1}, nil); err == nil {
		t.Fatal("short input succeeded")
	}
}

func TestBridgeRejectsInconsistentCharging(t *testing.T) {
	// A spec whose declared MessageBits disagrees with the fixed-width
	// encoding must be refused rather than mis-accounted.
	spec := badChargingSpec{}
	if _, err := core.RunSpecOnBlackboard(spec, []int{0}, nil); err == nil {
		t.Fatal("inconsistent charging accepted")
	}
}

type badChargingSpec struct{}

func (badChargingSpec) NumPlayers() int { return 1 }
func (badChargingSpec) InputSize() int  { return 2 }
func (badChargingSpec) NextSpeaker(t core.Transcript) (int, bool, error) {
	if len(t) >= 1 {
		return 0, true, nil
	}
	return 0, false, nil
}
func (badChargingSpec) MessageAlphabet(core.Transcript) (int, error) { return 2, nil }
func (badChargingSpec) MessageDist(t core.Transcript, player, input int) (prob.Dist, error) {
	return prob.Point(2, input)
}
func (badChargingSpec) MessageBits(core.Transcript, int) (int, error) { return 7, nil } // wrong
func (badChargingSpec) Output(core.Transcript) (int, error)           { return 0, nil }
