package core_test

import (
	"math"
	"testing"

	"broadcastic/internal/andk"
	"broadcastic/internal/core"
	"broadcastic/internal/dist"
	"broadcastic/internal/rng"
)

func TestInternalICRequiresTwoPlayers(t *testing.T) {
	spec, _ := andk.NewSequential(3)
	mu, _ := dist.NewMu(3)
	if _, err := core.ExactInternalIC(spec, mu, core.TreeLimits{}); err == nil {
		t.Fatal("three-player internal IC succeeded")
	}
}

func TestInternalICBroadcastAllUniform(t *testing.T) {
	// Both players announce their uniform bit: each learns exactly the
	// other's bit, so IC_int = I(Π;X|Y) + I(Π;Y|X) = 1 + 1 = 2 = IC_ext.
	spec, _ := andk.NewBroadcastAll(2)
	prior := uniformPrior(t, 2)
	internal, err := core.ExactInternalIC(spec, prior, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(internal-2) > 1e-9 {
		t.Fatalf("internal IC = %v, want 2", internal)
	}
	external, err := core.ExactCosts(spec, prior, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(internal-external.ExternalIC) > 1e-9 {
		t.Fatalf("internal %v != external %v for the full-reveal protocol",
			internal, external.ExternalIC)
	}
}

func TestInternalAtMostExternalTwoPlayers(t *testing.T) {
	// The Section 6 footnote's inequality: for two players, internal
	// information never exceeds external information. Check on the named
	// protocols under μ and on random specs under random priors.
	mu, _ := dist.NewMu(2)
	for name, mk := range map[string]func() (core.Spec, error){
		"sequential": func() (core.Spec, error) { return andk.NewSequential(2) },
		"broadcast":  func() (core.Spec, error) { return andk.NewBroadcastAll(2) },
		"lazy":       func() (core.Spec, error) { return andk.NewLazy(2, 0.3, 0) },
	} {
		spec, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		internal, err := core.ExactInternalIC(spec, mu, core.TreeLimits{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		external, err := core.ExactCosts(spec, mu, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		if internal > external.ExternalIC+1e-9 {
			t.Fatalf("%s: internal %v exceeds external %v", name, internal, external.ExternalIC)
		}
	}

	meta := rng.New(321)
	for trial := 0; trial < 10; trial++ {
		src := meta.Split(uint64(trial))
		spec := newRandomSpec(src, 2, 3, 3, 2)
		prior := newRandomPrior(src, 2, 3, 2)
		internal, err := core.ExactInternalIC(spec, prior, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		external, err := core.ExactCosts(spec, prior, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		if internal > external.ExternalIC+1e-9 {
			t.Fatalf("trial %d: internal %v exceeds external %v",
				trial, internal, external.ExternalIC)
		}
		if internal < -1e-9 {
			t.Fatalf("trial %d: negative internal information %v", trial, internal)
		}
	}
}

func TestInternalStrictlyBelowExternalSomewhere(t *testing.T) {
	// The gap direction that motivates the external notion: find a case
	// where internal < external. A protocol announcing a *noisy* copy of
	// X reveals more to the outside observer than to the other player
	// whenever Y is correlated with X. Under μ at k=2, Y is (weakly)
	// correlated with X, and the Lazy protocol's give-up coin leaks
	// nothing internally or externally, keeping the comparison clean.
	mu, _ := dist.NewMu(2)
	spec, _ := andk.NewSequential(2)
	internal, err := core.ExactInternalIC(spec, mu, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	external, err := core.ExactCosts(spec, mu, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if internal >= external.ExternalIC {
		t.Fatalf("expected a strict gap under correlated μ: internal %v vs external %v",
			internal, external.ExternalIC)
	}
}
