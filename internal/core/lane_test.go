package core

// White-box tests for the lane estimator: shard-level bit-identity against
// the scalar engine, eligibility gating, and the zero-allocation pin that
// extends the PR 4 alloc gate to the lane path. Fixtures are in-package
// (core tests cannot import andk/dist without a cycle); a laneFixtureSpec
// is the generic scalar realization of a batch.LaneSpec, so shard equality
// here checks the lane engine against the full tree-walking engine on
// every certified shape, not against a second shortcut.

import (
	"testing"

	"broadcastic/internal/batch"
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

// laneFixtureSpec scalar-implements an arbitrary batch.LaneSpec: players
// speak in order up to cap, announcing their input bit, optionally halting
// after the first 0.
type laneFixtureSpec struct {
	k, cap int
	halt   bool
	bits   [2]prob.Dist
}

func newLaneFixtureSpec(t *testing.T, k, cap int, halt bool) *laneFixtureSpec {
	t.Helper()
	b0, err := prob.Point(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := prob.Point(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &laneFixtureSpec{k: k, cap: cap, halt: halt, bits: [2]prob.Dist{b0, b1}}
}

func (s *laneFixtureSpec) NumPlayers() int { return s.k }
func (s *laneFixtureSpec) InputSize() int  { return 2 }
func (s *laneFixtureSpec) NextSpeaker(t Transcript) (int, bool, error) {
	if s.halt && len(t) > 0 && t[len(t)-1] == 0 {
		return 0, true, nil
	}
	if len(t) >= s.cap {
		return 0, true, nil
	}
	return len(t), false, nil
}
func (s *laneFixtureSpec) MessageAlphabet(Transcript) (int, error) { return 2, nil }
func (s *laneFixtureSpec) MessageDist(_ Transcript, _, input int) (prob.Dist, error) {
	return s.bits[input], nil
}
func (s *laneFixtureSpec) MessageBits(Transcript, int) (int, error) { return 1, nil }
func (s *laneFixtureSpec) Output(t Transcript) (int, error) {
	for _, b := range t {
		if b == 0 {
			return 0, nil
		}
	}
	return 1, nil
}
func (s *laneFixtureSpec) LaneKernel() (batch.LaneSpec, bool) {
	return batch.LaneSpec{Players: s.k, SpeakCap: s.cap, HaltOnZero: s.halt}, true
}

var _ Spec = (*laneFixtureSpec)(nil)
var _ batch.Kernel = (*laneFixtureSpec)(nil)

// twoRowPrior is the Mu-shaped fixture: auxiliary value z marks one
// special player with a point mass on 0, everyone else shares a Bernoulli
// row whose mass sums to exactly 1 in floating point.
type twoRowPrior struct {
	k    int
	rows [2]prob.Dist
}

func newTwoRowPrior(t *testing.T, k int, pOne float64) *twoRowPrior {
	t.Helper()
	special, err := prob.Point(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	regular, err := prob.Bernoulli(pOne)
	if err != nil {
		t.Fatal(err)
	}
	return &twoRowPrior{k: k, rows: [2]prob.Dist{special, regular}}
}

func (p *twoRowPrior) NumPlayers() int     { return p.k }
func (p *twoRowPrior) InputSize() int      { return 2 }
func (p *twoRowPrior) AuxSize() int        { return p.k }
func (p *twoRowPrior) AuxProb(int) float64 { return 1 / float64(p.k) }
func (p *twoRowPrior) PlayerDist(z, player int) (prob.Dist, error) {
	if player == z {
		return p.rows[0], nil
	}
	return p.rows[1], nil
}
func (p *twoRowPrior) LaneRows() []prob.Dist { return p.rows[:] }
func (p *twoRowPrior) LaneRowsOf(z int, dst []uint8) {
	for i := range dst {
		dst[i] = 1
	}
	if z >= 0 && z < len(dst) {
		dst[z] = 0
	}
}

var _ Prior = (*twoRowPrior)(nil)
var _ batch.LanePrior = (*twoRowPrior)(nil)

// TestLaneShardMatchesScalarShard pins shard-level bit-identity: for every
// certified lane shape the lane shard must reproduce the scalar shard's
// raw moments exactly — same stream, same count, same floats — including
// ragged shard sizes.
func TestLaneShardMatchesScalarShard(t *testing.T) {
	cases := []struct {
		name   string
		k, cap int
		halt   bool
	}{
		{"sequential", 5, 5, true},
		{"broadcast-all", 8, 8, false},
		{"truncated", 12, 7, true},
		{"single-player", 1, 1, true},
		{"deep", 70, 70, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := newLaneFixtureSpec(t, tc.k, tc.cap, tc.halt)
			prior := newTwoRowPrior(t, tc.k, 0.75)
			plan := newLanePlan(spec, prior, nil)
			if plan == nil {
				t.Fatal("lane plan unexpectedly ineligible")
			}
			for _, count := range []int{300, 97, 1} {
				want, err := cicShard(spec, prior, rng.New(41), count)
				if err != nil {
					t.Fatal(err)
				}
				got := laneShard(plan, rng.New(41), count)
				if got != want {
					t.Fatalf("count %d: lane shard %+v != scalar shard %+v", count, got, want)
				}
			}
			// The two engines must also leave the stream at the same
			// position, or multi-shard draws would diverge.
			s1, s2 := rng.New(9), rng.New(9)
			if _, err := cicShard(spec, prior, s1, 50); err != nil {
				t.Fatal(err)
			}
			laneShard(plan, s2, 50)
			if s1.Uint64() != s2.Uint64() {
				t.Fatal("lane shard left the RNG stream at a different position than the scalar shard")
			}
		})
	}
}

// TestLanePlanEligibility pins the fallback rules: anything that cannot
// guarantee bit-identity must yield a nil plan (scalar engine), never an
// error.
func TestLanePlanEligibility(t *testing.T) {
	prior := newTwoRowPrior(t, 6, 0.75)
	if newLanePlan(newLaneFixtureSpec(t, 6, 6, true), prior, nil) == nil {
		t.Fatal("certified spec with two-point prior should be lane-eligible")
	}
	if newLanePlan(newNoisySpec(t, 6), prior, nil) != nil {
		t.Fatal("spec without a lane kernel must fall back to scalar")
	}
	if newLanePlan(newLaneFixtureSpec(t, 6, 6, true), newMixturePrior(t, 6), nil) != nil {
		t.Fatal("prior without lane rows must fall back to scalar")
	}
	deep := newLaneFixtureSpec(t, defaultMaxDepth+1, defaultMaxDepth+1, true)
	if newLanePlan(deep, newTwoRowPrior(t, defaultMaxDepth+1, 0.75), nil) != nil {
		t.Fatal("speak cap beyond the scalar depth limit must fall back to scalar")
	}
}

// TestLaneSampleLoopZeroAllocs extends the PR 4 alloc gate to the batched
// estimator: once the scratch pool is warm, the lane shard performs zero
// heap allocations per call.
func TestLaneSampleLoopZeroAllocs(t *testing.T) {
	const k = 16
	spec := newLaneFixtureSpec(t, k, k, true)
	prior := newTwoRowPrior(t, k, 0.75)
	plan := newLanePlan(spec, prior, nil)
	if plan == nil {
		t.Fatal("lane plan unexpectedly ineligible")
	}
	src := rng.New(3)
	laneShard(plan, src, 8) // warm the scratch pool
	var sink float64
	allocs := testing.AllocsPerRun(200, func() {
		p := laneShard(plan, src, 4)
		sink += p.sum
	})
	if allocs != 0 {
		t.Fatalf("steady-state lane shard allocates %.1f objects/call; want 0", allocs)
	}
	_ = sink
}
