package core

// White-box tests for the estimator's reusable execution scratch. The
// acceptance bar for the memory-reuse layer is that the per-sample inner
// loop of EstimateCICWorkers performs zero heap allocations once a shard's
// scratch is warm; this is pinned with testing.AllocsPerRun against
// in-package fixtures whose MessageDist/PlayerDist lookups are themselves
// allocation-free (cached Dists), so any allocation measured belongs to
// the engine.

import (
	"testing"

	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

// noisySpec: every player broadcasts one bit, biased by its input, so
// transcripts vary and every q-update path runs.
type noisySpec struct {
	k     int
	dists [2]prob.Dist
}

func newNoisySpec(t *testing.T, k int) *noisySpec {
	t.Helper()
	d0, err := prob.Bernoulli(0.3)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := prob.Bernoulli(0.8)
	if err != nil {
		t.Fatal(err)
	}
	return &noisySpec{k: k, dists: [2]prob.Dist{d0, d1}}
}

func (s *noisySpec) NumPlayers() int { return s.k }
func (s *noisySpec) InputSize() int  { return 2 }
func (s *noisySpec) NextSpeaker(t Transcript) (int, bool, error) {
	if len(t) >= s.k {
		return 0, true, nil
	}
	return len(t), false, nil
}
func (s *noisySpec) MessageAlphabet(Transcript) (int, error) { return 2, nil }
func (s *noisySpec) MessageDist(_ Transcript, _, input int) (prob.Dist, error) {
	return s.dists[input], nil
}
func (s *noisySpec) MessageBits(Transcript, int) (int, error) { return 1, nil }
func (s *noisySpec) Output(Transcript) (int, error)           { return 0, nil }

// mixturePrior: two auxiliary values with different cached input biases, so
// the z-dependent paths of the sample loop are exercised.
type mixturePrior struct {
	k     int
	dists [2]prob.Dist
}

func newMixturePrior(t *testing.T, k int) *mixturePrior {
	t.Helper()
	d0, err := prob.Bernoulli(0.25)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := prob.Bernoulli(0.75)
	if err != nil {
		t.Fatal(err)
	}
	return &mixturePrior{k: k, dists: [2]prob.Dist{d0, d1}}
}

func (p *mixturePrior) NumPlayers() int     { return p.k }
func (p *mixturePrior) InputSize() int      { return 2 }
func (p *mixturePrior) AuxSize() int        { return 2 }
func (p *mixturePrior) AuxProb(int) float64 { return 0.5 }
func (p *mixturePrior) PlayerDist(z, _ int) (prob.Dist, error) {
	return p.dists[z], nil
}

func TestCICSampleLoopZeroAllocs(t *testing.T) {
	const k = 16
	spec := newNoisySpec(t, k)
	prior := newMixturePrior(t, k)
	zd, err := auxDist(prior)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	sc := newExecScratch(k, spec.InputSize())
	// Warm up: first samples may grow the transcript path and prior rows.
	for i := 0; i < 8; i++ {
		if _, _, err := sc.runSample(spec, prior, zd, src); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := sc.runSample(spec, prior, zd, src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state sample loop allocates %.1f objects/sample; want 0", allocs)
	}
}

// TestScratchPoolReusesShape pins the shard-level lifecycle: a released
// scratch with the right shape is handed back, a mismatched one is not.
func TestScratchPoolReusesShape(t *testing.T) {
	sc := newExecScratch(4, 2)
	putExecScratch(sc)
	got := getExecScratch(4, 2)
	if got != sc {
		// The pool may have been drained by a concurrent GC; accept a
		// fresh scratch but verify its shape.
		if got.k != 4 || got.inputSize != 2 {
			t.Fatalf("scratch shape %dx%d, want 4x2", got.k, got.inputSize)
		}
	}
	putExecScratch(got)
	other := getExecScratch(6, 3)
	if other.k != 6 || other.inputSize != 3 {
		t.Fatalf("mismatched scratch reused: shape %dx%d", other.k, other.inputSize)
	}
}

// TestScratchSamplesMatchLegacyPath pins that the scratch-based shard
// produces the exact values the pre-scratch per-sample allocation path
// produced: identical RNG consumption, identical q-factors, identical
// divergences. The legacy path is reconstructed inline.
func TestScratchSamplesMatchLegacyPath(t *testing.T) {
	const k, samples = 5, 300
	spec := newNoisySpec(t, k)
	prior := newMixturePrior(t, k)
	zd, err := auxDist(prior)
	if err != nil {
		t.Fatal(err)
	}

	legacy := func(src *rng.Source) (sum, bitsSum float64) {
		for s := 0; s < samples; s++ {
			z := zd.Sample(src)
			x := make([]int, k)
			priors := make([][]float64, k)
			q := make([][]float64, k)
			for i := 0; i < k; i++ {
				d, err := prior.PlayerDist(z, i)
				if err != nil {
					t.Fatal(err)
				}
				priors[i] = d.Probs()
				x[i] = d.Sample(src)
				q[i] = make([]float64, spec.InputSize())
				for v := range q[i] {
					q[i][v] = 1
				}
			}
			var tr Transcript
			bits := 0
			for {
				speaker, done, err := spec.NextSpeaker(tr)
				if err != nil {
					t.Fatal(err)
				}
				if done {
					break
				}
				d, err := spec.MessageDist(tr, speaker, x[speaker])
				if err != nil {
					t.Fatal(err)
				}
				sym := d.Sample(src)
				for v := range q[speaker] {
					dv, err := spec.MessageDist(tr, speaker, v)
					if err != nil {
						t.Fatal(err)
					}
					q[speaker][v] *= dv.P(sym)
				}
				sb, err := spec.MessageBits(tr, sym)
				if err != nil {
					t.Fatal(err)
				}
				bits += sb
				tr = append(tr, sym)
			}
			inner, err := qDivergenceSum(q, priors)
			if err != nil {
				t.Fatal(err)
			}
			sum += inner
			bitsSum += float64(bits)
		}
		return sum, bitsSum
	}

	wantSum, wantBits := legacy(rng.New(77))

	src := rng.New(77)
	sc := newExecScratch(k, spec.InputSize())
	var gotSum, gotBits float64
	for s := 0; s < samples; s++ {
		inner, bits, err := sc.runSample(spec, prior, zd, src)
		if err != nil {
			t.Fatal(err)
		}
		gotSum += inner
		gotBits += float64(bits)
	}
	if gotSum != wantSum || gotBits != wantBits {
		t.Fatalf("scratch path (sum=%v bits=%v) != legacy path (sum=%v bits=%v)",
			gotSum, gotBits, wantSum, wantBits)
	}
}
