package core

import (
	"fmt"
	"math"

	"broadcastic/internal/info"
)

// Internal information cost (Braverman–Rao / Braverman): what the players
// learn about *each other's* inputs,
//
//	IC_int(Π) = I(Π; X | Y) + I(Π; Y | X),
//
// defined for two players. The paper's Section 6 footnote points out that
// internal information lower-bounds external information for k = 2, but
// the notion does not extend to the k > 2 broadcast model — which is
// exactly why the paper works with external information. This file makes
// the k = 2 comparison measurable.

// ExactInternalIC computes the internal information cost of a two-player
// spec under a prior, by exact enumeration of the transcript tree and both
// input marginals.
func ExactInternalIC(spec Spec, prior Prior, lim TreeLimits) (float64, error) {
	if err := validateShapes(spec, prior); err != nil {
		return 0, err
	}
	if spec.NumPlayers() != 2 {
		return 0, fmt.Errorf("core: internal information is a two-player notion, got %d players", spec.NumPlayers())
	}
	leaves, err := EnumerateTranscripts(spec, lim)
	if err != nil {
		return 0, err
	}
	inputSize := spec.InputSize()
	zDist, err := auxDist(prior)
	if err != nil {
		return 0, err
	}

	// Joint distribution over (x, y, ℓ), marginalizing the auxiliary
	// variable out (internal information is defined against the plain
	// input distribution).
	joint := make([][][]float64, inputSize) // [x][y][leaf]
	for x := range joint {
		joint[x] = make([][]float64, inputSize)
		for y := range joint[x] {
			joint[x][y] = make([]float64, len(leaves))
		}
	}
	for z := 0; z < prior.AuxSize(); z++ {
		pz := zDist.P(z)
		if pz == 0 {
			continue
		}
		dx, err := prior.PlayerDist(z, 0)
		if err != nil {
			return 0, err
		}
		dy, err := prior.PlayerDist(z, 1)
		if err != nil {
			return 0, err
		}
		for x := 0; x < inputSize; x++ {
			px := dx.P(x)
			if px == 0 {
				continue
			}
			for y := 0; y < inputSize; y++ {
				py := dy.P(y)
				if py == 0 {
					continue
				}
				for li, leaf := range leaves {
					pl := leaf.Q[0][x] * leaf.Q[1][y]
					if pl == 0 {
						continue
					}
					joint[x][y][li] += pz * px * py * pl
				}
			}
		}
	}

	// I(Π; X | Y) = Σ_y p(y) · I(Π; X | Y = y), and symmetrically.
	iXgivenY, err := conditionalLeafMI(joint, inputSize, len(leaves), false)
	if err != nil {
		return 0, err
	}
	iYgivenX, err := conditionalLeafMI(joint, inputSize, len(leaves), true)
	if err != nil {
		return 0, err
	}
	return iXgivenY + iYgivenX, nil
}

// conditionalLeafMI computes I(Π; A | B) where (A, B) = (X, Y) when
// condOnFirst is false (condition on Y) and (Y, X) when true (condition
// on X).
func conditionalLeafMI(joint [][][]float64, inputSize, numLeaves int, condOnFirst bool) (float64, error) {
	total := 0.0
	for b := 0; b < inputSize; b++ {
		tbl, err := info.EmptyJoint(inputSize, numLeaves)
		if err != nil {
			return 0, err
		}
		mass := 0.0
		for a := 0; a < inputSize; a++ {
			for li := 0; li < numLeaves; li++ {
				var w float64
				if condOnFirst {
					w = joint[b][a][li]
				} else {
					w = joint[a][b][li]
				}
				if w == 0 {
					continue
				}
				if err := tbl.Add(a, li, w); err != nil {
					return 0, err
				}
				mass += w
			}
		}
		if mass == 0 {
			continue
		}
		if err := tbl.NormalizeInPlace(); err != nil {
			return 0, err
		}
		mi, err := tbl.MutualInformation()
		if err != nil {
			return 0, err
		}
		total += mass * mi
	}
	if total < 0 && total > -1e-10 {
		total = 0
	}
	if math.IsNaN(total) {
		return 0, fmt.Errorf("core: internal information is NaN")
	}
	return total, nil
}
