package core_test

// The compile-vs-dynamic equivalence harness: every compiled-IR fast
// path must be bit-identical to the dynamic interpretation it replaces —
// same transcripts, same leaves, same RNG stream positions, same
// estimates — across the andk/disj/parallel spec families and randomly
// generated small specs. Engine selection hinges on ir.Keyer, so
// wrapping a spec in a key-stripping struct forces the dynamic path on
// the identical behavior; comparing the two runs pins the equivalence.
// (The compress layer rides on core.SampleTranscript, so its family is
// covered through the transcript parity here plus compress's own
// CompressRun-vs-SampleTranscript tests.)

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"broadcastic/internal/andk"
	"broadcastic/internal/core"
	"broadcastic/internal/disj"
	"broadcastic/internal/dist"
	"broadcastic/internal/ir"
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
)

// plainSpec strips the IRKey method from a keyed spec: embedding the
// core.Spec interface promotes only its methods, so the wrapper is
// unkeyed and the engines treat it as dynamic-only — while behaving
// identically to the wrapped spec.
type plainSpec struct{ core.Spec }

// plainPrior is the prior-side key stripper.
type plainPrior struct{ core.Prior }

func equivSpecs(t *testing.T) []core.Spec {
	t.Helper()
	seq, err := andk.NewSequential(6)
	if err != nil {
		t.Fatal(err)
	}
	all, err := andk.NewBroadcastAll(5)
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := andk.NewTruncated(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := andk.NewLazy(5, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	dj, err := disj.NewSequentialSpec(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := andk.NewSequential(4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.NewParallelSpec(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []core.Spec{seq, all, trunc, lazy, dj, par}
}

// TestIRSampleTranscriptMatchesDynamic pins the compiled SampleTranscript
// fast path against the dynamic walk on every spec family: identical
// transcript, identical leaf (q-factors, bits, output), and the source
// left at the identical stream position.
func TestIRSampleTranscriptMatchesDynamic(t *testing.T) {
	for _, spec := range equivSpecs(t) {
		k, inputSize := spec.NumPlayers(), spec.InputSize()
		gen := rng.New(99)
		for trial := 0; trial < 25; trial++ {
			x := make([]int, k)
			for i := range x {
				x[i] = int(gen.Uint64() % uint64(inputSize))
			}
			fast, slow := rng.New(uint64(trial)), rng.New(uint64(trial))
			fm, sm := fast.Mark(), slow.Mark()
			ft, fl, err := core.SampleTranscript(spec, x, fast)
			if err != nil {
				t.Fatalf("%T x=%v: compiled: %v", spec, x, err)
			}
			st, sl, err := core.SampleTranscript(plainSpec{spec}, x, slow)
			if err != nil {
				t.Fatalf("%T x=%v: dynamic: %v", spec, x, err)
			}
			if !reflect.DeepEqual(ft, st) {
				t.Fatalf("%T x=%v: transcript %v != dynamic %v", spec, x, ft, st)
			}
			if fl.Bits != sl.Bits || fl.Output != sl.Output ||
				!reflect.DeepEqual(fl.Transcript, sl.Transcript) ||
				!reflect.DeepEqual(fl.Q, sl.Q) {
				t.Fatalf("%T x=%v: leaf %+v != dynamic %+v", spec, x, fl, sl)
			}
			if fd, sd := fast.DrawsSince(fm), slow.DrawsSince(sm); fd != sd {
				t.Fatalf("%T x=%v: compiled consumed %d draws, dynamic %d", spec, x, fd, sd)
			}
		}
	}
}

// TestIRBlackboardMatchesDynamic pins the compiled blackboard stepper
// against the dynamic SpecProtocol bridge: identical board contents
// (message count, bit total, transcript key), identical output, and the
// private source at the identical position.
func TestIRBlackboardMatchesDynamic(t *testing.T) {
	for _, spec := range equivSpecs(t) {
		k, inputSize := spec.NumPlayers(), spec.InputSize()
		gen := rng.New(7)
		for trial := 0; trial < 25; trial++ {
			x := make([]int, k)
			for i := range x {
				x[i] = int(gen.Uint64() % uint64(inputSize))
			}
			fast, slow := rng.New(uint64(1000+trial)), rng.New(uint64(1000+trial))
			fm, sm := fast.Mark(), slow.Mark()
			fr, err := core.RunSpecOnBlackboard(spec, x, fast)
			if err != nil {
				t.Fatalf("%T x=%v: compiled: %v", spec, x, err)
			}
			sr, err := core.RunSpecOnBlackboard(plainSpec{spec}, x, slow)
			if err != nil {
				t.Fatalf("%T x=%v: dynamic: %v", spec, x, err)
			}
			if !reflect.DeepEqual(fr.Transcript, sr.Transcript) || fr.Output != sr.Output {
				t.Fatalf("%T x=%v: run (%v, %d) != dynamic (%v, %d)",
					spec, x, fr.Transcript, fr.Output, sr.Transcript, sr.Output)
			}
			if fr.Board.NumMessages() != sr.Board.NumMessages() ||
				fr.Board.TotalBits() != sr.Board.TotalBits() ||
				fr.Board.TranscriptKey() != sr.Board.TranscriptKey() {
				t.Fatalf("%T x=%v: board (%d msgs, %d bits, %q) != dynamic (%d msgs, %d bits, %q)",
					spec, x, fr.Board.NumMessages(), fr.Board.TotalBits(), fr.Board.TranscriptKey(),
					sr.Board.NumMessages(), sr.Board.TotalBits(), sr.Board.TranscriptKey())
			}
			if fd, sd := fast.DrawsSince(fm), slow.DrawsSince(sm); fd != sd {
				t.Fatalf("%T x=%v: compiled consumed %d private draws, dynamic %d", spec, x, fd, sd)
			}
		}
	}
}

// TestIRParallelEstimateMatchesDynamic runs the n-fold parallel task —
// ParallelSpec over ProductOfPriors, Theorem 4's direct-sum object —
// through the compiled engine and the dynamic engines, requiring
// bit-identical estimates and proof via counters that the compiled
// engine really served the default run.
func TestIRParallelEstimateMatchesDynamic(t *testing.T) {
	base, err := andk.NewSequential(4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.NewParallelSpec(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := dist.NewMu(4)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := core.NewProductOfPriors(mu, 2)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 700
	for _, workers := range []int{1, 4} {
		col := telemetry.NewCollector()
		compiled, err := core.EstimateCICOpts(par, prod, rng.New(21), samples,
			core.EstimateOptions{Workers: workers, Recorder: col})
		if err != nil {
			t.Fatal(err)
		}
		if got := col.Snapshot()[telemetry.CoreCICIRSamples]; got != samples {
			t.Fatalf("workers=%d: IR engine served %v samples, want %d", workers, got, samples)
		}
		scalar, err := core.EstimateCICOpts(par, prod, rng.New(21), samples,
			core.EstimateOptions{Workers: workers, DisableIR: true, DisableLanes: true})
		if err != nil {
			t.Fatal(err)
		}
		if *compiled != *scalar {
			t.Fatalf("workers=%d: compiled %+v != dynamic %+v", workers, compiled, scalar)
		}
	}
}

// TestIRIneligibleSpecFallsBackIdentically pins the eligibility gate's
// fallback: DISJ at n=13 has 2^13 input values per player — past the
// compiler's input-size gate — so the default run must serve every
// sample dynamically and still produce the bit-identical estimate.
func TestIRIneligibleSpecFallsBackIdentically(t *testing.T) {
	dj, err := disj.NewSequentialSpec(13, 2)
	if err != nil {
		t.Fatal(err)
	}
	mun, err := dist.NewMuN(2, 13)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 60
	col := telemetry.NewCollector()
	def, err := core.EstimateCICOpts(dj, mun, rng.New(11), samples,
		core.EstimateOptions{Workers: 2, Recorder: col})
	if err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if got := snap[telemetry.CoreCICIRSamples]; got != 0 {
		t.Fatalf("IR engine served %v samples of an ineligible spec", got)
	}
	dyn, err := core.EstimateCICOpts(dj, mun, rng.New(11), samples,
		core.EstimateOptions{Workers: 2, DisableIR: true})
	if err != nil {
		t.Fatal(err)
	}
	if *def != *dyn {
		t.Fatalf("default estimate %+v != dynamic estimate %+v", def, dyn)
	}
}

// TestIRProgramCacheServesRepeatRuns is the amortization acceptance
// check: the first estimate of a (spec, prior) pair compiles exactly
// once, and a second identical run hits the program cache — no
// recompile — while producing the identical estimate.
func TestIRProgramCacheServesRepeatRuns(t *testing.T) {
	ir.ResetProgramCache()
	spec, err := andk.NewSequential(8)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := dist.NewMu(8)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 400
	first := telemetry.NewCollector()
	est1, err := core.EstimateCICOpts(spec, mu, rng.New(3), samples,
		core.EstimateOptions{Recorder: first})
	if err != nil {
		t.Fatal(err)
	}
	snap1 := first.Snapshot()
	if got := snap1[telemetry.IRProgramMisses]; got != 1 {
		t.Fatalf("first run compiled %v times, want 1", got)
	}
	if snap1[telemetry.IRCompileNs+".count"] == 0 && snap1[telemetry.IRCompileNs] == 0 {
		t.Logf("note: no %s observation surfaced in snapshot %v", telemetry.IRCompileNs, snap1)
	}
	second := telemetry.NewCollector()
	est2, err := core.EstimateCICOpts(spec, mu, rng.New(3), samples,
		core.EstimateOptions{Recorder: second})
	if err != nil {
		t.Fatal(err)
	}
	snap2 := second.Snapshot()
	if got := snap2[telemetry.IRProgramHits]; got < 1 {
		t.Fatalf("second run saw %v program hits, want ≥ 1", got)
	}
	if got := snap2[telemetry.IRProgramMisses]; got != 0 {
		t.Fatalf("second run recompiled %v times, want 0", got)
	}
	if *est1 != *est2 {
		t.Fatalf("repeat run estimate %+v != first %+v", est2, est1)
	}
}

// --- Property-based equivalence over random small specs ------------------

func qmix(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// quickSpec is a randomized-but-deterministic protocol: every control
// decision is a hash of the transcript so far (and the compile-relevant
// arguments), so the spec is a consistent pure function of its inputs
// while exercising varied speakers, alphabets, point masses, zero-mass
// symbols and ragged bit widths.
type quickSpec struct {
	k, inputSize, alphabet, rounds int
	seed                           uint64
}

func (s quickSpec) fold(t core.Transcript) uint64 {
	h := s.seed
	for _, m := range t {
		h = qmix(h + uint64(m) + 0x9e3779b97f4a7c15)
	}
	return h
}

func (s quickSpec) NumPlayers() int { return s.k }
func (s quickSpec) InputSize() int  { return s.inputSize }

func (s quickSpec) NextSpeaker(t core.Transcript) (int, bool, error) {
	if len(t) >= s.rounds {
		return 0, true, nil
	}
	return int(qmix(s.fold(t)+1) % uint64(s.k)), false, nil
}

func (s quickSpec) MessageAlphabet(t core.Transcript) (int, error) { return s.alphabet, nil }

func (s quickSpec) MessageDist(t core.Transcript, player, input int) (prob.Dist, error) {
	h := qmix(s.fold(t) + uint64(input)*1000003 + 2)
	if h%5 == 0 {
		return prob.Point(s.alphabet, int(h>>8)%s.alphabet)
	}
	w := make([]float64, s.alphabet)
	for i := range w {
		w[i] = float64(1 + (h>>(7*uint(i)+3))%16)
	}
	if h%7 == 0 {
		w[int(h>>40)%s.alphabet] = 0 // exercise zero-mass symbol pruning
	}
	return prob.Normalize(w)
}

func (s quickSpec) MessageBits(t core.Transcript, symbol int) (int, error) {
	return 1 + int(qmix(s.fold(t)+uint64(symbol)+3)%2), nil
}

func (s quickSpec) Output(t core.Transcript) (int, error) {
	return int(qmix(s.fold(t)+4) % 3), nil
}

func (s quickSpec) IRKey() string {
	return fmt.Sprintf("quicktest.spec/%d,%d,%d,%d,%x", s.k, s.inputSize, s.alphabet, s.rounds, s.seed)
}

// quickPrior is the matching randomized prior: hashed aux weights and
// per-(z, player) conditionals, with occasional point masses.
type quickPrior struct {
	k, inputSize, auxSize int
	seed                  uint64
}

func (p quickPrior) NumPlayers() int { return p.k }
func (p quickPrior) InputSize() int  { return p.inputSize }
func (p quickPrior) AuxSize() int    { return p.auxSize }

func (p quickPrior) AuxProb(z int) float64 {
	return float64(1 + qmix(p.seed+uint64(z)*13+5)%8)
}

func (p quickPrior) PlayerDist(z, player int) (prob.Dist, error) {
	h := qmix(p.seed + uint64(z)*101 + uint64(player)*10007 + 6)
	if h%6 == 0 {
		return prob.Point(p.inputSize, int(h>>8)%p.inputSize)
	}
	w := make([]float64, p.inputSize)
	for i := range w {
		w[i] = float64(1 + (h>>(9*uint(i)+1))%9)
	}
	return prob.Normalize(w)
}

func (p quickPrior) IRKey() string {
	return fmt.Sprintf("quicktest.prior/%d,%d,%d,%x", p.k, p.inputSize, p.auxSize, p.seed)
}

// TestIRQuickCompileDynamicEquivalence is the property-based half of the
// harness: for random small (spec, prior) pairs, the compiled engine
// must serve every sample (all shapes here are within the gates) and
// produce the bit-identical estimate to the scalar dynamic engine, and
// the compiled transcript sampler must match the dynamic walk draw for
// draw.
func TestIRQuickCompileDynamicEquivalence(t *testing.T) {
	property := func(seed uint64) bool {
		spec := quickSpec{
			k:         1 + int(qmix(seed)%3),
			inputSize: 2 + int(qmix(seed+1)%3),
			alphabet:  2 + int(qmix(seed+2)%2),
			rounds:    1 + int(qmix(seed+3)%3),
			seed:      seed,
		}
		prior := quickPrior{
			k:         spec.k,
			inputSize: spec.inputSize,
			auxSize:   1 + int(qmix(seed+4)%3),
			seed:      seed,
		}
		const samples = 150
		col := telemetry.NewCollector()
		compiled, err := core.EstimateCICOpts(spec, prior, rng.New(seed), samples,
			core.EstimateOptions{Workers: 2, Recorder: col})
		if err != nil {
			t.Logf("seed %x: compiled estimate: %v", seed, err)
			return false
		}
		if got := col.Snapshot()[telemetry.CoreCICIRSamples]; got != samples {
			t.Logf("seed %x: IR engine served %v samples, want %d", seed, got, samples)
			return false
		}
		scalar, err := core.EstimateCICOpts(spec, prior, rng.New(seed), samples,
			core.EstimateOptions{Workers: 2, DisableIR: true, DisableLanes: true})
		if err != nil {
			t.Logf("seed %x: scalar estimate: %v", seed, err)
			return false
		}
		if *compiled != *scalar {
			t.Logf("seed %x: compiled %+v != scalar %+v", seed, compiled, scalar)
			return false
		}
		if math.IsNaN(compiled.Mean) || compiled.MeanBits <= 0 {
			t.Logf("seed %x: degenerate estimate %+v", seed, compiled)
			return false
		}
		x := make([]int, spec.k)
		for i := range x {
			x[i] = int(qmix(seed+uint64(i)+7) % uint64(spec.inputSize))
		}
		fast, slow := rng.New(seed+8), rng.New(seed+8)
		fm, sm := fast.Mark(), slow.Mark()
		ft, fl, err := core.SampleTranscript(spec, x, fast)
		if err != nil {
			t.Logf("seed %x: compiled transcript: %v", seed, err)
			return false
		}
		st, sl, err := core.SampleTranscript(plainSpec{spec}, x, slow)
		if err != nil {
			t.Logf("seed %x: dynamic transcript: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(ft, st) || !reflect.DeepEqual(fl.Q, sl.Q) ||
			fl.Bits != sl.Bits || fl.Output != sl.Output ||
			fast.DrawsSince(fm) != slow.DrawsSince(sm) {
			t.Logf("seed %x: transcript walk diverged: %v vs %v", seed, ft, st)
			return false
		}
		return true
	}
	if err := quick.Check(property, nil); err != nil {
		t.Fatal(err)
	}
}
