package core

import (
	"fmt"
	"sync"

	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

// execScratch is the reusable per-shard state of the Monte-Carlo estimator:
// the sampled input tuple, the per-player prior rows, the Lemma 3 q-factor
// rows, and the transcript path. A shard acquires one scratch, runs all of
// its samples through it, and releases it — the steady-state sample loop
// then performs zero heap allocations (pinned by TestCICSampleLoopZeroAllocs).
//
// The q rows live in one contiguous backing array (qBack) so a whole
// sample's factor state is a single cache-friendly block; the row headers
// are views carved out once at construction. The prior rows are refilled
// per sample via prob.Dist.ProbsInto, which reuses each row's capacity.
//
// Lifecycle rules (see DESIGN.md §8): everything in a scratch is valid only
// until the next sample — samples overwrite all of it; nothing retained
// across shards except via the pool, which hands a scratch to at most one
// shard at a time.
type execScratch struct {
	k         int
	inputSize int
	x         []int       // sampled input tuple, one entry per player
	priors    [][]float64 // per-player prior row views (refilled per sample)
	q         [][]float64 // q-factor row views into qBack
	qBack     []float64
	t         Transcript // transcript path, length reset per sample
}

func newExecScratch(k, inputSize int) *execScratch {
	sc := &execScratch{
		k:         k,
		inputSize: inputSize,
		x:         make([]int, k),
		priors:    make([][]float64, k),
		q:         make([][]float64, k),
		qBack:     make([]float64, k*inputSize),
	}
	for i := 0; i < k; i++ {
		sc.priors[i] = make([]float64, 0, inputSize)
		sc.q[i] = sc.qBack[i*inputSize : (i+1)*inputSize : (i+1)*inputSize]
	}
	return sc
}

// execScratchPool recycles scratches across shards. Shapes are constant
// within one estimation (and almost always across an experiment), so the
// shape check nearly always hits; a mismatched scratch is simply dropped.
var execScratchPool sync.Pool

func getExecScratch(k, inputSize int) *execScratch {
	if v := execScratchPool.Get(); v != nil {
		sc := v.(*execScratch)
		if sc.k == k && sc.inputSize == inputSize {
			return sc
		}
	}
	return newExecScratch(k, inputSize)
}

func putExecScratch(sc *execScratch) { execScratchPool.Put(sc) }

// runSample draws one estimator sample: (z, x) from the prior, a simulated
// execution maintaining the q-factors, and the exact inner quantity
// Σ_i D(posterior_i ‖ prior_i) at the sampled transcript. It is the
// zero-allocation inner loop of EstimateCICWorkers.
func (sc *execScratch) runSample(spec Spec, prior Prior, zd prob.Dist, src *rng.Source) (inner float64, bits int, err error) {
	z := zd.Sample(src)
	for i := 0; i < sc.k; i++ {
		d, err := prior.PlayerDist(z, i)
		if err != nil {
			return 0, 0, err
		}
		sc.priors[i] = d.ProbsInto(sc.priors[i])
		sc.x[i] = d.Sample(src)
	}
	for i := range sc.qBack {
		sc.qBack[i] = 1
	}
	bits, err = sc.sampleExecution(spec, src)
	if err != nil {
		return 0, 0, err
	}
	inner, err = qDivergenceSum(sc.q, sc.priors)
	if err != nil {
		return 0, 0, err
	}
	return inner, bits, nil
}

// sampleExecution simulates one run of spec on input sc.x, updating the
// q-factor rows in place, and returns the communication in bits. The
// transcript grows in sc.t, whose capacity persists across samples.
func (sc *execScratch) sampleExecution(spec Spec, src *rng.Source) (int, error) {
	t := sc.t[:0]
	bits := 0
	for step := 0; ; step++ {
		if step > defaultMaxDepth {
			return 0, fmt.Errorf("%w (%d)", ErrTreeDepth, defaultMaxDepth)
		}
		speaker, done, err := spec.NextSpeaker(t)
		if err != nil {
			return 0, fmt.Errorf("core: NextSpeaker after %v: %w", t, err)
		}
		if done {
			sc.t = t
			return bits, nil
		}
		if speaker < 0 || speaker >= len(sc.x) {
			return 0, fmt.Errorf("core: invalid speaker %d", speaker)
		}
		trueDist, err := spec.MessageDist(t, speaker, sc.x[speaker])
		if err != nil {
			return 0, err
		}
		sym := trueDist.Sample(src)
		// Counterfactual q-updates for every possible input of the speaker.
		qRow := sc.q[speaker]
		for v := range qRow {
			d, err := spec.MessageDist(t, speaker, v)
			if err != nil {
				return 0, err
			}
			qRow[v] *= d.P(sym)
		}
		symBits, err := spec.MessageBits(t, sym)
		if err != nil {
			return 0, err
		}
		bits += symBits
		t = append(t, sym)
	}
}
