package core

import (
	"fmt"

	"broadcastic/internal/blackboard"
	"broadcastic/internal/encoding"
	"broadcastic/internal/rng"
)

// Bridge between the two protocol layers: any Spec (the declarative form
// the information engine analyzes) can be executed on the blackboard
// runtime (the operational form with physical bit accounting). This keeps
// the two views honest against each other — the board's bit count must
// equal the Spec's declared charging.
//
// The bridge encodes each symbol in ⌈log₂ alphabet⌉ bits, so it requires
// the Spec's MessageBits to equal that fixed width (true for every
// protocol in this repository; specs with variable-length charging would
// need their own prefix-free encoder to run physically).

// BoardRun is the result of executing a Spec on the blackboard.
type BoardRun struct {
	Board      *blackboard.Board
	Transcript Transcript
	Output     int
}

// RunSpecOnBlackboard executes spec on the given inputs over the broadcast
// runtime. private provides the players' randomness (may be nil for
// deterministic specs).
func RunSpecOnBlackboard(spec Spec, x []int, private *rng.Source) (*BoardRun, error) {
	if len(x) != spec.NumPlayers() {
		return nil, fmt.Errorf("core: input has %d entries, want %d", len(x), spec.NumPlayers())
	}

	// Shared decoded transcript: a pure function of the board (each message
	// is one fixed-width symbol).
	var t Transcript

	sched := blackboard.FuncScheduler(func(b *blackboard.Board) (int, bool, error) {
		speaker, done, err := spec.NextSpeaker(t)
		if err != nil {
			return 0, false, err
		}
		return speaker, done, nil
	})

	players := make([]blackboard.Player, spec.NumPlayers())
	for i := range players {
		i := i
		players[i] = blackboard.FuncPlayer(func(b *blackboard.Board) (blackboard.Message, error) {
			alphabet, err := spec.MessageAlphabet(t)
			if err != nil {
				return blackboard.Message{}, err
			}
			if alphabet < 1 {
				return blackboard.Message{}, fmt.Errorf("core: non-positive alphabet %d", alphabet)
			}
			dist, err := spec.MessageDist(t, i, x[i])
			if err != nil {
				return blackboard.Message{}, err
			}
			var sym int
			if private != nil {
				sym = dist.Sample(private)
			} else {
				// Deterministic specs have a point-mass message.
				support := dist.Support()
				if len(support) != 1 {
					return blackboard.Message{}, fmt.Errorf("core: randomized spec needs a private randomness source")
				}
				sym = support[0]
			}
			width := encoding.FixedWidth(uint64(alphabet))
			declared, err := spec.MessageBits(t, sym)
			if err != nil {
				return blackboard.Message{}, err
			}
			if declared != width {
				return blackboard.Message{}, fmt.Errorf(
					"core: spec charges %d bits for symbol %d but the fixed-width encoding needs %d",
					declared, sym, width)
			}
			var w encoding.BitWriter
			if err := w.WriteBits(uint64(sym), width); err != nil {
				return blackboard.Message{}, err
			}
			t = append(t, sym)
			return blackboard.NewMessage(i, &w), nil
		})
	}

	res, err := blackboard.Run(sched, players, nil, blackboard.Limits{MaxMessages: defaultMaxDepth})
	if err != nil {
		return nil, fmt.Errorf("core: spec on blackboard: %w", err)
	}
	out, err := spec.Output(t)
	if err != nil {
		return nil, err
	}
	return &BoardRun{Board: res.Board, Transcript: t, Output: out}, nil
}
