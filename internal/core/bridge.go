package core

import (
	"fmt"

	"broadcastic/internal/blackboard"
	"broadcastic/internal/encoding"
	"broadcastic/internal/rng"
)

// Bridge between the two protocol layers: any Spec (the declarative form
// the information engine analyzes) can be executed on the blackboard
// runtime (the operational form with physical bit accounting). This keeps
// the two views honest against each other — the board's bit count must
// equal the Spec's declared charging.
//
// The bridge encodes each symbol in ⌈log₂ alphabet⌉ bits, so it requires
// the Spec's MessageBits to equal that fixed width (true for every
// protocol in this repository; specs with variable-length charging would
// need their own prefix-free encoder to run physically).

// BoardRun is the result of executing a Spec on the blackboard.
type BoardRun struct {
	Board      *blackboard.Board
	Transcript Transcript
	Output     int
}

// SpecProtocol is a Spec instantiated on concrete inputs as blackboard
// scheduler and players, so any runtime that drives the blackboard state
// machine — the sequential blackboard.Run or the concurrent
// internal/netrun — can execute it.
//
// The scheduler and players share the decoded transcript through this
// struct; a SpecProtocol is single-use (one execution) and not itself
// concurrency-safe — concurrent runtimes serialize scheduler and player
// calls (netrun holds its run mutex across both).
type SpecProtocol struct {
	spec    Spec
	x       []int
	private *rng.Source

	// t is the decoded transcript: a pure function of the board (each
	// message is one fixed-width symbol).
	t Transcript
}

// NewSpecProtocol binds spec to the players' inputs. private provides the
// players' randomness (may be nil for deterministic specs).
func NewSpecProtocol(spec Spec, x []int, private *rng.Source) (*SpecProtocol, error) {
	if len(x) != spec.NumPlayers() {
		return nil, fmt.Errorf("core: input has %d entries, want %d", len(x), spec.NumPlayers())
	}
	return &SpecProtocol{spec: spec, x: x, private: private}, nil
}

// Scheduler returns the blackboard scheduler driving the spec.
func (sp *SpecProtocol) Scheduler() blackboard.Scheduler {
	return blackboard.FuncScheduler(func(b *blackboard.Board) (int, bool, error) {
		speaker, done, err := sp.spec.NextSpeaker(sp.t)
		if err != nil {
			return 0, false, err
		}
		return speaker, done, nil
	})
}

// Players returns the blackboard players, one per input entry.
func (sp *SpecProtocol) Players() []blackboard.Player {
	players := make([]blackboard.Player, sp.spec.NumPlayers())
	for i := range players {
		i := i
		players[i] = blackboard.FuncPlayer(func(b *blackboard.Board) (blackboard.Message, error) {
			return sp.speak(i)
		})
	}
	return players
}

// Limits returns the execution bound the sequential runtime uses.
func (sp *SpecProtocol) Limits() blackboard.Limits {
	return blackboard.Limits{MaxMessages: defaultMaxDepth}
}

// Transcript returns the symbols decoded so far.
func (sp *SpecProtocol) Transcript() Transcript { return sp.t }

// Output evaluates the spec's output on the transcript accumulated by the
// execution.
func (sp *SpecProtocol) Output() (int, error) { return sp.spec.Output(sp.t) }

func (sp *SpecProtocol) speak(i int) (blackboard.Message, error) {
	alphabet, err := sp.spec.MessageAlphabet(sp.t)
	if err != nil {
		return blackboard.Message{}, err
	}
	if alphabet < 1 {
		return blackboard.Message{}, fmt.Errorf("core: non-positive alphabet %d", alphabet)
	}
	dist, err := sp.spec.MessageDist(sp.t, i, sp.x[i])
	if err != nil {
		return blackboard.Message{}, err
	}
	var sym int
	if sp.private != nil {
		sym = dist.Sample(sp.private)
	} else {
		// Deterministic specs have a point-mass message.
		support := dist.Support()
		if len(support) != 1 {
			return blackboard.Message{}, fmt.Errorf("core: randomized spec needs a private randomness source")
		}
		sym = support[0]
	}
	width := encoding.FixedWidth(uint64(alphabet))
	declared, err := sp.spec.MessageBits(sp.t, sym)
	if err != nil {
		return blackboard.Message{}, err
	}
	if declared != width {
		return blackboard.Message{}, fmt.Errorf(
			"core: spec charges %d bits for symbol %d but the fixed-width encoding needs %d",
			declared, sym, width)
	}
	var w encoding.BitWriter
	if err := w.WriteBits(uint64(sym), width); err != nil {
		return blackboard.Message{}, err
	}
	sp.t = append(sp.t, sym)
	return blackboard.NewMessage(i, &w), nil
}

// RunSpecOnBlackboard executes spec on the given inputs over the broadcast
// runtime. private provides the players' randomness (may be nil for
// deterministic specs).
//
// Keyed specs within the compiler's gates run through the table-driven
// ir.BoardExec instead of the interface-interpreting SpecProtocol; the
// board contents, transcript, output and private draw stream are
// identical (one uniform per message with a private source), and any
// condition the fast path cannot serve falls back here so the dynamic
// bridge surfaces its usual errors.
func RunSpecOnBlackboard(spec Spec, x []int, private *rng.Source) (*BoardRun, error) {
	if e := irBoardExec(spec, x, private); e != nil {
		res, err := blackboard.Run(e.Scheduler(), e.Players(), nil, blackboard.Limits{MaxMessages: defaultMaxDepth})
		if err != nil {
			return nil, fmt.Errorf("core: spec on blackboard: %w", err)
		}
		out, err := e.Output()
		if err != nil {
			return nil, err
		}
		return &BoardRun{Board: res.Board, Transcript: Transcript(e.Transcript()), Output: out}, nil
	}
	sp, err := NewSpecProtocol(spec, x, private)
	if err != nil {
		return nil, err
	}
	res, err := blackboard.Run(sp.Scheduler(), sp.Players(), nil, sp.Limits())
	if err != nil {
		return nil, fmt.Errorf("core: spec on blackboard: %w", err)
	}
	out, err := sp.Output()
	if err != nil {
		return nil, err
	}
	return &BoardRun{Board: res.Board, Transcript: sp.Transcript(), Output: out}, nil
}
