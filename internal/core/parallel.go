package core

import (
	"fmt"
	"strconv"
	"sync"

	"broadcastic/internal/ir"
	"broadcastic/internal/prob"
)

// ParallelSpec runs n independent copies of a base protocol back to back
// (copy 0's full execution, then copy 1's, ...). Player inputs are tuples,
// encoded base-|base input|: copy c of player i's input sits in digit c of
// x_i. Combined with ProductOfPriors this is the task T(f^n, ε) of
// Section 6: Theorem 4's proof core is that for product priors the
// information cost of the n-fold task is exactly n times the single-copy
// cost, which ExactCosts verifies numerically on this spec.
//
// (Sequential rather than round-interleaved execution changes neither the
// information cost nor the communication of the *uncompressed* protocol —
// the copies are independent — it only matters for the round count that
// compression overhead scales with, which internal/compress handles
// separately.)
type ParallelSpec struct {
	base   Spec
	copies int
	memos  sync.Pool // *splitMemo
}

// splitMemo caches the split-walk state at the end of one transcript, so
// sequential stepping (each call's transcript extending the last) resumes
// in O(1) amortized base.NextSpeaker calls instead of replaying the whole
// prefix — the difference between O(L) and O(L²) interface calls per
// dynamic protocol walk. c and start are the copy executing at len(t) and
// the index where its local transcript begins (c == copies when every
// copy finished). Memos are pooled, never shared mid-call, and validated
// by an integer prefix compare, so a mismatching transcript just falls
// back to the from-scratch walk with identical results.
type splitMemo struct {
	t     []int
	c     int
	start int
}

// NewParallelSpec wraps a base spec into its n-fold parallel version. The
// tuple input space is baseInputSize^copies, so keep both small for exact
// analysis.
func NewParallelSpec(base Spec, copies int) (*ParallelSpec, error) {
	if base == nil {
		return nil, fmt.Errorf("core: nil base spec")
	}
	if copies < 1 {
		return nil, fmt.Errorf("core: copies %d < 1", copies)
	}
	size := 1
	for c := 0; c < copies; c++ {
		if size > 1<<20/base.InputSize() {
			return nil, fmt.Errorf("core: tuple input space %d^%d too large", base.InputSize(), copies)
		}
		size *= base.InputSize()
	}
	return &ParallelSpec{base: base, copies: copies}, nil
}

// NumPlayers implements Spec.
func (p *ParallelSpec) NumPlayers() int { return p.base.NumPlayers() }

// InputSize implements Spec.
func (p *ParallelSpec) InputSize() int {
	size := 1
	for c := 0; c < p.copies; c++ {
		size *= p.base.InputSize()
	}
	return size
}

// split replays the combined transcript, returning the index of the copy
// currently executing and that copy's own transcript so far. done reports
// that every copy has finished. A pooled memo of the previous call's walk
// state makes sequential stepping O(1) amortized: only the transcript's
// new suffix is walked through the base spec.
func (p *ParallelSpec) split(t Transcript) (copyIdx int, sub Transcript, done bool, err error) {
	m, _ := p.memos.Get().(*splitMemo)
	if m == nil {
		m = &splitMemo{}
	}
	c, start, pos := 0, 0, 0
	if n := len(m.t); n <= len(t) && prefixEq(m.t, t) {
		c, start, pos = m.c, m.start, n
	}
	for c < p.copies {
		for {
			_, finished, err := p.base.NextSpeaker(t[start:pos])
			if err != nil {
				p.memos.Put(m)
				return 0, nil, false, err
			}
			if finished {
				break
			}
			if pos == len(t) {
				m.t = append(m.t[:0], t...)
				m.c, m.start = c, start
				p.memos.Put(m)
				return c, t[start:pos], false, nil
			}
			pos++
		}
		c++
		start = pos
	}
	if pos != len(t) {
		p.memos.Put(m)
		return 0, nil, false, fmt.Errorf("core: parallel transcript continues past final copy")
	}
	m.t = append(m.t[:0], t...)
	m.c, m.start = c, start
	p.memos.Put(m)
	return p.copies, nil, true, nil
}

func prefixEq(prefix []int, t Transcript) bool {
	for i, v := range prefix {
		if t[i] != v {
			return false
		}
	}
	return true
}

// digit extracts copy c's input from a tuple value.
func (p *ParallelSpec) digit(input, c int) int {
	base := p.base.InputSize()
	for i := 0; i < c; i++ {
		input /= base
	}
	return input % base
}

// NextSpeaker implements Spec.
func (p *ParallelSpec) NextSpeaker(t Transcript) (int, bool, error) {
	_, sub, done, err := p.split(t)
	if err != nil {
		return 0, false, err
	}
	if done {
		return 0, true, nil
	}
	return p.base.NextSpeaker(sub)
}

// MessageAlphabet implements Spec.
func (p *ParallelSpec) MessageAlphabet(t Transcript) (int, error) {
	_, sub, done, err := p.split(t)
	if err != nil {
		return 0, err
	}
	if done {
		return 0, fmt.Errorf("core: alphabet after halt")
	}
	return p.base.MessageAlphabet(sub)
}

// MessageDist implements Spec.
func (p *ParallelSpec) MessageDist(t Transcript, player, input int) (prob.Dist, error) {
	c, sub, done, err := p.split(t)
	if err != nil {
		return prob.Dist{}, err
	}
	if done {
		return prob.Dist{}, fmt.Errorf("core: message after halt")
	}
	return p.base.MessageDist(sub, player, p.digit(input, c))
}

// MessageBits implements Spec.
func (p *ParallelSpec) MessageBits(t Transcript, symbol int) (int, error) {
	_, sub, done, err := p.split(t)
	if err != nil {
		return 0, err
	}
	if done {
		return 0, fmt.Errorf("core: bits after halt")
	}
	return p.base.MessageBits(sub, symbol)
}

// Output implements Spec: the outputs of the copies packed base-2 (copy c
// in bit c); callers needing richer outputs can re-split the transcript.
func (p *ParallelSpec) Output(t Transcript) (int, error) {
	pos := 0
	out := 0
	for c := 0; c < p.copies; c++ {
		var local Transcript
		for {
			_, finished, err := p.base.NextSpeaker(local)
			if err != nil {
				return 0, err
			}
			if finished {
				break
			}
			if pos == len(t) {
				return 0, fmt.Errorf("core: output of incomplete parallel transcript")
			}
			local = append(local, t[pos])
			pos++
		}
		v, err := p.base.Output(local)
		if err != nil {
			return 0, err
		}
		if v != 0 {
			out |= 1 << uint(c)
		}
	}
	return out, nil
}

// IRKey composes the base spec's compiled-IR identity with the copy
// count. An unkeyed base (no IRKey, or an empty one) makes the wrapper
// unkeyed too — "" by convention — since the wrapper's behavior cannot be
// named without naming the base's.
func (p *ParallelSpec) IRKey() string {
	bk, ok := p.base.(ir.Keyer)
	if !ok {
		return ""
	}
	base := bk.IRKey()
	if base == "" {
		return ""
	}
	return "core.par/" + strconv.Itoa(p.copies) + "(" + base + ")"
}

var _ Spec = (*ParallelSpec)(nil)

// ProductOfPriors is the n-fold product of a base prior: inputs are tuples
// (digit c drawn from an independent instance of the base prior), and the
// auxiliary variable is the tuple of per-copy auxiliaries (digit c in
// base-auxSize position c).
type ProductOfPriors struct {
	base   Prior
	copies int
}

// NewProductOfPriors wraps a base prior into its n-fold product.
func NewProductOfPriors(base Prior, copies int) (*ProductOfPriors, error) {
	if base == nil {
		return nil, fmt.Errorf("core: nil base prior")
	}
	if copies < 1 {
		return nil, fmt.Errorf("core: copies %d < 1", copies)
	}
	auxSize, inputSize := 1, 1
	for c := 0; c < copies; c++ {
		if auxSize > 1<<20/base.AuxSize() || inputSize > 1<<20/base.InputSize() {
			return nil, fmt.Errorf("core: product prior too large at %d copies", copies)
		}
		auxSize *= base.AuxSize()
		inputSize *= base.InputSize()
	}
	return &ProductOfPriors{base: base, copies: copies}, nil
}

// NumPlayers implements Prior.
func (p *ProductOfPriors) NumPlayers() int { return p.base.NumPlayers() }

// InputSize implements Prior.
func (p *ProductOfPriors) InputSize() int {
	size := 1
	for c := 0; c < p.copies; c++ {
		size *= p.base.InputSize()
	}
	return size
}

// AuxSize implements Prior.
func (p *ProductOfPriors) AuxSize() int {
	size := 1
	for c := 0; c < p.copies; c++ {
		size *= p.base.AuxSize()
	}
	return size
}

// AuxProb implements Prior.
func (p *ProductOfPriors) AuxProb(z int) float64 {
	if z < 0 || z >= p.AuxSize() {
		return 0
	}
	pr := 1.0
	for c := 0; c < p.copies; c++ {
		pr *= p.base.AuxProb(z % p.base.AuxSize())
		z /= p.base.AuxSize()
	}
	return pr
}

// PlayerDist implements Prior: the product of the per-copy conditionals.
func (p *ProductOfPriors) PlayerDist(z, player int) (prob.Dist, error) {
	dists := make([]prob.Dist, p.copies)
	for c := 0; c < p.copies; c++ {
		d, err := p.base.PlayerDist(z%p.base.AuxSize(), player)
		if err != nil {
			return prob.Dist{}, err
		}
		dists[c] = d
		z /= p.base.AuxSize()
	}
	// Tuple value encoding: digit c has stride base.InputSize()^c.
	size := p.InputSize()
	w := make([]float64, size)
	baseSize := p.base.InputSize()
	for v := 0; v < size; v++ {
		pr := 1.0
		vv := v
		for c := 0; c < p.copies; c++ {
			pr *= dists[c].P(vv % baseSize)
			vv /= baseSize
		}
		w[v] = pr
	}
	return prob.NewDist(w)
}

// IRKey composes the base prior's compiled-IR identity with the copy
// count, mirroring ParallelSpec.IRKey.
func (p *ProductOfPriors) IRKey() string {
	bk, ok := p.base.(ir.Keyer)
	if !ok {
		return ""
	}
	base := bk.IRKey()
	if base == "" {
		return ""
	}
	return "core.prodprior/" + strconv.Itoa(p.copies) + "(" + base + ")"
}

var _ Prior = (*ProductOfPriors)(nil)
