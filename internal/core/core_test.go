package core_test

import (
	"errors"
	"math"
	"testing"

	"broadcastic/internal/andk"
	"broadcastic/internal/core"
	"broadcastic/internal/dist"
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

// uniformPrior is a k-player product prior with uniform bits and a trivial
// auxiliary variable.
func uniformPrior(t *testing.T, k int) *dist.ProductPrior {
	t.Helper()
	marginals := make([]prob.Dist, k)
	for i := range marginals {
		d, err := prob.Bernoulli(0.5)
		if err != nil {
			t.Fatal(err)
		}
		marginals[i] = d
	}
	p, err := dist.NewProductPrior(marginals)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEnumerateSequentialAND(t *testing.T) {
	// The sequential AND_k protocol has exactly k+1 transcripts:
	// 0, 10, 110, ..., 1^{k-1}0, 1^k.
	for _, k := range []int{1, 2, 3, 5, 8} {
		spec, err := andk.NewSequential(k)
		if err != nil {
			t.Fatal(err)
		}
		leaves, err := core.EnumerateTranscripts(spec, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		if len(leaves) != k+1 {
			t.Fatalf("k=%d: %d transcripts, want %d", k, len(leaves), k+1)
		}
		for _, leaf := range leaves {
			if leaf.Bits != len(leaf.Transcript) {
				t.Fatalf("bits %d != transcript length %d", leaf.Bits, len(leaf.Transcript))
			}
		}
	}
}

func TestLeafQFactorsMatchDirectProbability(t *testing.T) {
	// For each leaf and each input, Π_i Q[i][x_i] must equal the true
	// execution probability (here: 1 if the deterministic run produces the
	// transcript, else 0).
	spec, _ := andk.NewSequential(3)
	leaves, err := core.EnumerateTranscripts(spec, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range core.AllBinaryInputs(3) {
		matches := 0
		for _, leaf := range leaves {
			p, err := leaf.ProbGivenInput(x)
			if err != nil {
				t.Fatal(err)
			}
			if p != 0 && p != 1 {
				t.Fatalf("deterministic protocol has fractional leaf prob %v", p)
			}
			if p == 1 {
				matches++
				// Verify the transcript really is the run on x.
				want := runSequential(x)
				if len(want) != len(leaf.Transcript) {
					t.Fatalf("input %v matched transcript %v, want %v", x, leaf.Transcript, want)
				}
				for i := range want {
					if want[i] != leaf.Transcript[i] {
						t.Fatalf("input %v matched transcript %v, want %v", x, leaf.Transcript, want)
					}
				}
			}
		}
		if matches != 1 {
			t.Fatalf("input %v matches %d transcripts, want exactly 1", x, matches)
		}
	}
}

func runSequential(x []int) []int {
	var t []int
	for _, v := range x {
		t = append(t, v)
		if v == 0 {
			break
		}
	}
	return t
}

func TestExactCostsUniformBroadcastAll(t *testing.T) {
	// BroadcastAll on uniform independent bits reveals everything:
	// I(Π; X) = H(X) = k bits, and communication is exactly k.
	const k = 4
	spec, _ := andk.NewBroadcastAll(k)
	prior := uniformPrior(t, k)
	report, err := core.ExactCosts(spec, prior, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(report.CIC-float64(k)) > 1e-9 {
		t.Fatalf("CIC = %v, want %d", report.CIC, k)
	}
	if math.Abs(report.ExternalIC-float64(k)) > 1e-9 {
		t.Fatalf("ExternalIC = %v, want %d", report.ExternalIC, k)
	}
	if report.WorstCaseBits != k {
		t.Fatalf("WorstCaseBits = %d, want %d", report.WorstCaseBits, k)
	}
	if math.Abs(report.ExpectedBits-float64(k)) > 1e-9 {
		t.Fatalf("ExpectedBits = %v, want %d", report.ExpectedBits, k)
	}
	if report.NumTranscripts != 1<<k {
		t.Fatalf("NumTranscripts = %d, want %d", report.NumTranscripts, 1<<k)
	}
}

func TestExactCICMatchesJointCrossCheck(t *testing.T) {
	// The factored CIC computation must agree with the brute-force joint
	// computation on every protocol/prior pair we can enumerate.
	mu4, err := dist.NewMu(4)
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string]core.Spec{}
	seq, _ := andk.NewSequential(4)
	specs["sequential"] = seq
	all, _ := andk.NewBroadcastAll(4)
	specs["broadcastAll"] = all
	lazy, _ := andk.NewLazy(4, 0.3, 0)
	specs["lazy"] = lazy

	for name, spec := range specs {
		report, err := core.ExactCosts(spec, mu4, core.TreeLimits{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		joint, err := core.ExactCICJoint(spec, mu4, core.TreeLimits{})
		if err != nil {
			t.Fatalf("%s joint: %v", name, err)
		}
		if math.Abs(report.CIC-joint) > 1e-9 {
			t.Fatalf("%s: factored CIC %v != joint CIC %v", name, report.CIC, joint)
		}
	}
}

func TestExternalICAtMostEntropyOfTranscript(t *testing.T) {
	// IC(Π) = I(Π;X) <= H(Π) <= log2(#transcripts) for the sequential
	// protocol (whose transcripts form a prefix-free set of size k+1).
	const k = 6
	spec, _ := andk.NewSequential(k)
	mu, _ := dist.NewMu(k)
	report, err := core.ExactCosts(spec, mu, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	bound := math.Log2(float64(k + 1))
	if report.ExternalIC > bound+1e-9 {
		t.Fatalf("ExternalIC %v exceeds H(Π) bound %v", report.ExternalIC, bound)
	}
	if report.ExternalIC <= 0 {
		t.Fatalf("ExternalIC = %v, want positive", report.ExternalIC)
	}
}

func TestCICDominatedByExternalIC(t *testing.T) {
	// Under μ, conditioning on Z only removes information:
	// I(Π;X|Z) <= I(Π;X) + H(Z)… but more usefully here, both must be
	// nonnegative and CC must dominate both (each bit reveals at most one
	// bit). Verify IC <= expected bits.
	for _, k := range []int{3, 5, 7} {
		spec, _ := andk.NewSequential(k)
		mu, _ := dist.NewMu(k)
		report, err := core.ExactCosts(spec, mu, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		if report.CIC < 0 || report.ExternalIC < 0 {
			t.Fatalf("negative information cost: %+v", report)
		}
		if report.ExternalIC > report.ExpectedBits+1e-9 {
			t.Fatalf("k=%d: ExternalIC %v exceeds expected communication %v",
				k, report.ExternalIC, report.ExpectedBits)
		}
	}
}

func TestCICGrowsWithLogK(t *testing.T) {
	// Theorem 1's shape: CIC_μ(sequential AND_k) grows with log k.
	var prev float64
	for _, k := range []int{3, 6, 12} {
		spec, _ := andk.NewSequential(k)
		mu, _ := dist.NewMu(k)
		report, err := core.ExactCosts(spec, mu, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		if report.CIC <= prev {
			t.Fatalf("CIC not increasing: k=%d gives %v after %v", k, report.CIC, prev)
		}
		prev = report.CIC
	}
}

func TestEstimateCICMatchesExact(t *testing.T) {
	// The Monte-Carlo estimator must agree with exact enumeration within a
	// few standard errors.
	const k = 5
	spec, _ := andk.NewSequential(k)
	mu, _ := dist.NewMu(k)
	exact, err := core.ExactCosts(spec, mu, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.EstimateCIC(spec, mu, rng.New(7), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(est.Mean - exact.CIC); diff > 5*est.StdErr+1e-6 {
		t.Fatalf("estimate %v ± %v vs exact %v", est.Mean, est.StdErr, exact.CIC)
	}
	if math.Abs(est.MeanBits-exact.ExpectedBits) > 0.2 {
		t.Fatalf("mean bits %v vs exact %v", est.MeanBits, exact.ExpectedBits)
	}
}

func TestEstimateCICValidation(t *testing.T) {
	spec, _ := andk.NewSequential(3)
	mu, _ := dist.NewMu(3)
	if _, err := core.EstimateCIC(spec, mu, nil, 10); err == nil {
		t.Fatal("nil source succeeded")
	}
	if _, err := core.EstimateCIC(spec, mu, rng.New(1), 0); err == nil {
		t.Fatal("zero samples succeeded")
	}
	mu4, _ := dist.NewMu(4)
	if _, err := core.EstimateCIC(spec, mu4, rng.New(1), 10); err == nil {
		t.Fatal("player-count mismatch succeeded")
	}
}

func TestOutputProbSequential(t *testing.T) {
	spec, _ := andk.NewSequential(3)
	p, err := core.OutputProb(spec, []int{1, 1, 1}, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("Pr[output 1 | 1^k] = %v", p)
	}
	p, err = core.OutputProb(spec, []int{1, 0, 1}, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("Pr[output 1 | 101] = %v", p)
	}
	if _, err := core.OutputProb(spec, []int{1, 1}, core.TreeLimits{}); err == nil {
		t.Fatal("short input succeeded")
	}
}

func TestWorstCaseErrorSequentialIsZero(t *testing.T) {
	spec, _ := andk.NewSequential(4)
	e, err := core.WorstCaseError(spec, core.AllBinaryInputs(4), core.AndFunc, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Fatalf("sequential protocol has error %v", e)
	}
}

func TestWorstCaseErrorLazy(t *testing.T) {
	// Lazy with give-up output 0 errs exactly δ on input 1^k and 0
	// elsewhere.
	const delta = 0.25
	spec, err := andk.NewLazy(4, delta, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.WorstCaseError(spec, core.AllBinaryInputs(4), core.AndFunc, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-delta) > 1e-12 {
		t.Fatalf("lazy worst-case error = %v, want %v", e, delta)
	}
}

func TestTruncatedErrorsOnHiddenZero(t *testing.T) {
	// Truncated to m=2 of k=4: input with the only zero at player 3 is
	// answered 1, which is wrong.
	spec, _ := andk.NewTruncated(4, 2)
	e, err := core.WorstCaseError(spec, [][]int{{1, 1, 1, 0}}, core.AndFunc, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if e != 1 {
		t.Fatalf("truncated protocol error on hidden zero = %v, want 1", e)
	}
}

func TestTreeLimitsEnforced(t *testing.T) {
	spec, _ := andk.NewSequential(10)
	_, err := core.EnumerateTranscripts(spec, core.TreeLimits{MaxDepth: 3})
	if !errors.Is(err, core.ErrTreeDepth) {
		t.Fatalf("err = %v, want ErrTreeDepth", err)
	}
	_, err = core.EnumerateTranscripts(spec, core.TreeLimits{MaxLeaves: 2})
	if !errors.Is(err, core.ErrTreeLeaves) {
		t.Fatalf("err = %v, want ErrTreeLeaves", err)
	}
}

func TestSampleTranscriptDeterministicProtocol(t *testing.T) {
	spec, _ := andk.NewSequential(4)
	x := []int{1, 1, 0, 1}
	tr, leaf, err := core.SampleTranscript(spec, x, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 0}
	if len(tr) != len(want) {
		t.Fatalf("transcript %v, want %v", tr, want)
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("transcript %v, want %v", tr, want)
		}
	}
	if leaf.Output != 0 {
		t.Fatalf("output %d, want 0", leaf.Output)
	}
	if leaf.Bits != 3 {
		t.Fatalf("bits %d, want 3", leaf.Bits)
	}
	if _, _, err := core.SampleTranscript(spec, []int{1}, rng.New(3)); err == nil {
		t.Fatal("short input succeeded")
	}
	if _, _, err := core.SampleTranscript(spec, x, nil); err == nil {
		t.Fatal("nil source succeeded")
	}
}

func TestMuNDirectSumShape(t *testing.T) {
	// Sanity for the E5 machinery: the μ^n prior plugs into ExactCosts for
	// a per-coordinate sequential DISJ spec is exercised in the disj
	// package; here check Mu^1 equals Mu.
	mu, _ := dist.NewMu(3)
	mun, err := dist.NewMuN(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := andk.NewSequential(3)
	r1, err := core.ExactCosts(spec, mu, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.ExactCosts(spec, mun, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.CIC-r2.CIC) > 1e-9 {
		t.Fatalf("μ CIC %v != μ^1 CIC %v", r1.CIC, r2.CIC)
	}
}

func TestTranscriptString(t *testing.T) {
	if got := (core.Transcript{}).String(); got != "ε" {
		t.Fatalf("empty transcript = %q", got)
	}
	if got := (core.Transcript{1, 0, 12}).String(); got != "1.0.12" {
		t.Fatalf("transcript string = %q", got)
	}
	if got := (core.Transcript{-3}).String(); got != "-3" {
		t.Fatalf("negative symbol string = %q", got)
	}
}
