package core

import (
	"fmt"
	"math"

	"broadcastic/internal/info"
	"broadcastic/internal/prob"
)

// CostReport aggregates the exact quantities computed from a transcript
// tree under a prior.
type CostReport struct {
	// CIC is the conditional information cost I(Π; X | D) in bits
	// (Definition 6).
	CIC float64
	// ExternalIC is the external information cost I(Π; X) in bits
	// (Definition 5), computed against the prior's marginal on X.
	ExternalIC float64
	// ExpectedBits is the expected communication under the prior.
	ExpectedBits float64
	// WorstCaseBits is the worst-case communication over all transcripts.
	WorstCaseBits int
	// NumTranscripts is the number of reachable complete transcripts.
	NumTranscripts int
}

// ExactCosts enumerates the transcript tree of spec and computes the exact
// information and communication costs under prior. Feasible whenever the
// transcript tree and the input domain are small (the regime the paper's
// Section 4 analysis operates in; larger instances use EstimateCIC).
func ExactCosts(spec Spec, prior Prior, lim TreeLimits) (*CostReport, error) {
	if err := validateShapes(spec, prior); err != nil {
		return nil, err
	}
	leaves, err := EnumerateTranscripts(spec, lim)
	if err != nil {
		return nil, err
	}
	return exactCostsFromLeaves(leaves, prior)
}

func exactCostsFromLeaves(leaves []*Leaf, prior Prior) (*CostReport, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("core: protocol has no complete transcripts")
	}
	k := prior.NumPlayers()
	zDist, err := auxDist(prior)
	if err != nil {
		return nil, fmt.Errorf("core: auxiliary distribution: %w", err)
	}

	report := &CostReport{NumTranscripts: len(leaves)}
	for _, leaf := range leaves {
		if leaf.Bits > report.WorstCaseBits {
			report.WorstCaseBits = leaf.Bits
		}
	}

	// Conditional information cost and expected bits, via the factored
	// posterior formula (see the package comment).
	for z := 0; z < prior.AuxSize(); z++ {
		pz := zDist.P(z)
		if pz == 0 {
			continue
		}
		leafProbs, err := LeafDistGivenAux(leaves, prior, z)
		if err != nil {
			return nil, err
		}
		priors := make([][]float64, k)
		for i := 0; i < k; i++ {
			d, err := prior.PlayerDist(z, i)
			if err != nil {
				return nil, err
			}
			priors[i] = d.Probs()
		}
		for li, leaf := range leaves {
			pl := leafProbs[li]
			if pl == 0 {
				continue
			}
			report.ExpectedBits += pz * pl * float64(leaf.Bits)
			divSum, err := posteriorDivergenceSum(leaf, priors)
			if err != nil {
				return nil, err
			}
			report.CIC += pz * pl * divSum
		}
	}

	// External information cost I(Π; X): build the joint over
	// (input tuple, leaf) by marginalizing the auxiliary variable out.
	ext, err := externalICFromLeaves(leaves, prior, zDist)
	if err != nil {
		return nil, err
	}
	report.ExternalIC = ext
	return report, nil
}

// posteriorDivergenceSum computes Σ_i D(posterior_i ‖ prior_i) at a leaf,
// where posterior_i(v) ∝ prior_i(v)·Q[i][v].
func posteriorDivergenceSum(leaf *Leaf, priors [][]float64) (float64, error) {
	return qDivergenceSum(leaf.Q, priors)
}

// qDivergenceSum is posteriorDivergenceSum on bare q-factor rows; the
// Monte-Carlo hot path calls it directly so no Leaf needs to be built per
// sample. It delegates to info.QDivergenceSum, which the compiled-IR
// leaf-table builder also calls — sharing the exact float-op order is
// what pins the two execution paths bit-identical.
func qDivergenceSum(q [][]float64, priors [][]float64) (float64, error) {
	return info.QDivergenceSum(q, priors)
}

// externalICFromLeaves computes I(Π; X) exactly by enumerating all input
// tuples. The input-tuple space has InputSize^k points; callers should keep
// it small (the exact engine's intended regime).
func externalICFromLeaves(leaves []*Leaf, prior Prior, zDist prob.Dist) (float64, error) {
	k := prior.NumPlayers()
	inputSize := prior.InputSize()
	tuples := 1
	for i := 0; i < k; i++ {
		if tuples > 1<<22/inputSize {
			return 0, fmt.Errorf("core: input-tuple space %d^%d too large for exact external IC", inputSize, k)
		}
		tuples *= inputSize
	}

	// Marginal prior over tuples: Pr[x] = Σ_z p(z) Π_i prior_i(x_i | z).
	marginal := make([]float64, tuples)
	for z := 0; z < prior.AuxSize(); z++ {
		pz := zDist.P(z)
		if pz == 0 {
			continue
		}
		playerDists := make([][]float64, k)
		for i := 0; i < k; i++ {
			d, err := prior.PlayerDist(z, i)
			if err != nil {
				return 0, err
			}
			playerDists[i] = d.Probs()
		}
		x := make([]int, k)
		for tIdx := 0; tIdx < tuples; tIdx++ {
			decodeTuple(tIdx, inputSize, x)
			p := pz
			for i, v := range x {
				p *= playerDists[i][v]
			}
			marginal[tIdx] += p
		}
	}

	// I(Π; X) = Σ_x Pr[x] Σ_ℓ Pr[ℓ|x] log( Pr[ℓ|x] / Pr[ℓ] ).
	leafMarginal := make([]float64, len(leaves))
	x := make([]int, k)
	for tIdx := 0; tIdx < tuples; tIdx++ {
		px := marginal[tIdx]
		if px == 0 {
			continue
		}
		decodeTuple(tIdx, inputSize, x)
		for li, leaf := range leaves {
			pl, err := leaf.ProbGivenInput(x)
			if err != nil {
				return 0, err
			}
			leafMarginal[li] += px * pl
		}
	}
	mi := 0.0
	for tIdx := 0; tIdx < tuples; tIdx++ {
		px := marginal[tIdx]
		if px == 0 {
			continue
		}
		decodeTuple(tIdx, inputSize, x)
		for li, leaf := range leaves {
			pl, err := leaf.ProbGivenInput(x)
			if err != nil {
				return 0, err
			}
			if pl == 0 {
				continue
			}
			mi += px * pl * math.Log2(pl/leafMarginal[li])
		}
	}
	if mi < 0 && mi > -1e-10 {
		mi = 0
	}
	return mi, nil
}

// decodeTuple writes the inputSize-ary digits of tIdx into x (player 0 in
// the least significant digit).
func decodeTuple(tIdx, inputSize int, x []int) {
	for i := range x {
		x[i] = tIdx % inputSize
		tIdx /= inputSize
	}
}

// ExactCICJoint computes I(Π; X | D) by brute-force joint tables over
// (input tuple, leaf) per auxiliary value. It is exponentially slower than
// the factored path in ExactCosts and exists to cross-check it.
func ExactCICJoint(spec Spec, prior Prior, lim TreeLimits) (float64, error) {
	if err := validateShapes(spec, prior); err != nil {
		return 0, err
	}
	leaves, err := EnumerateTranscripts(spec, lim)
	if err != nil {
		return 0, err
	}
	k := prior.NumPlayers()
	inputSize := prior.InputSize()
	tuples := 1
	for i := 0; i < k; i++ {
		if tuples > 1<<20/inputSize {
			return 0, fmt.Errorf("core: joint cross-check infeasible at %d^%d tuples", inputSize, k)
		}
		tuples *= inputSize
	}
	zDist, err := auxDist(prior)
	if err != nil {
		return 0, err
	}
	total := 0.0
	x := make([]int, k)
	for z := 0; z < prior.AuxSize(); z++ {
		pz := zDist.P(z)
		if pz == 0 {
			continue
		}
		playerDists := make([][]float64, k)
		for i := 0; i < k; i++ {
			d, err := prior.PlayerDist(z, i)
			if err != nil {
				return 0, err
			}
			playerDists[i] = d.Probs()
		}
		joint, err := info.EmptyJoint(tuples, len(leaves))
		if err != nil {
			return 0, err
		}
		mass := false
		for tIdx := 0; tIdx < tuples; tIdx++ {
			decodeTuple(tIdx, inputSize, x)
			px := 1.0
			for i, v := range x {
				px *= playerDists[i][v]
			}
			if px == 0 {
				continue
			}
			for li, leaf := range leaves {
				pl, err := leaf.ProbGivenInput(x)
				if err != nil {
					return 0, err
				}
				if pl == 0 {
					continue
				}
				if err := joint.Add(tIdx, li, px*pl); err != nil {
					return 0, err
				}
				mass = true
			}
		}
		if !mass {
			return 0, fmt.Errorf("core: zero transcript mass at z=%d", z)
		}
		if err := joint.NormalizeInPlace(); err != nil {
			return 0, err
		}
		mi, err := joint.MutualInformation()
		if err != nil {
			return 0, err
		}
		total += pz * mi
	}
	return total, nil
}

// OutputProb returns Pr[Π(x) outputs 1] by exact enumeration.
func OutputProb(spec Spec, x []int, lim TreeLimits) (float64, error) {
	if len(x) != spec.NumPlayers() {
		return 0, fmt.Errorf("core: input has %d entries, want %d", len(x), spec.NumPlayers())
	}
	leaves, err := EnumerateTranscripts(spec, lim)
	if err != nil {
		return 0, err
	}
	p1 := 0.0
	total := 0.0
	for _, leaf := range leaves {
		pl, err := leaf.ProbGivenInput(x)
		if err != nil {
			return 0, err
		}
		total += pl
		if leaf.Output == 1 {
			p1 += pl
		}
	}
	if math.Abs(total-1) > 1e-6 {
		return 0, fmt.Errorf("core: transcript probabilities on input sum to %v", total)
	}
	return p1 / total, nil
}

// WorstCaseError returns the maximum error probability of spec over the
// given inputs, against the target function f.
func WorstCaseError(spec Spec, inputs [][]int, f func(x []int) int, lim TreeLimits) (float64, error) {
	leaves, err := EnumerateTranscripts(spec, lim)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for _, x := range inputs {
		want := f(x)
		errP := 0.0
		total := 0.0
		for _, leaf := range leaves {
			pl, err := leaf.ProbGivenInput(x)
			if err != nil {
				return 0, err
			}
			total += pl
			if leaf.Output != want {
				errP += pl
			}
		}
		if math.Abs(total-1) > 1e-6 {
			return 0, fmt.Errorf("core: transcript probabilities on input %v sum to %v", x, total)
		}
		if e := errP / total; e > worst {
			worst = e
		}
	}
	return worst, nil
}

// AllBinaryInputs enumerates {0,1}^k, for use with WorstCaseError on
// small AND_k instances.
func AllBinaryInputs(k int) [][]int {
	out := make([][]int, 0, 1<<uint(k))
	for mask := 0; mask < 1<<uint(k); mask++ {
		x := make([]int, k)
		for i := range x {
			x[i] = mask >> uint(i) & 1
		}
		out = append(out, x)
	}
	return out
}

// AndFunc is AND_k as a target function on binary inputs.
func AndFunc(x []int) int {
	for _, v := range x {
		if v == 0 {
			return 0
		}
	}
	return 1
}
