package core

import (
	"errors"
	"fmt"
)

// Leaf is one complete transcript of a Spec, annotated with the Lemma 3
// factors: Q[i][v] is q_{i,v}^ℓ, the product over player i's messages of
// the probability of emitting them when holding input v. The probability of
// reaching this leaf on input x is Π_i Q[i][x_i].
type Leaf struct {
	Transcript Transcript
	Q          [][]float64
	Bits       int
	Output     int
}

// ProbGivenInput returns Pr[Π = ℓ | X = x] = Π_i Q[i][x_i].
func (l *Leaf) ProbGivenInput(x []int) (float64, error) {
	if len(x) != len(l.Q) {
		return 0, fmt.Errorf("core: input has %d entries, want %d", len(x), len(l.Q))
	}
	p := 1.0
	for i, v := range x {
		if v < 0 || v >= len(l.Q[i]) {
			return 0, fmt.Errorf("core: input x[%d]=%d outside domain of size %d", i, v, len(l.Q[i]))
		}
		p *= l.Q[i][v]
	}
	return p, nil
}

// TreeLimits guards the enumeration against specs with huge or infinite
// transcript trees. Zero fields mean "use a generous default".
type TreeLimits struct {
	MaxDepth  int // maximum number of messages per transcript
	MaxLeaves int // maximum number of complete transcripts
}

// Defaults used when TreeLimits fields are zero.
const (
	defaultMaxDepth  = 4096
	defaultMaxLeaves = 1 << 22
)

// Enumeration errors.
var (
	ErrTreeDepth  = errors.New("core: transcript tree exceeds depth limit")
	ErrTreeLeaves = errors.New("core: transcript tree exceeds leaf limit")
)

// leafMeta is the index-based record of one complete transcript taken
// during enumeration: offsets into the shared symbol arena plus the scalar
// annotations. Slice views are materialized only after the walk finishes,
// because the arenas relocate while they grow.
type leafMeta struct {
	tStart, tEnd int
	bits, output int
}

// EnumerateTranscripts walks the complete transcript tree of spec,
// returning one Leaf per reachable complete transcript. A transcript is
// reachable if some input gives it positive probability, i.e. every
// player's q-row has a positive entry.
//
// The leaves are stored flattened: all transcripts live in one contiguous
// symbol arena, all q-factor rows in one contiguous float arena, and the
// Leaf structs themselves in a single slice, with the returned pointers
// indexing into it. During the walk each completed transcript is recorded
// as arena offsets only (leafMeta); the slice views handed out are carved
// once at the end, after the arenas stop moving. This keeps per-leaf heap
// allocations amortized-constant instead of O(k) and lays sibling leaves
// out adjacently for the exact-cost sweeps that scan them.
func EnumerateTranscripts(spec Spec, lim TreeLimits) ([]*Leaf, error) {
	if lim.MaxDepth == 0 {
		lim.MaxDepth = defaultMaxDepth
	}
	if lim.MaxLeaves == 0 {
		lim.MaxLeaves = defaultMaxLeaves
	}
	k := spec.NumPlayers()
	inputSize := spec.InputSize()
	if k < 1 || inputSize < 1 {
		return nil, fmt.Errorf("core: invalid spec shape k=%d inputSize=%d", k, inputSize)
	}

	var (
		syms  []int      // transcript arena
		qVals []float64  // q-row arena, k·inputSize values per leaf
		metas []leafMeta // index links, one per leaf
	)
	q := make([][]float64, k)
	for i := range q {
		q[i] = make([]float64, inputSize)
		for v := range q[i] {
			q[i][v] = 1
		}
	}

	var walk func(t Transcript, bits int) error
	walk = func(t Transcript, bits int) error {
		if len(t) > lim.MaxDepth {
			return fmt.Errorf("%w (%d)", ErrTreeDepth, lim.MaxDepth)
		}
		speaker, done, err := spec.NextSpeaker(t)
		if err != nil {
			return fmt.Errorf("core: NextSpeaker after %v: %w", t, err)
		}
		if done {
			if len(metas) >= lim.MaxLeaves {
				return fmt.Errorf("%w (%d)", ErrTreeLeaves, lim.MaxLeaves)
			}
			out, err := spec.Output(t)
			if err != nil {
				return fmt.Errorf("core: Output of %v: %w", t, err)
			}
			metas = append(metas, leafMeta{
				tStart: len(syms),
				tEnd:   len(syms) + len(t),
				bits:   bits,
				output: out,
			})
			syms = append(syms, t...)
			for i := range q {
				qVals = append(qVals, q[i]...)
			}
			return nil
		}
		if speaker < 0 || speaker >= k {
			return fmt.Errorf("core: NextSpeaker returned invalid player %d", speaker)
		}
		alphabet, err := spec.MessageAlphabet(t)
		if err != nil {
			return fmt.Errorf("core: MessageAlphabet after %v: %w", t, err)
		}
		if alphabet < 1 {
			return fmt.Errorf("core: non-positive alphabet %d after %v", alphabet, t)
		}
		// Per-input message distributions for the speaker.
		dists := make([]probVec, inputSize)
		for v := 0; v < inputSize; v++ {
			d, err := spec.MessageDist(t, speaker, v)
			if err != nil {
				return fmt.Errorf("core: MessageDist(player=%d, input=%d) after %v: %w", speaker, v, t, err)
			}
			if d.Size() != alphabet {
				return fmt.Errorf("core: MessageDist support %d, alphabet %d", d.Size(), alphabet)
			}
			dists[v] = d.Probs()
		}
		saved := make([]float64, inputSize)
		copy(saved, q[speaker])
		for sym := 0; sym < alphabet; sym++ {
			// Update the speaker's q-row; prune symbols no input can emit
			// along this prefix.
			reachable := false
			for v := 0; v < inputSize; v++ {
				q[speaker][v] = saved[v] * dists[v][sym]
				if q[speaker][v] > 0 {
					reachable = true
				}
			}
			if !reachable {
				continue
			}
			symBits, err := spec.MessageBits(t, sym)
			if err != nil {
				return fmt.Errorf("core: MessageBits(%d) after %v: %w", sym, t, err)
			}
			if symBits < 0 {
				return fmt.Errorf("core: negative message bits %d", symBits)
			}
			if err := walk(append(t, sym), bits+symBits); err != nil {
				return err
			}
		}
		copy(q[speaker], saved)
		return nil
	}

	if err := walk(nil, 0); err != nil {
		return nil, err
	}

	// Materialize the Leaf views now that the arenas are final. Full slice
	// expressions cap every view so no append through a Leaf can reach its
	// neighbor's storage.
	leaves := make([]Leaf, len(metas))
	rows := make([][]float64, len(metas)*k)
	out := make([]*Leaf, len(metas))
	rowSize := k * inputSize
	for li, m := range metas {
		lr := rows[li*k : (li+1)*k : (li+1)*k]
		for i := 0; i < k; i++ {
			s := li*rowSize + i*inputSize
			lr[i] = qVals[s : s+inputSize : s+inputSize]
		}
		leaves[li] = Leaf{
			Transcript: syms[m.tStart:m.tEnd:m.tEnd],
			Q:          lr,
			Bits:       m.bits,
			Output:     m.output,
		}
		out[li] = &leaves[li]
	}
	return out, nil
}

type probVec = []float64

// LeafDistGivenAux returns the distribution over leaves conditioned on the
// auxiliary value z: Pr[ℓ | z] = Π_i ( Σ_v prior_i(v|z) · Q_ℓ[i][v] ).
// The returned slice is index-aligned with leaves and sums to 1.
func LeafDistGivenAux(leaves []*Leaf, prior Prior, z int) ([]float64, error) {
	k := prior.NumPlayers()
	playerDists := make([]probVec, k)
	for i := 0; i < k; i++ {
		d, err := prior.PlayerDist(z, i)
		if err != nil {
			return nil, fmt.Errorf("core: PlayerDist(z=%d, i=%d): %w", z, i, err)
		}
		playerDists[i] = d.Probs()
	}
	out := make([]float64, len(leaves))
	total := 0.0
	for li, leaf := range leaves {
		if len(leaf.Q) != k {
			return nil, fmt.Errorf("core: leaf has %d q-rows, prior has %d players", len(leaf.Q), k)
		}
		p := 1.0
		for i := 0; i < k; i++ {
			s := 0.0
			for v, pv := range playerDists[i] {
				if v >= len(leaf.Q[i]) {
					return nil, fmt.Errorf("core: prior input domain %d exceeds leaf domain %d", len(playerDists[i]), len(leaf.Q[i]))
				}
				s += pv * leaf.Q[i][v]
			}
			p *= s
		}
		out[li] = p
		total += p
	}
	if total < 1-1e-6 || total > 1+1e-6 {
		return nil, fmt.Errorf("core: leaf probabilities sum to %v under z=%d; protocol tree incomplete", total, z)
	}
	// Renormalize away rounding drift so downstream sums stay exact.
	for li := range out {
		out[li] /= total
	}
	return out, nil
}
