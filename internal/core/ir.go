package core

import (
	"broadcastic/internal/ir"
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
)

// Compiled-IR hook: keyed (spec, prior) pairs compile once into a flat
// ir.Program (cached process-wide by identity key) and every backend —
// the estimator shard loop, single-transcript sampling, the blackboard
// bridge — executes the tables instead of re-interpreting the Spec
// interface. All fast paths are pinned bit-identical to the dynamic
// engines (see internal/ir and the ir_equiv tests); anything unkeyed or
// outside the compiler's eligibility gates keeps the dynamic path.

// irSpec adapts a Spec to ir.Spec: Transcript is a named []int, so the
// adapter is a zero-cost type conversion per method.
type irSpec struct{ s Spec }

func (a irSpec) NumPlayers() int { return a.s.NumPlayers() }
func (a irSpec) InputSize() int  { return a.s.InputSize() }
func (a irSpec) NextSpeaker(t []int) (int, bool, error) {
	return a.s.NextSpeaker(Transcript(t))
}
func (a irSpec) MessageAlphabet(t []int) (int, error) {
	return a.s.MessageAlphabet(Transcript(t))
}
func (a irSpec) MessageDist(t []int, player, input int) (prob.Dist, error) {
	return a.s.MessageDist(Transcript(t), player, input)
}
func (a irSpec) MessageBits(t []int, symbol int) (int, error) {
	return a.s.MessageBits(Transcript(t), symbol)
}
func (a irSpec) Output(t []int) (int, error) {
	return a.s.Output(Transcript(t))
}

// irSpecProgram returns the cached control-surface program for spec, or
// nil when spec is unkeyed (no IRKey, or an IRKey of "" — the convention
// for wrappers whose base is unkeyed) or ineligible to compile.
func irSpecProgram(spec Spec, rec telemetry.Recorder) *ir.Program {
	sk, ok := spec.(ir.Keyer)
	if !ok {
		return nil
	}
	key := sk.IRKey()
	if key == "" {
		return nil
	}
	return ir.SpecProgram(irSpec{spec}, key, rec)
}

// irEstimatorProgram returns the cached estimator program for the keyed
// (spec, prior) pair, or nil when either side is unkeyed or the pair is
// ineligible. A core.Prior satisfies ir.Prior structurally, so only the
// spec needs the adapter.
func irEstimatorProgram(spec Spec, prior Prior, rec telemetry.Recorder) *ir.Program {
	sk, ok := spec.(ir.Keyer)
	if !ok {
		return nil
	}
	pk, ok := prior.(ir.Keyer)
	if !ok {
		return nil
	}
	skey, pkey := sk.IRKey(), pk.IRKey()
	if skey == "" || pkey == "" {
		return nil
	}
	p := ir.EstimatorProgram(irSpec{spec}, prior, skey, pkey, rec)
	if p == nil || !p.Estimator() {
		return nil
	}
	return p
}

// irBoardExec returns a table-driven blackboard execution for spec on x,
// or nil when the dynamic SpecProtocol must run instead: unkeyed or
// ineligible spec, input outside the compiled domain, a non-fixed-width
// program, or a randomized program without private randomness. The gates
// are exactly the conditions under which the dynamic bridge completes
// without error, so falling back preserves every error surface.
func irBoardExec(spec Spec, x []int, private *rng.Source) *ir.BoardExec {
	prog := irSpecProgram(spec, nil)
	if prog == nil || len(x) != prog.NumPlayers() || !prog.FixedWidth() {
		return nil
	}
	if private == nil && !prog.Deterministic() {
		return nil
	}
	for _, v := range x {
		if v < 0 || v >= prog.InputSize() {
			return nil
		}
	}
	e, err := ir.NewBoardExec(prog, x, private)
	if err != nil {
		return nil
	}
	return e
}
