package core

import (
	"sync"

	"broadcastic/internal/batch"
	"broadcastic/internal/ir"
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

// Lane estimator: the 64-lane batch engine's hook into EstimateCICWorkers.
//
// For bit-valued protocols that certify a batch.LaneSpec (andk's
// Sequential, BroadcastAll, Truncated) under a prior exposing two-point
// conditional rows (dist.Mu), one estimator sample collapses to: prefetch
// the sample's k+1 raw RNG outputs, pick the auxiliary value, threshold
// each speaking player's input bit against its row, and add the
// precomputed divergence term of the announced bit. No per-step interface
// calls, no q-factor updates, no log2 in the loop — yet the result is
// bit-identical to the scalar engine, because:
//
//   - Draw alignment: a scalar sample consumes 1 + k + T uniforms (aux,
//     inputs, point-mass messages). The lane path prefetches the first
//     k+1 raw outputs with rng.Uint64s, converts them through rng.U01
//     (the exact Float64 mapping), and rng.Skips the T message draws —
//     same stream positions, same values, same final state.
//   - Sampling: prob.Dist.SampleU and batch.TwoPoint share the linear
//     scan's thresholds, so every aux value and input bit matches.
//   - Scoring: for a spoken two-point row the scalar posterior sum
//     contributes exactly log2(1/P(bit)) (precomputed in TwoPoint), and
//     for an unspoken row whose mass sums to exactly 1.0 it contributes
//     exactly +0.0 — MakeTwoPoint rejects rows violating that, and
//     adding +0.0 is a bit-exact no-op, so skipping unspoken players
//     preserves the scalar accumulation order bit for bit.
//
// Anything failing the eligibility checks falls back to the scalar shard
// loop; the shard layout is shared, so worker-count invariance holds on
// both paths. DESIGN.md §10 documents the full contract.

// lanePlan is the precomputed per-estimation state of the lane engine:
// the certified protocol shape, the prior's row table in TwoPoint form,
// and the auxiliary distribution. Built once per estimation, read-only
// across shards (safe for concurrent workers).
type lanePlan struct {
	ls   batch.LaneSpec
	lp   batch.LanePrior // nil when rowTable was fed by a compiled program
	zd   prob.Dist
	rows []batch.TwoPoint
	// rowTable, when non-nil, maps (z, player) to the row index directly:
	// auxSize×k, built once at plan time — from the compiled ir.Program's
	// tables when one is supplied, by walking LaneRowsOf otherwise — so
	// the sample loop skips the per-sample LaneRowsOf interface call.
	rowTable []uint8
}

// newLanePlan returns the lane plan for (spec, prior), or nil when any
// eligibility condition fails — nil means "use the scalar engine", never
// an error. The conditions mirror exactly what the bit-identity argument
// above needs; validateShapes has already run. A non-nil prog (a compiled
// estimator program for the same pair) supplies the auxiliary
// distribution and conditional rows from its tables, cutting every
// interface call out of plan construction.
func newLanePlan(spec Spec, prior Prior, prog *ir.Program) *lanePlan {
	kern, ok := spec.(batch.Kernel)
	if !ok {
		return nil
	}
	ls, ok := kern.LaneKernel()
	if !ok || ls.Validate() != nil {
		return nil
	}
	if ls.Players != spec.NumPlayers() || spec.InputSize() != 2 {
		return nil
	}
	// The scalar engine rejects transcripts deeper than defaultMaxDepth;
	// keeping the cap within it means the lane path never has to
	// replicate that error surface.
	if ls.SpeakCap > defaultMaxDepth {
		return nil
	}
	if prog != nil {
		zd, rowsD, rowTable, ok := prog.EstimatorRows()
		if !ok || len(rowsD) == 0 {
			return nil
		}
		rows := make([]batch.TwoPoint, len(rowsD))
		for i, row := range rowsD {
			tp, err := batch.MakeTwoPoint(row)
			if err != nil {
				return nil
			}
			rows[i] = tp
		}
		return &lanePlan{ls: ls, zd: zd, rows: rows, rowTable: rowTable}
	}
	lp, ok := prior.(batch.LanePrior)
	if !ok {
		return nil
	}
	laneRows := lp.LaneRows()
	if len(laneRows) == 0 || len(laneRows) > 256 {
		return nil
	}
	rows := make([]batch.TwoPoint, len(laneRows))
	for i, row := range laneRows {
		tp, err := batch.MakeTwoPoint(row)
		if err != nil {
			return nil
		}
		rows[i] = tp
	}
	zd, err := auxDist(prior)
	if err != nil {
		return nil // the scalar shard will surface the error
	}
	plan := &lanePlan{ls: ls, lp: lp, zd: zd, rows: rows}
	if auxSize := prior.AuxSize(); auxSize >= 1 && auxSize <= 1<<20/ls.Players {
		rt := make([]uint8, auxSize*ls.Players)
		for z := 0; z < auxSize; z++ {
			lp.LaneRowsOf(z, rt[z*ls.Players:(z+1)*ls.Players])
		}
		plan.rowTable = rt
	}
	return plan
}

// laneScratch is the lane engine's per-shard buffer pair: the prefetched
// raw RNG outputs of one sample (aux + k inputs) and the per-player row
// indices. Pooled like execScratch so the steady-state sample loop is
// allocation-free (pinned by TestLaneSampleLoopZeroAllocs).
type laneScratch struct {
	k      int
	raw    []uint64
	rowIdx []uint8
}

var laneScratchPool sync.Pool

func getLaneScratch(k int) *laneScratch {
	if v := laneScratchPool.Get(); v != nil {
		sc := v.(*laneScratch)
		if sc.k == k {
			return sc
		}
	}
	return &laneScratch{k: k, raw: make([]uint64, k+1), rowIdx: make([]uint8, k)}
}

func putLaneScratch(sc *laneScratch) { laneScratchPool.Put(sc) }

// laneShard is the lane engine's replacement for cicShard: same shard
// stream, same sample count, bit-identical cicPartial.
func laneShard(plan *lanePlan, src *rng.Source, count int) cicPartial {
	sc := getLaneScratch(plan.ls.Players)
	defer putLaneScratch(sc)

	speakCap := plan.ls.SpeakCap
	halt := plan.ls.HaltOnZero
	rows := plan.rows

	var p cicPartial
	for s := 0; s < count; s++ {
		// One batch fill covers the sample's aux draw and all k input
		// draws; the message draws are skipped below once the transcript
		// length is known (point-mass messages ignore their uniform).
		src.Uint64s(sc.raw)
		z := plan.zd.SampleU(rng.U01(sc.raw[0]))
		rowIdx := sc.rowIdx
		if plan.rowTable != nil {
			k := plan.ls.Players
			rowIdx = plan.rowTable[z*k : z*k+k]
		} else {
			plan.lp.LaneRowsOf(z, rowIdx)
		}

		inner := 0.0
		steps := 0
		for i := 0; i < speakCap; i++ {
			r := &rows[rowIdx[i]]
			steps++
			// Row mass sums to exactly 1 and uniforms live in [0,1), so
			// the two-point threshold never reaches the fallback branch:
			// the bit is 0 iff u < P0, exactly as the scalar linear scan.
			if rng.U01(sc.raw[i+1]) < r.P0 {
				inner += r.D0
				if halt {
					break
				}
			} else {
				inner += r.D1
			}
		}
		src.Skip(uint64(steps))

		p.sum += inner
		p.sumSq += inner * inner
		p.bitsSum += float64(steps)
	}
	return p
}
