package core_test

import (
	"testing"

	"broadcastic/internal/andk"
	"broadcastic/internal/core"
	"broadcastic/internal/dist"
	"broadcastic/internal/rng"
)

func BenchmarkEnumerateTranscripts(b *testing.B) {
	spec, _ := andk.NewSequential(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.EnumerateTranscripts(spec, core.TreeLimits{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactCosts(b *testing.B) {
	spec, _ := andk.NewSequential(10)
	mu, _ := dist.NewMu(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExactCosts(spec, mu, core.TreeLimits{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateCICK256(b *testing.B) {
	spec, _ := andk.NewSequential(256)
	mu, _ := dist.NewMu(256)
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateCIC(spec, mu, src, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateExternalICK64(b *testing.B) {
	spec, _ := andk.NewSequential(64)
	mu, _ := dist.NewMu(64)
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateExternalIC(spec, mu, src, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampleTranscript(b *testing.B) {
	spec, _ := andk.NewSequential(64)
	mu, _ := dist.NewMu(64)
	src := rng.New(1)
	_, x, err := core.SamplePrior(mu, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.SampleTranscript(spec, x, src); err != nil {
			b.Fatal(err)
		}
	}
}
