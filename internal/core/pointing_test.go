package core_test

import (
	"math"
	"testing"

	"broadcastic/internal/andk"
	"broadcastic/internal/core"
	"broadcastic/internal/dist"
	"broadcastic/internal/rng"
)

func TestAlphasSequential(t *testing.T) {
	// For the sequential protocol's transcript 1^j 0 (first zero at player
	// j): players before j have α = 0 (they revealed a one), player j has
	// α = +Inf (revealed a zero), later players have α = 1 (silent).
	const k = 4
	spec, _ := andk.NewSequential(k)
	leaves, err := core.EnumerateTranscripts(spec, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range leaves {
		alphas, err := core.Alphas(leaf)
		if err != nil {
			t.Fatal(err)
		}
		last := len(leaf.Transcript) - 1
		allOnes := leaf.Transcript[last] == 1
		for i, a := range alphas {
			switch {
			case i < last || (allOnes && i <= last):
				if a != 0 {
					t.Fatalf("transcript %v: player %d α=%v, want 0", leaf.Transcript, i, a)
				}
			case i == last: // wrote the zero
				if !math.IsInf(a, 1) {
					t.Fatalf("transcript %v: zero-writer α=%v, want +Inf", leaf.Transcript, a)
				}
			default: // never spoke
				if a != 1 {
					t.Fatalf("transcript %v: silent player %d α=%v, want 1", leaf.Transcript, i, a)
				}
			}
		}
	}
}

func TestPosteriorZeroFormulaMatchesBayes(t *testing.T) {
	// E9: Lemma 4's closed form α/(α+k−1) must equal the posterior computed
	// directly from Bayes' rule under μ conditioned on Z ≠ i. We check it
	// on the Lazy protocol, whose transcripts mix deterministic and random
	// moves.
	const k = 5
	spec, err := andk.NewLazy(k, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		t.Fatal(err)
	}
	leaves, err := core.EnumerateTranscripts(spec, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range leaves {
		alphas, err := core.Alphas(leaf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			// Direct Bayes: Pr[X_i=0 | Π=ℓ, Z≠i]
			//   ∝ Σ_{z≠i} Pr[z] Pr[X_i=0|z] q_{i,0} Π_{j≠i} Σ_v Pr[X_j=v|z] q_{j,v}.
			num, den := 0.0, 0.0
			for z := 0; z < k; z++ {
				if z == i {
					continue
				}
				pz := mu.AuxProb(z)
				rest := 1.0
				for j := 0; j < k; j++ {
					if j == i {
						continue
					}
					dj, err := mu.PlayerDist(z, j)
					if err != nil {
						t.Fatal(err)
					}
					rest *= dj.P(0)*leaf.Q[j][0] + dj.P(1)*leaf.Q[j][1]
				}
				di, err := mu.PlayerDist(z, i)
				if err != nil {
					t.Fatal(err)
				}
				num += pz * rest * di.P(0) * leaf.Q[i][0]
				den += pz * rest * (di.P(0)*leaf.Q[i][0] + di.P(1)*leaf.Q[i][1])
			}
			if den == 0 {
				continue // transcript unreachable when Z ≠ i
			}
			bayes := num / den
			formula := core.PosteriorZeroGivenNotSpecial(alphas[i], k)
			if math.Abs(bayes-formula) > 1e-9 {
				t.Fatalf("transcript %v player %d: Bayes %v vs Lemma 4 formula %v",
					leaf.Transcript, i, bayes, formula)
			}
		}
	}
}

func TestPosteriorZeroEdgeCases(t *testing.T) {
	if got := core.PosteriorZeroGivenNotSpecial(math.Inf(1), 10); got != 1 {
		t.Fatalf("posterior at α=+Inf = %v", got)
	}
	if got := core.PosteriorZeroGivenNotSpecial(0, 10); got != 0 {
		t.Fatalf("posterior at α=0 = %v", got)
	}
	if !math.IsNaN(core.PosteriorZeroGivenNotSpecial(-1, 10)) {
		t.Fatal("negative α did not produce NaN")
	}
	if !math.IsNaN(core.PosteriorZeroGivenNotSpecial(1, 1)) {
		t.Fatal("k=1 did not produce NaN")
	}
	// α = k-1 gives posterior 1/2.
	if got := core.PosteriorZeroGivenNotSpecial(9, 10); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("posterior at α=k-1 = %v, want 0.5", got)
	}
}

func TestSliceTranscriptProbSumsToOne(t *testing.T) {
	// π_c is a distribution over transcripts for each c: Σ_ℓ π_c(ℓ) = 1.
	for _, k := range []int{3, 5, 7} {
		spec, _ := andk.NewSequential(k)
		leaves, err := core.EnumerateTranscripts(spec, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		for c := 1; c <= 3 && c <= k; c++ {
			total := 0.0
			for _, leaf := range leaves {
				p, err := core.SliceTranscriptProb(leaf, c)
				if err != nil {
					t.Fatal(err)
				}
				total += p
			}
			if math.Abs(total-1) > 1e-9 {
				t.Fatalf("k=%d c=%d: π_c sums to %v", k, c, total)
			}
		}
	}
}

func TestSliceTranscriptProbAgainstBruteForce(t *testing.T) {
	// Cross-check the DP against explicit enumeration of zero-sets.
	const k = 5
	spec, err := andk.NewLazy(k, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	leaves, err := core.EnumerateTranscripts(spec, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range leaves {
		for c := 0; c <= k; c++ {
			dp, err := core.SliceTranscriptProb(leaf, c)
			if err != nil {
				t.Fatal(err)
			}
			brute := bruteSliceProb(t, leaf, c)
			if math.Abs(dp-brute) > 1e-10 {
				t.Fatalf("transcript %v c=%d: DP %v vs brute %v", leaf.Transcript, c, dp, brute)
			}
		}
	}
	if _, err := core.SliceTranscriptProb(leaves[0], -1); err == nil {
		t.Fatal("negative c succeeded")
	}
	if _, err := core.SliceTranscriptProb(leaves[0], k+1); err == nil {
		t.Fatal("c > k succeeded")
	}
}

func bruteSliceProb(t *testing.T, leaf *core.Leaf, c int) float64 {
	t.Helper()
	k := len(leaf.Q)
	sum := 0.0
	count := 0
	for mask := 0; mask < 1<<uint(k); mask++ {
		zeros := 0
		for i := 0; i < k; i++ {
			if mask>>uint(i)&1 == 1 {
				zeros++
			}
		}
		if zeros != c {
			continue
		}
		count++
		p := 1.0
		for i := 0; i < k; i++ {
			if mask>>uint(i)&1 == 1 {
				p *= leaf.Q[i][0]
			} else {
				p *= leaf.Q[i][1]
			}
		}
		sum += p
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

func TestAnalyzeGoodTranscriptsSequential(t *testing.T) {
	// E8 at unit scale: the zero-error sequential protocol should have all
	// of its π_2 mass on good, pointed transcripts — every output-0
	// transcript points at its zero-writer with α = +Inf.
	const k = 8
	spec, _ := andk.NewSequential(k)
	leaves, err := core.EnumerateTranscripts(spec, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	report, err := core.AnalyzeGoodTranscripts(leaves, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if report.MassB1 != 0 {
		t.Fatalf("zero-error protocol has B1 mass %v", report.MassB1)
	}
	if math.Abs(report.MassL-1) > 1e-9 {
		t.Fatalf("L mass = %v, want 1", report.MassL)
	}
	if math.Abs(report.MassPointed-1) > 1e-9 {
		t.Fatalf("pointed mass = %v, want 1", report.MassPointed)
	}
}

func TestAnalyzeGoodTranscriptsLazyErrorShowsUp(t *testing.T) {
	// A δ chunk of π_2 mass lands on the give-up transcript; with give-up
	// output 1 it is B1 mass (wrong on two-zero inputs), bounded by the
	// Lemma 5 accounting π_2(B_1) <= δ / μ(X_2).
	const k = 6
	const delta = 0.1
	spec, err := andk.NewLazy(k, delta, 1)
	if err != nil {
		t.Fatal(err)
	}
	leaves, err := core.EnumerateTranscripts(spec, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	report, err := core.AnalyzeGoodTranscripts(leaves, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(report.MassB1-delta) > 1e-9 {
		t.Fatalf("B1 mass = %v, want %v (the give-up transcript)", report.MassB1, delta)
	}
	if report.MassPointed < 1-delta-1e-9 {
		t.Fatalf("pointed mass = %v, want >= %v", report.MassPointed, 1-delta)
	}
}

func TestAnalyzeGoodTranscriptsValidation(t *testing.T) {
	if _, err := core.AnalyzeGoodTranscripts(nil, 10, 1); err == nil {
		t.Fatal("empty leaves succeeded")
	}
	spec, _ := andk.NewSequential(3)
	leaves, _ := core.EnumerateTranscripts(spec, core.TreeLimits{})
	if _, err := core.AnalyzeGoodTranscripts(leaves, 0, 1); err == nil {
		t.Fatal("C=0 succeeded")
	}
	if _, err := core.AnalyzeGoodTranscripts(leaves, 10, 0); err == nil {
		t.Fatal("c=0 succeeded")
	}
}

func TestPointedMassImpliesInformation(t *testing.T) {
	// The chain the proof follows: pointed π_2 mass p implies
	// CIC >= (p/2)·(p_post·log k − 1) up to the conditioning constants.
	// We verify the qualitative implication: protocols whose pointing mass
	// is 1 (sequential) have CIC that exceeds that of a protocol with
	// smaller pointing mass at the same k, here the Lazy protocol which
	// wastes δ of its mass.
	const k = 8
	mu, _ := dist.NewMu(k)
	seq, _ := andk.NewSequential(k)
	lazy, _ := andk.NewLazy(k, 0.5, 0)
	seqCost, err := core.ExactCosts(seq, mu, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	lazyCost, err := core.ExactCosts(lazy, mu, core.TreeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if lazyCost.CIC >= seqCost.CIC {
		t.Fatalf("lazy CIC %v not below sequential CIC %v", lazyCost.CIC, seqCost.CIC)
	}
}

func TestEstimateCICSequentialLargeK(t *testing.T) {
	// Smoke test that the sampler handles k beyond enumeration range and
	// produces a value consistent with Θ(log k) growth.
	const k = 256
	spec, _ := andk.NewSequential(k)
	mu, _ := dist.NewMu(k)
	est, err := core.EstimateCIC(spec, mu, rng.New(11), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean <= 1 {
		t.Fatalf("CIC estimate at k=256 = %v, suspiciously small", est.Mean)
	}
	if est.Mean > math.Log2(float64(k+1))+3 {
		t.Fatalf("CIC estimate %v above entropy bound %v", est.Mean, math.Log2(float64(k+1)))
	}
}
