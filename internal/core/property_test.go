package core_test

import (
	"math"
	"testing"

	"broadcastic/internal/core"
	"broadcastic/internal/encoding"
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

// randomSpec is an arbitrary randomized broadcast protocol with a fixed
// round schedule: at round r, player speakers[r] emits a symbol from an
// alphabet of size alphabets[r], with a distribution depending on its input
// AND on the parity of the transcript so far (so message behaviour is
// genuinely content-dependent, exercising the q-factor tracking).
type randomSpec struct {
	k, inputSize int
	speakers     []int
	alphabets    []int
	tables       [][][]prob.Dist // [round][parity][input]
}

func newRandomSpec(src *rng.Source, k, inputSize, rounds, maxAlphabet int) *randomSpec {
	s := &randomSpec{k: k, inputSize: inputSize}
	for r := 0; r < rounds; r++ {
		s.speakers = append(s.speakers, src.Intn(k))
		alpha := src.Intn(maxAlphabet) + 2
		s.alphabets = append(s.alphabets, alpha)
		byParity := make([][]prob.Dist, 2)
		for p := 0; p < 2; p++ {
			byParity[p] = make([]prob.Dist, inputSize)
			for v := 0; v < inputSize; v++ {
				w := make([]float64, alpha)
				for m := range w {
					w[m] = src.Float64() + 0.05 // keep supports full
				}
				d, err := prob.Normalize(w)
				if err != nil {
					panic(err)
				}
				byParity[p][v] = d
			}
		}
		s.tables = append(s.tables, byParity)
	}
	return s
}

func (s *randomSpec) NumPlayers() int { return s.k }
func (s *randomSpec) InputSize() int  { return s.inputSize }

func (s *randomSpec) parity(t core.Transcript) int {
	sum := 0
	for _, v := range t {
		sum += v
	}
	return sum % 2
}

func (s *randomSpec) NextSpeaker(t core.Transcript) (int, bool, error) {
	if len(t) >= len(s.speakers) {
		return 0, true, nil
	}
	return s.speakers[len(t)], false, nil
}

func (s *randomSpec) MessageAlphabet(t core.Transcript) (int, error) {
	if len(t) >= len(s.alphabets) {
		return 0, errPastEnd
	}
	return s.alphabets[len(t)], nil
}

func (s *randomSpec) MessageDist(t core.Transcript, player, input int) (prob.Dist, error) {
	if len(t) >= len(s.tables) {
		return prob.Dist{}, errPastEnd
	}
	return s.tables[len(t)][s.parity(t)][input], nil
}

func (s *randomSpec) MessageBits(t core.Transcript, symbol int) (int, error) {
	a, err := s.MessageAlphabet(t)
	if err != nil {
		return 0, err
	}
	return encoding.FixedWidth(uint64(a)), nil
}

func (s *randomSpec) Output(t core.Transcript) (int, error) {
	return s.parity(t), nil
}

var errPastEnd = errPastEndType{}

type errPastEndType struct{}

func (errPastEndType) Error() string { return "random spec: past final round" }

var _ core.Spec = (*randomSpec)(nil)

// randomPrior is an arbitrary prior with a nontrivial auxiliary variable
// and full-support per-player conditionals.
type randomPrior struct {
	k, inputSize, aux int
	auxDist           prob.Dist
	players           [][]prob.Dist // [z][player]
}

func newRandomPrior(src *rng.Source, k, inputSize, aux int) *randomPrior {
	p := &randomPrior{k: k, inputSize: inputSize, aux: aux}
	w := make([]float64, aux)
	for z := range w {
		w[z] = src.Float64() + 0.1
	}
	d, err := prob.Normalize(w)
	if err != nil {
		panic(err)
	}
	p.auxDist = d
	for z := 0; z < aux; z++ {
		row := make([]prob.Dist, k)
		for i := 0; i < k; i++ {
			pw := make([]float64, inputSize)
			for v := range pw {
				pw[v] = src.Float64() + 0.05
			}
			pd, err := prob.Normalize(pw)
			if err != nil {
				panic(err)
			}
			row[i] = pd
		}
		p.players = append(p.players, row)
	}
	return p
}

func (p *randomPrior) NumPlayers() int       { return p.k }
func (p *randomPrior) InputSize() int        { return p.inputSize }
func (p *randomPrior) AuxSize() int          { return p.aux }
func (p *randomPrior) AuxProb(z int) float64 { return p.auxDist.P(z) }
func (p *randomPrior) PlayerDist(z, i int) (prob.Dist, error) {
	return p.players[z][i], nil
}

var _ core.Prior = (*randomPrior)(nil)

func TestRandomSpecInvariants(t *testing.T) {
	// For arbitrary randomized protocols and arbitrary conditional-product
	// priors:
	//   (1) the factored CIC equals the brute-force joint CIC;
	//   (2) information never exceeds communication;
	//   (3) per-input leaf probabilities sum to 1;
	//   (4) the Monte-Carlo estimator agrees with the exact value.
	meta := rng.New(2024)
	for trial := 0; trial < 12; trial++ {
		src := meta.Split(uint64(trial))
		k := src.Intn(2) + 2         // 2..3 players
		inputSize := src.Intn(2) + 2 // 2..3 values
		rounds := src.Intn(3) + 2    // 2..4 rounds
		aux := src.Intn(3) + 1       // 1..3 aux values
		spec := newRandomSpec(src, k, inputSize, rounds, 2)
		prior := newRandomPrior(src, k, inputSize, aux)

		report, err := core.ExactCosts(spec, prior, core.TreeLimits{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		joint, err := core.ExactCICJoint(spec, prior, core.TreeLimits{})
		if err != nil {
			t.Fatalf("trial %d joint: %v", trial, err)
		}
		if math.Abs(report.CIC-joint) > 1e-9 {
			t.Fatalf("trial %d: factored CIC %v != joint %v", trial, report.CIC, joint)
		}
		if report.ExternalIC > report.ExpectedBits+1e-9 {
			t.Fatalf("trial %d: IC %v exceeds expected bits %v", trial, report.ExternalIC, report.ExpectedBits)
		}
		if report.CIC < 0 || report.ExternalIC < 0 {
			t.Fatalf("trial %d: negative information cost %+v", trial, report)
		}

		// (3) total probability per input.
		leaves, err := core.EnumerateTranscripts(spec, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]int, k)
		for mask := 0; mask < pow(inputSize, k); mask++ {
			v := mask
			for i := range x {
				x[i] = v % inputSize
				v /= inputSize
			}
			total := 0.0
			for _, leaf := range leaves {
				pl, err := leaf.ProbGivenInput(x)
				if err != nil {
					t.Fatal(err)
				}
				total += pl
			}
			if math.Abs(total-1) > 1e-9 {
				t.Fatalf("trial %d input %v: leaf probabilities sum to %v", trial, x, total)
			}
		}

		// (4) Monte-Carlo agreement.
		est, err := core.EstimateCIC(spec, prior, src.Split(999), 8000)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(est.Mean - report.CIC); diff > 5*est.StdErr+0.01 {
			t.Fatalf("trial %d: MC estimate %v ± %v vs exact %v", trial, est.Mean, est.StdErr, report.CIC)
		}
	}
}

func TestRandomSpecExternalICEstimator(t *testing.T) {
	// The chain-rule external estimator must agree with exact IC on
	// arbitrary randomized specs too.
	meta := rng.New(55)
	for trial := 0; trial < 6; trial++ {
		src := meta.Split(uint64(trial))
		spec := newRandomSpec(src, 2, 2, 3, 2)
		prior := newRandomPrior(src, 2, 2, 2)
		report, err := core.ExactCosts(spec, prior, core.TreeLimits{})
		if err != nil {
			t.Fatal(err)
		}
		est, err := core.EstimateExternalIC(spec, prior, src.Split(1000), 12000)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(est.Mean - report.ExternalIC); diff > 5*est.StdErr+0.01 {
			t.Fatalf("trial %d: estimate %v ± %v vs exact %v", trial, est.Mean, est.StdErr, report.ExternalIC)
		}
	}
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}
