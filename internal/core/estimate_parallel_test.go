package core_test

import (
	"runtime"
	"testing"

	"broadcastic/internal/andk"
	"broadcastic/internal/core"
	"broadcastic/internal/dist"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
)

// TestEstimateCICWorkerCountInvariance is the estimator half of the
// serial-equivalence guarantee: the sharded Monte-Carlo estimate must be
// bit-identical — not merely statistically close — at every worker count,
// because shard streams are derived serially and shard moments merge in
// shard order.
func TestEstimateCICWorkerCountInvariance(t *testing.T) {
	const k = 32
	// 1300 samples spans multiple shards including a ragged final shard.
	const samples = 1300
	spec, err := andk.NewSequential(k)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.EstimateCIC(spec, mu, rng.New(17), samples)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Mean <= 0 || ref.StdErr <= 0 || ref.MeanBits <= 0 {
		t.Fatalf("degenerate reference estimate %+v", ref)
	}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0), 0} {
		got, err := core.EstimateCICWorkers(spec, mu, rng.New(17), samples, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Mean != ref.Mean || got.StdErr != ref.StdErr ||
			got.MeanBits != ref.MeanBits || got.Samples != ref.Samples {
			t.Fatalf("workers=%d: estimate %+v differs from serial %+v", workers, got, ref)
		}
	}
}

// TestEstimateCICShardRaggedBudgets checks sample budgets around the shard
// boundary: below one shard, exactly one shard, and a few shards plus a
// remainder must all account for every requested sample.
func TestEstimateCICShardRaggedBudgets(t *testing.T) {
	const k = 4
	spec, err := andk.NewSequential(k)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		t.Fatal(err)
	}
	for _, samples := range []int{1, 3, 511, 512, 513, 1025} {
		est, err := core.EstimateCICWorkers(spec, mu, rng.New(3), samples, 4)
		if err != nil {
			t.Fatal(err)
		}
		if est.Samples != samples {
			t.Fatalf("samples=%d: estimate reports %d samples", samples, est.Samples)
		}
		if est.MeanBits <= 0 {
			t.Fatalf("samples=%d: non-positive mean bits %v", samples, est.MeanBits)
		}
	}
}

// TestEstimateCICBatchingEquivalence is the engine half of the
// serial-equivalence guarantee: the compiled-IR engine (the default), the
// 64-lane engine (IR disabled) and the scalar engine (both disabled) must
// produce the identical CICEstimate — every field, every bit — at 1 and 4
// workers, on every lane-eligible protocol shape. The telemetry counters
// prove each engine genuinely engaged rather than silently falling back.
func TestEstimateCICBatchingEquivalence(t *testing.T) {
	// 1300 samples spans multiple shards including a ragged final shard.
	const samples = 1300
	for _, k := range []int{4, 32, 64} {
		mu, err := dist.NewMu(k)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := andk.NewSequential(k)
		if err != nil {
			t.Fatal(err)
		}
		all, err := andk.NewBroadcastAll(k)
		if err != nil {
			t.Fatal(err)
		}
		trunc, err := andk.NewTruncated(k, (k+1)/2)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range []core.Spec{seq, all, trunc} {
			// BroadcastAll's transcript tree has 2^k − 1 interior states,
			// outside the compiler's gate beyond k=16; the default path
			// must then serve those samples on the lane engine instead.
			wantIR := spec != core.Spec(all) || k <= 16
			for _, workers := range []int{1, 4} {
				col := telemetry.NewCollector()
				compiled, err := core.EstimateCICOpts(spec, mu, rng.New(17), samples,
					core.EstimateOptions{Workers: workers, Recorder: col})
				if err != nil {
					t.Fatal(err)
				}
				snap := col.Snapshot()
				if wantIR {
					if got := snap[telemetry.CoreCICIRSamples]; got != samples {
						t.Fatalf("k=%d workers=%d %T: IR engine served %v samples, want %d",
							k, workers, spec, got, samples)
					}
				} else if got := snap[telemetry.CoreCICLaneSamples]; got != samples {
					t.Fatalf("k=%d workers=%d %T: lane fallback served %v samples, want %d",
						k, workers, spec, got, samples)
				}
				laneCol := telemetry.NewCollector()
				batched, err := core.EstimateCICOpts(spec, mu, rng.New(17), samples,
					core.EstimateOptions{Workers: workers, Recorder: laneCol, DisableIR: true})
				if err != nil {
					t.Fatal(err)
				}
				if got := laneCol.Snapshot()[telemetry.CoreCICLaneSamples]; got != samples {
					t.Fatalf("k=%d workers=%d %T: lane engine served %v samples, want %d",
						k, workers, spec, got, samples)
				}
				scalar, err := core.EstimateCICOpts(spec, mu, rng.New(17), samples,
					core.EstimateOptions{Workers: workers, DisableIR: true, DisableLanes: true})
				if err != nil {
					t.Fatal(err)
				}
				if *compiled != *batched || *batched != *scalar {
					t.Fatalf("k=%d workers=%d %T: compiled %+v, batched %+v, scalar %+v differ",
						k, workers, spec, compiled, batched, scalar)
				}
			}
		}
	}
}

// TestEstimateCICLazyFallsBackToScalar pins the per-engine fallback
// rules end to end: the Lazy protocol's opening coin is a
// non-deterministic message, so the lane engine must never serve it —
// the compiled-IR engine does by default (randomized messages compile
// fine), and with IR disabled it must run on the scalar engine.
func TestEstimateCICLazyFallsBackToScalar(t *testing.T) {
	lazy, err := andk.NewLazy(8, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := dist.NewMu(8)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector()
	est, err := core.EstimateCICOpts(lazy, mu, rng.New(5), 600,
		core.EstimateOptions{Workers: 2, Recorder: col})
	if err != nil {
		t.Fatal(err)
	}
	if est.MeanBits <= 0 {
		t.Fatalf("degenerate estimate %+v", est)
	}
	if got := col.Snapshot()[telemetry.CoreCICIRSamples]; got != 600 {
		t.Fatalf("IR engine served %v samples of a randomized protocol, want 600", got)
	}
	scol := telemetry.NewCollector()
	scalar, err := core.EstimateCICOpts(lazy, mu, rng.New(5), 600,
		core.EstimateOptions{Workers: 2, Recorder: scol, DisableIR: true})
	if err != nil {
		t.Fatal(err)
	}
	snap := scol.Snapshot()
	if got := snap[telemetry.CoreCICLaneSamples]; got != 0 {
		t.Fatalf("lane engine engaged on a non-lane protocol: %v samples", got)
	}
	if got := snap[telemetry.CoreCICIRSamples]; got != 0 {
		t.Fatalf("IR engine engaged with DisableIR set: %v samples", got)
	}
	if *scalar != *est {
		t.Fatalf("compiled estimate %+v != scalar estimate %+v", est, scalar)
	}
}

func TestEstimateCICWorkersValidation(t *testing.T) {
	spec, _ := andk.NewSequential(3)
	mu, _ := dist.NewMu(3)
	if _, err := core.EstimateCICWorkers(spec, mu, nil, 10, 4); err == nil {
		t.Fatal("nil source succeeded")
	}
	if _, err := core.EstimateCICWorkers(spec, mu, rng.New(1), 0, 4); err == nil {
		t.Fatal("zero samples succeeded")
	}
}
