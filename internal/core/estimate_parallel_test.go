package core_test

import (
	"runtime"
	"testing"

	"broadcastic/internal/andk"
	"broadcastic/internal/core"
	"broadcastic/internal/dist"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
)

// TestEstimateCICWorkerCountInvariance is the estimator half of the
// serial-equivalence guarantee: the sharded Monte-Carlo estimate must be
// bit-identical — not merely statistically close — at every worker count,
// because shard streams are derived serially and shard moments merge in
// shard order.
func TestEstimateCICWorkerCountInvariance(t *testing.T) {
	const k = 32
	// 1300 samples spans multiple shards including a ragged final shard.
	const samples = 1300
	spec, err := andk.NewSequential(k)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.EstimateCIC(spec, mu, rng.New(17), samples)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Mean <= 0 || ref.StdErr <= 0 || ref.MeanBits <= 0 {
		t.Fatalf("degenerate reference estimate %+v", ref)
	}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0), 0} {
		got, err := core.EstimateCICWorkers(spec, mu, rng.New(17), samples, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Mean != ref.Mean || got.StdErr != ref.StdErr ||
			got.MeanBits != ref.MeanBits || got.Samples != ref.Samples {
			t.Fatalf("workers=%d: estimate %+v differs from serial %+v", workers, got, ref)
		}
	}
}

// TestEstimateCICShardRaggedBudgets checks sample budgets around the shard
// boundary: below one shard, exactly one shard, and a few shards plus a
// remainder must all account for every requested sample.
func TestEstimateCICShardRaggedBudgets(t *testing.T) {
	const k = 4
	spec, err := andk.NewSequential(k)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		t.Fatal(err)
	}
	for _, samples := range []int{1, 3, 511, 512, 513, 1025} {
		est, err := core.EstimateCICWorkers(spec, mu, rng.New(3), samples, 4)
		if err != nil {
			t.Fatal(err)
		}
		if est.Samples != samples {
			t.Fatalf("samples=%d: estimate reports %d samples", samples, est.Samples)
		}
		if est.MeanBits <= 0 {
			t.Fatalf("samples=%d: non-positive mean bits %v", samples, est.MeanBits)
		}
	}
}

// TestEstimateCICBatchingEquivalence is the batching half of the
// serial-equivalence guarantee: with the 64-lane engine on (the default)
// and off, EstimateCICOpts must produce the identical CICEstimate — every
// field, every bit — at 1 and 4 workers, on every lane-eligible protocol
// shape. The telemetry counter proves the lane engine genuinely engaged
// rather than silently falling back to scalar.
func TestEstimateCICBatchingEquivalence(t *testing.T) {
	// 1300 samples spans multiple shards including a ragged final shard.
	const samples = 1300
	for _, k := range []int{4, 32, 64} {
		mu, err := dist.NewMu(k)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := andk.NewSequential(k)
		if err != nil {
			t.Fatal(err)
		}
		all, err := andk.NewBroadcastAll(k)
		if err != nil {
			t.Fatal(err)
		}
		trunc, err := andk.NewTruncated(k, (k+1)/2)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range []core.Spec{seq, all, trunc} {
			for _, workers := range []int{1, 4} {
				col := telemetry.NewCollector()
				batched, err := core.EstimateCICOpts(spec, mu, rng.New(17), samples,
					core.EstimateOptions{Workers: workers, Recorder: col})
				if err != nil {
					t.Fatal(err)
				}
				if got := col.Snapshot()[telemetry.CoreCICLaneSamples]; got != samples {
					t.Fatalf("k=%d workers=%d %T: lane engine served %v samples, want %d",
						k, workers, spec, got, samples)
				}
				scalar, err := core.EstimateCICOpts(spec, mu, rng.New(17), samples,
					core.EstimateOptions{Workers: workers, DisableLanes: true})
				if err != nil {
					t.Fatal(err)
				}
				if *batched != *scalar {
					t.Fatalf("k=%d workers=%d %T: batched estimate %+v != scalar estimate %+v",
						k, workers, spec, batched, scalar)
				}
			}
		}
	}
}

// TestEstimateCICLazyFallsBackToScalar pins the fallback rule end to end:
// the Lazy protocol's opening coin is a non-deterministic message, so it
// must run on the scalar engine (no lane telemetry) and still succeed.
func TestEstimateCICLazyFallsBackToScalar(t *testing.T) {
	lazy, err := andk.NewLazy(8, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := dist.NewMu(8)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector()
	est, err := core.EstimateCICOpts(lazy, mu, rng.New(5), 600,
		core.EstimateOptions{Workers: 2, Recorder: col})
	if err != nil {
		t.Fatal(err)
	}
	if est.MeanBits <= 0 {
		t.Fatalf("degenerate estimate %+v", est)
	}
	if got, ok := col.Snapshot()[telemetry.CoreCICLaneSamples]; ok && got != 0 {
		t.Fatalf("lane engine engaged on a non-lane protocol: %v samples", got)
	}
}

func TestEstimateCICWorkersValidation(t *testing.T) {
	spec, _ := andk.NewSequential(3)
	mu, _ := dist.NewMu(3)
	if _, err := core.EstimateCICWorkers(spec, mu, nil, 10, 4); err == nil {
		t.Fatal("nil source succeeded")
	}
	if _, err := core.EstimateCICWorkers(spec, mu, rng.New(1), 0, 4); err == nil {
		t.Fatal("zero samples succeeded")
	}
}
