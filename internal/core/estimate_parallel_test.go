package core_test

import (
	"runtime"
	"testing"

	"broadcastic/internal/andk"
	"broadcastic/internal/core"
	"broadcastic/internal/dist"
	"broadcastic/internal/rng"
)

// TestEstimateCICWorkerCountInvariance is the estimator half of the
// serial-equivalence guarantee: the sharded Monte-Carlo estimate must be
// bit-identical — not merely statistically close — at every worker count,
// because shard streams are derived serially and shard moments merge in
// shard order.
func TestEstimateCICWorkerCountInvariance(t *testing.T) {
	const k = 32
	// 1300 samples spans multiple shards including a ragged final shard.
	const samples = 1300
	spec, err := andk.NewSequential(k)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.EstimateCIC(spec, mu, rng.New(17), samples)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Mean <= 0 || ref.StdErr <= 0 || ref.MeanBits <= 0 {
		t.Fatalf("degenerate reference estimate %+v", ref)
	}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0), 0} {
		got, err := core.EstimateCICWorkers(spec, mu, rng.New(17), samples, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Mean != ref.Mean || got.StdErr != ref.StdErr ||
			got.MeanBits != ref.MeanBits || got.Samples != ref.Samples {
			t.Fatalf("workers=%d: estimate %+v differs from serial %+v", workers, got, ref)
		}
	}
}

// TestEstimateCICShardRaggedBudgets checks sample budgets around the shard
// boundary: below one shard, exactly one shard, and a few shards plus a
// remainder must all account for every requested sample.
func TestEstimateCICShardRaggedBudgets(t *testing.T) {
	const k = 4
	spec, err := andk.NewSequential(k)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		t.Fatal(err)
	}
	for _, samples := range []int{1, 3, 511, 512, 513, 1025} {
		est, err := core.EstimateCICWorkers(spec, mu, rng.New(3), samples, 4)
		if err != nil {
			t.Fatal(err)
		}
		if est.Samples != samples {
			t.Fatalf("samples=%d: estimate reports %d samples", samples, est.Samples)
		}
		if est.MeanBits <= 0 {
			t.Fatalf("samples=%d: non-positive mean bits %v", samples, est.MeanBits)
		}
	}
}

func TestEstimateCICWorkersValidation(t *testing.T) {
	spec, _ := andk.NewSequential(3)
	mu, _ := dist.NewMu(3)
	if _, err := core.EstimateCICWorkers(spec, mu, nil, 10, 4); err == nil {
		t.Fatal("nil source succeeded")
	}
	if _, err := core.EstimateCICWorkers(spec, mu, rng.New(1), 0, 4); err == nil {
		t.Fatal("zero samples succeeded")
	}
}
