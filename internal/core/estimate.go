package core

import (
	"fmt"
	"math"

	"broadcastic/internal/ir"
	"broadcastic/internal/pool"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/causal"
)

// CICEstimate is the result of a Monte-Carlo conditional-information-cost
// estimation.
type CICEstimate struct {
	// Mean is the estimated I(Π; X | D) in bits.
	Mean float64
	// StdErr is the standard error of the mean.
	StdErr float64
	// Samples is the number of sampled executions.
	Samples int
	// MeanBits is the average communication over the sampled executions.
	MeanBits float64
}

// cicShardSize is the per-shard sample granularity of the estimator. The
// shard layout is a pure function of the total sample count — never of the
// worker count — which is what makes the estimate bit-identical at any
// parallelism: workers only decide *when* a shard runs, not what it draws
// or where its moments land in the merge.
const cicShardSize = 512

// cicPartial holds one shard's raw moments; shards are merged exactly, in
// shard order, so the reduction is a fixed serial float computation.
type cicPartial struct {
	sum, sumSq, bitsSum float64
}

// EstimateCIC estimates I(Π; X | D) by sampling executions. Each sample
// draws (z, x) from the prior, simulates the protocol while maintaining the
// Lemma 3 q-factors along the sampled path, and evaluates the *exact* inner
// quantity Σ_i D(posterior_i ‖ prior_i) at the resulting transcript. Because
// the inner term is exact, the estimator is unbiased with variance bounded
// by the inner term's variance; no transcript histograms are needed, so it
// scales to thousands of players.
//
// The sample budget is split into fixed-size shards, each drawing from its
// own child stream of src (see rng.Source.SplitN). EstimateCIC runs the
// shards serially; EstimateCICWorkers runs the same shards on a worker
// pool and returns bit-identical results.
func EstimateCIC(spec Spec, prior Prior, src *rng.Source, samples int) (*CICEstimate, error) {
	return EstimateCICWorkers(spec, prior, src, samples, 1)
}

// EstimateCICWorkers is EstimateCIC with the shard set evaluated by up to
// workers goroutines (workers <= 0 means one per CPU). The mean, standard
// error and mean communication are bit-identical for every worker count:
// shard streams are derived serially up front and shard moments are merged
// in shard order.
func EstimateCICWorkers(spec Spec, prior Prior, src *rng.Source, samples, workers int) (*CICEstimate, error) {
	return EstimateCICRecorded(spec, prior, src, samples, workers, nil)
}

// EstimateCICRecorded is EstimateCICWorkers with estimator telemetry: the
// sample and shard counts, and each shard's wall time. A nil rec is
// exactly EstimateCICWorkers; any rec leaves the estimate bit-identical,
// since recording draws nothing from the sample streams.
func EstimateCICRecorded(spec Spec, prior Prior, src *rng.Source, samples, workers int, rec telemetry.Recorder) (*CICEstimate, error) {
	return EstimateCICOpts(spec, prior, src, samples, EstimateOptions{Workers: workers, Recorder: rec})
}

// EstimateOptions bundles the estimator's optional knobs.
type EstimateOptions struct {
	// Workers caps the worker pool; <= 0 means one worker per CPU.
	Workers int
	// Recorder receives estimator telemetry; nil disables recording.
	Recorder telemetry.Recorder
	// DisableLanes forces the scalar engine even for (spec, prior) pairs
	// the 64-lane batch engine could serve. The estimate is bit-identical
	// either way — pinned by the batching-equivalence tests — so the knob
	// exists only for benchmark comparisons and the experiments' -batch
	// flag, never for correctness.
	DisableLanes bool
	// DisableIR forces the interpreted engines (lanes, then scalar) even
	// for keyed (spec, prior) pairs the compiled-IR engine could serve.
	// Bit-identical either way — pinned by the ir_equiv tests — so like
	// DisableLanes it exists only for comparisons and the -noir flag.
	DisableIR bool
	// Causal, when enabled, records one core.cic.shard span per estimator
	// shard (with the serving engine and shard index as attributes) into
	// the trace. Strictly observational, like Recorder.
	Causal causal.Context
}

// EstimateCICOpts is the full-control estimator entry point every other
// Estimate* variant delegates to. Engine precedence per estimation:
// when the keyed (spec, prior) pair compiles to an ir.Program (cached
// across calls — see internal/ir), shards run the compiled table loop;
// otherwise, when the protocol certifies a lane kernel and the prior
// exposes two-point rows (see lane.go), shards run on the 64-lane batch
// engine; otherwise they run on the scalar engine. All paths share the
// shard layout and merge, so results are bit-identical across worker
// counts and across engines.
func EstimateCICOpts(spec Spec, prior Prior, src *rng.Source, samples int, opts EstimateOptions) (*CICEstimate, error) {
	if err := validateShapes(spec, prior); err != nil {
		return nil, err
	}
	if samples < 1 {
		return nil, fmt.Errorf("core: non-positive sample count %d", samples)
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil randomness source")
	}
	var prog *ir.Program
	if !opts.DisableIR {
		prog = irEstimatorProgram(spec, prior, opts.Recorder)
	}
	var plan *lanePlan
	if prog == nil && !opts.DisableLanes {
		plan = newLanePlan(spec, prior, nil)
	}
	rec := opts.Recorder
	shards := (samples + cicShardSize - 1) / cicShardSize
	streams := src.SplitN(shards)
	if rec != nil {
		rec.Count(telemetry.CoreCICSamples, int64(samples))
		rec.Count(telemetry.CoreCICShards, int64(shards))
		if prog != nil {
			rec.Count(telemetry.CoreCICIRSamples, int64(samples))
		} else if plan != nil {
			rec.Count(telemetry.CoreCICLaneSamples, int64(samples))
		}
	}
	engine := "scalar"
	if prog != nil {
		engine = "ir"
	} else if plan != nil {
		engine = "lanes"
	}
	parts, err := pool.MapRecorded(pool.Workers(opts.Workers), shards, func(i int) (cicPartial, error) {
		count := cicShardSize
		if i == shards-1 {
			count = samples - i*cicShardSize
		}
		span := telemetry.StartSpan(rec, telemetry.CoreCICShardNs)
		var cspan causal.Span
		if opts.Causal.Enabled() {
			cspan = opts.Causal.StartSpan(causal.CoreShard,
				causal.Int("shard", i), causal.String("engine", engine))
		}
		var p cicPartial
		var err error
		switch {
		case prog != nil:
			p.sum, p.sumSq, p.bitsSum = prog.Shard(streams[i], count)
		case plan != nil:
			p = laneShard(plan, streams[i], count)
		default:
			p, err = cicShard(spec, prior, streams[i], count)
		}
		cspan.End()
		span.End()
		return p, err
	}, rec)
	if err != nil {
		return nil, err
	}
	var sum, sumSq, bitsSum float64
	for _, p := range parts {
		sum += p.sum
		sumSq += p.sumSq
		bitsSum += p.bitsSum
	}
	mean := sum / float64(samples)
	variance := sumSq/float64(samples) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return &CICEstimate{
		Mean:     mean,
		StdErr:   math.Sqrt(variance / float64(samples)),
		Samples:  samples,
		MeanBits: bitsSum / float64(samples),
	}, nil
}

// cicShard draws count samples from src and accumulates their raw moments.
// All mutable state (input vector, q-factors, prior rows, transcript path)
// lives in an execScratch acquired once for the whole shard, so the sample
// loop itself is allocation-free (see scratch.go).
func cicShard(spec Spec, prior Prior, src *rng.Source, count int) (cicPartial, error) {
	zd, err := auxDist(prior)
	if err != nil {
		return cicPartial{}, err
	}
	sc := getExecScratch(spec.NumPlayers(), spec.InputSize())
	defer putExecScratch(sc)

	var p cicPartial
	for s := 0; s < count; s++ {
		inner, bits, err := sc.runSample(spec, prior, zd, src)
		if err != nil {
			return cicPartial{}, err
		}
		p.sum += inner
		p.sumSq += inner * inner
		p.bitsSum += float64(bits)
	}
	return p, nil
}

// SampleTranscript runs spec once on input x and returns the transcript,
// its q-factors and the communication cost. Used by the compression layer
// and by tests that need a single concrete execution.
//
// Keyed specs within the compiler's gates run on their cached ir.Program:
// the compiled walk consumes the identical draw stream (one uniform per
// message) and returns the identical transcript, q-factors, bit cost and
// output. Inputs outside the compiled domain fall back to the dynamic
// walk so the spec surfaces its own out-of-range error.
func SampleTranscript(spec Spec, x []int, src *rng.Source) (Transcript, *Leaf, error) {
	if len(x) != spec.NumPlayers() {
		return nil, nil, fmt.Errorf("core: input has %d entries, want %d", len(x), spec.NumPlayers())
	}
	if src == nil {
		return nil, nil, fmt.Errorf("core: nil randomness source")
	}
	if prog := irSpecProgram(spec, nil); prog != nil {
		inRange := true
		for _, v := range x {
			if v < 0 || v >= prog.InputSize() {
				inRange = false
				break
			}
		}
		if inRange {
			st, q, bits, out := prog.SampleWalk(x, src)
			t := Transcript(st)
			return t, &Leaf{Transcript: t.Clone(), Q: q, Bits: bits, Output: out}, nil
		}
	}
	k := spec.NumPlayers()
	inputSize := spec.InputSize()
	q := make([][]float64, k)
	for i := range q {
		q[i] = make([]float64, inputSize)
		for v := range q[i] {
			q[i][v] = 1
		}
	}
	var t Transcript
	bits := 0
	for step := 0; ; step++ {
		if step > defaultMaxDepth {
			return nil, nil, fmt.Errorf("%w (%d)", ErrTreeDepth, defaultMaxDepth)
		}
		speaker, done, err := spec.NextSpeaker(t)
		if err != nil {
			return nil, nil, err
		}
		if done {
			out, err := spec.Output(t)
			if err != nil {
				return nil, nil, err
			}
			return t, &Leaf{Transcript: t.Clone(), Q: q, Bits: bits, Output: out}, nil
		}
		trueDist, err := spec.MessageDist(t, speaker, x[speaker])
		if err != nil {
			return nil, nil, err
		}
		sym := trueDist.Sample(src)
		for v := range q[speaker] {
			d, err := spec.MessageDist(t, speaker, v)
			if err != nil {
				return nil, nil, err
			}
			q[speaker][v] *= d.P(sym)
		}
		symBits, err := spec.MessageBits(t, sym)
		if err != nil {
			return nil, nil, err
		}
		bits += symBits
		t = append(t, sym)
	}
}
