package core

import (
	"fmt"
	"math"
)

// This file implements the posterior-pointing analysis of Section 4.1: the
// α_i^ℓ coefficients and Bayes posterior of Lemma 4, the transcript
// distribution π_c conditioned on inputs with exactly c zeroes, and the
// good-transcript decomposition (L, B_0, B_1, L') of Lemma 5.

// Alphas returns the coefficients α_i^ℓ = q_{i,0}^ℓ / q_{i,1}^ℓ of a leaf of
// a binary-input protocol. When q_{i,1} = 0 (the transcript is impossible on
// input 1) the coefficient is +Inf, matching the paper's convention that the
// posterior is then 1.
func Alphas(leaf *Leaf) ([]float64, error) {
	out := make([]float64, len(leaf.Q))
	for i, row := range leaf.Q {
		if len(row) != 2 {
			return nil, fmt.Errorf("core: Alphas requires binary inputs, player %d has domain %d", i, len(row))
		}
		switch {
		case row[1] > 0:
			out[i] = row[0] / row[1]
		case row[0] > 0:
			out[i] = math.Inf(1)
		default:
			// Both zero: the leaf is unreachable through this player; by
			// construction enumeration prunes those, but be defensive.
			out[i] = 0
		}
	}
	return out, nil
}

// PosteriorZeroGivenNotSpecial evaluates the Lemma 4 / Eq. (5) posterior
// Pr[X_i = 0 | Π = ℓ, Z ≠ i] = α / (α + k − 1) under the hard distribution μ
// (prior zero-probability 1/k for non-special players).
func PosteriorZeroGivenNotSpecial(alpha float64, k int) float64 {
	if math.IsInf(alpha, 1) {
		return 1
	}
	if alpha < 0 || k < 2 {
		return math.NaN()
	}
	return alpha / (alpha + float64(k) - 1)
}

// SliceTranscriptProb returns π_c(ℓ) = Pr[Π = ℓ | X ∈ X_c], the probability
// of the leaf when the input is uniform over inputs with exactly c zeroes:
//
//	π_c(ℓ) = (1 / C(k,c)) Σ_{|S|=c} Π_{i∈S} q_{i,0} Π_{i∉S} q_{i,1}.
//
// Computed by an exact O(k·c) subset-sum dynamic program, which handles
// q_{i,1} = 0 without special cases.
func SliceTranscriptProb(leaf *Leaf, c int) (float64, error) {
	k := len(leaf.Q)
	if c < 0 || c > k {
		return 0, fmt.Errorf("core: slice size %d outside [0,%d]", c, k)
	}
	dp := make([]float64, c+1)
	dp[0] = 1
	for i := 0; i < k; i++ {
		row := leaf.Q[i]
		if len(row) != 2 {
			return 0, fmt.Errorf("core: SliceTranscriptProb requires binary inputs, player %d has domain %d", i, len(row))
		}
		hi := c
		if i+1 < hi {
			hi = i + 1
		}
		for j := hi; j >= 0; j-- {
			v := dp[j] * row[1]
			if j > 0 {
				v += dp[j-1] * row[0]
			}
			dp[j] = v
		}
	}
	// Divide by C(k, c).
	binom := 1.0
	for j := 0; j < c; j++ {
		binom *= float64(k-j) / float64(j+1)
	}
	return dp[c] / binom, nil
}

// LeafPointing summarizes one transcript's Lemma 5 classification.
type LeafPointing struct {
	Pi2      float64 // π_2(ℓ)
	Pi3      float64 // π_3(ℓ)
	Output   int
	MaxAlpha float64 // max_i α_i^ℓ (+Inf allowed)
	InL      bool    // output 0 and π_2(ℓ) ≥ C·Π_i q_{i,1}
	InLPrime bool    // in L and π_2(ℓ) ≥ π_3(ℓ)/2
}

// PointingReport is the outcome of the Lemma 5 analysis over a full
// transcript tree.
type PointingReport struct {
	Leaves []LeafPointing
	// Masses of the transcript sets under π_2 (each in [0,1]).
	MassB1     float64 // output-1 transcripts (wrong on X_2)
	MassB0     float64 // output-0 transcripts failing the likelihood-ratio test
	MassL      float64 // good transcripts
	MassLPrime float64 // good transcripts preferring X_2 over X_3
	// MassPointed is the π_2 mass of L' leaves where some α_i ≥ cThreshold·k:
	// the transcripts that "point to a player that received zero".
	MassPointed float64
}

// AnalyzeGoodTranscripts performs the Lemma 5 decomposition on the leaves
// of a binary-input AND_k-type protocol: C is the likelihood-ratio constant
// in the definition of L, and cThreshold is the constant c in the pointing
// condition α_i^ℓ ≥ c·k.
func AnalyzeGoodTranscripts(leaves []*Leaf, c float64, cThreshold float64) (*PointingReport, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("core: no transcripts to analyze")
	}
	if c <= 0 || cThreshold <= 0 {
		return nil, fmt.Errorf("core: non-positive constants C=%v c=%v", c, cThreshold)
	}
	k := len(leaves[0].Q)
	report := &PointingReport{Leaves: make([]LeafPointing, len(leaves))}
	totalPi2 := 0.0
	for li, leaf := range leaves {
		pi2, err := SliceTranscriptProb(leaf, 2)
		if err != nil {
			return nil, err
		}
		pi3, err := SliceTranscriptProb(leaf, 3)
		if err != nil {
			return nil, err
		}
		alphas, err := Alphas(leaf)
		if err != nil {
			return nil, err
		}
		maxAlpha := math.Inf(-1)
		for _, a := range alphas {
			if a > maxAlpha {
				maxAlpha = a
			}
		}
		allOnesProb := 1.0 // Π_i q_{i,1}: the leaf's probability on input 1^k
		for _, row := range leaf.Q {
			allOnesProb *= row[1]
		}
		lp := LeafPointing{Pi2: pi2, Pi3: pi3, Output: leaf.Output, MaxAlpha: maxAlpha}
		totalPi2 += pi2
		switch {
		case leaf.Output == 1:
			report.MassB1 += pi2
		case pi2 < c*allOnesProb:
			report.MassB0 += pi2
		default:
			lp.InL = true
			report.MassL += pi2
			if pi2 >= pi3/2 {
				lp.InLPrime = true
				report.MassLPrime += pi2
				if maxAlpha >= cThreshold*float64(k) {
					report.MassPointed += pi2
				}
			}
		}
		report.Leaves[li] = lp
	}
	if math.Abs(totalPi2-1) > 1e-6 {
		return nil, fmt.Errorf("core: π_2 masses sum to %v; transcript tree incomplete", totalPi2)
	}
	return report, nil
}
