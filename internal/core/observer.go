package core

import (
	"fmt"
	"math"

	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

// Observer is the external observer of Section 6: it watches the board,
// knows the prior, and maintains the exact Bayes posterior over the
// players' inputs via the Lemma 3 q-factors. Its message prediction ν is
// both the compression prior of Lemma 7 and the per-round reference
// distribution in the chain-rule decomposition
//
//	IC(Π) = I(Π; X) = Σ_j I(M_j; X_{i_j} | M_{<j})
//	      = Σ_j E[ D( η_j ‖ ν_j ) ],
//
// where η_j is the speaker's true message distribution and ν_j the
// observer's prediction. EstimateExternalIC samples that expectation.
type Observer struct {
	prior Prior
	q     [][]float64 // q[i][v]: likelihood of the board so far under X_i=v

	// Incremental caches keyed by auxiliary value z, so that PlayerPosterior
	// costs O(aux · inputSize) instead of O(aux · k · inputSize):
	//   s[z][i]    = S_i(z) = Σ_v prior_i(v|z) · q_i(v)
	//   weights[z] = p(z) · Π_i S_i(z)
	s       [][]float64
	weights []float64

	// post is the posterior scratch used by PredictMessageInto so that a
	// prediction costs no allocations; valid only during a single call.
	post []float64
}

// NewObserver starts an observer with an empty board.
func NewObserver(prior Prior) (*Observer, error) {
	if prior.NumPlayers() < 1 || prior.InputSize() < 1 {
		return nil, fmt.Errorf("core: invalid prior shape %dx%d", prior.NumPlayers(), prior.InputSize())
	}
	q := make([][]float64, prior.NumPlayers())
	for i := range q {
		q[i] = make([]float64, prior.InputSize())
		for v := range q[i] {
			q[i][v] = 1
		}
	}
	// With q ≡ 1 every S_i(z) is a probability sum, i.e. exactly 1.
	s := make([][]float64, prior.AuxSize())
	weights := make([]float64, prior.AuxSize())
	for z := range s {
		s[z] = make([]float64, prior.NumPlayers())
		for i := range s[z] {
			s[z][i] = 1
		}
		weights[z] = prior.AuxProb(z)
	}
	return &Observer{prior: prior, q: q, s: s, weights: weights}, nil
}

// posteriorWeightsInto accumulates the unnormalized posterior weights for
// player i into out (length InputSize), the shared kernel of
// PlayerPosterior and PredictMessageInto.
func (o *Observer) posteriorWeightsInto(i int, out []float64) error {
	k := o.prior.NumPlayers()
	if i < 0 || i >= k {
		return fmt.Errorf("core: player %d outside [0,%d)", i, k)
	}
	for v := range out {
		out[v] = 0
	}
	for z := 0; z < o.prior.AuxSize(); z++ {
		weight := o.weights[z]
		si := o.s[z][i]
		if weight == 0 || si == 0 {
			continue
		}
		d, err := o.prior.PlayerDist(z, i)
		if err != nil {
			return err
		}
		for v := range out {
			out[v] += weight * d.P(v) * o.q[i][v] / si
		}
	}
	return nil
}

// PlayerPosterior returns the observer's current posterior over player i's
// input: Pr[X_i = v | board] = Σ_z Pr[z | board]·Pr[X_i = v | z, board].
func (o *Observer) PlayerPosterior(i int) (prob.Dist, error) {
	out := make([]float64, o.prior.InputSize())
	if err := o.posteriorWeightsInto(i, out); err != nil {
		return prob.Dist{}, err
	}
	d, err := prob.Normalize(out)
	if err != nil {
		return prob.Dist{}, fmt.Errorf("core: observer posterior for player %d: %w", i, err)
	}
	return d, nil
}

// PredictMessage returns ν, the observer's prediction of the next message:
// it samples X_speaker from its posterior and pushes it through the
// protocol's message function (footnote 3 of the paper), i.e.
// ν(m) = Σ_v Pr[X_speaker = v | board] · Pr[m | v, board].
func (o *Observer) PredictMessage(spec Spec, t Transcript, speaker int) (prob.Dist, error) {
	w, err := o.PredictMessageInto(spec, t, speaker, nil)
	if err != nil {
		return prob.Dist{}, err
	}
	return prob.NewDist(w)
}

// PredictMessageInto is PredictMessage without the Dist: it writes the
// normalized prediction into w (grown from w[:0] as needed) and returns it.
// The arithmetic — accumulate unnormalized weights in index order, divide by
// their sum — is exactly PredictMessage's, so the values are bit-identical;
// the compression hot loop uses this form to predict every message without
// allocating. The result aliases w and o's scratch lifetime: it is valid
// until the observer's next prediction.
func (o *Observer) PredictMessageInto(spec Spec, t Transcript, speaker int, w []float64) ([]float64, error) {
	if o.post == nil {
		o.post = make([]float64, o.prior.InputSize())
	}
	if err := o.posteriorWeightsInto(speaker, o.post); err != nil {
		return nil, err
	}
	sum := 0.0
	for _, v := range o.post {
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("core: observer posterior for player %d: all weights are zero", speaker)
	}
	for v := range o.post {
		o.post[v] /= sum
	}
	alphabet, err := spec.MessageAlphabet(t)
	if err != nil {
		return nil, err
	}
	w = w[:0]
	for m := 0; m < alphabet; m++ {
		w = append(w, 0)
	}
	// spec.InputSize() matches len(o.post) whenever spec and prior agree on
	// shapes; out-of-range inputs carry zero posterior mass (as post.P(v)
	// reported in the Dist-returning form), so they are simply skipped.
	for v := 0; v < spec.InputSize() && v < len(o.post); v++ {
		pv := o.post[v]
		if pv == 0 {
			continue
		}
		d, err := spec.MessageDist(t, speaker, v)
		if err != nil {
			return nil, err
		}
		for m := 0; m < alphabet; m++ {
			w[m] += pv * d.P(m)
		}
	}
	wsum := 0.0
	for _, v := range w {
		wsum += v
	}
	if wsum <= 0 {
		return nil, fmt.Errorf("core: observer prediction for player %d: all weights are zero", speaker)
	}
	for m := range w {
		w[m] /= wsum
	}
	return w, nil
}

// Reset restores the observer to its empty-board state (q ≡ 1, every
// S_i(z) = 1, weights = the auxiliary prior), so one observer can be reused
// across independent protocol runs without reallocating its caches.
func (o *Observer) Reset() {
	for i := range o.q {
		row := o.q[i]
		for v := range row {
			row[v] = 1
		}
	}
	for z := range o.s {
		row := o.s[z]
		for i := range row {
			row[i] = 1
		}
		o.weights[z] = o.prior.AuxProb(z)
	}
}

// Update folds an observed message into the posterior and refreshes the
// per-z caches for the speaker.
func (o *Observer) Update(spec Spec, t Transcript, speaker, symbol int) error {
	for v := 0; v < o.prior.InputSize(); v++ {
		d, err := spec.MessageDist(t, speaker, v)
		if err != nil {
			return err
		}
		o.q[speaker][v] *= d.P(symbol)
	}
	for z := 0; z < o.prior.AuxSize(); z++ {
		if o.weights[z] == 0 {
			continue
		}
		d, err := o.prior.PlayerDist(z, speaker)
		if err != nil {
			return err
		}
		newS := 0.0
		for v := 0; v < o.prior.InputSize(); v++ {
			newS += d.P(v) * o.q[speaker][v]
		}
		oldS := o.s[z][speaker]
		o.s[z][speaker] = newS
		if oldS == 0 {
			o.weights[z] = 0
			continue
		}
		o.weights[z] *= newS / oldS
	}
	return nil
}

// ICEstimate is the result of a Monte-Carlo external information cost
// estimation.
type ICEstimate struct {
	Mean    float64
	StdErr  float64
	Samples int
}

// EstimateExternalIC estimates IC_μ(Π) = I(Π; X) by sampling executions
// and summing, over each run's rounds, the exact divergence
// D(η_j ‖ ν_j) between the speaker's true message distribution and the
// external observer's Bayes prediction. By the chain rule this per-run sum
// has expectation exactly I(Π; X), so the estimator is unbiased. Unlike
// EstimateCIC it prices the aux-marginalized posterior, so it works for
// external (unconditional) information cost at player counts far beyond
// exact enumeration — at O(k · aux · rounds) arithmetic per sample.
func EstimateExternalIC(spec Spec, prior Prior, src *rng.Source, samples int) (*ICEstimate, error) {
	if err := validateShapes(spec, prior); err != nil {
		return nil, err
	}
	if samples < 1 {
		return nil, fmt.Errorf("core: non-positive sample count %d", samples)
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil randomness source")
	}
	ps, err := NewPriorSampler(prior)
	if err != nil {
		return nil, err
	}
	obs, err := NewObserver(prior)
	if err != nil {
		return nil, err
	}
	x := make([]int, prior.NumPlayers())
	var t Transcript
	var nu []float64
	var sum, sumSq float64
	for s := 0; s < samples; s++ {
		if _, err := ps.Sample(src, x); err != nil {
			return nil, err
		}
		if s > 0 {
			obs.Reset()
		}
		t = t[:0]
		runInfo := 0.0
		for step := 0; ; step++ {
			if step > defaultMaxDepth {
				return nil, fmt.Errorf("%w (%d)", ErrTreeDepth, defaultMaxDepth)
			}
			speaker, done, err := spec.NextSpeaker(t)
			if err != nil {
				return nil, err
			}
			if done {
				break
			}
			eta, err := spec.MessageDist(t, speaker, x[speaker])
			if err != nil {
				return nil, err
			}
			nu, err = obs.PredictMessageInto(spec, t, speaker, nu)
			if err != nil {
				return nil, err
			}
			d, err := klDivVec(eta, nu)
			if err != nil {
				return nil, fmt.Errorf("core: round %d: %w", step, err)
			}
			runInfo += d
			sym := eta.Sample(src)
			if err := obs.Update(spec, t, speaker, sym); err != nil {
				return nil, err
			}
			t = append(t, sym)
		}
		sum += runInfo
		sumSq += runInfo * runInfo
	}
	mean := sum / float64(samples)
	variance := sumSq/float64(samples) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return &ICEstimate{
		Mean:    mean,
		StdErr:  math.Sqrt(variance / float64(samples)),
		Samples: samples,
	}, nil
}

// klDist is KL(post ‖ prior) in bits over equal finite supports. Inlined
// here (rather than importing info) to keep core's dependencies minimal.
func klDist(post, prior prob.Dist) (float64, error) {
	return klDivVec(post, prior.Probs())
}

// klDivVec is klDist against a raw probability vector, so hot loops can
// price a prediction straight from PredictMessageInto's scratch output.
func klDivVec(post prob.Dist, prior []float64) (float64, error) {
	if post.Size() != len(prior) {
		return 0, fmt.Errorf("core: KL support mismatch %d vs %d", post.Size(), len(prior))
	}
	d := 0.0
	for v := 0; v < post.Size(); v++ {
		p := post.P(v)
		if p == 0 {
			continue
		}
		q := prior[v]
		if q == 0 {
			return 0, fmt.Errorf("core: observer prediction excludes a possible message (value %d)", v)
		}
		d += p * math.Log2(p/q)
	}
	if d < 0 && d > -1e-12 {
		d = 0
	}
	return d, nil
}
