package faults

import (
	"testing"
	"time"

	"broadcastic/internal/rng"
)

func TestPlanValidate(t *testing.T) {
	good := []Plan{
		{},
		{Drop: 0.5, Duplicate: 1, Corrupt: 0.01},
		{DelayProb: 0.2, MaxDelay: time.Millisecond},
		{CrashTurns: map[int]int{0: 0, 3: 7}},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Fatalf("good plan %d rejected: %v", i, err)
		}
	}
	bad := []Plan{
		{Drop: -0.1},
		{Duplicate: 1.5},
		{Corrupt: 2},
		{DelayProb: 0.5},                 // no MaxDelay
		{MaxDelay: -time.Millisecond},    // negative delay
		{CrashTurns: map[int]int{-1: 0}}, // negative player
		{CrashTurns: map[int]int{0: -2}}, // negative turn
		{DelayProb: -0.2, MaxDelay: 1e6}, // negative probability
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad plan %d accepted: %+v", i, p)
		}
	}
}

func TestPlanEnabledAndCrashTurn(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Fatal("zero plan enabled")
	}
	if (Plan{CrashTurns: map[int]int{1: 0}}).Enabled() {
		t.Fatal("crash-only plan reports link faults enabled")
	}
	if !(Plan{Drop: 0.1}).Enabled() {
		t.Fatal("drop plan not enabled")
	}
	p := Plan{CrashTurns: map[int]int{2: 5}}
	if p.CrashTurn(2) != 5 || p.CrashTurn(0) != -1 {
		t.Fatalf("CrashTurn = %d,%d", p.CrashTurn(2), p.CrashTurn(0))
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"none",
		"drop=0.1",
		"drop=0.1,dup=0.05,corrupt=0.01",
		"delay=0.2:3ms",
		"drop=0.2,crash=1@4",
		"crash=0@0,crash=2@7",
	}
	for _, s := range cases {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		// String must re-parse to the same plan.
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = Parse(%q): %v", s, p.String(), err)
		}
		if p.Drop != p2.Drop || p.Duplicate != p2.Duplicate || p.Corrupt != p2.Corrupt ||
			p.DelayProb != p2.DelayProb || p.MaxDelay != p2.MaxDelay || len(p.CrashTurns) != len(p2.CrashTurns) {
			t.Fatalf("round trip of %q: %+v != %+v", s, p, p2)
		}
	}
	if p, err := Parse(""); err != nil || p.Enabled() {
		t.Fatalf("empty parse = %+v, %v", p, err)
	}
	p, err := Parse("drop=0.25,dup=0.1,corrupt=0.05,delay=0.5:2ms,crash=3@1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop != 0.25 || p.Duplicate != 0.1 || p.Corrupt != 0.05 ||
		p.DelayProb != 0.5 || p.MaxDelay != 2*time.Millisecond || p.CrashTurns[3] != 1 {
		t.Fatalf("parsed plan %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"drop", "drop=x", "delay=0.5", "delay=0.5:zz", "crash=1", "crash=a@2",
		"crash=1@b", "bogus=1", "drop=1.5", "delay=0.5:-1ms",
	} {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) succeeded", s)
		}
	}
}

// The decision stream must be a pure function of the seed: two injectors
// over identical streams produce identical decisions and counts.
func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{Drop: 0.3, Duplicate: 0.2, Corrupt: 0.25, DelayProb: 0.15, MaxDelay: time.Millisecond}
	a := plan.NewInjector(rng.New(99))
	b := plan.NewInjector(rng.New(99))
	for i := 0; i < 500; i++ {
		da, db := a.Decide(128), b.Decide(128)
		if da != db {
			t.Fatalf("decision %d differs: %+v vs %+v", i, da, db)
		}
		if da.CorruptBit >= 128 {
			t.Fatalf("corrupt bit %d outside frame", da.CorruptBit)
		}
		if da.Delay < 0 || da.Delay > time.Millisecond {
			t.Fatalf("delay %v outside (0, max]", da.Delay)
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("counts diverge: %v vs %v", a.Counts(), b.Counts())
	}
	if a.Counts().Total() == 0 {
		t.Fatal("no faults injected at these rates in 500 frames")
	}
}

func TestInjectorZeroPlanInjectsNothing(t *testing.T) {
	in := Plan{}.NewInjector(rng.New(1))
	for i := 0; i < 100; i++ {
		d := in.Decide(64)
		if d.Drop || d.Duplicate || d.CorruptBit >= 0 || d.Delay != 0 {
			t.Fatalf("zero plan produced fault %+v", d)
		}
	}
	if in.Counts().Total() != 0 {
		t.Fatalf("zero plan counted faults: %v", in.Counts())
	}
	// A nil source must also be safe (faults disabled at the call site).
	nilIn := Plan{Drop: 1}.NewInjector(nil)
	if d := nilIn.Decide(64); d.Drop {
		t.Fatal("nil-source injector dropped a frame")
	}
}

func TestCountsAddString(t *testing.T) {
	var c Counts
	c.Add(Counts{Drops: 1, Duplicates: 2, Corruptions: 3, Delays: 4})
	c.Add(Counts{Drops: 1})
	if c.Total() != 11 {
		t.Fatalf("total = %d", c.Total())
	}
	if c.String() != "2/2/3/4" {
		t.Fatalf("string = %s", c.String())
	}
	if (Kind(0)).String() != "drop" || Crash.String() != "crash" {
		t.Fatalf("kind names: %s %s", Kind(0), Crash)
	}
}
