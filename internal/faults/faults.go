// Package faults is the deterministic failure model of the networked
// runtime (internal/netrun): seeded, per-link streams of fault decisions
// injected at the transport layer.
//
// The paper's broadcast model is a perfect shared medium; the single-hop
// wireless networks it abstracts (and the point-to-point message-passing
// systems the related work runs the same protocols on) are not. This
// package describes what can go wrong on a link — message delay, drop,
// duplication, bit corruption — and when a player crashes outright, as a
// pure decision engine: given a Plan and an rng stream, an Injector answers
// "what happens to the next frame" without touching any I/O itself. The
// runtime applies the decisions; the split keeps the package free of
// transport dependencies and makes every fault sequence replayable
// bit-for-bit from a seed (the reproducibility contract every experiment
// in this repository obeys).
//
// Each link direction gets its own child stream (rng.Source.SplitN), so a
// decision drawn on one link can never perturb another — the same idiom
// the deterministic parallel experiment engine uses for sweep cells.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind labels one category of injected fault.
type Kind int

// Fault kinds.
const (
	Drop Kind = iota
	Duplicate
	Corrupt
	Delay
	Crash

	// NumKinds is the number of fault kinds; valid kinds are 0..NumKinds-1.
	NumKinds = int(Crash) + 1
)

// String returns the flag-syntax name of the kind.
func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Duplicate:
		return "dup"
	case Corrupt:
		return "corrupt"
	case Delay:
		return "delay"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("faults.Kind(%d)", int(k))
	}
}

// Plan describes a fault mix. The zero value injects nothing. Drop,
// Duplicate, Corrupt and DelayProb are independent per-frame probabilities;
// a delayed frame sleeps uniformly in (0, MaxDelay]. CrashTurns maps a
// player index to the 0-based turn on which that player dies silently
// (crashing is unrecoverable; everything else is recoverable by the
// runtime's retransmission layer).
type Plan struct {
	Drop      float64
	Duplicate float64
	Corrupt   float64
	DelayProb float64
	MaxDelay  time.Duration
	// CrashTurns: player -> turn index at which the player stops responding
	// (0 = crashes when first asked to speak).
	CrashTurns map[int]int
}

// Validate checks probability ranges and delay consistency.
func (p Plan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"drop", p.Drop}, {"dup", p.Duplicate}, {"corrupt", p.Corrupt}, {"delay", p.DelayProb},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.DelayProb > 0 && p.MaxDelay <= 0 {
		return fmt.Errorf("faults: delay probability %v with non-positive max delay %v", p.DelayProb, p.MaxDelay)
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("faults: negative max delay %v", p.MaxDelay)
	}
	for player, turn := range p.CrashTurns {
		if player < 0 {
			return fmt.Errorf("faults: crash for negative player %d", player)
		}
		if turn < 0 {
			return fmt.Errorf("faults: negative crash turn %d for player %d", turn, player)
		}
	}
	return nil
}

// Enabled reports whether the plan injects any link fault (crashes are
// handled by the runtime's player loop, not the link layer).
func (p Plan) Enabled() bool {
	return p.Drop > 0 || p.Duplicate > 0 || p.Corrupt > 0 || p.DelayProb > 0
}

// CrashTurn returns the turn at which the player crashes, or -1 if it
// never does.
func (p Plan) CrashTurn(player int) int {
	if t, ok := p.CrashTurns[player]; ok {
		return t
	}
	return -1
}

// String renders the plan in Parse syntax (a stable, canonical order).
func (p Plan) String() string {
	var parts []string
	add := func(name string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", name, v))
		}
	}
	add("drop", p.Drop)
	add("dup", p.Duplicate)
	add("corrupt", p.Corrupt)
	if p.DelayProb > 0 {
		parts = append(parts, fmt.Sprintf("delay=%v:%v", p.DelayProb, p.MaxDelay))
	}
	players := make([]int, 0, len(p.CrashTurns))
	for pl := range p.CrashTurns {
		players = append(players, pl)
	}
	sort.Ints(players)
	for _, pl := range players {
		parts = append(parts, fmt.Sprintf("crash=%d@%d", pl, p.CrashTurns[pl]))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Parse reads the CLI fault syntax:
//
//	drop=0.1,dup=0.05,corrupt=0.01,delay=0.2:3ms,crash=1@4
//
// Fields are comma-separated; delay takes probability:max-duration; crash
// takes player@turn and may repeat for several players. "none" or the
// empty string yield the zero Plan.
func Parse(s string) (Plan, error) {
	var p Plan
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		name, value, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: field %q is not name=value", field)
		}
		switch name {
		case "drop", "dup", "corrupt":
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: %s: %w", name, err)
			}
			switch name {
			case "drop":
				p.Drop = v
			case "dup":
				p.Duplicate = v
			case "corrupt":
				p.Corrupt = v
			}
		case "delay":
			prob, dur, ok := strings.Cut(value, ":")
			if !ok {
				return Plan{}, fmt.Errorf("faults: delay %q is not prob:duration", value)
			}
			v, err := strconv.ParseFloat(prob, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: delay probability: %w", err)
			}
			d, err := time.ParseDuration(dur)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: delay duration: %w", err)
			}
			p.DelayProb = v
			p.MaxDelay = d
		case "crash":
			player, turn, ok := strings.Cut(value, "@")
			if !ok {
				return Plan{}, fmt.Errorf("faults: crash %q is not player@turn", value)
			}
			pl, err := strconv.Atoi(player)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: crash player: %w", err)
			}
			tn, err := strconv.Atoi(turn)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: crash turn: %w", err)
			}
			if p.CrashTurns == nil {
				p.CrashTurns = make(map[int]int)
			}
			p.CrashTurns[pl] = tn
		default:
			return Plan{}, fmt.Errorf("faults: unknown fault %q", name)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Decision is what happens to one outbound frame. The zero value means
// "deliver untouched".
type Decision struct {
	Drop      bool
	Duplicate bool
	// CorruptBit is the bit index to flip within the frame, or -1 for none.
	CorruptBit int
	Delay      time.Duration
}

// Counts tallies injected faults.
type Counts struct {
	Drops       int
	Duplicates  int
	Corruptions int
	Delays      int
}

// Add accumulates another tally.
func (c *Counts) Add(o Counts) {
	c.Drops += o.Drops
	c.Duplicates += o.Duplicates
	c.Corruptions += o.Corruptions
	c.Delays += o.Delays
}

// Total returns the number of injected faults of every kind.
func (c Counts) Total() int { return c.Drops + c.Duplicates + c.Corruptions + c.Delays }

// String renders the tally compactly (drop/dup/corrupt/delay).
func (c Counts) String() string {
	return fmt.Sprintf("%d/%d/%d/%d", c.Drops, c.Duplicates, c.Corruptions, c.Delays)
}

// rngSource is the slice of the rng.Source API the injector needs; taking
// an interface keeps the dependency one-way (rng imports nothing of ours)
// while letting tests substitute scripted streams.
type rngSource interface {
	Bernoulli(p float64) bool
	Float64() float64
	Intn(n int) int
}

// Injector draws the fault decision stream for one link direction. It is
// not safe for concurrent use: each link direction must own exactly one
// injector, consumed by the single goroutine that sends on that direction
// (this is what makes the decision sequence a pure function of the seed).
type Injector struct {
	plan   Plan
	src    rngSource
	counts Counts
}

// NewInjector builds an injector drawing from src. The plan must have been
// validated.
func (p Plan) NewInjector(src rngSource) *Injector {
	return &Injector{plan: p, src: src}
}

// Decide returns the fate of the next frame of frameBits bits. The draw
// order (drop, duplicate, corrupt, delay) is fixed and documented: it is
// part of the reproducibility contract, since changing it would re-map
// seeds to different fault sequences.
func (in *Injector) Decide(frameBits int) Decision {
	d := Decision{CorruptBit: -1}
	if in.src == nil {
		return d
	}
	if in.plan.Drop > 0 && in.src.Bernoulli(in.plan.Drop) {
		d.Drop = true
		in.counts.Drops++
	}
	if in.plan.Duplicate > 0 && in.src.Bernoulli(in.plan.Duplicate) {
		d.Duplicate = true
		in.counts.Duplicates++
	}
	if in.plan.Corrupt > 0 && frameBits > 0 && in.src.Bernoulli(in.plan.Corrupt) {
		d.CorruptBit = in.src.Intn(frameBits)
		in.counts.Corruptions++
	}
	if in.plan.DelayProb > 0 && in.src.Bernoulli(in.plan.DelayProb) {
		d.Delay = time.Duration(1 + in.src.Float64()*float64(in.plan.MaxDelay-1))
		in.counts.Delays++
	}
	return d
}

// Counts returns the faults injected so far.
func (in *Injector) Counts() Counts { return in.counts }
