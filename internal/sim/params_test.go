package sim

import (
	"bytes"
	"strings"
	"testing"
)

func renderString(t *testing.T, tbl *Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// An explicit override equal to the built-in grid must be byte-identical
// to the default run: the override machinery only selects cells.
func TestParamsExplicitDefaultGridIsIdentical(t *testing.T) {
	base := Config{Seed: 3, Scale: Quick}
	ref, err := E1DisjScalingN(base)
	if err != nil {
		t.Fatal(err)
	}
	over := base
	over.Params = Params{Ns: []int{256, 1024}} // E1's quick grid
	got, err := E1DisjScalingN(over)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderString(t, ref), renderString(t, got); a != b {
		t.Errorf("explicit default grid diverged:\n%s---\n%s", a, b)
	}
}

func TestParamsOverrideSelectsCells(t *testing.T) {
	cfg := Config{Seed: 3, Scale: Quick, Params: Params{Ns: []int{512}}}
	tbl, err := E1DisjScalingN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 || tbl.Rows[0][0] != "512" {
		t.Fatalf("E1 override rows = %v", tbl.Rows)
	}

	k2, err := E2DisjScalingK(Config{Seed: 3, Scale: Quick, Params: Params{Ks: []int{4, 16}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(k2.Rows) != 2 || k2.Rows[0][0] != "4" || k2.Rows[1][0] != "16" {
		t.Fatalf("E2 override rows = %v", k2.Rows)
	}
}

// Overridden sweeps stay deterministic (same output for the same Params
// and seed, at any worker count) — the contract the result cache relies on.
func TestParamsOverrideDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Scale: Quick, Params: Params{
		Ns: []int{128}, Ks: []int{4}, Faults: "drop=0.1,corrupt=0.02",
	}}
	first, err := E20NetworkedOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	second, err := E20NetworkedOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderString(t, first), renderString(t, second)
	if a != b {
		t.Errorf("E20 override not worker-invariant:\n%s---\n%s", a, b)
	}
	if !strings.Contains(a, "n=128, k=4") {
		t.Errorf("E20 did not honor n/k override:\n%s", a)
	}
	if len(first.Rows) != 2 || first.Rows[0][0] != "none" || first.Rows[1][0] != "drop=0.1,corrupt=0.02" {
		t.Errorf("E20 fault override rows = %v", first.Rows)
	}
}

func TestParamsZeroAndCaps(t *testing.T) {
	if !(Params{}).Zero() {
		t.Error("zero Params not Zero()")
	}
	if (Params{Faults: "drop=0.1"}).Zero() {
		t.Error("fault override reported Zero()")
	}
	if c := Caps("E1"); !c.Ns || c.Ks || c.Faults {
		t.Errorf("Caps(E1) = %+v", c)
	}
	if c := Caps("E20"); !c.Ns || !c.Ks || !c.Faults {
		t.Errorf("Caps(E20) = %+v", c)
	}
	if c := Caps("E14"); c.Ns || c.Ks || c.Faults {
		t.Errorf("Caps(E14) = %+v", c)
	}
}
