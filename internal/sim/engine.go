package sim

import (
	"sync/atomic"

	"broadcastic/internal/pool"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/causal"
)

// The parallel sweep engine.
//
// Every experiment is a parameter sweep whose cells (grid points) are
// independent: each cell samples its own instances, runs its own protocol
// executions, and produces its own table row(s). The engine evaluates the
// cells on a worker pool while keeping the output bit-identical to a
// serial run at any worker count, by construction:
//
//   - cell randomness comes from per-cell child streams derived serially
//     up front (rng.Source.SplitN), so what a cell draws can never depend
//     on which goroutine runs it or when;
//   - results come back in cell order (pool.Map), so tables are assembled
//     in the same deterministic order regardless of completion order.
//
// With a Recorder installed (Config.Recorder) the engine additionally
// reports each cell's wall time and the pool's worker utilization;
// recording reads only the clock, so it cannot perturb any cell's output.

// workers resolves the configured worker count (0 → one per CPU).
func (c Config) workers() int { return pool.Workers(c.Workers) }

// sweep evaluates one result per cell on the worker pool. Cell i receives
// the i-th child stream of base (nil if base is nil, for sweeps that use
// no randomness); results are returned in cell order.
func sweep[T any](cfg Config, base *rng.Source, n int, fn func(cell int, src *rng.Source) (T, error)) ([]T, error) {
	var streams []*rng.Source
	if base != nil {
		streams = base.SplitN(n)
	}
	cell := func(i int) (T, error) {
		var src *rng.Source
		if streams != nil {
			src = streams[i]
		}
		return fn(i, src)
	}
	if cfg.Recorder != nil {
		inner := cell
		cell = func(i int) (T, error) {
			span := telemetry.StartSpan(cfg.Recorder, telemetry.SimCellNs)
			v, err := inner(i)
			span.End()
			cfg.Recorder.Count(telemetry.SimCells, 1)
			return v, err
		}
	}
	if cfg.Causal.Enabled() {
		inner := cell
		cell = func(i int) (T, error) {
			span := cfg.Causal.StartSpan(causal.SimCell, causal.Int("cell", i))
			v, err := inner(i)
			span.End()
			return v, err
		}
	}
	if cfg.Progress != nil {
		inner := cell
		var done atomic.Int64
		cell = func(i int) (T, error) {
			v, err := inner(i)
			if err == nil {
				cfg.Progress(int(done.Add(1)), n)
			}
			return v, err
		}
	}
	return pool.MapRecorded(cfg.workers(), n, cell, cfg.Recorder)
}

// sweepRows is sweep specialized to the common case of exactly one table
// row per cell, appending the rows to t in cell order.
func sweepRows(cfg Config, t *Table, base *rng.Source, n int, fn func(cell int, src *rng.Source) ([]string, error)) error {
	rows, err := sweep(cfg, base, n, fn)
	if err != nil {
		return err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return nil
}
