package sim

import (
	"strings"
	"testing"

	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/causal"
	"broadcastic/internal/telemetry/tracelog"
)

// renderWith runs an experiment with the given recorder and returns the
// rendered table bytes.
func renderWith(t *testing.T, f func(Config) (*Table, error), workers int, rec telemetry.Recorder) string {
	t.Helper()
	cfg := Config{Seed: 7, Scale: Quick, Workers: workers, Recorder: rec}
	tbl, err := f(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestTelemetryEquivalence is the observability contract: installing a
// recorder changes no output bit. The same experiments exercised by
// TestSerialEquivalence must render byte-identical tables with a nil
// recorder and with a live collector, serially and in parallel — and E20
// additionally covers the networked runtime's recorder path.
func TestTelemetryEquivalence(t *testing.T) {
	experiments := []struct {
		id string
		f  func(Config) (*Table, error)
	}{
		{"E1", E1DisjScalingN},
		{"E4", E4AndInfoCost},
		{"E10", E10RejectionSampler},
		{"E20", E20NetworkedOverhead},
	}
	for _, e := range experiments {
		bare := renderWith(t, e.f, 1, nil)
		if len(bare) == 0 {
			t.Fatalf("%s: empty render", e.id)
		}
		for _, workers := range []int{1, 4} {
			rec := telemetry.NewCollector()
			if got := renderWith(t, e.f, workers, rec); got != bare {
				t.Fatalf("%s: table with recorder (workers=%d) differs from bare table:\n--- bare ---\n%s--- recorded ---\n%s",
					e.id, workers, bare, got)
			}
			// The equivalence must not be vacuous: the engine recorded cells.
			if cells := rec.Counter(telemetry.SimCells); cells == 0 {
				t.Fatalf("%s: recorder saw no cells (workers=%d)", e.id, workers)
			}
			if rec.Hist(telemetry.PoolWallNs).Count == 0 {
				t.Fatalf("%s: recorder saw no pool runs (workers=%d)", e.id, workers)
			}
		}
	}
}

// TestTelemetrySnapshotConsistency cross-checks the estimator counters
// against the experiment's known structure: every recorded shard ran under
// a span, and sample counts are multiples of what a cell requests.
func TestTelemetrySnapshotConsistency(t *testing.T) {
	rec := telemetry.NewCollector()
	if _, err := E4AndInfoCost(Config{Seed: 7, Scale: Quick, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	shards := rec.Counter(telemetry.CoreCICShards)
	if shards == 0 {
		t.Fatal("E4 recorded no estimator shards")
	}
	if got := rec.Hist(telemetry.CoreCICShardNs).Count; got != shards {
		t.Fatalf("shard wall-time histogram has %d samples for %d shards", got, shards)
	}
	if samples := rec.Counter(telemetry.CoreCICSamples); samples < shards {
		t.Fatalf("recorded %d samples over %d shards", samples, shards)
	}
}

// TestCausalEquivalence extends the observability contract to the causal
// plane: with a live flight recorder, a metrics collector AND a Perfetto
// sink all attached, every table renders byte-identical to the bare run —
// and the equivalence is not vacuous, because the recorder demonstrably
// held cell spans (plus netrun hops for E20 and estimator shards for E4).
func TestCausalEquivalence(t *testing.T) {
	experiments := []struct {
		id   string
		f    func(Config) (*Table, error)
		want string // a record name the experiment must have produced
	}{
		{"E1", E1DisjScalingN, causal.SimCell},
		{"E4", E4AndInfoCost, causal.CoreShard},
		{"E20", E20NetworkedOverhead, causal.NetrunHop},
	}
	for _, e := range experiments {
		bare := renderWith(t, e.f, 1, nil)
		for _, workers := range []int{1, 4} {
			fr := causal.NewRecorder(0)
			col := telemetry.NewCollector()
			sink := tracelog.New(e.id+"-causal", col)
			cause := fr.StartTrace(causal.ExperimentRoot,
				causal.String("experiment", e.id)).WithSink(sink)
			cfg := Config{Seed: 7, Scale: Quick, Workers: workers, Recorder: col, Causal: cause}
			tbl, err := e.f(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := tbl.Render(&sb); err != nil {
				t.Fatal(err)
			}
			if sb.String() != bare {
				t.Fatalf("%s: fully-traced table (workers=%d) differs from bare table:\n--- bare ---\n%s--- traced ---\n%s",
					e.id, workers, bare, sb.String())
			}
			names := map[string]int{}
			for _, rec := range fr.Records(cause.Trace()) {
				names[rec.Name]++
			}
			if names[causal.SimCell] == 0 {
				t.Errorf("%s: no sim.cell spans recorded (workers=%d)", e.id, workers)
			}
			if names[e.want] == 0 {
				t.Errorf("%s: no %s records (workers=%d); have %v", e.id, e.want, workers, names)
			}
			// The sink teed every record into the Perfetto trace.
			var buf strings.Builder
			if _, err := sink.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), causal.SimCell) {
				t.Errorf("%s: Perfetto trace missing teed sim.cell records", e.id)
			}
		}
	}
}
