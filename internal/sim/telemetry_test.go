package sim

import (
	"strings"
	"testing"

	"broadcastic/internal/telemetry"
)

// renderWith runs an experiment with the given recorder and returns the
// rendered table bytes.
func renderWith(t *testing.T, f func(Config) (*Table, error), workers int, rec telemetry.Recorder) string {
	t.Helper()
	cfg := Config{Seed: 7, Scale: Quick, Workers: workers, Recorder: rec}
	tbl, err := f(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestTelemetryEquivalence is the observability contract: installing a
// recorder changes no output bit. The same experiments exercised by
// TestSerialEquivalence must render byte-identical tables with a nil
// recorder and with a live collector, serially and in parallel — and E20
// additionally covers the networked runtime's recorder path.
func TestTelemetryEquivalence(t *testing.T) {
	experiments := []struct {
		id string
		f  func(Config) (*Table, error)
	}{
		{"E1", E1DisjScalingN},
		{"E4", E4AndInfoCost},
		{"E10", E10RejectionSampler},
		{"E20", E20NetworkedOverhead},
	}
	for _, e := range experiments {
		bare := renderWith(t, e.f, 1, nil)
		if len(bare) == 0 {
			t.Fatalf("%s: empty render", e.id)
		}
		for _, workers := range []int{1, 4} {
			rec := telemetry.NewCollector()
			if got := renderWith(t, e.f, workers, rec); got != bare {
				t.Fatalf("%s: table with recorder (workers=%d) differs from bare table:\n--- bare ---\n%s--- recorded ---\n%s",
					e.id, workers, bare, got)
			}
			// The equivalence must not be vacuous: the engine recorded cells.
			if cells := rec.Counter(telemetry.SimCells); cells == 0 {
				t.Fatalf("%s: recorder saw no cells (workers=%d)", e.id, workers)
			}
			if rec.Hist(telemetry.PoolWallNs).Count == 0 {
				t.Fatalf("%s: recorder saw no pool runs (workers=%d)", e.id, workers)
			}
		}
	}
}

// TestTelemetrySnapshotConsistency cross-checks the estimator counters
// against the experiment's known structure: every recorded shard ran under
// a span, and sample counts are multiples of what a cell requests.
func TestTelemetrySnapshotConsistency(t *testing.T) {
	rec := telemetry.NewCollector()
	if _, err := E4AndInfoCost(Config{Seed: 7, Scale: Quick, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	shards := rec.Counter(telemetry.CoreCICShards)
	if shards == 0 {
		t.Fatal("E4 recorded no estimator shards")
	}
	if got := rec.Hist(telemetry.CoreCICShardNs).Count; got != shards {
		t.Fatalf("shard wall-time histogram has %d samples for %d shards", got, shards)
	}
	if samples := rec.Counter(telemetry.CoreCICSamples); samples < shards {
		t.Fatalf("recorded %d samples over %d shards", samples, shards)
	}
}
