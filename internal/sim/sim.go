// Package sim is the experiment harness: it renders the twenty
// per-theorem experiments of EXPERIMENTS.md (E1–E21) as tables, with
// fixed-seed replication and simple summary statistics. Experiments run
// their sweep cells on a worker pool (see Config.Workers and engine.go)
// with output that is bit-identical at any worker count. cmd/experiments
// and the root benchmark suite are thin wrappers around this package.
package sim

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is one experiment's result: a titled grid of rendered cells.
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; cell counts are validated at render time.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "  %s\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		if len(row) != len(t.Header) {
			return fmt.Errorf("sim: row has %d cells, header has %d", len(row), len(t.Header))
		}
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return "  " + strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := 2
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, "  "+strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Stats summarizes a sample.
type Stats struct {
	Mean   float64
	StdErr float64
	N      int
}

// Summarize computes mean and standard error.
func Summarize(xs []float64) Stats {
	n := len(xs)
	if n == 0 {
		return Stats{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	se := 0.0
	if n > 1 {
		se = math.Sqrt(ss / float64(n-1) / float64(n))
	}
	return Stats{Mean: mean, StdErr: se, N: n}
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	case v != 0 && math.Abs(v) < 0.001:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 100000:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// FitSlope returns the least-squares slope and intercept of y against x —
// used to report how measured information costs scale against log k.
func FitSlope(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, fmt.Errorf("sim: need >= 2 paired points, got %d/%d", len(x), len(y))
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("sim: degenerate x values")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}
