package sim

import (
	"fmt"
	"math"
	mathbits "math/bits"
	"time"

	"broadcastic/internal/andk"
	"broadcastic/internal/batch"
	"broadcastic/internal/bitvec"
	"broadcastic/internal/blackboard"
	"broadcastic/internal/compress"
	"broadcastic/internal/core"
	"broadcastic/internal/disj"
	"broadcastic/internal/dist"
	"broadcastic/internal/faults"
	"broadcastic/internal/info"
	"broadcastic/internal/intersect"
	"broadcastic/internal/netrun"
	"broadcastic/internal/pointwise"
	"broadcastic/internal/pool"
	"broadcastic/internal/prob"
	"broadcastic/internal/radio"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/causal"
	"broadcastic/internal/twoparty"
)

// Scale selects experiment size: Quick for tests, Full for the recorded
// results in EXPERIMENTS.md.
type Scale int

// Scales.
const (
	Quick Scale = iota + 1
	Full
)

// Config parameterizes every experiment.
type Config struct {
	// Seed is the root of every random stream an experiment draws from;
	// fixed seed means bit-identical tables.
	Seed uint64
	// Scale selects the parameter grids (Quick or Full).
	Scale Scale
	// Workers bounds how many sweep cells run concurrently; 0 (the
	// default) means one worker per CPU. The rendered tables are
	// bit-identical for every value — see engine.go for why.
	Workers int
	// Recorder receives harness telemetry (per-cell wall time, pool
	// utilization, and the board/estimator accounting of instrumented
	// sub-runs); nil disables collection. Tables are bit-identical with
	// any recorder installed — the serial-equivalence tests pin this.
	Recorder telemetry.Recorder
	// Progress, when non-nil, is called after each sweep cell completes
	// successfully with the number of finished cells so far and the total
	// cell count of the sweep. Calls arrive from pool workers, so they may
	// be concurrent and `done` values may be observed out of order; `done`
	// itself is monotone per sweep. Like Recorder, the hook only observes —
	// tables are bit-identical whether or not it is installed.
	Progress func(done, total int)
	// DisableBatching forces the scalar engines where the 64-lane batch
	// engine would otherwise serve an experiment (the Monte-Carlo CIC
	// estimator, the E6 trial loop). The zero value — batching on — is
	// the default, mirroring disj.Options.DisableBatching; tables are
	// bit-identical either way, so the knob exists for benchmarking and
	// for the experiments binary's -batch flag, never for correctness.
	DisableBatching bool
	// DisableIR forces the interpreted engines where the compiled-IR
	// program would otherwise serve the Monte-Carlo CIC estimator. Tables
	// are bit-identical either way — the compile-vs-dynamic equivalence
	// harness pins it — so the knob exists for benchmarking and for the
	// binaries' -noir escape hatch, never for correctness.
	DisableIR bool
	// Causal, when enabled, threads a trace context through the run: the
	// engine wraps each sweep cell in a sim.cell span, and the networked
	// and estimator sub-runs attach their hop/retry/fault and shard
	// records to the same trace. Like Recorder, it only observes — the
	// zero Context disables tracing at one branch per site.
	Causal causal.Context
	// Params optionally overrides the experiment's sweep grid (see
	// params.go); the zero value runs the EXPERIMENTS.md defaults.
	Params Params
}

func (c Config) scaleOK() error {
	if c.Scale != Quick && c.Scale != Full {
		return fmt.Errorf("sim: invalid scale %d", c.Scale)
	}
	return nil
}

// E1DisjScalingN measures the optimal protocol's communication as n grows
// with k fixed (Theorem 2): bits / (n·log₂k + k) must flatten to a
// constant while bits / (n·log₂n) decays.
func E1DisjScalingN(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	ns := []int{256, 1024, 4096, 16384, 65536}
	trials := 5
	const k = 8
	if cfg.Scale == Quick {
		ns = []int{256, 1024}
		trials = 2
	}
	ns = cfg.nsGrid(ns)
	t := &Table{
		ID:     "E1",
		Title:  fmt.Sprintf("Optimal DISJ protocol, bits vs n (k=%d, disjoint inputs ~ mu^n)", k),
		Note:   "Theorem 2 shape: bits/(n log2 k + k) ~ constant; bits/(n log2 n) decays.",
		Header: []string{"n", "bits", "bits/(n·log2k+k)", "bits/(n·log2n)"},
	}
	err := sweepRows(cfg, t, rng.New(cfg.Seed), len(ns), func(cell int, src *rng.Source) ([]string, error) {
		n := ns[cell]
		var bits []float64
		var inst *disj.Instance
		for tr := 0; tr < trials; tr++ {
			var err error
			inst, err = disj.GenerateFromMuNInto(inst, src, n, k)
			if err != nil {
				return nil, err
			}
			out, err := disj.SolveOptimal(inst)
			if err != nil {
				return nil, err
			}
			if !out.Disjoint {
				return nil, fmt.Errorf("sim: E1 μ^n instance judged intersecting")
			}
			bits = append(bits, float64(out.Bits))
		}
		s := Summarize(bits)
		return []string{
			fmt.Sprintf("%d", n),
			F(s.Mean),
			F(s.Mean / disj.OptimalCostModel(n, k)),
			F(s.Mean / (float64(n) * math.Log2(float64(n)))),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E2DisjScalingK measures the optimal protocol as k grows with n fixed.
func E2DisjScalingK(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	ks := []int{2, 4, 8, 16, 32, 64}
	n := 16384
	trials := 5
	if cfg.Scale == Quick {
		ks = []int{2, 8}
		n = 1024
		trials = 2
	}
	ks = cfg.ksGrid(ks)
	t := &Table{
		ID:     "E2",
		Title:  fmt.Sprintf("Optimal DISJ protocol, bits vs k (n=%d)", n),
		Note:   "Theorem 2 shape: cost grows like log k, not like k.",
		Header: []string{"k", "bits", "bits/(n·log2k+k)", "bits/k"},
	}
	err := sweepRows(cfg, t, rng.New(cfg.Seed+1), len(ks), func(cell int, src *rng.Source) ([]string, error) {
		k := ks[cell]
		var bits []float64
		var inst *disj.Instance
		for tr := 0; tr < trials; tr++ {
			var err error
			inst, err = disj.GenerateFromMuNInto(inst, src, n, k)
			if err != nil {
				return nil, err
			}
			out, err := disj.SolveOptimal(inst)
			if err != nil {
				return nil, err
			}
			bits = append(bits, float64(out.Bits))
		}
		s := Summarize(bits)
		return []string{
			fmt.Sprintf("%d", k),
			F(s.Mean),
			F(s.Mean / disj.OptimalCostModel(n, k)),
			F(s.Mean / float64(k)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E3NaiveVsOptimal runs the two protocols head to head over an (n, k) grid.
func E3NaiveVsOptimal(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	grid := []struct{ n, k int }{
		{1024, 4}, {4096, 4}, {16384, 4},
		{1024, 16}, {4096, 16}, {16384, 16},
		{4096, 64}, {16384, 64},
	}
	trials := 3
	if cfg.Scale == Quick {
		grid = grid[:2]
		trials = 1
	}
	t := &Table{
		ID:     "E3",
		Title:  "Naive vs optimal DISJ protocol",
		Note:   "Intro claim: the optimal protocol wins by ≈ log n / log k on disjoint inputs.",
		Header: []string{"n", "k", "naive bits", "optimal bits", "naive/optimal", "log2n/log2k"},
	}
	err := sweepRows(cfg, t, rng.New(cfg.Seed+2), len(grid), func(cell int, src *rng.Source) ([]string, error) {
		g := grid[cell]
		var naive, opt []float64
		var inst *disj.Instance
		for tr := 0; tr < trials; tr++ {
			var err error
			inst, err = disj.GenerateFromMuNInto(inst, src, g.n, g.k)
			if err != nil {
				return nil, err
			}
			no, err := disj.SolveNaive(inst)
			if err != nil {
				return nil, err
			}
			oo, err := disj.SolveOptimal(inst)
			if err != nil {
				return nil, err
			}
			if no.Disjoint != oo.Disjoint {
				return nil, fmt.Errorf("sim: E3 protocols disagree")
			}
			naive = append(naive, float64(no.Bits))
			opt = append(opt, float64(oo.Bits))
		}
		ns, os := Summarize(naive), Summarize(opt)
		return []string{
			fmt.Sprintf("%d", g.n),
			fmt.Sprintf("%d", g.k),
			F(ns.Mean),
			F(os.Mean),
			F(ns.Mean / os.Mean),
			F(math.Log2(float64(g.n)) / math.Log2(float64(g.k))),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E4AndInfoCost measures CIC_μ(AND_k) for the sequential protocol: exactly
// for small k, by Monte-Carlo for large k, and fits the slope against
// log₂ k (Theorem 1's Ω(log k) shape).
func E4AndInfoCost(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	exactKs := []int{2, 4, 8, 12}
	mcKs := []int{32, 128, 512, 2048}
	samples := 20000
	if cfg.Scale == Quick {
		exactKs = []int{2, 4, 8}
		mcKs = []int{32}
		samples = 2000
	}
	// Closed-form rows (derived in internal/andk, cross-checked against
	// enumeration and sampling in the tests) extend the sweep to k = 2^20.
	closedKs := []int{1 << 14, 1 << 17, 1 << 20}
	if cfg.Scale == Quick {
		closedKs = []int{1 << 14}
	}
	t := &Table{
		ID:     "E4",
		Title:  "Conditional information cost of AND_k under the hard distribution mu",
		Note:   "Theorem 1 shape: CIC grows linearly in log2 k (slope reported in the final row).",
		Header: []string{"k", "method", "CIC (bits)", "stderr", "CIC/log2k"},
	}
	type cellSpec struct {
		k      int
		method string
	}
	var cells []cellSpec
	for _, k := range exactKs {
		cells = append(cells, cellSpec{k, "exact"})
	}
	for _, k := range mcKs {
		cells = append(cells, cellSpec{k, "monte-carlo"})
	}
	for _, k := range closedKs {
		cells = append(cells, cellSpec{k, "closed-form"})
	}
	type cellOut struct {
		cic    float64
		stderr string
	}
	results, err := sweep(cfg, rng.New(cfg.Seed+3), len(cells), func(cell int, src *rng.Source) (cellOut, error) {
		c := cells[cell]
		switch c.method {
		case "exact":
			spec, err := andk.NewSequential(c.k)
			if err != nil {
				return cellOut{}, err
			}
			mu, err := dist.NewMu(c.k)
			if err != nil {
				return cellOut{}, err
			}
			r, err := core.ExactCosts(spec, mu, core.TreeLimits{})
			if err != nil {
				return cellOut{}, err
			}
			return cellOut{cic: r.CIC, stderr: "0"}, nil
		case "monte-carlo":
			spec, err := andk.NewSequential(c.k)
			if err != nil {
				return cellOut{}, err
			}
			mu, err := dist.NewMu(c.k)
			if err != nil {
				return cellOut{}, err
			}
			est, err := core.EstimateCICOpts(spec, mu, src, samples, core.EstimateOptions{
				Workers:      cfg.workers(),
				Recorder:     cfg.Recorder,
				DisableLanes: cfg.DisableBatching,
				DisableIR:    cfg.DisableIR,
				Causal:       cfg.Causal,
			})
			if err != nil {
				return cellOut{}, err
			}
			return cellOut{cic: est.Mean, stderr: F(est.StdErr)}, nil
		default:
			cic, err := andk.SequentialCICExact(c.k)
			if err != nil {
				return cellOut{}, err
			}
			return cellOut{cic: cic, stderr: "0"}, nil
		}
	})
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for i, r := range results {
		k := cells[i].k
		xs = append(xs, math.Log2(float64(k)))
		ys = append(ys, r.cic)
		t.AddRow(fmt.Sprintf("%d", k), cells[i].method, F(r.cic), r.stderr, F(r.cic/math.Log2(float64(k))))
	}
	slope, intercept, err := FitSlope(xs, ys)
	if err != nil {
		return nil, err
	}
	t.AddRow("fit", "least-squares", fmt.Sprintf("slope=%s", F(slope)), fmt.Sprintf("icept=%s", F(intercept)), "")
	return t, nil
}

// E5DirectSum compares CIC(DISJ_{n,k}) under μ^n with n·CIC(AND_k) under μ
// (Lemma 1).
func E5DirectSum(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	const k = 4
	ns := []int{1, 2, 3, 4}
	if cfg.Scale == Quick {
		ns = []int{1, 2}
	}
	andSpec, err := andk.NewSequential(k)
	if err != nil {
		return nil, err
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		return nil, err
	}
	base, err := core.ExactCosts(andSpec, mu, core.TreeLimits{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E5",
		Title:  fmt.Sprintf("Direct sum: CIC(DISJ_{n,k}) vs n·CIC(AND_k), k=%d", k),
		Note:   "Lemma 1: CIC(DISJ) >= n·CIC(AND); for the per-coordinate protocol it is exactly n·CIC(AND).",
		Header: []string{"n", "CIC(DISJ)", "n·CIC(AND)", "per-copy", "ratio"},
	}
	err = sweepRows(cfg, t, nil, len(ns), func(cell int, _ *rng.Source) ([]string, error) {
		n := ns[cell]
		spec, err := disj.NewSequentialSpec(n, k)
		if err != nil {
			return nil, err
		}
		mun, err := dist.NewMuN(k, n)
		if err != nil {
			return nil, err
		}
		r, err := core.ExactCosts(spec, mun, core.TreeLimits{})
		if err != nil {
			return nil, err
		}
		return []string{
			fmt.Sprintf("%d", n),
			F(r.CIC),
			F(float64(n) * base.CIC),
			F(r.CIC / float64(n)),
			F(r.CIC / (float64(n) * base.CIC)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E6TruncatedError measures the Lemma 6 adversary: a deterministic AND_k
// protocol in which only m players speak errs with probability
// (1−ε')·(k−m)/k under the Lemma 6 distribution.
func E6TruncatedError(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	const k = 64
	const epsPrime = 0.2
	fracs := []float64{0.125, 0.25, 0.5, 0.75, 0.9, 1.0}
	trials := 200000
	if cfg.Scale == Quick {
		fracs = []float64{0.25, 1.0}
		trials = 20000
	}
	d, err := dist.NewLemma6Dist(k, epsPrime)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E6",
		Title:  fmt.Sprintf("Lemma 6: error of m-speaker deterministic AND_k (k=%d, eps'=%v)", k, epsPrime),
		Note:   "Any protocol with fewer than (1 − eps/(1−eps'))·k speakers on 1^k errs with probability > eps.",
		Header: []string{"m", "m/k", "measured error", "predicted (1-eps')(k-m)/k"},
	}
	err = sweepRows(cfg, t, rng.New(cfg.Seed+5), len(fracs), func(cell int, src *rng.Source) ([]string, error) {
		frac := fracs[cell]
		m := int(math.Ceil(frac * k))
		if m < 1 {
			m = 1
		}
		var wrong int
		if cfg.DisableBatching {
			for i := 0; i < trials; i++ {
				x, _ := d.Sample(src)
				out := 1
				for j := 0; j < m; j++ {
					if x[j] == 0 {
						out = 0
						break
					}
				}
				if out != core.AndFunc(x) {
					wrong++
				}
			}
		} else {
			var err error
			wrong, err = e6WrongBatch(d, src, k, m, trials)
			if err != nil {
				return nil, err
			}
		}
		return []string{
			fmt.Sprintf("%d", m),
			F(frac),
			F(float64(wrong) / float64(trials)),
			F((1 - epsPrime) * float64(k-m) / float64(k)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// e6WrongBatch is the E6 trial loop on the 64-lane executor: each lane
// holds one trial's input (all-ones except dist.Lemma6Dist.SampleZero's
// forced zero), one truncated run and one all-speak run decide 64 trials
// at once, and the per-batch error count is a popcount of the decision
// mismatch. SampleZero draws exactly what Sample draws, in the same trial
// order, so the measured error — an integer count — is identical to the
// scalar loop's, ragged final batch included.
func e6WrongBatch(d *dist.Lemma6Dist, src *rng.Source, k, m, trials int) (int, error) {
	exTrunc, err := batch.NewExec(batch.LaneSpec{Players: k, SpeakCap: m, HaltOnZero: true})
	if err != nil {
		return 0, err
	}
	exAll, err := batch.NewExec(batch.LaneSpec{Players: k, SpeakCap: k, HaltOnZero: false})
	if err != nil {
		return 0, err
	}
	inputs := make([]uint64, k)
	wrong := 0
	for base := 0; base < trials; base += batch.Lanes {
		lanes := trials - base
		if lanes > batch.Lanes {
			lanes = batch.Lanes
		}
		active := ^uint64(0)
		if lanes < batch.Lanes {
			active = uint64(1)<<uint(lanes) - 1
		}
		for i := range inputs {
			inputs[i] = ^uint64(0)
		}
		for L := 0; L < lanes; L++ {
			if z := d.SampleZero(src); z >= 0 {
				inputs[z] &^= 1 << uint(L)
			}
		}
		outs, err := exTrunc.Run(inputs, active)
		if err != nil {
			return 0, err
		}
		truth, err := exAll.Run(inputs, active)
		if err != nil {
			return 0, err
		}
		wrong += mathbits.OnesCount64((outs ^ truth) & active)
	}
	return wrong, nil
}

// E7InfoCommGap reports the Section 6 gap: worst-case communication of the
// sequential AND_k protocol is k, its external information cost is
// O(log k), so the ratio grows like k/log k.
func E7InfoCommGap(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	exactKs := []int{4, 8, 12, 16}
	mcKs := []int{64, 256, 1024}
	samples := 20000
	if cfg.Scale == Quick {
		exactKs = []int{4, 8}
		mcKs = []int{64}
		samples = 2000
	}
	closedKs := []int{1 << 14, 1 << 20}
	if cfg.Scale == Quick {
		closedKs = nil
	}
	t := &Table{
		ID:    "E7",
		Title: "Information vs communication gap for AND_k (sequential protocol)",
		Note: "Section 6: CC = k while IC <= H(Π) <= log2(k+1); " +
			"the gap CC/IC grows like k/log k.",
		Header: []string{"k", "CC (worst)", "CIC (bits)", "IC (bits)", "H(Π) bound", "gap CC/IC", "k/log2k"},
	}
	type cellSpec struct {
		k      int
		method string
	}
	var cells []cellSpec
	for _, k := range exactKs {
		cells = append(cells, cellSpec{k, "exact"})
	}
	for _, k := range mcKs {
		cells = append(cells, cellSpec{k, "monte-carlo"})
	}
	for _, k := range closedKs {
		cells = append(cells, cellSpec{k, "closed-form"})
	}
	type cellOut struct {
		cic, ic float64
	}
	results, err := sweep(cfg, rng.New(cfg.Seed+6), len(cells), func(cell int, src *rng.Source) (cellOut, error) {
		c := cells[cell]
		switch c.method {
		case "exact":
			spec, err := andk.NewSequential(c.k)
			if err != nil {
				return cellOut{}, err
			}
			mu, err := dist.NewMu(c.k)
			if err != nil {
				return cellOut{}, err
			}
			r, err := core.ExactCosts(spec, mu, core.TreeLimits{})
			if err != nil {
				return cellOut{}, err
			}
			return cellOut{cic: r.CIC, ic: r.ExternalIC}, nil
		case "monte-carlo":
			spec, err := andk.NewSequential(c.k)
			if err != nil {
				return cellOut{}, err
			}
			mu, err := dist.NewMu(c.k)
			if err != nil {
				return cellOut{}, err
			}
			cicEst, err := core.EstimateCICOpts(spec, mu, src.Split(0), samples, core.EstimateOptions{
				Workers:      cfg.workers(),
				Recorder:     cfg.Recorder,
				DisableLanes: cfg.DisableBatching,
				DisableIR:    cfg.DisableIR,
				Causal:       cfg.Causal,
			})
			if err != nil {
				return cellOut{}, err
			}
			// The chain-rule external-IC estimator costs O(k) per round (and
			// rounds grow with k), so scale its sample budget down with k.
			icSamples := 200000 / c.k
			if icSamples < 200 {
				icSamples = 200
			}
			if icSamples > samples {
				icSamples = samples
			}
			icEst, err := core.EstimateExternalIC(spec, mu, src.Split(1), icSamples)
			if err != nil {
				return cellOut{}, err
			}
			return cellOut{cic: cicEst.Mean, ic: icEst.Mean}, nil
		default:
			cic, err := andk.SequentialCICExact(c.k)
			if err != nil {
				return cellOut{}, err
			}
			ic, err := andk.SequentialICExact(c.k)
			if err != nil {
				return cellOut{}, err
			}
			return cellOut{cic: cic, ic: ic}, nil
		}
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		k := cells[i].k
		t.AddRow(
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", k),
			F(r.cic),
			F(r.ic),
			F(math.Log2(float64(k+1))),
			F(float64(k)/r.ic),
			F(float64(k)/math.Log2(float64(k))),
		)
	}
	return t, nil
}

// E8GoodTranscripts runs the Lemma 5 decomposition: the π₂ mass of
// transcripts that point at a zero-holder (α_i ≥ c·k) stays constant as k
// grows, for protocols with small error.
func E8GoodTranscripts(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	ks := []int{4, 6, 8, 10, 12}
	deltas := []float64{0, 0.05, 0.2}
	if cfg.Scale == Quick {
		ks = []int{4, 8}
		deltas = []float64{0, 0.2}
	}
	const c = 20.0 // likelihood-ratio constant C in the definition of L
	const cT = 1.0 // pointing threshold constant in α ≥ cT·k
	t := &Table{
		ID:     "E8",
		Title:  "Lemma 5: pi_2 mass of pointed transcripts (Lazy AND_k, give-up prob delta)",
		Note:   fmt.Sprintf("L defined with C=%v; pointing threshold alpha >= %v·k. Pointed mass must stay ~1−delta.", c, cT),
		Header: []string{"k", "delta", "mass(B1)", "mass(B0)", "mass(L')", "mass(pointed)"},
	}
	type cellSpec struct {
		k     int
		delta float64
	}
	var cells []cellSpec
	for _, k := range ks {
		for _, delta := range deltas {
			cells = append(cells, cellSpec{k, delta})
		}
	}
	err := sweepRows(cfg, t, nil, len(cells), func(cell int, _ *rng.Source) ([]string, error) {
		k, delta := cells[cell].k, cells[cell].delta
		var spec core.Spec
		if delta == 0 {
			s, err := andk.NewSequential(k)
			if err != nil {
				return nil, err
			}
			spec = s
		} else {
			s, err := andk.NewLazy(k, delta, 1)
			if err != nil {
				return nil, err
			}
			spec = s
		}
		leaves, err := core.EnumerateTranscripts(spec, core.TreeLimits{})
		if err != nil {
			return nil, err
		}
		rep, err := core.AnalyzeGoodTranscripts(leaves, c, cT)
		if err != nil {
			return nil, err
		}
		return []string{
			fmt.Sprintf("%d", k),
			F(delta),
			F(rep.MassB1),
			F(rep.MassB0),
			F(rep.MassLPrime),
			F(rep.MassPointed),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E9PosteriorPointing cross-checks the Lemma 4 closed form
// α/(α+k−1) against the Bayes posterior on every transcript of a
// randomized protocol, reporting the maximum absolute deviation.
func E9PosteriorPointing(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	ks := []int{3, 5, 7, 9}
	if cfg.Scale == Quick {
		ks = []int{3, 5}
	}
	t := &Table{
		ID:     "E9",
		Title:  "Lemma 4 / Eq. (5): Bayes posterior vs alpha/(alpha+k-1)",
		Note:   "Maximum absolute deviation over all transcripts and players of the Lazy protocol.",
		Header: []string{"k", "transcripts", "max |bayes - formula|"},
	}
	err := sweepRows(cfg, t, nil, len(ks), func(cell int, _ *rng.Source) ([]string, error) {
		k := ks[cell]
		spec, err := andk.NewLazy(k, 0.25, 0)
		if err != nil {
			return nil, err
		}
		mu, err := dist.NewMu(k)
		if err != nil {
			return nil, err
		}
		leaves, err := core.EnumerateTranscripts(spec, core.TreeLimits{})
		if err != nil {
			return nil, err
		}
		maxDev := 0.0
		for _, leaf := range leaves {
			alphas, err := core.Alphas(leaf)
			if err != nil {
				return nil, err
			}
			for i := 0; i < k; i++ {
				bayes, ok, err := bayesPosteriorZero(mu, leaf, i)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				formula := core.PosteriorZeroGivenNotSpecial(alphas[i], k)
				if dev := math.Abs(bayes - formula); dev > maxDev {
					maxDev = dev
				}
			}
		}
		return []string{fmt.Sprintf("%d", k), fmt.Sprintf("%d", len(leaves)), F(maxDev)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// bayesPosteriorZero computes Pr[X_i = 0 | Π = ℓ, Z ≠ i] directly from
// Bayes' rule under μ. ok is false when the transcript is unreachable
// conditioned on Z ≠ i.
func bayesPosteriorZero(mu *dist.Mu, leaf *core.Leaf, i int) (float64, bool, error) {
	k := mu.NumPlayers()
	num, den := 0.0, 0.0
	for z := 0; z < k; z++ {
		if z == i {
			continue
		}
		pz := mu.AuxProb(z)
		rest := 1.0
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			dj, err := mu.PlayerDist(z, j)
			if err != nil {
				return 0, false, err
			}
			rest *= dj.P(0)*leaf.Q[j][0] + dj.P(1)*leaf.Q[j][1]
		}
		di, err := mu.PlayerDist(z, i)
		if err != nil {
			return 0, false, err
		}
		num += pz * rest * di.P(0) * leaf.Q[i][0]
		den += pz * rest * (di.P(0)*leaf.Q[i][0] + di.P(1)*leaf.Q[i][1])
	}
	if den == 0 {
		return 0, false, nil
	}
	return num / den, true, nil
}

// E10RejectionSampler sweeps prior/posterior divergences and measures the
// Lemma 7 sampler's cost against D(η‖ν) + O(log D + 1).
func E10RejectionSampler(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	priors := []float64{0.3, 0.1, 0.03, 0.01, 0.003, 0.001}
	trials := 4000
	if cfg.Scale == Quick {
		priors = []float64{0.3, 0.01}
		trials = 500
	}
	t := &Table{
		ID:     "E10",
		Title:  "Lemma 7 rejection sampler: bits vs divergence",
		Note:   "eta = Bern(0.95 on value 0); nu spreads mass away. Overhead = mean bits - D stays O(log D).",
		Header: []string{"D(eta||nu)", "mean bits", "overhead", "model D+2log(D+2)+4"},
	}
	eta, err := prob.NewDist([]float64{0.95, 0.05})
	if err != nil {
		return nil, err
	}
	err = sweepRows(cfg, t, rng.New(cfg.Seed+9), len(priors), func(cell int, public *rng.Source) ([]string, error) {
		p := priors[cell]
		nu, err := prob.NewDist([]float64{p, 1 - p})
		if err != nil {
			return nil, err
		}
		d, err := info.KL(eta, nu)
		if err != nil {
			return nil, err
		}
		total := 0
		tr := compress.NewTransmitter()
		for i := 0; i < trials; i++ {
			res, err := tr.Transmit(eta, nu, public)
			if err != nil {
				return nil, err
			}
			total += res.Bits
		}
		mean := float64(total) / float64(trials)
		return []string{F(d), F(mean), F(mean - d), F(compress.CostModel(d, 4))}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E11AmortizedCompression measures Theorem 3: per-copy compressed cost of
// n parallel AND_k copies decreasing toward the external information cost.
func E11AmortizedCompression(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	const k = 6
	copyCounts := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	repeats := 40
	if cfg.Scale == Quick {
		copyCounts = []int{1, 8, 32}
		repeats = 10
	}
	spec, err := andk.NewSequential(k)
	if err != nil {
		return nil, err
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		return nil, err
	}
	exact, err := core.ExactCosts(spec, mu, core.TreeLimits{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E11",
		Title:  fmt.Sprintf("Theorem 3: amortized compression of n AND_%d copies", k),
		Note:   fmt.Sprintf("Per-copy compressed bits must approach IC = %s from above as n grows.", F(exact.ExternalIC)),
		Header: []string{"copies", "per-copy bits", "per-copy/IC", "uncompressed per-copy"},
	}
	err = sweepRows(cfg, t, rng.New(cfg.Seed+10), len(copyCounts), func(cell int, src *rng.Source) ([]string, error) {
		curve, err := compress.AmortizedCurve(spec, mu, copyCounts[cell:cell+1], repeats, src)
		if err != nil {
			return nil, err
		}
		pt := curve[0]
		return []string{
			fmt.Sprintf("%d", pt.Copies),
			F(pt.PerCopyBits),
			F(pt.PerCopyBits / exact.ExternalIC),
			F(pt.PerCopyOrig),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E12DivergenceBound verifies Eq. (3)–(4): the exact divergence of a
// pointed posterior dominates p·log₂k − 1 over a (k, p) grid.
func E12DivergenceBound(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	ks := []int{4, 16, 64, 256, 1024, 4096}
	ps := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	if cfg.Scale == Quick {
		ks = []int{4, 64}
		ps = []float64{0.25, 0.75}
	}
	t := &Table{
		ID:     "E12",
		Title:  "Eq. (4): D(Bern(p) || Bern(1/k)) >= p·log2(k) - 1",
		Note:   "margin = exact divergence - bound; must be nonnegative everywhere.",
		Header: []string{"k", "p", "exact D", "bound", "margin"},
	}
	type cellSpec struct {
		k int
		p float64
	}
	var cells []cellSpec
	for _, k := range ks {
		for _, p := range ps {
			cells = append(cells, cellSpec{k, p})
		}
	}
	err := sweepRows(cfg, t, nil, len(cells), func(cell int, _ *rng.Source) ([]string, error) {
		k, p := cells[cell].k, cells[cell].p
		exact := info.KLBernoulli(p, 1/float64(k))
		bound := info.PointedPosteriorDivergenceLB(p, k)
		margin := exact - bound
		if margin < -1e-12 {
			return nil, fmt.Errorf("sim: E12 bound violated at k=%d p=%v", k, p)
		}
		return []string{fmt.Sprintf("%d", k), F(p), F(exact), F(bound), F(margin)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E13SparseIntersection compares the hashing protocol against the naive
// baseline as the universe grows with sparsity fixed.
func E13SparseIntersection(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	ns := []int{1 << 10, 1 << 14, 1 << 18, 1 << 22}
	const s, k = 32, 4
	trials := 50
	if cfg.Scale == Quick {
		ns = []int{1 << 10, 1 << 14}
		trials = 10
	}
	t := &Table{
		ID:     "E13",
		Title:  fmt.Sprintf("Sparse intersection (s=%d, k=%d): hashed vs naive bits", s, k),
		Note:   "Intro claim (Hastad–Wigderson flavour): the log n factor is avoidable for sparse sets.",
		Header: []string{"n", "hashed bits", "naive bits", "naive/hashed"},
	}
	err := sweepRows(cfg, t, rng.New(cfg.Seed+12), len(ns), func(cell int, src *rng.Source) ([]string, error) {
		n := ns[cell]
		var hb, nb []float64
		for tr := 0; tr < trials; tr++ {
			inst, err := intersect.Generate(src, n, s, k, tr%2 == 0)
			if err != nil {
				return nil, err
			}
			_, want := inst.Truth()
			h, err := intersect.SolveHashed(inst, src.Uint64())
			if err != nil {
				return nil, err
			}
			nv, err := intersect.SolveNaive(inst)
			if err != nil {
				return nil, err
			}
			if h.Common != want || nv.Common != want {
				return nil, fmt.Errorf("sim: E13 protocol answered incorrectly")
			}
			hb = append(hb, float64(h.Bits))
			nb = append(nb, float64(nv.Bits))
		}
		hs, nsm := Summarize(hb), Summarize(nb)
		return []string{fmt.Sprintf("%d", n), F(hs.Mean), F(nsm.Mean), F(nsm.Mean / hs.Mean)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E14Ablations quantifies the two design choices of the Section 5 protocol
// by switching each off: batching (the ⌈log₂ C(z,w)⌉ subset encoding) and
// the z < k² endgame.
func E14Ablations(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	grid := []struct {
		n, k int
		kind string
	}{
		{1024, 8, "mun"}, {16384, 8, "mun"}, {65536, 8, "mun"}, // n >> k²: batching dominates
		{4096, 64, "mun"}, {16384, 64, "mun"}, // n ≈ k²: the endgame regime
		{4096, 64, "skew"}, // adversarial: one player holds every zero
	}
	trials := 3
	if cfg.Scale == Quick {
		grid = grid[:1]
		grid = append(grid, struct {
			n, k int
			kind string
		}{4096, 64, "skew"})
		trials = 1
	}
	t := &Table{
		ID:    "E14",
		Title: "Ablations of the Section 5 protocol",
		Note: "no-batching reintroduces a log n / log k factor (grows with n); the endgame " +
			"turns out to be an analysis device — measured cost moves < 1.5x either way.",
		Header: []string{"n", "k", "kind", "full bits", "no-batching", "nb/full", "no-endgame", "ne/full"},
	}
	err := sweepRows(cfg, t, rng.New(cfg.Seed+14), len(grid), func(cell int, src *rng.Source) ([]string, error) {
		g := grid[cell]
		n, k := g.n, g.k
		var full, noBatch, noEnd []float64
		var muInst *disj.Instance
		for tr := 0; tr < trials; tr++ {
			var inst *disj.Instance
			var err error
			if g.kind == "skew" {
				inst, err = skewedInstance(n, k)
			} else {
				muInst, err = disj.GenerateFromMuNInto(muInst, src, n, k)
				inst = muInst
			}
			if err != nil {
				return nil, err
			}
			f, err := disj.SolveOptimal(inst)
			if err != nil {
				return nil, err
			}
			nb, err := disj.SolveOptimalOpts(inst, disj.Options{DisableBatching: true})
			if err != nil {
				return nil, err
			}
			ne, err := disj.SolveOptimalOpts(inst, disj.Options{DisableEndgame: true})
			if err != nil {
				return nil, err
			}
			if !f.Disjoint || !nb.Disjoint || !ne.Disjoint {
				return nil, fmt.Errorf("sim: E14 ablated protocol answered incorrectly")
			}
			full = append(full, float64(f.Bits))
			noBatch = append(noBatch, float64(nb.Bits))
			noEnd = append(noEnd, float64(ne.Bits))
		}
		fs, nbs, nes := Summarize(full), Summarize(noBatch), Summarize(noEnd)
		return []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", k),
			g.kind,
			F(fs.Mean),
			F(nbs.Mean),
			F(nbs.Mean / fs.Mean),
			F(nes.Mean),
			F(nes.Mean / fs.Mean),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// skewedInstance builds the adversarial tail case for the endgame
// ablation: player 0's set is empty (it holds every zero) and everyone
// else holds the full universe — disjoint, with all progress funneled
// through one player.
func skewedInstance(n, k int) (*disj.Instance, error) {
	sets := make([]*bitvec.Vector, k)
	for i := range sets {
		v, err := bitvec.New(n)
		if err != nil {
			return nil, err
		}
		if i > 0 {
			v.SetAll()
		}
		sets[i] = v
	}
	return disj.NewInstance(n, sets)
}

// E15TwoPartyBaseline verifies the classical k = 2 picture the paper
// builds on: the fooling-set bound CC(DISJ_n) ≥ n, the (n+1)-bit trivial
// protocol, and the broadcast-model optimal protocol specialized to two
// players, which must land within a constant factor of the same Θ(n).
func E15TwoPartyBaseline(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	ns := []int{4, 6, 8, 10}
	trials := 5
	if cfg.Scale == Quick {
		ns = []int{4, 6}
		trials = 2
	}
	t := &Table{
		ID:    "E15",
		Title: "Two-party baseline: DISJ_n at k=2",
		Note: "fooling-set bound n <= CC <= n+1 (trivial protocol); the broadcast " +
			"optimal protocol at k=2 stays within a constant factor of n.",
		Header: []string{"n", "fooling LB", "trivial worst", "broadcast bits (mean)", "broadcast/n"},
	}
	err := sweepRows(cfg, t, rng.New(cfg.Seed+15), len(ns), func(cell int, src *rng.Source) ([]string, error) {
		n := ns[cell]
		f, err := twoparty.Disjointness(n)
		if err != nil {
			return nil, err
		}
		fs, err := twoparty.DisjointnessFoolingSet(n)
		if err != nil {
			return nil, err
		}
		if err := fs.Verify(f); err != nil {
			return nil, fmt.Errorf("sim: E15 fooling set invalid: %w", err)
		}
		tree, err := twoparty.TrivialProtocol(f)
		if err != nil {
			return nil, err
		}
		ok, worst, err := tree.Correct(f)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("sim: E15 trivial protocol incorrect at n=%d", n)
		}
		var bcBits []float64
		for tr := 0; tr < trials; tr++ {
			inst, err := disj.GenerateDisjoint(src, n, 2, 0.5)
			if err != nil {
				return nil, err
			}
			out, err := disj.SolveOptimal(inst)
			if err != nil {
				return nil, err
			}
			bcBits = append(bcBits, float64(out.Bits))
		}
		s := Summarize(bcBits)
		return []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", fs.LowerBound()),
			fmt.Sprintf("%d", worst),
			F(s.Mean),
			F(s.Mean / float64(n)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E16CostBreakdown decomposes the optimal protocol's measured cost into
// pass bits, batch payloads and endgame writes, explaining the constant
// the E1/E2 normalizations flatten to.
func E16CostBreakdown(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	grid := []struct{ n, k int }{
		{4096, 4}, {16384, 4}, {4096, 16}, {16384, 16}, {16384, 64},
	}
	trials := 3
	if cfg.Scale == Quick {
		grid = grid[:2]
		trials = 1
	}
	t := &Table{
		ID:    "E16",
		Title: "Optimal DISJ protocol: where the bits go",
		Note: "batch payload per coordinate ≈ log2(e·k) (the paper's amortized cost); " +
			"pass bits ≈ k per cycle; endgame bounded by k²·O(log k).",
		Header: []string{"n", "k", "total", "pass", "batch", "endgame", "cycles", "batch/coord"},
	}
	err := sweepRows(cfg, t, rng.New(cfg.Seed+16), len(grid), func(cell int, src *rng.Source) ([]string, error) {
		g := grid[cell]
		var tot, pass, batch, end, cycles, perCoord []float64
		var inst *disj.Instance
		for tr := 0; tr < trials; tr++ {
			var err error
			inst, err = disj.GenerateFromMuNInto(inst, src, g.n, g.k)
			if err != nil {
				return nil, err
			}
			out, bd, err := disj.SolveOptimalDetailed(inst, disj.Options{})
			if err != nil {
				return nil, err
			}
			tot = append(tot, float64(out.Bits))
			pass = append(pass, float64(bd.PassBits))
			batch = append(batch, float64(bd.BatchBits))
			end = append(end, float64(bd.EndgameBits))
			cycles = append(cycles, float64(bd.Cycles))
			perCoord = append(perCoord, float64(bd.BatchBits+bd.EndgameBits)/float64(g.n))
		}
		return []string{
			fmt.Sprintf("%d", g.n),
			fmt.Sprintf("%d", g.k),
			F(Summarize(tot).Mean),
			F(Summarize(pass).Mean),
			F(Summarize(batch).Mean),
			F(Summarize(end).Mean),
			F(Summarize(cycles).Mean),
			F(Summarize(perCoord).Mean),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E17PointwiseOr measures the union (pointwise-OR) protocol discussed in
// the paper's comparison with symmetrization [24]: one batched pass,
// measured against the information bound log₂ C(n, |U|) + k and the naive
// n·k baseline.
func E17PointwiseOr(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	const n, k = 8192, 8
	densities := []float64{0.002, 0.01, 0.05, 0.2, 0.5}
	trials := 5
	if cfg.Scale == Quick {
		densities = []float64{0.01, 0.2}
		trials = 2
	}
	t := &Table{
		ID:    "E17",
		Title: fmt.Sprintf("Pointwise-OR (union) protocol, n=%d k=%d", n, k),
		Note: "batched one-pass protocol vs the information bound log2 C(n,|U|)+k " +
			"and the naive n·k baseline; near-optimal for sparse unions.",
		Header: []string{"density", "|U| (mean)", "bits", "info LB", "bits/LB", "naive n·k"},
	}
	err := sweepRows(cfg, t, rng.New(cfg.Seed+17), len(densities), func(cell int, src *rng.Source) ([]string, error) {
		d := densities[cell]
		var size, bits, lbs []float64
		for tr := 0; tr < trials; tr++ {
			inst, err := pointwise.Generate(src, n, k, d)
			if err != nil {
				return nil, err
			}
			want, err := inst.TrueUnion()
			if err != nil {
				return nil, err
			}
			res, err := pointwise.SolveUnion(inst)
			if err != nil {
				return nil, err
			}
			if !res.Union.Equal(want) {
				return nil, fmt.Errorf("sim: E17 union incorrect")
			}
			lb, err := pointwise.InformationLowerBound(n, res.Union.Count(), k)
			if err != nil {
				return nil, err
			}
			size = append(size, float64(res.Union.Count()))
			bits = append(bits, float64(res.Bits))
			lbs = append(lbs, float64(lb))
		}
		bs, ls := Summarize(bits), Summarize(lbs)
		return []string{
			F(d),
			F(Summarize(size).Mean),
			F(bs.Mean),
			F(ls.Mean),
			F(bs.Mean / ls.Mean),
			fmt.Sprintf("%d", n*k),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E18InternalVsExternal measures the Section 6 footnote comparison at
// k = 2: internal information (what the players learn about each other)
// never exceeds external information (what an observer learns), with a
// strict gap under the correlated hard distribution μ.
func E18InternalVsExternal(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	mu, err := dist.NewMu(2)
	if err != nil {
		return nil, err
	}
	half, err := prob.Bernoulli(0.5)
	if err != nil {
		return nil, err
	}
	uniform, err := dist.NewProductPrior([]prob.Dist{half, half})
	if err != nil {
		return nil, err
	}
	priors := []struct {
		name  string
		prior core.Prior
	}{
		{"mu(k=2)", mu},
		{"uniform", uniform},
	}
	specs := []struct {
		name string
		mk   func() (core.Spec, error)
	}{
		{"sequential", func() (core.Spec, error) { return andk.NewSequential(2) }},
		{"broadcast", func() (core.Spec, error) { return andk.NewBroadcastAll(2) }},
		{"lazy(0.3)", func() (core.Spec, error) { return andk.NewLazy(2, 0.3, 0) }},
	}
	t := &Table{
		ID:    "E18",
		Title: "Internal vs external information cost at k=2",
		Note: "Section 6 footnote: internal <= external for two players; the notion " +
			"does not extend to k > 2, which is why the paper uses external information.",
		Header: []string{"protocol", "prior", "internal IC", "external IC", "int/ext"},
	}
	type cellSpec struct {
		spec, prior int
	}
	var cells []cellSpec
	for si := range specs {
		for pi := range priors {
			cells = append(cells, cellSpec{si, pi})
		}
	}
	err = sweepRows(cfg, t, nil, len(cells), func(cell int, _ *rng.Source) ([]string, error) {
		sp, pr := specs[cells[cell].spec], priors[cells[cell].prior]
		spec, err := sp.mk()
		if err != nil {
			return nil, err
		}
		internal, err := core.ExactInternalIC(spec, pr.prior, core.TreeLimits{})
		if err != nil {
			return nil, err
		}
		external, err := core.ExactCosts(spec, pr.prior, core.TreeLimits{})
		if err != nil {
			return nil, err
		}
		if internal > external.ExternalIC+1e-9 {
			return nil, fmt.Errorf("sim: E18 internal exceeds external for %s/%s", sp.name, pr.name)
		}
		ratio := 1.0
		if external.ExternalIC > 0 {
			ratio = internal / external.ExternalIC
		}
		return []string{sp.name, pr.name, F(internal), F(external.ExternalIC), F(ratio)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E19WirelessContention measures what the blackboard abstraction hides:
// the Section 5 protocol mapped onto a slotted single-hop radio channel,
// polled (the abstraction's reading) versus contention-based with channel
// capture and exponential backoff (Las Vegas, zero error).
func E19WirelessContention(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	const payload = 32
	grid := []struct {
		n, k int
		kind string
	}{
		{4096, 8, "mun"}, {16384, 8, "mun"},
		{4096, 64, "mun"}, {16384, 64, "mun"},
		{4096, 64, "skew"}, {16384, 64, "skew"},
	}
	trials := 3
	if cfg.Scale == Quick {
		grid = []struct {
			n, k int
			kind string
		}{{1024, 8, "mun"}, {1024, 16, "skew"}}
		trials = 1
	}
	t := &Table{
		ID:    "E19",
		Title: fmt.Sprintf("Single-hop wireless reading of the broadcast model (%d-bit slots)", payload),
		Note: "polled = the paper's abstraction (deterministic schedule, no contention); " +
			"contention = capture + exponential backoff, zero error. Polling wins when everyone " +
			"speaks; contention wins when speakers are rare (skew).",
		Header: []string{"n", "k", "kind", "polled slots", "contention slots", "collisions", "cont/polled"},
	}
	err := sweepRows(cfg, t, rng.New(cfg.Seed+19), len(grid), func(cell int, src *rng.Source) ([]string, error) {
		g := grid[cell]
		var polledSlots, contSlots, collisions []float64
		for tr := 0; tr < trials; tr++ {
			var inst *disj.Instance
			var err error
			if g.kind == "skew" {
				inst, err = skewedInstance(g.n, g.k)
			} else {
				inst, err = disj.GenerateFromMuN(src, g.n, g.k)
			}
			if err != nil {
				return nil, err
			}
			pOut, pRep, err := radio.RunPolledDisj(inst, payload)
			if err != nil {
				return nil, err
			}
			cOut, cRep, err := radio.ContentionDisj(inst, payload, src.Split(uint64(tr)))
			if err != nil {
				return nil, err
			}
			if pOut.Disjoint != cOut.Disjoint {
				return nil, fmt.Errorf("sim: E19 executions disagree")
			}
			polledSlots = append(polledSlots, float64(pRep.TotalSlots()))
			contSlots = append(contSlots, float64(cRep.TotalSlots()))
			collisions = append(collisions, float64(cRep.Collisions))
		}
		ps, cs := Summarize(polledSlots), Summarize(contSlots)
		return []string{
			fmt.Sprintf("%d", g.n),
			fmt.Sprintf("%d", g.k),
			g.kind,
			F(ps.Mean),
			F(cs.Mean),
			F(Summarize(collisions).Mean),
			F(cs.Mean / ps.Mean),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E20NetworkedOverhead runs the Section 5 protocol on the concurrent
// networked runtime (internal/netrun) under increasing recoverable fault
// rates, measuring what reliability costs: the board-level bits are
// invariant (the ARQ layer repairs every fault below the protocol), while
// the wire-level bits — headers, acks, retransmissions — grow with the
// fault rate. The fault-free row calibrates the framing overhead itself.
//
// Only drop/dup/corrupt mixes appear: delay faults would make wall-clock
// scheduling (not the seed) decide retransmissions, breaking the
// bit-identical-at-any-worker-count contract this harness guarantees.
func E20NetworkedOverhead(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	n, k, trials := 1024, 8, 3
	if cfg.Scale == Quick {
		n, k, trials = 256, 6, 2
	}
	n = firstOr(cfg.Params.Ns, n)
	k = firstOr(cfg.Params.Ks, k)
	mixes := cfg.faultMixes([]string{
		"none",
		"drop=0.04",
		"drop=0.12",
		"dup=0.1",
		"corrupt=0.04",
		"drop=0.05,dup=0.05,corrupt=0.02",
	})

	// One shared instance and fault-free reference transcript, generated
	// serially so every sweep cell (at any worker count) sees the same run.
	inst, err := disj.GenerateFromMuN(rng.New(cfg.Seed+20), n, k)
	if err != nil {
		return nil, err
	}
	refProto, err := disj.NewOptimalProtocol(inst, disj.Options{})
	if err != nil {
		return nil, err
	}
	refRes, err := blackboard.Run(refProto.Scheduler(), refProto.Players(), nil, refProto.Limits())
	if err != nil {
		return nil, err
	}
	refKey := refRes.Board.TranscriptKey()
	refOut, err := refProto.Outcome(refRes.Board)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "E20",
		Title: fmt.Sprintf("Delivered-bits overhead of the networked runtime vs fault rate (n=%d, k=%d)", n, k),
		Note: "chan transport, stop-and-wait ARQ; board bits are invariant by the conformance " +
			"guarantee, wire bits (headers+acks+retransmissions) pay for reliability.",
		Header: []string{"faults", "board bits", "wire bits", "wire/board", "retries", "injected"},
	}
	err = sweepRows(cfg, t, rng.New(cfg.Seed+120), len(mixes), func(cell int, src *rng.Source) ([]string, error) {
		plan, err := faults.Parse(mixes[cell])
		if err != nil {
			return nil, err
		}
		var wireBits, retries []float64
		var injected faults.Counts
		for tr := 0; tr < trials; tr++ {
			proto, err := disj.NewOptimalProtocol(inst, disj.Options{})
			if err != nil {
				return nil, err
			}
			// The generous timeout is a backstop only: injected drops
			// retransmit immediately and corruptions repair via nack, so the
			// wire statistics are seed-deterministic regardless of machine
			// load (the worker-invariance contract).
			res, err := netrun.Run(proto.Scheduler(), proto.Players(), nil, netrun.Config{
				Faults:   plan,
				Seed:     src.Uint64(),
				Timeout:  time.Second,
				Limits:   proto.Limits(),
				Recorder: cfg.Recorder,
				Causal:   cfg.Causal,
			})
			if err != nil {
				return nil, err
			}
			if res.Board.TranscriptKey() != refKey {
				return nil, fmt.Errorf("sim: E20 transcript diverged under %q", mixes[cell])
			}
			out, err := proto.Outcome(res.Board)
			if err != nil {
				return nil, err
			}
			if out.Disjoint != refOut.Disjoint {
				return nil, fmt.Errorf("sim: E20 answer flipped under %q", mixes[cell])
			}
			wireBits = append(wireBits, float64(res.Stats.WireBits))
			var r int64
			for _, ps := range res.Stats.PerPlayer {
				r += ps.Retries
			}
			retries = append(retries, float64(r))
			injected.Add(res.Stats.Faults)
		}
		ws := Summarize(wireBits)
		return []string{
			mixes[cell],
			fmt.Sprintf("%d", refOut.Bits),
			F(ws.Mean),
			F(ws.Mean / float64(refOut.Bits)),
			F(Summarize(retries).Mean),
			injected.String(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E21TopologySeparation charts the broadcast-vs-message-passing separation
// the paper's model comparison is about: on the shared blackboard the
// Section 5 protocol solves DISJ in Θ(n·log k + k) bits, while in the
// coordinator model — players wired to a hub, no board — the BEOPV lower
// bound makes Θ(n·k) unavoidable and the bitmap protocol meets it exactly.
// Both sides run on the same instances over a sweep of (n, k): the
// broadcast side on the sequential blackboard runtime, the coordinator side
// on the networked runtime over an explicit star topology with
// message-passing delivery (no SYNC traffic, replicas empty), so the run
// also exercises per-link wire accounting — the experiment checks that the
// netrun.topo link counters sum to the run totals before reporting.
func E21TopologySeparation(cfg Config) (*Table, error) {
	if err := cfg.scaleOK(); err != nil {
		return nil, err
	}
	ns, ks, trials := []int{512, 2048}, []int{4, 8, 16}, 3
	if cfg.Scale == Quick {
		ns, ks, trials = []int{256}, []int{4, 8}, 2
	}
	ns = cfg.nsGrid(ns)
	ks = cfg.ksGrid(ks)
	type gridCell struct{ n, k int }
	var cells []gridCell
	for _, n := range ns {
		for _, k := range ks {
			cells = append(cells, gridCell{n, k})
		}
	}
	t := &Table{
		ID:    "E21",
		Title: "Broadcast model vs coordinator model: DISJ bits under an explicit topology",
		Note: "broadcast = Section 5 protocol on the blackboard (Θ(n log k + k)); coordinator = exact " +
			"bitmap protocol to a hub over a netrun star topology, message-passing delivery (Θ(n·k)); " +
			"wire bits include framing and acks, checked to sum per-link.",
		Header: []string{"n", "k", "bcast bits", "coord bits", "coord/bcast", "bcast/(n·log2k+k)", "coord/(n·k)", "coord wire bits"},
	}
	err := sweepRows(cfg, t, rng.New(cfg.Seed+21), len(cells), func(cell int, src *rng.Source) ([]string, error) {
		n, k := cells[cell].n, cells[cell].k
		var bcastBits, coordBits, wireBits []float64
		var inst *disj.Instance
		for tr := 0; tr < trials; tr++ {
			var err error
			inst, err = disj.GenerateFromMuNInto(inst, src, n, k)
			if err != nil {
				return nil, err
			}
			bOut, err := disj.SolveOptimal(inst)
			if err != nil {
				return nil, err
			}
			cProto, err := disj.NewCoordinatorProtocol(inst, disj.CoordinatorOptions{})
			if err != nil {
				return nil, err
			}
			res, err := netrun.Run(cProto.Scheduler(), cProto.Players(), nil, netrun.Config{
				Topology: netrun.Star{},
				Delivery: netrun.DeliverCoordinator,
				Seed:     src.Uint64(),
				Timeout:  time.Second,
				Limits:   cProto.Limits(),
				Recorder: cfg.Recorder,
				Causal:   cfg.Causal,
			})
			if err != nil {
				return nil, err
			}
			cOut, err := cProto.Outcome(res.Board)
			if err != nil {
				return nil, err
			}
			if cOut.Disjoint != bOut.Disjoint {
				return nil, fmt.Errorf("sim: E21 models disagree at n=%d k=%d", n, k)
			}
			if cOut.Bits != n*k {
				return nil, fmt.Errorf("sim: E21 exact coordinator protocol cost %d bits, want n·k = %d", cOut.Bits, n*k)
			}
			var perLink int64
			for _, ls := range res.Stats.PerLink {
				perLink += ls.WireBits
			}
			if perLink != res.Stats.WireBits {
				return nil, fmt.Errorf("sim: E21 per-link wire bits %d do not sum to total %d", perLink, res.Stats.WireBits)
			}
			bcastBits = append(bcastBits, float64(bOut.Bits))
			coordBits = append(coordBits, float64(cOut.Bits))
			wireBits = append(wireBits, float64(res.Stats.WireBits))
		}
		bs, cs := Summarize(bcastBits), Summarize(coordBits)
		return []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", k),
			F(bs.Mean),
			F(cs.Mean),
			F(cs.Mean / bs.Mean),
			F(bs.Mean / disj.OptimalCostModel(n, k)),
			F(cs.Mean / disj.CoordinatorCostModel(float64(n), float64(k))),
			F(Summarize(wireBits).Mean),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Experiment is one registered experiment: its EXPERIMENTS.md ID and the
// function that renders its table.
type Experiment struct {
	ID  string
	Run func(Config) (*Table, error)
}

// Experiments returns the full registry in E1..E21 order. The slice is
// freshly allocated; callers may filter or reorder it. The registry is the
// single source of truth shared by All, cmd/experiments and the root
// benchmark/telemetry harness.
func Experiments() []Experiment {
	return []Experiment{
		{"E1", E1DisjScalingN}, {"E2", E2DisjScalingK},
		{"E3", E3NaiveVsOptimal}, {"E4", E4AndInfoCost},
		{"E5", E5DirectSum}, {"E6", E6TruncatedError},
		{"E7", E7InfoCommGap}, {"E8", E8GoodTranscripts},
		{"E9", E9PosteriorPointing}, {"E10", E10RejectionSampler},
		{"E11", E11AmortizedCompression}, {"E12", E12DivergenceBound},
		{"E13", E13SparseIntersection}, {"E14", E14Ablations},
		{"E15", E15TwoPartyBaseline}, {"E16", E16CostBreakdown},
		{"E17", E17PointwiseOr}, {"E18", E18InternalVsExternal},
		{"E19", E19WirelessContention}, {"E20", E20NetworkedOverhead},
		{"E21", E21TopologySeparation},
	}
}

// All runs every experiment and returns the tables in E1..E21 order. The
// experiments themselves run concurrently on the configured worker pool
// (each one also parallelizes its own sweep); every experiment seeds its
// randomness independently from cfg.Seed, so the tables are identical to a
// serial run.
func All(cfg Config) ([]*Table, error) {
	exps := Experiments()
	return pool.Map(cfg.workers(), len(exps), func(i int) (*Table, error) {
		return exps[i].Run(cfg)
	})
}
