package sim

import (
	"runtime"
	"strings"
	"testing"
)

// renderAt runs an experiment at the given worker count and returns the
// rendered table bytes.
func renderAt(t *testing.T, f func(Config) (*Table, error), workers int) string {
	t.Helper()
	cfg := Config{Seed: 7, Scale: Quick, Workers: workers}
	tbl, err := f(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestSerialEquivalence is the engine's core guarantee: a representative
// subset of experiments must render byte-identical tables at Workers=1,
// Workers=4 and Workers=GOMAXPROCS. E1 covers the plain one-row-per-cell
// sweep, E4 the multi-phase sweep with a serial fit row and a nested
// sharded estimator, E10 a shared-distribution sweep over the sampler.
func TestSerialEquivalence(t *testing.T) {
	experiments := []struct {
		id string
		f  func(Config) (*Table, error)
	}{
		{"E1", E1DisjScalingN},
		{"E4", E4AndInfoCost},
		{"E10", E10RejectionSampler},
	}
	for _, e := range experiments {
		serial := renderAt(t, e.f, 1)
		if len(serial) == 0 {
			t.Fatalf("%s: empty serial render", e.id)
		}
		for _, workers := range []int{4, runtime.GOMAXPROCS(0), 0} {
			if got := renderAt(t, e.f, workers); got != serial {
				t.Fatalf("%s: workers=%d render differs from serial:\n--- serial ---\n%s--- workers=%d ---\n%s",
					e.id, workers, serial, workers, got)
			}
		}
	}
}

// TestBatchingTableEquivalence pins the lane engine's sim-facing contract:
// every experiment that routes through the 64-lane batch path (E4 and E7
// via the lane estimator, E6 via the word-parallel trial executor) must
// render a byte-identical table with batching disabled — at both serial
// and parallel worker counts, since the two toggles compose.
// TestIRTableEquivalence pins the compiled-IR engine's sim-facing
// contract: experiments that route through the IR fast path must render
// byte-identical tables with it disabled (-noir), at both serial and
// parallel worker counts.
func TestIRTableEquivalence(t *testing.T) {
	render := func(f func(Config) (*Table, error), disable bool, workers int) string {
		t.Helper()
		tbl, err := f(Config{Seed: 7, Scale: Quick, Workers: workers, DisableIR: disable})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	experiments := []struct {
		id string
		f  func(Config) (*Table, error)
	}{
		{"E4", E4AndInfoCost},
		{"E7", E7InfoCommGap},
	}
	for _, e := range experiments {
		for _, workers := range []int{1, 4} {
			compiled := render(e.f, false, workers)
			dynamic := render(e.f, true, workers)
			if compiled != dynamic {
				t.Fatalf("%s: workers=%d compiled render differs from dynamic:\n--- compiled ---\n%s--- dynamic ---\n%s",
					e.id, workers, compiled, dynamic)
			}
		}
	}
}

func TestBatchingTableEquivalence(t *testing.T) {
	render := func(f func(Config) (*Table, error), disable bool, workers int) string {
		t.Helper()
		tbl, err := f(Config{Seed: 7, Scale: Quick, Workers: workers, DisableBatching: disable})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	experiments := []struct {
		id string
		f  func(Config) (*Table, error)
	}{
		{"E4", E4AndInfoCost},
		{"E6", E6TruncatedError},
		{"E7", E7InfoCommGap},
	}
	for _, e := range experiments {
		for _, workers := range []int{1, 4} {
			batched := render(e.f, false, workers)
			scalar := render(e.f, true, workers)
			if batched != scalar {
				t.Fatalf("%s: workers=%d batched render differs from scalar:\n--- batched ---\n%s--- scalar ---\n%s",
					e.id, workers, batched, scalar)
			}
		}
	}
}

// TestAllWorkerCountInvariance renders the full suite at 1 and 4 workers;
// every one of the twenty tables must match byte for byte.
func TestAllWorkerCountInvariance(t *testing.T) {
	render := func(workers int) []string {
		tables, err := All(Config{Seed: 7, Scale: Quick, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(tables))
		for i, tbl := range tables {
			var sb strings.Builder
			if err := tbl.Render(&sb); err != nil {
				t.Fatal(err)
			}
			out[i] = sb.String()
		}
		return out
	}
	serial := render(1)
	parallel := render(4)
	if len(serial) != 21 || len(parallel) != 21 {
		t.Fatalf("suite sizes %d/%d, want 21", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("table %d differs between 1 and 4 workers:\n--- serial ---\n%s--- parallel ---\n%s",
				i, serial[i], parallel[i])
		}
	}
}

func TestAddRow(t *testing.T) {
	tbl := &Table{ID: "T", Title: "t", Header: []string{"a", "b"}}
	if len(tbl.Rows) != 0 {
		t.Fatalf("fresh table has %d rows", len(tbl.Rows))
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("3", "4")
	if len(tbl.Rows) != 2 {
		t.Fatalf("after two AddRow calls: %d rows", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "1" || tbl.Rows[0][1] != "2" || tbl.Rows[1][0] != "3" || tbl.Rows[1][1] != "4" {
		t.Fatalf("rows stored out of order or corrupted: %v", tbl.Rows)
	}
	// AddRow validates nothing — mismatched widths are deferred to Render.
	tbl.AddRow("lonely")
	if len(tbl.Rows) != 3 {
		t.Fatal("mismatched row not stored")
	}
}

func TestRenderMismatchedCellCount(t *testing.T) {
	tbl := &Table{ID: "X", Title: "x", Header: []string{"a", "b", "c"}}
	tbl.AddRow("1", "2", "3")
	tbl.AddRow("1", "2") // short row
	var sb strings.Builder
	err := tbl.Render(&sb)
	if err == nil {
		t.Fatal("mismatched cell count rendered without error")
	}
	if !strings.Contains(err.Error(), "2 cells") || !strings.Contains(err.Error(), "3") {
		t.Fatalf("error %q does not name the mismatched counts", err)
	}
}
