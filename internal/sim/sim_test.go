package sim

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:     "T1",
		Title:  "demo",
		Note:   "a note",
		Header: []string{"a", "bb"},
	}
	tbl.AddRow("1", "2")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T1", "demo", "a note", "bb"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	bad := &Table{ID: "X", Title: "x", Header: []string{"a"}}
	bad.AddRow("1", "2")
	if err := bad.Render(&sb); err == nil {
		t.Fatal("mismatched row rendered")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if math.Abs(s.Mean-2) > 1e-12 || s.N != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.StdErr <= 0 {
		t.Fatal("stderr not positive for varying data")
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty Summarize = %+v", empty)
	}
	one := Summarize([]float64{5})
	if one.StdErr != 0 {
		t.Fatal("single sample has nonzero stderr")
	}
}

func TestF(t *testing.T) {
	if F(math.Inf(1)) != "inf" || F(math.Inf(-1)) != "-inf" || F(math.NaN()) != "nan" {
		t.Fatal("special values misrendered")
	}
	if F(1.5) != "1.500" {
		t.Fatalf("F(1.5) = %s", F(1.5))
	}
	if !strings.Contains(F(0.00001), "e") {
		t.Fatalf("tiny value not scientific: %s", F(0.00001))
	}
	if !strings.Contains(F(1e7), "e") {
		t.Fatalf("huge value not scientific: %s", F(1e7))
	}
}

func TestFitSlope(t *testing.T) {
	slope, icept, err := FitSlope([]float64{0, 1, 2}, []float64{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(icept-1) > 1e-12 {
		t.Fatalf("fit = %v, %v", slope, icept)
	}
	if _, _, err := FitSlope([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point succeeded")
	}
	if _, _, err := FitSlope([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate x succeeded")
	}
	if _, _, err := FitSlope([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch succeeded")
	}
}

func quickCfg() Config { return Config{Seed: 7, Scale: Quick} }

func TestInvalidScale(t *testing.T) {
	if _, err := E1DisjScalingN(Config{Seed: 1}); err == nil {
		t.Fatal("zero scale succeeded")
	}
}

func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func TestE1Shape(t *testing.T) {
	tbl, err := E1DisjScalingN(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 2 {
		t.Fatal("too few rows")
	}
	// The normalized cost column must stay within a constant band.
	for r := range tbl.Rows {
		ratio := cell(t, tbl, r, 2)
		if ratio <= 0 || ratio > 5 {
			t.Fatalf("row %d normalized cost %v out of band", r, ratio)
		}
	}
}

func TestE2Shape(t *testing.T) {
	tbl, err := E2DisjScalingK(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		if ratio := cell(t, tbl, r, 2); ratio <= 0 || ratio > 5 {
			t.Fatalf("row %d normalized cost %v out of band", r, ratio)
		}
	}
}

func TestE3Shape(t *testing.T) {
	tbl, err := E3NaiveVsOptimal(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		if win := cell(t, tbl, r, 4); win <= 1 {
			t.Fatalf("row %d: optimal did not beat naive (ratio %v)", r, win)
		}
	}
}

func TestE4Shape(t *testing.T) {
	tbl, err := E4AndInfoCost(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// CIC strictly increasing over the exact rows (k = 2, 4, 8).
	prev := -1.0
	for r := 0; r < 3; r++ {
		v := cell(t, tbl, r, 2)
		if v <= prev {
			t.Fatalf("CIC not increasing at row %d: %v after %v", r, v, prev)
		}
		prev = v
	}
	// Fit row present.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "fit" {
		t.Fatalf("missing fit row: %v", last)
	}
}

func TestE5Shape(t *testing.T) {
	tbl, err := E5DirectSum(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		if ratio := cell(t, tbl, r, 4); math.Abs(ratio-1) > 1e-6 {
			t.Fatalf("direct-sum ratio at row %d = %v, want 1", r, ratio)
		}
	}
}

func TestE6Shape(t *testing.T) {
	tbl, err := E6TruncatedError(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		measured := cell(t, tbl, r, 2)
		predicted := cell(t, tbl, r, 3)
		if math.Abs(measured-predicted) > 0.02 {
			t.Fatalf("row %d: measured %v vs predicted %v", r, measured, predicted)
		}
	}
}

func TestE7Shape(t *testing.T) {
	tbl, err := E7InfoCommGap(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for r := range tbl.Rows {
		gap := cell(t, tbl, r, 5)
		if gap <= prev {
			t.Fatalf("gap not increasing at row %d: %v after %v", r, gap, prev)
		}
		prev = gap
		// Both information measures must respect the entropy upper bound,
		// and external IC dominates conditional IC here.
		cic := cell(t, tbl, r, 2)
		ic := cell(t, tbl, r, 3)
		hBound := cell(t, tbl, r, 4)
		if ic > hBound+0.2 {
			t.Fatalf("row %d: IC %v above H(Π) bound %v", r, ic, hBound)
		}
		if cic > ic+0.2 {
			t.Fatalf("row %d: CIC %v above IC %v", r, cic, ic)
		}
	}
}

func TestE8Shape(t *testing.T) {
	tbl, err := E8GoodTranscripts(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		delta := cell(t, tbl, r, 1)
		pointed := cell(t, tbl, r, 5)
		if pointed < 1-delta-0.05 {
			t.Fatalf("row %d: pointed mass %v below 1-delta=%v", r, pointed, 1-delta)
		}
	}
}

func TestE9Shape(t *testing.T) {
	tbl, err := E9PosteriorPointing(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		if dev := cell(t, tbl, r, 2); dev > 1e-9 {
			t.Fatalf("row %d: Lemma 4 deviation %v", r, dev)
		}
	}
}

func TestE10Shape(t *testing.T) {
	tbl, err := E10RejectionSampler(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		mean := cell(t, tbl, r, 1)
		model := cell(t, tbl, r, 3)
		if mean > model+2 {
			t.Fatalf("row %d: mean bits %v above model %v", r, mean, model)
		}
	}
}

func TestE11Shape(t *testing.T) {
	tbl, err := E11AmortizedCompression(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, tbl, 0, 1)
	last := cell(t, tbl, len(tbl.Rows)-1, 1)
	if last >= first {
		t.Fatalf("per-copy cost did not decrease: %v -> %v", first, last)
	}
}

func TestE12Shape(t *testing.T) {
	tbl, err := E12DivergenceBound(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		if margin := cell(t, tbl, r, 4); margin < -1e-12 {
			t.Fatalf("row %d: Eq.(4) margin %v negative", r, margin)
		}
	}
}

func TestE13Shape(t *testing.T) {
	tbl, err := E13SparseIntersection(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for r := range tbl.Rows {
		win := cell(t, tbl, r, 3)
		if win <= prev {
			t.Fatalf("naive/hashed ratio not increasing with n at row %d: %v after %v", r, win, prev)
		}
		prev = win
	}
}

func TestE14Shape(t *testing.T) {
	tbl, err := E14Ablations(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		// Columns: n, k, kind, full, no-batching, nb/full, no-endgame, ne/full.
		if ratio := cell(t, tbl, r, 5); ratio <= 1 {
			t.Fatalf("row %d: no-batching ratio %v not above 1", r, ratio)
		}
		// The endgame is an analysis device: its ablation must stay within a
		// narrow constant band in every regime we measure (the experiment's
		// headline finding).
		if ratio := cell(t, tbl, r, 7); ratio < 0.8 || ratio > 1.5 {
			t.Fatalf("row %d: no-endgame ratio %v outside [0.8, 1.5]", r, ratio)
		}
	}
}

func TestAllQuick(t *testing.T) {
	tables, err := All(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 21 {
		t.Fatalf("All returned %d tables, want 21", len(tables))
	}
	var sb strings.Builder
	for _, tbl := range tables {
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
	}
	if len(sb.String()) < 500 {
		t.Fatal("rendered output suspiciously short")
	}
}

func TestE15Shape(t *testing.T) {
	tbl, err := E15TwoPartyBaseline(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		lb := cell(t, tbl, r, 1)
		trivial := cell(t, tbl, r, 2)
		if trivial != lb+1 {
			t.Fatalf("row %d: trivial cost %v, want fooling bound %v + 1", r, trivial, lb)
		}
		if ratio := cell(t, tbl, r, 4); ratio < 1 || ratio > 8 {
			t.Fatalf("row %d: broadcast/n ratio %v out of band", r, ratio)
		}
	}
}

func TestE16Shape(t *testing.T) {
	tbl, err := E16CostBreakdown(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		total := cell(t, tbl, r, 2)
		sum := cell(t, tbl, r, 3) + cell(t, tbl, r, 4) + cell(t, tbl, r, 5)
		if math.Abs(total-sum) > 1e-6 {
			t.Fatalf("row %d: breakdown %v != total %v", r, sum, total)
		}
		k, err := strconv.Atoi(tbl.Rows[r][1])
		if err != nil {
			t.Fatal(err)
		}
		// Amortized per-coordinate cost must be near log2(e·k):
		// within [log2 k, 2·log2(e·k)].
		perCoord := cell(t, tbl, r, 7)
		model := math.Log2(math.E * float64(k))
		if perCoord < math.Log2(float64(k))-0.5 || perCoord > 2*model {
			t.Fatalf("row %d: per-coordinate cost %v far from log2(e·k)=%v", r, perCoord, model)
		}
	}
}

func TestE17Shape(t *testing.T) {
	tbl, err := E17PointwiseOr(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tbl.Rows {
		bits := cell(t, tbl, r, 2)
		lb := cell(t, tbl, r, 3)
		naive := cell(t, tbl, r, 5)
		if bits < lb {
			t.Fatalf("row %d: bits %v below the information bound %v", r, bits, lb)
		}
		if bits >= naive {
			t.Fatalf("row %d: bits %v not below naive %v", r, bits, naive)
		}
	}
}

func TestE18Shape(t *testing.T) {
	tbl, err := E18InternalVsExternal(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	sawStrictGap := false
	for r := range tbl.Rows {
		ratio := cell(t, tbl, r, 4)
		if ratio > 1+1e-9 {
			t.Fatalf("row %d: internal/external ratio %v above 1", r, ratio)
		}
		if ratio < 1-1e-6 {
			sawStrictGap = true
		}
	}
	if !sawStrictGap {
		t.Fatal("no strict internal < external gap observed anywhere")
	}
}

func TestE20Shape(t *testing.T) {
	tbl, err := E20NetworkedOverhead(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Columns: faults, board bits, wire bits, wire/board, retries, injected.
	if tbl.Rows[0][0] != "none" {
		t.Fatalf("first row faults %q, want none", tbl.Rows[0][0])
	}
	baseWire := cell(t, tbl, 0, 2)
	if ratio := cell(t, tbl, 0, 3); ratio <= 1 {
		t.Fatalf("fault-free framing overhead %v not above 1", ratio)
	}
	if retries := cell(t, tbl, 0, 4); retries != 0 {
		t.Fatalf("fault-free run spent %v retries", retries)
	}
	for r := 1; r < len(tbl.Rows); r++ {
		// Board bits are invariant across fault mixes; wire bits exceed the
		// fault-free baseline.
		if tbl.Rows[r][1] != tbl.Rows[0][1] {
			t.Fatalf("row %d: board bits %s differ from fault-free %s", r, tbl.Rows[r][1], tbl.Rows[0][1])
		}
		if wire := cell(t, tbl, r, 2); wire <= baseWire {
			t.Fatalf("row %d (%s): wire bits %v not above fault-free %v", r, tbl.Rows[r][0], wire, baseWire)
		}
	}
}

func TestE21Shape(t *testing.T) {
	tbl, err := E21TopologySeparation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Columns: n, k, bcast bits, coord bits, coord/bcast, bcast/(n·log2k+k),
	// coord/(n·k), coord wire bits. Quick rows share one n and ascend in k.
	if len(tbl.Rows) < 2 {
		t.Fatal("too few rows")
	}
	prev := 0.0
	for r := range tbl.Rows {
		// The exact coordinator protocol meets its Θ(n·k) model exactly.
		if ratio := cell(t, tbl, r, 6); math.Abs(ratio-1) > 1e-9 {
			t.Fatalf("row %d: coord/(n·k) = %v, want exactly 1", r, ratio)
		}
		// Broadcast cost stays within a constant band of n·log2k + k.
		if ratio := cell(t, tbl, r, 5); ratio <= 0 || ratio > 5 {
			t.Fatalf("row %d: bcast normalized cost %v out of band", r, ratio)
		}
		// The separation is the headline: coord/bcast must grow with k,
		// since n·k outpaces n·log k.
		sep := cell(t, tbl, r, 4)
		if sep <= prev {
			t.Fatalf("row %d: coord/bcast %v not above previous %v", r, sep, prev)
		}
		prev = sep
		// Wire bits carry framing on top of the board-level payload.
		if cell(t, tbl, r, 7) <= cell(t, tbl, r, 3) {
			t.Fatalf("row %d: wire bits do not exceed board bits", r)
		}
	}
}

func TestE19Shape(t *testing.T) {
	tbl, err := E19WirelessContention(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Columns: n, k, kind, polled, contention, collisions, ratio.
	for r := range tbl.Rows {
		if cell(t, tbl, r, 3) <= 0 || cell(t, tbl, r, 4) <= 0 {
			t.Fatalf("row %d: zero slot counts", r)
		}
	}
	// The skew row must favor contention.
	last := len(tbl.Rows) - 1
	if tbl.Rows[last][2] != "skew" {
		t.Fatalf("last quick row kind %q, want skew", tbl.Rows[last][2])
	}
	if ratio := cell(t, tbl, last, 6); ratio >= 1 {
		t.Fatalf("skew contention/polled ratio %v not below 1", ratio)
	}
}
