package sim

// Params optionally overrides an experiment's built-in sweep grid, turning
// the registry from a fixed suite into a parameterized query surface (the
// job service in internal/jobs submits these). The zero value means "run
// the experiment exactly as EXPERIMENTS.md records it"; every experiment
// ignores the fields it has no use for, and ParamCaps documents which
// experiments honor which overrides so callers can validate up front.
//
// Overrides keep every determinism contract: a given (Seed, Scale, Params)
// yields bit-identical tables at any worker count, with any recorder
// attached, batched or scalar — the overrides only select *which* cells a
// sweep evaluates, never how a cell computes.
type Params struct {
	// Ns replaces the experiment's n-grid (universe sizes), where supported.
	Ns []int `json:"ns,omitempty"`
	// Ks replaces the experiment's k-grid (player counts), where supported.
	Ks []int `json:"ks,omitempty"`
	// Faults replaces the networked experiment's fault-mix sweep with
	// ["none", Faults] — the calibration row plus the requested mix — in
	// internal/faults.Parse syntax, where supported.
	Faults string `json:"faults,omitempty"`
}

// Zero reports whether p requests no override at all.
func (p Params) Zero() bool {
	return len(p.Ns) == 0 && len(p.Ks) == 0 && p.Faults == ""
}

// ParamCaps says which Params fields one experiment honors.
type ParamCaps struct {
	Ns, Ks, Faults bool
}

// Caps returns the override capabilities of the experiment with the given
// registry ID. Experiments not listed honor nothing (zero caps): their
// grids encode paper-specific regimes (e.g. E14's n >> k² vs n ≈ k² split)
// that arbitrary overrides would silently invalidate.
func Caps(id string) ParamCaps {
	switch id {
	case "E1":
		return ParamCaps{Ns: true}
	case "E2":
		return ParamCaps{Ks: true}
	case "E20":
		return ParamCaps{Ns: true, Ks: true, Faults: true}
	case "E21":
		return ParamCaps{Ns: true, Ks: true}
	default:
		return ParamCaps{}
	}
}

// nsGrid resolves an n-grid against the configured override.
func (c Config) nsGrid(def []int) []int {
	if len(c.Params.Ns) > 0 {
		return c.Params.Ns
	}
	return def
}

// ksGrid resolves a k-grid against the configured override.
func (c Config) ksGrid(def []int) []int {
	if len(c.Params.Ks) > 0 {
		return c.Params.Ks
	}
	return def
}

// faultMixes resolves a fault-mix sweep against the configured override.
// An override always keeps the fault-free calibration row first, so the
// rendered table still reports the framing overhead baseline.
func (c Config) faultMixes(def []string) []string {
	if c.Params.Faults != "" {
		return []string{"none", c.Params.Faults}
	}
	return def
}

// firstOr returns the first element of an override grid, or def when the
// grid is empty — for experiments that take a single n or k, not a sweep.
func firstOr(grid []int, def int) int {
	if len(grid) > 0 {
		return grid[0]
	}
	return def
}
