package prob

import (
	"math"
	"testing"
	"testing/quick"

	"broadcastic/internal/rng"
)

func TestNewDistValidation(t *testing.T) {
	cases := []struct {
		name string
		p    []float64
		ok   bool
	}{
		{"valid", []float64{0.5, 0.5}, true},
		{"point", []float64{1}, true},
		{"empty", nil, false},
		{"negative", []float64{-0.1, 1.1}, false},
		{"nan", []float64{math.NaN(), 1}, false},
		{"inf", []float64{math.Inf(1), 0}, false},
		{"unnormalized", []float64{0.5, 0.6}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewDist(tc.p)
			if (err == nil) != tc.ok {
				t.Fatalf("NewDist(%v) err=%v, want ok=%v", tc.p, err, tc.ok)
			}
		})
	}
}

func TestNormalize(t *testing.T) {
	d, err := Normalize([]float64{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.P(0)-0.25) > 1e-15 || math.Abs(d.P(1)-0.75) > 1e-15 {
		t.Fatalf("Normalize = %v", d.Probs())
	}
	if _, err := Normalize([]float64{0, 0}); err == nil {
		t.Fatal("Normalize of all-zero weights succeeded")
	}
	if _, err := Normalize([]float64{-1, 2}); err == nil {
		t.Fatal("Normalize of negative weight succeeded")
	}
	if _, err := Normalize(nil); err == nil {
		t.Fatal("Normalize(nil) succeeded")
	}
}

func TestPointAndUniform(t *testing.T) {
	d, err := Point(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.P(2) != 1 || d.P(0) != 0 {
		t.Fatalf("Point = %v", d.Probs())
	}
	if _, err := Point(4, 4); err == nil {
		t.Fatal("Point outside support succeeded")
	}
	if _, err := Point(0, 0); err == nil {
		t.Fatal("Point with empty support succeeded")
	}

	u, err := Uniform(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(u.P(i)-0.2) > 1e-15 {
			t.Fatalf("Uniform(5).P(%d) = %v", i, u.P(i))
		}
	}
	if _, err := Uniform(0); err == nil {
		t.Fatal("Uniform(0) succeeded")
	}
}

func TestBernoulli(t *testing.T) {
	d, err := Bernoulli(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.P(1)-0.3) > 1e-15 || math.Abs(d.P(0)-0.7) > 1e-15 {
		t.Fatalf("Bernoulli(0.3) = %v", d.Probs())
	}
	if _, err := Bernoulli(1.5); err == nil {
		t.Fatal("Bernoulli(1.5) succeeded")
	}
	if _, err := Bernoulli(-0.5); err == nil {
		t.Fatal("Bernoulli(-0.5) succeeded")
	}
}

func TestPOutsideSupport(t *testing.T) {
	d, _ := Uniform(3)
	if d.P(-1) != 0 || d.P(3) != 0 {
		t.Fatal("P outside support is nonzero")
	}
}

func TestSampleFrequencies(t *testing.T) {
	src := rng.New(21)
	d, _ := NewDist([]float64{0.1, 0.2, 0.3, 0.4})
	const trials = 200000
	counts := make([]int, 4)
	for i := 0; i < trials; i++ {
		counts[d.Sample(src)]++
	}
	for i, want := range d.Probs() {
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("outcome %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestSampleRespectsZeroMass(t *testing.T) {
	src := rng.New(22)
	d, _ := NewDist([]float64{0, 1, 0})
	for i := 0; i < 1000; i++ {
		if d.Sample(src) != 1 {
			t.Fatal("sampled an outcome with zero probability")
		}
	}
}

func TestSupportAndMean(t *testing.T) {
	d, _ := NewDist([]float64{0.5, 0, 0.5})
	sup := d.Support()
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 2 {
		t.Fatalf("Support = %v", sup)
	}
	if got := d.Mean(); math.Abs(got-1) > 1e-15 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestTV(t *testing.T) {
	a, _ := NewDist([]float64{1, 0})
	b, _ := NewDist([]float64{0, 1})
	tv, err := TV(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tv-1) > 1e-15 {
		t.Fatalf("TV of disjoint points = %v", tv)
	}
	tv, _ = TV(a, a)
	if tv != 0 {
		t.Fatalf("TV(a,a) = %v", tv)
	}
	c, _ := Uniform(3)
	if _, err := TV(a, c); err == nil {
		t.Fatal("TV across support sizes succeeded")
	}
}

func TestMix(t *testing.T) {
	a, _ := NewDist([]float64{1, 0})
	b, _ := NewDist([]float64{0, 1})
	m, err := Mix(a, b, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.P(0)-0.25) > 1e-15 {
		t.Fatalf("Mix = %v", m.Probs())
	}
	if _, err := Mix(a, b, 2); err == nil {
		t.Fatal("Mix with weight 2 succeeded")
	}
}

func TestConditional(t *testing.T) {
	d, _ := NewDist([]float64{0.2, 0.3, 0.5})
	c, err := d.Conditional(func(x int) bool { return x >= 1 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.P(1)-0.375) > 1e-12 || math.Abs(c.P(2)-0.625) > 1e-12 || c.P(0) != 0 {
		t.Fatalf("Conditional = %v", c.Probs())
	}
	if _, err := d.Conditional(func(int) bool { return false }); err == nil {
		t.Fatal("conditioning on empty event succeeded")
	}
}

func TestProduct(t *testing.T) {
	a, _ := NewDist([]float64{0.25, 0.75})
	b, _ := NewDist([]float64{0.5, 0.5})
	p := Product(a, b)
	if p.Size() != 4 {
		t.Fatalf("Product size = %d", p.Size())
	}
	if math.Abs(p.P(0*2+1)-0.125) > 1e-15 {
		t.Fatalf("Product P(0,1) = %v", p.P(1))
	}
	if math.Abs(p.P(1*2+0)-0.375) > 1e-15 {
		t.Fatalf("Product P(1,0) = %v", p.P(2))
	}
}

func TestEmpirical(t *testing.T) {
	d, err := Empirical([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.P(1)-0.75) > 1e-15 {
		t.Fatalf("Empirical = %v", d.Probs())
	}
	if _, err := Empirical([]int{-1, 2}); err == nil {
		t.Fatal("Empirical with negative count succeeded")
	}
}

func TestBinomialPMF(t *testing.T) {
	d, err := BinomialPMF(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for k, w := range want {
		if math.Abs(d.P(k)-w) > 1e-12 {
			t.Fatalf("Binomial(4,0.5).P(%d) = %v, want %v", k, d.P(k), w)
		}
	}
	if got := d.Mean(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Binomial mean = %v", got)
	}

	d0, _ := BinomialPMF(10, 0)
	if d0.P(0) != 1 {
		t.Fatalf("Binomial(10,0) = %v", d0.Probs())
	}
	d1, _ := BinomialPMF(10, 1)
	if d1.P(10) != 1 {
		t.Fatalf("Binomial(10,1) = %v", d1.Probs())
	}
	if _, err := BinomialPMF(-1, 0.5); err == nil {
		t.Fatal("negative n succeeded")
	}
	if _, err := BinomialPMF(3, 1.5); err == nil {
		t.Fatal("p>1 succeeded")
	}
}

func TestBinomialLargeNStable(t *testing.T) {
	d, err := BinomialPMF(500, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-5) > 1e-6 {
		t.Fatalf("Binomial(500,0.01) mean = %v", d.Mean())
	}
}

func TestNormalizeIsDistribution(t *testing.T) {
	src := rng.New(30)
	check := func(seed uint16) bool {
		n := int(seed%20) + 1
		w := make([]float64, n)
		positive := false
		for i := range w {
			w[i] = src.Float64()
			if w[i] > 0 {
				positive = true
			}
		}
		if !positive {
			w[0] = 1
		}
		d, err := Normalize(w)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range d.Probs() {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProbsReturnsCopy(t *testing.T) {
	d, _ := Uniform(2)
	p := d.Probs()
	p[0] = 99
	if d.P(0) == 99 {
		t.Fatal("Probs exposed internal storage")
	}
}
