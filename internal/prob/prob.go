// Package prob implements finite probability distributions and sampling.
//
// Distributions over small finite supports appear throughout the
// reproduction: per-player message distributions (Lemma 3's q-factors are
// maintained from them), the hard input distribution μ of Section 4.1, the
// external observer's prior ν and the sender's posterior η in the Lemma 7
// rejection sampler, and the transcript distributions π_2 and π_3. The
// package keeps distributions as explicit probability vectors so that exact
// computations (normalization, marginals, divergences via package info) stay
// numerically transparent.
package prob

import (
	"fmt"
	"math"
	"sync"

	"broadcastic/internal/rng"
)

// Dist is a probability distribution over the outcomes 0..len(p)-1.
// Probabilities are non-negative and sum to 1 up to a small tolerance.
//
// Dist is a value type; the cdf pointer travels with every copy, so the
// lazily built sampling table is shared by all copies of a distribution
// and built at most once.
type Dist struct {
	p   []float64
	cdf *cdfCache
}

// cdfMinSize is the smallest support for which a Dist carries a cached
// cumulative-distribution table. The binary search's data-dependent
// branch mispredicts roughly half the time, so despite doing O(log n)
// work it only overtakes the predictable early-exit scan around support
// ~100 on uniform inputs (and later on the skewed, early-mass
// distributions the protocols actually sample); below the threshold the
// scan is kept and the Dist does not pay even the one-word holder.
const cdfMinSize = 128

// cdfCache holds the lazily built prefix-sum table used by Sample on
// larger supports. cum[i] is the identical in-order partial sum the
// linear scan computes, so binary search over it selects the exact same
// outcome for the same uniform draw. last is the largest outcome with
// positive mass — the linear scan's floating-point-slack fallback.
type cdfCache struct {
	once sync.Once
	p    []float64
	cum  []float64
	last int
}

func (c *cdfCache) build() {
	cum := make([]float64, len(c.p))
	acc := 0.0
	last := len(c.p) - 1
	for i, v := range c.p {
		acc += v
		cum[i] = acc
		if v > 0 {
			last = i
		}
	}
	c.cum = cum
	c.last = last
}

// distFromOwned wraps a probability vector the caller will not retain,
// attaching the sampler cache holder for supports large enough to benefit.
func distFromOwned(p []float64) Dist {
	d := Dist{p: p}
	if len(p) >= cdfMinSize {
		d.cdf = &cdfCache{p: p}
	}
	return d
}

// normTolerance bounds the accepted deviation of a probability vector's sum
// from 1. Anything worse indicates a logic error upstream.
const normTolerance = 1e-9

// NewDist validates and wraps a probability vector. The slice is copied.
func NewDist(p []float64) (Dist, error) {
	if len(p) == 0 {
		return Dist{}, fmt.Errorf("prob: empty distribution")
	}
	sum := 0.0
	for i, v := range p {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return Dist{}, fmt.Errorf("prob: invalid probability p[%d]=%v", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > normTolerance {
		return Dist{}, fmt.Errorf("prob: probabilities sum to %v, want 1", sum)
	}
	q := make([]float64, len(p))
	copy(q, p)
	return distFromOwned(q), nil
}

// Normalize builds a distribution proportional to the given non-negative
// weights. At least one weight must be positive.
func Normalize(w []float64) (Dist, error) {
	if len(w) == 0 {
		return Dist{}, fmt.Errorf("prob: empty weight vector")
	}
	sum := 0.0
	for i, v := range w {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return Dist{}, fmt.Errorf("prob: invalid weight w[%d]=%v", i, v)
		}
		sum += v
	}
	if sum <= 0 {
		return Dist{}, fmt.Errorf("prob: all weights are zero")
	}
	p := make([]float64, len(w))
	for i, v := range w {
		p[i] = v / sum
	}
	return distFromOwned(p), nil
}

// Point returns the deterministic distribution concentrated on outcome x
// over a support of the given size.
func Point(size, x int) (Dist, error) {
	if size <= 0 {
		return Dist{}, fmt.Errorf("prob: non-positive support size %d", size)
	}
	if x < 0 || x >= size {
		return Dist{}, fmt.Errorf("prob: point mass %d outside [0,%d)", x, size)
	}
	p := make([]float64, size)
	p[x] = 1
	return distFromOwned(p), nil
}

// Uniform returns the uniform distribution over size outcomes.
func Uniform(size int) (Dist, error) {
	if size <= 0 {
		return Dist{}, fmt.Errorf("prob: non-positive support size %d", size)
	}
	p := make([]float64, size)
	for i := range p {
		p[i] = 1 / float64(size)
	}
	return distFromOwned(p), nil
}

// Bernoulli returns the distribution on {0, 1} with P(1) = p.
func Bernoulli(p float64) (Dist, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return Dist{}, fmt.Errorf("prob: Bernoulli parameter %v outside [0,1]", p)
	}
	return distFromOwned([]float64{1 - p, p}), nil
}

// Size returns the support size.
func (d Dist) Size() int { return len(d.p) }

// P returns the probability of outcome x (0 outside the support).
func (d Dist) P(x int) float64 {
	if x < 0 || x >= len(d.p) {
		return 0
	}
	return d.p[x]
}

// Probs returns a copy of the probability vector.
func (d Dist) Probs() []float64 {
	out := make([]float64, len(d.p))
	copy(out, d.p)
	return out
}

// ProbsInto appends the probability vector to dst[:0] and returns the
// result, reusing dst's backing array when it has capacity. It is the
// allocation-free counterpart of Probs for hot loops that own a scratch
// slice.
func (d Dist) ProbsInto(dst []float64) []float64 {
	return append(dst[:0], d.p...)
}

// Sample draws one outcome using src. Distributions with at least
// cdfMinSize outcomes sample through a cached prefix-sum table (built on
// first use); the table stores the identical in-order partial sums the
// linear scan accumulates, so both paths return the same outcome for the
// same uniform draw.
func (d Dist) Sample(src *rng.Source) int {
	return d.sampleIndex(src.Float64())
}

// SampleU is the deterministic half of Sample: it maps a caller-supplied
// uniform draw u ∈ [0,1) to an outcome through exactly the code path
// Sample uses (prefix-sum table when cached, linear scan otherwise).
// Callers that manage their own draw stream — e.g. the lane engine, which
// prefetches raw outputs with rng.Uint64s and converts them via rng.U01 —
// get outcomes bit-identical to Sample on the same stream.
func (d Dist) SampleU(u float64) int {
	return d.sampleIndex(u)
}

// Uncached returns a copy of d that samples through the linear scan even
// on large supports. It exists for benchmarks and equivalence tests that
// compare the two sampling paths; production callers never need it.
func (d Dist) Uncached() Dist {
	return Dist{p: d.p}
}

// Cached returns a copy of d that samples through the prefix-sum table
// regardless of support size. Like Uncached, it exists so benchmarks and
// equivalence tests can exercise the cached path on supports below
// cdfMinSize; production callers rely on the size heuristic.
func (d Dist) Cached() Dist {
	if d.cdf != nil {
		return d
	}
	return Dist{p: d.p, cdf: &cdfCache{p: d.p}}
}

// sampleIndex maps a uniform draw u ∈ [0,1) to an outcome.
func (d Dist) sampleIndex(u float64) int {
	if c := d.cdf; c != nil {
		c.once.Do(c.build)
		// Branchless lower bound: find the smallest i with u < cum[i].
		// The invariant is that the answer (if any) lies in [base,
		// base+n); when the probe is ≤ u the whole left half is
		// excluded, otherwise the range merely shrinks — either way n
		// strictly decreases, and the single data-dependent branch
		// compiles to a conditional move.
		cum := c.cum
		base, n := 0, len(cum)
		for n > 1 {
			half := n >> 1
			if cum[base+half-1] <= u {
				base += half
			}
			n -= half
		}
		if u < cum[base] {
			return base
		}
		// u ≥ total mass (floating-point slack): same fallback as the
		// linear scan, precomputed at table-build time.
		return c.last
	}
	return d.sampleIndexLinear(u)
}

// sampleIndexLinear is the original scan kept as the small-support path
// and as the reference the cached path is pinned against in tests.
func (d Dist) sampleIndexLinear(u float64) int {
	acc := 0.0
	for i, v := range d.p {
		acc += v
		if u < acc {
			return i
		}
	}
	// Floating-point slack: return the last outcome with positive mass.
	for i := len(d.p) - 1; i >= 0; i-- {
		if d.p[i] > 0 {
			return i
		}
	}
	return len(d.p) - 1
}

// Support returns the outcomes with strictly positive probability.
func (d Dist) Support() []int {
	out := make([]int, 0, len(d.p))
	for i, v := range d.p {
		if v > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Mean returns Σ x·p(x), treating outcomes as integers.
func (d Dist) Mean() float64 {
	m := 0.0
	for i, v := range d.p {
		m += float64(i) * v
	}
	return m
}

// TV returns the total-variation distance between d and e. The supports
// must have equal size.
func TV(d, e Dist) (float64, error) {
	if d.Size() != e.Size() {
		return 0, fmt.Errorf("prob: TV support mismatch %d vs %d", d.Size(), e.Size())
	}
	sum := 0.0
	for i := range d.p {
		sum += math.Abs(d.p[i] - e.p[i])
	}
	return sum / 2, nil
}

// Mix returns the mixture w·d + (1-w)·e.
func Mix(d, e Dist, w float64) (Dist, error) {
	if d.Size() != e.Size() {
		return Dist{}, fmt.Errorf("prob: Mix support mismatch %d vs %d", d.Size(), e.Size())
	}
	if w < 0 || w > 1 {
		return Dist{}, fmt.Errorf("prob: mixture weight %v outside [0,1]", w)
	}
	p := make([]float64, d.Size())
	for i := range p {
		p[i] = w*d.p[i] + (1-w)*e.p[i]
	}
	return distFromOwned(p), nil
}

// Conditional returns d conditioned on the outcome lying in keep (a
// predicate over outcomes). Errors if the kept event has zero mass.
func (d Dist) Conditional(keep func(int) bool) (Dist, error) {
	w := make([]float64, d.Size())
	for i, v := range d.p {
		if keep(i) {
			w[i] = v
		}
	}
	cond, err := Normalize(w)
	if err != nil {
		return Dist{}, fmt.Errorf("prob: conditioning on zero-mass event: %w", err)
	}
	return cond, nil
}

// Product returns the product distribution of d and e over the flattened
// support of size d.Size()*e.Size(), indexed as x*e.Size()+y.
func Product(d, e Dist) Dist {
	p := make([]float64, d.Size()*e.Size())
	for x, px := range d.p {
		for y, py := range e.p {
			p[x*e.Size()+y] = px * py
		}
	}
	return distFromOwned(p)
}

// Empirical builds the empirical (maximum-likelihood) distribution of the
// given outcome counts.
func Empirical(counts []int) (Dist, error) {
	w := make([]float64, len(counts))
	for i, c := range counts {
		if c < 0 {
			return Dist{}, fmt.Errorf("prob: negative count counts[%d]=%d", i, c)
		}
		w[i] = float64(c)
	}
	return Normalize(w)
}

// BinomialPMF returns the distribution of a Binomial(n, p) random variable
// over {0, ..., n}. Computed in log space to stay stable for large n.
func BinomialPMF(n int, p float64) (Dist, error) {
	if n < 0 {
		return Dist{}, fmt.Errorf("prob: negative binomial n=%d", n)
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return Dist{}, fmt.Errorf("prob: binomial parameter %v outside [0,1]", p)
	}
	probs := make([]float64, n+1)
	if p == 0 {
		probs[0] = 1
		return distFromOwned(probs), nil
	}
	if p == 1 {
		probs[n] = 1
		return distFromOwned(probs), nil
	}
	lp, lq := math.Log(p), math.Log1p(-p)
	for k := 0; k <= n; k++ {
		probs[k] = math.Exp(logChoose(n, k) + float64(k)*lp + float64(n-k)*lq)
	}
	return Normalize(probs)
}

// logChoose returns log C(n, k) via lgamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}
