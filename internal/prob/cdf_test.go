package prob

// Equivalence tests for the cached-CDF sampling path. The product
// guarantee is bit-identical experiment output, so the cached sampler is
// only admissible if it returns the *same index* as the linear scan for
// every uniform draw — including draws that land exactly on a prefix-sum
// boundary, distributions with zero-mass cells, and tails so small they
// are denormal. These tests drive both paths with crafted u values
// directly (bypassing the RNG) to hit those corners deterministically.

import (
	"math"
	"testing"

	"broadcastic/internal/rng"
)

// adversarialDists builds supports that stress the boundary behavior of
// the prefix-sum search. Most are smaller than cdfMinSize, so the cached
// path is forced with Cached(); none need to sum exactly to 1 —
// sampleIndex only ever compares against in-order partial sums, and
// crafting unnormalized vectors lets us place boundaries at exactly
// representable values.
func adversarialDists() map[string]Dist {
	denormal := math.SmallestNonzeroFloat64 // 5e-324
	return map[string]Dist{
		"uniform16":   distFromOwned(uniformVec(16)).Cached(),
		"uniform9":    distFromOwned(uniformVec(9)).Cached(), // odd length: uneven halving
		"uniform-big": distFromOwned(uniformVec(cdfMinSize + 3)),
		"dyadic": distFromOwned([]float64{ // exact boundaries at 0.5, 0.75, ...
			0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625, 0.0078125, 0.0078125,
		}).Cached(),
		"zero-mass-cells": distFromOwned([]float64{
			0, 0.25, 0, 0, 0.5, 0, 0.25, 0, 0, 0,
		}).Cached(),
		"leading-zeros": distFromOwned([]float64{0, 0, 0, 0, 0, 0, 0, 1}).Cached(),
		"trailing-zeros": distFromOwned([]float64{
			0.5, 0.5, 0, 0, 0, 0, 0, 0,
		}).Cached(),
		"denormal-tail": distFromOwned([]float64{
			0.5, 0.5 - 1e-300, 1e-300, denormal, denormal, denormal, denormal, denormal,
		}).Cached(),
		"all-denormal": distFromOwned([]float64{
			denormal, denormal, denormal, denormal,
			denormal, denormal, denormal, denormal,
		}).Cached(),
		"mass-short-of-one": distFromOwned([]float64{ // u can exceed the total
			0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.124,
		}).Cached(),
		"single-spike": distFromOwned(spikeVec(64, 17)).Cached(),
	}
}

func uniformVec(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	return p
}

func spikeVec(n, at int) []float64 {
	p := make([]float64, n)
	p[at] = 1
	return p
}

// boundaryDraws returns the adversarial u values for a distribution: every
// prefix sum exactly, one ulp below and above it, plus the global corners.
func boundaryDraws(d Dist) []float64 {
	us := []float64{
		0,
		math.SmallestNonzeroFloat64,
		0.5,
		math.Nextafter(1, 0), // largest value Float64 can return is below 1
	}
	acc := 0.0
	for _, v := range d.p {
		acc += v
		for _, u := range []float64{acc, math.Nextafter(acc, 0), math.Nextafter(acc, 2)} {
			if u >= 0 && u < 1 {
				us = append(us, u)
			}
		}
	}
	return us
}

func TestCachedCDFMatchesLinearScanOnBoundaries(t *testing.T) {
	for name, d := range adversarialDists() {
		if d.cdf == nil {
			t.Fatalf("%s: expected cached path (size %d, Cached() forced)", name, d.Size())
		}
		for _, u := range boundaryDraws(d) {
			want := d.sampleIndexLinear(u)
			got := d.sampleIndex(u)
			if got != want {
				t.Errorf("%s: sampleIndex(%v) = %d, linear scan = %d", name, u, got, want)
			}
		}
	}
}

func TestCachedCDFMatchesLinearScanRandomized(t *testing.T) {
	src := rng.New(1234)
	for name, d := range adversarialDists() {
		for i := 0; i < 5000; i++ {
			u := src.Float64()
			if got, want := d.sampleIndex(u), d.sampleIndexLinear(u); got != want {
				t.Fatalf("%s: sampleIndex(%v) = %d, linear scan = %d", name, u, got, want)
			}
		}
	}
	// Random normalized distributions with random zero-mass cells.
	for trial := 0; trial < 200; trial++ {
		n := cdfMinSize + src.Intn(120)
		w := make([]float64, n)
		for i := range w {
			if src.Bernoulli(0.3) {
				continue // zero-mass cell
			}
			w[i] = src.Float64()
		}
		w[src.Intn(n)] = 1 // ensure positive total mass
		d, err := Normalize(w)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			u := src.Float64()
			if got, want := d.sampleIndex(u), d.sampleIndexLinear(u); got != want {
				t.Fatalf("trial %d: sampleIndex(%v) = %d, linear = %d", trial, u, got, want)
			}
		}
	}
}

// TestSampleStreamIdenticalCachedVsUncached pins the end-to-end contract:
// the same RNG stream produces the same outcome sequence whether or not
// the CDF cache is active, so enabling it cannot perturb any pinned
// experiment output.
func TestSampleStreamIdenticalCachedVsUncached(t *testing.T) {
	base, err := Uniform(37)
	if err != nil {
		t.Fatal(err)
	}
	d := base.Cached() // 37 < cdfMinSize: force the table path
	if d.cdf == nil {
		t.Fatal("Cached copy missing the CDF cache")
	}
	plain := d.Uncached()
	if plain.cdf != nil {
		t.Fatal("Uncached copy still carries a CDF cache")
	}
	a, b := rng.New(7), rng.New(7)
	for i := 0; i < 10000; i++ {
		x, y := d.Sample(a), plain.Sample(b)
		if x != y {
			t.Fatalf("draw %d: cached %d, uncached %d", i, x, y)
		}
	}
}

func TestCDFCacheThreshold(t *testing.T) {
	small, err := Uniform(cdfMinSize - 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.cdf != nil {
		t.Fatalf("size %d carries a cache; threshold is %d", small.Size(), cdfMinSize)
	}
	big, err := Uniform(cdfMinSize)
	if err != nil {
		t.Fatal(err)
	}
	if big.cdf == nil {
		t.Fatalf("size %d missing cache", big.Size())
	}
	if big.cdf.cum != nil {
		t.Fatal("prefix-sum table built eagerly; want lazy build on first Sample")
	}
	big.Sample(rng.New(1))
	if big.cdf.cum == nil {
		t.Fatal("prefix-sum table not built by first Sample")
	}
	if got := big.cdf.last; got != big.Size()-1 {
		t.Fatalf("fallback index = %d, want %d", got, big.Size()-1)
	}
}

func TestProbsInto(t *testing.T) {
	d, err := NewDist([]float64{0.25, 0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 0, 8)
	out := d.ProbsInto(buf)
	if &out[0] != &buf[:1][0] {
		t.Fatal("ProbsInto did not reuse the provided backing array")
	}
	for i, v := range d.Probs() {
		if out[i] != v {
			t.Fatalf("ProbsInto[%d] = %v, want %v", i, out[i], v)
		}
	}
	// Undersized scratch still works (grows).
	short := d.ProbsInto(nil)
	if len(short) != d.Size() {
		t.Fatalf("ProbsInto(nil) len = %d, want %d", len(short), d.Size())
	}
}
