// Package pool is the deterministic worker-pool execution engine behind the
// parallel experiment harness and the sharded estimators.
//
// The contract that makes parallelism safe for a reproducibility-first
// repository: work is expressed as an indexed set of independent cells, each
// cell owns all of its mutable state (in particular its own rng.Source,
// derived serially up front via rng.Source.SplitN), and results are returned
// in cell order. Under that contract the output of Map is bit-identical for
// every worker count — goroutines only change which wall-clock instant a
// cell runs at, never what it computes or where its result lands.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"broadcastic/internal/telemetry"
)

// Workers resolves a requested worker count: n > 0 is used as-is, anything
// else (the "default" zero value) means one worker per available CPU.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map evaluates fn(0), …, fn(n-1) using at most workers goroutines and
// returns the results in index order. fn must not share mutable state
// between cells. If any cell fails, Map returns one of the failing cells'
// errors and stops handing out new cells; already-running cells finish
// first, so fn is never abandoned mid-flight.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapRecorded(workers, n, fn, nil)
}

// MapRecorded is Map with pool-level telemetry: per-invocation wall time,
// per-worker busy time, and the utilization ratio busy/(workers·wall) that
// tells a perf investigation whether a sweep is starved for cells or for
// CPUs. A nil rec is exactly Map — results are bit-identical either way,
// since recording observes only the clock, never the cells.
func MapRecorded[T any](workers, n int, fn func(i int) (T, error), rec telemetry.Recorder) ([]T, error) {
	out := make([]T, n)
	if n <= 0 {
		return out, nil
	}
	if workers > n {
		workers = n
	}
	var wallStart time.Time
	if rec != nil {
		rec.Count(telemetry.PoolRuns, 1)
		wallStart = time.Now()
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		if rec != nil {
			// One worker: busy time and wall time coincide.
			wall := float64(time.Since(wallStart))
			rec.Observe(telemetry.PoolWallNs, wall)
			rec.Observe(telemetry.PoolWorkerBusyNs, wall)
			rec.Observe(telemetry.PoolUtilization, 1)
		}
		return out, nil
	}
	var (
		next      atomic.Int64
		failed    atomic.Bool
		errOnce   sync.Once
		firstErr  error
		wg        sync.WaitGroup
		totalBusy atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var busyStart time.Time
			if rec != nil {
				busyStart = time.Now()
				defer func() {
					busy := time.Since(busyStart)
					totalBusy.Add(int64(busy))
					rec.Observe(telemetry.PoolWorkerBusyNs, float64(busy))
				}()
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if rec != nil {
		wall := float64(time.Since(wallStart))
		rec.Observe(telemetry.PoolWallNs, wall)
		if wall > 0 {
			rec.Observe(telemetry.PoolUtilization, float64(totalBusy.Load())/(wall*float64(workers)))
		}
	}
	if failed.Load() {
		return nil, firstErr
	}
	return out, nil
}
