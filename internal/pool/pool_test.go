package pool

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7, 100} {
		got, err := Map(workers, 10, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("Map on zero cells = %v, %v", got, err)
	}
}

func TestMapError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 100, func(i int) (int, error) {
			if i == 3 {
				return 0, fmt.Errorf("cell %d failed", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: failing cell did not surface an error", workers)
		}
	}
}

func TestMapErrorStopsNewCells(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(2, 1000, func(i int) (int, error) {
		ran.Add(1)
		return 0, fmt.Errorf("always fails")
	})
	if err == nil {
		t.Fatal("no error surfaced")
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("all %d cells ran despite early failure", n)
	}
}

func TestMapConcurrencyBound(t *testing.T) {
	var active, peak atomic.Int64
	const workers = 3
	_, err := Map(workers, 64, func(i int) (int, error) {
		cur := active.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		runtime.Gosched()
		active.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent cells, worker bound is %d", p, workers)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("zero did not default to GOMAXPROCS")
	}
	if Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("negative did not default to GOMAXPROCS")
	}
}
