package info

import (
	"fmt"
	"math"
)

// QDivergenceSum evaluates the estimator's exact inner quantity
// Σ_i D(posterior_i ‖ prior_i) from bare per-player q-factor rows and
// prior rows (Lemma 3 factorization): player i's posterior at the leaf is
// prior_i(v)·q_i(v) normalized over v. Both the scalar Monte-Carlo path
// (core) and the compiled-IR leaf tables call this one function, so the
// two paths agree bit for bit by sharing the same float operations in the
// same order — not by replicating them.
func QDivergenceSum(q [][]float64, priors [][]float64) (float64, error) {
	total := 0.0
	for i, row := range q {
		pr := priors[i]
		if len(pr) > len(row) {
			return 0, fmt.Errorf("info: prior domain %d exceeds leaf domain %d", len(pr), len(row))
		}
		norm := 0.0
		for v, pv := range pr {
			norm += pv * row[v]
		}
		if norm == 0 {
			// The leaf is unreachable under this player's prior; the caller
			// weights it by probability zero, so its divergence is moot.
			continue
		}
		d := 0.0
		for v, pv := range pr {
			post := pv * row[v] / norm
			if post == 0 {
				continue
			}
			if pv == 0 {
				return 0, fmt.Errorf("info: posterior mass on zero-prior input %d of player %d", v, i)
			}
			d += post * math.Log2(post/pv)
		}
		if d < 0 && d > -1e-12 {
			d = 0
		}
		total += d
	}
	return total, nil
}
