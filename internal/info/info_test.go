package info

import (
	"math"
	"testing"
	"testing/quick"

	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

func mustDist(t *testing.T, p []float64) prob.Dist {
	t.Helper()
	d, err := prob.NewDist(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEntropyKnownValues(t *testing.T) {
	cases := []struct {
		p    []float64
		want float64
	}{
		{[]float64{1}, 0},
		{[]float64{0.5, 0.5}, 1},
		{[]float64{0.25, 0.25, 0.25, 0.25}, 2},
		{[]float64{1, 0}, 0},
		{[]float64{0.5, 0.25, 0.25}, 1.5},
	}
	for _, tc := range cases {
		got := Entropy(mustDist(t, tc.p))
		if math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("Entropy(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestEntropyBounds(t *testing.T) {
	src := rng.New(50)
	check := func(seed uint16) bool {
		n := int(seed%16) + 1
		w := make([]float64, n)
		for i := range w {
			w[i] = src.Float64() + 1e-9
		}
		d, err := prob.Normalize(w)
		if err != nil {
			return false
		}
		h := Entropy(d)
		return h >= -1e-12 && h <= math.Log2(float64(n))+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryEntropy(t *testing.T) {
	if got := BinaryEntropy(0.5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("H(0.5) = %v", got)
	}
	if BinaryEntropy(0) != 0 || BinaryEntropy(1) != 0 {
		t.Fatal("H at endpoints nonzero")
	}
	// Symmetry H(p) = H(1-p).
	for _, p := range []float64{0.1, 0.3, 0.42} {
		if math.Abs(BinaryEntropy(p)-BinaryEntropy(1-p)) > 1e-12 {
			t.Fatalf("binary entropy asymmetric at %v", p)
		}
	}
}

func TestKLProperties(t *testing.T) {
	a := mustDist(t, []float64{0.5, 0.5})
	b := mustDist(t, []float64{0.9, 0.1})

	same, err := KL(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if same != 0 {
		t.Fatalf("KL(a,a) = %v", same)
	}

	d, err := KL(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("KL(a,b) = %v, want > 0", d)
	}

	// Asymmetry: KL(a,b) != KL(b,a) in general.
	rev, _ := KL(b, a)
	if math.Abs(d-rev) < 1e-9 {
		t.Fatalf("KL unexpectedly symmetric: %v vs %v", d, rev)
	}

	// Absolute-continuity violation -> +Inf.
	c := mustDist(t, []float64{1, 0})
	e := mustDist(t, []float64{0, 1})
	inf, _ := KL(c, e)
	if !math.IsInf(inf, 1) {
		t.Fatalf("KL with disjoint supports = %v, want +Inf", inf)
	}

	u3 := mustDist(t, []float64{1.0 / 3, 1.0 / 3, 1.0 / 3})
	if _, err := KL(a, u3); err == nil {
		t.Fatal("KL across support sizes succeeded")
	}
}

func TestKLNonNegativityProperty(t *testing.T) {
	src := rng.New(51)
	check := func(seed uint16) bool {
		n := int(seed%8) + 2
		w1 := make([]float64, n)
		w2 := make([]float64, n)
		for i := range w1 {
			w1[i] = src.Float64() + 1e-6
			w2[i] = src.Float64() + 1e-6
		}
		d1, _ := prob.Normalize(w1)
		d2, _ := prob.Normalize(w2)
		kl, err := KL(d1, d2)
		return err == nil && kl >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKLBernoulliMatchesGeneric(t *testing.T) {
	for _, pq := range [][2]float64{{0.3, 0.5}, {0.9, 0.1}, {0.01, 0.99}, {0.5, 0.5}} {
		p, q := pq[0], pq[1]
		fast := KLBernoulli(p, q)
		dp, _ := prob.Bernoulli(p)
		dq, _ := prob.Bernoulli(q)
		slow, err := KL(dp, dq)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-slow) > 1e-12 {
			t.Fatalf("KLBernoulli(%v,%v)=%v, generic=%v", p, q, fast, slow)
		}
	}
	if !math.IsInf(KLBernoulli(0.5, 0), 1) {
		t.Fatal("KLBernoulli(0.5,0) not +Inf")
	}
	if !math.IsInf(KLBernoulli(0.5, 1), 1) {
		t.Fatal("KLBernoulli(0.5,1) not +Inf")
	}
	if !math.IsNaN(KLBernoulli(-0.1, 0.5)) {
		t.Fatal("KLBernoulli with invalid p not NaN")
	}
	if KLBernoulli(0, 0.5) <= 0 {
		t.Fatal("KLBernoulli(0,0.5) should be positive")
	}
}

func TestJointValidation(t *testing.T) {
	if _, err := NewJoint(0, 2, nil); err == nil {
		t.Fatal("zero dimension succeeded")
	}
	if _, err := NewJoint(2, 2, []float64{1}); err == nil {
		t.Fatal("wrong entry count succeeded")
	}
	if _, err := NewJoint(1, 2, []float64{0.7, 0.7}); err == nil {
		t.Fatal("unnormalized joint succeeded")
	}
	if _, err := NewJoint(1, 2, []float64{-0.5, 1.5}); err == nil {
		t.Fatal("negative joint entry succeeded")
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	// X uniform on 2, Y uniform on 2, independent: I = 0.
	j, err := NewJoint(2, 2, []float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	mi, err := j.MutualInformation()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mi) > 1e-12 {
		t.Fatalf("MI of independent = %v", mi)
	}
}

func TestMutualInformationPerfectlyCorrelated(t *testing.T) {
	// Y = X, X uniform on 2: I = 1 bit.
	j, err := NewJoint(2, 2, []float64{0.5, 0, 0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	mi, err := j.MutualInformation()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mi-1) > 1e-12 {
		t.Fatalf("MI of copy channel = %v, want 1", mi)
	}
}

func TestMIEntropyIdentity(t *testing.T) {
	// I(X;Y) = H(X) - H(X|Y) on a random joint.
	src := rng.New(52)
	check := func(seed uint16) bool {
		nx := int(seed%3) + 2
		ny := int(seed/3%3) + 2
		j, err := EmptyJoint(nx, ny)
		if err != nil {
			return false
		}
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				if err := j.Add(x, y, src.Float64()+1e-6); err != nil {
					return false
				}
			}
		}
		if err := j.NormalizeInPlace(); err != nil {
			return false
		}
		mi, err := j.MutualInformation()
		if err != nil {
			return false
		}
		mx, err := j.MarginalX()
		if err != nil {
			return false
		}
		hxy, err := j.ConditionalEntropyXGivenY()
		if err != nil {
			return false
		}
		return math.Abs(mi-(Entropy(mx)-hxy)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJointAddErrors(t *testing.T) {
	j, _ := EmptyJoint(2, 2)
	if err := j.Add(2, 0, 0.1); err == nil {
		t.Fatal("out-of-range Add succeeded")
	}
	if err := j.Add(0, 0, -1); err == nil {
		t.Fatal("negative-weight Add succeeded")
	}
	if err := j.NormalizeInPlace(); err == nil {
		t.Fatal("normalizing empty table succeeded")
	}
}

func TestConditionalMI(t *testing.T) {
	// Z chooses between a copy channel (MI=1) and independence (MI=0),
	// each with probability 1/2: I(X;Y|Z) = 0.5.
	copyCh, _ := NewJoint(2, 2, []float64{0.5, 0, 0, 0.5})
	indep, _ := NewJoint(2, 2, []float64{0.25, 0.25, 0.25, 0.25})
	zDist, _ := prob.Uniform(2)
	mi, err := ConditionalMI([]*Joint{copyCh, indep}, zDist)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mi-0.5) > 1e-12 {
		t.Fatalf("ConditionalMI = %v, want 0.5", mi)
	}

	if _, err := ConditionalMI([]*Joint{copyCh}, zDist); err == nil {
		t.Fatal("mismatched table count succeeded")
	}
	if _, err := ConditionalMI([]*Joint{copyCh, nil}, zDist); err == nil {
		t.Fatal("nil table with positive mass succeeded")
	}
}

func TestConditionalMIZeroMassSkipsNil(t *testing.T) {
	copyCh, _ := NewJoint(2, 2, []float64{0.5, 0, 0, 0.5})
	zDist, _ := prob.Point(2, 0)
	mi, err := ConditionalMI([]*Joint{copyCh, nil}, zDist)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mi-1) > 1e-12 {
		t.Fatalf("ConditionalMI = %v, want 1", mi)
	}
}

func TestPlugInAndMillerMadow(t *testing.T) {
	counts := []int{50, 50}
	h, err := PlugInEntropy(counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-1) > 1e-12 {
		t.Fatalf("plug-in entropy = %v", h)
	}
	mm, err := MillerMadowEntropy(counts)
	if err != nil {
		t.Fatal(err)
	}
	if mm <= h {
		t.Fatalf("Miller–Madow %v should exceed plug-in %v", mm, h)
	}
	if _, err := MillerMadowEntropy([]int{0, 0}); err == nil {
		t.Fatal("Miller–Madow with no samples succeeded")
	}
	if _, err := MillerMadowEntropy([]int{-1, 1}); err == nil {
		t.Fatal("Miller–Madow with negative count succeeded")
	}
}

func TestMillerMadowReducesBias(t *testing.T) {
	// Estimate the entropy of Uniform(8) from small samples; Miller–Madow
	// should land closer to 3 bits on average than plug-in.
	src := rng.New(53)
	d, _ := prob.Uniform(8)
	const trials, samples = 300, 60
	var plugSum, mmSum float64
	for tr := 0; tr < trials; tr++ {
		counts := make([]int, 8)
		for s := 0; s < samples; s++ {
			counts[d.Sample(src)]++
		}
		h, _ := PlugInEntropy(counts)
		mm, _ := MillerMadowEntropy(counts)
		plugSum += h
		mmSum += mm
	}
	plugErr := math.Abs(plugSum/trials - 3)
	mmErr := math.Abs(mmSum/trials - 3)
	if mmErr >= plugErr {
		t.Fatalf("Miller–Madow bias %v not smaller than plug-in bias %v", mmErr, plugErr)
	}
}

func TestPointedPosteriorDivergenceLB(t *testing.T) {
	// Eq. (3)-(4): D(Bern posterior ‖ Bern prior 1/k) >= p log k - 1 when
	// posterior zero-probability is p. Verify exactly.
	for _, k := range []int{4, 16, 64, 1024} {
		for _, p := range []float64{0.25, 0.5, 0.9} {
			exact := KLBernoulli(p, 1/float64(k))
			lb := PointedPosteriorDivergenceLB(p, k)
			if exact < lb-1e-12 {
				t.Fatalf("k=%d p=%v: exact divergence %v below Eq.(4) bound %v", k, p, exact, lb)
			}
		}
	}
}

func TestPinskerInequality(t *testing.T) {
	// TV(p, q) <= sqrt(ln2/2 · D(p‖q)) — the standard bridge between the
	// divergence the proofs manipulate and statistical distance.
	src := rng.New(54)
	check := func(seed uint16) bool {
		n := int(seed%6) + 2
		w1 := make([]float64, n)
		w2 := make([]float64, n)
		for i := range w1 {
			w1[i] = src.Float64() + 1e-6
			w2[i] = src.Float64() + 1e-6
		}
		p, _ := prob.Normalize(w1)
		q, _ := prob.Normalize(w2)
		kl, err := KL(p, q)
		if err != nil {
			return false
		}
		tv, err := prob.TV(p, q)
		if err != nil {
			return false
		}
		return tv <= math.Sqrt(math.Ln2/2*kl)+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEntropyChainRule(t *testing.T) {
	// H(X, Y) = H(Y) + H(X|Y) on random joints.
	src := rng.New(56)
	check := func(seed uint16) bool {
		nx := int(seed%3) + 2
		ny := int(seed/3%3) + 2
		j, err := EmptyJoint(nx, ny)
		if err != nil {
			return false
		}
		flat := make([]float64, 0, nx*ny)
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				w := src.Float64() + 1e-6
				if err := j.Add(x, y, w); err != nil {
					return false
				}
				flat = append(flat, w)
			}
		}
		if err := j.NormalizeInPlace(); err != nil {
			return false
		}
		joint, err := prob.Normalize(flat)
		if err != nil {
			return false
		}
		my, err := j.MarginalY()
		if err != nil {
			return false
		}
		hxGivenY, err := j.ConditionalEntropyXGivenY()
		if err != nil {
			return false
		}
		return math.Abs(Entropy(joint)-(Entropy(my)+hxGivenY)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConditioningReducesEntropy(t *testing.T) {
	// H(X|Y) <= H(X): "information never hurts", the inequality behind
	// IC <= H(Π) in the paper's Section 6 argument.
	src := rng.New(57)
	check := func(seed uint16) bool {
		nx := int(seed%4) + 2
		ny := int(seed/4%4) + 2
		j, err := EmptyJoint(nx, ny)
		if err != nil {
			return false
		}
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				if err := j.Add(x, y, src.Float64()+1e-6); err != nil {
					return false
				}
			}
		}
		if err := j.NormalizeInPlace(); err != nil {
			return false
		}
		mx, err := j.MarginalX()
		if err != nil {
			return false
		}
		hxy, err := j.ConditionalEntropyXGivenY()
		if err != nil {
			return false
		}
		return hxy <= Entropy(mx)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJointP(t *testing.T) {
	j, _ := NewJoint(2, 2, []float64{0.1, 0.2, 0.3, 0.4})
	if math.Abs(j.P(1, 0)-0.3) > 1e-15 {
		t.Fatalf("P(1,0) = %v", j.P(1, 0))
	}
	if j.P(-1, 0) != 0 || j.P(0, 2) != 0 {
		t.Fatal("out-of-range P nonzero")
	}
}
