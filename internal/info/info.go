// Package info implements the information-theoretic quantities the paper's
// lower bounds are phrased in: Shannon entropy, conditional entropy, mutual
// information, conditional mutual information, and Kullback–Leibler
// divergence (Definitions 1–4), plus empirical estimators used by the
// Monte-Carlo experiments. All quantities are in bits (log base 2), matching
// the paper's convention that one transmitted bit reveals at most one bit of
// information.
package info

import (
	"fmt"
	"math"

	"broadcastic/internal/prob"
)

// log2 computes log base 2, with log2(0) treated by callers via the
// 0·log 0 = 0 convention.
func log2(x float64) float64 { return math.Log2(x) }

// Entropy returns H(X) for X ~ d (Definition 1), in bits.
func Entropy(d prob.Dist) float64 {
	h := 0.0
	for _, p := range d.Probs() {
		if p > 0 {
			h -= p * log2(p)
		}
	}
	return h
}

// BinaryEntropy returns H(p) = -p log p - (1-p) log(1-p), the entropy of a
// Bernoulli(p) variable, used directly in the paper's Eq. (3)–(4).
func BinaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*log2(p) - (1-p)*log2(1-p)
}

// KL returns D(post ‖ prior) (Definition 4), in bits. It is +Inf when post
// puts mass where prior does not (absolute-continuity violation), and an
// error when the supports have different sizes.
func KL(post, prior prob.Dist) (float64, error) {
	if post.Size() != prior.Size() {
		return 0, fmt.Errorf("info: KL support mismatch %d vs %d", post.Size(), prior.Size())
	}
	d := 0.0
	for x := 0; x < post.Size(); x++ {
		p, q := post.P(x), prior.P(x)
		if p == 0 {
			continue // 0·log 0 = 0 convention
		}
		if q == 0 {
			return math.Inf(1), nil
		}
		d += p * log2(p/q)
	}
	// Clamp tiny negative values caused by rounding; KL is non-negative.
	if d < 0 && d > -1e-12 {
		d = 0
	}
	return d, nil
}

// KLBernoulli returns D(Bern(p) ‖ Bern(q)) in bits without allocating
// distributions. This is the inner quantity of the paper's Eq. (3): the
// divergence between the posterior and prior of a single player's input bit.
func KLBernoulli(p, q float64) float64 {
	if p < 0 || p > 1 || q < 0 || q > 1 {
		return math.NaN()
	}
	d := 0.0
	if p > 0 {
		if q == 0 {
			return math.Inf(1)
		}
		d += p * log2(p/q)
	}
	if p < 1 {
		if q == 1 {
			return math.Inf(1)
		}
		d += (1 - p) * log2((1-p)/(1-q))
	}
	if d < 0 && d > -1e-12 {
		d = 0
	}
	return d
}

// Joint is a joint probability table over a pair (X, Y) with finite
// supports. It supports the marginal / conditional decompositions used to
// compute mutual information exactly.
type Joint struct {
	nx, ny int
	p      []float64 // row-major: p[x*ny+y]
}

// NewJoint validates and wraps a joint table given in row-major order.
func NewJoint(nx, ny int, p []float64) (*Joint, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("info: non-positive joint dimensions %dx%d", nx, ny)
	}
	if len(p) != nx*ny {
		return nil, fmt.Errorf("info: joint table has %d entries, want %d", len(p), nx*ny)
	}
	sum := 0.0
	for i, v := range p {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("info: invalid joint probability p[%d]=%v", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("info: joint probabilities sum to %v, want 1", sum)
	}
	q := make([]float64, len(p))
	copy(q, p)
	return &Joint{nx: nx, ny: ny, p: q}, nil
}

// EmptyJoint returns an all-zero accumulator table; fill it with Add and
// finish with NormalizeInPlace.
func EmptyJoint(nx, ny int) (*Joint, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("info: non-positive joint dimensions %dx%d", nx, ny)
	}
	return &Joint{nx: nx, ny: ny, p: make([]float64, nx*ny)}, nil
}

// Add accumulates weight w on the cell (x, y).
func (j *Joint) Add(x, y int, w float64) error {
	if x < 0 || x >= j.nx || y < 0 || y >= j.ny {
		return fmt.Errorf("info: joint cell (%d,%d) outside %dx%d", x, y, j.nx, j.ny)
	}
	if w < 0 {
		return fmt.Errorf("info: negative weight %v", w)
	}
	j.p[x*j.ny+y] += w
	return nil
}

// NormalizeInPlace rescales the table to total mass 1.
func (j *Joint) NormalizeInPlace() error {
	sum := 0.0
	for _, v := range j.p {
		sum += v
	}
	if sum <= 0 {
		return fmt.Errorf("info: joint table has zero mass")
	}
	for i := range j.p {
		j.p[i] /= sum
	}
	return nil
}

// P returns the joint probability of (x, y).
func (j *Joint) P(x, y int) float64 {
	if x < 0 || x >= j.nx || y < 0 || y >= j.ny {
		return 0
	}
	return j.p[x*j.ny+y]
}

// MarginalX returns the marginal distribution of X.
func (j *Joint) MarginalX() (prob.Dist, error) {
	w := make([]float64, j.nx)
	for x := 0; x < j.nx; x++ {
		for y := 0; y < j.ny; y++ {
			w[x] += j.p[x*j.ny+y]
		}
	}
	return prob.Normalize(w)
}

// MarginalY returns the marginal distribution of Y.
func (j *Joint) MarginalY() (prob.Dist, error) {
	w := make([]float64, j.ny)
	for y := 0; y < j.ny; y++ {
		for x := 0; x < j.nx; x++ {
			w[y] += j.p[x*j.ny+y]
		}
	}
	return prob.Normalize(w)
}

// MutualInformation returns I(X; Y) in bits (Definition 3), computed as
// Σ_{x,y} p(x,y) log( p(x,y) / (p(x)p(y)) ).
func (j *Joint) MutualInformation() (float64, error) {
	mx, err := j.MarginalX()
	if err != nil {
		return 0, err
	}
	my, err := j.MarginalY()
	if err != nil {
		return 0, err
	}
	mi := 0.0
	for x := 0; x < j.nx; x++ {
		for y := 0; y < j.ny; y++ {
			pxy := j.p[x*j.ny+y]
			if pxy <= 0 {
				continue
			}
			mi += pxy * log2(pxy/(mx.P(x)*my.P(y)))
		}
	}
	if mi < 0 && mi > -1e-10 {
		mi = 0
	}
	return mi, nil
}

// ConditionalEntropyXGivenY returns H(X | Y) in bits (Definition 2).
func (j *Joint) ConditionalEntropyXGivenY() (float64, error) {
	my, err := j.MarginalY()
	if err != nil {
		return 0, err
	}
	h := 0.0
	for y := 0; y < j.ny; y++ {
		py := my.P(y)
		if py <= 0 {
			continue
		}
		for x := 0; x < j.nx; x++ {
			pxy := j.p[x*j.ny+y]
			if pxy <= 0 {
				continue
			}
			h -= pxy * log2(pxy/py)
		}
	}
	return h, nil
}

// ConditionalMI computes I(X; Y | Z) in bits from a family of per-z joint
// tables and a distribution over z: I(X;Y|Z) = E_z I(X;Y | Z=z).
func ConditionalMI(perZ []*Joint, zDist prob.Dist) (float64, error) {
	if len(perZ) != zDist.Size() {
		return 0, fmt.Errorf("info: %d joint tables but z-support %d", len(perZ), zDist.Size())
	}
	total := 0.0
	for z, j := range perZ {
		pz := zDist.P(z)
		if pz <= 0 {
			continue
		}
		if j == nil {
			return 0, fmt.Errorf("info: nil joint table for z=%d with positive mass", z)
		}
		mi, err := j.MutualInformation()
		if err != nil {
			return 0, fmt.Errorf("info: conditional MI at z=%d: %w", z, err)
		}
		total += pz * mi
	}
	return total, nil
}

// PlugInEntropy estimates H(X) from outcome counts using the empirical
// (plug-in / maximum likelihood) estimator. It is biased downward by
// roughly (support-1)/(2N ln 2); see MillerMadowEntropy.
func PlugInEntropy(counts []int) (float64, error) {
	d, err := prob.Empirical(counts)
	if err != nil {
		return 0, err
	}
	return Entropy(d), nil
}

// MillerMadowEntropy estimates H(X) from counts with the Miller–Madow
// first-order bias correction: Ĥ_MM = Ĥ_plug-in + (m−1)/(2N ln 2), where m
// is the number of observed (non-zero) outcomes and N the sample count.
func MillerMadowEntropy(counts []int) (float64, error) {
	h, err := PlugInEntropy(counts)
	if err != nil {
		return 0, err
	}
	n, m := 0, 0
	for _, c := range counts {
		if c < 0 {
			return 0, fmt.Errorf("info: negative count %d", c)
		}
		n += c
		if c > 0 {
			m++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("info: no samples")
	}
	return h + float64(m-1)/(2*float64(n)*math.Ln2), nil
}

// PointedPosteriorDivergenceLB returns the paper's Eq. (4) lower bound
// p·log2(k) − 1 on the divergence between a posterior Bern(zero-prob = p)
// and the prior Bern(zero-prob = 1/k). Experiment E12 checks the exact
// divergence dominates this bound.
func PointedPosteriorDivergenceLB(p float64, k int) float64 {
	return p*log2(float64(k)) - 1
}
