// Package bitvec implements dense bit vectors over a universe [0, n).
//
// Bit vectors are the input substrate of the repository: a k-party set
// disjointness instance is k bit vectors over [n], and the Section 5
// protocol manipulates sets of "coordinates not yet on the board" (the Z_i
// sets), per-player zero sets, batch subsets, and their unions. All of that
// is set algebra over [n], so it lives here.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"
)

const wordBits = 64

// Vector is a fixed-length bit vector over the universe [0, n). The zero
// value is an empty vector over the empty universe.
type Vector struct {
	n     int
	words []uint64
}

// New returns an all-zero Vector over [0, n). n must be non-negative.
func New(n int) (*Vector, error) {
	if n < 0 {
		return nil, fmt.Errorf("bitvec: negative length %d", n)
	}
	return &Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}, nil
}

// MustNew is New for static, known-good lengths (tests, examples).
func MustNew(n int) *Vector {
	v, err := New(n)
	if err != nil {
		panic(err)
	}
	return v
}

// FromIndices returns a Vector over [0, n) with exactly the given indices
// set. Duplicate indices are allowed; out-of-range indices are an error.
func FromIndices(n int, indices []int) (*Vector, error) {
	v, err := New(n)
	if err != nil {
		return nil, err
	}
	for _, i := range indices {
		if err := v.Set(i); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// Len returns the universe size n.
func (v *Vector) Len() int { return v.n }

// Set sets bit i.
func (v *Vector) Set(i int) error {
	if i < 0 || i >= v.n {
		return fmt.Errorf("bitvec: index %d out of range [0,%d)", i, v.n)
	}
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	return nil
}

// Clear clears bit i.
func (v *Vector) Clear(i int) error {
	if i < 0 || i >= v.n {
		return fmt.Errorf("bitvec: index %d out of range [0,%d)", i, v.n)
	}
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	return nil
}

// Get reports whether bit i is set. Out-of-range indices report false.
func (v *Vector) Get(i int) bool {
	if i < 0 || i >= v.n {
		return false
	}
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits (the set's cardinality).
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	w := &Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// CopyFrom makes v an exact copy of u, reusing v's word storage when it is
// large enough: the allocation-free counterpart of Clone for callers that
// own a scratch vector. The universe sizes need not match beforehand.
func (v *Vector) CopyFrom(u *Vector) {
	v.n = u.n
	if cap(v.words) < len(u.words) {
		v.words = make([]uint64, len(u.words))
	}
	v.words = v.words[:len(u.words)]
	copy(v.words, u.words)
}

// Reset reshapes v to an all-zero vector over [0, n), reusing its word
// storage when possible.
func (v *Vector) Reset(n int) error {
	if n < 0 {
		return fmt.Errorf("bitvec: negative length %d", n)
	}
	nw := (n + wordBits - 1) / wordBits
	if cap(v.words) < nw {
		v.words = make([]uint64, nw)
	}
	v.words = v.words[:nw]
	v.n = n
	for i := range v.words {
		v.words[i] = 0
	}
	return nil
}

// Pool recycles vectors across iterations of a hot loop (per-trial instance
// generation, repeated intersection tests). Get returns an all-zero vector
// over [0, n), reusing a released vector's storage when one is available.
// The zero value is ready to use. A Pool is safe for concurrent use; each
// vector must be used by one goroutine at a time.
type Pool struct {
	p sync.Pool
}

// Get returns an all-zero vector over [0, n).
func (pl *Pool) Get(n int) (*Vector, error) {
	if n < 0 {
		return nil, fmt.Errorf("bitvec: negative length %d", n)
	}
	v, _ := pl.p.Get().(*Vector)
	if v == nil {
		return New(n)
	}
	if err := v.Reset(n); err != nil {
		return nil, err
	}
	return v, nil
}

// Put releases v back to the pool. v must not be used afterwards.
func (pl *Pool) Put(v *Vector) {
	if v != nil {
		pl.p.Put(v)
	}
}

// SetAll sets every bit in [0, n).
func (v *Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.maskTail()
}

// ClearAll clears every bit.
func (v *Vector) ClearAll() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// maskTail zeroes the unused high bits of the final word so that Count and
// equality stay exact.
func (v *Vector) maskTail() {
	if rem := v.n % wordBits; rem != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(rem)) - 1
	}
}

// sameUniverse returns an error unless u and v share a universe size.
func (v *Vector) sameUniverse(u *Vector) error {
	if v.n != u.n {
		return fmt.Errorf("bitvec: universe mismatch %d vs %d", v.n, u.n)
	}
	return nil
}

// And stores v ∩ u into v.
func (v *Vector) And(u *Vector) error {
	if err := v.sameUniverse(u); err != nil {
		return err
	}
	for i := range v.words {
		v.words[i] &= u.words[i]
	}
	return nil
}

// Or stores v ∪ u into v.
func (v *Vector) Or(u *Vector) error {
	if err := v.sameUniverse(u); err != nil {
		return err
	}
	for i := range v.words {
		v.words[i] |= u.words[i]
	}
	return nil
}

// AndNot stores v \ u into v.
func (v *Vector) AndNot(u *Vector) error {
	if err := v.sameUniverse(u); err != nil {
		return err
	}
	for i := range v.words {
		v.words[i] &^= u.words[i]
	}
	return nil
}

// Not complements v in place.
func (v *Vector) Not() {
	for i := range v.words {
		v.words[i] = ^v.words[i]
	}
	v.maskTail()
}

// Equal reports whether u and v are identical vectors over the same
// universe.
func (v *Vector) Equal(u *Vector) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// accPool recycles the accumulator of IntersectsAll, which returns only
// scalars, so per-call trials (every generated instance is ground-truthed
// this way) allocate nothing.
var accPool Pool

// IntersectsAll reports whether the intersection of all given vectors is
// non-empty, and if so returns the smallest common index. All vectors must
// share a universe; an empty list is an error.
func IntersectsAll(vs []*Vector) (common int, nonEmpty bool, err error) {
	if len(vs) == 0 {
		return 0, false, fmt.Errorf("bitvec: IntersectsAll on empty list")
	}
	acc, err := accPool.Get(0)
	if err != nil {
		return 0, false, err
	}
	defer accPool.Put(acc)
	acc.CopyFrom(vs[0])
	for _, v := range vs[1:] {
		if err := acc.And(v); err != nil {
			return 0, false, err
		}
	}
	idx, ok := acc.NextSet(0)
	return idx, ok, nil
}

// NextSet returns the smallest set index >= from, if any.
func (v *Vector) NextSet(from int) (int, bool) {
	if from < 0 {
		from = 0
	}
	if from >= v.n {
		return 0, false
	}
	wi := from / wordBits
	w := v.words[wi] >> (uint(from) % wordBits)
	if w != 0 {
		return from + bits.TrailingZeros64(w), true
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(v.words[wi]), true
		}
	}
	return 0, false
}

// Indices returns all set indices in increasing order.
func (v *Vector) Indices() []int {
	out := make([]int, 0, v.Count())
	for i, ok := v.NextSet(0); ok; i, ok = v.NextSet(i + 1) {
		out = append(out, i)
	}
	return out
}

// Rank returns the number of set bits strictly below position i. Positions
// beyond the universe count all set bits.
func (v *Vector) Rank(i int) int {
	if i <= 0 {
		return 0
	}
	if i > v.n {
		i = v.n
	}
	full := i / wordBits
	c := 0
	for w := 0; w < full; w++ {
		c += bits.OnesCount64(v.words[w])
	}
	if rem := i % wordBits; rem != 0 {
		c += bits.OnesCount64(v.words[full] & ((1 << uint(rem)) - 1))
	}
	return c
}

// SelectSet returns the position of the (r+1)-th set bit (0-indexed rank r),
// or an error if fewer than r+1 bits are set.
func (v *Vector) SelectSet(r int) (int, error) {
	if r < 0 {
		return 0, fmt.Errorf("bitvec: negative rank %d", r)
	}
	seen := 0
	for wi, w := range v.words {
		c := bits.OnesCount64(w)
		if seen+c <= r {
			seen += c
			continue
		}
		// The answer is inside this word.
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if seen == r {
				return wi*wordBits + tz, nil
			}
			seen++
			w &= w - 1
		}
	}
	return 0, fmt.Errorf("bitvec: rank %d exceeds population %d", r, seen)
}

// String renders the vector as a 0/1 string, index 0 first. Large vectors
// are truncated for readability.
func (v *Vector) String() string {
	var b strings.Builder
	limit := v.n
	const maxRender = 128
	if limit > maxRender {
		limit = maxRender
	}
	for i := 0; i < limit; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	if v.n > maxRender {
		fmt.Fprintf(&b, "...(+%d)", v.n-maxRender)
	}
	return b.String()
}

var _ fmt.Stringer = (*Vector)(nil)
