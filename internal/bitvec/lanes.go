package bitvec

// Lane transpose: the packer/unpacker between the two structure-of-arrays
// layouts the 64-lane batch engine moves between.
//
// The lane engine (internal/batch) executes 64 protocol instances per
// machine word. Its execution layout is row-major over players or
// coordinates: word i holds bit L for every lane L ("lane words"). Its
// per-instance layout is the transpose: word L holds lane L's 64 bits in
// sequence (a bitvec.Vector word). Converting between the two is a 64×64
// bit-matrix transpose, done word-parallel with the recursive block-swap
// scheme (Hacker's Delight §7-3): swap the off-diagonal 32×32 blocks, then
// the 16×16 blocks inside each half, down to 1×1.

import "fmt"

// Words returns how many 64-bit words back v.
func (v *Vector) Words() int { return len(v.words) }

// Word returns the w-th backing word of v: bit t of the result is element
// 64·w+t of the universe. Out-of-range w yields 0, mirroring Get's
// forgiving read side.
func (v *Vector) Word(w int) uint64 {
	if w < 0 || w >= len(v.words) {
		return 0
	}
	return v.words[w]
}

// SetWord replaces the w-th backing word wholesale, masking any bits
// beyond the universe tail. The lane unpacker installs 64 transposed
// coordinates per call instead of issuing 64 Set calls.
func (v *Vector) SetWord(w int, bits uint64) error {
	if w < 0 || w >= len(v.words) {
		return fmt.Errorf("bitvec: word index %d outside [0,%d)", w, len(v.words))
	}
	v.words[w] = bits
	v.maskTail()
	return nil
}

// Transpose64 transposes the 64×64 bit matrix m in place: bit j of word i
// moves to bit i of word j. The transform is an involution — applying it
// twice restores m exactly (the round-trip identity the fuzz target pins) —
// so the same call packs lane words into per-instance words and back.
func Transpose64(m *[64]uint64) {
	mask := uint64(0x00000000ffffffff)
	for j := 32; j != 0; j >>= 1 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (m[k]>>uint(j) ^ m[k+j]) & mask
			m[k] ^= t << uint(j)
			m[k+j] ^= t
		}
		mask ^= mask << uint(j>>1)
	}
}
