package bitvec

import (
	"testing"
	"testing/quick"

	"broadcastic/internal/rng"
)

func TestNewRejectsNegative(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Fatal("New(-1) succeeded")
	}
}

func TestSetGetClear(t *testing.T) {
	v := MustNew(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("fresh vector has bit %d set", i)
		}
		if err := v.Set(i); err != nil {
			t.Fatalf("Set(%d): %v", i, err)
		}
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		if err := v.Clear(i); err != nil {
			t.Fatalf("Clear(%d): %v", i, err)
		}
		if v.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestBoundsErrors(t *testing.T) {
	v := MustNew(10)
	if err := v.Set(10); err == nil {
		t.Fatal("Set(10) on length-10 vector succeeded")
	}
	if err := v.Set(-1); err == nil {
		t.Fatal("Set(-1) succeeded")
	}
	if err := v.Clear(10); err == nil {
		t.Fatal("Clear(10) succeeded")
	}
	if v.Get(10) || v.Get(-1) {
		t.Fatal("out-of-range Get returned true")
	}
}

func TestCountAndSetAll(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128, 1000} {
		v := MustNew(n)
		if v.Count() != 0 {
			t.Fatalf("n=%d: fresh count = %d", n, v.Count())
		}
		v.SetAll()
		if v.Count() != n {
			t.Fatalf("n=%d: SetAll count = %d", n, v.Count())
		}
		v.ClearAll()
		if v.Count() != 0 {
			t.Fatalf("n=%d: ClearAll count = %d", n, v.Count())
		}
	}
}

func TestNotMasksTail(t *testing.T) {
	v := MustNew(70)
	v.Not()
	if v.Count() != 70 {
		t.Fatalf("Not on empty length-70 vector has count %d", v.Count())
	}
	v.Not()
	if v.Count() != 0 {
		t.Fatalf("double Not has count %d", v.Count())
	}
}

func TestSetAlgebra(t *testing.T) {
	a, _ := FromIndices(10, []int{1, 3, 5, 7})
	b, _ := FromIndices(10, []int{3, 4, 5, 6})

	and := a.Clone()
	if err := and.And(b); err != nil {
		t.Fatal(err)
	}
	if got := and.Indices(); !equalInts(got, []int{3, 5}) {
		t.Fatalf("And = %v", got)
	}

	or := a.Clone()
	if err := or.Or(b); err != nil {
		t.Fatal(err)
	}
	if got := or.Indices(); !equalInts(got, []int{1, 3, 4, 5, 6, 7}) {
		t.Fatalf("Or = %v", got)
	}

	diff := a.Clone()
	if err := diff.AndNot(b); err != nil {
		t.Fatal(err)
	}
	if got := diff.Indices(); !equalInts(got, []int{1, 7}) {
		t.Fatalf("AndNot = %v", got)
	}
}

func TestUniverseMismatch(t *testing.T) {
	a := MustNew(10)
	b := MustNew(11)
	if err := a.And(b); err == nil {
		t.Fatal("And across universes succeeded")
	}
	if err := a.Or(b); err == nil {
		t.Fatal("Or across universes succeeded")
	}
	if err := a.AndNot(b); err == nil {
		t.Fatal("AndNot across universes succeeded")
	}
	if a.Equal(b) {
		t.Fatal("vectors over different universes compare equal")
	}
}

func TestNextSetAndIndices(t *testing.T) {
	v, _ := FromIndices(200, []int{0, 63, 64, 130, 199})
	want := []int{0, 63, 64, 130, 199}
	if got := v.Indices(); !equalInts(got, want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	if i, ok := v.NextSet(65); !ok || i != 130 {
		t.Fatalf("NextSet(65) = %d,%v", i, ok)
	}
	if _, ok := v.NextSet(200); ok {
		t.Fatal("NextSet past end reported a bit")
	}
	if i, ok := v.NextSet(-5); !ok || i != 0 {
		t.Fatalf("NextSet(-5) = %d,%v", i, ok)
	}
}

func TestRankSelectInverse(t *testing.T) {
	src := rng.New(99)
	check := func(seed uint16) bool {
		n := int(seed%300) + 1
		v := MustNew(n)
		for i := 0; i < n; i++ {
			if src.Bernoulli(0.3) {
				_ = v.Set(i)
			}
		}
		// select(r) must be the unique position p with Rank(p)=r and bit set.
		for r := 0; r < v.Count(); r++ {
			p, err := v.SelectSet(r)
			if err != nil {
				return false
			}
			if !v.Get(p) || v.Rank(p) != r {
				return false
			}
		}
		// Rank at n equals Count.
		return v.Rank(n) == v.Count()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectErrors(t *testing.T) {
	v, _ := FromIndices(10, []int{2, 4})
	if _, err := v.SelectSet(2); err == nil {
		t.Fatal("SelectSet beyond population succeeded")
	}
	if _, err := v.SelectSet(-1); err == nil {
		t.Fatal("SelectSet(-1) succeeded")
	}
}

func TestIntersectsAll(t *testing.T) {
	a, _ := FromIndices(16, []int{1, 5, 9})
	b, _ := FromIndices(16, []int{5, 9, 12})
	c, _ := FromIndices(16, []int{9, 15})
	idx, ok, err := IntersectsAll([]*Vector{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || idx != 9 {
		t.Fatalf("IntersectsAll = %d,%v, want 9,true", idx, ok)
	}

	d, _ := FromIndices(16, []int{0})
	_, ok, err = IntersectsAll([]*Vector{a, d})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("disjoint sets reported intersecting")
	}

	if _, _, err := IntersectsAll(nil); err == nil {
		t.Fatal("IntersectsAll(nil) succeeded")
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := FromIndices(10, []int{1, 2})
	b := a.Clone()
	_ = b.Set(9)
	if a.Get(9) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestFromIndicesRejectsOutOfRange(t *testing.T) {
	if _, err := FromIndices(5, []int{5}); err == nil {
		t.Fatal("FromIndices accepted out-of-range index")
	}
}

func TestStringTruncation(t *testing.T) {
	v := MustNew(3)
	_ = v.Set(1)
	if got := v.String(); got != "010" {
		t.Fatalf("String = %q", got)
	}
	big := MustNew(1000)
	if s := big.String(); len(s) > 200 {
		t.Fatalf("String of large vector not truncated: len=%d", len(s))
	}
}

func TestOrAndNotDuality(t *testing.T) {
	src := rng.New(4)
	check := func(seed uint16) bool {
		n := int(seed%128) + 1
		a := MustNew(n)
		b := MustNew(n)
		for i := 0; i < n; i++ {
			if src.Bernoulli(0.5) {
				_ = a.Set(i)
			}
			if src.Bernoulli(0.5) {
				_ = b.Set(i)
			}
		}
		// De Morgan: ¬(a ∪ b) == ¬a ∩ ¬b.
		left := a.Clone()
		_ = left.Or(b)
		left.Not()

		na, nb := a.Clone(), b.Clone()
		na.Not()
		nb.Not()
		right := na
		_ = right.And(nb)
		return left.Equal(right)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCopyFromReusesStorage(t *testing.T) {
	src := MustNew(130)
	for _, i := range []int{0, 63, 64, 129} {
		if err := src.Set(i); err != nil {
			t.Fatal(err)
		}
	}
	dst := MustNew(256) // larger storage than needed
	dst.SetAll()
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatalf("CopyFrom: got %v, want %v", dst, src)
	}
	// Growing copy: dst smaller than src.
	small := MustNew(1)
	small.CopyFrom(src)
	if !small.Equal(src) {
		t.Fatalf("CopyFrom into smaller vector: got %v, want %v", small, src)
	}
}

func TestResetReshapesAndZeroes(t *testing.T) {
	v := MustNew(200)
	v.SetAll()
	if err := v.Reset(70); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 70 || v.Count() != 0 {
		t.Fatalf("Reset(70): len=%d count=%d, want 70/0", v.Len(), v.Count())
	}
	// Stale high bits from the old shape must not resurface through SetAll
	// and Count after reshaping.
	v.SetAll()
	if v.Count() != 70 {
		t.Fatalf("SetAll after Reset: count=%d, want 70", v.Count())
	}
	if err := v.Reset(-1); err == nil {
		t.Fatal("Reset(-1) succeeded")
	}
}

func TestPoolGetReturnsZeroVectors(t *testing.T) {
	var p Pool
	v, err := p.Get(100)
	if err != nil {
		t.Fatal(err)
	}
	v.SetAll()
	p.Put(v)
	// Whatever comes back — the recycled vector or a fresh one — it must be
	// all-zero at the requested size.
	w, err := p.Get(40)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 40 || w.Count() != 0 {
		t.Fatalf("pooled vector: len=%d count=%d, want 40/0", w.Len(), w.Count())
	}
	p.Put(w)
	if _, err := p.Get(-3); err == nil {
		t.Fatal("Get(-3) succeeded")
	}
}

func TestIntersectsAllAllocationFree(t *testing.T) {
	vs := []*Vector{MustNew(512), MustNew(512), MustNew(512)}
	for _, v := range vs {
		if err := v.Set(100); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the accumulator pool.
	if _, _, err := IntersectsAll(vs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		idx, ok, err := IntersectsAll(vs)
		if err != nil || !ok || idx != 100 {
			t.Fatalf("IntersectsAll = (%d, %v, %v)", idx, ok, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("IntersectsAll allocates %.1f objects/call; want 0", allocs)
	}
}
