package bitvec

import (
	"encoding/binary"
	"testing"

	"broadcastic/internal/rng"
)

// transposeRef is the obvious bit-at-a-time transpose the word-parallel
// version is pinned against.
func transposeRef(m *[64]uint64) [64]uint64 {
	var out [64]uint64
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			out[j] |= (m[i] >> uint(j) & 1) << uint(i)
		}
	}
	return out
}

func TestTranspose64MatchesReference(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		var m [64]uint64
		src.Uint64s(m[:])
		want := transposeRef(&m)
		got := m
		Transpose64(&got)
		if got != want {
			t.Fatalf("trial %d: word-parallel transpose differs from reference", trial)
		}
		Transpose64(&got)
		if got != m {
			t.Fatalf("trial %d: double transpose is not the identity", trial)
		}
	}
}

func TestTranspose64SingleBits(t *testing.T) {
	for _, pos := range [][2]int{{0, 0}, {0, 63}, {63, 0}, {63, 63}, {5, 41}, {41, 5}, {31, 32}} {
		var m [64]uint64
		m[pos[0]] = 1 << uint(pos[1])
		Transpose64(&m)
		for w := 0; w < 64; w++ {
			want := uint64(0)
			if w == pos[1] {
				want = 1 << uint(pos[0])
			}
			if m[w] != want {
				t.Fatalf("bit (%d,%d): word %d = %#x, want %#x", pos[0], pos[1], w, m[w], want)
			}
		}
	}
}

// FuzzTranspose64RoundTrip is the lane packer/unpacker fuzz target run by
// the CI fuzz-smoke job: for arbitrary 64×64 bit matrices the transpose
// must match the bit-at-a-time reference and invert itself exactly.
func FuzzTranspose64RoundTrip(f *testing.F) {
	f.Add(make([]byte, 512))
	seed := make([]byte, 512)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		var m [64]uint64
		for i := range m {
			if off := i * 8; off+8 <= len(data) {
				m[i] = binary.LittleEndian.Uint64(data[off:])
			}
		}
		orig := m
		want := transposeRef(&m)
		Transpose64(&m)
		if m != want {
			t.Fatal("transpose differs from reference")
		}
		Transpose64(&m)
		if m != orig {
			t.Fatal("round trip is not the identity")
		}
	})
}
