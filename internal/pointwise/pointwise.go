// Package pointwise implements the pointwise-OR (set union) problem the
// paper discusses when comparing its techniques to symmetrization
// (Phillips–Verbin–Zhang [24]): the k players must output the coordinate-
// wise OR of their inputs, i.e. the union U = ∪_i X_i, written in full on
// the blackboard.
//
// The protocol is the natural dual of the Section 5 disjointness protocol:
// one pass in which each player writes its elements not yet on the board,
// batched as a subset of the still-undetermined coordinates in
// ⌈log₂ C(z_i, c_i)⌉ bits. A coordinate no player claims is absent by
// default, so absences cost nothing. The total cost is within a small
// constant of the information-theoretic minimum log₂ C(n, |U|) + k: the
// union itself takes that many bits to write down.
package pointwise

import (
	"fmt"

	"broadcastic/internal/bitvec"
	"broadcastic/internal/blackboard"
	"broadcastic/internal/encoding"
	"broadcastic/internal/rng"
)

// Instance is a pointwise-OR input: per-player element sets over [n].
type Instance struct {
	N    int
	K    int
	Sets []*bitvec.Vector
}

// NewInstance validates per-player sets.
func NewInstance(n int, sets []*bitvec.Vector) (*Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("pointwise: universe size %d < 1", n)
	}
	if len(sets) < 1 {
		return nil, fmt.Errorf("pointwise: no players")
	}
	for i, s := range sets {
		if s == nil || s.Len() != n {
			return nil, fmt.Errorf("pointwise: player %d set invalid", i)
		}
	}
	return &Instance{N: n, K: len(sets), Sets: sets}, nil
}

// Generate samples an instance with the given per-element membership
// density.
func Generate(src *rng.Source, n, k int, density float64) (*Instance, error) {
	if src == nil {
		return nil, fmt.Errorf("pointwise: nil randomness source")
	}
	if n < 1 || k < 1 {
		return nil, fmt.Errorf("pointwise: need n >= 1 and k >= 1, got n=%d k=%d", n, k)
	}
	if density < 0 || density > 1 {
		return nil, fmt.Errorf("pointwise: density %v outside [0,1]", density)
	}
	sets := make([]*bitvec.Vector, k)
	for i := range sets {
		v, err := bitvec.New(n)
		if err != nil {
			return nil, err
		}
		for j := 0; j < n; j++ {
			if src.Bernoulli(density) {
				if err := v.Set(j); err != nil {
					return nil, err
				}
			}
		}
		sets[i] = v
	}
	return NewInstance(n, sets)
}

// TrueUnion computes the union directly.
func (inst *Instance) TrueUnion() (*bitvec.Vector, error) {
	u, err := bitvec.New(inst.N)
	if err != nil {
		return nil, err
	}
	for _, s := range inst.Sets {
		if err := u.Or(s); err != nil {
			return nil, err
		}
	}
	return u, nil
}

// Result reports a union protocol run.
type Result struct {
	Union *bitvec.Vector
	Bits  int
}

// SolveUnion runs the one-pass batched protocol. Message format per
// player: the count of new elements (Elias gamma of count+1), then the
// elements as a subset of the player's live set (the coordinates not yet
// claimed when its turn starts) in ⌈log₂ C(z_i, c_i)⌉ bits.
func SolveUnion(inst *Instance) (*Result, error) {
	if inst == nil {
		return nil, fmt.Errorf("pointwise: nil instance")
	}
	n, k := inst.N, inst.K

	// claimed is a pure function of the board, maintained as messages are
	// decoded (the scheduler never reads player inputs).
	claimed := make([]bool, n)
	var live []int // live set at the current player's turn

	// One writer and position buffer serve every player in turn: players
	// speak strictly sequentially and NewMessage copies the payload, so the
	// scratch never escapes a turn.
	var (
		w         encoding.BitWriter
		positions []int
	)
	players := make([]blackboard.Player, k)
	for i := 0; i < k; i++ {
		i := i
		players[i] = blackboard.FuncPlayer(func(b *blackboard.Board) (blackboard.Message, error) {
			positions = positions[:0]
			for pos, coord := range live {
				if inst.Sets[i].Get(coord) {
					positions = append(positions, pos)
				}
			}
			w.Reset()
			if err := encoding.WriteNonNeg(&w, uint64(len(positions))); err != nil {
				return blackboard.Message{}, err
			}
			if err := encoding.WriteSubsetFast(&w, len(live), positions); err != nil {
				return blackboard.Message{}, err
			}
			return blackboard.NewMessage(i, &w), nil
		})
	}

	processed := 0
	sched := blackboard.FuncScheduler(func(b *blackboard.Board) (int, bool, error) {
		// Decode any new message against the live set of its turn.
		for _, m := range b.Messages()[processed:] {
			r, err := m.Reader()
			if err != nil {
				return 0, false, err
			}
			cnt, err := encoding.ReadNonNeg(r)
			if err != nil {
				return 0, false, fmt.Errorf("pointwise: count: %w", err)
			}
			positions, err := encoding.ReadSubsetFast(r, len(live), int(cnt))
			if err != nil {
				return 0, false, fmt.Errorf("pointwise: batch: %w", err)
			}
			for _, pos := range positions {
				claimed[live[pos]] = true
			}
			if r.Remaining() != 0 {
				return 0, false, fmt.Errorf("pointwise: %d trailing bits", r.Remaining())
			}
			processed++
		}
		if b.NumMessages() >= k {
			return 0, true, nil
		}
		// Recompute the live set for the next speaker.
		live = live[:0]
		for j := 0; j < n; j++ {
			if !claimed[j] {
				live = append(live, j)
			}
		}
		return b.NumMessages(), false, nil
	})

	res, err := blackboard.Run(sched, players, nil, blackboard.Limits{MaxMessages: k})
	if err != nil {
		return nil, fmt.Errorf("pointwise: union protocol: %w", err)
	}
	union, err := bitvec.New(n)
	if err != nil {
		return nil, err
	}
	for j, c := range claimed {
		if c {
			if err := union.Set(j); err != nil {
				return nil, err
			}
		}
	}
	return &Result{Union: union, Bits: res.Board.TotalBits()}, nil
}

// InformationLowerBound returns the information-theoretic minimum for
// announcing the union: ⌈log₂ C(n, |U|)⌉ bits for the set itself plus one
// bit per player (everyone must speak).
func InformationLowerBound(n, unionSize, k int) (int, error) {
	if unionSize < 0 || unionSize > n {
		return 0, fmt.Errorf("pointwise: union size %d outside [0,%d]", unionSize, n)
	}
	setBits := 0
	if unionSize > 0 && unionSize < n {
		b, err := encoding.BinomialBitLen(n, unionSize)
		if err != nil {
			return 0, err
		}
		setBits = b
	}
	return setBits + k, nil
}

// SolveNaive is the baseline: every player writes its raw n-bit
// characteristic vector — n·k bits regardless of the union's size.
func SolveNaive(inst *Instance) (*Result, error) {
	if inst == nil {
		return nil, fmt.Errorf("pointwise: nil instance")
	}
	union, err := inst.TrueUnion()
	if err != nil {
		return nil, err
	}
	return &Result{Union: union, Bits: inst.N * inst.K}, nil
}
