package pointwise

import (
	"testing"

	"broadcastic/internal/bitvec"
	"broadcastic/internal/rng"
)

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance(0, []*bitvec.Vector{bitvec.MustNew(0)}); err == nil {
		t.Fatal("n=0 succeeded")
	}
	if _, err := NewInstance(4, nil); err == nil {
		t.Fatal("no players succeeded")
	}
	if _, err := NewInstance(4, []*bitvec.Vector{nil}); err == nil {
		t.Fatal("nil set succeeded")
	}
	if _, err := NewInstance(4, []*bitvec.Vector{bitvec.MustNew(5)}); err == nil {
		t.Fatal("universe mismatch succeeded")
	}
}

func TestGenerateValidation(t *testing.T) {
	src := rng.New(601)
	if _, err := Generate(nil, 4, 2, 0.5); err == nil {
		t.Fatal("nil source succeeded")
	}
	if _, err := Generate(src, 0, 2, 0.5); err == nil {
		t.Fatal("n=0 succeeded")
	}
	if _, err := Generate(src, 4, 0, 0.5); err == nil {
		t.Fatal("k=0 succeeded")
	}
	if _, err := Generate(src, 4, 2, -1); err == nil {
		t.Fatal("negative density succeeded")
	}
}

func TestSolveUnionCorrectRandom(t *testing.T) {
	src := rng.New(602)
	for trial := 0; trial < 120; trial++ {
		n := src.Intn(400) + 1
		k := src.Intn(8) + 1
		density := src.Float64()
		inst, err := Generate(src, n, k, density)
		if err != nil {
			t.Fatal(err)
		}
		want, err := inst.TrueUnion()
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveUnion(inst)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", n, k, err)
		}
		if !res.Union.Equal(want) {
			t.Fatalf("n=%d k=%d: union mismatch", n, k)
		}
	}
	if _, err := SolveUnion(nil); err == nil {
		t.Fatal("nil instance succeeded")
	}
	if _, err := SolveNaive(nil); err == nil {
		t.Fatal("naive nil instance succeeded")
	}
}

func TestSolveUnionEdgeCases(t *testing.T) {
	// Empty sets: union empty, everyone still sends a count.
	empty := []*bitvec.Vector{bitvec.MustNew(8), bitvec.MustNew(8)}
	inst, _ := NewInstance(8, empty)
	res, err := SolveUnion(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Union.Count() != 0 {
		t.Fatal("empty instance produced non-empty union")
	}
	if res.Bits < 2 {
		t.Fatalf("union of empty sets cost %d bits; every player must speak", res.Bits)
	}

	// Full sets: player 1 claims everything, player 2's message is tiny.
	full := []*bitvec.Vector{bitvec.MustNew(8), bitvec.MustNew(8)}
	full[0].SetAll()
	full[1].SetAll()
	inst, _ = NewInstance(8, full)
	res, err = SolveUnion(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Union.Count() != 8 {
		t.Fatal("full instance union incomplete")
	}
}

func TestUnionCostNearInformationBound(t *testing.T) {
	// For sparse unions the one-pass batched protocol stays within a small
	// factor of the information bound log2 C(n, |U|) + k. For dense unions
	// it degrades gracefully to O(n) (the players are describing per-player
	// ownership, which carries more information than the union itself) —
	// still far below the naive n·k.
	src := rng.New(603)
	const n, k = 4096, 8
	for _, density := range []float64{0.01, 0.1} {
		inst, err := Generate(src, n, k, density)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveUnion(inst)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := InformationLowerBound(n, res.Union.Count(), k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Bits < lb {
			t.Fatalf("density %v: protocol %d bits below the information bound %d",
				density, res.Bits, lb)
		}
		if float64(res.Bits) > 3*float64(lb)+64 {
			t.Fatalf("density %v: protocol %d bits too far above bound %d",
				density, res.Bits, lb)
		}
	}
	// Dense regime: cost ≈ Σ_i z_i ≤ 2n, far below naive n·k.
	inst, err := Generate(src, n, k, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveUnion(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits > 3*n {
		t.Fatalf("dense union cost %d bits exceeds 3n", res.Bits)
	}
	if res.Bits >= n*k {
		t.Fatalf("dense union cost %d bits not below naive %d", res.Bits, n*k)
	}
}

func TestUnionBeatsNaiveOnSparseInputs(t *testing.T) {
	src := rng.New(604)
	inst, err := Generate(src, 8192, 4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := SolveUnion(inst)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := SolveNaive(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !batched.Union.Equal(naive.Union) {
		t.Fatal("protocols disagree on the union")
	}
	if batched.Bits >= naive.Bits {
		t.Fatalf("batched %d bits not below naive %d on sparse inputs", batched.Bits, naive.Bits)
	}
}

func TestInformationLowerBoundValidation(t *testing.T) {
	if _, err := InformationLowerBound(8, -1, 2); err == nil {
		t.Fatal("negative union size succeeded")
	}
	if _, err := InformationLowerBound(8, 9, 2); err == nil {
		t.Fatal("union size > n succeeded")
	}
	lb, err := InformationLowerBound(8, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 3 {
		t.Fatalf("empty-union bound %d, want k=3", lb)
	}
	lb, err = InformationLowerBound(8, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 3 {
		t.Fatalf("full-union bound %d, want k=3", lb)
	}
}
