package ir

import (
	"math"
	"sync"

	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

// Node encoding inside the flat tables: values ≥ 0 are interior state
// ids, values in [-numLeaves, -1] encode leaf -(v+1), and nodeNone marks
// cells no execution can reach (symbols with zero probability under every
// input, or non-deterministic cells of the fused table).
const nodeNone = int32(math.MinInt32)

// poolDist is one deduplicated distribution of the program's pool, in the
// pre-built CDF form the executors sample from. cum holds the identical
// in-order partial sums prob.Dist's cached sampler computes, last the
// largest positive-mass outcome (the floating-point-slack fallback), and
// det the single outcome when the distribution is a point mass (−1
// otherwise) — the executors skip the table walk, and where draw
// positions allow it the uniform read, for deterministic cells.
type poolDist struct {
	cum  []float64
	last int32
	det  int32
	dist prob.Dist // original form, for lane-plan construction
}

// sampleCum maps a uniform draw u ∈ [0,1) to an outcome by the exact
// branchless lower-bound search prob.Dist.sampleIndex performs over its
// cached prefix sums. prob pins that search bit-equal to the linear scan
// on every support, so this returns precisely what Dist.Sample would.
func sampleCum(cum []float64, last int32, u float64) int32 {
	base, n := 0, len(cum)
	for n > 1 {
		half := n >> 1
		if cum[base+half-1] <= u {
			base += half
		}
		n -= half
	}
	if u < cum[base] {
		return int32(base)
	}
	return last
}

// Program is a compiled protocol: the full control surface of a Spec —
// and, for estimator programs, of a (Spec, Prior) pair — flattened into
// immutable lookup tables. A Program is read-only after compilation and
// safe for concurrent use; per-execution state lives in pooled scratch.
type Program struct {
	k         int
	inputSize int
	numStates int
	numLeaves int
	root      int32 // encoded start node (a leaf when the protocol is empty)

	// Per-interior-state tables.
	speaker   []int32 // who speaks
	alphabet  []int32 // message alphabet size
	width     []int32 // fixed bit width of the alphabet (encoding.FixedWidth)
	distBase  []int32 // msgDist[distBase[s]+input] = pool id of the speaker's dist
	transBase []int32 // edges/symBits[transBase[s]+sym]
	msgDist   []int32
	edges     []int32 // encoded next node per (state, symbol)
	symBits   []int32 // declared MessageBits per (state, symbol)
	// fused[s*inputSize+v] short-circuits a whole step when the message
	// for input v is deterministic: it holds the encoded node the det
	// symbol leads to, or nodeNone when the cell needs a real sample.
	fused []int32

	pool []poolDist

	// Per-leaf tables.
	leafBits   []int32
	leafBitsF  []float64 // float64(leafBits), pre-converted for the shard loop
	leafOut    []int32
	leafDepth  []int32 // messages on the complete transcript
	leafSymOff []int32 // numLeaves+1 offsets into leafSyms
	leafSyms   []int32
	leafQ      []float64 // numLeaves × k × inputSize q-factor arena

	fixedWidth    bool // every reachable symbol's MessageBits equals the fixed width
	deterministic bool // every reachable (state, input) message is a point mass
	speakOnce     bool // on no root-to-leaf path does a player speak twice

	// Estimator extension (zero-valued on spec-only programs).
	estimator bool
	auxSize   int
	zd        prob.Dist
	auxCum    []float64
	auxLast   int32
	auxDet    int32
	priorDist []int32   // auxSize × k pool ids
	inner     []float64 // auxSize × numLeaves precomputed Σ_i D(post_i ‖ prior_i)
	// priorTwo is the binary-input fast-loop form of priorDist (inputSize
	// == 2 only, nil otherwise): per (z, player), the exact linear-scan
	// thresholds of the player's conditional, so the hot shard loop draws
	// an input with two compares instead of a pool indirection.
	priorTwo []twoPoint

	keySHA string

	scratch sync.Pool
}

// NumPlayers returns k.
func (p *Program) NumPlayers() int { return p.k }

// InputSize returns the per-player input domain size.
func (p *Program) InputSize() int { return p.inputSize }

// NumStates returns the number of interior transcript states.
func (p *Program) NumStates() int { return p.numStates }

// NumLeaves returns the number of reachable complete transcripts.
func (p *Program) NumLeaves() int { return p.numLeaves }

// Estimator reports whether the program carries the prior-dependent
// tables (aux sampler, per-player conditionals, inner divergence table).
func (p *Program) Estimator() bool { return p.estimator }

// FixedWidth reports whether every reachable message's declared bit
// charge equals the fixed-width encoding of its alphabet — the condition
// the blackboard executor needs.
func (p *Program) FixedWidth() bool { return p.fixedWidth }

// Deterministic reports whether every reachable (state, input) message
// distribution is a point mass, i.e. the protocol consumes no message
// randomness on any input.
func (p *Program) Deterministic() bool { return p.deterministic }

// KeySHA returns the program's content address: the SHA-256 of its cache
// key, in the same hex form the jobs result cache uses for its own keys.
// Empty for programs compiled outside the cache.
func (p *Program) KeySHA() string { return p.keySHA }

// twoPoint is a binary conditional row in flattened sampling form. c0 and
// c1 are the in-order partial sums (c1 duplicates c0 for single-outcome
// rows), last the positive-mass fallback, det the single outcome of a
// point mass (−1 otherwise). Sampling "x = 0 if u < c0, else 1 if u < c1,
// else last" is exactly prob.Dist's linear scan.
type twoPoint struct {
	c0, c1 float64
	det    int32
	last   int32
}

// shardScratch is the pooled per-shard state of the estimator executor:
// the lazily sampled input tuple with epoch stamps marking which entries
// belong to the current sample. Stamping makes per-sample reset O(1)
// instead of O(k).
type shardScratch struct {
	x     []int32
	stamp []uint32
	epoch uint32
}

func (p *Program) getScratch() *shardScratch {
	if v := p.scratch.Get(); v != nil {
		return v.(*shardScratch)
	}
	return &shardScratch{x: make([]int32, p.k), stamp: make([]uint32, p.k)}
}

func (p *Program) putScratch(sc *shardScratch) { p.scratch.Put(sc) }

// Shard draws count estimator samples from src and returns the raw
// moments (Σ inner, Σ inner², Σ bits) — the exact accumulation the
// dynamic cicShard performs, bit for bit. Requires an estimator program.
//
// Draw discipline: a dynamic sample consumes uniforms at positions
// 0 (aux), 1..k (inputs, in player order), 1+k+t (message t). The
// compiled loop peeks only the positions it needs with rng.Lookahead —
// deterministic cells skip even the peek — and advances the stream past
// all 1+k+T positions with one Skip, so the stream state after every
// sample is identical to the dynamic path's.
func (p *Program) Shard(src *rng.Source, count int) (sum, sumSq, bitsSum float64) {
	if p.speakOnce && p.priorTwo != nil {
		return p.shardBinary(src, count)
	}
	sc := p.getScratch()
	defer p.putScratch(sc)

	k64 := uint64(p.k)
	inputSize := p.inputSize
	for s := 0; s < count; s++ {
		var z int32
		if p.auxDet >= 0 {
			z = p.auxDet
		} else {
			z = sampleCum(p.auxCum, p.auxLast, rng.U01(src.Lookahead(0)))
		}
		sc.epoch++
		if sc.epoch == 0 { // uint32 wrap: stale stamps could collide
			for i := range sc.stamp {
				sc.stamp[i] = 0
			}
			sc.epoch = 1
		}
		prior := p.priorDist[int(z)*p.k : int(z)*p.k+p.k]

		node := p.root
		depth := uint64(0)
		for node >= 0 {
			st := node
			sp := p.speaker[st]
			var x int32
			if sc.stamp[sp] == sc.epoch {
				x = sc.x[sp]
			} else {
				pd := &p.pool[prior[sp]]
				if pd.det >= 0 {
					x = pd.det
				} else {
					x = sampleCum(pd.cum, pd.last, rng.U01(src.Lookahead(1+uint64(sp))))
				}
				sc.x[sp] = x
				sc.stamp[sp] = sc.epoch
			}
			if f := p.fused[int(st)*inputSize+int(x)]; f != nodeNone {
				node = f
			} else {
				md := &p.pool[p.msgDist[int(p.distBase[st])+int(x)]]
				sym := sampleCum(md.cum, md.last, rng.U01(src.Lookahead(1+k64+depth)))
				node = p.edges[int(p.transBase[st])+int(sym)]
			}
			depth++
		}
		src.Skip(1 + k64 + depth)

		leaf := -node - 1
		in := p.inner[int(z)*p.numLeaves+int(leaf)]
		sum += in
		sumSq += in * in
		bitsSum += p.leafBitsF[leaf]
	}
	return sum, sumSq, bitsSum
}

// shardBinary is Shard for programs with binary inputs and no player
// speaking twice on any path — the dominant estimator shape (AND_k
// chains under μ). Input draws become two compares against flat
// threshold rows, and the once-per-path guarantee removes the lazy-input
// stamp bookkeeping, so a step is a handful of loads with no pool
// indirection. Draw positions and outcomes are identical to the general
// loop's: the same positions are peeked with the same uniforms, and the
// threshold scan is exactly prob.Dist's linear scan on a 2-row.
func (p *Program) shardBinary(src *rng.Source, count int) (sum, sumSq, bitsSum float64) {
	k := p.k
	k64 := uint64(k)
	auxCum, auxLast, auxDet := p.auxCum, p.auxLast, p.auxDet
	speaker, fused := p.speaker, p.fused
	inner, bitsF := p.inner, p.leafBitsF
	numLeaves := p.numLeaves
	for s := 0; s < count; s++ {
		var z int32
		if auxDet >= 0 {
			z = auxDet
		} else {
			z = sampleCum(auxCum, auxLast, rng.U01(src.Lookahead(0)))
		}
		tp := p.priorTwo[int(z)*k : int(z)*k+k]
		node := p.root
		depth := uint64(0)
		for node >= 0 {
			st := node
			sp := speaker[st]
			t := &tp[sp]
			x := t.det
			if x < 0 {
				u := rng.U01(src.Lookahead(1 + uint64(sp)))
				x = 0
				if u >= t.c0 {
					x = 1
					if u >= t.c1 {
						x = t.last
					}
				}
			}
			if f := fused[int(st)*2+int(x)]; f != nodeNone {
				node = f
			} else {
				md := &p.pool[p.msgDist[int(p.distBase[st])+int(x)]]
				sym := sampleCum(md.cum, md.last, rng.U01(src.Lookahead(1+k64+depth)))
				node = p.edges[int(p.transBase[st])+int(sym)]
			}
			depth++
		}
		src.Skip(1 + k64 + depth)

		leaf := -node - 1
		in := inner[int(z)*numLeaves+int(leaf)]
		sum += in
		sumSq += in * in
		bitsSum += bitsF[leaf]
	}
	return sum, sumSq, bitsSum
}

// SampleWalk runs the protocol once on the fixed input x, sampling
// message randomness from src, and returns the transcript, fresh copies
// of the leaf's q-factor rows, and the leaf's bit cost and output. The
// caller must have checked len(x) == NumPlayers and every x[i] within
// [0, InputSize); the draw stream is consumed exactly as the dynamic
// core.SampleTranscript consumes it (one uniform per message).
func (p *Program) SampleWalk(x []int, src *rng.Source) (t []int, q [][]float64, bits, output int) {
	node := p.root
	depth := uint64(0)
	for node >= 0 {
		st := node
		md := &p.pool[p.msgDist[int(p.distBase[st])+x[p.speaker[st]]]]
		var sym int32
		if md.det >= 0 {
			sym = md.det
		} else {
			sym = sampleCum(md.cum, md.last, rng.U01(src.Lookahead(depth)))
		}
		t = append(t, int(sym))
		node = p.edges[int(p.transBase[st])+int(sym)]
		depth++
	}
	src.Skip(depth)

	leaf := int(-node - 1)
	q = make([][]float64, p.k)
	qRow := make([]float64, p.k*p.inputSize)
	copy(qRow, p.leafQ[leaf*p.k*p.inputSize:(leaf+1)*p.k*p.inputSize])
	for i := 0; i < p.k; i++ {
		q[i] = qRow[i*p.inputSize : (i+1)*p.inputSize : (i+1)*p.inputSize]
	}
	return t, q, int(p.leafBits[leaf]), int(p.leafOut[leaf])
}

// EstimatorRows exposes the prior's conditional structure in the form the
// 64-lane batch engine consumes: the auxiliary distribution, the distinct
// per-player conditional rows, and a flat auxSize×k table mapping (z,
// player) to a row index. ok is false on spec-only programs or when the
// prior has more than 256 distinct rows (the lane engine's row-index
// width). The rows come straight from the compiled pool — no interface
// calls back into the prior.
func (p *Program) EstimatorRows() (zd prob.Dist, rows []prob.Dist, rowTable []uint8, ok bool) {
	if !p.estimator {
		return prob.Dist{}, nil, nil, false
	}
	rowOf := make(map[int32]int, 8)
	rowTable = make([]uint8, len(p.priorDist))
	for i, id := range p.priorDist {
		ri, seen := rowOf[id]
		if !seen {
			ri = len(rows)
			if ri >= 256 {
				return prob.Dist{}, nil, nil, false
			}
			rowOf[id] = ri
			rows = append(rows, p.pool[id].dist)
		}
		rowTable[i] = uint8(ri)
	}
	return p.zd, rows, rowTable, true
}

// Leaves returns the program's complete transcripts with their bit costs
// and outputs, for conformance tests that compare compiled tables against
// dynamic enumeration. The returned slices are fresh copies.
func (p *Program) Leaves() (syms [][]int, bits []int, outs []int) {
	syms = make([][]int, p.numLeaves)
	bits = make([]int, p.numLeaves)
	outs = make([]int, p.numLeaves)
	for l := 0; l < p.numLeaves; l++ {
		start, end := p.leafSymOff[l], p.leafSymOff[l+1]
		ts := make([]int, end-start)
		for i := start; i < end; i++ {
			ts[i-start] = int(p.leafSyms[i])
		}
		syms[l] = ts
		bits[l] = int(p.leafBits[l])
		outs[l] = int(p.leafOut[l])
	}
	return syms, bits, outs
}
